package repro

// Golden observability test: the delay histogram of internal/obs, attached
// to E1's enumerator, must certify the constant-delay bound of Theorem 3.2
// in counted RAM steps — not just the max-delay spot value that
// delay.Stats already reports, but the whole distribution.

import (
	"fmt"
	"testing"

	"repro/internal/cq"
	"repro/internal/delay"
	"repro/internal/fodeg"
	"repro/internal/logic/logictest"
	"repro/internal/obs"
)

// e1MaxDelaySteps is the golden constant-delay bound for E1's enumerator on
// the cycle-graph instance: the bounded-degree enumeration of Theorem 3.2
// spends at most this many counted steps between consecutive emissions,
// independent of n. The value is pinned (not just "O(1)") so that any
// engine change that grows the per-output work trips this test the same
// way cmd/benchgate's p99 gate trips in CI.
const e1MaxDelaySteps = 5

func TestGoldenE1DelayHistogram(t *testing.T) {
	for _, n := range []int{1 << 10, 1 << 14} {
		s := boundedDegreeStructure(n)
		p, _ := s.PredID("P")
		q := fodeg.Ex{Var: "y", F: fodeg.Conj{Fs: []fodeg.Formula{
			edgeFormula(s, "x", "y"), fodeg.Pr{Pred: p, T: fodeg.V("y")},
		}}}

		o := obs.New()
		c := &delay.Counter{}
		c.SetSink(o)
		st, answers := delay.Measure(c, func() delay.Enumerator {
			e, err := s.Enumerate(q, []string{"x"}, c)
			if err != nil {
				t.Fatal(err)
			}
			return e
		})
		if len(answers) == 0 {
			t.Fatalf("n=%d: E1 instance produced no answers", n)
		}

		// The histogram observes every emission gap: one per answer plus the
		// final output-to-exhaustion gap.
		if got, want := o.DelaySteps.Count(), int64(st.Outputs+1); got != want {
			t.Errorf("n=%d: histogram observed %d gaps, want %d (outputs+exhaustion)", n, got, want)
		}
		// The histogram's max is the same quantity Stats maximizes over.
		if o.DelaySteps.Max() != st.MaxDelaySteps {
			t.Errorf("n=%d: histogram max %d != Stats.MaxDelaySteps %d",
				n, o.DelaySteps.Max(), st.MaxDelaySteps)
		}
		// The golden bound, on the whole distribution: p100, not a spot check.
		if got := o.DelaySteps.Max(); got > e1MaxDelaySteps {
			t.Errorf("n=%d: max enumeration delay %d counted steps > golden bound %d",
				n, got, e1MaxDelaySteps)
		}
		if p99 := o.DelaySteps.Quantile(0.99); p99 > e1MaxDelaySteps {
			t.Errorf("n=%d: p99 delay %d counted steps > golden bound %d", n, p99, e1MaxDelaySteps)
		}
	}
}

// TestGoldenE1DelayIndependentOfN pins constancy itself: the worst counted
// delay must not grow with the instance, which is the difference between
// constant delay and "small on the one size we looked at".
func TestGoldenE1DelayIndependentOfN(t *testing.T) {
	maxAt := func(n int) int64 {
		s := boundedDegreeStructure(n)
		p, _ := s.PredID("P")
		q := fodeg.Ex{Var: "y", F: fodeg.Conj{Fs: []fodeg.Formula{
			edgeFormula(s, "x", "y"), fodeg.Pr{Pred: p, T: fodeg.V("y")},
		}}}
		o := obs.New()
		c := &delay.Counter{}
		c.SetSink(o)
		delay.Measure(c, func() delay.Enumerator {
			e, err := s.Enumerate(q, []string{"x"}, c)
			if err != nil {
				t.Fatal(err)
			}
			return e
		})
		return o.DelaySteps.Max()
	}
	small, large := maxAt(1<<8), maxAt(1<<15)
	if large > small {
		t.Errorf("max delay grew with n: %d steps at n=2^8, %d at n=2^15", small, large)
	}
}

// TestE5TraceSnapshotPhases: the trace emitted for a CQ enumeration names
// the pipeline phases of the paper (preprocessing split into tree building
// and semijoin reduction, then enumeration), so a reader of `qbench -trace`
// output can attribute wall time to them.
func TestE5TraceSnapshotPhases(t *testing.T) {
	db := e5DB(1 << 10)
	q := logictest.MustParseCQ("Q(x,y) :- A(x,y), B(y,z).")
	o := obs.New()
	c := &delay.Counter{}
	c.SetSink(o)
	delay.Measure(c, func() delay.Enumerator {
		e, err := cq.EnumerateConstantDelay(db, q, c)
		if err != nil {
			t.Fatal(err)
		}
		return e
	})
	tr := o.Snapshot("E5")
	got := map[string]bool{}
	for _, ph := range tr.Phases {
		got[ph.Phase] = true
	}
	for _, want := range []string{"tree-build", "semijoin-reduce", "enumerate"} {
		if !got[want] {
			t.Errorf("trace is missing phase %q; phases: %v", want, fmt.Sprint(tr.Phases))
		}
	}
	if tr.DelaySteps.Count == 0 {
		t.Error("trace has an empty delay histogram")
	}
}
