// Package qgen generates seeded random instances — databases, acyclic and
// free-connex conjunctive queries, and unions of conjunctive queries — for
// differential testing against the brute-force oracle (internal/oracle).
//
// Queries are grown from a random join tree and are therefore guaranteed to
// be accepted by every engine in the repository: acyclic queries come out
// α-acyclic and safe by construction, free-connex queries additionally
// admit a join tree of the hypergraph extended with the head edge
// (Definition 4.4 of the paper). Generation is fully deterministic in the
// provided rand.Rand, so any failing instance is reproducible from its
// seed alone.
package qgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/database"
	"repro/internal/logic"
)

// Config bounds the size and shape of generated instances. The defaults
// keep the brute-force oracle fast while still producing self-joins,
// constants, repeated variables, empty relations and multi-way join trees.
type Config struct {
	MaxHeadVars int // head arity of free-connex queries is 1..MaxHeadVars
	MaxAtoms    int // number of atoms is 1..MaxAtoms
	MaxFresh    int // fresh existential variables introduced per atom: 0..MaxFresh

	Domain    int // values are drawn from [1, Domain]
	MaxTuples int // tuples per relation: 0..MaxTuples (0 exercises empty joins)

	ConstProb    float64 // chance an atom carries an extra constant argument
	RepeatProb   float64 // chance an atom repeats one of its variables
	SelfJoinProb float64 // chance an atom reuses an earlier predicate of equal arity
	BoolProb     float64 // chance AcyclicCQ emits a Boolean (empty-head) query
}

// Default returns the configuration used by the differential suites.
func Default() Config {
	return Config{
		MaxHeadVars:  3,
		MaxAtoms:     4,
		MaxFresh:     2,
		Domain:       5,
		MaxTuples:    18,
		ConstProb:    0.15,
		RepeatProb:   0.15,
		SelfJoinProb: 0.25,
		BoolProb:     0.2,
	}
}

// namer hands out predicate names, optionally reusing an earlier name of
// the same arity to produce self-joins (within a query) and shared
// relations (across UCQ disjuncts).
type namer struct {
	n       int
	byArity map[int][]string
}

func newNamer() *namer { return &namer{byArity: make(map[int][]string)} }

func (nm *namer) pick(rng *rand.Rand, arity int, reuseProb float64) string {
	if pool := nm.byArity[arity]; len(pool) > 0 && rng.Float64() < reuseProb {
		return pool[rng.Intn(len(pool))]
	}
	name := fmt.Sprintf("R%d", nm.n)
	nm.n++
	nm.byArity[arity] = append(nm.byArity[arity], name)
	return name
}

// buildAtom turns a variable set into an atom: the variables in random
// order, optionally with a repeated variable and/or a constant argument.
func buildAtom(rng *rand.Rand, nm *namer, cfg Config, vars []string) logic.Atom {
	args := make([]logic.Term, 0, len(vars)+2)
	perm := rng.Perm(len(vars))
	for _, i := range perm {
		args = append(args, logic.V(vars[i]))
	}
	if len(vars) > 0 && rng.Float64() < cfg.RepeatProb {
		v := vars[rng.Intn(len(vars))]
		at := rng.Intn(len(args) + 1)
		args = append(args[:at], append([]logic.Term{logic.V(v)}, args[at:]...)...)
	}
	if rng.Float64() < cfg.ConstProb {
		c := logic.C(database.Value(1 + rng.Intn(cfg.Domain)))
		at := rng.Intn(len(args) + 1)
		args = append(args[:at], append([]logic.Term{c}, args[at:]...)...)
	}
	return logic.Atom{Pred: nm.pick(rng, len(args), cfg.SelfJoinProb), Args: args}
}

// subset returns a random nonempty subset of vs (nil for empty vs).
func subset(rng *rand.Rand, vs []string) []string {
	if len(vs) == 0 {
		return nil
	}
	k := 1 + rng.Intn(len(vs))
	perm := rng.Perm(len(vs))
	out := make([]string, 0, k)
	for _, i := range perm[:k] {
		out = append(out, vs[i])
	}
	sort.Strings(out)
	return out
}

// AcyclicCQ generates a safe α-acyclic conjunctive query: atom 0 is the
// join-tree root, every later atom shares a nonempty variable subset with
// an earlier atom (its tree parent) and may introduce fresh existential
// variables, so the running-intersection property holds by construction.
// The head is a random subset of the variables — empty (Boolean) with
// probability cfg.BoolProb — and is not necessarily free-connex.
func AcyclicCQ(rng *rand.Rand, cfg Config) *logic.CQ {
	return acyclicCQ(rng, cfg, newNamer())
}

func acyclicCQ(rng *rand.Rand, cfg Config, nm *namer) *logic.CQ {
	nAtoms := 1 + rng.Intn(cfg.MaxAtoms)
	var nodes [][]string // variable set per atom, tree order
	var all []string
	fresh := 0
	newVar := func() string {
		v := fmt.Sprintf("v%d", fresh)
		fresh++
		all = append(all, v)
		return v
	}
	for i := 0; i < nAtoms; i++ {
		var vars []string
		if i > 0 {
			vars = subset(rng, nodes[rng.Intn(i)])
		}
		nf := rng.Intn(cfg.MaxFresh + 1)
		if len(vars)+nf == 0 {
			nf = 1
		}
		for k := 0; k < nf; k++ {
			vars = append(vars, newVar())
		}
		nodes = append(nodes, vars)
	}
	q := &logic.CQ{Name: "Q"}
	for _, vars := range nodes {
		q.Atoms = append(q.Atoms, buildAtom(rng, nm, cfg, vars))
	}
	if rng.Float64() >= cfg.BoolProb {
		q.Head = subset(rng, all)
	}
	return q
}

// FullCQ generates a projection-free (quantifier-free) acyclic query: the
// head lists every variable. Such queries feed counting.CountFullJoin.
func FullCQ(rng *rand.Rand, cfg Config) *logic.CQ {
	q := AcyclicCQ(rng, cfg)
	seen := make(map[string]bool)
	q.Head = nil
	for _, a := range q.Atoms {
		for _, v := range a.Vars() {
			if !seen[v] {
				seen[v] = true
				q.Head = append(q.Head, v)
			}
		}
	}
	return q
}

// FreeConnexCQ generates a safe, α-acyclic, free-connex conjunctive query
// with head arity 1..cfg.MaxHeadVars. The query is grown as a join tree of
// the hypergraph extended with the head edge — the root carries the head
// variables and every atom shares a subset of its parent's variables — and
// then validated with the repository's own acyclicity and free-connexity
// tests; the rare candidate whose atom-only hypergraph turns out cyclic
// (head-variable sharing across sibling subtrees can close a cycle once
// the head edge is dropped) is rejected and regrown. A fallback with the
// head inside a single atom guarantees termination.
func FreeConnexCQ(rng *rand.Rand, cfg Config) *logic.CQ {
	return freeConnexCQ(rng, cfg, newNamer())
}

func freeConnexCQ(rng *rand.Rand, cfg Config, nm *namer) *logic.CQ {
	arity := 1 + rng.Intn(cfg.MaxHeadVars)
	for attempt := 0; attempt < 32; attempt++ {
		q := growFreeConnex(rng, cfg, nm, arity)
		if q.IsAcyclic() && q.IsFreeConnex() {
			return q
		}
	}
	// Fallback: head variables confined to the first atom; the head edge is
	// then a subset of an atom edge, which is always free-connex.
	q := acyclicCQ(rng, cfg, nm)
	first := q.Atoms[0].Vars()
	q.Head = subset(rng, first)
	if len(q.Head) == 0 {
		q.Head = first[:1]
	}
	return q
}

// FreeConnexCQArity is FreeConnexCQ with a fixed head arity, used to build
// UCQ disjuncts of a common arity.
func FreeConnexCQArity(rng *rand.Rand, cfg Config, arity int, nm *namer) *logic.CQ {
	for attempt := 0; attempt < 32; attempt++ {
		q := growFreeConnex(rng, cfg, nm, arity)
		if q.IsAcyclic() && q.IsFreeConnex() {
			return q
		}
	}
	q := growHeadInAtom(rng, cfg, nm, arity)
	return q
}

// growFreeConnex grows the extended join tree: node 0 is the synthetic head
// edge x0..x{arity-1}; each atom hangs under an earlier node, sharing a
// nonempty subset of its variables. Head variables left uncovered by the
// random growth are forced into one extra atom attached below the root.
func growFreeConnex(rng *rand.Rand, cfg Config, nm *namer, arity int) *logic.CQ {
	head := make([]string, arity)
	for i := range head {
		head[i] = fmt.Sprintf("x%d", i)
	}
	nodes := [][]string{head}
	covered := make(map[string]bool)
	fresh := 0
	nAtoms := 1 + rng.Intn(cfg.MaxAtoms)
	var atomVars [][]string
	for i := 0; i < nAtoms; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		vars := subset(rng, parent)
		nf := rng.Intn(cfg.MaxFresh + 1)
		if len(vars)+nf == 0 {
			nf = 1
		}
		for k := 0; k < nf; k++ {
			vars = append(vars, fmt.Sprintf("y%d", fresh))
			fresh++
		}
		nodes = append(nodes, vars)
		atomVars = append(atomVars, vars)
		for _, v := range vars {
			covered[v] = true
		}
	}
	var missing []string
	for _, v := range head {
		if !covered[v] {
			missing = append(missing, v)
		}
	}
	if len(missing) > 0 {
		atomVars = append(atomVars, missing)
	}
	q := &logic.CQ{Name: "Q", Head: head}
	for _, vars := range atomVars {
		q.Atoms = append(q.Atoms, buildAtom(rng, nm, cfg, vars))
	}
	return q
}

// growHeadInAtom generates the always-free-connex fallback for a fixed
// arity: the first atom holds all head variables.
func growHeadInAtom(rng *rand.Rand, cfg Config, nm *namer, arity int) *logic.CQ {
	head := make([]string, arity)
	for i := range head {
		head[i] = fmt.Sprintf("x%d", i)
	}
	q := &logic.CQ{Name: "Q", Head: head}
	q.Atoms = append(q.Atoms, buildAtom(rng, nm, cfg, head))
	// A chain of extra atoms below the first keeps some variety.
	prev := head
	extra := rng.Intn(cfg.MaxAtoms)
	for i := 0; i < extra; i++ {
		vars := subset(rng, prev)
		vars = append(vars, fmt.Sprintf("y%d", i))
		q.Atoms = append(q.Atoms, buildAtom(rng, nm, cfg, vars))
		prev = vars
	}
	return q
}

// UCQ generates a union of 1..3 free-connex disjuncts of a common head
// arity; predicates of equal arity may be shared across disjuncts.
func UCQ(rng *rand.Rand, cfg Config) *logic.UCQ {
	arity := 1 + rng.Intn(cfg.MaxHeadVars)
	k := 1 + rng.Intn(3)
	nm := newNamer()
	u := &logic.UCQ{Name: "U"}
	for i := 0; i < k; i++ {
		d := FreeConnexCQArity(rng, cfg, arity, nm)
		d.Name = fmt.Sprintf("Q%d", i)
		u.Disjuncts = append(u.Disjuncts, d)
	}
	return u
}

// DatabaseFor generates a random database providing every predicate used
// by the given queries, each relation filled with 0..cfg.MaxTuples random
// tuples over [1, cfg.Domain]. Predicates reused across queries (or within
// one, via self-joins) get a single shared relation.
func DatabaseFor(rng *rand.Rand, cfg Config, queries ...*logic.CQ) *database.Database {
	db := database.NewDatabase()
	arities := make(map[string]int)
	var order []string
	note := func(a logic.Atom) {
		if _, ok := arities[a.Pred]; !ok {
			arities[a.Pred] = len(a.Args)
			order = append(order, a.Pred)
		}
	}
	for _, q := range queries {
		for _, a := range q.Atoms {
			note(a)
		}
		for _, a := range q.NegAtoms {
			note(a)
		}
	}
	for _, pred := range order {
		db.AddRelation(RandRelation(rng, pred, arities[pred], rng.Intn(cfg.MaxTuples+1), cfg.Domain))
	}
	return db
}

// DatabaseForUCQ is DatabaseFor over a union's disjuncts.
func DatabaseForUCQ(rng *rand.Rand, cfg Config, u *logic.UCQ) *database.Database {
	return DatabaseFor(rng, cfg, u.Disjuncts...)
}

// RandRelation builds a deduplicated relation of the given arity with n
// random tuples over [1, domain].
func RandRelation(rng *rand.Rand, name string, arity, n, domain int) *database.Relation {
	r := database.NewRelation(name, arity)
	for i := 0; i < n; i++ {
		t := make(database.Tuple, arity)
		for j := range t {
			t[j] = database.Value(1 + rng.Intn(domain))
		}
		r.Insert(t)
	}
	r.Dedup()
	return r
}

// Mutation is one replayable single-tuple update against a named relation.
// Scripts of mutations drive the update-replay differential suites: the
// same script applied to equal databases produces equal databases.
type Mutation struct {
	Pred   string
	Insert bool // insert Tuple; otherwise delete every occurrence of it
	Tuple  database.Tuple
}

func (m Mutation) String() string {
	op := "delete"
	if m.Insert {
		op = "insert"
	}
	return fmt.Sprintf("%s %s%v", op, m.Pred, m.Tuple)
}

// Apply performs the mutation on db. Deleting an absent tuple is a valid
// no-op (and, by design, does not advance the relation's generation).
func (m Mutation) Apply(db *database.Database) error {
	rel := db.Relation(m.Pred)
	if rel == nil {
		return fmt.Errorf("qgen: mutation names unknown relation %s", m.Pred)
	}
	if m.Insert {
		return rel.InsertBatch([]database.Tuple{m.Tuple})
	}
	rel.Delete(m.Tuple)
	return nil
}

// MutationScript generates n single-tuple mutations against db's
// relations: mostly inserts (fresh random tuples, sometimes duplicate
// occurrences of present ones), otherwise deletes of present tuples, with
// a small chance of deleting an absent tuple (which must be a no-op).
// Presence is tracked against a simulation of db's contents — db itself is
// not touched — so generation is deterministic in (rng, db's state now)
// and the script replays identically on any equal database.
func MutationScript(rng *rand.Rand, cfg Config, db *database.Database, n int) []Mutation {
	names := db.Names()
	if len(names) == 0 {
		return nil
	}
	sim := make(map[string][]database.Tuple, len(names))
	for _, name := range names {
		sim[name] = append([]database.Tuple(nil), db.Relation(name).Tuples...)
	}
	script := make([]Mutation, 0, n)
	for len(script) < n {
		name := names[rng.Intn(len(names))]
		arity := db.Relation(name).Arity
		rows := sim[name]
		roll := rng.Float64()
		switch {
		case roll < 0.45 || len(rows) == 0:
			t := make(database.Tuple, arity)
			for j := range t {
				t[j] = database.Value(1 + rng.Intn(cfg.Domain))
			}
			sim[name] = append(rows, t)
			script = append(script, Mutation{Pred: name, Insert: true, Tuple: t})
		case roll < 0.60:
			// Duplicate occurrence of a present tuple: multiset bookkeeping
			// downstream must absorb it without changing any answer set.
			t := rows[rng.Intn(len(rows))].Clone()
			sim[name] = append(rows, t)
			script = append(script, Mutation{Pred: name, Insert: true, Tuple: t})
		case roll < 0.95:
			t := rows[rng.Intn(len(rows))].Clone()
			key := t.FullKey()
			kept := rows[:0]
			for _, row := range rows {
				if row.FullKey() != key {
					kept = append(kept, row)
				}
			}
			sim[name] = kept
			script = append(script, Mutation{Pred: name, Tuple: t})
		default:
			// Values above cfg.Domain never occur in generated data or
			// inserts, so this delete targets a guaranteed-absent tuple.
			t := make(database.Tuple, arity)
			for j := range t {
				t[j] = database.Value(cfg.Domain + 1 + rng.Intn(cfg.Domain))
			}
			script = append(script, Mutation{Pred: name, Tuple: t})
		}
	}
	return script
}

// Instance returns the free-connex query and database for a seed under the
// default configuration — the unit of the differential suites.
func Instance(seed int64) (*logic.CQ, *database.Database) {
	rng := rand.New(rand.NewSource(seed))
	cfg := Default()
	q := FreeConnexCQ(rng, cfg)
	return q, DatabaseFor(rng, cfg, q)
}

// FormatInstance renders a query and database as a reproducible report: the
// query in rule syntax followed by every relation in fact syntax. This is
// what the differential suites print on a mismatch so that a failure is a
// copy-pasteable one-liner.
func FormatInstance(q fmt.Stringer, db *database.Database) string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", q)
	b.WriteString(FormatDatabase(db))
	return b.String()
}

// FormatDatabase renders every relation of db in the fact syntax accepted
// by core.LoadFacts.
func FormatDatabase(db *database.Database) string {
	var b strings.Builder
	for _, name := range db.Names() {
		r := db.Relation(name)
		if r.Len() == 0 {
			fmt.Fprintf(&b, "# %s/%d is empty\n", name, r.Arity)
			continue
		}
		for _, t := range r.Tuples {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = fmt.Sprintf("%d", v)
			}
			fmt.Fprintf(&b, "%s(%s).\n", name, strings.Join(parts, ", "))
		}
	}
	return b.String()
}
