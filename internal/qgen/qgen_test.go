package qgen

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

// isSafe reports whether every head variable occurs in some positive atom.
func isSafe(q *logic.CQ) bool {
	body := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, v := range a.Vars() {
			body[v] = true
		}
	}
	for _, v := range q.Head {
		if !body[v] {
			return false
		}
	}
	return true
}

func TestFreeConnexCQProperties(t *testing.T) {
	cfg := Default()
	for seed := int64(0); seed < 500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := FreeConnexCQ(rng, cfg)
		if len(q.Head) == 0 {
			t.Fatalf("seed %d: empty head: %s", seed, q)
		}
		if len(q.Head) > cfg.MaxHeadVars {
			t.Fatalf("seed %d: head arity %d > %d: %s", seed, len(q.Head), cfg.MaxHeadVars, q)
		}
		if !isSafe(q) {
			t.Fatalf("seed %d: unsafe query: %s", seed, q)
		}
		if !q.IsAcyclic() {
			t.Fatalf("seed %d: cyclic query: %s", seed, q)
		}
		if !q.IsFreeConnex() {
			t.Fatalf("seed %d: not free-connex: %s", seed, q)
		}
	}
}

func TestAcyclicCQProperties(t *testing.T) {
	cfg := Default()
	for seed := int64(0); seed < 500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := AcyclicCQ(rng, cfg)
		if !isSafe(q) {
			t.Fatalf("seed %d: unsafe query: %s", seed, q)
		}
		if !q.IsAcyclic() {
			t.Fatalf("seed %d: cyclic query: %s", seed, q)
		}
	}
}

func TestFullCQHeadIsAllVars(t *testing.T) {
	cfg := Default()
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := FullCQ(rng, cfg)
		if !reflect.DeepEqual(q.Head, q.Vars()) {
			t.Fatalf("seed %d: head %v != vars %v: %s", seed, q.Head, q.Vars(), q)
		}
		if !q.IsAcyclic() {
			t.Fatalf("seed %d: cyclic query: %s", seed, q)
		}
	}
}

func TestUCQProperties(t *testing.T) {
	cfg := Default()
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		u := UCQ(rng, cfg)
		if err := u.Validate(); err != nil {
			t.Fatalf("seed %d: %v: %s", seed, err, u)
		}
		for _, d := range u.Disjuncts {
			if !d.IsAcyclic() || !d.IsFreeConnex() {
				t.Fatalf("seed %d: bad disjunct %s of %s", seed, d, u)
			}
		}
	}
}

// TestDatabaseForCoversPredicates uses testing/quick to check that every
// predicate of a generated query has a relation of the right arity.
func TestDatabaseForCoversPredicates(t *testing.T) {
	cfg := Default()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := AcyclicCQ(rng, cfg)
		db := DatabaseFor(rng, cfg, q)
		for _, a := range q.Atoms {
			r := db.Relation(a.Pred)
			if r == nil || r.Arity != len(a.Args) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism: the same seed must yield byte-identical instances, or
// failing seeds printed by the differential suites would not reproduce.
func TestDeterminism(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		q1, db1 := Instance(seed)
		q2, db2 := Instance(seed)
		if q1.String() != q2.String() {
			t.Fatalf("seed %d: queries differ: %s vs %s", seed, q1, q2)
		}
		if FormatDatabase(db1) != FormatDatabase(db2) {
			t.Fatalf("seed %d: databases differ", seed)
		}
	}
}

func TestRandRelationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := RandRelation(rng, "R", 3, 40, 4)
	if r.Arity != 3 {
		t.Fatalf("arity %d", r.Arity)
	}
	if r.Len() == 0 || r.Len() > 40 {
		t.Fatalf("len %d", r.Len())
	}
	for _, tp := range r.Tuples {
		for _, v := range tp {
			if v < 1 || v > 4 {
				t.Fatalf("value %d out of [1,4]", v)
			}
		}
	}
}
