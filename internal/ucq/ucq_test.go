package ucq

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic/logictest"
)

func sortTuples(ts []database.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

func equalSets(t *testing.T, label string, got, want []database.Tuple) {
	t.Helper()
	sortTuples(got)
	sortTuples(want)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d answers, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: answer %d: got %v want %v", label, i, got[i], want[i])
		}
	}
}

func eq1DB(rng *rand.Rand, n int) *database.Database {
	db := database.NewDatabase()
	r1 := database.NewRelation("R1", 2)
	r2 := database.NewRelation("R2", 2)
	r3 := database.NewRelation("R3", 2)
	for i := 0; i < n; i++ {
		r1.InsertValues(database.Value(rng.Intn(6)+1), database.Value(rng.Intn(6)+1))
		r2.InsertValues(database.Value(rng.Intn(6)+1), database.Value(rng.Intn(6)+1))
		r3.InsertValues(database.Value(rng.Intn(6)+1), database.Value(rng.Intn(6)+1))
	}
	r1.Dedup()
	r2.Dedup()
	r3.Dedup()
	db.AddRelation(r1)
	db.AddRelation(r2)
	db.AddRelation(r3)
	return db
}

func TestBodyHomomorphismsEq1(t *testing.T) {
	u := Eq1Queries()
	phi1, phi2 := u.Disjuncts[0], u.Disjuncts[1]
	homs := BodyHomomorphisms(phi2, phi1)
	// The intended homomorphism x→x, y→z, w→y must be found.
	found := false
	for _, h := range homs {
		if h["x"] == "x" && h["y"] == "z" && h["w"] == "y" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected homomorphism not found among %v", homs)
	}
	// No homomorphism in the other direction (R3 has no image).
	if got := BodyHomomorphisms(phi1, phi2); len(got) != 0 {
		t.Errorf("unexpected homomorphisms φ1→φ2: %v", got)
	}
}

func TestBodyHomomorphismConstants(t *testing.T) {
	from := logictest.MustParseCQ("A(x) :- R(x, 3).")
	to1 := logictest.MustParseCQ("B(y) :- R(y, 3).")
	to2 := logictest.MustParseCQ("B(y) :- R(y, 4).")
	if len(BodyHomomorphisms(from, to1)) != 1 {
		t.Errorf("constant-preserving homomorphism missing")
	}
	if len(BodyHomomorphisms(from, to2)) != 0 {
		t.Errorf("constant mismatch must block homomorphism")
	}
}

func TestProvidedSetsEq1(t *testing.T) {
	u := Eq1Queries()
	phi1, phi2 := u.Disjuncts[0], u.Disjuncts[1]
	provs := ProvidedSets(phi2, 1, phi1)
	found := false
	for _, p := range provs {
		if len(p.Vars) == 3 && p.Vars[0] == "x" && p.Vars[1] == "y" && p.Vars[2] == "z" {
			found = true
		}
	}
	if !found {
		t.Fatalf("φ2 must provide {x,y,z} to φ1; got %v", provs)
	}
}

func TestSConnex(t *testing.T) {
	q := logictest.MustParseCQ("Q(x,y,w) :- R1(x,y), R2(y,w).")
	if !SConnex(q, []string{"x", "y", "w"}) {
		t.Errorf("free-connex query must be free-set-connex")
	}
	pi := logictest.MustParseCQ("P(x,y) :- A(x,z), B(z,y).")
	if SConnex(pi, []string{"x", "y"}) {
		t.Errorf("Π must not be {x,y}-connex")
	}
	if !SConnex(pi, []string{"x", "z"}) {
		t.Errorf("Π is {x,z}-connex")
	}
}

func TestAnalyzeEq1(t *testing.T) {
	u := Eq1Queries()
	if u.Disjuncts[0].IsFreeConnex() {
		t.Fatalf("φ1 must not be free-connex")
	}
	if !u.Disjuncts[1].IsFreeConnex() {
		t.Fatalf("φ2 must be free-connex")
	}
	plan, err := Analyze(u, 2)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// φ2 (index 1) must be resolved before φ1 (index 0).
	if len(plan.Order) != 2 || plan.Order[0] != 1 || plan.Order[1] != 0 {
		t.Errorf("order: %v", plan.Order)
	}
	if len(plan.Extensions[0]) == 0 {
		t.Errorf("φ1 must need an extension")
	}
	if len(plan.Extensions[1]) != 0 {
		t.Errorf("φ2 must need no extension")
	}
}

func TestAnalyzeRejectsHopeless(t *testing.T) {
	// Two copies of the matrix query: nothing provides anything useful.
	u := logictest.MustParseUCQ("Q(x,y) :- A(x,z), B(z,y); Q(x,y) :- C(x,z), D(z,y).")
	if _, err := Analyze(u, 2); err == nil {
		t.Errorf("union of two matrix queries must not be (detected) free-connex")
	}
}

func TestEnumerateEq1Differential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := Eq1Queries()
	for trial := 0; trial < 40; trial++ {
		db := eq1DB(rng, 15)
		want := u.EvalNaive(db)

		got, err := Enumerate(db, u, 2, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		equalSets(t, "generic union enumerator", delay.Collect(got), want)

		gi, err := EnumerateEq1(db, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		equalSets(t, "interleaved Eq1 enumerator", delay.Collect(gi), want)
	}
}

func TestEnumerateAllFreeConnexUnion(t *testing.T) {
	// Both disjuncts free-connex: the easy case of Section 4.2.
	u := logictest.MustParseUCQ("Q(x,y) :- A(x,y); Q(x,y) :- B(x,z), C(z), A(z,y).")
	// second: free-connex? H: A? names... B{x,z}, C{z}, A2{z,y}, head {x,y}:
	// GYO with head: C ⊆ B; B{x,z} shared {x(head), z(A2)}: not ⊆ one edge...
	// make it simpler:
	u = logictest.MustParseUCQ("Q(x,y) :- A(x,y); Q(x,y) :- B(x,y), C(y).")
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		db := database.NewDatabase()
		for _, nm := range []string{"A", "B"} {
			r := database.NewRelation(nm, 2)
			for i := 0; i < 12; i++ {
				r.InsertValues(database.Value(rng.Intn(5)+1), database.Value(rng.Intn(5)+1))
			}
			r.Dedup()
			db.AddRelation(r)
		}
		cr := database.NewRelation("C", 1)
		for i := 0; i < 3; i++ {
			cr.InsertValues(database.Value(rng.Intn(5) + 1))
		}
		cr.Dedup()
		db.AddRelation(cr)

		got, err := Enumerate(db, u, 2, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		equalSets(t, "free-connex union", delay.Collect(got), u.EvalNaive(db))
	}
}

func TestEnumerateNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	u := Eq1Queries()
	db := eq1DB(rng, 25)
	e, err := Enumerate(db, u, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for {
		tup, ok := e.Next()
		if !ok {
			break
		}
		k := tup.FullKey()
		if seen[k] {
			t.Fatalf("duplicate %v", tup)
		}
		seen[k] = true
	}
}

// The interleaved Eq1 enumerator must show amortized-constant measured
// delay as the database grows.
func TestEq1DelayAmortizedConstant(t *testing.T) {
	build := func(n int) *database.Database {
		db := database.NewDatabase()
		r1 := database.NewRelation("R1", 2)
		r2 := database.NewRelation("R2", 2)
		r3 := database.NewRelation("R3", 2)
		for i := 0; i < n; i++ {
			r1.InsertValues(database.Value(i), database.Value(i))
			r2.InsertValues(database.Value(i), database.Value((i+1)%n))
			r3.InsertValues(database.Value(i), database.Value(i%5))
		}
		db.AddRelation(r1)
		db.AddRelation(r2)
		db.AddRelation(r3)
		return db
	}
	avgDelay := func(n int) float64 {
		db := build(n)
		c := &delay.Counter{}
		st, _ := delay.Measure(c, func() delay.Enumerator {
			e, err := EnumerateEq1(db, c)
			if err != nil {
				t.Fatal(err)
			}
			return e
		})
		if st.Outputs == 0 {
			t.Fatalf("no outputs at n=%d", n)
		}
		return float64(st.TotalSteps) / float64(st.Outputs)
	}
	small := avgDelay(200)
	large := avgDelay(5000)
	if large > 4*small+16 {
		t.Errorf("Eq1 amortized delay grew: %.1f -> %.1f", small, large)
	}
}
