package ucq

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
)

// Eq1Queries returns the union of Equation 1 of the paper:
//
//	φ1(x,y,w) = R1(x,z) ∧ R2(z,y) ∧ R3(x,w)   (not free-connex)
//	φ2(x,y,w) = R1(x,y) ∧ R2(y,w)             (free-connex)
//
// φ2 provides {x,z,y} to φ1, so the union is free-connex although φ1 alone
// is not (Definition 4.12, Theorem 4.13).
func Eq1Queries() *logic.UCQ {
	return &logic.UCQ{
		Name: "Q",
		Disjuncts: []*logic.CQ{
			{
				Name: "Q",
				Head: []string{"x", "y", "w"},
				Atoms: []logic.Atom{
					logic.NewAtom("R1", "x", "z"),
					logic.NewAtom("R2", "z", "y"),
					logic.NewAtom("R3", "x", "w"),
				},
			},
			{
				Name: "Q",
				Head: []string{"x", "y", "w"},
				Atoms: []logic.Atom{
					logic.NewAtom("R1", "x", "y"),
					logic.NewAtom("R2", "y", "w"),
				},
			},
		},
	}
}

// EnumerateEq1 is the paper's interleaved constant-delay enumerator for the
// union of Equation 1, with strictly linear preprocessing: enumerate φ2(D)
// with constant delay; emit each φ2-answer (a,d,b), and — because a triple
// (a,b,c) belongs to φ1(D) exactly when some (a,d,b) ∈ φ2(D) and
// R3(a,c) — also emit (a,b,c) for every c with R3(a,c). Duplicates are
// filtered by a hash set, as permitted in Section 4.2 ("one also has to
// deal with duplicates ... which can be done").
func EnumerateEq1(db *database.Database, c *delay.Counter) (delay.Enumerator, error) {
	u := Eq1Queries()
	phi2 := u.Disjuncts[1]
	inner, err := cq.EnumerateConstantDelay(db, phi2, c)
	if err != nil {
		return nil, err
	}
	r3 := db.Relation("R3")
	if r3 == nil {
		return nil, fmt.Errorf("ucq: missing relation R3")
	}
	ispan := c.StartSpan("index-build", -1)
	idx := r3.IndexOn([]int{0})
	ispan.End()

	seen := make(map[string]bool)
	var cur database.Tuple // current φ2 answer (a,d,b)
	var bucket []int32     // row ids of R3 tuples (a,c) for the current answer
	bi := 0                // cursor into bucket
	out := make(database.Tuple, 3)

	emit := func(t database.Tuple) (database.Tuple, bool) {
		k := t.FullKey()
		c.Tick(1)
		if seen[k] {
			return nil, false
		}
		seen[k] = true
		return t, true
	}

	return delay.Func(func() (database.Tuple, bool) {
		for {
			// Drain derived φ1 answers of the current φ2 answer.
			for cur != nil && bi < len(bucket) {
				a, b := cur[0], cur[2]
				cc := idx.Row(bucket[bi])[1]
				bi++
				c.Tick(1)
				out[0], out[1], out[2] = a, b, cc
				if t, ok := emit(out); ok {
					return t, true
				}
			}
			// Advance to the next φ2 answer.
			t, ok := inner.Next()
			if !ok {
				return nil, false
			}
			cur = t.Clone()
			bucket = idx.Lookup(cur, []int{0})
			bi = 0
			c.Tick(1)
			if tt, ok := emit(cur); ok {
				return tt, true
			}
		}
	}), nil
}
