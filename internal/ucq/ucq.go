// Package ucq implements Section 4.2 of the paper: enumeration for unions
// of conjunctive queries. It provides body homomorphisms, the "provides"
// relation between disjuncts (Definition 4.11), union extensions
// (Definition 4.12), the free-connex test for UCQs, and the constant-delay
// union enumerator of Theorem 4.13 with duplicate elimination.
package ucq

import (
	"fmt"
	"sort"

	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/hypergraph"
	"repro/internal/logic"
)

// Hom is a body homomorphism h : var(φ_from) → var(φ_to): a variable
// mapping such that every atom R(x̄) of φ_from maps to an atom R(h(x̄)) of
// φ_to (Definition 4.11).
type Hom map[string]string

// BodyHomomorphisms enumerates all body homomorphisms from the positive
// atoms of `from` to those of `to`, by backtracking over atom images.
// Constants must be preserved.
func BodyHomomorphisms(from, to *logic.CQ) []Hom {
	var out []Hom
	h := Hom{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(from.Atoms) {
			c := Hom{}
			for k, v := range h {
				c[k] = v
			}
			out = append(out, c)
			return
		}
		fa := from.Atoms[i]
		for _, ta := range to.Atoms {
			if ta.Pred != fa.Pred || len(ta.Args) != len(fa.Args) {
				continue
			}
			// Try mapping fa onto ta.
			var added []string
			ok := true
			for j := range fa.Args {
				ft, tt := fa.Args[j], ta.Args[j]
				if ft.IsConst {
					if !tt.IsConst || tt.Const != ft.Const {
						ok = false
						break
					}
					continue
				}
				if tt.IsConst {
					ok = false // variables must map to variables here
					break
				}
				if img, bound := h[ft.Var]; bound {
					if img != tt.Var {
						ok = false
						break
					}
				} else {
					h[ft.Var] = tt.Var
					added = append(added, ft.Var)
				}
			}
			if ok {
				rec(i + 1)
			}
			for _, v := range added {
				delete(h, v)
			}
		}
	}
	rec(0)
	return out
}

// SConnex reports whether q is S-connex: q is acyclic and its hypergraph
// extended with an edge over S remains acyclic (the generalization of
// free-connexity used in Definition 4.11).
func SConnex(q *logic.CQ, s []string) bool {
	h := q.Hypergraph()
	if !hypergraph.IsAcyclic(h) {
		return false
	}
	h2 := h.Clone()
	h2.AddEdge(hypergraph.NewEdge("__S__", s...))
	return hypergraph.IsAcyclic(h2)
}

// Provided is a variable set of the target disjunct provided by another
// disjunct (Definition 4.11), with the witnessing homomorphism.
type Provided struct {
	Vars     []string // sorted variable set of the target
	Provider int      // index of the providing disjunct
	H        Hom      // body homomorphism provider → target
}

// ProvidedSets computes the maximal variable sets of `target` provided by
// `provider` (Definition 4.11): for every body homomorphism h and every
// S ⊆ free(provider) such that provider is S-connex, the set
// V = {v ∈ h(S) : h⁻¹(v) ⊆ S} is provided, and so is every subset.
// Only maximal V per (h,S) are returned; subsets are implicit.
func ProvidedSets(provider *logic.CQ, providerIdx int, target *logic.CQ) []Provided {
	free := provider.Head
	if len(free) > 12 {
		return nil // subset search would blow up; providers are small
	}
	var out []Provided
	seen := map[string]bool{}
	for _, h := range BodyHomomorphisms(provider, target) {
		// Preimage map under h.
		pre := map[string][]string{}
		for _, u := range provider.Vars() {
			if img, ok := h[u]; ok {
				pre[img] = append(pre[img], u)
			}
		}
		for mask := 0; mask < 1<<len(free); mask++ {
			var s []string
			sset := map[string]bool{}
			for b, v := range free {
				if mask&(1<<b) != 0 {
					s = append(s, v)
					sset[v] = true
				}
			}
			if len(s) == 0 || !SConnex(provider, s) {
				continue
			}
			var V []string
			for _, u := range s {
				v, ok := h[u]
				if !ok {
					continue
				}
				all := true
				for _, w := range pre[v] {
					if !sset[w] {
						all = false
						break
					}
				}
				if all {
					V = append(V, v)
				}
			}
			V = dedupSorted(V)
			if len(V) == 0 {
				continue
			}
			key := fmt.Sprint(V, providerIdx, homKey(h, provider))
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, Provided{Vars: V, Provider: providerIdx, H: h})
		}
	}
	return out
}

func dedupSorted(vs []string) []string {
	sort.Strings(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func homKey(h Hom, q *logic.CQ) string {
	vars := q.Vars()
	sort.Strings(vars)
	s := ""
	for _, v := range vars {
		s += v + ">" + h[v] + ";"
	}
	return s
}

// ExtAtom is a fresh atom P(v̄) added by a union extension
// (Definition 4.12).
type ExtAtom struct {
	Pred string
	Prov Provided
}

// Plan is the result of analyzing a UCQ for free-connexity via union
// extensions. Order lists the disjuncts in dependency order (providers
// before consumers); Extensions[i] lists the fresh atoms added to
// disjunct i.
type Plan struct {
	U          *logic.UCQ
	Order      []int
	Extensions [][]ExtAtom
}

// Analyze decides whether the UCQ is free-connex in the sense of
// Definition 4.12 (restricted to extensions by directly provided sets,
// iterated to a fixpoint so that chains of providers are found) and returns
// an enumeration plan. maxExtra bounds the number of fresh atoms tried per
// disjunct.
func Analyze(u *logic.UCQ, maxExtra int) (*Plan, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	k := len(u.Disjuncts)
	plan := &Plan{U: u, Extensions: make([][]ExtAtom, k)}
	resolved := make([]bool, k)
	for pass := 0; pass < k+1; pass++ {
		progress := false
		for i, d := range u.Disjuncts {
			if resolved[i] {
				continue
			}
			if !d.IsAcyclic() {
				continue // might become enumerable only via other disjuncts? no: extensions only add atoms, keep trying below
			}
			// Candidate provided sets from already-resolved disjuncts.
			var cands []Provided
			for j, p := range u.Disjuncts {
				if i == j || !resolved[j] {
					continue
				}
				cands = append(cands, ProvidedSets(p, j, d)...)
			}
			ext, ok := searchExtension(d, cands, maxExtra)
			if ok {
				resolved[i] = true
				plan.Extensions[i] = ext
				plan.Order = append(plan.Order, i)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for i := range resolved {
		if !resolved[i] {
			return nil, fmt.Errorf("ucq: disjunct %d (%s) admits no free-connex union extension (within the search bounds)", i, u.Disjuncts[i])
		}
	}
	return plan, nil
}

// searchExtension looks for ≤ maxExtra candidate atoms whose addition makes
// d free-connex.
func searchExtension(d *logic.CQ, cands []Provided, maxExtra int) ([]ExtAtom, bool) {
	base := d.Hypergraph()
	if !hypergraph.IsAcyclic(base) {
		return nil, false
	}
	test := func(sel []int) bool {
		h := base.Clone()
		for _, ci := range sel {
			h.AddEdge(hypergraph.NewEdge(fmt.Sprintf("__p%d__", ci), cands[ci].Vars...))
		}
		if !hypergraph.IsAcyclic(h) {
			return false
		}
		return hypergraph.FreeConnex(h, d.Head)
	}
	if test(nil) {
		return nil, true
	}
	var sel []int
	var rec func(start, budget int) bool
	rec = func(start, budget int) bool {
		if budget == 0 {
			return false
		}
		for c := start; c < len(cands); c++ {
			sel = append(sel, c)
			if test(sel) {
				return true
			}
			if rec(c+1, budget-1) {
				return true
			}
			sel = sel[:len(sel)-1]
		}
		return false
	}
	if rec(0, maxExtra) {
		out := make([]ExtAtom, len(sel))
		for i, ci := range sel {
			out[i] = ExtAtom{Pred: fmt.Sprintf("__P%d_%d__", ci, i), Prov: cands[ci]}
		}
		return out, true
	}
	return nil, false
}

// Enumerate enumerates the answers of a free-connex UCQ with constant delay
// and no duplicates (Theorem 4.13). Disjuncts are processed in dependency
// order: each resolved disjunct is enumerated via its free-connex union
// extension; the fresh atoms' relations are filled from the already
// materialized answers of the providing disjuncts (any answer of φᵢ
// restricted through the body homomorphism is an answer of the provider, so
// the filter loses nothing — see the discussion of Equation 1).
//
// The preprocessing is linear in ‖D‖ plus the size of the provider answer
// sets (which are part of the output), so total time is O(‖D‖ + ‖φ(D)‖) as
// in Theorem 4.8; the paper's fully interleaved variant with strictly linear
// preprocessing is implemented for Equation 1 in EnumerateEq1.
func Enumerate(db *database.Database, u *logic.UCQ, maxExtra int, c *delay.Counter) (delay.Enumerator, error) {
	aspan := c.StartSpan("parse", -1)
	plan, err := Analyze(u, maxExtra)
	aspan.End()
	if err != nil {
		return nil, err
	}
	mspan := c.StartSpan("join", -1)
	defer mspan.End()
	answers := make([][]database.Tuple, len(u.Disjuncts))
	var enums []delay.Enumerator
	for _, i := range plan.Order {
		d := u.Disjuncts[i]
		// Build the extended query and its database.
		ext := &logic.CQ{Name: d.Name, Head: d.Head, Atoms: append([]logic.Atom(nil), d.Atoms...)}
		dbx := database.NewDatabase()
		for _, name := range db.Names() {
			dbx.AddRelation(db.Relation(name))
		}
		for _, ea := range plan.Extensions[i] {
			rel, err := providedRelation(ea, u.Disjuncts[ea.Prov.Provider], answers[ea.Prov.Provider])
			if err != nil {
				return nil, err
			}
			dbx.AddRelation(rel)
			ext.Atoms = append(ext.Atoms, logic.NewAtom(ea.Pred, ea.Prov.Vars...))
		}
		e, err := cq.EnumerateConstantDelay(dbx, ext, c)
		if err != nil {
			return nil, fmt.Errorf("ucq: disjunct %d: %w", i, err)
		}
		// Materialize so later disjuncts can use this one as provider, and
		// keep an enumerator over the materialized answers.
		answers[i] = delay.Collect(e)
		c.Tick(int64(len(answers[i])))
		enums = append(enums, delay.Slice(answers[i]))
	}
	// Emit in disjunct order with duplicate elimination.
	ordered := make([]delay.Enumerator, len(u.Disjuncts))
	for pos, i := range plan.Order {
		ordered[i] = enums[pos]
	}
	return delay.Dedup(delay.Concat(ordered...), c), nil
}

// providedRelation builds the fresh atom's relation from the provider's
// materialized answers: each answer tuple, read through the homomorphism,
// yields one tuple over the provided variables (when the preimages agree).
func providedRelation(ea ExtAtom, provider *logic.CQ, ans []database.Tuple) (*database.Relation, error) {
	pos := map[string]int{}
	for i, v := range provider.Head {
		pos[v] = i
	}
	// preimages of each provided variable, as answer positions
	pre := make([][]int, len(ea.Prov.Vars))
	for i, v := range ea.Prov.Vars {
		for u, img := range ea.Prov.H {
			if img != v {
				continue
			}
			p, ok := pos[u]
			if !ok {
				return nil, fmt.Errorf("ucq: provided variable %q has non-free preimage %q", v, u)
			}
			pre[i] = append(pre[i], p)
		}
		if len(pre[i]) == 0 {
			return nil, fmt.Errorf("ucq: provided variable %q has no preimage", v)
		}
	}
	rel := database.NewRelation(ea.Pred, len(ea.Prov.Vars))
	for _, a := range ans {
		t := make(database.Tuple, len(ea.Prov.Vars))
		ok := true
		for i, ps := range pre {
			t[i] = a[ps[0]]
			for _, p := range ps[1:] {
				if a[p] != t[i] {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			rel.Insert(t)
		}
	}
	rel.Dedup()
	return rel, nil
}
