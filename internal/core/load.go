package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/database"
)

// LoadFacts reads a database in fact syntax, one fact per line:
//
//	edge(alice, bob).
//	age(alice, 31).
//	# comments and blank lines are skipped
//
// Symbolic constants are interned through the dictionary; integers are
// used verbatim as values. The trailing period is optional.
func LoadFacts(r io.Reader, dict *database.Dictionary) (*database.Database, error) {
	db := database.NewDatabase()
	pending := make(map[string][]database.Tuple)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		line = strings.TrimSuffix(line, ".")
		open := strings.IndexByte(line, '(')
		if open <= 0 || !strings.HasSuffix(line, ")") {
			return nil, fmt.Errorf("core: line %d: want pred(arg,...), got %q", lineNo, line)
		}
		pred := strings.TrimSpace(line[:open])
		if pred == "" {
			return nil, fmt.Errorf("core: line %d: missing predicate name in %q", lineNo, line)
		}
		argsStr := line[open+1 : len(line)-1]
		var args []string
		if strings.TrimSpace(argsStr) != "" {
			args = strings.Split(argsStr, ",")
		}
		tuple := make(database.Tuple, len(args))
		for i, a := range args {
			a = strings.TrimSpace(a)
			if a == "" {
				return nil, fmt.Errorf("core: line %d: empty argument %d of %s", lineNo, i+1, pred)
			}
			if n, err := strconv.ParseInt(a, 10, 64); err == nil {
				tuple[i] = database.Value(n)
			} else {
				tuple[i] = dict.Intern(a)
			}
		}
		rel := db.Relation(pred)
		if rel == nil {
			rel = database.NewRelation(pred, len(tuple))
			db.AddRelation(rel)
		}
		// The arity check runs per line — not deferred to the batch insert —
		// so a malformed input file surfaces as an error with line context,
		// never a crash or an end-of-load error pointing at nothing.
		if rel.Arity != len(tuple) {
			return nil, fmt.Errorf("core: line %d: %s used with arity %d and %d", lineNo, pred, rel.Arity, len(tuple))
		}
		pending[pred] = append(pending[pred], tuple)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Land each relation's rows as one batch: a load is O(1) generation
	// steps per relation, not one per fact line.
	for _, name := range db.Names() {
		rel := db.Relation(name)
		if err := rel.InsertBatch(pending[name]); err != nil {
			return nil, fmt.Errorf("core: loading %s: %w", name, err)
		}
		rel.Dedup()
	}
	return db, nil
}

// FormatTuple renders an answer tuple, translating interned values back to
// their names.
func FormatTuple(t database.Tuple, dict *database.Dictionary) string {
	parts := make([]string, len(t))
	for i, v := range t {
		name := dict.Name(v)
		if strings.HasPrefix(name, "?") {
			parts[i] = strconv.FormatInt(int64(v), 10)
		} else {
			parts[i] = name
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
