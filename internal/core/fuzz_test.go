package core

import (
	"strings"
	"testing"

	"repro/internal/database"
)

// FuzzLoad drives the fact-file loader with arbitrary input, seeded with
// the fact syntax the examples produce (examples/quickstart's catalogue,
// comments, symbolic and integer constants) plus near-miss malformed lines.
// Properties: no panic, errors instead of garbage, and deterministic
// results — loading the same bytes twice yields the same database.
func FuzzLoad(f *testing.F) {
	seeds := []string{
		"bought(ada, laptop).\nbought(bob, laptop).\ncategory(laptop, electronics).\n",
		"edge(alice, bob).\nage(alice, 31).\n# comments and blank lines are skipped\n\n",
		"% prolog-style comment\nE(1, 2).\nE(2, 3)\n",
		"R(1,2,3).\nR(4,5,6).\nS().\n",
		"pred(.\n",
		"(x, y).\n",
		"R(1, 2.\n",
		"R(1,2)\nR(1)\n",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db1, err1 := LoadFacts(strings.NewReader(src), database.NewDictionary())
		db2, err2 := LoadFacts(strings.NewReader(src), database.NewDictionary())
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if db1.Size() != db2.Size() {
			t.Fatalf("nondeterministic load: %d vs %d tuples", db1.Size(), db2.Size())
		}
		names := db1.Names()
		if len(names) != len(db2.Names()) {
			t.Fatalf("nondeterministic relations: %v vs %v", names, db2.Names())
		}
		for _, n := range names {
			r1, r2 := db1.Relation(n), db2.Relation(n)
			if r2 == nil || r1.Arity != r2.Arity || r1.Len() != r2.Len() {
				t.Fatalf("relation %s differs between identical loads", n)
			}
			// Internal consistency: every tuple has the relation's arity.
			for _, tp := range r1.Tuples {
				if len(tp) != r1.Arity {
					t.Fatalf("relation %s/%d holds tuple %v of arity %d", n, r1.Arity, tp, len(tp))
				}
			}
		}
	})
}
