package core

import (
	"io"
	"os"

	"repro/internal/database"
	"repro/internal/snapshot"
)

// closerFunc adapts a func to io.Closer.
type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// LoadPath loads a database from path, accepting either format the tools
// take for -data: a snapshot file (detected by its magic) is restored
// through the out-of-core reader — mmap-backed where the platform allows,
// so a large database starts serving without a parse or a copy — and
// anything else is parsed as fact text.
//
// The returned Closer releases the snapshot mapping (a no-op for text
// loads; never nil) and must not be called while the database is still in
// use, unless every relation has promoted to heap storage.
func LoadPath(path string) (*database.Database, *database.Dictionary, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	var head [8]byte
	n, _ := io.ReadFull(f, head[:])
	if snapshot.Sniff(head[:n]) {
		f.Close()
		s, err := snapshot.Open(path)
		if err != nil {
			return nil, nil, nil, err
		}
		return s.Database(), s.Dictionary(), closerFunc(s.Close), nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	dict := database.NewDictionary()
	db, err := LoadFacts(f, dict)
	f.Close()
	if err != nil {
		return nil, nil, nil, err
	}
	return db, dict, closerFunc(func() error { return nil }), nil
}
