package core

import (
	"strings"
	"testing"

	"repro/internal/database"
)

// Malformed input files must come back as errors carrying the offending
// line number — never as a panic out of Relation.Insert (the qeval crash).
func TestLoadFactsMalformedInputErrors(t *testing.T) {
	cases := []struct {
		name, src, wantLine string
	}{
		{"arity mismatch", "edge(a, b).\nedge(a).\n", "line 2"},
		{"arity mismatch later", "p(1).\np(2).\np(3,4).\n", "line 3"},
		{"empty argument", "edge(a, , b).\n", "line 1"},
		{"trailing comma", "edge(a, b,).\n", "line 1"},
		{"missing predicate", "(a, b).\n", "line 1"},
		{"no parens", "just words\n", "line 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("LoadFacts panicked on malformed input: %v", r)
				}
			}()
			_, err := LoadFacts(strings.NewReader(tc.src), database.NewDictionary())
			if err == nil {
				t.Fatalf("LoadFacts accepted malformed input %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Errorf("error lacks %s context: %v", tc.wantLine, err)
			}
		})
	}
}

func TestLoadFactsCommentsAndBlanks(t *testing.T) {
	src := "# comment\n\n% other comment\nedge(a, b)\nedge(b, c).\n"
	db, err := LoadFacts(strings.NewReader(src), database.NewDictionary())
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Relation("edge").Len(); got != 2 {
		t.Errorf("loaded %d tuples, want 2", got)
	}
}
