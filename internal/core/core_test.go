package core

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
	"repro/internal/logic/logictest"
)

func TestAnalyzeVerdicts(t *testing.T) {
	cases := []struct {
		src        string
		acyclic    bool
		freeConnex bool
		starSize   int
		enumHint   string
	}{
		{"Q(x,y) :- A(x,y), B(y,z).", true, true, 1, "Constant-Delay"},
		{"Q(x,y) :- A(x,z), B(z,y).", true, false, 2, "linear delay"},
		{"Q() :- E(x,y), E(y,z), E(z,x).", false, false, 0, "Hyperclique"},
	}
	for _, c := range cases {
		r := Analyze(logictest.MustParseCQ(c.src))
		if r.Acyclic != c.acyclic || r.FreeConnex != c.freeConnex {
			t.Errorf("%s: acyclic=%v freeConnex=%v", c.src, r.Acyclic, r.FreeConnex)
		}
		if c.acyclic && r.StarSize != c.starSize {
			t.Errorf("%s: star size %d, want %d", c.src, r.StarSize, c.starSize)
		}
		if !strings.Contains(r.EnumerationVerdict, c.enumHint) {
			t.Errorf("%s: enumeration verdict %q lacks %q", c.src, r.EnumerationVerdict, c.enumHint)
		}
		if r.String() == "" {
			t.Errorf("empty report")
		}
	}
	// Order comparisons and negation verdicts.
	r := Analyze(logictest.MustParseCQ("Q(x) :- E(x,y), x < y."))
	if !r.HasOrder || !strings.Contains(r.DecisionVerdict, "W[1]") {
		t.Errorf("order verdict: %+v", r.DecisionVerdict)
	}
	rn := Analyze(logictest.MustParseCQ("Q() :- !R(x,y), !S(y,z)."))
	if !rn.HasNegation || !strings.Contains(rn.DecisionVerdict, "quasi-linear") {
		t.Errorf("negation verdict: %+v", rn.DecisionVerdict)
	}
}

func randomDB(rng *rand.Rand, q *logic.CQ) *database.Database {
	db := database.NewDatabase()
	add := func(pred string, arity int) {
		if db.Relation(pred) != nil {
			return
		}
		r := database.NewRelation(pred, arity)
		for i := 0; i < 10; i++ {
			tp := make(database.Tuple, arity)
			for j := range tp {
				tp[j] = database.Value(rng.Intn(4) + 1)
			}
			r.Insert(tp)
		}
		r.Dedup()
		db.AddRelation(r)
	}
	for _, a := range q.Atoms {
		add(a.Pred, len(a.Args))
	}
	for _, a := range q.NegAtoms {
		add(a.Pred, len(a.Args))
	}
	return db
}

func TestDispatchAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	queries := []string{
		"Q(x,y) :- A(x,y), B(y,z).",         // free-connex
		"Q(x,y) :- A(x,z), B(z,y).",         // acyclic, not free-connex
		"Q(x) :- A(x,y), B(y,x).",           // cyclic? A{x,y} B{y,x}: same edge set {x,y}: acyclic
		"Q(x,y) :- A(x,y), B(y,z), x != y.", // diseq free-connex
		"Q(x) :- A(x,y), x < y.",            // order: backtracking
		"Q() :- A(x,y), B(y,z), C(z,x).",    // cyclic Boolean
	}
	for trial := 0; trial < 30; trial++ {
		for _, src := range queries {
			q := logictest.MustParseCQ(src)
			db := randomDB(rng, q)
			want := q.EvalNaive(db)

			got, err := Enumerate(db, q, nil)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			res := delay.Collect(got)
			if len(res) != len(want) {
				t.Fatalf("trial %d %s: %d answers, want %d", trial, src, len(res), len(want))
			}

			cnt, err := Count(db, q)
			if err != nil {
				t.Fatalf("%s: count: %v", src, err)
			}
			if cnt.Cmp(big.NewInt(int64(len(want)))) != 0 {
				t.Fatalf("trial %d %s: count %s, want %d", trial, src, cnt, len(want))
			}

			ok, err := Decide(db, q)
			if err != nil {
				t.Fatalf("%s: decide: %v", src, err)
			}
			bq := &logic.CQ{Atoms: q.Atoms, Comparisons: q.Comparisons}
			if ok != bq.DecideNaive(db) {
				t.Fatalf("trial %d %s: decide mismatch", trial, src)
			}
		}
	}
}

func TestDecideNCQ(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := logictest.MustParseCQ("Q() :- !R(x,y), !S(y,z).")
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng, q)
		got, err := Decide(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if got != q.DecideNaive(db) {
			t.Fatalf("trial %d: NCQ decide mismatch", trial)
		}
	}
}

// Signed queries (mixed positive and negative atoms) are handled by the
// generic engine across all three tasks.
func TestSignedQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	queries := []string{
		"Q(x) :- R(x,y), !S(y,x).",
		"Q(x,y) :- R(x,y), !S(x,x).",
		"Q() :- R(x,y), !S(y,z).",
		"Q(x) :- !R(x,y), S(y,x), x != y.",
	}
	for trial := 0; trial < 25; trial++ {
		for _, src := range queries {
			q := logictest.MustParseCQ(src)
			db := randomDB(rng, q)
			want := q.EvalNaive(db)

			got, err := Enumerate(db, q, nil)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			if res := delay.Collect(got); len(res) != len(want) {
				t.Fatalf("trial %d %s: %d answers, want %d", trial, src, len(res), len(want))
			}
			cnt, err := Count(db, q)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			if cnt.Cmp(big.NewInt(int64(len(want)))) != 0 {
				t.Fatalf("trial %d %s: count %s want %d", trial, src, cnt, len(want))
			}
			bq := &logic.CQ{Atoms: q.Atoms, NegAtoms: q.NegAtoms, Comparisons: q.Comparisons}
			ok, err := Decide(db, q)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			if ok != bq.DecideNaive(db) {
				t.Fatalf("trial %d %s: decide mismatch", trial, src)
			}
		}
	}
}

func TestLoadFacts(t *testing.T) {
	src := `
# a small social network
friend(alice, bob).
friend(bob, carol).
age(alice, 31).
flag(7).

friend(alice, bob).
`
	dict := database.NewDictionary()
	db, err := LoadFacts(strings.NewReader(src), dict)
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("friend").Len() != 2 {
		t.Errorf("friend: %d tuples, want 2 (dedup)", db.Relation("friend").Len())
	}
	if db.Relation("age").Len() != 1 || db.Relation("flag").Len() != 1 {
		t.Errorf("age/flag loading failed")
	}
	// Numbers stay numbers; symbols intern.
	if db.Relation("flag").Tuples[0][0] != 7 {
		t.Errorf("numeric constant mangled")
	}
	got := FormatTuple(db.Relation("friend").Tuples[0], dict)
	if !strings.Contains(got, "alice") && !strings.Contains(got, "bob") {
		t.Errorf("FormatTuple: %s", got)
	}
	// Errors.
	if _, err := LoadFacts(strings.NewReader("nonsense"), dict); err == nil {
		t.Errorf("malformed line must fail")
	}
	if _, err := LoadFacts(strings.NewReader("r(a).\nr(a,b)."), dict); err == nil {
		t.Errorf("arity clash must fail")
	}
}
