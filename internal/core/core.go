// Package core is the public face of the library: it classifies a query
// along the paper's tractability dichotomies and dispatches the decision,
// counting and enumeration tasks to the matching engine.
//
// The classification implements the fine-grained frontier the survey maps
// out:
//
//   - acyclicity (GYO) gates the Yannakakis algorithm (Theorem 4.2);
//   - free-connexity decides Constant-Delay_lin enumerability for self-join
//     free conjunctive queries, assuming Mat-Mul and Hyperclique
//     (Theorems 4.8/4.9) — also in the presence of disequalities
//     (Theorem 4.20);
//   - the quantified star size locates the counting complexity of acyclic
//     queries: polynomial attainable exponent k (Theorem 4.28), #W[1]-hard
//     beyond bounded star size;
//   - β-acyclicity decides quasi-linear decidability of negative queries
//     (Theorem 4.31, assuming Triangle);
//   - order comparisons (<, ≤) put even acyclic queries at W[1]-hardness
//     (Theorem 4.15).
//
// Since the introduction of the Compile → Bind → Execute pipeline the
// classifier and the dispatch live in internal/plan; the one-shot
// functions here are thin wrappers — each call compiles, binds, and
// executes once. Callers that repeat a (query, database) pair should use
// the pipeline (or a plan.Cache) directly and pay the preprocessing once.
package core

import (
	"math/big"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
	"repro/internal/plan"
)

// Report is the tractability classification of a conjunctive query. It is
// produced by the plan compiler; the alias keeps the historical core API.
type Report = plan.Report

// Analyze classifies q along the paper's dichotomies.
func Analyze(q *logic.CQ) *Report {
	return plan.Analyze(q)
}

// Decide answers the Boolean version of q over db with the best applicable
// engine.
func Decide(db *database.Database, q *logic.CQ) (bool, error) {
	// The decision problem concerns the head-stripped query; compiling the
	// Boolean query keeps Bind from building an enumeration spine wider
	// than the decision needs.
	bq := &logic.CQ{Name: q.Name, Atoms: q.Atoms, NegAtoms: q.NegAtoms, Comparisons: q.Comparisons}
	p, err := plan.Compile(bq)
	if err != nil {
		return false, err
	}
	pr, err := p.Bind(db)
	if err != nil {
		return false, err
	}
	return pr.Decide(nil)
}

// DecideUCQ answers the Boolean version of a union of conjunctive queries:
// true iff some disjunct decides true. Disjuncts are decided in order and
// the scan short-circuits at the first satisfied one.
func DecideUCQ(db *database.Database, u *logic.UCQ) (bool, error) {
	p, err := plan.CompileUCQ(u)
	if err != nil {
		return false, err
	}
	pr, err := p.Bind(db)
	if err != nil {
		return false, err
	}
	return pr.Decide(nil)
}

// Count computes |φ(D)| with the best applicable engine.
func Count(db *database.Database, q *logic.CQ) (*big.Int, error) {
	p, err := plan.Compile(q)
	if err != nil {
		return nil, err
	}
	pr, err := p.Bind(db)
	if err != nil {
		return nil, err
	}
	return pr.Count(nil)
}

// CountUCQ counts the answers of a union of conjunctive queries by
// inclusion–exclusion over disjunct intersections.
func CountUCQ(db *database.Database, u *logic.UCQ) (*big.Int, error) {
	p, err := plan.CompileUCQ(u)
	if err != nil {
		return nil, err
	}
	pr, err := p.Bind(db)
	if err != nil {
		return nil, err
	}
	return pr.Count(nil)
}

// EnumerateUCQ enumerates a union of conjunctive queries: constant delay
// with deduplication when the union is free-connex via union extensions
// (Theorem 4.13), and a materializing fallback otherwise.
func EnumerateUCQ(db *database.Database, u *logic.UCQ, c *delay.Counter) (delay.Enumerator, error) {
	p, err := plan.CompileUCQ(u)
	if err != nil {
		return nil, err
	}
	pr, err := p.BindCounted(db, c)
	if err != nil {
		return nil, err
	}
	return pr.Enumerate(c)
}

// Enumerate produces an answer enumerator with the best applicable engine:
// constant delay for free-connex (with or without disequalities), linear
// delay for other acyclic queries, and a materializing fallback otherwise.
// The preprocessing of the underlying engine runs inside BindCounted, so
// counted steps are placed exactly as when calling the engine directly.
func Enumerate(db *database.Database, q *logic.CQ, c *delay.Counter) (delay.Enumerator, error) {
	p, err := plan.Compile(q)
	if err != nil {
		return nil, err
	}
	pr, err := p.BindCounted(db, c)
	if err != nil {
		return nil, err
	}
	return pr.Enumerate(c)
}
