// Package core is the public face of the library: it classifies a query
// along the paper's tractability dichotomies and dispatches the decision,
// counting and enumeration tasks to the matching engine.
//
// The classification implements the fine-grained frontier the survey maps
// out:
//
//   - acyclicity (GYO) gates the Yannakakis algorithm (Theorem 4.2);
//   - free-connexity decides Constant-Delay_lin enumerability for self-join
//     free conjunctive queries, assuming Mat-Mul and Hyperclique
//     (Theorems 4.8/4.9) — also in the presence of disequalities
//     (Theorem 4.20);
//   - the quantified star size locates the counting complexity of acyclic
//     queries: polynomial attainable exponent k (Theorem 4.28), #W[1]-hard
//     beyond bounded star size;
//   - β-acyclicity decides quasi-linear decidability of negative queries
//     (Theorem 4.31, assuming Triangle);
//   - order comparisons (<, ≤) put even acyclic queries at W[1]-hardness
//     (Theorem 4.15).
package core

import (
	"fmt"
	"math/big"
	"strings"

	"repro/internal/counting"
	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/hypergraph"
	"repro/internal/ineq"
	"repro/internal/logic"
	"repro/internal/ncq"
	"repro/internal/ucq"
)

// Report is the tractability classification of a conjunctive query.
type Report struct {
	Query        *logic.CQ
	Arity        int
	SelfJoinFree bool
	HasNegation  bool
	HasOrder     bool // <, ≤ comparisons
	HasDiseq     bool // ≠ comparisons

	Acyclic     bool
	FreeConnex  bool
	StarSize    int // quantified star size (acyclic queries only)
	BetaAcyclic bool

	DecisionVerdict    string
	CountingVerdict    string
	EnumerationVerdict string
}

// Analyze classifies q along the paper's dichotomies.
func Analyze(q *logic.CQ) *Report {
	r := &Report{
		Query:        q,
		Arity:        len(q.Head),
		SelfJoinFree: q.IsSelfJoinFree(),
		HasNegation:  len(q.NegAtoms) > 0,
	}
	for _, c := range q.Comparisons {
		switch c.Op {
		case logic.LT, logic.LE:
			r.HasOrder = true
		case logic.NEQ:
			r.HasDiseq = true
		}
	}
	h := q.Hypergraph()
	r.Acyclic = hypergraph.IsAcyclic(h)
	r.BetaAcyclic = hypergraph.IsBetaAcyclic(h)
	if r.Acyclic {
		r.FreeConnex = hypergraph.FreeConnex(h, q.Head)
		r.StarSize = hypergraph.QuantifiedStarSize(h, q.Head)
	}
	r.fillVerdicts()
	return r
}

func (r *Report) fillVerdicts() {
	switch {
	case r.HasNegation && len(r.Query.Atoms) == 0:
		if r.BetaAcyclic {
			r.DecisionVerdict = "quasi-linear (β-acyclic NCQ, Theorem 4.31)"
		} else {
			r.DecisionVerdict = "no quasi-linear algorithm expected (not β-acyclic, Theorem 4.31 under Triangle)"
		}
		r.CountingVerdict = "not covered (negative queries: see #SAT literature, Section 4.5)"
		r.EnumerationVerdict = r.DecisionVerdict
		return
	case r.HasNegation:
		r.DecisionVerdict = "signed query: only partial characterizations known ([18], Section 4.5); generic backtracking used"
		r.CountingVerdict = r.DecisionVerdict
		r.EnumerationVerdict = r.DecisionVerdict
		return
	case r.HasOrder:
		r.DecisionVerdict = "W[1]-complete in general (ACQ<, Theorem 4.15); generic backtracking used"
		r.CountingVerdict = r.DecisionVerdict
		r.EnumerationVerdict = r.DecisionVerdict
		return
	case !r.Acyclic:
		r.DecisionVerdict = "cyclic: NP-complete combined complexity (Chandra–Merlin); generic backtracking used"
		r.CountingVerdict = "cyclic: ♯P-hard in general; brute-force counting used"
		r.EnumerationVerdict = "no Constant-Delay_lin expected (Theorem 4.9 under Hyperclique)"
		return
	}
	r.DecisionVerdict = "O(‖φ‖·‖D‖) semijoin pass (Yannakakis, Theorem 4.2)"
	if r.StarSize == 1 {
		r.CountingVerdict = "polynomial via star-size algorithm, k = 1 (free-connex, Theorem 4.28)"
	} else {
		r.CountingVerdict = fmt.Sprintf("(‖D‖+‖φ‖)^O(k) via star-size algorithm, k = %d (Theorem 4.28)", r.StarSize)
	}
	suffix := ""
	if r.HasDiseq {
		suffix = " with disequalities (Theorem 4.20)"
	}
	if r.FreeConnex {
		r.EnumerationVerdict = "Constant-Delay_lin (free-connex, Theorem 4.6)" + suffix
	} else if r.SelfJoinFree {
		r.EnumerationVerdict = "linear delay (Theorem 4.3); constant delay impossible under Mat-Mul (Theorem 4.8)" + suffix
	} else {
		r.EnumerationVerdict = "linear delay (Theorem 4.3); not free-connex (self-joins: classification open)" + suffix
	}
}

// String renders the report as an aligned block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query:          %s\n", r.Query)
	fmt.Fprintf(&b, "arity:          %d\n", r.Arity)
	fmt.Fprintf(&b, "self-join free: %v\n", r.SelfJoinFree)
	fmt.Fprintf(&b, "acyclic:        %v\n", r.Acyclic)
	if r.Acyclic {
		fmt.Fprintf(&b, "free-connex:    %v\n", r.FreeConnex)
		fmt.Fprintf(&b, "star size:      %d\n", r.StarSize)
	}
	fmt.Fprintf(&b, "β-acyclic:      %v\n", r.BetaAcyclic)
	fmt.Fprintf(&b, "decide:         %s\n", r.DecisionVerdict)
	fmt.Fprintf(&b, "count:          %s\n", r.CountingVerdict)
	fmt.Fprintf(&b, "enumerate:      %s\n", r.EnumerationVerdict)
	return b.String()
}

// Decide answers the Boolean version of q over db with the best applicable
// engine.
func Decide(db *database.Database, q *logic.CQ) (bool, error) {
	bq := &logic.CQ{Name: q.Name, Atoms: q.Atoms, NegAtoms: q.NegAtoms, Comparisons: q.Comparisons}
	switch {
	case len(bq.NegAtoms) > 0 && len(bq.Atoms) == 0:
		ok, err := ncq.Decide(db, bq)
		if err != nil {
			return ncq.DecideBrute(db, bq)
		}
		return ok, nil
	case len(bq.NegAtoms) > 0:
		// Signed queries (Section 4.5): only partial complexity
		// characterizations exist; the generic backtracking engine decides
		// them correctly.
		return ineq.DecideBacktrack(db, bq)
	case len(bq.Comparisons) > 0 || !bq.IsAcyclic():
		return ineq.DecideBacktrack(db, bq)
	default:
		return cq.Decide(db, bq)
	}
}

// Count computes |φ(D)| with the best applicable engine.
func Count(db *database.Database, q *logic.CQ) (*big.Int, error) {
	s := counting.BigInt{}
	onlyEqNeq := true
	for _, c := range q.Comparisons {
		if c.Op != logic.EQ && c.Op != logic.NEQ {
			onlyEqNeq = false
		}
	}
	switch {
	case len(q.NegAtoms) == 0 && len(q.Comparisons) == 0 && q.IsAcyclic():
		v, err := counting.Count(db, q, counting.UnitWeight(s), s)
		if err != nil {
			return nil, err
		}
		return v.(*big.Int), nil
	case len(q.NegAtoms) == 0 && onlyEqNeq && q.IsAcyclic():
		return counting.CountNeq(db, q)
	default:
		// Generic fallback: backtracking evaluation.
		res, err := ineq.EvalBacktrack(db, q)
		if err != nil {
			return nil, err
		}
		return big.NewInt(int64(len(res))), nil
	}
}

// CountUCQ counts the answers of a union of conjunctive queries by
// inclusion–exclusion over disjunct intersections.
func CountUCQ(db *database.Database, u *logic.UCQ) (*big.Int, error) {
	return counting.CountUCQ(db, u)
}

// EnumerateUCQ enumerates a union of conjunctive queries: constant delay
// with deduplication when the union is free-connex via union extensions
// (Theorem 4.13), and a materializing fallback otherwise.
func EnumerateUCQ(db *database.Database, u *logic.UCQ, c *delay.Counter) (delay.Enumerator, error) {
	if e, err := ucq.Enumerate(db, u, 2, c); err == nil {
		return e, nil
	}
	// Fallback: evaluate each disjunct and deduplicate.
	var all []database.Tuple
	seen := map[string]bool{}
	for _, d := range u.Disjuncts {
		res, err := ineq.EvalBacktrack(db, d)
		if err != nil {
			return nil, err
		}
		for _, t := range res {
			k := t.FullKey()
			if !seen[k] {
				seen[k] = true
				all = append(all, t)
			}
		}
	}
	return delay.Slice(all), nil
}

// Enumerate produces an answer enumerator with the best applicable engine:
// constant delay for free-connex (with or without disequalities), linear
// delay for other acyclic queries, and a materializing fallback otherwise.
func Enumerate(db *database.Database, q *logic.CQ, c *delay.Counter) (delay.Enumerator, error) {
	if len(q.NegAtoms) > 0 {
		// Signed queries: materialize via the generic engine.
		res, err := ineq.EvalBacktrack(db, q)
		if err != nil {
			return nil, err
		}
		return delay.Slice(res), nil
	}
	hasOrder := false
	hasDiseq := false
	for _, cmp := range q.Comparisons {
		switch cmp.Op {
		case logic.LT, logic.LE, logic.EQ:
			hasOrder = true
		case logic.NEQ:
			hasDiseq = true
		}
	}
	plain := &logic.CQ{Name: q.Name, Head: q.Head, Atoms: q.Atoms}
	switch {
	case hasOrder || !plain.IsAcyclic():
		res, err := ineq.EvalBacktrack(db, q)
		if err != nil {
			return nil, err
		}
		return delay.Slice(res), nil
	case hasDiseq:
		if plain.IsFreeConnex() {
			return ineq.EnumerateNeq(db, q, c)
		}
		res, err := ineq.EvalBacktrack(db, q)
		if err != nil {
			return nil, err
		}
		return delay.Slice(res), nil
	case plain.IsFreeConnex():
		return cq.EnumerateConstantDelay(db, q, c)
	default:
		return cq.EnumerateLinearDelay(db, q, c)
	}
}
