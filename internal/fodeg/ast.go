package fodeg

import (
	"fmt"

	"repro/internal/logic"
)

// Formula is first-order logic over a functional structure: unary
// predicates applied to terms, and (dis)equalities between terms. An atom
// with an undefined term is false.
type Formula interface{ fof() }

// Pr is a predicate atom P(t).
type Pr struct {
	Pred int // bitmap id
	T    Term
}

// Eq is an equality t1 = t2 (true iff both sides are defined and equal).
type Eq struct{ T1, T2 Term }

// Not, Conj, Disj are the Boolean connectives.
type Not struct{ F Formula }

// Conjunction.
type Conj struct{ Fs []Formula }

// Disjunction.
type Disj struct{ Fs []Formula }

// Ex is ∃Var.F; All is ∀Var.F.
type Ex struct {
	Var string
	F   Formula
}

// All is universal quantification.
type All struct {
	Var string
	F   Formula
}

func (Pr) fof()   {}
func (Eq) fof()   {}
func (Not) fof()  {}
func (Conj) fof() {}
func (Disj) fof() {}
func (Ex) fof()   {}
func (All) fof()  {}

// V returns the identity term on a variable.
func V(name string) Term { return Term{Var: name} }

// Ap applies function ids to a term (innermost first).
func Ap(t Term, fs ...int) Term {
	return Term{Var: t.Var, Path: append(append([]int(nil), t.Path...), fs...)}
}

// FreeVarsFOF returns the free variables of f in first-occurrence order.
func FreeVarsFOF(f Formula) []string {
	var out []string
	seen := map[string]bool{}
	bound := map[string]int{}
	var rec func(g Formula)
	add := func(t Term) {
		if bound[t.Var] == 0 && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	rec = func(g Formula) {
		switch h := g.(type) {
		case Pr:
			add(h.T)
		case Eq:
			add(h.T1)
			add(h.T2)
		case Not:
			rec(h.F)
		case Conj:
			for _, x := range h.Fs {
				rec(x)
			}
		case Disj:
			for _, x := range h.Fs {
				rec(x)
			}
		case Ex:
			bound[h.Var]++
			rec(h.F)
			bound[h.Var]--
		case All:
			bound[h.Var]++
			rec(h.F)
			bound[h.Var]--
		}
	}
	rec(f)
	return out
}

// EvalNaive decides the formula under an assignment by brute force over
// the domain — the ‖φ‖·n^h reference evaluator of Section 3's preamble.
func (s *Structure) EvalNaive(f Formula, asg map[string]int) bool {
	switch h := f.(type) {
	case Pr:
		v := h.T.evalAsg(s, asg)
		return v >= 0 && s.preds[h.Pred][v]
	case Eq:
		a := h.T1.evalAsg(s, asg)
		b := h.T2.evalAsg(s, asg)
		return a >= 0 && b >= 0 && a == b
	case Not:
		return !s.EvalNaive(h.F, asg)
	case Conj:
		for _, x := range h.Fs {
			if !s.EvalNaive(x, asg) {
				return false
			}
		}
		return true
	case Disj:
		for _, x := range h.Fs {
			if s.EvalNaive(x, asg) {
				return true
			}
		}
		return false
	case Ex:
		old, had := asg[h.Var]
		for a := 0; a < s.N; a++ {
			asg[h.Var] = a
			if s.EvalNaive(h.F, asg) {
				restoreAsg(asg, h.Var, old, had)
				return true
			}
		}
		restoreAsg(asg, h.Var, old, had)
		return false
	case All:
		old, had := asg[h.Var]
		for a := 0; a < s.N; a++ {
			asg[h.Var] = a
			if !s.EvalNaive(h.F, asg) {
				restoreAsg(asg, h.Var, old, had)
				return false
			}
		}
		restoreAsg(asg, h.Var, old, had)
		return true
	}
	return false
}

func restoreAsg(asg map[string]int, v string, old int, had bool) {
	if had {
		asg[v] = old
	} else {
		delete(asg, v)
	}
}

func (t Term) evalAsg(s *Structure, asg map[string]int) int {
	a, ok := asg[t.Var]
	if !ok {
		return -1
	}
	return t.Eval(s, a)
}

// TranslateGraphFO translates a relational first-order formula over the
// signature {E/2, unary predicates, =, ≠} into functional form: an atom
// E(x,y) becomes ⋁_f f(x)=y over the edge-matching functions (and their
// inverses), exactly the representation change of Section 3.1. Constants
// and set variables are not supported.
func (s *Structure) TranslateGraphFO(f logic.Formula) (Formula, error) {
	edge := s.EdgeFuncIDs()
	var rec func(g logic.Formula) (Formula, error)
	termVar := func(t logic.Term) (string, error) {
		if t.IsConst {
			return "", fmt.Errorf("fodeg: constants not supported in translation")
		}
		return t.Var, nil
	}
	rec = func(g logic.Formula) (Formula, error) {
		switch h := g.(type) {
		case logic.FAtom:
			if h.Pred == "E" {
				if len(h.Args) != 2 {
					return nil, fmt.Errorf("fodeg: E must be binary")
				}
				x, err := termVar(h.Args[0])
				if err != nil {
					return nil, err
				}
				y, err := termVar(h.Args[1])
				if err != nil {
					return nil, err
				}
				var ds []Formula
				for _, fid := range edge {
					ds = append(ds, Eq{T1: Ap(V(x), fid), T2: V(y)})
				}
				if len(ds) == 0 {
					// No edges at all: E is empty.
					return Disj{}, nil
				}
				return Disj{Fs: ds}, nil
			}
			if len(h.Args) != 1 {
				return nil, fmt.Errorf("fodeg: only E/2 and unary predicates supported, got %s/%d", h.Pred, len(h.Args))
			}
			id, ok := s.PredID(h.Pred)
			if !ok {
				return nil, fmt.Errorf("fodeg: unknown predicate %q", h.Pred)
			}
			x, err := termVar(h.Args[0])
			if err != nil {
				return nil, err
			}
			return Pr{Pred: id, T: V(x)}, nil
		case logic.FComp:
			x, err := termVar(h.L)
			if err != nil {
				return nil, err
			}
			y, err := termVar(h.R)
			if err != nil {
				return nil, err
			}
			switch h.Op {
			case logic.EQ:
				return Eq{T1: V(x), T2: V(y)}, nil
			case logic.NEQ:
				return Not{F: Eq{T1: V(x), T2: V(y)}}, nil
			}
			return nil, fmt.Errorf("fodeg: order comparisons not supported")
		case logic.FNot:
			inner, err := rec(h.F)
			if err != nil {
				return nil, err
			}
			return Not{F: inner}, nil
		case logic.FAnd:
			var fs []Formula
			for _, x := range h.Fs {
				y, err := rec(x)
				if err != nil {
					return nil, err
				}
				fs = append(fs, y)
			}
			return Conj{Fs: fs}, nil
		case logic.FOr:
			var fs []Formula
			for _, x := range h.Fs {
				y, err := rec(x)
				if err != nil {
					return nil, err
				}
				fs = append(fs, y)
			}
			return Disj{Fs: fs}, nil
		case logic.FExists:
			inner, err := rec(h.F)
			if err != nil {
				return nil, err
			}
			return Ex{Var: h.Var, F: inner}, nil
		case logic.FForall:
			inner, err := rec(h.F)
			if err != nil {
				return nil, err
			}
			return All{Var: h.Var, F: inner}, nil
		}
		return nil, fmt.Errorf("fodeg: unsupported construct %T", g)
	}
	return rec(f)
}
