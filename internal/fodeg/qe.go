package fodeg

import "fmt"

// Lit is a literal of the quantifier-free normal form: a (possibly
// negated) predicate atom P(t) or equality t1 = t2. Predicate atoms hold
// iff the term is defined and the bitmap holds; equalities hold iff both
// sides are defined and equal. Negation is classical.
type Lit struct {
	Neg  bool
	Pred int // bitmap id, or -1 for an equality literal
	T1   Term
	T2   Term // only for equality literals
}

// CConj is a conjunction of literals; CDNF a disjunction of conjunctions.
// An empty CConj is true; an empty CDNF is false.
type CConj []Lit

// CDNF is a disjunction of conjunctions of literals.
type CDNF []CConj

// EvalLit evaluates a literal under an assignment of its variables.
func (s *Structure) EvalLit(l Lit, asg map[string]int) bool {
	var v bool
	if l.Pred >= 0 {
		a := l.T1.evalAsg(s, asg)
		v = a >= 0 && s.preds[l.Pred][a]
	} else {
		a := l.T1.evalAsg(s, asg)
		b := l.T2.evalAsg(s, asg)
		v = a >= 0 && b >= 0 && a == b
	}
	if l.Neg {
		return !v
	}
	return v
}

// EvalConj evaluates a conjunction under an assignment.
func (s *Structure) EvalConj(c CConj, asg map[string]int) bool {
	for _, l := range c {
		if !s.EvalLit(l, asg) {
			return false
		}
	}
	return true
}

// EvalDNF evaluates a DNF under an assignment.
func (s *Structure) EvalDNF(d CDNF, asg map[string]int) bool {
	for _, c := range d {
		if s.EvalConj(c, asg) {
			return true
		}
	}
	return false
}

// mentions reports whether the literal mentions variable v.
func (l Lit) mentions(v string) bool {
	if l.T1.Var == v {
		return true
	}
	return l.Pred < 0 && l.T2.Var == v
}

// Compile performs the quantifier elimination of Section 3 on a functional
// formula, producing an equivalent quantifier-free DNF over the free
// variables, together with derived predicates registered in the structure
// (the enriched structure D′ of the paper). The work is f(‖φ‖)·n: every
// derived bitmap costs one linear pass; the per-quantifier case analysis
// (Example 3.3's ∃^{h+1}ψ thresholds and ψ^Q_P subsets) is data-independent.
func (s *Structure) Compile(f Formula) (CDNF, error) {
	g := nnf(f, false)
	return s.compile(g)
}

// nnf pushes negations down to atoms.
func nnf(f Formula, neg bool) Formula {
	switch h := f.(type) {
	case Pr, Eq:
		if neg {
			return Not{F: f}
		}
		return f
	case Not:
		return nnf(h.F, !neg)
	case Conj:
		fs := make([]Formula, len(h.Fs))
		for i, x := range h.Fs {
			fs[i] = nnf(x, neg)
		}
		if neg {
			return Disj{Fs: fs}
		}
		return Conj{Fs: fs}
	case Disj:
		fs := make([]Formula, len(h.Fs))
		for i, x := range h.Fs {
			fs[i] = nnf(x, neg)
		}
		if neg {
			return Conj{Fs: fs}
		}
		return Disj{Fs: fs}
	case Ex:
		if neg {
			return All{Var: h.Var, F: nnf(h.F, true)}
		}
		return Ex{Var: h.Var, F: nnf(h.F, false)}
	case All:
		if neg {
			return Ex{Var: h.Var, F: nnf(h.F, true)}
		}
		return All{Var: h.Var, F: nnf(h.F, false)}
	}
	panic("fodeg: nnf: unknown node")
}

func (s *Structure) compile(f Formula) (CDNF, error) {
	switch h := f.(type) {
	case Pr:
		return CDNF{{Lit{Pred: h.Pred, T1: h.T}}}, nil
	case Eq:
		return CDNF{{Lit{Pred: -1, T1: h.T1, T2: h.T2}}}, nil
	case Not:
		switch a := h.F.(type) {
		case Pr:
			return CDNF{{Lit{Neg: true, Pred: a.Pred, T1: a.T}}}, nil
		case Eq:
			return CDNF{{Lit{Neg: true, Pred: -1, T1: a.T1, T2: a.T2}}}, nil
		}
		return nil, fmt.Errorf("fodeg: non-atomic negation after NNF")
	case Conj:
		out := CDNF{{}}
		for _, x := range h.Fs {
			d, err := s.compile(x)
			if err != nil {
				return nil, err
			}
			out = distribute(out, d)
		}
		return out, nil
	case Disj:
		var out CDNF
		for _, x := range h.Fs {
			d, err := s.compile(x)
			if err != nil {
				return nil, err
			}
			out = append(out, d...)
		}
		return out, nil
	case Ex:
		d, err := s.compile(h.F)
		if err != nil {
			return nil, err
		}
		var out CDNF
		for _, c := range d {
			e, err := s.eliminate(c, h.Var)
			if err != nil {
				return nil, err
			}
			out = append(out, e...)
		}
		return simplifyDNF(out), nil
	case All:
		// ∀y φ ≡ ¬∃y ¬φ, with DNF-level negation.
		d, err := s.compile(h.F)
		if err != nil {
			return nil, err
		}
		nd := negateDNF(d)
		var ex CDNF
		for _, c := range nd {
			e, err := s.eliminate(c, h.Var)
			if err != nil {
				return nil, err
			}
			ex = append(ex, e...)
		}
		return negateDNF(simplifyDNF(ex)), nil
	}
	return nil, fmt.Errorf("fodeg: compile: unknown node %T", f)
}

// distribute computes the conjunction of two DNFs, simplifying the result.
func distribute(a, b CDNF) CDNF {
	var out CDNF
	for _, ca := range a {
		for _, cb := range b {
			c := make(CConj, 0, len(ca)+len(cb))
			c = append(c, ca...)
			c = append(c, cb...)
			out = append(out, c)
		}
	}
	return simplifyDNF(out)
}

// negateDNF negates a DNF and redistributes into DNF.
func negateDNF(d CDNF) CDNF {
	out := CDNF{{}} // true
	for _, c := range d {
		var lits CDNF
		for _, l := range c {
			nl := l
			nl.Neg = !l.Neg
			lits = append(lits, CConj{nl})
		}
		// ¬conj = disjunction of negated literals; and with accumulator.
		out = distribute(out, lits)
	}
	return out
}

func litKey(l Lit) string {
	return fmt.Sprint(l.Neg, l.Pred, l.T1.Var, l.T1.Path, l.T2.Var, l.T2.Path)
}

// simplifyDNF deduplicates literals inside conjunctions, drops conjunctions
// containing complementary literal pairs, deduplicates conjunctions, and
// removes subsumed conjunctions (a conjunction whose literal set contains
// another's is implied by it). Keeping DNFs reduced is what makes the
// double-negation handling of universal quantifiers feasible.
func simplifyDNF(d CDNF) CDNF {
	var reduced []CConj
	var keysets []map[string]bool
	for _, c := range d {
		keys := map[string]bool{}
		var cc CConj
		contradictory := false
		for _, l := range c {
			k := litKey(l)
			if keys[k] {
				continue
			}
			nl := l
			nl.Neg = !l.Neg
			if keys[litKey(nl)] {
				contradictory = true
				break
			}
			keys[k] = true
			cc = append(cc, l)
		}
		if contradictory {
			continue
		}
		reduced = append(reduced, cc)
		keysets = append(keysets, keys)
	}
	// Subsumption: drop conj i if some conj j (kept) has keys ⊆ keys(i).
	var out CDNF
	var outKeys []map[string]bool
	for i, c := range reduced {
		sub := false
		for j := range reduced {
			if i == j {
				continue
			}
			if len(keysets[j]) > len(keysets[i]) {
				continue
			}
			if len(keysets[j]) == len(keysets[i]) && j > i {
				continue // identical sets: keep the first
			}
			all := true
			for k := range keysets[j] {
				if !keysets[i][k] {
					all = false
					break
				}
			}
			if all {
				sub = true
				break
			}
		}
		if !sub {
			out = append(out, c)
			outKeys = append(outKeys, keysets[i])
		}
	}
	_ = outKeys
	return out
}

// eliminate computes ∃v c as a DNF over the remaining variables.
func (s *Structure) eliminate(c CConj, v string) (CDNF, error) {
	var rest CConj
	var vlits []Lit
	for _, l := range c {
		if l.mentions(v) {
			vlits = append(vlits, l)
		} else {
			rest = append(rest, l)
		}
	}
	if len(vlits) == 0 {
		// v unconstrained: ∃v true over a nonempty domain.
		if s.N == 0 {
			return nil, nil
		}
		return CDNF{rest}, nil
	}
	// 1. Same-variable (dis)equalities t(v) = s(v) become derived unary
	// predicates on v.
	var unary []Lit // predicate literals on v (identity term after pullback)
	var links []Lit // literals connecting v to another variable
	for _, l := range vlits {
		switch {
		case l.Pred >= 0:
			// P(t(v)): pull back to a bitmap on v.
			id := s.internBitmap(s.PullbackPred(l.T1.Path, l.Pred))
			unary = append(unary, Lit{Neg: l.Neg, Pred: id, T1: V(v)})
		case l.T1.Var == v && l.T2.Var == v:
			id := s.internBitmap(s.EqBitmap(l.T1.Path, l.T2.Path, true))
			unary = append(unary, Lit{Neg: l.Neg, Pred: id, T1: V(v)})
		default:
			// Normalize so that T1 is the v-side.
			if l.T2.Var == v {
				l.T1, l.T2 = l.T2, l.T1
			}
			links = append(links, l)
		}
	}
	// 2. A positive link t(v) = u(x) pins v = t̄(u(x)): substitute.
	for li, l := range links {
		if l.Neg {
			continue
		}
		// v = invPath(T1.Path) ∘ T2
		pin := Term{Var: l.T2.Var, Path: append(append([]int(nil), l.T2.Path...), s.InversePath(l.T1.Path)...)}
		out := rest
		// Definedness of the pin (implies the original equality).
		out = append(out, Lit{Pred: -1, T1: pin, T2: pin})
		for _, u := range unary {
			// u is Pred(id, v) possibly negated → Pred(id, pin-path).
			out = append(out, Lit{Neg: u.Neg, Pred: u.Pred, T1: Term{Var: pin.Var, Path: append(append([]int(nil), pin.Path...), u.T1.Path...)}})
		}
		for lj, m := range links {
			if lj == li {
				continue
			}
			// m: t'(v) ◇ u'(x'): substitute v.
			t := Term{Var: pin.Var, Path: append(append([]int(nil), pin.Path...), m.T1.Path...)}
			out = append(out, Lit{Neg: m.Neg, Pred: -1, T1: t, T2: m.T2})
		}
		return CDNF{out}, nil
	}
	// 3. Only negative links remain. By injectivity,
	// ¬(t(v) = u(x)) ⟺ v ≠ t̄(u(x)) where an undefined exception term
	// excludes nothing (a v with t(v) undefined can never equal t̄(u(x)),
	// which has t defined). So the conjunct is ψ(v) ∧ ⋀ v ≠ τ_i(x̄), the
	// normal form of Example 3.3, with no case analysis.
	var exceptions []Term
	seenExc := map[string]bool{}
	for _, l := range links {
		exc := Term{Var: l.T2.Var, Path: append(append([]int(nil), l.T2.Path...), s.InversePath(l.T1.Path)...)}
		key := fmt.Sprint(exc.Var, exc.Path)
		if !seenExc[key] {
			seenExc[key] = true
			exceptions = append(exceptions, exc)
		}
	}
	// ψ = conjunction of all unary conditions on v.
	var maps [][]bool
	var neg []bool
	for _, u := range unary {
		maps = append(maps, s.preds[u.Pred])
		neg = append(neg, u.Neg)
	}
	var psi []bool
	if len(maps) == 0 {
		psi = make([]bool, s.N)
		for i := range psi {
			psi[i] = true
		}
	} else {
		psi = AndBitmaps(s.N, maps, neg)
	}
	psiID := s.internBitmap(psi)
	psiCount := s.counts[psiID]
	k := len(exceptions)
	switch {
	case psiCount == 0:
		return nil, nil // no candidate for v
	case psiCount > k:
		// The paper's ∃^{h+1}ψ threshold test, resolved against the data:
		// more than k candidates can never all be excluded by k exception
		// values, so ∃v holds unconditionally.
		return CDNF{rest}, nil
	default:
		// ψ has at most k elements a_1..a_m: ∃v ⟺ ⋁_j "a_j avoids every
		// exception term", where "τ_i avoids a_j" is ¬Single_{a_j}(τ_i).
		var out CDNF
		for a := 0; a < s.N; a++ {
			if !psi[a] {
				continue
			}
			single := make([]bool, s.N)
			single[a] = true
			sid := s.internBitmap(single)
			c := append([]Lit(nil), rest...)
			for _, exc := range exceptions {
				c = append(c, Lit{Neg: true, Pred: sid, T1: exc})
			}
			out = append(out, c)
		}
		return out, nil
	}
}

// ModelCheck decides a sentence: compile and look for a satisfied conj.
// All conjunctions of the compiled sentence are variable-free.
func (s *Structure) ModelCheck(f Formula) (bool, error) {
	if vs := FreeVarsFOF(f); len(vs) > 0 {
		return false, fmt.Errorf("fodeg: ModelCheck on open formula (free: %v)", vs)
	}
	d, err := s.Compile(f)
	if err != nil {
		return false, err
	}
	for _, c := range d {
		if len(c) == 0 {
			return true, nil
		}
		// Defensive: a sentence should compile to constant conjunctions.
		sat := true
		for _, l := range c {
			if l.T1.Var != "" || (l.Pred < 0 && l.T2.Var != "") {
				return false, fmt.Errorf("fodeg: residual variable in sentence compilation")
			}
			if !s.EvalLit(l, nil) {
				sat = false
				break
			}
		}
		if sat {
			return true, nil
		}
	}
	return false, nil
}

