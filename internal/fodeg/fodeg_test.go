package fodeg

import (
	"fmt"
	"math/big"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
	"repro/internal/logic/logictest"
)

// randomBoundedDegreeGraph generates a graph with max degree ≤ d.
func randomBoundedDegreeGraph(rng *rand.Rand, n, d int) ([][2]int, []bool) {
	deg := make([]int, n)
	var edges [][2]int
	attempts := n * d
	for i := 0; i < attempts; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || deg[a] >= d || deg[b] >= d {
			continue
		}
		edges = append(edges, [2]int{a, b})
		deg[a]++
		deg[b]++
	}
	pred := make([]bool, n)
	for i := range pred {
		pred[i] = rng.Intn(3) == 0
	}
	return edges, pred
}

func buildStructure(t testing.TB, n int, edges [][2]int, pred []bool) *Structure {
	t.Helper()
	s, err := FromGraph(n, edges, map[string][]bool{"P": pred})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFromGraphInjectiveAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	edges, pred := randomBoundedDegreeGraph(rng, 40, 3)
	s := buildStructure(t, 40, edges, pred)
	// Every edge must be realized by some matching function (in one
	// direction), and functions must be injective (validated by AddFunc).
	ids := s.EdgeFuncIDs()
	if len(ids) == 0 {
		t.Fatalf("no edge functions")
	}
	for _, e := range edges {
		found := false
		for _, f := range ids {
			if s.Apply(f, e[0]) == e[1] || s.Apply(f, e[1]) == e[0] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("edge %v not represented", e)
		}
	}
	// Inverses invert.
	for _, f := range ids {
		inv := s.Inverse(f)
		for a := 0; a < s.N; a++ {
			if b := s.Apply(f, a); b >= 0 {
				if s.Apply(inv, b) != a {
					t.Fatalf("inverse of func %d broken at %d", f, a)
				}
			}
		}
	}
}

func TestTermsAndBitmaps(t *testing.T) {
	s := NewStructure(4)
	// f: 0→1, 1→2 (partial).
	fid, err := s.AddFunc("f", []int{1, 2, -1, -1})
	if err != nil {
		t.Fatal(err)
	}
	pid, err := s.AddPred("P", []bool{false, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	tm := Ap(V("x"), fid, fid) // f(f(x))
	if got := tm.Eval(s, 0); got != 2 {
		t.Errorf("f(f(0)) = %d, want 2", got)
	}
	if got := tm.Eval(s, 1); got != -1 {
		t.Errorf("f(f(1)) must be undefined, got %d", got)
	}
	// Pullback of P through f∘f: {0}.
	bm := s.PullbackPred([]int{fid, fid}, pid)
	if !bm[0] || bm[1] || bm[2] || bm[3] {
		t.Errorf("pullback bitmap wrong: %v", bm)
	}
	// Definedness of f: {0,1}.
	def := s.PullbackPred([]int{fid}, -1)
	if !def[0] || !def[1] || def[2] {
		t.Errorf("definedness bitmap wrong: %v", def)
	}
	// Inverse path: f~(f(x)) = x where defined.
	inv := s.InversePath([]int{fid, fid})
	for a := 0; a < 4; a++ {
		v := tm.Eval(s, a)
		if v >= 0 {
			back := Term{Path: inv}.Eval(s, v)
			if back != a {
				t.Errorf("inverse path broken at %d", a)
			}
		}
	}
	// AddFunc rejects non-injective maps.
	if _, err := s.AddFunc("g", []int{1, 1, -1, -1}); err == nil {
		t.Errorf("non-injective function must be rejected")
	}
}

// sentenceCorpus returns FO sentences in functional form for a structure
// with predicate P and edge functions.
func sentenceCorpus(s *Structure) []Formula {
	p, _ := s.PredID("P")
	edge := func(x, y string) Formula {
		var ds []Formula
		for _, f := range s.EdgeFuncIDs() {
			ds = append(ds, Eq{T1: Ap(V(x), f), T2: V(y)})
		}
		return Disj{Fs: ds}
	}
	return []Formula{
		Ex{Var: "x", F: Pr{Pred: p, T: V("x")}},
		Ex{Var: "x", F: Ex{Var: "y", F: Conj{Fs: []Formula{edge("x", "y"), Pr{Pred: p, T: V("y")}}}}},
		All{Var: "x", F: Disj{Fs: []Formula{Not{F: Pr{Pred: p, T: V("x")}}, Ex{Var: "y", F: edge("x", "y")}}}},
		Ex{Var: "x", F: Not{F: Ex{Var: "y", F: edge("x", "y")}}},
		Ex{Var: "x", F: Ex{Var: "y", F: Conj{Fs: []Formula{
			Not{F: Eq{T1: V("x"), T2: V("y")}},
			Pr{Pred: p, T: V("x")},
			Pr{Pred: p, T: V("y")},
		}}}},
		All{Var: "x", F: All{Var: "y", F: Disj{Fs: []Formula{
			Not{F: edge("x", "y")},
			Not{F: Pr{Pred: p, T: V("x")}},
		}}}},
	}
}

func TestModelCheckAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(8)
		edges, pred := randomBoundedDegreeGraph(rng, n, 2+rng.Intn(2))
		s := buildStructure(t, n, edges, pred)
		for fi, f := range sentenceCorpus(s) {
			want := s.EvalNaive(f, map[string]int{})
			got, err := s.ModelCheck(f)
			if err != nil {
				t.Fatalf("trial %d formula %d: %v", trial, fi, err)
			}
			if got != want {
				t.Fatalf("trial %d formula %d: ModelCheck=%v naive=%v (n=%d edges=%v pred=%v)",
					trial, fi, got, want, n, edges, pred)
			}
		}
	}
}

// openCorpus returns formulas with free variables.
func openCorpus(s *Structure) []struct {
	f    Formula
	vars []string
} {
	p, _ := s.PredID("P")
	edge := func(x, y string) Formula {
		var ds []Formula
		for _, f := range s.EdgeFuncIDs() {
			ds = append(ds, Eq{T1: Ap(V(x), f), T2: V(y)})
		}
		return Disj{Fs: ds}
	}
	return []struct {
		f    Formula
		vars []string
	}{
		{Pr{Pred: p, T: V("x")}, []string{"x"}},
		{Ex{Var: "y", F: Conj{Fs: []Formula{edge("x", "y"), Not{F: Pr{Pred: p, T: V("y")}}}}}, []string{"x"}},
		{Not{F: Ex{Var: "y", F: Conj{Fs: []Formula{edge("x", "y"), Pr{Pred: p, T: V("y")}}}}}, []string{"x"}},
		{Disj{Fs: []Formula{edge("x", "y"), Conj{Fs: []Formula{Pr{Pred: p, T: V("x")}, Not{F: Eq{T1: V("x"), T2: V("y")}}}}}}, []string{"x", "y"}},
		{Conj{Fs: []Formula{Pr{Pred: p, T: V("x")}, Not{F: Eq{T1: V("x"), T2: V("y")}}, Not{F: edge("x", "y")}}}, []string{"x", "y"}},
		{Ex{Var: "z", F: Conj{Fs: []Formula{edge("x", "z"), edge("z", "y")}}}, []string{"x", "y"}},
	}
}

func bruteAnswers(s *Structure, f Formula, vars []string) []database.Tuple {
	asg := map[string]int{}
	var out []database.Tuple
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			if s.EvalNaive(f, asg) {
				t := make(database.Tuple, len(vars))
				for j, v := range vars {
					t[j] = database.Value(asg[v])
				}
				out = append(out, t)
			}
			return
		}
		for a := 0; a < s.N; a++ {
			asg[vars[i]] = a
			rec(i + 1)
		}
		delete(asg, vars[i])
	}
	rec(0)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func TestEnumerateAndCountAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(7)
		edges, pred := randomBoundedDegreeGraph(rng, n, 2)
		s := buildStructure(t, n, edges, pred)
		for fi, tc := range openCorpus(s) {
			want := bruteAnswers(s, tc.f, tc.vars)

			en, err := s.Enumerate(tc.f, tc.vars, nil)
			if err != nil {
				t.Fatalf("trial %d formula %d: enumerate: %v", trial, fi, err)
			}
			got := delay.Collect(en)
			sort.Slice(got, func(i, j int) bool { return got[i].Compare(got[j]) < 0 })
			if len(got) != len(want) {
				t.Fatalf("trial %d formula %d: %d answers, want %d\ngot %v\nwant %v",
					trial, fi, len(got), len(want), got, want)
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("trial %d formula %d: answer %d: %v vs %v", trial, fi, i, got[i], want[i])
				}
			}

			cnt, err := s.Count(tc.f, tc.vars)
			if err != nil {
				t.Fatalf("trial %d formula %d: count: %v", trial, fi, err)
			}
			if cnt.Cmp(big.NewInt(int64(len(want)))) != 0 {
				t.Fatalf("trial %d formula %d: count=%s want %d", trial, fi, cnt, len(want))
			}
		}
	}
}

func TestEnumerateNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	edges, pred := randomBoundedDegreeGraph(rng, 10, 3)
	s := buildStructure(t, 10, edges, pred)
	for fi, tc := range openCorpus(s) {
		en, err := s.Enumerate(tc.f, tc.vars, nil)
		if err != nil {
			t.Fatalf("formula %d: %v", fi, err)
		}
		seen := map[string]bool{}
		for {
			tup, ok := en.Next()
			if !ok {
				break
			}
			k := tup.FullKey()
			if seen[k] {
				t.Fatalf("formula %d: duplicate %v", fi, tup)
			}
			seen[k] = true
		}
	}
}

func TestTranslateGraphFO(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(6)
		edges, pred := randomBoundedDegreeGraph(rng, n, 2)
		s := buildStructure(t, n, edges, pred)

		// Relational database view for the logic-package evaluator.
		db := database.NewDatabase()
		e := database.NewRelation("E", 2)
		for _, ed := range edges {
			e.InsertValues(database.Value(ed[0]), database.Value(ed[1]))
			e.InsertValues(database.Value(ed[1]), database.Value(ed[0]))
		}
		e.Dedup()
		db.AddRelation(e)
		pr := database.NewRelation("P", 1)
		for i, b := range pred {
			if b {
				pr.InsertValues(database.Value(i))
			}
		}
		db.AddRelation(pr)

		sentences := []string{
			"exists x. exists y. (E(x,y) and P(y))",
			"exists x. not exists y. E(x,y)",
			"forall x. (P(x) -> exists y. E(x,y))",
			"exists x. exists y. (E(x,y) and not x = y and P(x))",
		}
		for _, src := range sentences {
			lf := logictest.MustParseFormula(src)
			ff, err := s.TranslateGraphFO(lf)
			if err != nil {
				t.Fatalf("translate %q: %v", src, err)
			}
			got, err := s.ModelCheck(ff)
			if err != nil {
				t.Fatalf("model check %q: %v", src, err)
			}
			// The relational evaluator ranges over the active domain of db,
			// which may exclude isolated vertices; evaluate the functional
			// naive evaluator instead for ground truth over 0..n-1.
			want := s.EvalNaive(ff, map[string]int{})
			if got != want {
				t.Fatalf("trial %d %q: got %v want %v", trial, src, got, want)
			}
			// Cross-check the translation itself against the relational
			// semantics on the common domain when every vertex is active.
			active := len(db.Domain()) == n
			if active {
				rel := logic.Eval(db, lf, logic.Interpretation{})
				if rel != want {
					t.Fatalf("trial %d %q: relational %v functional %v", trial, src, rel, want)
				}
			}
		}
	}
}

func TestTranslateErrors(t *testing.T) {
	s := NewStructure(3)
	if _, err := s.TranslateGraphFO(logictest.MustParseFormula("exists x. R(x,y,z)")); err == nil {
		t.Errorf("ternary atom must be rejected")
	}
	if _, err := s.TranslateGraphFO(logictest.MustParseFormula("exists x. x < 3")); err == nil {
		t.Errorf("order comparison must be rejected")
	}
	if _, err := s.TranslateGraphFO(logictest.MustParseFormula("exists x. x in X")); err == nil {
		t.Errorf("set membership must be rejected")
	}
}

// The measured delay must not grow with n (Theorem 3.2).
func TestConstantDelayBoundedDegree(t *testing.T) {
	run := func(n int) int64 {
		// Cycle graph plus predicate on every third vertex.
		var edges [][2]int
		pred := make([]bool, n)
		for i := 0; i < n; i++ {
			edges = append(edges, [2]int{i, (i + 1) % n})
			pred[i] = i%3 == 0
		}
		s, err := FromGraph(n, edges, map[string][]bool{"P": pred})
		if err != nil {
			t.Fatal(err)
		}
		p, _ := s.PredID("P")
		edge := func(x, y string) Formula {
			var ds []Formula
			for _, f := range s.EdgeFuncIDs() {
				ds = append(ds, Eq{T1: Ap(V(x), f), T2: V(y)})
			}
			return Disj{Fs: ds}
		}
		f := Ex{Var: "y", F: Conj{Fs: []Formula{edge("x", "y"), Pr{Pred: p, T: V("y")}}}}
		c := &delay.Counter{}
		st, _ := delay.Measure(c, func() delay.Enumerator {
			e, err := s.Enumerate(f, []string{"x"}, c)
			if err != nil {
				t.Fatal(err)
			}
			return e
		})
		if st.Outputs == 0 {
			t.Fatalf("no outputs at n=%d", n)
		}
		return st.MaxDelaySteps
	}
	small := run(60)
	large := run(6000)
	if large > 4*small+32 {
		t.Errorf("delay grew with n: %d -> %d", small, large)
	}
}

func TestModelCheckRejectsOpenFormula(t *testing.T) {
	s := NewStructure(3)
	pid, _ := s.AddPred("P", []bool{true, false, true})
	if _, err := s.ModelCheck(Pr{Pred: pid, T: V("x")}); err == nil {
		t.Errorf("open formula must be rejected by ModelCheck")
	}
}

func TestStructureErrors(t *testing.T) {
	s := NewStructure(2)
	if _, err := s.AddPred("P", []bool{true}); err == nil {
		t.Errorf("wrong-length bitmap must be rejected")
	}
	if _, err := s.AddPred("Q", []bool{true, false}); err != nil {
		t.Errorf("AddPred: %v", err)
	}
	if _, err := s.AddPred("Q", []bool{true, false}); err == nil {
		t.Errorf("duplicate predicate must be rejected")
	}
	if _, err := s.AddFunc("f", []int{5, -1}); err == nil {
		t.Errorf("out-of-range function must be rejected")
	}
	if _, err := FromGraph(2, [][2]int{{0, 5}}, nil); err == nil {
		t.Errorf("out-of-range edge must be rejected")
	}
	_ = fmt.Sprint(s.N)
}
