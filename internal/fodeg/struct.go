// Package fodeg implements Section 3 of the paper: first-order queries
// over structures of bounded degree, with linear-time model checking
// (Theorem 3.1), linear-time counting and constant-delay enumeration
// (Theorem 3.2), via the quantifier-elimination method of [32] illustrated
// in Example 3.3.
//
// Following the paper ("it is convenient to represent bounded degree
// relations by a collection of partial injective functions"), structures
// are functional: a finite domain {0..n-1}, unary predicates as bitmaps,
// and partial injective unary functions with their inverses. A
// bounded-degree (multi)graph converts into this form by greedy edge
// colouring into at most 2d+1 partial matchings.
package fodeg

import (
	"fmt"
)

// Structure is a functional structure of bounded degree: unary predicates
// and partial injective unary functions over domain 0..N-1. Index -1 marks
// "undefined".
type Structure struct {
	N int

	predNames map[string]int
	preds     [][]bool // bitmaps
	counts    []int    // cached popcounts

	funcNames map[string]int
	funcs     [][]int // partial injective maps, -1 = undefined
	inverse   []int   // inverse[f] = id of f's inverse function
}

// NewStructure creates an empty functional structure over 0..n-1.
func NewStructure(n int) *Structure {
	return &Structure{N: n, predNames: map[string]int{}, funcNames: map[string]int{}}
}

// AddPred registers a unary predicate bitmap (length N) under name.
func (s *Structure) AddPred(name string, bits []bool) (int, error) {
	if len(bits) != s.N {
		return 0, fmt.Errorf("fodeg: predicate %q has %d bits, want %d", name, len(bits), s.N)
	}
	if _, ok := s.predNames[name]; ok {
		return 0, fmt.Errorf("fodeg: duplicate predicate %q", name)
	}
	id := s.internBitmap(bits)
	s.predNames[name] = id
	return id, nil
}

// internBitmap stores a bitmap and returns its id.
func (s *Structure) internBitmap(bits []bool) int {
	c := 0
	for _, b := range bits {
		if b {
			c++
		}
	}
	s.preds = append(s.preds, bits)
	s.counts = append(s.counts, c)
	return len(s.preds) - 1
}

// AddFunc registers a partial injective function (length N, entries -1 or
// in range) and its inverse; it returns the function id. The inverse gets
// id+1 and name name+"~".
func (s *Structure) AddFunc(name string, f []int) (int, error) {
	if len(f) != s.N {
		return 0, fmt.Errorf("fodeg: function %q has %d entries, want %d", name, len(f), s.N)
	}
	if _, ok := s.funcNames[name]; ok {
		return 0, fmt.Errorf("fodeg: duplicate function %q", name)
	}
	inv := make([]int, s.N)
	for i := range inv {
		inv[i] = -1
	}
	for a, b := range f {
		if b == -1 {
			continue
		}
		if b < 0 || b >= s.N {
			return 0, fmt.Errorf("fodeg: function %q maps %d out of range", name, a)
		}
		if inv[b] != -1 {
			return 0, fmt.Errorf("fodeg: function %q is not injective (%d and %d both map to %d)", name, inv[b], a, b)
		}
		inv[b] = a
	}
	id := len(s.funcs)
	s.funcs = append(s.funcs, f)
	s.funcs = append(s.funcs, inv)
	s.inverse = append(s.inverse, id+1, id)
	s.funcNames[name] = id
	s.funcNames[name+"~"] = id + 1
	return id, nil
}

// PredID returns the id of a named predicate.
func (s *Structure) PredID(name string) (int, bool) {
	id, ok := s.predNames[name]
	return id, ok
}

// FuncID returns the id of a named function.
func (s *Structure) FuncID(name string) (int, bool) {
	id, ok := s.funcNames[name]
	return id, ok
}

// FuncIDs returns the ids of all registered functions (including inverses).
func (s *Structure) FuncIDs() []int {
	out := make([]int, len(s.funcs))
	for i := range out {
		out[i] = i
	}
	return out
}

// Pred returns the bitmap with the given id.
func (s *Structure) Pred(id int) []bool { return s.preds[id] }

// PredCount returns the popcount of a bitmap.
func (s *Structure) PredCount(id int) int { return s.counts[id] }

// Inverse returns the id of the inverse of function id.
func (s *Structure) Inverse(id int) int { return s.inverse[id] }

// Apply evaluates function id at a; -1 if undefined or a == -1.
func (s *Structure) Apply(id, a int) int {
	if a < 0 {
		return -1
	}
	return s.funcs[id][a]
}

// Term is a composition of functions applied to a variable:
// Path[len-1](...(Path[0](x))...).
type Term struct {
	Var  string
	Path []int
}

// Eval evaluates the term at a; -1 if undefined anywhere along the path.
func (t Term) Eval(s *Structure, a int) int {
	for _, f := range t.Path {
		if a < 0 {
			return -1
		}
		a = s.Apply(f, a)
	}
	return a
}

// InversePath returns the reversed path of inverses, so that if
// t(x) = y then InversePath(t)(y) = x (by injectivity).
func (s *Structure) InversePath(path []int) []int {
	out := make([]int, len(path))
	for i, f := range path {
		out[len(path)-1-i] = s.Inverse(f)
	}
	return out
}

// PullbackPred computes the bitmap {a : t-path(a) defined and bitmap holds
// at it}. With predID < 0 it computes the definedness bitmap
// {a : path(a) defined}. Linear time.
func (s *Structure) PullbackPred(path []int, predID int) []bool {
	out := make([]bool, s.N)
	for a := 0; a < s.N; a++ {
		v := Term{Path: path}.Eval(s, a)
		if v < 0 {
			continue
		}
		if predID < 0 || s.preds[predID][v] {
			out[a] = true
		}
	}
	return out
}

// EqBitmap computes {a : p(a) and q(a) both defined and equal} (for eq) or
// {a : not(both defined and equal)} (for neq).
func (s *Structure) EqBitmap(p, q []int, eq bool) []bool {
	out := make([]bool, s.N)
	for a := 0; a < s.N; a++ {
		v := Term{Path: p}.Eval(s, a)
		w := Term{Path: q}.Eval(s, a)
		same := v >= 0 && w >= 0 && v == w
		if same == eq {
			out[a] = true
		}
	}
	return out
}

// AndBitmaps intersects bitmaps (with optional negation flags).
func AndBitmaps(n int, maps [][]bool, neg []bool) []bool {
	out := make([]bool, n)
	for i := range out {
		ok := true
		for j, m := range maps {
			v := m[i]
			if neg[j] {
				v = !v
			}
			if !v {
				ok = false
				break
			}
		}
		out[i] = ok
	}
	return out
}

// FromGraph builds a functional structure from an undirected graph given
// as an adjacency list, decomposing the edge set into partial injective
// functions e0, e1, ... by greedy colouring (at most 2Δ−1 colours, each a
// partial matching — the representation step of Theorem 3.1/3.2). Unary
// predicates may be supplied as bitmaps.
func FromGraph(n int, edges [][2]int, preds map[string][]bool) (*Structure, error) {
	s := NewStructure(n)
	type matching struct {
		fwd []int
		rev []int
	}
	var ms []*matching
	place := func(a, b int) {
		for _, m := range ms {
			if m.fwd[a] == -1 && m.rev[b] == -1 {
				m.fwd[a] = b
				m.rev[b] = a
				return
			}
		}
		m := &matching{fwd: make([]int, n), rev: make([]int, n)}
		for i := 0; i < n; i++ {
			m.fwd[i] = -1
			m.rev[i] = -1
		}
		m.fwd[a] = b
		m.rev[b] = a
		ms = append(ms, m)
	}
	seen := map[[2]int]bool{}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("fodeg: edge (%d,%d) out of range", a, b)
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		place(a, b)
	}
	for i, m := range ms {
		if _, err := s.AddFunc(fmt.Sprintf("e%d", i), m.fwd); err != nil {
			return nil, err
		}
	}
	for name, bits := range preds {
		if _, err := s.AddPred(name, bits); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// EdgeFuncIDs returns the ids of the edge-matching functions e0.. and their
// inverses, for translating E(x,y) atoms.
func (s *Structure) EdgeFuncIDs() []int {
	var out []int
	for i := 0; ; i++ {
		id, ok := s.funcNames[fmt.Sprintf("e%d", i)]
		if !ok {
			break
		}
		out = append(out, id, s.inverse[id])
	}
	return out
}
