package fodeg

import (
	"fmt"
	"math/big"

	"repro/internal/database"
	"repro/internal/delay"
)

// This file implements the enumeration and counting phases of Theorem 3.2
// on compiled (quantifier-free) formulas. Each conjunction is normalized
// into a per-variable plan: every variable is either determined (pinned to
// a term of an earlier variable, by injectivity of the functions) or ranges
// over a precomputed bitmap minus at most k exception values — the
// generalized Algorithm 1 of the paper. Counting uses inclusion–exclusion
// over the exceptions (turning each exception into a pinning equality), so
// it reduces to products of bitmap popcounts: f(‖φ‖)·n preprocessing and
// O(f(‖φ‖)) arithmetic.

// plan is the normalized form of one conjunction w.r.t. a variable order.
type plan struct {
	order []string
	// For each order position: either det != nil (value = det term of an
	// earlier variable) or a range bitmap + exceptions.
	det        []*Term
	bitmap     [][]bool
	candidates [][]int // positions of set bits (for enumeration)
	exceptions [][]Term
	unsat      bool
}

// PullbackBits computes {a : path(a) defined ∧ bits[path(a)]}.
func (s *Structure) PullbackBits(path []int, bits []bool) []bool {
	out := make([]bool, s.N)
	for a := 0; a < s.N; a++ {
		v := Term{Path: path}.Eval(s, a)
		if v >= 0 && bits[v] {
			out[a] = true
		}
	}
	return out
}

// normalizeConj turns a conjunction into a plan. It resolves
// positive cross-variable equalities into determinations (injective
// functions are invertible), pulls all unary conditions back to bitmaps,
// and turns guarded negative equalities into value exceptions on the later
// variable.
func (s *Structure) normalizeConj(c CConj, order []string) (*plan, error) {
	pos := map[string]int{}
	for i, v := range order {
		pos[v] = i
	}
	p := &plan{order: order}
	n := len(order)
	p.det = make([]*Term, n)
	conds := make([][][]bool, n) // bitmaps to intersect, per var
	negs := make([][]bool, n)
	p.exceptions = make([][]Term, n)

	lits := append(CConj{}, c...)
	det := map[string]Term{}
	subst := func(t Term) Term {
		for {
			d, ok := det[t.Var]
			if !ok {
				return t
			}
			t = Term{Var: d.Var, Path: append(append([]int(nil), d.Path...), t.Path...)}
		}
	}
	// Determination fixpoint.
	for iter := 0; ; iter++ {
		if iter > len(c)+n+8 {
			return nil, fmt.Errorf("fodeg: normalization did not converge")
		}
		changed := false
		for i := range lits {
			lits[i].T1 = subst(lits[i].T1)
			if lits[i].Pred < 0 {
				lits[i].T2 = subst(lits[i].T2)
			}
		}
		for i, l := range lits {
			if l.Neg || l.Pred >= 0 || l.T1.Var == l.T2.Var {
				continue
			}
			if _, ok := pos[l.T1.Var]; !ok {
				return nil, fmt.Errorf("fodeg: unknown variable %q", l.T1.Var)
			}
			if _, ok := pos[l.T2.Var]; !ok {
				return nil, fmt.Errorf("fodeg: unknown variable %q", l.T2.Var)
			}
			// Pin the later variable.
			early, late := l.T1, l.T2
			if pos[early.Var] > pos[late.Var] {
				early, late = late, early
			}
			pin := Term{Var: early.Var, Path: append(append([]int(nil), early.Path...), s.InversePath(late.Path)...)}
			det[late.Var] = pin
			// Definedness of the pin, recorded as a condition on early.
			lits[i] = Lit{Pred: s.internBitmap(s.PullbackPred(pin.Path, -1)), T1: V(early.Var)}
			changed = true
			break
		}
		if !changed {
			break
		}
	}
	// Record determinations.
	for v, t := range det {
		tt := t
		p.det[pos[v]] = &tt
	}
	// Classify remaining literals.
	for _, l := range lits {
		switch {
		case l.Pred >= 0:
			i := pos[l.T1.Var]
			conds[i] = append(conds[i], s.PullbackPred(l.T1.Path, l.Pred))
			negs[i] = append(negs[i], l.Neg)
		case l.T1.Var == l.T2.Var:
			i := pos[l.T1.Var]
			conds[i] = append(conds[i], s.EqBitmap(l.T1.Path, l.T2.Path, !l.Neg))
			negs[i] = append(negs[i], false)
		default:
			// Negative cross equality: by injectivity it is exactly the
			// exception "later-var ≠ τ(earlier-var)", with an undefined τ
			// excluding nothing (see eliminate).
			if !l.Neg {
				return nil, fmt.Errorf("fodeg: unresolved positive equality")
			}
			t1, t2 := l.T1, l.T2
			if pos[t1.Var] < pos[t2.Var] {
				t1, t2 = t2, t1
			}
			exc := Term{Var: t2.Var, Path: append(append([]int(nil), t2.Path...), s.InversePath(t1.Path)...)}
			p.exceptions[pos[t1.Var]] = append(p.exceptions[pos[t1.Var]], exc)
		}
	}
	// A condition recorded against a determined variable is a bug in the
	// substitution loop; exceptions likewise.
	p.bitmap = make([][]bool, n)
	p.candidates = make([][]int, n)
	for i := range order {
		if p.det[i] != nil {
			if len(conds[i]) > 0 || len(p.exceptions[i]) > 0 {
				return nil, fmt.Errorf("fodeg: internal: residual condition on determined variable %q", order[i])
			}
			continue
		}
		var bm []bool
		if len(conds[i]) == 0 {
			bm = make([]bool, s.N)
			for j := range bm {
				bm[j] = true
			}
		} else {
			bm = AndBitmaps(s.N, conds[i], negs[i])
		}
		p.bitmap[i] = bm
		for j, b := range bm {
			if b {
				p.candidates[i] = append(p.candidates[i], j)
			}
		}
		if len(p.candidates[i]) == 0 {
			p.unsat = true
		}
	}
	return p, nil
}

// canonicalizeAndMerge folds the unary literals of each conjunction into
// one bitmap per variable and repeatedly merges conjunctions that agree on
// everything except a single variable's bitmap (taking the union of the two
// bitmaps). This keeps the inclusion–exclusion over conjunctions feasible:
// e.g. the compiled form of ¬∃y(E(x,y)∧P(y)) is a large disjunction of
// unary constraints on x that collapses into a single bitmap.
func (s *Structure) canonicalizeAndMerge(d CDNF, vars []string) (CDNF, error) {
	type canon struct {
		cross []Lit    // cross-variable literals, sorted by key
		bm    [][]bool // per variable (aligned with vars); nil = unconstrained
	}
	pos := map[string]int{}
	for i, v := range vars {
		pos[v] = i
	}
	var cs []canon
	for _, c := range d {
		cc := canon{bm: make([][]bool, len(vars))}
		for _, l := range c {
			unaryVar := ""
			var bits []bool
			switch {
			case l.Pred >= 0:
				unaryVar = l.T1.Var
				bits = s.PullbackPred(l.T1.Path, l.Pred)
				if l.Neg {
					bits = notBits(bits)
				}
			case l.T1.Var == l.T2.Var:
				unaryVar = l.T1.Var
				bits = s.EqBitmap(l.T1.Path, l.T2.Path, !l.Neg)
			default:
				cc.cross = append(cc.cross, l)
				continue
			}
			i, ok := pos[unaryVar]
			if !ok {
				return nil, fmt.Errorf("fodeg: unknown variable %q", unaryVar)
			}
			if cc.bm[i] == nil {
				cc.bm[i] = bits
			} else {
				cc.bm[i] = AndBitmaps(s.N, [][]bool{cc.bm[i], bits}, []bool{false, false})
			}
		}
		sortLits(cc.cross)
		cs = append(cs, cc)
	}
	bmKey := func(b []bool) string {
		if b == nil {
			return "*"
		}
		buf := make([]byte, len(b))
		for i, x := range b {
			if x {
				buf[i] = 1
			}
		}
		return string(buf)
	}
	crossKey := func(ls []Lit) string {
		k := ""
		for _, l := range ls {
			k += litKey(l) + "|"
		}
		return k
	}
	// Merge fixpoint.
	for {
		merged := false
		for vi := 0; vi < len(vars) && !merged; vi++ {
			groups := map[string]int{}
			for i := range cs {
				key := crossKey(cs[i].cross)
				for vj := range vars {
					if vj == vi {
						continue
					}
					key += bmKey(cs[i].bm[vj]) + ";"
				}
				if j, ok := groups[key]; ok {
					// Merge i into j by OR-ing the vi bitmaps.
					a, b := cs[j].bm[vi], cs[i].bm[vi]
					if a == nil || b == nil {
						cs[j].bm[vi] = nil
					} else {
						or := make([]bool, s.N)
						for x := range or {
							or[x] = a[x] || b[x]
						}
						cs[j].bm[vi] = or
					}
					cs = append(cs[:i], cs[i+1:]...)
					merged = true
					break
				}
				groups[key] = i
			}
		}
		if !merged {
			break
		}
	}
	// Convert back to conjunctions.
	var out CDNF
	for _, cc := range cs {
		var c CConj
		c = append(c, cc.cross...)
		ok := true
		for i, b := range cc.bm {
			if b == nil {
				continue
			}
			id := s.internBitmap(b)
			if s.counts[id] == 0 {
				ok = false
				break
			}
			c = append(c, Lit{Pred: id, T1: V(vars[i])})
		}
		if ok {
			out = append(out, c)
		}
	}
	return out, nil
}

func notBits(b []bool) []bool {
	out := make([]bool, len(b))
	for i, x := range b {
		out[i] = !x
	}
	return out
}

func sortLits(ls []Lit) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && litKey(ls[j]) < litKey(ls[j-1]); j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

// CountQF counts the satisfying assignments of a compiled DNF over the
// given variable order, by inclusion–exclusion over (i) the DNF
// conjunctions and (ii) the exception terms within each conjunction.
func (s *Structure) CountQF(d CDNF, vars []string) (*big.Int, error) {
	expanded, err := s.canonicalizeAndMerge(d, vars)
	if err != nil {
		return nil, err
	}
	if len(expanded) > 18 {
		// Exact fallback: split on the values of the first variable and
		// recurse. Costs O(n^{|vars|}·f(‖φ‖)) instead of f(‖φ‖)·n; used
		// only when the symbolic inclusion–exclusion would blow up.
		return s.countBySplitting(expanded, vars)
	}
	total := new(big.Int)
	for mask := 1; mask < 1<<len(expanded); mask++ {
		var merged CConj
		bits := 0
		for i := range expanded {
			if mask&(1<<i) != 0 {
				bits++
				merged = append(merged, expanded[i]...)
			}
		}
		cnt, err := s.countConj(merged, vars, 0)
		if err != nil {
			return nil, err
		}
		if bits%2 == 1 {
			total.Add(total, cnt)
		} else {
			total.Sub(total, cnt)
		}
	}
	return total, nil
}

// countConj counts one conjunction, recursing on exceptions:
// #(C ∧ v≠τ) = #(C) − #(C ∧ v=τ).
func (s *Structure) countConj(c CConj, vars []string, depth int) (*big.Int, error) {
	if depth > 40 {
		return nil, fmt.Errorf("fodeg: exception recursion too deep")
	}
	p, err := s.normalizeConj(c, vars)
	if err != nil {
		return nil, err
	}
	if p.unsat {
		return new(big.Int), nil
	}
	// Find an exception to split on.
	for i := range vars {
		if len(p.exceptions[i]) > 0 {
			exc := p.exceptions[i][0]
			// Locate and remove one corresponding literal from c. The plan
			// does not track lit identity, so rebuild: drop the first
			// guarded cross negative equality whose later var is vars[i].
			var without CConj
			removed := false
			var asEq Lit
			for _, l := range c {
				if !removed && l.Neg && l.Pred < 0 && l.T1.Var != l.T2.Var {
					t1, t2 := l.T1, l.T2
					if posOf(vars, t1.Var) < posOf(vars, t2.Var) {
						t1, t2 = t2, t1
					}
					if t1.Var == vars[i] {
						removed = true
						asEq = Lit{Pred: -1, T1: l.T1, T2: l.T2}
						continue
					}
				}
				without = append(without, l)
			}
			if !removed {
				return nil, fmt.Errorf("fodeg: internal: exception literal not found")
			}
			_ = exc
			a, err := s.countConj(without, vars, depth+1)
			if err != nil {
				return nil, err
			}
			b, err := s.countConj(append(append(CConj{}, without...), asEq), vars, depth+1)
			if err != nil {
				return nil, err
			}
			return new(big.Int).Sub(a, b), nil
		}
	}
	// No exceptions: product of range-bitmap popcounts.
	out := big.NewInt(1)
	for i := range vars {
		if p.det[i] != nil {
			continue
		}
		out.Mul(out, big.NewInt(int64(len(p.candidates[i]))))
	}
	return out, nil
}

// countBySplitting counts the union of conjunctions exactly by fixing the
// first variable to each domain value, specializing every literal, and
// recursing on the remaining variables.
func (s *Structure) countBySplitting(d CDNF, vars []string) (*big.Int, error) {
	if len(vars) == 0 {
		// All literals are variable-free by now; a conjunction survives iff
		// all its (constant) literals hold.
		for _, c := range d {
			ok := true
			for _, l := range c {
				if l.T1.Var != "" || (l.Pred < 0 && l.T2.Var != "") {
					return nil, fmt.Errorf("fodeg: residual variable %q in split base", l.T1.Var)
				}
				if !s.EvalLit(l, nil) {
					ok = false
					break
				}
			}
			if ok {
				return big.NewInt(1), nil
			}
		}
		return new(big.Int), nil
	}
	v := vars[0]
	total := new(big.Int)
	for a := 0; a < s.N; a++ {
		var spec CDNF
		for _, c := range d {
			sc, ok := s.specializeConj(c, v, a)
			if ok {
				spec = append(spec, sc)
			}
		}
		if len(spec) == 0 {
			continue
		}
		cnt, err := s.CountQF(spec, vars[1:])
		if err != nil {
			return nil, err
		}
		total.Add(total, cnt)
	}
	return total, nil
}

// specializeConj substitutes v := a in the conjunction; it returns ok=false
// when a literal becomes constantly false.
func (s *Structure) specializeConj(c CConj, v string, a int) (CConj, bool) {
	var out CConj
	for _, l := range c {
		m1 := l.T1.Var == v
		m2 := l.Pred < 0 && l.T2.Var == v
		if !m1 && !m2 {
			out = append(out, l)
			continue
		}
		if l.Pred >= 0 {
			// P(t(v)) becomes a constant.
			w := l.T1.Eval(s, a)
			val := w >= 0 && s.preds[l.Pred][w]
			if l.Neg {
				val = !val
			}
			if !val {
				return nil, false
			}
			continue
		}
		// Equality with at least one side on v.
		if m1 && m2 {
			x := l.T1.Eval(s, a)
			y := l.T2.Eval(s, a)
			val := x >= 0 && y >= 0 && x == y
			if l.Neg {
				val = !val
			}
			if !val {
				return nil, false
			}
			continue
		}
		vSide, other := l.T1, l.T2
		if m2 {
			vSide, other = l.T2, l.T1
		}
		w := vSide.Eval(s, a)
		if w < 0 {
			// Undefined side: the positive equality is false, the negated
			// one true.
			if !l.Neg {
				return nil, false
			}
			continue
		}
		single := make([]bool, s.N)
		single[w] = true
		id := s.internBitmap(s.PullbackBits(other.Path, single))
		out = append(out, Lit{Neg: l.Neg, Pred: id, T1: V(other.Var)})
	}
	return out, true
}

func posOf(vars []string, v string) int {
	for i, w := range vars {
		if w == v {
			return i
		}
	}
	return -1
}

// EnumerateQF enumerates the satisfying assignments of a compiled DNF over
// the given variable order with constant delay: range variables walk their
// candidate lists skipping at most k exception values (injectivity bounds
// the total number of skips chargeable to each output), determined
// variables are computed in O(1), and duplicates across conjunctions are
// suppressed by O(1) evaluation of the earlier conjunctions.
func (s *Structure) EnumerateQF(d CDNF, vars []string, c *delay.Counter) (delay.Enumerator, error) {
	var expanded []CConj
	var plans []*plan
	for _, cc := range d {
		p, err := s.normalizeConj(cc, vars)
		if err != nil {
			return nil, err
		}
		if !p.unsat {
			expanded = append(expanded, cc)
			plans = append(plans, p)
		}
	}
	e := &qfEnum{s: s, vars: vars, plans: plans, conjs: expanded, c: c, asg: make([]int, len(vars))}
	return e, nil
}

type qfEnum struct {
	s     *Structure
	vars  []string
	plans []*plan
	conjs []CConj
	c     *delay.Counter

	pi      int   // current plan
	cursor  []int // per level: index into candidates
	asg     []int
	level   int
	started bool
	out     database.Tuple
}

// Next produces the next assignment as a tuple over the variable order.
func (e *qfEnum) Next() (database.Tuple, bool) {
	for {
		if e.pi >= len(e.plans) {
			return nil, false
		}
		p := e.plans[e.pi]
		if !e.started {
			e.started = true
			e.cursor = make([]int, len(e.vars))
			for i := range e.cursor {
				e.cursor[i] = -1
			}
			e.level = 0
		}
		if t, ok := e.advance(p); ok {
			return t, true
		}
		e.pi++
		e.started = false
	}
}

// advance resumes the nested-loop walk of the current plan.
func (e *qfEnum) advance(p *plan) (database.Tuple, bool) {
	n := len(e.vars)
	for e.level >= 0 {
		i := e.level
		if p.det[i] != nil {
			if e.cursor[i] == -2 {
				// Coming back up through a determined level: go up.
				e.cursor[i] = -1
				e.level--
				continue
			}
			v := p.det[i].Eval(e.s, e.asg[posOf(e.vars, p.det[i].Var)])
			e.c.Tick(1)
			if v < 0 {
				// Definedness was pushed to the root, so this cannot
				// happen; defensive backtrack.
				e.level--
				continue
			}
			e.asg[i] = v
			e.cursor[i] = -2
			if i == n-1 {
				if t, ok := e.emit(p); ok {
					return t, true
				}
				e.cursor[i] = -1
				e.level--
				continue
			}
			e.level++
			continue
		}
		// Range variable: advance to the next non-excepted candidate.
		found := false
		for e.cursor[i]++; e.cursor[i] < len(p.candidates[i]); e.cursor[i]++ {
			v := p.candidates[i][e.cursor[i]]
			e.c.Tick(1)
			bad := false
			for _, exc := range p.exceptions[i] {
				w := exc.Eval(e.s, e.asg[posOf(e.vars, exc.Var)])
				if w == v {
					bad = true
					break
				}
			}
			if !bad {
				e.asg[i] = v
				found = true
				break
			}
		}
		if !found {
			e.cursor[i] = -1
			e.level--
			continue
		}
		if i == n-1 {
			if t, ok := e.emit(p); ok {
				return t, true
			}
			continue // advance deepest again
		}
		e.level++
	}
	return nil, false
}

// emit checks duplicate suppression against earlier conjunctions and
// produces the output tuple.
func (e *qfEnum) emit(p *plan) (database.Tuple, bool) {
	asg := map[string]int{}
	for i, v := range e.vars {
		asg[v] = e.asg[i]
	}
	for j := 0; j < e.pi; j++ {
		e.c.Tick(1)
		if e.s.EvalConj(e.conjs[j], asg) {
			return nil, false // already produced by an earlier conjunction
		}
	}
	if e.out == nil {
		e.out = make(database.Tuple, len(e.vars))
	}
	for i := range e.vars {
		e.out[i] = database.Value(e.asg[i])
		e.c.Tick(1)
	}
	// Special case: with zero variables the plan yields one empty tuple.
	if len(e.vars) == 0 {
		e.pi = len(e.plans) // exhaust
	}
	return e.out, true
}

// Count counts |φ(D)| for a formula with the given free-variable order:
// compile once (f(‖φ‖)·n), then count the quantifier-free form.
func (s *Structure) Count(f Formula, vars []string) (*big.Int, error) {
	d, err := s.Compile(f)
	if err != nil {
		return nil, err
	}
	return s.CountQF(d, vars)
}

// Enumerate enumerates φ(D) with constant delay after linear preprocessing
// (Theorem 3.2).
func (s *Structure) Enumerate(f Formula, vars []string, c *delay.Counter) (delay.Enumerator, error) {
	d, err := s.Compile(f)
	if err != nil {
		return nil, err
	}
	return s.EnumerateQF(d, vars, c)
}
