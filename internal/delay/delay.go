// Package delay provides the enumeration framework of Section 2.3.3: an
// Enumerator interface producing answers one by one, and instrumentation
// measuring the preprocessing cost and the delay between consecutive
// outputs, both in wall time and in counted RAM steps. The step counter
// makes "constant delay" an observable quantity independent of cache and
// allocator noise.
package delay

import (
	"sync/atomic"
	"time"

	"repro/internal/database"
)

// Enumerator produces the answers of a query one by one, with no
// repetition. Next returns the next answer, or ok=false when exhausted.
// The returned tuple may be overwritten by the following Next call; callers
// that retain tuples must Clone them.
type Enumerator interface {
	Next() (t database.Tuple, ok bool)
}

// Func adapts a function to the Enumerator interface.
type Func func() (database.Tuple, bool)

// Next calls the function.
func (f Func) Next() (database.Tuple, bool) { return f() }

// Empty is an enumerator with no answers.
func Empty() Enumerator {
	return Func(func() (database.Tuple, bool) { return nil, false })
}

// Singleton yields exactly one answer (used for true Boolean queries, whose
// single answer is the empty tuple).
func Singleton(t database.Tuple) Enumerator {
	done := false
	return Func(func() (database.Tuple, bool) {
		if done {
			return nil, false
		}
		done = true
		return t, true
	})
}

// Slice enumerates a materialized answer list.
func Slice(ts []database.Tuple) Enumerator {
	i := 0
	return Func(func() (database.Tuple, bool) {
		if i >= len(ts) {
			return nil, false
		}
		t := ts[i]
		i++
		return t, true
	})
}

// Collect drains an enumerator into a slice, cloning each answer.
func Collect(e Enumerator) []database.Tuple {
	var out []database.Tuple
	for {
		t, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, t.Clone())
	}
}

// Sink receives observability events from an instrumented run: per-output
// enumeration delays and completed phase spans. internal/obs provides the
// standard implementation (log-bucketed histograms plus a span timeline);
// the indirection keeps this package dependency-free. Implementations must
// be goroutine-safe: the parallel engines report spans from many workers.
type Sink interface {
	// ObserveDelay records the gap between two consecutive enumeration
	// emissions, in counted RAM steps and wall nanoseconds.
	ObserveDelay(steps, wallNS int64)
	// ObserveSpan records a completed phase span (parse, tree-build,
	// semijoin-reduce, enumerate, count, join) with the counter values and
	// wall clock at its boundaries. worker is the reporting worker of a
	// parallel engine, or -1 for single-threaded phases.
	ObserveSpan(phase string, worker int, startSteps, endSteps int64, start, end time.Time)
}

// Counter counts elementary RAM steps. Engines call Tick at each elementary
// operation (index probe, cursor advance, comparison). A nil Counter is
// valid and counts nothing, so instrumentation is zero-cost to disable.
// Tick and Steps are goroutine-safe, so one counter may be shared by the
// workers of a parallel engine: the counted total is the paper's sequential
// work bound regardless of how the work is spread over cores.
//
// A Counter optionally carries a Sink. The sink never affects the counted
// steps — observation hooks (MarkOutput, StartSpan) read the counter but
// never Tick it — and with a nil counter or nil sink every hook is a
// branch-and-return: the disabled path costs no allocation and no clock
// read (pinned by the allocation tests in internal/obs).
type Counter struct {
	steps atomic.Int64

	// sink is set once by SetSink before the counter is shared; lastSteps
	// and lastNS belong to the single goroutine draining an enumerator.
	sink      Sink
	lastSteps int64
	lastNS    int64
}

// SetSink attaches an observability sink. It must be called before the
// counter is shared with other goroutines (engines never mutate the sink).
// A nil sink detaches.
func (c *Counter) SetSink(s Sink) {
	if c != nil {
		c.sink = s
	}
}

// Sink returns the attached sink, or nil.
func (c *Counter) Sink() Sink {
	if c == nil {
		return nil
	}
	return c.sink
}

// MarkStart begins a delay measurement sequence: the next MarkOutput
// reports the gap from this point. Call it when preprocessing hands over
// the enumerator. No-op without a sink.
func (c *Counter) MarkStart() {
	if c == nil || c.sink == nil {
		return
	}
	c.lastSteps = c.steps.Load()
	c.lastNS = time.Now().UnixNano()
}

// MarkOutput records one enumeration emission boundary: the counted steps
// and wall nanoseconds since the previous mark are forwarded to the sink
// and the mark advances. Call it after every Next — including the final,
// exhausted one, so the last gap (output to exhaustion) is observed like
// the Stats.MaxDelay* fields. No-op without a sink.
func (c *Counter) MarkOutput() {
	if c == nil || c.sink == nil {
		return
	}
	s := c.steps.Load()
	now := time.Now().UnixNano()
	c.sink.ObserveDelay(s-c.lastSteps, now-c.lastNS)
	c.lastSteps, c.lastNS = s, now
}

// SpanMark is an open phase span returned by StartSpan; End closes it and
// reports it to the sink. The zero SpanMark (returned when observability is
// disabled) is valid and End on it is a no-op, so the calling convention is
// unconditional:
//
//	m := c.StartSpan("semijoin-reduce", worker)
//	... phase work ...
//	m.End()
type SpanMark struct {
	c      *Counter
	phase  string
	worker int
	steps  int64
	start  time.Time
}

// StartSpan opens a phase span. With a nil counter or no sink it returns
// the zero SpanMark without reading the clock.
func (c *Counter) StartSpan(phase string, worker int) SpanMark {
	if c == nil || c.sink == nil {
		return SpanMark{}
	}
	return SpanMark{c: c, phase: phase, worker: worker, steps: c.steps.Load(), start: time.Now()}
}

// End closes the span and reports it.
func (m SpanMark) End() {
	if m.c == nil || m.c.sink == nil {
		return
	}
	m.c.sink.ObserveSpan(m.phase, m.worker, m.steps, m.c.steps.Load(), m.start, time.Now())
}

// Tick records n elementary steps.
func (c *Counter) Tick(n int64) {
	if c != nil {
		c.steps.Add(n)
	}
}

// Steps returns the number of recorded steps.
func (c *Counter) Steps() int64 {
	if c == nil {
		return 0
	}
	return c.steps.Load()
}

// Stats summarizes an instrumented enumeration run.
type Stats struct {
	Outputs int // number of answers produced

	// Counted RAM steps.
	PreprocessSteps int64 // steps before the enumerator was handed over
	MaxDelaySteps   int64 // max steps between consecutive outputs (incl. first and exhaustion)
	TotalSteps      int64 // total steps during enumeration

	// Wall clock.
	PreprocessTime time.Duration
	MaxDelayTime   time.Duration
	TotalTime      time.Duration
}

// Measure runs build (the preprocessing phase, which returns an enumerator
// sharing the given counter) and drains the enumerator, recording
// per-output delays. It reports the stats and the collected answers.
// The counter need not be fresh: Measure snapshots it at entry and reports
// only the steps recorded during this run, so a counter may be reused
// across measurements.
//
// When the counter carries a Sink, Measure additionally feeds it every
// per-output delay (the same gaps that MaxDelaySteps/MaxDelayTime maximize
// over, including the final output-to-exhaustion gap) and one "enumerate"
// phase span covering the drain. The sink observes, never ticks: counted
// steps are bit-identical with and without it.
func Measure(c *Counter, build func() Enumerator) (Stats, []database.Tuple) {
	var s Stats
	base := c.Steps()
	t0 := time.Now()
	e := build()
	s.PreprocessSteps = c.Steps() - base
	s.PreprocessTime = time.Since(t0)

	var out []database.Tuple
	c.MarkStart()
	span := c.StartSpan("enumerate", -1)
	last := c.Steps()
	lastT := time.Now()
	for {
		t, ok := e.Next()
		c.MarkOutput()
		now := c.Steps()
		nowT := time.Now()
		d := now - last
		if d > s.MaxDelaySteps {
			s.MaxDelaySteps = d
		}
		if dt := nowT.Sub(lastT); dt > s.MaxDelayTime {
			s.MaxDelayTime = dt
		}
		last, lastT = now, nowT
		if !ok {
			break
		}
		s.Outputs++
		out = append(out, t.Clone())
	}
	span.End()
	s.TotalSteps = c.Steps() - base - s.PreprocessSteps
	s.TotalTime = time.Since(t0) - s.PreprocessTime
	return s, out
}

// Dedup wraps an enumerator, filtering out tuples already produced. It is
// used by union enumerators (Section 4.2); the memory grows with the output,
// as permitted for enumeration algorithms.
func Dedup(e Enumerator, c *Counter) Enumerator {
	seen := make(map[string]bool)
	return Func(func() (database.Tuple, bool) {
		for {
			t, ok := e.Next()
			if !ok {
				return nil, false
			}
			k := t.FullKey()
			c.Tick(1)
			if !seen[k] {
				seen[k] = true
				return t, true
			}
		}
	})
}

// Concat chains enumerators one after the other.
func Concat(es ...Enumerator) Enumerator {
	i := 0
	return Func(func() (database.Tuple, bool) {
		for i < len(es) {
			if t, ok := es[i].Next(); ok {
				return t, true
			}
			i++
		}
		return nil, false
	})
}
