// Package delay provides the enumeration framework of Section 2.3.3: an
// Enumerator interface producing answers one by one, and instrumentation
// measuring the preprocessing cost and the delay between consecutive
// outputs, both in wall time and in counted RAM steps. The step counter
// makes "constant delay" an observable quantity independent of cache and
// allocator noise.
package delay

import (
	"sync/atomic"
	"time"

	"repro/internal/database"
)

// Enumerator produces the answers of a query one by one, with no
// repetition. Next returns the next answer, or ok=false when exhausted.
// The returned tuple may be overwritten by the following Next call; callers
// that retain tuples must Clone them.
type Enumerator interface {
	Next() (t database.Tuple, ok bool)
}

// Func adapts a function to the Enumerator interface.
type Func func() (database.Tuple, bool)

// Next calls the function.
func (f Func) Next() (database.Tuple, bool) { return f() }

// Empty is an enumerator with no answers.
func Empty() Enumerator {
	return Func(func() (database.Tuple, bool) { return nil, false })
}

// Singleton yields exactly one answer (used for true Boolean queries, whose
// single answer is the empty tuple).
func Singleton(t database.Tuple) Enumerator {
	done := false
	return Func(func() (database.Tuple, bool) {
		if done {
			return nil, false
		}
		done = true
		return t, true
	})
}

// Slice enumerates a materialized answer list.
func Slice(ts []database.Tuple) Enumerator {
	i := 0
	return Func(func() (database.Tuple, bool) {
		if i >= len(ts) {
			return nil, false
		}
		t := ts[i]
		i++
		return t, true
	})
}

// Collect drains an enumerator into a slice, cloning each answer.
func Collect(e Enumerator) []database.Tuple {
	var out []database.Tuple
	for {
		t, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, t.Clone())
	}
}

// Counter counts elementary RAM steps. Engines call Tick at each elementary
// operation (index probe, cursor advance, comparison). A nil Counter is
// valid and counts nothing, so instrumentation is zero-cost to disable.
// Tick and Steps are goroutine-safe, so one counter may be shared by the
// workers of a parallel engine: the counted total is the paper's sequential
// work bound regardless of how the work is spread over cores.
type Counter struct{ steps atomic.Int64 }

// Tick records n elementary steps.
func (c *Counter) Tick(n int64) {
	if c != nil {
		c.steps.Add(n)
	}
}

// Steps returns the number of recorded steps.
func (c *Counter) Steps() int64 {
	if c == nil {
		return 0
	}
	return c.steps.Load()
}

// Stats summarizes an instrumented enumeration run.
type Stats struct {
	Outputs int // number of answers produced

	// Counted RAM steps.
	PreprocessSteps int64 // steps before the enumerator was handed over
	MaxDelaySteps   int64 // max steps between consecutive outputs (incl. first and exhaustion)
	TotalSteps      int64 // total steps during enumeration

	// Wall clock.
	PreprocessTime time.Duration
	MaxDelayTime   time.Duration
	TotalTime      time.Duration
}

// Measure runs build (the preprocessing phase, which returns an enumerator
// sharing the given counter) and drains the enumerator, recording
// per-output delays. It reports the stats and the collected answers.
// The counter need not be fresh: Measure snapshots it at entry and reports
// only the steps recorded during this run, so a counter may be reused
// across measurements.
func Measure(c *Counter, build func() Enumerator) (Stats, []database.Tuple) {
	var s Stats
	base := c.Steps()
	t0 := time.Now()
	e := build()
	s.PreprocessSteps = c.Steps() - base
	s.PreprocessTime = time.Since(t0)

	var out []database.Tuple
	last := c.Steps()
	lastT := time.Now()
	for {
		t, ok := e.Next()
		now := c.Steps()
		nowT := time.Now()
		d := now - last
		if d > s.MaxDelaySteps {
			s.MaxDelaySteps = d
		}
		if dt := nowT.Sub(lastT); dt > s.MaxDelayTime {
			s.MaxDelayTime = dt
		}
		last, lastT = now, nowT
		if !ok {
			break
		}
		s.Outputs++
		out = append(out, t.Clone())
	}
	s.TotalSteps = c.Steps() - base - s.PreprocessSteps
	s.TotalTime = time.Since(t0) - s.PreprocessTime
	return s, out
}

// Dedup wraps an enumerator, filtering out tuples already produced. It is
// used by union enumerators (Section 4.2); the memory grows with the output,
// as permitted for enumeration algorithms.
func Dedup(e Enumerator, c *Counter) Enumerator {
	seen := make(map[string]bool)
	return Func(func() (database.Tuple, bool) {
		for {
			t, ok := e.Next()
			if !ok {
				return nil, false
			}
			k := t.FullKey()
			c.Tick(1)
			if !seen[k] {
				seen[k] = true
				return t, true
			}
		}
	})
}

// Concat chains enumerators one after the other.
func Concat(es ...Enumerator) Enumerator {
	i := 0
	return Func(func() (database.Tuple, bool) {
		for i < len(es) {
			if t, ok := es[i].Next(); ok {
				return t, true
			}
			i++
		}
		return nil, false
	})
}
