package delay

import (
	"sync"
	"testing"

	"repro/internal/database"
)

func tuples(vals ...int64) []database.Tuple {
	out := make([]database.Tuple, len(vals))
	for i, v := range vals {
		out[i] = database.Tuple{database.Value(v)}
	}
	return out
}

func TestEmptySingletonSlice(t *testing.T) {
	if got := Collect(Empty()); len(got) != 0 {
		t.Errorf("Empty yielded %v", got)
	}
	got := Collect(Singleton(database.Tuple{7}))
	if len(got) != 1 || got[0][0] != 7 {
		t.Errorf("Singleton: %v", got)
	}
	// Singleton is exhausted after one.
	s := Singleton(database.Tuple{})
	s.Next()
	if _, ok := s.Next(); ok {
		t.Errorf("Singleton yielded twice")
	}
	if got := Collect(Slice(tuples(1, 2, 3))); len(got) != 3 || got[2][0] != 3 {
		t.Errorf("Slice: %v", got)
	}
}

func TestCollectClones(t *testing.T) {
	// Collect must clone: an enumerator may reuse its output buffer.
	buf := database.Tuple{0}
	i := 0
	e := Func(func() (database.Tuple, bool) {
		if i >= 3 {
			return nil, false
		}
		i++
		buf[0] = database.Value(i)
		return buf, true
	})
	got := Collect(e)
	if got[0][0] != 1 || got[1][0] != 2 || got[2][0] != 3 {
		t.Errorf("Collect did not clone: %v", got)
	}
}

func TestCounter(t *testing.T) {
	var nilc *Counter
	nilc.Tick(5) // must not panic
	if nilc.Steps() != 0 {
		t.Errorf("nil counter steps")
	}
	c := &Counter{}
	c.Tick(3)
	c.Tick(4)
	if c.Steps() != 7 {
		t.Errorf("steps = %d", c.Steps())
	}
}

func TestMeasure(t *testing.T) {
	c := &Counter{}
	st, out := Measure(c, func() Enumerator {
		c.Tick(10) // preprocessing work
		i := 0
		return Func(func() (database.Tuple, bool) {
			if i >= 4 {
				return nil, false
			}
			i++
			c.Tick(int64(i)) // increasing delays: 1,2,3,4
			return database.Tuple{database.Value(i)}, true
		})
	})
	if st.PreprocessSteps != 10 {
		t.Errorf("preprocess steps = %d", st.PreprocessSteps)
	}
	if st.Outputs != 4 || len(out) != 4 {
		t.Errorf("outputs = %d", st.Outputs)
	}
	if st.MaxDelaySteps != 4 {
		t.Errorf("max delay = %d, want 4", st.MaxDelaySteps)
	}
	if st.TotalSteps != 10 {
		t.Errorf("total steps = %d, want 10", st.TotalSteps)
	}
}

func TestDedup(t *testing.T) {
	e := Dedup(Slice(tuples(1, 2, 1, 3, 2, 1)), nil)
	got := Collect(e)
	if len(got) != 3 {
		t.Fatalf("dedup: %v", got)
	}
	if got[0][0] != 1 || got[1][0] != 2 || got[2][0] != 3 {
		t.Errorf("dedup order: %v", got)
	}
}

func TestConcat(t *testing.T) {
	e := Concat(Slice(tuples(1, 2)), Empty(), Slice(tuples(3)))
	got := Collect(e)
	if len(got) != 3 || got[2][0] != 3 {
		t.Errorf("concat: %v", got)
	}
	if got := Collect(Concat()); len(got) != 0 {
		t.Errorf("empty concat: %v", got)
	}
}

// Regression: Measure must snapshot the counter at entry. A previously
// used counter would otherwise leak its old total into PreprocessSteps.
func TestMeasureReusedCounter(t *testing.T) {
	c := &Counter{}
	build := func() Enumerator {
		c.Tick(10)
		i := 0
		return Func(func() (database.Tuple, bool) {
			if i >= 4 {
				return nil, false
			}
			i++
			c.Tick(int64(i))
			return database.Tuple{database.Value(i)}, true
		})
	}
	first, _ := Measure(c, build)
	second, _ := Measure(c, build) // same counter, now holding 21 steps
	for name, pair := range map[string][2]int64{
		"PreprocessSteps": {first.PreprocessSteps, second.PreprocessSteps},
		"MaxDelaySteps":   {first.MaxDelaySteps, second.MaxDelaySteps},
		"TotalSteps":      {first.TotalSteps, second.TotalSteps},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s differs across reuse: first %d, second %d", name, pair[0], pair[1])
		}
	}
	if second.PreprocessSteps != 10 {
		t.Errorf("second PreprocessSteps = %d, want 10", second.PreprocessSteps)
	}
	if c.Steps() != 40 {
		t.Errorf("counter total = %d, want 40", c.Steps())
	}
}

// The counter must be safe to share across the workers of a parallel
// engine (run with -race to see the point of this test).
func TestCounterConcurrent(t *testing.T) {
	c := &Counter{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Tick(1)
			}
		}()
	}
	wg.Wait()
	if c.Steps() != 8000 {
		t.Errorf("steps = %d, want 8000", c.Steps())
	}
}

func TestDedupEdgeCases(t *testing.T) {
	// Empty inner enumerator.
	if got := Collect(Dedup(Empty(), nil)); len(got) != 0 {
		t.Errorf("dedup of empty: %v", got)
	}
	// Duplicate-only stream collapses to one answer.
	got := Collect(Dedup(Slice(tuples(5, 5, 5, 5)), nil))
	if len(got) != 1 || got[0][0] != 5 {
		t.Errorf("dedup of duplicate-only stream: %v", got)
	}
	// A counting dedup ticks once per consumed input tuple.
	c := &Counter{}
	Collect(Dedup(Slice(tuples(1, 1, 2)), c))
	if c.Steps() != 3 {
		t.Errorf("dedup steps = %d, want 3", c.Steps())
	}
	// Tuples of different arity with equal prefixes stay distinct.
	in := []database.Tuple{{1}, {1, 0}, {1}}
	got = Collect(Dedup(Slice(in), nil))
	if len(got) != 2 {
		t.Errorf("dedup arity separation: %v", got)
	}
}

func TestConcatEdgeCases(t *testing.T) {
	// All-empty chain.
	if got := Collect(Concat(Empty(), Empty(), Empty())); len(got) != 0 {
		t.Errorf("concat of empties: %v", got)
	}
	// Exhausted concat stays exhausted.
	e := Concat(Slice(tuples(1)))
	Collect(e)
	if _, ok := e.Next(); ok {
		t.Error("concat yielded after exhaustion")
	}
}

func TestSingletonEdgeCases(t *testing.T) {
	// The empty tuple (Boolean true) is a valid singleton answer.
	e := Singleton(database.Tuple{})
	got, ok := e.Next()
	if !ok || len(got) != 0 {
		t.Errorf("singleton empty tuple: %v %v", got, ok)
	}
	if _, ok := e.Next(); ok {
		t.Error("singleton yielded twice")
	}
	// A nil tuple round-trips (callers treat it as the empty answer).
	e = Singleton(nil)
	if _, ok := e.Next(); !ok {
		t.Error("singleton of nil tuple yielded nothing")
	}
}
