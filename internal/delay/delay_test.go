package delay

import (
	"testing"

	"repro/internal/database"
)

func tuples(vals ...int64) []database.Tuple {
	out := make([]database.Tuple, len(vals))
	for i, v := range vals {
		out[i] = database.Tuple{database.Value(v)}
	}
	return out
}

func TestEmptySingletonSlice(t *testing.T) {
	if got := Collect(Empty()); len(got) != 0 {
		t.Errorf("Empty yielded %v", got)
	}
	got := Collect(Singleton(database.Tuple{7}))
	if len(got) != 1 || got[0][0] != 7 {
		t.Errorf("Singleton: %v", got)
	}
	// Singleton is exhausted after one.
	s := Singleton(database.Tuple{})
	s.Next()
	if _, ok := s.Next(); ok {
		t.Errorf("Singleton yielded twice")
	}
	if got := Collect(Slice(tuples(1, 2, 3))); len(got) != 3 || got[2][0] != 3 {
		t.Errorf("Slice: %v", got)
	}
}

func TestCollectClones(t *testing.T) {
	// Collect must clone: an enumerator may reuse its output buffer.
	buf := database.Tuple{0}
	i := 0
	e := Func(func() (database.Tuple, bool) {
		if i >= 3 {
			return nil, false
		}
		i++
		buf[0] = database.Value(i)
		return buf, true
	})
	got := Collect(e)
	if got[0][0] != 1 || got[1][0] != 2 || got[2][0] != 3 {
		t.Errorf("Collect did not clone: %v", got)
	}
}

func TestCounter(t *testing.T) {
	var nilc *Counter
	nilc.Tick(5) // must not panic
	if nilc.Steps() != 0 {
		t.Errorf("nil counter steps")
	}
	c := &Counter{}
	c.Tick(3)
	c.Tick(4)
	if c.Steps() != 7 {
		t.Errorf("steps = %d", c.Steps())
	}
}

func TestMeasure(t *testing.T) {
	c := &Counter{}
	st, out := Measure(c, func() Enumerator {
		c.Tick(10) // preprocessing work
		i := 0
		return Func(func() (database.Tuple, bool) {
			if i >= 4 {
				return nil, false
			}
			i++
			c.Tick(int64(i)) // increasing delays: 1,2,3,4
			return database.Tuple{database.Value(i)}, true
		})
	})
	if st.PreprocessSteps != 10 {
		t.Errorf("preprocess steps = %d", st.PreprocessSteps)
	}
	if st.Outputs != 4 || len(out) != 4 {
		t.Errorf("outputs = %d", st.Outputs)
	}
	if st.MaxDelaySteps != 4 {
		t.Errorf("max delay = %d, want 4", st.MaxDelaySteps)
	}
	if st.TotalSteps != 10 {
		t.Errorf("total steps = %d, want 10", st.TotalSteps)
	}
}

func TestDedup(t *testing.T) {
	e := Dedup(Slice(tuples(1, 2, 1, 3, 2, 1)), nil)
	got := Collect(e)
	if len(got) != 3 {
		t.Fatalf("dedup: %v", got)
	}
	if got[0][0] != 1 || got[1][0] != 2 || got[2][0] != 3 {
		t.Errorf("dedup order: %v", got)
	}
}

func TestConcat(t *testing.T) {
	e := Concat(Slice(tuples(1, 2)), Empty(), Slice(tuples(3)))
	got := Collect(e)
	if len(got) != 3 || got[2][0] != 3 {
		t.Errorf("concat: %v", got)
	}
	if got := Collect(Concat()); len(got) != 0 {
		t.Errorf("empty concat: %v", got)
	}
}
