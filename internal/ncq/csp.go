// Package ncq implements Section 4.5 of the paper: negative conjunctive
// queries and their connection to constraint satisfaction. A NCQ
// φ(x) ≡ ∃y ⋀ᵢ ¬Rᵢ(zᵢ) is the negative encoding of a CSP whose
// constraints forbid the tuples of the Rᵢ; under the simpler form of SAT,
// each clause is a negative atom whose relation holds the unique falsifying
// assignment.
//
// Theorem 4.31 ([17], Brault-Baron): assuming Triangle, an NCQ is decidable
// in quasi-linear time iff it is β-acyclic. The algorithm combines
// Davis–Putnam elimination with the nest-point elimination ordering of
// β-acyclic hypergraphs ([38]); this package implements it as bucket
// elimination over forbidden-tuple constraints: eliminating a nest point x
// never enlarges constraint scopes (the scopes containing x form a
// ⊆-chain) and never increases the number of forbidden tuples.
package ncq

import (
	"fmt"
	"sort"

	"repro/internal/database"
	"repro/internal/hypergraph"
)

// Constraint forbids a set of tuples over its scope: an assignment ν
// violates it if (ν(v))_{v ∈ Scope} is in Forbidden.
type Constraint struct {
	Scope     []string
	Forbidden []database.Tuple
}

// CSP is a negative constraint network: variables range over a common
// finite domain and every constraint lists forbidden tuples.
type CSP struct {
	Domain      []database.Value
	Vars        []string
	Constraints []Constraint
}

// Hypergraph returns the constraint hypergraph (vertices: variables,
// edges: scopes).
func (c *CSP) Hypergraph() *hypergraph.Hypergraph {
	h := hypergraph.New()
	for i, ct := range c.Constraints {
		h.AddEdge(hypergraph.NewEdge(fmt.Sprintf("C%d", i), ct.Scope...))
	}
	for _, v := range c.Vars {
		h.AddVertex(v)
	}
	return h
}

// IsBetaAcyclic reports β-acyclicity of the constraint hypergraph.
func (c *CSP) IsBetaAcyclic() bool {
	return hypergraph.IsBetaAcyclic(c.Hypergraph())
}

// SolveBrute decides satisfiability by exhaustive search — the reference
// implementation.
func (c *CSP) SolveBrute() bool {
	asg := map[string]database.Value{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(c.Vars) {
			return !c.violated(asg)
		}
		for _, v := range c.Domain {
			asg[c.Vars[i]] = v
			if !c.violatedPartial(asg) && rec(i+1) {
				return true
			}
		}
		delete(asg, c.Vars[i])
		return false
	}
	return rec(0)
}

func (c *CSP) violated(asg map[string]database.Value) bool {
	for _, ct := range c.Constraints {
		for _, f := range ct.Forbidden {
			hit := true
			for i, v := range ct.Scope {
				if asg[v] != f[i] {
					hit = false
					break
				}
			}
			if hit {
				return true
			}
		}
	}
	return false
}

// violatedPartial reports a violation among fully assigned constraints.
func (c *CSP) violatedPartial(asg map[string]database.Value) bool {
	for _, ct := range c.Constraints {
		full := true
		for _, v := range ct.Scope {
			if _, ok := asg[v]; !ok {
				full = false
				break
			}
		}
		if !full {
			continue
		}
		for _, f := range ct.Forbidden {
			hit := true
			for i, v := range ct.Scope {
				if asg[v] != f[i] {
					hit = false
					break
				}
			}
			if hit {
				return true
			}
		}
	}
	return false
}

// SolveBetaAcyclic decides satisfiability by nest-point-driven elimination
// (Theorem 4.31). It returns an error if the constraint hypergraph is not
// β-acyclic. The elimination of a variable x uses that the scopes
// containing x form a chain S₁ ⊆ ... ⊆ S_m: a partial assignment over
// S_j − x is newly forbidden iff the x-values forbidden by levels ≤ j
// already exhaust the domain. New forbidden tuples are restrictions of
// existing ones, so the instance never grows.
func (c *CSP) SolveBetaAcyclic() (bool, error) {
	if len(c.Domain) == 0 {
		return false, fmt.Errorf("ncq: empty domain")
	}
	cons := append([]Constraint(nil), c.Constraints...)
	remaining := append([]string(nil), c.Vars...)
	for len(remaining) > 0 {
		// Pick a nest point of the current hypergraph.
		x, ok := pickNestPoint(remaining, cons)
		if !ok {
			return false, fmt.Errorf("ncq: constraint hypergraph is not β-acyclic")
		}
		var err error
		cons, err = eliminate(x, cons, c.Domain)
		if err != nil {
			return false, err
		}
		for _, ct := range cons {
			if len(ct.Scope) == 0 && len(ct.Forbidden) > 0 {
				return false, nil // empty forbidden tuple: contradiction
			}
		}
		out := remaining[:0]
		for _, v := range remaining {
			if v != x {
				out = append(out, v)
			}
		}
		remaining = out
	}
	for _, ct := range cons {
		if len(ct.Scope) == 0 && len(ct.Forbidden) > 0 {
			return false, nil
		}
	}
	return true, nil
}

// pickNestPoint returns a variable whose containing scopes form a ⊆-chain.
func pickNestPoint(vars []string, cons []Constraint) (string, bool) {
	for _, x := range vars {
		var scopes [][]string
		for _, ct := range cons {
			if contains(ct.Scope, x) {
				scopes = append(scopes, ct.Scope)
			}
		}
		sort.Slice(scopes, func(i, j int) bool { return len(scopes[i]) < len(scopes[j]) })
		ok := true
		for i := 0; i+1 < len(scopes); i++ {
			if !subsetOf(scopes[i], scopes[i+1]) {
				ok = false
				break
			}
		}
		if ok {
			return x, true
		}
	}
	return "", false
}

func contains(scope []string, v string) bool {
	for _, s := range scope {
		if s == v {
			return true
		}
	}
	return false
}

func subsetOf(a, b []string) bool {
	for _, v := range a {
		if !contains(b, v) {
			return false
		}
	}
	return true
}

// eliminate removes variable x, replacing the constraints mentioning it.
func eliminate(x string, cons []Constraint, domain []database.Value) ([]Constraint, error) {
	var keep []Constraint
	type level struct {
		scope  []string // S_j − x
		xCol   int
		cols   []int // columns of S_j tuples giving S_j − x
		forbid map[string]map[database.Value]bool
	}
	byScope := map[string]*level{}
	var levels []*level
	for _, ct := range cons {
		if !contains(ct.Scope, x) {
			keep = append(keep, ct)
			continue
		}
		key := fmt.Sprint(ct.Scope)
		lv := byScope[key]
		if lv == nil {
			lv = &level{forbid: map[string]map[database.Value]bool{}}
			for i, v := range ct.Scope {
				if v == x {
					lv.xCol = i
				} else {
					lv.scope = append(lv.scope, v)
					lv.cols = append(lv.cols, i)
				}
			}
			byScope[key] = lv
			levels = append(levels, lv)
		}
		for _, f := range ct.Forbidden {
			k := f.Key(lv.cols)
			if lv.forbid[k] == nil {
				lv.forbid[k] = map[database.Value]bool{}
			}
			lv.forbid[k][f[lv.xCol]] = true
		}
	}
	if len(levels) == 0 {
		return keep, nil
	}
	// Chain order: smallest scope first.
	sort.Slice(levels, func(i, j int) bool { return len(levels[i].scope) < len(levels[j].scope) })
	for i := 0; i+1 < len(levels); i++ {
		if !subsetOf(levels[i].scope, levels[i+1].scope) {
			return nil, fmt.Errorf("ncq: scopes of %s do not form a chain", x)
		}
	}
	// For each level j and key k: union the forbidden x-values from levels
	// ≤ j (restricting k); if the union is the whole domain, k is dead.
	for j, lv := range levels {
		var out []database.Tuple
		// Column maps from this level's scope to each smaller level's.
		restrict := make([][]int, j)
		for i := 0; i < j; i++ {
			cols := make([]int, len(levels[i].scope))
			for a, v := range levels[i].scope {
				cols[a] = indexOf(lv.scope, v)
			}
			restrict[i] = cols
		}
		for k, vals := range lv.forbid {
			tup := decodeKey(k, len(lv.scope))
			n := len(vals)
			seen := map[database.Value]bool{}
			for v := range vals {
				seen[v] = true
			}
			for i := 0; i < j; i++ {
				rk := tup.Key(restrict[i])
				for v := range levels[i].forbid[rk] {
					if !seen[v] {
						seen[v] = true
						n++
					}
				}
			}
			if n >= len(domain) {
				out = append(out, tup)
			}
		}
		if len(out) > 0 {
			keep = append(keep, Constraint{Scope: lv.scope, Forbidden: out})
		}
	}
	return keep, nil
}

func indexOf(scope []string, v string) int {
	for i, s := range scope {
		if s == v {
			return i
		}
	}
	panic("ncq: variable not in scope")
}

// decodeKey inverts Tuple.Key for a full-width key.
func decodeKey(k string, n int) database.Tuple {
	t := make(database.Tuple, n)
	for i := 0; i < n; i++ {
		var v uint64
		for b := 0; b < 8; b++ {
			v = v<<8 | uint64(k[i*8+b])
		}
		t[i] = database.Value(v)
	}
	return t
}
