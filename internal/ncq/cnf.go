package ncq

import (
	"fmt"
	"math/rand"

	"repro/internal/database"
)

// Lit is a CNF literal: a variable index (1-based) with sign.
type Lit struct {
	Var int
	Neg bool
}

// Clause is a disjunction of literals.
type Clause []Lit

// CNF is a propositional formula in conjunctive normal form over variables
// 1..N.
type CNF struct {
	N       int
	Clauses []Clause
}

// ToCSP encodes the CNF as the negative constraint network of Section 4.5:
// domain {0,1}, and one constraint per clause forbidding its unique
// falsifying assignment ("each disjunctive clause is represented by a
// negative atom ¬R(x̄) for which the associated relation R contains only
// one element").
func (f *CNF) ToCSP() *CSP {
	c := &CSP{Domain: []database.Value{0, 1}}
	for i := 1; i <= f.N; i++ {
		c.Vars = append(c.Vars, fmt.Sprintf("x%d", i))
	}
	for _, cl := range f.Clauses {
		seen := map[int]int{} // var -> position in scope
		var scope []string
		var forbidden database.Tuple
		tautology := false
		for _, l := range cl {
			want := database.Value(1)
			if !l.Neg {
				want = 0 // clause falsified when positive literal is 0
			}
			if pos, ok := seen[l.Var]; ok {
				if forbidden[pos] != want {
					tautology = true // x ∨ ¬x: never falsified
					break
				}
				continue
			}
			seen[l.Var] = len(scope)
			scope = append(scope, fmt.Sprintf("x%d", l.Var))
			forbidden = append(forbidden, want)
		}
		if tautology {
			continue
		}
		c.Constraints = append(c.Constraints, Constraint{Scope: scope, Forbidden: []database.Tuple{forbidden}})
	}
	return c
}

// SolveDPLL decides satisfiability with a basic DPLL procedure (unit
// propagation plus branching) — the generic baseline against which the
// β-acyclic algorithm is benchmarked.
func (f *CNF) SolveDPLL() bool {
	asg := make([]int8, f.N+1) // 0 unknown, 1 true, -1 false
	return f.dpll(asg)
}

func (f *CNF) dpll(asg []int8) bool {
	// Unit propagation.
	for {
		progress := false
		for _, cl := range f.Clauses {
			unassigned := -1
			var unassignedLit Lit
			satisfied := false
			count := 0
			for _, l := range cl {
				switch {
				case asg[l.Var] == 0:
					count++
					unassigned = l.Var
					unassignedLit = l
				case (asg[l.Var] == 1) != l.Neg:
					satisfied = true
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			if count == 0 {
				return false // falsified clause
			}
			if count == 1 {
				if unassignedLit.Neg {
					asg[unassigned] = -1
				} else {
					asg[unassigned] = 1
				}
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Branch on the first unknown variable.
	v := 0
	for i := 1; i <= f.N; i++ {
		if asg[i] == 0 {
			v = i
			break
		}
	}
	if v == 0 {
		return true // everything assigned, no falsified clause
	}
	for _, val := range []int8{1, -1} {
		cp := make([]int8, len(asg))
		copy(cp, asg)
		cp[v] = val
		if f.dpll(cp) {
			return true
		}
	}
	return false
}

// SolveBrute decides satisfiability by exhaustive assignment enumeration.
func (f *CNF) SolveBrute() bool {
	if f.N > 24 {
		panic("ncq: brute-force SAT limited to 24 variables")
	}
	for mask := 0; mask < 1<<f.N; mask++ {
		ok := true
		for _, cl := range f.Clauses {
			sat := false
			for _, l := range cl {
				val := mask>>(l.Var-1)&1 == 1
				if val != l.Neg {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// SolveBetaAcyclic decides satisfiability via the nest-point Davis–Putnam
// elimination of Theorem 4.31; it fails if the clause hypergraph is not
// β-acyclic.
func (f *CNF) SolveBetaAcyclic() (bool, error) {
	return f.ToCSP().SolveBetaAcyclic()
}

// RandomIntervalCNF generates a random CNF whose clause scopes are
// intervals of the variable ordering 1..n. Interval hypergraphs are
// β-acyclic (the first variable is always a nest point), making this the
// workload family for experiment E14.
func RandomIntervalCNF(rng *rand.Rand, n, clauses, maxWidth int) *CNF {
	f := &CNF{N: n}
	for i := 0; i < clauses; i++ {
		w := 1 + rng.Intn(maxWidth)
		if w > n {
			w = n
		}
		start := 1 + rng.Intn(n-w+1)
		cl := make(Clause, 0, w)
		for v := start; v < start+w; v++ {
			cl = append(cl, Lit{Var: v, Neg: rng.Intn(2) == 0})
		}
		f.Clauses = append(f.Clauses, cl)
	}
	return f
}

// TriangleCNF returns a small formula whose clause hypergraph is the
// (α-acyclic but not β-acyclic) covered triangle of Section 4.5, used to
// show that the β-acyclic solver refuses exactly the cyclic inputs.
func TriangleCNF() *CNF {
	return &CNF{N: 3, Clauses: []Clause{
		{{Var: 1, Neg: false}, {Var: 2, Neg: false}, {Var: 3, Neg: false}},
		{{Var: 1, Neg: true}, {Var: 2, Neg: false}},
		{{Var: 2, Neg: true}, {Var: 3, Neg: false}},
		{{Var: 1, Neg: false}, {Var: 3, Neg: true}},
	}}
}
