package ncq

import (
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/logic/logictest"
)

func TestCNFToCSPClauseEncoding(t *testing.T) {
	// The paper's example: x1 ∨ x2 ∨ x3 ∨ x4 ∨ ¬x5 ∨ ¬x6 is the negative
	// atom ¬R(x̄) with R = {(0,0,0,0,1,1)}.
	f := &CNF{N: 6, Clauses: []Clause{{
		{Var: 1}, {Var: 2}, {Var: 3}, {Var: 4},
		{Var: 5, Neg: true}, {Var: 6, Neg: true},
	}}}
	c := f.ToCSP()
	if len(c.Constraints) != 1 {
		t.Fatalf("want 1 constraint, got %d", len(c.Constraints))
	}
	ct := c.Constraints[0]
	if len(ct.Forbidden) != 1 {
		t.Fatalf("want 1 forbidden tuple, got %d", len(ct.Forbidden))
	}
	want := database.Tuple{0, 0, 0, 0, 1, 1}
	if !ct.Forbidden[0].Equal(want) {
		t.Fatalf("forbidden tuple %v, want %v", ct.Forbidden[0], want)
	}
}

func TestTautologyClauseDropped(t *testing.T) {
	f := &CNF{N: 1, Clauses: []Clause{{{Var: 1}, {Var: 1, Neg: true}}}}
	if got := len(f.ToCSP().Constraints); got != 0 {
		t.Errorf("tautological clause must produce no constraint, got %d", got)
	}
}

func TestSolversOnFixedFormulas(t *testing.T) {
	// (x1) ∧ (¬x1): unsatisfiable.
	f := &CNF{N: 1, Clauses: []Clause{{{Var: 1}}, {{Var: 1, Neg: true}}}}
	if f.SolveDPLL() || f.SolveBrute() {
		t.Fatalf("contradiction must be UNSAT")
	}
	if got, err := f.SolveBetaAcyclic(); err != nil || got {
		t.Fatalf("β-acyclic solver: got %v, %v", got, err)
	}
	// (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (¬x2 ∨ x3): satisfiable.
	g := &CNF{N: 3, Clauses: []Clause{
		{{Var: 1}, {Var: 2}},
		{{Var: 1, Neg: true}, {Var: 2}},
		{{Var: 2, Neg: true}, {Var: 3}},
	}}
	if !g.SolveDPLL() || !g.SolveBrute() {
		t.Fatalf("expected SAT")
	}
	if got, err := g.SolveBetaAcyclic(); err != nil || !got {
		t.Fatalf("β-acyclic solver: got %v, %v", got, err)
	}
}

func TestTriangleCNFRejectedByBetaSolver(t *testing.T) {
	f := TriangleCNF()
	if f.ToCSP().IsBetaAcyclic() {
		t.Fatalf("triangle CNF must not be β-acyclic")
	}
	if _, err := f.SolveBetaAcyclic(); err == nil {
		t.Errorf("β-acyclic solver must refuse a cyclic instance")
	}
	// The baselines still solve it.
	if f.SolveDPLL() != f.SolveBrute() {
		t.Errorf("baselines disagree on the triangle formula")
	}
}

func TestIntervalCNFIsBetaAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		f := RandomIntervalCNF(rng, 8, 12, 4)
		if !f.ToCSP().IsBetaAcyclic() {
			t.Fatalf("interval CNF must be β-acyclic: %v", f.Clauses)
		}
	}
}

func TestBetaAcyclicSATDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 400; trial++ {
		f := RandomIntervalCNF(rng, 3+rng.Intn(10), 1+rng.Intn(18), 1+rng.Intn(4))
		want := f.SolveBrute()
		if got := f.SolveDPLL(); got != want {
			t.Fatalf("trial %d: DPLL=%v brute=%v for %v", trial, got, want, f.Clauses)
		}
		got, err := f.SolveBetaAcyclic()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: β-acyclic=%v brute=%v for %v", trial, got, want, f.Clauses)
		}
	}
}

// Random β-acyclic CSPs over a ternary domain.
func TestBetaAcyclicCSPDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	names := []string{"a", "b", "c", "d", "e", "f"}
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(4)
		c := &CSP{Domain: []database.Value{1, 2, 3}, Vars: names[:n]}
		numCons := 1 + rng.Intn(5)
		for i := 0; i < numCons; i++ {
			w := 1 + rng.Intn(3)
			if w > n {
				w = n
			}
			start := rng.Intn(n - w + 1)
			scope := names[start : start+w]
			ct := Constraint{Scope: scope}
			nf := rng.Intn(8)
			for j := 0; j < nf; j++ {
				f := make(database.Tuple, w)
				for k := range f {
					f[k] = database.Value(rng.Intn(3) + 1)
				}
				ct.Forbidden = append(ct.Forbidden, f)
			}
			c.Constraints = append(c.Constraints, ct)
		}
		if !c.IsBetaAcyclic() {
			t.Fatalf("trial %d: interval scopes must be β-acyclic", trial)
		}
		want := c.SolveBrute()
		got, err := c.SolveBetaAcyclic()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: β=%v brute=%v constraints=%+v", trial, got, want, c.Constraints)
		}
	}
}

func TestNCQDecide(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		db := database.NewDatabase()
		r := database.NewRelation("R", 2)
		s := database.NewRelation("S", 2)
		for i := 0; i < 10; i++ {
			r.InsertValues(database.Value(rng.Intn(3)+1), database.Value(rng.Intn(3)+1))
			s.InsertValues(database.Value(rng.Intn(3)+1), database.Value(rng.Intn(3)+1))
		}
		r.Dedup()
		s.Dedup()
		db.AddRelation(r)
		db.AddRelation(s)

		// β-acyclic NCQ: chain scopes.
		q := logictest.MustParseCQ("Q() :- !R(x,y), !S(y,z).")
		got, err := Decide(db, q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := q.DecideNaive(db)
		if got != want {
			t.Fatalf("trial %d: Decide=%v naive=%v", trial, got, want)
		}
		bf, err := DecideBrute(db, q)
		if err != nil || bf != want {
			t.Fatalf("trial %d: brute=%v want %v (%v)", trial, bf, want, err)
		}
	}
}

func TestNCQWithConstantsAndRepeats(t *testing.T) {
	db := database.NewDatabase()
	r := database.NewRelation("R", 2)
	r.InsertValues(1, 1)
	r.InsertValues(1, 2)
	r.InsertValues(2, 2)
	db.AddRelation(r)
	// ¬R(x,x): forbids x ∈ {1,2}; domain = {1,2}: unsat only if the domain
	// has no other value — add value 3 via a unary relation.
	q := logictest.MustParseCQ("Q() :- !R(x,x).")
	got, err := Decide(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if got != q.DecideNaive(db) {
		t.Errorf("¬R(x,x): Decide=%v naive=%v", got, q.DecideNaive(db))
	}
	u := database.NewRelation("U", 1)
	u.InsertValues(3)
	db.AddRelation(u)
	got, err = Decide(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Errorf("with domain element 3, ¬R(x,x) must be satisfiable")
	}
	// Fully-constant negated atom.
	qc := logictest.MustParseCQ("Q() :- !R(1,1).")
	got, err = Decide(db, qc)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Errorf("¬R(1,1) with (1,1) ∈ R must be false")
	}
	qc2 := logictest.MustParseCQ("Q() :- !R(2,1).")
	got, err = Decide(db, qc2)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Errorf("¬R(2,1) with (2,1) ∉ R must be true")
	}
}

func TestNCQRejectsPositiveAtoms(t *testing.T) {
	db := database.NewDatabase()
	r := database.NewRelation("R", 1)
	r.InsertValues(1)
	db.AddRelation(r)
	if _, err := Decide(db, logictest.MustParseCQ("Q() :- R(x), !R(x).")); err == nil {
		t.Errorf("positive atoms must be rejected")
	}
	if _, err := Decide(db, logictest.MustParseCQ("Q() :- !R(x), x != 1.")); err == nil {
		t.Errorf("comparisons must be rejected")
	}
}

// A β-acyclic but non-interval structure: scopes {a}, {a,b}, {a,b,c} plus
// a disjoint {d,e}.
func TestNestedScopes(t *testing.T) {
	c := &CSP{
		Domain: []database.Value{1, 2},
		Vars:   []string{"a", "b", "c", "d", "e"},
		Constraints: []Constraint{
			{Scope: []string{"a"}, Forbidden: []database.Tuple{{1}}},
			{Scope: []string{"a", "b"}, Forbidden: []database.Tuple{{2, 1}}},
			{Scope: []string{"a", "b", "c"}, Forbidden: []database.Tuple{{2, 2, 1}, {2, 2, 2}}},
			{Scope: []string{"d", "e"}, Forbidden: []database.Tuple{{1, 1}, {2, 2}}},
		},
	}
	// a must be 2, then b must be 2, then c has no value: UNSAT.
	want := c.SolveBrute()
	if want {
		t.Fatalf("test setup: expected UNSAT")
	}
	got, err := c.SolveBetaAcyclic()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("nested scopes: β=%v brute=%v", got, want)
	}
}
