package ncq

import (
	"fmt"

	"repro/internal/database"
	"repro/internal/logic"
)

// FromQuery converts a negative conjunctive query (Definition 4.30: all
// atoms negated) over db into a negative constraint network: variables
// range over the active domain of db and each atom ¬R(z̄) forbids the
// matching tuples of R. Constants and repeated variables inside atoms are
// resolved during the conversion. Free variables are treated
// existentially, so deciding the CSP decides the Boolean query.
func FromQuery(db *database.Database, q *logic.CQ) (*CSP, error) {
	if len(q.Atoms) > 0 {
		return nil, fmt.Errorf("ncq: query %s has positive atoms; NCQ allows negated atoms only", q.Name)
	}
	if len(q.Comparisons) > 0 {
		return nil, fmt.Errorf("ncq: query %s has comparisons", q.Name)
	}
	if len(q.NegAtoms) == 0 {
		return nil, fmt.Errorf("ncq: query %s has no atoms", q.Name)
	}
	dom := db.Domain()
	if len(dom) == 0 {
		return nil, fmt.Errorf("ncq: empty active domain")
	}
	c := &CSP{Domain: dom, Vars: q.Vars()}
	for _, a := range q.NegAtoms {
		r := db.Relation(a.Pred)
		if r == nil {
			// ¬R over a missing relation is vacuously true: no tuples to
			// forbid.
			continue
		}
		if r.Arity != len(a.Args) {
			return nil, fmt.Errorf("ncq: relation %q arity mismatch", a.Pred)
		}
		vars := a.Vars()
		firstCol := map[string]int{}
		for i, t := range a.Args {
			if !t.IsConst {
				if _, ok := firstCol[t.Var]; !ok {
					firstCol[t.Var] = i
				}
			}
		}
		var forbidden []database.Tuple
		for _, tup := range r.Tuples {
			ok := true
			for i, arg := range a.Args {
				if arg.IsConst {
					if tup[i] != arg.Const {
						ok = false
						break
					}
				} else if tup[i] != tup[firstCol[arg.Var]] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			f := make(database.Tuple, len(vars))
			for i, v := range vars {
				f[i] = tup[firstCol[v]]
			}
			forbidden = append(forbidden, f)
		}
		if len(vars) == 0 {
			if len(forbidden) > 0 {
				// A fully-constant negated atom matched: unsatisfiable.
				return &CSP{Domain: dom, Vars: c.Vars, Constraints: []Constraint{{}}}, nil
			}
			continue
		}
		c.Constraints = append(c.Constraints, Constraint{Scope: vars, Forbidden: dedupTuples(forbidden)})
	}
	return c, nil
}

func dedupTuples(ts []database.Tuple) []database.Tuple {
	seen := map[string]bool{}
	out := ts[:0]
	for _, t := range ts {
		k := t.FullKey()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

// Decide decides the Boolean NCQ over db. For β-acyclic queries it runs
// the quasi-linear nest-point elimination of Theorem 4.31; otherwise it
// reports an error (the caller may fall back to brute force).
func Decide(db *database.Database, q *logic.CQ) (bool, error) {
	c, err := FromQuery(db, q)
	if err != nil {
		return false, err
	}
	for _, ct := range c.Constraints {
		if len(ct.Scope) == 0 {
			return false, nil
		}
	}
	return c.SolveBetaAcyclic()
}

// DecideBrute decides the Boolean NCQ by exhaustive search — the reference
// implementation and the baseline for cyclic queries.
func DecideBrute(db *database.Database, q *logic.CQ) (bool, error) {
	c, err := FromQuery(db, q)
	if err != nil {
		return false, err
	}
	for _, ct := range c.Constraints {
		if len(ct.Scope) == 0 {
			return false, nil
		}
	}
	return c.SolveBrute(), nil
}
