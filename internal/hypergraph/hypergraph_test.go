package hypergraph

import (
	"math/rand"
	"testing"
)

func TestEdgeBasics(t *testing.T) {
	e := NewEdge("R", "y", "x", "y")
	if len(e.Vertices) != 2 || e.Vertices[0] != "x" || e.Vertices[1] != "y" {
		t.Fatalf("NewEdge dedup/sort failed: %v", e.Vertices)
	}
	if !e.Has("x") || e.Has("z") {
		t.Errorf("Has wrong")
	}
	f := NewEdge("S", "x", "y", "z")
	if !e.SubsetOf(f) || f.SubsetOf(e) {
		t.Errorf("SubsetOf wrong")
	}
	if got := e.Intersect(f); len(got) != 2 {
		t.Errorf("Intersect wrong: %v", got)
	}
	if got := e.Minus(map[string]bool{"x": true}); len(got) != 1 || got[0] != "y" {
		t.Errorf("Minus wrong: %v", got)
	}
	if e.String() != "R{x,y}" {
		t.Errorf("String = %q", e.String())
	}
}

// Example 4.1: the path query is acyclic, the triangle is not, the triangle
// plus a covering ternary atom is acyclic again.
func TestExample41(t *testing.T) {
	path := New()
	path.AddEdge(NewEdge("E1", "x", "y"))
	path.AddEdge(NewEdge("E2", "y", "z"))
	if !IsAcyclic(path) {
		t.Errorf("path query must be acyclic")
	}

	tri := New()
	tri.AddEdge(NewEdge("E1", "x", "y"))
	tri.AddEdge(NewEdge("E2", "y", "z"))
	tri.AddEdge(NewEdge("E3", "z", "x"))
	if IsAcyclic(tri) {
		t.Errorf("triangle query must be cyclic")
	}

	tri.AddEdge(NewEdge("T", "x", "y", "z"))
	jt, ok := GYO(tri)
	if !ok {
		t.Fatalf("triangle+cover must be acyclic")
	}
	if err := jt.Validate(); err != nil {
		t.Fatalf("join tree invalid: %v", err)
	}
	// The paper: join tree with root {x,y,z} and the three binary atoms as
	// children. Our GYO may root differently, but T must be the neighbour
	// of all three.
	for i, e := range jt.Nodes {
		if e.Name == "T" {
			continue
		}
		p := jt.Parent[i]
		if p == -1 || jt.Nodes[p].Name != "T" {
			// e's parent must be T, or e is the root and T its child.
			if !(jt.Parent[i] == -1) {
				t.Errorf("edge %s should neighbour T in the join tree:\n%s", e.Name, jt)
			}
		}
	}
}

// Example 4.5: φ(x,y) = ∃w∃z E(x,w) ∧ E(y,z) ∧ B(z) is free-connex; the
// Boolean matrix multiplication query Π(x,y) = ∃z A(x,z) ∧ B(z,y) is acyclic
// but not free-connex.
func TestExample45FreeConnex(t *testing.T) {
	h := New()
	h.AddEdge(NewEdge("E1", "x", "w"))
	h.AddEdge(NewEdge("E2", "y", "z"))
	h.AddEdge(NewEdge("B", "z"))
	if !IsAcyclic(h) {
		t.Fatalf("Example 4.5 query must be acyclic")
	}
	if !FreeConnex(h, []string{"x", "y"}) {
		t.Errorf("Example 4.5 query must be free-connex")
	}

	pi := New()
	pi.AddEdge(NewEdge("A", "x", "z"))
	pi.AddEdge(NewEdge("B", "z", "y"))
	if !IsAcyclic(pi) {
		t.Fatalf("Π must be acyclic")
	}
	if FreeConnex(pi, []string{"x", "y"}) {
		t.Errorf("Π must not be free-connex")
	}
	// Boolean queries are free-connex by definition.
	if !FreeConnex(pi, nil) {
		t.Errorf("Boolean queries are free-connex by definition")
	}
	// Queries with one free variable are free-connex (Section 4.1.1).
	if !FreeConnex(pi, []string{"x"}) {
		t.Errorf("unary queries are free-connex by definition")
	}
}

// E7 / Figure 1: the query φ(x) ≡ ∃y R(x1,x2) ∧ S(x2,x3,y3) ∧ R(x1,y1) ∧
// T(y3,y4,y5) ∧ S(x2,y2) with free variables {x1,x2,x3} is free-connex; the
// added hyperedge S'{x2,x3} yields a join tree whose free-variable nodes
// form a connected subtree containing the root.
func TestFigure1JoinTree(t *testing.T) {
	h := New()
	h.AddEdge(NewEdge("R1", "x1", "x2"))
	h.AddEdge(NewEdge("S1", "x2", "x3", "y3"))
	h.AddEdge(NewEdge("R2", "x1", "y1"))
	h.AddEdge(NewEdge("T", "y3", "y4", "y5"))
	h.AddEdge(NewEdge("S2", "x2", "y2"))

	free := []string{"x1", "x2", "x3"}
	if !IsAcyclic(h) {
		t.Fatalf("Figure 1 query must be acyclic")
	}
	if !FreeConnex(h, free) {
		t.Fatalf("Figure 1 query must be free-connex")
	}
	if got := QuantifiedStarSize(h, free); got != 1 {
		t.Errorf("Figure 1 query: star size = %d, want 1 (free-connex)", got)
	}

	// Reproduce the construction: add S'{x2,x3} ⊆ S1 and build a join tree.
	h2 := h.Clone()
	h2.AddEdge(NewEdge("S'", "x2", "x3"))
	jt, ok := GYO(h2)
	if !ok {
		t.Fatalf("extended Figure 1 hypergraph must be acyclic")
	}
	if err := jt.Validate(); err != nil {
		t.Fatalf("join tree invalid: %v\n%s", err, jt)
	}
}

// fig23 builds a hypergraph realizing the properties of Figures 2–3 and
// Examples 4.24/4.27: vertices x1..x9, y1..y7, S = {y1..y7}, exactly three
// S-components, and the central component's maximum independent set is
// {y3,y5,y6}, of size 3. (The paper gives the hypergraph only pictorially;
// this is a reconstruction with the same stated properties.)
func fig23() (*Hypergraph, map[string]bool) {
	h := New()
	// Component 1 (outside-S vertices x1,x2).
	h.AddEdge(NewEdge("A1", "y1", "x1"))
	h.AddEdge(NewEdge("A2", "x1", "x2", "y2"))
	// Component 2, the central one (outside-S vertices x3,x4,x6,x7,x8).
	h.AddEdge(NewEdge("B1", "y3", "x3", "x6"))
	h.AddEdge(NewEdge("B2", "x4", "x6", "x7", "y4", "y3"))
	h.AddEdge(NewEdge("B3", "x7", "y4", "y5", "x8"))
	h.AddEdge(NewEdge("B4", "x8", "y6"))
	// Component 3 (outside-S vertices x5,x9).
	h.AddEdge(NewEdge("C1", "y6", "x5", "y7"))
	h.AddEdge(NewEdge("C2", "x5", "x9"))

	s := map[string]bool{}
	for _, v := range []string{"y1", "y2", "y3", "y4", "y5", "y6", "y7"} {
		s[v] = true
	}
	return h, s
}

// E8 / Figures 2–3, Examples 4.24 and 4.27.
func TestFigure23StarSize(t *testing.T) {
	h, s := fig23()
	comps := SComponents(h, s)
	if len(comps) != 3 {
		t.Fatalf("want 3 S-components, got %d: %v", len(comps), comps)
	}
	// The central component is the one containing edge B1.
	var central *SComponent
	for i := range comps {
		for _, ei := range comps[i].EdgeIdx {
			if h.Edges[ei].Name == "B1" {
				central = &comps[i]
			}
		}
	}
	if central == nil {
		t.Fatalf("central component not found")
	}
	if got := len(central.EdgeIdx); got != 4 {
		t.Errorf("central component: want 4 edges, got %d", got)
	}
	ind := central.IndependentSVertices(h, s)
	if len(ind) != 3 || ind[0] != "y3" || ind[1] != "y5" || ind[2] != "y6" {
		t.Errorf("central independent set: want [y3 y5 y6], got %v", ind)
	}
	if got := SStarSize(h, s); got != 3 {
		t.Errorf("S-star size: want 3, got %d", got)
	}
}

// The star query ψ of Equation 2 has quantified star size n (Example 4.27).
func TestEquation2StarSize(t *testing.T) {
	for n := 1; n <= 5; n++ {
		h := New()
		var free []string
		for i := 0; i < n; i++ {
			x := "x" + string(rune('0'+i))
			free = append(free, x)
			h.AddEdge(NewEdge("E"+x, "t", x))
		}
		if got := QuantifiedStarSize(h, free); got != n {
			t.Errorf("n=%d: star size = %d, want %d", n, got, n)
		}
	}
}

func TestBetaAcyclicity(t *testing.T) {
	// α-acyclic but not β-acyclic: triangle covered by a ternary edge.
	h := New()
	h.AddEdge(NewEdge("T", "a", "b", "c"))
	h.AddEdge(NewEdge("E1", "a", "b"))
	h.AddEdge(NewEdge("E2", "b", "c"))
	h.AddEdge(NewEdge("E3", "a", "c"))
	if !IsAcyclic(h) {
		t.Fatalf("covered triangle must be α-acyclic")
	}
	if IsBetaAcyclic(h) {
		t.Errorf("covered triangle must not be β-acyclic")
	}

	// A chain of edges is β-acyclic.
	chain := New()
	chain.AddEdge(NewEdge("E1", "a", "b"))
	chain.AddEdge(NewEdge("E2", "b", "c"))
	chain.AddEdge(NewEdge("E3", "c", "d"))
	order, ok := NestPointOrder(chain)
	if !ok {
		t.Fatalf("chain must be β-acyclic")
	}
	if len(order) != 4 {
		t.Errorf("elimination order should cover all vertices: %v", order)
	}
}

func TestJoinTreeValidateRejectsBadTree(t *testing.T) {
	// x occurs in nodes 0 and 2 but not in the middle node 1.
	bad := &JoinTree{
		Nodes:  []Edge{NewEdge("A", "x", "y"), NewEdge("B", "y", "z"), NewEdge("C", "z", "x")},
		Parent: []int{-1, 0, 1},
	}
	if err := bad.Validate(); err == nil {
		t.Errorf("Validate should reject a tree violating running intersection")
	}
	twoRoots := &JoinTree{
		Nodes:  []Edge{NewEdge("A", "x"), NewEdge("B", "x")},
		Parent: []int{-1, -1},
	}
	if err := twoRoots.Validate(); err == nil {
		t.Errorf("Validate should reject a forest")
	}
}

// randomHypergraph generates a small random hypergraph over vertices v0..v5.
func randomHypergraph(rng *rand.Rand, maxEdges int) *Hypergraph {
	h := New()
	verts := []string{"v0", "v1", "v2", "v3", "v4", "v5"}
	m := 1 + rng.Intn(maxEdges)
	for i := 0; i < m; i++ {
		k := 1 + rng.Intn(3)
		var vs []string
		for j := 0; j < k; j++ {
			vs = append(vs, verts[rng.Intn(len(verts))])
		}
		h.AddEdge(NewEdge("e"+string(rune('0'+i)), vs...))
	}
	return h
}

// bruteForceAcyclic searches all rooted labeled trees over the edges for one
// satisfying running intersection (feasible for ≤ 5 edges).
func bruteForceAcyclic(h *Hypergraph) bool {
	n := len(h.Edges)
	if n <= 1 {
		return true
	}
	// Enumerate parent vectors: parent[i] in {-1, 0..n-1}, exactly one -1,
	// acyclic. n ≤ 5 so at most 6^5 vectors.
	parents := make([]int, n)
	var try func(i int) bool
	try = func(i int) bool {
		if i == n {
			roots := 0
			for _, p := range parents {
				if p == -1 {
					roots++
				}
			}
			if roots != 1 {
				return false
			}
			// check tree (no cycles): walk up from each node
			for j := 0; j < n; j++ {
				seen := map[int]bool{}
				k := j
				for k != -1 {
					if seen[k] {
						return false
					}
					seen[k] = true
					k = parents[k]
				}
			}
			jt := &JoinTree{Nodes: h.Edges, Parent: append([]int(nil), parents...)}
			return jt.Validate() == nil
		}
		for p := -1; p < n; p++ {
			if p == i {
				continue
			}
			parents[i] = p
			if try(i + 1) {
				return true
			}
		}
		return false
	}
	return try(0)
}

// GYO must agree with brute-force join-tree search on small hypergraphs.
func TestGYOAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		h := randomHypergraph(rng, 4)
		jt, ok := GYO(h.Clone())
		want := bruteForceAcyclic(h)
		if ok != want {
			t.Fatalf("trial %d: GYO=%v brute=%v for %v", trial, ok, want, h.Edges)
		}
		if ok {
			if err := jt.Validate(); err != nil {
				t.Fatalf("trial %d: GYO produced invalid tree: %v", trial, err)
			}
		}
	}
}

// β-acyclicity implies α-acyclicity, and is preserved by edge deletion.
func TestBetaImpliesAlphaAndHereditary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		h := randomHypergraph(rng, 5)
		if IsBetaAcyclic(h) {
			if !IsAcyclic(h) {
				t.Fatalf("β-acyclic but not α-acyclic: %v", h.Edges)
			}
			// Hereditary: delete a random edge, must stay β-acyclic.
			if len(h.Edges) > 1 {
				h2 := New()
				skip := rng.Intn(len(h.Edges))
				for i, e := range h.Edges {
					if i != skip {
						h2.AddEdge(e)
					}
				}
				if !IsBetaAcyclic(h2) {
					t.Fatalf("β-acyclicity not hereditary: %v minus %d", h.Edges, skip)
				}
			}
		}
	}
}

// Star size 1 ⇔ free-connex (Section 4.4: "being of quantified star size 1
// is equivalent to being free-connex"), on random acyclic hypergraphs.
func TestStarSizeOneIffFreeConnex(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	checked := 0
	for trial := 0; trial < 2000 && checked < 300; trial++ {
		h := randomHypergraph(rng, 4)
		if !IsAcyclic(h) {
			continue
		}
		verts := h.Vertices()
		var free []string
		for _, v := range verts {
			if rng.Intn(2) == 0 {
				free = append(free, v)
			}
		}
		checked++
		fc := FreeConnex(h, free)
		ss := QuantifiedStarSize(h, free)
		if fc != (ss == 1) {
			t.Fatalf("free-connex=%v but star size=%d for %v free=%v", fc, ss, h.Edges, free)
		}
	}
	if checked < 100 {
		t.Fatalf("too few acyclic samples: %d", checked)
	}
}

func TestSComponentsIgnoreEdgesInsideS(t *testing.T) {
	h := New()
	h.AddEdge(NewEdge("F", "y1", "y2")) // fully inside S
	h.AddEdge(NewEdge("G", "y1", "x1"))
	s := map[string]bool{"y1": true, "y2": true}
	comps := SComponents(h, s)
	if len(comps) != 1 || len(comps[0].EdgeIdx) != 1 || h.Edges[comps[0].EdgeIdx[0]].Name != "G" {
		t.Errorf("edges inside S must not form components: %v", comps)
	}
}

func TestVerticesAndIsolated(t *testing.T) {
	h := New()
	h.AddEdge(NewEdge("E", "b", "a"))
	h.AddVertex("z")
	vs := h.Vertices()
	if len(vs) != 3 || vs[0] != "a" || vs[2] != "z" {
		t.Errorf("Vertices = %v", vs)
	}
}

func TestJoinTreeString(t *testing.T) {
	h := New()
	h.AddEdge(NewEdge("A", "x", "y"))
	h.AddEdge(NewEdge("B", "y", "z"))
	jt, ok := GYO(h)
	if !ok {
		t.Fatal("chain must be acyclic")
	}
	if jt.String() == "" {
		t.Errorf("String should render the tree")
	}
	if jt.Root() < 0 {
		t.Errorf("Root not found")
	}
}
