package hypergraph

import "sort"

// SComponent is one S-component of a hypergraph (Definition 4.23): a set of
// edges (by index into the original hypergraph) that are connected to each
// other through paths avoiding S.
type SComponent struct {
	EdgeIdx []int // indices of member edges, sorted
}

// SComponents decomposes h into its S-components. Per Definition 4.23, only
// edges e ⊄ S participate; two such edges lie in the same component iff
// their parts outside S are connected in H[V−S].
func SComponents(h *Hypergraph, s map[string]bool) []SComponent {
	// Union-find over vertices of V−S: vertices are connected if they lie
	// in a common edge (restricted to V−S).
	parent := make(map[string]string)
	var find func(string) string
	find = func(v string) string {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range h.Edges {
		out := e.Minus(s)
		for _, v := range out {
			if _, ok := parent[v]; !ok {
				parent[v] = v
			}
		}
		for i := 1; i < len(out); i++ {
			union(out[0], out[i])
		}
	}
	// Group edges ⊄ S by the root of (any vertex of) their outside part.
	groups := make(map[string][]int)
	var reps []string
	for i, e := range h.Edges {
		out := e.Minus(s)
		if len(out) == 0 {
			continue // e ⊆ S: not part of any S-component
		}
		r := find(out[0])
		if _, ok := groups[r]; !ok {
			reps = append(reps, r)
		}
		groups[r] = append(groups[r], i)
	}
	sort.Strings(reps)
	comps := make([]SComponent, 0, len(reps))
	for _, r := range reps {
		idx := groups[r]
		sort.Ints(idx)
		comps = append(comps, SComponent{EdgeIdx: idx})
	}
	return comps
}

// SVertices returns the sorted vertices of S that occur in the component's
// edges.
func (c SComponent) SVertices(h *Hypergraph, s map[string]bool) []string {
	seen := make(map[string]bool)
	var out []string
	for _, i := range c.EdgeIdx {
		for _, v := range h.Edges[i].Vertices {
			if s[v] && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// IndependentSVertices returns a maximum independent set of S-vertices
// within the component: a largest set of S-vertices no two of which occur
// together in a component edge. Components arising from queries are small,
// so exact branch-and-bound search is used.
func (c SComponent) IndependentSVertices(h *Hypergraph, s map[string]bool) []string {
	verts := c.SVertices(h, s)
	// conflict[i][j]: vertices i and j share an edge.
	n := len(verts)
	pos := make(map[string]int, n)
	for i, v := range verts {
		pos[v] = i
	}
	conflict := make([][]bool, n)
	for i := range conflict {
		conflict[i] = make([]bool, n)
	}
	for _, ei := range c.EdgeIdx {
		var members []int
		for _, v := range h.Edges[ei].Vertices {
			if i, ok := pos[v]; ok {
				members = append(members, i)
			}
		}
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				conflict[members[a]][members[b]] = true
				conflict[members[b]][members[a]] = true
			}
		}
	}
	var best []int
	var cur []int
	var rec func(start int)
	rec = func(start int) {
		if len(cur) > len(best) {
			best = append(best[:0], cur...)
		}
		if len(cur)+(n-start) <= len(best) {
			return // cannot beat best
		}
		for i := start; i < n; i++ {
			ok := true
			for _, j := range cur {
				if conflict[i][j] {
					ok = false
					break
				}
			}
			if ok {
				cur = append(cur, i)
				rec(i + 1)
				cur = cur[:len(cur)-1]
			}
		}
	}
	rec(0)
	out := make([]string, len(best))
	for i, j := range best {
		out[i] = verts[j]
	}
	sort.Strings(out)
	return out
}

// SStarSize computes the S-star size of h (Definition 4.25): the maximum
// size of an independent set of S-vertices over all S-components.
func SStarSize(h *Hypergraph, s map[string]bool) int {
	max := 0
	for _, c := range SComponents(h, s) {
		if k := len(c.IndependentSVertices(h, s)); k > max {
			max = k
		}
	}
	return max
}

// QuantifiedStarSize computes the quantified star size of an acyclic query
// with free variables free (Definition 4.26): the S-star size with
// S = free. Edges fully contained in S are ignored, per the convention of
// Section 4.4; a query whose hypergraph has no edge leaving S has star
// size 0 (it is quantifier-free up to isolated quantified variables) and is
// reported as 1 so that "star size ≤ 1 ⇔ free-connex" holds uniformly.
func QuantifiedStarSize(h *Hypergraph, free []string) int {
	s := make(map[string]bool, len(free))
	for _, v := range free {
		s[v] = true
	}
	k := SStarSize(h, s)
	if k == 0 {
		return 1
	}
	return k
}

// FreeConnex reports whether an acyclic hypergraph with the given free
// vertices is free-connex (Definition 4.4): H plus a fresh edge covering
// exactly the free vertices is still acyclic. Queries with no free
// variables (Boolean) are free-connex by definition.
func FreeConnex(h *Hypergraph, free []string) bool {
	if !IsAcyclic(h) {
		return false
	}
	if len(free) == 0 {
		return true
	}
	h2 := h.Clone()
	h2.AddEdge(NewEdge("__head__", free...))
	return IsAcyclic(h2)
}
