// Package hypergraph implements the hypergraph machinery of Section 4 of the
// paper: query hypergraphs, join trees and the GYO ear-removal algorithm
// (α-acyclicity, Section 4.1), β-acyclicity via nest-point elimination
// (Section 4.5), S-components and the quantified star size of Durand–Mengel
// (Section 4.4, Definitions 4.23–4.26), and the free-connex test
// (Definition 4.4).
package hypergraph

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is a named hyperedge: a set of vertices. Vertices is kept sorted and
// duplicate-free.
type Edge struct {
	Name     string
	Vertices []string
}

// NewEdge builds an edge, sorting and deduplicating the vertex list.
func NewEdge(name string, vertices ...string) Edge {
	vs := append([]string(nil), vertices...)
	sort.Strings(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return Edge{Name: name, Vertices: out}
}

// Has reports whether v is a vertex of e.
func (e Edge) Has(v string) bool {
	i := sort.SearchStrings(e.Vertices, v)
	return i < len(e.Vertices) && e.Vertices[i] == v
}

// SubsetOf reports whether every vertex of e belongs to f.
func (e Edge) SubsetOf(f Edge) bool {
	for _, v := range e.Vertices {
		if !f.Has(v) {
			return false
		}
	}
	return true
}

// Minus returns the vertices of e not in the given set.
func (e Edge) Minus(set map[string]bool) []string {
	var out []string
	for _, v := range e.Vertices {
		if !set[v] {
			out = append(out, v)
		}
	}
	return out
}

// Intersect returns the vertices common to e and f.
func (e Edge) Intersect(f Edge) []string {
	var out []string
	for _, v := range e.Vertices {
		if f.Has(v) {
			out = append(out, v)
		}
	}
	return out
}

// String renders the edge as "Name{v1,v2}".
func (e Edge) String() string {
	return e.Name + "{" + strings.Join(e.Vertices, ",") + "}"
}

// Hypergraph is a finite hypergraph H = (V, E) (Section 4). The vertex set
// is implicit: the union of all edge vertex sets plus any isolated vertices
// added explicitly.
type Hypergraph struct {
	Edges    []Edge
	isolated []string
}

// New creates an empty hypergraph.
func New() *Hypergraph { return &Hypergraph{} }

// AddEdge appends an edge. Edge names should be unique; they identify query
// atoms.
func (h *Hypergraph) AddEdge(e Edge) { h.Edges = append(h.Edges, e) }

// AddVertex records an isolated vertex (one that may appear in no edge).
func (h *Hypergraph) AddVertex(v string) { h.isolated = append(h.isolated, v) }

// Vertices returns the sorted vertex set.
func (h *Hypergraph) Vertices() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, e := range h.Edges {
		for _, v := range e.Vertices {
			add(v)
		}
	}
	for _, v := range h.isolated {
		add(v)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy.
func (h *Hypergraph) Clone() *Hypergraph {
	c := New()
	for _, e := range h.Edges {
		c.AddEdge(NewEdge(e.Name, e.Vertices...))
	}
	c.isolated = append([]string(nil), h.isolated...)
	return c
}

// EdgesWith returns the indices of edges containing v.
func (h *Hypergraph) EdgesWith(v string) []int {
	var out []int
	for i, e := range h.Edges {
		if e.Has(v) {
			out = append(out, i)
		}
	}
	return out
}

// JoinTree is a join tree of a hypergraph (Section 4.1): its nodes are the
// hyperedges, and for every vertex v the set of nodes containing v induces a
// connected subtree (the running-intersection property).
type JoinTree struct {
	Nodes  []Edge
	Parent []int // Parent[i] = index of parent node, -1 for the root
}

// Root returns the index of the root node.
func (t *JoinTree) Root() int {
	for i, p := range t.Parent {
		if p == -1 {
			return i
		}
	}
	return -1
}

// Children returns, for each node, the indices of its children.
func (t *JoinTree) Children() [][]int {
	ch := make([][]int, len(t.Nodes))
	for i, p := range t.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], i)
		}
	}
	return ch
}

// Validate checks the running-intersection property: for each vertex, the
// nodes containing it form a connected subtree.
func (t *JoinTree) Validate() error {
	if len(t.Nodes) == 0 {
		return nil
	}
	roots := 0
	for _, p := range t.Parent {
		if p == -1 {
			roots++
		}
	}
	if roots != 1 {
		return fmt.Errorf("hypergraph: join tree has %d roots", roots)
	}
	// Collect vertices.
	verts := make(map[string][]int)
	for i, e := range t.Nodes {
		for _, v := range e.Vertices {
			verts[v] = append(verts[v], i)
		}
	}
	// For each vertex, the occurrence set must be connected in the tree:
	// walking up from any occurrence, the path to the "highest" occurrence
	// must stay within occurrences.
	for v, occ := range verts {
		in := make(map[int]bool, len(occ))
		for _, i := range occ {
			in[i] = true
		}
		// depth of each node
		depth := func(i int) int {
			d := 0
			for t.Parent[i] != -1 {
				i = t.Parent[i]
				d++
			}
			return d
		}
		// highest occurrence = min depth
		top, topd := occ[0], depth(occ[0])
		for _, i := range occ[1:] {
			if d := depth(i); d < topd {
				top, topd = i, d
			}
		}
		for _, i := range occ {
			for i != top {
				p := t.Parent[i]
				if p == -1 || !in[p] {
					return fmt.Errorf("hypergraph: vertex %q occurrence set not connected", v)
				}
				i = p
			}
		}
	}
	return nil
}

// String renders the tree as an indented outline, children sorted by name.
func (t *JoinTree) String() string {
	var b strings.Builder
	ch := t.Children()
	for i := range ch {
		sort.Slice(ch[i], func(a, b int) bool { return t.Nodes[ch[i][a]].Name < t.Nodes[ch[i][b]].Name })
	}
	var rec func(i, depth int)
	rec = func(i, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(t.Nodes[i].String())
		b.WriteByte('\n')
		for _, c := range ch[i] {
			rec(c, depth+1)
		}
	}
	if r := t.Root(); r >= 0 {
		rec(r, 0)
	}
	return b.String()
}

// Reroot reverses parent pointers so that node r becomes the root.
func (t *JoinTree) Reroot(r int) {
	var path []int
	for i := r; i != -1; i = t.Parent[i] {
		path = append(path, i)
	}
	for k := len(path) - 1; k > 0; k-- {
		t.Parent[path[k]] = path[k-1]
	}
	t.Parent[r] = -1
}

// GYO runs the Graham–Yu–Özsoyoğlu ear-removal algorithm. It returns a join
// tree and true iff h is α-acyclic (Section 4.1). Edges that are subsets of
// other edges are attached below a containing edge. An empty hypergraph is
// acyclic with an empty tree.
func GYO(h *Hypergraph) (*JoinTree, bool) {
	n := len(h.Edges)
	if n == 0 {
		return &JoinTree{}, true
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	removed := 0
	for removed < n-1 {
		progress := false
		for i := 0; i < n && removed < n-1; i++ {
			if !alive[i] {
				continue
			}
			// e_i is an ear if the vertices it shares with other alive
			// edges are all contained in a single other alive edge w.
			witness := -1
			shared := sharedVertices(h, alive, i)
			if len(shared) == 0 {
				// Isolated ear: attach to any other alive edge.
				for j := 0; j < n; j++ {
					if j != i && alive[j] {
						witness = j
						break
					}
				}
			} else {
				for j := 0; j < n; j++ {
					if j == i || !alive[j] {
						continue
					}
					if containsAll(h.Edges[j], shared) {
						witness = j
						break
					}
				}
			}
			if witness >= 0 {
				parent[i] = witness
				alive[i] = false
				removed++
				progress = true
			}
		}
		if !progress {
			return nil, false
		}
	}
	return &JoinTree{Nodes: h.Edges, Parent: parent}, true
}

func sharedVertices(h *Hypergraph, alive []bool, i int) []string {
	var out []string
	for _, v := range h.Edges[i].Vertices {
		for j := range h.Edges {
			if j != i && alive[j] && h.Edges[j].Has(v) {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

func containsAll(e Edge, vs []string) bool {
	for _, v := range vs {
		if !e.Has(v) {
			return false
		}
	}
	return true
}

// IsAcyclic reports α-acyclicity (the query class ACQ, Section 4.1).
func IsAcyclic(h *Hypergraph) bool {
	_, ok := GYO(h)
	return ok
}

// IsBetaAcyclic reports β-acyclicity (Definition 4.29): h and all its
// subhypergraphs are α-acyclic. It uses the nest-point elimination
// characterization ([38], Section 4.5): h is β-acyclic iff repeatedly
// removing nest points (vertices whose incident edges form a chain under ⊆)
// and discarding emptied edges eliminates all vertices.
func IsBetaAcyclic(h *Hypergraph) bool {
	_, ok := NestPointOrder(h)
	return ok
}

// NestPointOrder returns a vertex elimination order witnessing β-acyclicity,
// and false if none exists. The order drives the Davis–Putnam procedure of
// Theorem 4.31.
func NestPointOrder(h *Hypergraph) ([]string, bool) {
	// Work on copies of the edge vertex sets.
	edges := make([]map[string]bool, len(h.Edges))
	for i, e := range h.Edges {
		edges[i] = make(map[string]bool, len(e.Vertices))
		for _, v := range e.Vertices {
			edges[i][v] = true
		}
	}
	remaining := make(map[string]bool)
	for _, v := range h.Vertices() {
		remaining[v] = true
	}
	var order []string
	for len(remaining) > 0 {
		found := ""
		for v := range remaining {
			if isNestPoint(edges, v) {
				if found == "" || v < found { // deterministic choice
					found = v
				}
			}
		}
		if found == "" {
			return nil, false
		}
		order = append(order, found)
		delete(remaining, found)
		for i := range edges {
			delete(edges[i], found)
		}
	}
	return order, true
}

// isNestPoint reports whether the nonempty edges containing v form a chain
// under ⊆.
func isNestPoint(edges []map[string]bool, v string) bool {
	var inc []map[string]bool
	for _, e := range edges {
		if e[v] {
			inc = append(inc, e)
		}
	}
	sort.Slice(inc, func(i, j int) bool { return len(inc[i]) < len(inc[j]) })
	for i := 0; i+1 < len(inc); i++ {
		if !subset(inc[i], inc[i+1]) {
			return false
		}
	}
	return true
}

func subset(a, b map[string]bool) bool {
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}
