package hypergraph

import (
	"testing"
	"testing/quick"
)

// Property: NewEdge is idempotent under shuffling and duplication of the
// vertex list.
func TestQuickNewEdgeCanonical(t *testing.T) {
	f := func(vs []uint8, dup uint8) bool {
		var names []string
		for _, v := range vs {
			names = append(names, string(rune('a'+v%6)))
		}
		e1 := NewEdge("E", names...)
		// Append duplicates and a rotation.
		extra := append(append([]string(nil), names...), names...)
		if len(names) > 1 {
			extra = append(extra[1:], extra[0])
		}
		e2 := NewEdge("E", extra...)
		if len(e1.Vertices) != len(e2.Vertices) {
			return false
		}
		for i := range e1.Vertices {
			if e1.Vertices[i] != e2.Vertices[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SubsetOf is reflexive and antisymmetric up to equality, and
// Intersect is symmetric in content.
func TestQuickEdgeLattice(t *testing.T) {
	f := func(a, b []uint8) bool {
		ea := mkEdge("A", a)
		eb := mkEdge("B", b)
		if !ea.SubsetOf(ea) {
			return false
		}
		ia := ea.Intersect(eb)
		ib := eb.Intersect(ea)
		if len(ia) != len(ib) {
			return false
		}
		for i := range ia {
			if ia[i] != ib[i] {
				return false
			}
		}
		// Intersection is a subset of both.
		for _, v := range ia {
			if !ea.Has(v) || !eb.Has(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func mkEdge(name string, vs []uint8) Edge {
	var names []string
	for _, v := range vs {
		names = append(names, string(rune('a'+v%8)))
	}
	return NewEdge(name, names...)
}

// Property: adding an edge that covers all vertices makes any hypergraph
// α-acyclic; removing it may not preserve acyclicity (α is not hereditary),
// but GYO must accept the covered version.
func TestQuickCoveringEdgeAcyclic(t *testing.T) {
	f := func(spec [][3]uint8) bool {
		h := New()
		all := map[string]bool{}
		for i, tri := range spec {
			if i >= 5 {
				break
			}
			var names []string
			for _, v := range tri {
				nm := string(rune('a' + v%6))
				names = append(names, nm)
				all[nm] = true
			}
			h.AddEdge(NewEdge("e"+string(rune('0'+i)), names...))
		}
		if len(h.Edges) == 0 {
			return true
		}
		var cover []string
		for v := range all {
			cover = append(cover, v)
		}
		h.AddEdge(NewEdge("cover", cover...))
		return IsAcyclic(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the S-components partition the edges not contained in S.
func TestQuickSComponentsPartition(t *testing.T) {
	f := func(spec [][3]uint8, smask uint8) bool {
		h := New()
		for i, tri := range spec {
			if i >= 5 {
				break
			}
			var names []string
			for _, v := range tri {
				names = append(names, string(rune('a'+v%6)))
			}
			h.AddEdge(NewEdge("e"+string(rune('0'+i)), names...))
		}
		s := map[string]bool{}
		for b := 0; b < 6; b++ {
			if smask&(1<<b) != 0 {
				s[string(rune('a'+b))] = true
			}
		}
		comps := SComponents(h, s)
		seen := map[int]int{}
		for ci, c := range comps {
			for _, ei := range c.EdgeIdx {
				if _, dup := seen[ei]; dup {
					return false // an edge in two components
				}
				seen[ei] = ci
			}
		}
		for i, e := range h.Edges {
			outside := len(e.Minus(s)) > 0
			_, in := seen[i]
			if outside != in {
				return false // covered ⇔ not in any component
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Reroot preserves the edge set and the running-intersection
// property.
func TestQuickRerootPreservesValidity(t *testing.T) {
	f := func(spec [][2]uint8, pick uint8) bool {
		h := New()
		// Build a path-ish acyclic hypergraph: chain edges share a vertex.
		prev := "a"
		for i, p := range spec {
			if i >= 5 {
				break
			}
			next := string(rune('a' + p[0]%8))
			h.AddEdge(NewEdge("e"+string(rune('0'+i)), prev, next))
			prev = next
		}
		if len(h.Edges) == 0 {
			return true
		}
		jt, ok := GYO(h)
		if !ok {
			return true // only test acyclic instances
		}
		jt.Reroot(int(pick) % len(jt.Nodes))
		return jt.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
