// Package graphs generates the graph and database families used by the
// experiments: bounded-degree graphs (Section 3.1), the low-degree class of
// Definition 3.8 (a clique of size k plus 2^k independent vertices), grids
// (the Section 3.3 MSO lower-bound family), random bipartite graphs
// (Equation 2), and random relational databases.
package graphs

import (
	"math/rand"

	"repro/internal/database"
)

// Edge is an undirected edge.
type Edge [2]int

// RandomBoundedDegree generates a graph on n vertices with maximum degree
// at most d.
func RandomBoundedDegree(rng *rand.Rand, n, d int) []Edge {
	deg := make([]int, n)
	var edges []Edge
	seen := map[Edge]bool{}
	for attempt := 0; attempt < 4*n*d; attempt++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b || deg[a] >= d || deg[b] >= d {
			continue
		}
		if a > b {
			a, b = b, a
		}
		e := Edge{a, b}
		if seen[e] {
			continue
		}
		seen[e] = true
		deg[a]++
		deg[b]++
		edges = append(edges, e)
	}
	return edges
}

// Cycle returns the n-cycle.
func Cycle(n int) []Edge {
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{i, (i + 1) % n})
	}
	return edges
}

// Grid returns the (m,n)-grid of Section 3.3: vertices (i,j) numbered
// i*n+j, edges between orthogonal neighbours.
func Grid(m, n int) ([]Edge, int) {
	var edges []Edge
	id := func(i, j int) int { return i*n + j }
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if i+1 < m {
				edges = append(edges, Edge{id(i, j), id(i+1, j)})
			}
			if j+1 < n {
				edges = append(edges, Edge{id(i, j), id(i, j+1)})
			}
		}
	}
	return edges, m * n
}

// CliquePlusIndependent builds the low-degree family of Definition 3.8: a
// clique on k vertices plus 2^k isolated vertices — total n = k + 2^k
// vertices with maximum degree k−1 = O(log n), yet not closed under
// substructures.
func CliquePlusIndependent(k int) ([]Edge, int) {
	var edges []Edge
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, Edge{i, j})
		}
	}
	return edges, k + (1 << k)
}

// RandomBipartite returns a biadjacency matrix over n+n vertices with edge
// probability p.
func RandomBipartite(rng *rand.Rand, n int, p float64) [][]bool {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
		for j := range adj[i] {
			adj[i][j] = rng.Float64() < p
		}
	}
	return adj
}

// EdgesToDB loads edges into a relational database as a symmetric binary
// relation E over values 1..n (plus a unary relation V covering every
// vertex so that the active domain is the full vertex set).
func EdgesToDB(edges []Edge, n int) *database.Database {
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	for _, ed := range edges {
		e.InsertValues(database.Value(ed[0]+1), database.Value(ed[1]+1))
		e.InsertValues(database.Value(ed[1]+1), database.Value(ed[0]+1))
	}
	e.Dedup()
	db.AddRelation(e)
	v := database.NewRelation("V", 1)
	for i := 1; i <= n; i++ {
		v.InsertValues(database.Value(i))
	}
	db.AddRelation(v)
	return db
}

// RandomRelation fills a fresh relation with random tuples over [1,dom].
func RandomRelation(rng *rand.Rand, name string, arity, size, dom int) *database.Relation {
	r := database.NewRelation(name, arity)
	for i := 0; i < size; i++ {
		t := make(database.Tuple, arity)
		for j := range t {
			t[j] = database.Value(rng.Intn(dom) + 1)
		}
		r.Insert(t)
	}
	r.Dedup()
	return r
}

// Degree returns the maximum vertex degree of the edge list.
func Degree(edges []Edge, n int) int {
	deg := make([]int, n)
	for _, e := range edges {
		deg[e[0]]++
		if e[0] != e[1] {
			deg[e[1]]++
		}
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	return max
}
