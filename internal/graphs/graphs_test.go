package graphs

import (
	"math/rand"
	"testing"
)

func TestRandomBoundedDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 2, 4} {
		edges := RandomBoundedDegree(rng, 50, d)
		if got := Degree(edges, 50); got > d {
			t.Errorf("degree %d exceeds bound %d", got, d)
		}
		if len(edges) == 0 {
			t.Errorf("no edges generated for d=%d", d)
		}
	}
}

func TestCycleAndGrid(t *testing.T) {
	c := Cycle(5)
	if len(c) != 5 || Degree(c, 5) != 2 {
		t.Errorf("cycle wrong: %v", c)
	}
	g, n := Grid(3, 4)
	if n != 12 {
		t.Fatalf("grid size %d", n)
	}
	// #edges = m(n-1) + n(m-1) = 3·3 + 4·2 = 17.
	if len(g) != 17 {
		t.Errorf("grid edges: %d, want 17", len(g))
	}
	if Degree(g, n) != 4 {
		t.Errorf("grid max degree: %d, want 4", Degree(g, n))
	}
}

func TestCliquePlusIndependent(t *testing.T) {
	edges, n := CliquePlusIndependent(4)
	if n != 4+16 {
		t.Fatalf("n = %d", n)
	}
	if len(edges) != 6 {
		t.Errorf("clique edges: %d, want 6", len(edges))
	}
	if Degree(edges, n) != 3 {
		t.Errorf("degree: %d, want 3", Degree(edges, n))
	}
}

func TestEdgesToDB(t *testing.T) {
	db := EdgesToDB(Cycle(4), 4)
	if db.Relation("E").Len() != 8 {
		t.Errorf("symmetric closure: %d tuples, want 8", db.Relation("E").Len())
	}
	if len(db.Domain()) != 4 {
		t.Errorf("domain: %v", db.Domain())
	}
}

func TestRandomHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	adj := RandomBipartite(rng, 6, 0.5)
	if len(adj) != 6 || len(adj[0]) != 6 {
		t.Fatalf("bipartite shape wrong")
	}
	r := RandomRelation(rng, "R", 3, 20, 5)
	if r.Arity != 3 || r.Len() == 0 || r.Len() > 20 {
		t.Errorf("random relation wrong: %d tuples", r.Len())
	}
}
