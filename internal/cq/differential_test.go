package cq

// Differential suite: every answer-producing engine in this package is
// compared against internal/oracle's brute-force reference on hundreds of
// seeded random instances from internal/qgen. A failure prints the seed,
// the query, and the full database, so any mismatch reproduces with
//
//	go test ./internal/cq -run TestDifferential -seed=N

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
	"repro/internal/oracle"
	"repro/internal/qgen"
)

var seedFlag = flag.Int64("seed", -1, "replay a single differential-suite seed (-1 runs the full sweep)")

// numSeeds is the size of the full sweep; together with the suites in
// internal/counting and internal/database this comfortably exceeds the
// 200-instance floor of the testing plan.
const numSeeds = 250

func diffSeeds() []int64 {
	if *seedFlag >= 0 {
		return []int64{*seedFlag}
	}
	seeds := make([]int64, numSeeds)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	return seeds
}

// failInstance aborts the test printing everything needed to reproduce the
// mismatch as a one-liner.
func failInstance(t *testing.T, seed int64, q fmt.Stringer, db *database.Database, format string, args ...interface{}) {
	t.Helper()
	t.Fatalf("%s\nseed %d — replay with: go test ./internal/cq -run %s -seed=%d\n%s",
		fmt.Sprintf(format, args...), seed, t.Name(), seed, qgen.FormatInstance(q, db))
}

func sortedCopy(ts []database.Tuple) []database.Tuple {
	out := append([]database.Tuple(nil), ts...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Compare(out[j-1]) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sameAnswers(a, b []database.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	a, b = sortedCopy(a), sortedCopy(b)
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestDifferentialEval: oracle ≡ EvalNaive ≡ sequential Yannakakis ≡
// parallel Yannakakis on free-connex instances.
func TestDifferentialEval(t *testing.T) {
	for _, seed := range diffSeeds() {
		q, db := qgen.Instance(seed)
		want, err := oracle.Eval(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "oracle: %v", err)
		}
		// EvalNaive enumerates dom^vars without pruning; keep the third
		// opinion to instances where that stays cheap.
		if len(q.Vars()) <= 8 {
			if naive := q.EvalNaive(db); !sameAnswers(naive, want) {
				failInstance(t, seed, q, db, "EvalNaive %v != oracle %v", naive, want)
			}
		}
		got, err := Eval(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "Eval: %v", err)
		}
		if !sameAnswers(got, want) {
			failInstance(t, seed, q, db, "Eval %v != oracle %v", got, want)
		}
		par, err := ParEval(db, q, 4, nil)
		if err != nil {
			failInstance(t, seed, q, db, "ParEval: %v", err)
		}
		if !sameAnswers(par, want) {
			failInstance(t, seed, q, db, "ParEval %v != oracle %v", par, want)
		}
	}
}

// TestDifferentialEnumeration: the sets emitted by the constant-delay and
// linear-delay enumerators equal the oracle's answer set, and neither
// enumerator emits a duplicate.
func TestDifferentialEnumeration(t *testing.T) {
	for _, seed := range diffSeeds() {
		q, db := qgen.Instance(seed)
		want, err := oracle.Eval(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "oracle: %v", err)
		}
		enums := []struct {
			name  string
			build func(c *delay.Counter) (delay.Enumerator, error)
		}{
			{"EnumerateConstantDelay", func(c *delay.Counter) (delay.Enumerator, error) { return EnumerateConstantDelay(db, q, c) }},
			{"EnumerateLinearDelay", func(c *delay.Counter) (delay.Enumerator, error) { return EnumerateLinearDelay(db, q, c) }},
		}
		for _, en := range enums {
			e, err := en.build(&delay.Counter{})
			if err != nil {
				failInstance(t, seed, q, db, "%s: %v", en.name, err)
			}
			got := delay.Collect(e)
			seen := make(map[string]bool, len(got))
			for _, tp := range got {
				k := tp.FullKey()
				if seen[k] {
					failInstance(t, seed, q, db, "%s emitted duplicate %v", en.name, tp)
				}
				seen[k] = true
			}
			if !sameAnswers(got, want) {
				failInstance(t, seed, q, db, "%s %v != oracle %v", en.name, got, want)
			}
		}
	}
}

// TestDifferentialRandomAccess: Count matches the oracle and i ↦ Get(i) is
// a bijection from [0, Count) onto the answer set; out-of-range indexes
// error.
func TestDifferentialRandomAccess(t *testing.T) {
	for _, seed := range diffSeeds() {
		q, db := qgen.Instance(seed)
		want, err := oracle.Eval(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "oracle: %v", err)
		}
		ra, err := NewRandomAccess(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "NewRandomAccess: %v", err)
		}
		n := ra.Count()
		if !n.IsInt64() || n.Int64() != int64(len(want)) {
			failInstance(t, seed, q, db, "Count %s != oracle %d", n, len(want))
		}
		got := make([]database.Tuple, 0, len(want))
		seen := make(map[string]bool, len(want))
		for i := int64(0); i < n.Int64(); i++ {
			tp, err := ra.GetInt(i)
			if err != nil {
				failInstance(t, seed, q, db, "Get(%d): %v", i, err)
			}
			k := tp.FullKey()
			if seen[k] {
				failInstance(t, seed, q, db, "Get(%d) repeats %v — not injective", i, tp)
			}
			seen[k] = true
			got = append(got, tp.Clone())
		}
		if !sameAnswers(got, want) {
			failInstance(t, seed, q, db, "random access image %v != oracle %v", got, want)
		}
		if _, err := ra.GetInt(n.Int64()); err == nil {
			failInstance(t, seed, q, db, "Get(Count) did not error")
		}
	}
}

// TestDifferentialDecide: the Boolean query problem on general acyclic
// instances — oracle ≡ DecideNaive ≡ semijoin Decide ≡ ParDecide.
func TestDifferentialDecide(t *testing.T) {
	cfg := qgen.Default()
	for _, seed := range diffSeeds() {
		rng := rand.New(rand.NewSource(seed))
		q := qgen.AcyclicCQ(rng, cfg)
		db := qgen.DatabaseFor(rng, cfg, q)
		want, err := oracle.Decide(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "oracle: %v", err)
		}
		if naive := q.DecideNaive(db); naive != want {
			failInstance(t, seed, q, db, "DecideNaive %v != oracle %v", naive, want)
		}
		got, err := Decide(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "Decide: %v", err)
		}
		if got != want {
			failInstance(t, seed, q, db, "Decide %v != oracle %v", got, want)
		}
		par, err := ParDecide(db, q, 4, nil)
		if err != nil {
			failInstance(t, seed, q, db, "ParDecide: %v", err)
		}
		if par != want {
			failInstance(t, seed, q, db, "ParDecide %v != oracle %v", par, want)
		}
	}
}

// TestDifferentialStepCounts: on nonempty joins the parallel engine records
// exactly the sequential engine's counted steps — parallelism redistributes
// the work, it must not change its total (the PR 1 contract).
func TestDifferentialStepCounts(t *testing.T) {
	for _, seed := range diffSeeds() {
		q, db := qgen.Instance(seed)
		seqC := &delay.Counter{}
		seq, err := EvalCounted(db, q, seqC)
		if err != nil {
			failInstance(t, seed, q, db, "EvalCounted: %v", err)
		}
		parC := &delay.Counter{}
		if _, err := ParEval(db, q, 4, parC); err != nil {
			failInstance(t, seed, q, db, "ParEval: %v", err)
		}
		// The parallel reducer early-exits once some relation is empty, so
		// step equality is only contractual on nonempty results.
		if len(seq) > 0 && seqC.Steps() != parC.Steps() {
			failInstance(t, seed, q, db, "steps: sequential %d != parallel %d", seqC.Steps(), parC.Steps())
		}
	}
}

// evalWithSemijoin is a scratch copy of the Eval pipeline (full reduction +
// bottom-up join pass) with a swappable semijoin operator, used to verify
// that the differential suite has the sensitivity to catch a subtly broken
// operator.
func evalWithSemijoin(db *database.Database, q *logic.CQ, sj func(a, b Rel) Rel) ([]database.Tuple, error) {
	t, err := BuildTree(db, q, false)
	if err != nil {
		return nil, err
	}
	for _, i := range t.postord {
		for _, ch := range t.children[i] {
			t.Rels[i] = sj(t.Rels[i], t.Rels[ch])
		}
	}
	for k := len(t.postord) - 1; k >= 0; k-- {
		i := t.postord[k]
		for _, ch := range t.children[i] {
			t.Rels[ch] = sj(t.Rels[ch], t.Rels[i])
		}
	}
	for _, r := range t.Rels {
		if r.R.Len() == 0 {
			return nil, nil
		}
	}
	head := headSet(q)
	acc := make([]Rel, len(t.Rels))
	for _, i := range t.postord {
		acc[i] = t.evalNode(i, head, acc, nil)
	}
	out := project(acc[t.JT.Root()], q.Head)
	out.R.Dedup()
	return out.R.Tuples, nil
}

// brokenSemijoin is semijoin with an injected off-by-one: it silently drops
// the last surviving tuple.
func brokenSemijoin(a, b Rel) Rel {
	r := semijoin(a, b)
	if n := r.R.Len(); n > 0 {
		return Rel{Schema: r.Schema, R: database.FromTuples(r.R.Name, r.R.Arity, r.R.Tuples[:n-1])}
	}
	return r
}

// TestDifferentialInjectedSemijoinBug: the correct semijoin agrees with the
// oracle on every seed, while the off-by-one copy must be caught on at
// least one — evidence the suite can see a one-tuple error in a single
// relational operator.
func TestDifferentialInjectedSemijoinBug(t *testing.T) {
	caught := 0
	for _, seed := range diffSeeds() {
		q, db := qgen.Instance(seed)
		want, err := oracle.Eval(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "oracle: %v", err)
		}
		good, err := evalWithSemijoin(db, q, semijoin)
		if err != nil {
			failInstance(t, seed, q, db, "evalWithSemijoin: %v", err)
		}
		if !sameAnswers(good, want) {
			failInstance(t, seed, q, db, "scratch pipeline %v != oracle %v", good, want)
		}
		bad, err := evalWithSemijoin(db, q, brokenSemijoin)
		if err != nil || !sameAnswers(bad, want) {
			caught++
		}
	}
	if len(diffSeeds()) > 1 && caught == 0 {
		t.Fatalf("injected off-by-one semijoin survived all %d seeds — the suite has no sensitivity", numSeeds)
	}
	if caught > 0 {
		t.Logf("injected semijoin bug caught on %d/%d seeds", caught, len(diffSeeds()))
	}
}

// FuzzDifferentialEval lets the fuzzer drive the seed space beyond the
// fixed sweep: every interesting corpus entry is an instance on which some
// engine once disagreed or crashed.
func FuzzDifferentialEval(f *testing.F) {
	for s := int64(0); s < 16; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		q, db := qgen.Instance(seed)
		want, err := oracle.Eval(db, q)
		if err != nil {
			t.Skip() // budget blow-up, not an engine disagreement
		}
		got, err := Eval(db, q)
		if err != nil {
			t.Fatalf("seed %d: Eval: %v\n%s", seed, err, qgen.FormatInstance(q, db))
		}
		if !sameAnswers(got, want) {
			t.Fatalf("seed %d: Eval %v != oracle %v\n%s", seed, got, want, qgen.FormatInstance(q, db))
		}
		e, err := EnumerateConstantDelay(db, q, &delay.Counter{})
		if err != nil {
			t.Fatalf("seed %d: EnumerateConstantDelay: %v\n%s", seed, err, qgen.FormatInstance(q, db))
		}
		if enum := delay.Collect(e); !sameAnswers(enum, want) {
			t.Fatalf("seed %d: enumeration %v != oracle %v\n%s", seed, enum, want, qgen.FormatInstance(q, db))
		}
	})
}
