package cq

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic/logictest"
)

// deltaTracker snapshots per-relation generations and collects the delta
// logs since the last snapshot — the same protocol plan.Prepared.Refresh
// uses.
type deltaTracker struct {
	db   *database.Database
	gens map[string]uint64
}

func trackDeltas(db *database.Database) *deltaTracker {
	dt := &deltaTracker{db: db, gens: make(map[string]uint64)}
	for _, name := range db.Names() {
		r := db.Relation(name)
		r.EnableDeltaLog()
		dt.gens[name] = r.Generation()
	}
	return dt
}

func (dt *deltaTracker) collect(t *testing.T) map[string]database.Delta {
	t.Helper()
	out := make(map[string]database.Delta)
	for _, name := range dt.db.Names() {
		r := dt.db.Relation(name)
		d, ok := r.DeltaSince(dt.gens[name])
		if !ok {
			t.Fatalf("delta for %s unavailable", name)
		}
		out[name] = d
		dt.gens[name] = r.Generation()
	}
	return out
}

// mutateRandom applies one random single-tuple mutation to a relation the
// query reads: mostly inserts (sometimes duplicates of present tuples),
// otherwise deletes of present tuples.
func mutateRandom(rng *rand.Rand, db *database.Database, preds []string, domSize int) {
	r := db.Relation(preds[rng.Intn(len(preds))])
	roll := rng.Intn(10)
	switch {
	case roll < 5 || r.Len() == 0:
		tp := make(database.Tuple, r.Arity)
		for j := range tp {
			tp[j] = database.Value(rng.Intn(domSize) + 1)
		}
		r.Insert(tp)
	case roll < 7:
		// Duplicate occurrence of a present tuple: the multiset counters
		// must absorb it without changing any answer set.
		r.Insert(r.Tuples[rng.Intn(r.Len())].Clone())
	default:
		r.Delete(r.Tuples[rng.Intn(r.Len())].Clone())
	}
}

// TestConstRefresherDifferential: a ConstRefresher-maintained core,
// patched through random insert/duplicate/delete sequences, answers
// exactly like a core freshly prepared over the mutated database. When
// Apply declines a delta the refresher is rebuilt — the same protocol the
// plan layer follows.
func TestConstRefresherDifferential(t *testing.T) {
	applied, rebuilt := 0, 0
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := randomACQ(rng)
		if len(q.Head) == 0 {
			continue
		}
		db := randomDB(rng, q, 6, 12)
		if _, err := PrepareConstantDelay(db, q, nil); err != nil {
			continue // not free-connex (or unsupported shape): no core to maintain
		}
		var preds []string
		seen := map[string]bool{}
		for _, a := range q.Atoms {
			if !seen[a.Pred] {
				seen[a.Pred] = true
				preds = append(preds, a.Pred)
			}
		}
		cr, core, err := NewConstRefresher(db, q)
		if err != nil {
			t.Fatalf("seed %d: NewConstRefresher: %v", seed, err)
		}
		// The built core must already agree with a one-shot prepare.
		checkCore := func(step int) {
			t.Helper()
			got := delay.Collect(core.Cursor(nil))
			fresh, err := PrepareConstantDelay(db, q, nil)
			if err != nil {
				t.Fatalf("seed %d step %d: fresh prepare: %v", seed, step, err)
			}
			want := delay.Collect(fresh.Cursor(nil))
			equalAnswerSets(t, fmt.Sprintf("seed %d step %d (query %v)", seed, step, q), got, want)
			if core.NonEmpty() != (len(want) > 0) {
				t.Fatalf("seed %d step %d: NonEmpty() = %v with %d answers", seed, step, core.NonEmpty(), len(want))
			}
		}
		checkCore(-1)
		dt := trackDeltas(db)
		for step := 0; step < 10; step++ {
			mutateRandom(rng, db, preds, 6)
			deltas := dt.collect(t)
			if cr.Apply(deltas) {
				applied++
			} else {
				rebuilt++
				cr, core, err = NewConstRefresher(db, q)
				if err != nil {
					t.Fatalf("seed %d step %d: rebuild: %v", seed, step, err)
				}
			}
			checkCore(step)
		}
	}
	if applied == 0 {
		t.Fatal("no mutation was ever applied incrementally; the refresher always fell back")
	}
	t.Logf("const refresher: %d deltas applied incrementally, %d rebuilds", applied, rebuilt)
}

// TestLinearRefresherDifferential: same protocol for the linear-delay
// spine, over arbitrary acyclic queries (including boolean ones). The
// enumeration SEQUENCE must match a fresh prepare exactly: the linear
// route orders outputs by sorted candidate values, which depend only on
// the reduced sets.
func TestLinearRefresherDifferential(t *testing.T) {
	applied := 0
	for seed := int64(100); seed < 170; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := randomACQ(rng)
		db := randomDB(rng, q, 6, 12)
		var preds []string
		seen := map[string]bool{}
		for _, a := range q.Atoms {
			if !seen[a.Pred] {
				seen[a.Pred] = true
				preds = append(preds, a.Pred)
			}
		}
		lr, lp, err := NewLinearRefresher(db, q)
		if err != nil {
			t.Fatalf("seed %d: NewLinearRefresher: %v", seed, err)
		}
		check := func(step int) {
			t.Helper()
			got := delay.Collect(lp.Enumerate(nil))
			fresh, err := PrepareLinearDelay(db, q, nil)
			if err != nil {
				t.Fatalf("seed %d step %d: fresh prepare: %v", seed, step, err)
			}
			want := delay.Collect(fresh.Enumerate(nil))
			if len(got) != len(want) {
				t.Fatalf("seed %d step %d (query %v): %d answers, want %d", seed, step, q, len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("seed %d step %d: answer %d = %v, want %v", seed, step, i, got[i], want[i])
				}
			}
			if lp.NonEmpty() != fresh.NonEmpty() {
				t.Fatalf("seed %d step %d: NonEmpty() = %v, fresh says %v", seed, step, lp.NonEmpty(), fresh.NonEmpty())
			}
		}
		check(-1)
		dt := trackDeltas(db)
		for step := 0; step < 10; step++ {
			mutateRandom(rng, db, preds, 6)
			deltas := dt.collect(t)
			if lr.Apply(deltas) {
				applied++
			} else {
				lr, lp, err = NewLinearRefresher(db, q)
				if err != nil {
					t.Fatalf("seed %d step %d: rebuild: %v", seed, step, err)
				}
			}
			check(step)
		}
	}
	if applied == 0 {
		t.Fatal("no mutation was ever applied incrementally")
	}
}

// TestConstRefresherSelfJoin: self-joins give each atom occurrence its
// own pipeline node fed by the same base relation; one base delta must
// reach both.
func TestConstRefresherSelfJoin(t *testing.T) {
	q := logictest.MustParseCQ("Q(x,y) :- E(x,y), E(y,z).")
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	for i := 0; i < 6; i++ {
		e.InsertValues(database.Value(i), database.Value(i+1))
	}
	e.Dedup()
	db.AddRelation(e)

	cr, core, err := NewConstRefresher(db, q)
	if err != nil {
		t.Fatal(err)
	}
	dt := trackDeltas(db)
	// (6,0) closes a cycle: both atom occurrences gain matches.
	e.Insert(database.Tuple{6, 0})
	if !cr.Apply(dt.collect(t)) {
		t.Fatal("Apply declined a single-tuple insert")
	}
	got := delay.Collect(core.Cursor(nil))
	fresh, err := PrepareConstantDelay(db, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	equalAnswerSets(t, "self-join after insert", got, delay.Collect(fresh.Cursor(nil)))

	e.Delete(database.Tuple{2, 3})
	if !cr.Apply(dt.collect(t)) {
		t.Fatal("Apply declined a single-tuple delete")
	}
	got = delay.Collect(core.Cursor(nil))
	fresh, err = PrepareConstantDelay(db, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	equalAnswerSets(t, "self-join after delete", got, delay.Collect(fresh.Cursor(nil)))
}
