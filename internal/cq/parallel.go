package cq

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
)

// This file implements the parallel Yannakakis engine. The semijoin passes
// of the full reducer and the join pass of Eval process independent sibling
// subtrees of the join tree concurrently — disjoint node sets, so no two
// workers ever touch the same relation — and each individual semijoin
// shards its hash-index build across cores (database.ParSemijoin).
//
// Parallelism changes wall time only: the engines perform the same
// relational operations on the same join tree, and every operation ticks
// the shared (atomic) step counter at the same points as the sequential
// engine, so the counted total work — the quantity bounded by Theorem 4.2's
// O(‖φ‖·‖D‖·‖φ(D)‖) — is preserved.

// parEngine bounds the engine's concurrency: the calling goroutine counts
// as one worker and the semaphore admits par-1 extra goroutines. Sibling
// tasks that find the semaphore full simply run inline, so the recursion
// never blocks on itself.
type parEngine struct {
	par  int
	sem  chan struct{}
	c    *delay.Counter
	dead atomic.Bool  // set when some relation reduced to empty
	wid  atomic.Int32 // worker-id allocator for span attribution
}

// Parallelism returns the effective degree for a requested one: values < 1
// mean "use all cores" (GOMAXPROCS), matching the -parallel flag contract.
func Parallelism(par int) int {
	if par < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return par
}

func newParEngine(par int, c *delay.Counter) *parEngine {
	par = Parallelism(par)
	return &parEngine{par: par, sem: make(chan struct{}, par-1), c: c}
}

// forEach runs n index-addressed tasks, spilling onto extra goroutines as
// semaphore slots are available and running the remainder inline. w is the
// calling worker's id for span attribution: inline tasks inherit it, while
// each spawned goroutine draws a fresh id from the engine's allocator.
func (e *parEngine) forEach(n, w int, f func(k, w int)) {
	if n == 0 {
		return
	}
	var wg sync.WaitGroup
	for k := 1; k < n; k++ {
		select {
		case e.sem <- struct{}{}:
			wg.Add(1)
			go func(k int) {
				defer func() { <-e.sem; wg.Done() }()
				f(k, int(e.wid.Add(1)))
			}(k)
		default:
			f(k, w)
		}
	}
	f(0, w)
	wg.Wait()
}

// semijoinPar is semijoin with a sharded index build and chunked probing.
func semijoinPar(a, b Rel, par int) Rel {
	ac, bc := commonCols(a, b)
	if len(ac) == 0 {
		// No shared variables: a survives iff b is nonempty.
		if b.R.Len() == 0 {
			return Rel{Schema: a.Schema, R: database.NewRelation(a.R.Name, a.R.Arity)}
		}
		return a
	}
	return Rel{Schema: a.Schema, R: database.ParSemijoin(a.R, ac, b.R, bc, par)}
}

// reduceUp runs the bottom-up semijoin pass over subtree i: sibling
// subtrees first (concurrently), then node i is filtered by each child.
// If any relation is already empty the join is empty and remaining subtrees
// are skipped — the parallel analogue of Decide's early exit.
func (e *parEngine) reduceUp(t *Tree, i, w int) {
	if e.dead.Load() {
		return
	}
	kids := t.children[i]
	e.forEach(len(kids), w, func(k, w int) { e.reduceUp(t, kids[k], w) })
	if e.dead.Load() {
		return
	}
	span := e.c.StartSpan("semijoin-reduce", w)
	for _, ch := range kids {
		t.Rels[i] = semijoinPar(t.Rels[i], t.Rels[ch], e.par)
		e.c.Tick(int64(t.Rels[i].R.Len()) + 1)
	}
	span.End()
	if t.Rels[i].R.Len() == 0 {
		e.dead.Store(true)
	}
}

// reduceDown runs the top-down pass under node i: each child is filtered by
// its parent and then recursively processed; the children are independent
// and run concurrently.
func (e *parEngine) reduceDown(t *Tree, i, w int) {
	kids := t.children[i]
	e.forEach(len(kids), w, func(k, w int) {
		ch := kids[k]
		span := e.c.StartSpan("semijoin-reduce", w)
		t.Rels[ch] = semijoinPar(t.Rels[ch], t.Rels[i], e.par)
		e.c.Tick(int64(t.Rels[ch].R.Len()) + 1)
		span.End()
		e.reduceDown(t, ch, w)
	})
}

// ParFullReduce is FullReduce with the semijoin passes parallelized over
// independent sibling subtrees and sharded hash-index builds, using up to
// par workers (par < 1 means GOMAXPROCS). The reduced relations, their
// tuple order, and the counted steps on a nonempty join are identical to
// the sequential FullReduceCounted.
func (t *Tree) ParFullReduce(par int, c *delay.Counter) bool {
	if t.HeadIdx >= 0 {
		panic("cq: ParFullReduce on a head-extended tree")
	}
	e := newParEngine(par, c)
	e.reduceUp(t, t.JT.Root(), 0)
	if e.dead.Load() {
		return false
	}
	e.reduceDown(t, t.JT.Root(), 0)
	for _, r := range t.Rels {
		if r.R.Len() == 0 {
			return false
		}
	}
	return true
}

// ParDecide is Decide (Theorem 4.2 for sentences) with the bottom-up pass
// parallelized over sibling subtrees; par < 1 means GOMAXPROCS.
func ParDecide(db *database.Database, q *logic.CQ, par int, c *delay.Counter) (bool, error) {
	bm := c.StartSpan("tree-build", -1)
	t, err := buildTree(db, q, false, par)
	bm.End()
	if err != nil {
		return false, err
	}
	e := newParEngine(par, c)
	e.reduceUp(t, t.JT.Root(), 0)
	return !e.dead.Load(), nil
}

// evalUp runs Eval's bottom-up join pass over subtree i, sibling subtrees
// concurrently. acc[i] is written only by the task owning subtree i and
// read only by its parent, after the subtree task completed.
func (e *parEngine) evalUp(t *Tree, i, w int, head map[string]bool, acc []Rel) {
	kids := t.children[i]
	e.forEach(len(kids), w, func(k, w int) { e.evalUp(t, kids[k], w, head, acc) })
	span := e.c.StartSpan("join", w)
	acc[i] = t.evalNode(i, head, acc, e.c)
	span.End()
}

// ParEval is Eval (the Yannakakis algorithm, Theorem 4.2) with the full
// reducer and the join pass parallelized over independent sibling subtrees
// of the join tree, using up to par workers (par < 1 means GOMAXPROCS).
// The answer sequence is identical to Eval's, and the counted steps equal
// the sequential engine's on nonempty joins: parallelism changes wall
// time, not counted work.
func ParEval(db *database.Database, q *logic.CQ, par int, c *delay.Counter) ([]database.Tuple, error) {
	bm := c.StartSpan("tree-build", -1)
	t, err := buildTree(db, q, false, par)
	bm.End()
	if err != nil {
		return nil, err
	}
	if !t.ParFullReduce(par, c) {
		return nil, nil
	}
	e := newParEngine(par, c)
	head := headSet(q)
	acc := make([]Rel, len(t.Rels))
	e.evalUp(t, t.JT.Root(), 0, head, acc)
	root := acc[t.JT.Root()]
	out := project(root, q.Head)
	out.R.Dedup()
	c.Tick(int64(out.R.Len()) + 1)
	return out.R.Tuples, nil
}
