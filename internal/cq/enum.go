package cq

import (
	"fmt"
	"sort"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/hypergraph"
	"repro/internal/logic"
)

// EnumerateConstantDelay enumerates φ(D) for a free-connex acyclic
// conjunctive query with constant delay after linear-time preprocessing
// (Theorem 4.6). The preprocessing follows the construction illustrated by
// Figure 1 of the paper:
//
//  1. build a join tree T' of the hypergraph extended with the head edge
//     (Definition 4.4), rooted at the head;
//  2. in a bottom-up pass, semijoin-filter each atom with its children and
//     project away the existentially quantified variables that are not
//     shared with the parent (the "S ← ..., S′ ← ..., R ← ..." steps of the
//     paper's example) — free-connexity guarantees that every free variable
//     occurring in a subtree already occurs in the subtree's root, so these
//     projections lose no answers;
//  3. the children of the head now carry relations over free variables
//     only, whose schemas form an acyclic hypergraph; full-reduce them along
//     a join tree and enumerate the resulting full join by a cursor
//     odometer, each move being one hash-index lookup.
//
// The per-output delay is O(‖φ‖) index operations, independent of ‖D‖.
func EnumerateConstantDelay(db *database.Database, q *logic.CQ, c *delay.Counter) (delay.Enumerator, error) {
	core, err := PrepareConstantDelay(db, q, c)
	if err != nil {
		return nil, err
	}
	return core.Cursor(c), nil
}

// PrepareConstantDelay runs the full Theorem 4.6 preprocessing — the
// head-extended join tree, the bottom-up elimination pass, and the full
// reduction plus index builds over the resulting free parts — and returns
// the reusable OdometerCore. One core supports any number of enumeration
// passes via Cursor; the plan cache builds it once per (query, database)
// pair.
func PrepareConstantDelay(db *database.Database, q *logic.CQ, c *delay.Counter) (*OdometerCore, error) {
	parts, err := BuildFreeParts(db, q, c)
	if err != nil {
		return nil, err
	}
	return NewOdometerCore(q.Head, parts, c)
}

// BuildFreeParts runs the preprocessing of Theorem 4.6 (steps 1 and 2 of
// the construction described on EnumerateConstantDelay) and returns the
// head node's children relations, whose schemas consist of free variables
// only and form an acyclic hypergraph. φ(D) is exactly their join.
func BuildFreeParts(db *database.Database, q *logic.CQ, c *delay.Counter) ([]Rel, error) {
	bm := c.StartSpan("tree-build", -1)
	t, err := BuildTree(db, q, true)
	bm.End()
	if err != nil {
		return nil, err
	}
	span := c.StartSpan("semijoin-reduce", -1)
	defer span.End()
	// Bottom-up elimination pass (step 2).
	b := make([]Rel, len(t.Rels))
	for _, i := range t.postord {
		if i == t.HeadIdx {
			continue
		}
		r := t.Rels[i]
		for _, ch := range t.children[i] {
			r = semijoin(r, b[ch])
			c.Tick(int64(r.R.Len()) + 1)
		}
		// Keep the variables that are free or shared with the parent.
		keep := make(map[string]bool)
		p := t.JT.Parent[i]
		var pe hypergraph.Edge
		if p >= 0 {
			pe = t.JT.Nodes[p]
		}
		freeSet := headSet(q)
		for _, v := range r.Schema {
			if freeSet[v] || (p >= 0 && pe.Has(v)) {
				keep[v] = true
			}
		}
		r = project(r, sortedVars(keep))
		r.R.Dedup()
		c.Tick(int64(r.R.Len()) + 1)
		b[i] = r
	}
	// Step 3: the head's children hold relations over free variables only.
	var parts []Rel
	for _, ch := range t.children[t.HeadIdx] {
		parts = append(parts, b[ch])
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("cq: internal: head node has no children for %s", q.Name)
	}
	return parts, nil
}

func headSet(q *logic.CQ) map[string]bool {
	s := make(map[string]bool, len(q.Head))
	for _, v := range q.Head {
		s[v] = true
	}
	return s
}

// Odometer enumerates a full acyclic join of relations over free variables
// with constant delay after full reduction. It additionally exposes, after
// each Next, the tuple currently selected in each input part — used by the
// ineq package to attach witness checks to each output (Theorem 4.20).
type Odometer struct {
	o *odometer
}

// Next produces the next answer with constant delay.
func (od *Odometer) Next() (database.Tuple, bool) { return od.o.Next() }

// PartTuple returns the tuple currently selected in input part i. Only
// valid after a successful Next.
func (od *Odometer) PartTuple(i int) database.Tuple {
	j := od.o.core.origPos[i]
	return od.o.row(j, od.o.cursors[j])
}

// OdometerCore is the immutable, execution-independent half of the
// constant-delay enumerator: the full-reduced parts laid out in join-tree
// preorder together with their probe indexes, columnar slabs, and the root
// bucket. Building it is the data-dependent preprocessing of Theorem 4.6;
// enumeration state lives in the cursors handed out by Cursor, so one core
// built once per (query, database) pair serves any number of enumeration
// passes without repeating reduction or index builds.
type OdometerCore struct {
	order []int // node visit order (preorder of the join tree of parts)
	rels  []Rel // aligned with order
	// For position j > 0: bucket lookup of rels[j] keyed on the columns
	// shared with the tree parent, probed with the parent's current tuple.
	parentPos []int // position in order of the tree parent (or -1 for 0)
	probes    [][2][]int
	idx       []*database.Index
	slabs     []database.Slab // row storage per position
	root      []int32         // full bucket of the root position (all row ids)
	outPos    [][2]int        // for each output variable: (position, column)
	origPos   []int           // origPos[i] = position in the visit order of input part i
	nout      int             // output arity
	dead      bool            // some part is empty: the join is empty
}

// NonEmpty reports whether the underlying join has at least one answer.
// After full reduction this is a constant-time check, so a bound plan
// answers the decision problem without any further work.
func (oc *OdometerCore) NonEmpty() bool { return !oc.dead && len(oc.root) > 0 }

// IndexWaste totals the abandoned row slots across the spine's probe
// indexes — the layout degradation accumulated by incremental refreshes
// (ConstRefresher patches the indexes in place).
func (oc *OdometerCore) IndexWaste() int {
	w := 0
	for _, ix := range oc.idx {
		if ix != nil {
			w += ix.Waste()
		}
	}
	return w
}

// CompactIndexes rebuilds the row layout of every spine index whose waste
// is at least minWaste slots, returning the total number of slots
// reclaimed. Row ids are unchanged, so refresher bookkeeping keyed on slab
// rows stays valid; compaction is safe concurrently with enumeration
// (database.Index.Compact swaps the layout atomically) but must be
// serialized with Refresh like any other spine patching.
func (oc *OdometerCore) CompactIndexes(minWaste int) int {
	total := 0
	for _, ix := range oc.idx {
		if ix != nil && ix.Waste() >= minWaste {
			total += ix.Compact()
		}
	}
	return total
}

// Cursor starts a fresh enumeration pass over the core. Cursors are
// independent: each holds its own positions, buckets, and output buffer,
// ticking c only for the constant-delay cursor moves (never for the
// preprocessing already captured in the core).
func (oc *OdometerCore) Cursor(c *delay.Counter) *Odometer {
	o := &odometer{
		core:    oc,
		c:       c,
		cursors: make([]int, len(oc.order)),
		buckets: make([][]int32, len(oc.order)),
		out:     make(database.Tuple, oc.nout),
		dead:    oc.dead,
	}
	if len(oc.order) > 0 {
		o.buckets[0] = oc.root
	}
	return &Odometer{o: o}
}

// odometer is one enumeration pass: the mutable cursor state over an
// OdometerCore. Buckets hold row ids into each part's columnar slab, so a
// cursor move is pure integer arithmetic and a bucket switch is one
// allocation-free fingerprint lookup.
type odometer struct {
	core    *OdometerCore
	c       *delay.Counter
	cursors []int
	buckets [][]int32 // row ids into core.slabs[j]
	out     database.Tuple
	started bool
	dead    bool
}

// row resolves the cursor-cur tuple of position j as a slab view.
func (o *odometer) row(j, cur int) database.Tuple {
	return o.core.slabs[j].Row(o.buckets[j][cur])
}

// NewOdometer builds the constant-delay enumerator for the full join of
// parts (schemas forming an acyclic hypergraph), with output columns
// ordered as head. The parts are full-reduced in place.
func NewOdometer(head []string, parts []Rel, c *delay.Counter) (*Odometer, error) {
	core, err := NewOdometerCore(head, parts, c)
	if err != nil {
		return nil, err
	}
	return core.Cursor(c), nil
}

// NewOdometerCore full-reduces parts along a join tree of their schemas,
// builds the probe indexes, and returns the reusable core (see
// OdometerCore). The parts are full-reduced in place.
func NewOdometerCore(head []string, parts []Rel, c *delay.Counter) (*OdometerCore, error) {
	span := c.StartSpan("semijoin-reduce", -1)
	defer span.End()
	// Join tree of the part schemas.
	h := hypergraph.New()
	for i, p := range parts {
		h.AddEdge(hypergraph.NewEdge(fmt.Sprintf("V%d", i), p.Schema...))
	}
	jt, ok := hypergraph.GYO(h)
	if !ok {
		return nil, fmt.Errorf("cq: internal: head-part schemas not acyclic")
	}
	// Full-reduce parts along jt.
	ch := jt.Children()
	post := postorder(jt)
	for _, i := range post {
		for _, cc := range ch[i] {
			parts[i] = semijoin(parts[i], parts[cc])
			c.Tick(int64(parts[i].R.Len()) + 1)
		}
	}
	for k := len(post) - 1; k >= 0; k-- {
		i := post[k]
		for _, cc := range ch[i] {
			parts[cc] = semijoin(parts[cc], parts[i])
			c.Tick(int64(parts[cc].R.Len()) + 1)
		}
	}
	dead := false
	for _, p := range parts {
		if p.R.Len() == 0 {
			dead = true
		}
	}
	// Preorder.
	var order []int
	var pre func(i int)
	pre = func(i int) {
		order = append(order, i)
		for _, cc := range ch[i] {
			pre(cc)
		}
	}
	pre(jt.Root())

	oc := &OdometerCore{dead: dead, nout: len(head)}
	oc.order = order
	oc.rels = make([]Rel, len(order))
	oc.parentPos = make([]int, len(order))
	oc.probes = make([][2][]int, len(order))
	oc.idx = make([]*database.Index, len(order))
	oc.slabs = make([]database.Slab, len(order))
	posOf := make(map[int]int, len(order))
	for j, node := range order {
		posOf[node] = j
		oc.rels[j] = parts[node]
		oc.slabs[j] = parts[node].R.Slab()
		if j == 0 {
			oc.parentPos[j] = -1
			root := make([]int32, parts[node].R.Len())
			for i := range root {
				root[i] = int32(i)
			}
			oc.root = root
			continue
		}
		p := jt.Parent[node]
		pp := posOf[p]
		oc.parentPos[j] = pp
		var jc, pc []int
		for col, v := range parts[node].Schema {
			if k := oc.rels[pp].col(v); k >= 0 {
				jc = append(jc, col)
				pc = append(pc, k)
			}
		}
		oc.probes[j] = [2][]int{jc, pc}
		oc.idx[j] = parts[node].R.IndexOn(jc)
	}
	// Output mapping: first position whose schema holds each head variable.
	for _, v := range head {
		found := false
		for j := range order {
			if k := oc.rels[j].col(v); k >= 0 {
				oc.outPos = append(oc.outPos, [2]int{j, k})
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cq: head variable %q missing from join parts", v)
		}
	}
	oc.origPos = make([]int, len(parts))
	for i := range parts {
		oc.origPos[i] = posOf[i]
	}
	return oc, nil
}

// reinit repositions the cursor of position j at the first tuple of its
// bucket (recomputing the bucket from the parent's current tuple). After
// full reduction the bucket is never empty.
func (o *odometer) reinit(j int) {
	if j > 0 {
		pp := o.core.parentPos[j]
		pt := o.row(pp, o.cursors[pp])
		o.buckets[j] = o.core.idx[j].Lookup(pt, o.core.probes[j][1])
		o.c.Tick(1)
	}
	o.cursors[j] = 0
}

// Next produces the next answer. Each call performs O(number of parts)
// index operations: constant delay in data complexity.
func (o *odometer) Next() (database.Tuple, bool) {
	m := len(o.core.order)
	if o.dead {
		return nil, false
	}
	if !o.started {
		o.started = true
		if len(o.buckets[0]) == 0 {
			o.dead = true
			return nil, false
		}
		for j := 0; j < m; j++ {
			o.reinit(j)
		}
		return o.emit(), true
	}
	// Advance the odometer: find the deepest position that can move.
	j := m - 1
	for j >= 0 {
		o.c.Tick(1)
		o.cursors[j]++
		if o.cursors[j] < len(o.buckets[j]) {
			break
		}
		j--
	}
	if j < 0 {
		o.dead = true
		return nil, false
	}
	for k := j + 1; k < m; k++ {
		o.reinit(k)
	}
	return o.emit(), true
}

func (o *odometer) emit() database.Tuple {
	for i, pc := range o.core.outPos {
		o.out[i] = o.row(pc[0], o.cursors[pc[0]])[pc[1]]
		o.c.Tick(1)
	}
	return o.out
}

// EnumerateLinearDelay enumerates φ(D) for any acyclic conjunctive query
// with linear-time preprocessing and delay O(‖φ‖·‖D‖) between outputs —
// Algorithm 2 of the paper (Theorem 4.3). Head variables are bound one at a
// time; after each binding the restricted instance is Yannakakis-reduced, so
// every surviving candidate value extends to at least one answer and the
// enumeration never backtracks over dead ends.
func EnumerateLinearDelay(db *database.Database, q *logic.CQ, c *delay.Counter) (delay.Enumerator, error) {
	lp, err := PrepareLinearDelay(db, q, c)
	if err != nil {
		return nil, err
	}
	return lp.Enumerate(c), nil
}

// LinearPrep is the reusable preprocessing of the linear-delay enumerator:
// the join tree with its atom relations and their full-reduced copy. One
// prep serves any number of enumeration passes via Enumerate — each pass
// re-binds head variables and re-reduces restricted copies, but never
// repeats the tree build or the base reduction.
type LinearPrep struct {
	t       *Tree
	head    []string
	base    []Rel // full-reduced copy of the tree relations; nil if the join is empty
	boolean bool  // the query has no head: Enumerate yields ⊤ or ⊥
	boolOK  bool
}

// PrepareLinearDelay builds the join tree for an acyclic conjunctive query
// and full-reduces a copy of its relations (the linear preprocessing of
// Theorem 4.3). For Boolean queries it resolves the decision problem
// instead, so Enumerate is constant-time.
func PrepareLinearDelay(db *database.Database, q *logic.CQ, c *delay.Counter) (*LinearPrep, error) {
	bm := c.StartSpan("tree-build", -1)
	t, err := BuildTree(db, q, false)
	bm.End()
	if err != nil {
		return nil, err
	}
	lp := &LinearPrep{t: t, head: q.Head}
	if len(q.Head) == 0 {
		lp.boolean = true
		ok, err := Decide(db, q)
		if err != nil {
			return nil, err
		}
		lp.boolOK = ok
		return lp, nil
	}
	span := c.StartSpan("semijoin-reduce", -1)
	defer span.End()
	lp.base = reduceCopy(t, t.Rels, c)
	return lp, nil
}

// NonEmpty reports whether the query has at least one answer — constant
// time once prepared, since full reduction leaves the base empty exactly
// when the join is empty.
func (lp *LinearPrep) NonEmpty() bool {
	if lp.boolean {
		return lp.boolOK
	}
	return lp.base != nil
}

// Enumerate starts a fresh linear-delay enumeration pass over the prepared
// instance. The base relations are shared between passes and never
// mutated: each pass restricts and re-reduces its own copies.
func (lp *LinearPrep) Enumerate(c *delay.Counter) delay.Enumerator {
	if lp.boolean {
		if lp.boolOK {
			return delay.Singleton(database.Tuple{})
		}
		return delay.Empty()
	}
	e := &linEnum{t: lp.t, head: lp.head, c: c}
	if lp.base == nil {
		e.exhausted = true
	} else {
		e.push(lp.base)
	}
	return e
}

type linLevel struct {
	rels  []Rel // reduced relations with head[0..depth-1] already bound
	cands []database.Value
	idx   int
}

type linEnum struct {
	t         *Tree
	head      []string
	c         *delay.Counter
	levels    []*linLevel
	exhausted bool
}

// reduceCopy runs the full reducer over a copy of rels along t's join tree;
// it returns nil if the join is empty.
func reduceCopy(t *Tree, rels []Rel, c *delay.Counter) []Rel {
	out := make([]Rel, len(rels))
	copy(out, rels)
	for _, i := range t.postord {
		for _, ch := range t.children[i] {
			out[i] = semijoin(out[i], out[ch])
			c.Tick(int64(out[i].R.Len()) + 1)
		}
	}
	for k := len(t.postord) - 1; k >= 0; k-- {
		i := t.postord[k]
		for _, ch := range t.children[i] {
			out[ch] = semijoin(out[ch], out[i])
			c.Tick(int64(out[ch].R.Len()) + 1)
		}
	}
	for _, r := range out {
		if r.R.Len() == 0 {
			return nil
		}
	}
	return out
}

// push appends the level for the next head variable, computing its
// candidate values from any reduced relation containing it.
func (e *linEnum) push(rels []Rel) {
	v := e.head[len(e.levels)]
	lv := &linLevel{rels: rels, idx: -1}
	for _, r := range rels {
		col := r.col(v)
		if col < 0 {
			continue
		}
		seen := make(map[database.Value]bool, r.R.Len())
		for _, t := range r.R.Tuples {
			seen[t[col]] = true
			e.c.Tick(1)
		}
		lv.cands = make([]database.Value, 0, len(seen))
		for val := range seen {
			lv.cands = append(lv.cands, val)
		}
		sort.Slice(lv.cands, func(i, j int) bool { return lv.cands[i] < lv.cands[j] })
		break
	}
	e.levels = append(e.levels, lv)
}

// restrict returns copies of rels with every relation containing v filtered
// to tuples where v = val.
func restrict(rels []Rel, v string, val database.Value, c *delay.Counter) []Rel {
	out := make([]Rel, len(rels))
	for i, r := range rels {
		col := r.col(v)
		if col < 0 {
			out[i] = r
			continue
		}
		c.Tick(int64(r.R.Len()))
		out[i] = Rel{Schema: r.Schema, R: r.R.Select(r.R.Name, func(t database.Tuple) bool {
			return t[col] == val
		})}
	}
	return out
}

func (e *linEnum) Next() (database.Tuple, bool) {
	if e.exhausted {
		return nil, false
	}
	for {
		i := len(e.levels) - 1
		if i < 0 {
			e.exhausted = true
			return nil, false
		}
		lv := e.levels[i]
		lv.idx++
		if lv.idx >= len(lv.cands) {
			e.levels = e.levels[:i]
			continue
		}
		val := lv.cands[lv.idx]
		if i == len(e.head)-1 {
			out := make(database.Tuple, len(e.head))
			for k, l := range e.levels {
				out[k] = l.cands[l.idx]
			}
			return out, true
		}
		// Bind head[i] := val, reduce, descend. Reduction cannot fail:
		// every candidate survives by full reduction of the parent level.
		next := reduceCopy(e.t, restrict(lv.rels, e.head[i], val, e.c), e.c)
		if next == nil {
			// Defensive: should not happen after full reduction.
			continue
		}
		e.push(next)
	}
}
