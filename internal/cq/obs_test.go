package cq

import (
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/qgen"
)

// obsSeeds returns a slice of the differential sweep: the observability
// contracts below re-run whole engine pipelines per seed with a sink
// attached, so a subset keeps the suite fast while still crossing many
// query shapes (acyclic/cyclic, free-connex or not, empty results).
func obsSeeds() []int64 {
	all := diffSeeds()
	if len(all) > 60 {
		all = all[:60]
	}
	return all
}

// TestStepIdentityWithObserver pins the tentpole contract: attaching an
// observability sink must not change a single counted RAM step, on any
// engine, on any instance.
func TestStepIdentityWithObserver(t *testing.T) {
	engines := []struct {
		name string
		run  func(db *database.Database, q *logic.CQ, c *delay.Counter) error
	}{
		{"EvalCounted", func(db *database.Database, q *logic.CQ, c *delay.Counter) error {
			_, err := EvalCounted(db, q, c)
			return err
		}},
		{"DecideCounted", func(db *database.Database, q *logic.CQ, c *delay.Counter) error {
			_, err := DecideCounted(db, q, c)
			return err
		}},
		// ParEval is covered separately below: on empty joins its reducer's
		// early-exit makes the amount of skipped work timing-dependent, so
		// step identity is only contractual on nonempty results.
		{"EnumerateConstantDelay", func(db *database.Database, q *logic.CQ, c *delay.Counter) error {
			e, err := EnumerateConstantDelay(db, q, c)
			if err != nil {
				return err
			}
			_, _ = delay.Measure(c, func() delay.Enumerator { return e })
			return nil
		}},
		{"EnumerateLinearDelay", func(db *database.Database, q *logic.CQ, c *delay.Counter) error {
			e, err := EnumerateLinearDelay(db, q, c)
			if err != nil {
				return err
			}
			_, _ = delay.Measure(c, func() delay.Enumerator { return e })
			return nil
		}},
	}
	for _, seed := range obsSeeds() {
		q, db := qgen.Instance(seed)
		for _, en := range engines {
			bare := &delay.Counter{}
			errBare := en.run(db, q, bare)

			observed := &delay.Counter{}
			observed.SetSink(obs.New())
			errObs := en.run(db, q, observed)

			if (errBare == nil) != (errObs == nil) {
				failInstance(t, seed, q, db, "%s: error changed with observer: %v vs %v", en.name, errBare, errObs)
			}
			if bare.Steps() != observed.Steps() {
				failInstance(t, seed, q, db, "%s: steps %d without observer != %d with observer",
					en.name, bare.Steps(), observed.Steps())
			}
		}

		// ParEval: step identity with/without observer, on nonempty results.
		bare := &delay.Counter{}
		ans, errBare := ParEval(db, q, 4, bare)
		observed := &delay.Counter{}
		observed.SetSink(obs.New())
		ansObs, errObs := ParEval(db, q, 4, observed)
		if (errBare == nil) != (errObs == nil) {
			failInstance(t, seed, q, db, "ParEval: error changed with observer: %v vs %v", errBare, errObs)
		}
		if errBare == nil && len(ans) > 0 {
			if len(ansObs) != len(ans) {
				failInstance(t, seed, q, db, "ParEval: answer count changed with observer: %d vs %d", len(ans), len(ansObs))
			}
			if bare.Steps() != observed.Steps() {
				failInstance(t, seed, q, db, "ParEval: steps %d without observer != %d with observer",
					bare.Steps(), observed.Steps())
			}
		}
	}
}

// TestParEvalObserverDeterminism: under the race detector, ParEval with an
// attached observer must be race-free, and the parts of the trace that the
// paper's bounds speak about — the counted steps, delay histograms, and the
// per-phase span counts — must be identical run to run on instances with a
// nonempty result. (Per-span step deltas are NOT deterministic in a
// parallel engine: concurrent workers tick the shared counter, and Span
// documents that. And when the join is empty, the reducer's early-exit flag
// races benignly with sibling subtrees, so skipped work varies — the same
// carve-out TestDifferentialStepCounts makes.)
func TestParEvalObserverDeterminism(t *testing.T) {
	for _, seed := range obsSeeds()[:20] {
		q, db := qgen.Instance(seed)
		type shape struct {
			answers     int
			steps       int64
			delayCount  int64
			delaySum    int64
			delayMax    int64
			phaseCounts map[string]int
		}
		run := func() (shape, error) {
			o := obs.New()
			c := &delay.Counter{}
			c.SetSink(o)
			ans, err := ParEval(db, q, 4, c)
			if err != nil {
				return shape{}, err
			}
			s := shape{
				answers:     len(ans),
				steps:       c.Steps(),
				delayCount:  o.DelaySteps.Count(),
				delaySum:    o.DelaySteps.Sum(),
				delayMax:    o.DelaySteps.Max(),
				phaseCounts: map[string]int{},
			}
			for _, sp := range o.Spans() {
				s.phaseCounts[sp.Phase]++
			}
			return s, nil
		}
		first, err := run()
		if err != nil {
			failInstance(t, seed, q, db, "ParEval: %v", err)
		}
		for rep := 0; rep < 3; rep++ {
			again, err := run()
			if err != nil {
				failInstance(t, seed, q, db, "ParEval rep %d: %v", rep, err)
			}
			if again.answers != first.answers {
				failInstance(t, seed, q, db, "answer count drifted: %d vs %d", first.answers, again.answers)
			}
			if first.answers == 0 {
				continue // empty join: early-exit makes skipped work timing-dependent
			}
			if again.steps != first.steps {
				failInstance(t, seed, q, db, "steps drifted across runs: %d vs %d", first.steps, again.steps)
			}
			if again.delayCount != first.delayCount || again.delaySum != first.delaySum || again.delayMax != first.delayMax {
				failInstance(t, seed, q, db, "delay histogram drifted: {n=%d sum=%d max=%d} vs {n=%d sum=%d max=%d}",
					first.delayCount, first.delaySum, first.delayMax,
					again.delayCount, again.delaySum, again.delayMax)
			}
			for ph, n := range first.phaseCounts {
				if again.phaseCounts[ph] != n {
					failInstance(t, seed, q, db, "phase %q span count drifted: %d vs %d", ph, n, again.phaseCounts[ph])
				}
			}
		}
	}
}
