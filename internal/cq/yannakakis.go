package cq

import (
	"fmt"

	"repro/internal/database"
	"repro/internal/hypergraph"
	"repro/internal/logic"
)

// Tree is a join tree of an acyclic conjunctive query with the atom
// relations attached to its nodes. If the tree was built for the
// free-connex construction, node HeadIdx is the synthetic head edge and
// carries no relation.
type Tree struct {
	Q       *logic.CQ
	JT      *hypergraph.JoinTree
	Rels    []Rel // aligned with JT.Nodes; Rels[HeadIdx].R == nil
	HeadIdx int   // index of the synthetic head node, or -1

	children [][]int
	postord  []int
}

// BuildTree constructs a join tree for q over db. With withHead set, the
// synthetic head edge {free(q)} is added (Definition 4.4) and the tree is
// rooted at it; q must then be free-connex.
func BuildTree(db *database.Database, q *logic.CQ, withHead bool) (*Tree, error) {
	if err := checkPlainACQ(q); err != nil {
		return nil, err
	}
	h := q.Hypergraph()
	headIdx := -1
	if withHead {
		headIdx = len(h.Edges)
		h.AddEdge(hypergraph.NewEdge("__head__", q.Head...))
	}
	jt, ok := hypergraph.GYO(h)
	if !ok {
		if withHead {
			return nil, fmt.Errorf("cq: query %s is not free-connex", q.Name)
		}
		return nil, fmt.Errorf("cq: query %s is not acyclic", q.Name)
	}
	if withHead {
		jt.Reroot(headIdx)
	}
	t := &Tree{Q: q, JT: jt, HeadIdx: headIdx}
	t.Rels = make([]Rel, len(jt.Nodes))
	for i := range jt.Nodes {
		if i == headIdx {
			continue
		}
		r, err := AtomRelation(db, q.Atoms[i])
		if err != nil {
			return nil, err
		}
		t.Rels[i] = r
	}
	t.children = jt.Children()
	t.postord = postorder(jt)
	return t, nil
}

// postorder returns the node indices so that children precede parents.
func postorder(jt *hypergraph.JoinTree) []int {
	ch := jt.Children()
	var out []int
	var rec func(i int)
	rec = func(i int) {
		for _, c := range ch[i] {
			rec(c)
		}
		out = append(out, i)
	}
	if r := jt.Root(); r >= 0 {
		rec(r)
	}
	return out
}

// FullReduce runs the Yannakakis full reducer: a bottom-up semijoin pass
// followed by a top-down pass. Afterwards every tuple of every relation
// participates in at least one solution of the full join. It reports
// whether the join is nonempty.
func (t *Tree) FullReduce() bool {
	if t.HeadIdx >= 0 {
		panic("cq: FullReduce on a head-extended tree")
	}
	// Bottom-up.
	for _, i := range t.postord {
		for _, c := range t.children[i] {
			t.Rels[i] = semijoin(t.Rels[i], t.Rels[c])
		}
	}
	// Top-down.
	for k := len(t.postord) - 1; k >= 0; k-- {
		i := t.postord[k]
		for _, c := range t.children[i] {
			t.Rels[c] = semijoin(t.Rels[c], t.Rels[i])
		}
	}
	for _, r := range t.Rels {
		if r.R.Len() == 0 {
			return false
		}
	}
	return true
}

// Decide answers the Boolean query problem for an acyclic conjunctive query
// via the bottom-up semijoin pass (Theorem 4.2 specialized to sentences):
// time O(‖φ‖·‖D‖) up to hashing.
func Decide(db *database.Database, q *logic.CQ) (bool, error) {
	t, err := BuildTree(db, q, false)
	if err != nil {
		return false, err
	}
	for _, i := range t.postord {
		for _, c := range t.children[i] {
			t.Rels[i] = semijoin(t.Rels[i], t.Rels[c])
		}
		if t.Rels[i].R.Len() == 0 {
			return false, nil
		}
	}
	return true, nil
}

// Eval computes φ(D) for an acyclic conjunctive query with the Yannakakis
// algorithm (Theorem 4.2): full reduction, then a bottom-up join pass that
// projects each intermediate result onto the variables still needed (head
// variables of the subtree plus the separator towards the parent), keeping
// intermediate results within O(‖φ(D)‖·‖D‖). Answers are in head order,
// deduplicated and sorted.
func Eval(db *database.Database, q *logic.CQ) ([]database.Tuple, error) {
	t, err := BuildTree(db, q, false)
	if err != nil {
		return nil, err
	}
	if !t.FullReduce() {
		return nil, nil
	}
	head := make(map[string]bool, len(q.Head))
	for _, v := range q.Head {
		head[v] = true
	}
	// acc[i] = join of subtree(i) projected onto subtree head vars ∪ sep to
	// parent.
	acc := make([]Rel, len(t.Rels))
	for _, i := range t.postord {
		a := t.Rels[i]
		for _, c := range t.children[i] {
			a = join(a.R.Name, a, acc[c])
		}
		// Keep: head vars present in a's schema, plus vars shared with the
		// parent node.
		keep := make(map[string]bool)
		for _, v := range a.Schema {
			if head[v] {
				keep[v] = true
			}
		}
		if p := t.JT.Parent[i]; p >= 0 {
			pe := t.JT.Nodes[p]
			for _, v := range a.Schema {
				if pe.Has(v) {
					keep[v] = true
				}
			}
		}
		a = project(a, sortedVars(keep))
		a.R.Dedup()
		acc[i] = a
	}
	root := acc[t.JT.Root()]
	out := project(root, q.Head)
	out.R.Dedup()
	return out.R.Tuples, nil
}
