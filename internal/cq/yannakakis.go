package cq

import (
	"fmt"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/hypergraph"
	"repro/internal/logic"
)

// Tree is a join tree of an acyclic conjunctive query with the atom
// relations attached to its nodes. If the tree was built for the
// free-connex construction, node HeadIdx is the synthetic head edge and
// carries no relation.
type Tree struct {
	Q       *logic.CQ
	JT      *hypergraph.JoinTree
	Rels    []Rel // aligned with JT.Nodes; Rels[HeadIdx].R == nil
	HeadIdx int   // index of the synthetic head node, or -1

	children [][]int
	postord  []int
}

// BuildTree constructs a join tree for q over db. With withHead set, the
// synthetic head edge {free(q)} is added (Definition 4.4) and the tree is
// rooted at it; q must then be free-connex.
func BuildTree(db *database.Database, q *logic.CQ, withHead bool) (*Tree, error) {
	return buildTree(db, q, withHead, 1)
}

// buildTree is BuildTree with the per-atom relation construction (select,
// project, dedup — the linear preprocessing scan over each base relation)
// fanned out over par workers. The atoms are independent of one another, so
// the resulting tree is identical for every par.
func buildTree(db *database.Database, q *logic.CQ, withHead bool, par int) (*Tree, error) {
	if err := checkPlainACQ(q); err != nil {
		return nil, err
	}
	h := q.Hypergraph()
	headIdx := -1
	if withHead {
		headIdx = len(h.Edges)
		h.AddEdge(hypergraph.NewEdge("__head__", q.Head...))
	}
	jt, ok := hypergraph.GYO(h)
	if !ok {
		if withHead {
			return nil, fmt.Errorf("cq: query %s is not free-connex", q.Name)
		}
		return nil, fmt.Errorf("cq: query %s is not acyclic", q.Name)
	}
	if withHead {
		jt.Reroot(headIdx)
	}
	t := &Tree{Q: q, JT: jt, HeadIdx: headIdx}
	t.Rels = make([]Rel, len(jt.Nodes))
	errs := make([]error, len(jt.Nodes))
	e := newParEngine(par, nil)
	e.forEach(len(jt.Nodes), 0, func(i, _ int) {
		if i == headIdx {
			return
		}
		r, err := AtomRelation(db, q.Atoms[i])
		if err != nil {
			errs[i] = err
			return
		}
		t.Rels[i] = r
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	t.children = jt.Children()
	t.postord = postorder(jt)
	return t, nil
}

// postorder returns the node indices so that children precede parents.
func postorder(jt *hypergraph.JoinTree) []int {
	ch := jt.Children()
	var out []int
	var rec func(i int)
	rec = func(i int) {
		for _, c := range ch[i] {
			rec(c)
		}
		out = append(out, i)
	}
	if r := jt.Root(); r >= 0 {
		rec(r)
	}
	return out
}

// FullReduce runs the Yannakakis full reducer: a bottom-up semijoin pass
// followed by a top-down pass. Afterwards every tuple of every relation
// participates in at least one solution of the full join. It reports
// whether the join is nonempty.
func (t *Tree) FullReduce() bool { return t.FullReduceCounted(nil) }

// FullReduceCounted is FullReduce ticking c once per semijoin result tuple,
// so the reducer's O(‖φ‖·‖D‖) work is observable as counted steps. The
// tick placement mirrors ParFullReduce exactly: sequential and parallel
// runs of the reducer record the same total on a nonempty join.
func (t *Tree) FullReduceCounted(c *delay.Counter) bool {
	if t.HeadIdx >= 0 {
		panic("cq: FullReduce on a head-extended tree")
	}
	span := c.StartSpan("semijoin-reduce", -1)
	defer span.End()
	// Bottom-up.
	for _, i := range t.postord {
		for _, ch := range t.children[i] {
			t.Rels[i] = semijoin(t.Rels[i], t.Rels[ch])
			c.Tick(int64(t.Rels[i].R.Len()) + 1)
		}
	}
	// Top-down.
	for k := len(t.postord) - 1; k >= 0; k-- {
		i := t.postord[k]
		for _, ch := range t.children[i] {
			t.Rels[ch] = semijoin(t.Rels[ch], t.Rels[i])
			c.Tick(int64(t.Rels[ch].R.Len()) + 1)
		}
	}
	for _, r := range t.Rels {
		if r.R.Len() == 0 {
			return false
		}
	}
	return true
}

// Decide answers the Boolean query problem for an acyclic conjunctive query
// via the bottom-up semijoin pass (Theorem 4.2 specialized to sentences):
// time O(‖φ‖·‖D‖) up to hashing.
func Decide(db *database.Database, q *logic.CQ) (bool, error) {
	return DecideCounted(db, q, nil)
}

// DecideCounted is Decide with step counting (see FullReduceCounted).
func DecideCounted(db *database.Database, q *logic.CQ, c *delay.Counter) (bool, error) {
	bm := c.StartSpan("tree-build", -1)
	t, err := BuildTree(db, q, false)
	bm.End()
	if err != nil {
		return false, err
	}
	span := c.StartSpan("semijoin-reduce", -1)
	defer span.End()
	for _, i := range t.postord {
		for _, ch := range t.children[i] {
			t.Rels[i] = semijoin(t.Rels[i], t.Rels[ch])
			c.Tick(int64(t.Rels[i].R.Len()) + 1)
		}
		if t.Rels[i].R.Len() == 0 {
			return false, nil
		}
	}
	return true, nil
}

// Eval computes φ(D) for an acyclic conjunctive query with the Yannakakis
// algorithm (Theorem 4.2): full reduction, then a bottom-up join pass that
// projects each intermediate result onto the variables still needed (head
// variables of the subtree plus the separator towards the parent), keeping
// intermediate results within O(‖φ(D)‖·‖D‖). Answers are in head order,
// deduplicated and sorted.
func Eval(db *database.Database, q *logic.CQ) ([]database.Tuple, error) {
	return EvalCounted(db, q, nil)
}

// EvalCounted is Eval with step counting: one tick per tuple of every
// intermediate semijoin, join, and projection result. ParEval ticks at the
// same points, so counted steps compare the total work of the two engines
// independently of scheduling.
func EvalCounted(db *database.Database, q *logic.CQ, c *delay.Counter) ([]database.Tuple, error) {
	bm := c.StartSpan("tree-build", -1)
	t, err := BuildTree(db, q, false)
	bm.End()
	if err != nil {
		return nil, err
	}
	if !t.FullReduceCounted(c) {
		return nil, nil
	}
	span := c.StartSpan("join", -1)
	defer span.End()
	head := headSet(q)
	// acc[i] = join of subtree(i) projected onto subtree head vars ∪ sep to
	// parent.
	acc := make([]Rel, len(t.Rels))
	for _, i := range t.postord {
		acc[i] = t.evalNode(i, head, acc, c)
	}
	root := acc[t.JT.Root()]
	out := project(root, q.Head)
	out.R.Dedup()
	c.Tick(int64(out.R.Len()) + 1)
	return out.R.Tuples, nil
}

// evalNode computes acc[i] of the Eval join pass: the join of node i with
// its children's accumulators, projected onto the head variables present
// plus the separator towards the parent. It is shared by the sequential and
// parallel engines; for a fixed node it only reads acc entries of the
// node's children.
func (t *Tree) evalNode(i int, head map[string]bool, acc []Rel, c *delay.Counter) Rel {
	a := t.Rels[i]
	for _, ch := range t.children[i] {
		a = join(a.R.Name, a, acc[ch])
		c.Tick(int64(a.R.Len()) + 1)
	}
	// Keep: head vars present in a's schema, plus vars shared with the
	// parent node.
	keep := make(map[string]bool)
	for _, v := range a.Schema {
		if head[v] {
			keep[v] = true
		}
	}
	if p := t.JT.Parent[i]; p >= 0 {
		pe := t.JT.Nodes[p]
		for _, v := range a.Schema {
			if pe.Has(v) {
				keep[v] = true
			}
		}
	}
	a = project(a, sortedVars(keep))
	a.R.Dedup()
	c.Tick(int64(a.R.Len()) + 1)
	return a
}
