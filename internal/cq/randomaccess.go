package cq

import (
	"fmt"
	"math/big"
	"math/rand"
	"sort"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/hypergraph"
	"repro/internal/logic"
)

// RandomAccess gives O(‖φ‖·log‖D‖)-time access to the i-th answer of a
// free-connex acyclic conjunctive query, in a fixed (data-dependent)
// order, after the same linear preprocessing as constant-delay enumeration
// plus one counting pass — the "random access and random-order
// enumeration" extension of [23] mentioned in Section 4.3 of the paper.
//
// The structure: after the Theorem 4.6 preprocessing, φ(D) is the full
// join of free-variable relations arranged in a join tree. A bottom-up
// pass computes, for every tuple, the number of extensions in its subtree;
// answer i is then found by descending the tree, picking the child tuples
// by prefix-sum search (mixed-radix decomposition across sibling
// subtrees).
type RandomAccess struct {
	head  []string
	order []int // preorder of the join-tree nodes
	rels  []Rel // aligned with node ids
	tree  *hypergraph.JoinTree

	// Per node: tuple weights (number of subtree extensions) and, per
	// separator key, the bucket tuples with cumulative weights. Buckets are
	// fingerprint-keyed with exact collision resolution via the chain in
	// bucket.next, so probes never build string keys.
	weight    [][]*big.Int
	buckets   []map[uint64]*bucket
	childCols [][][]int // childCols[node][k]: parent columns forming the separator with child k
	rootB     *bucket

	outPos [][2]int // head variable -> (node, column)
	total  *big.Int
}

type bucket struct {
	key    database.Tuple // the separator projection all bucket tuples share
	next   *bucket        // fingerprint-collision chain (distinct key, same hash)
	tuples []database.Tuple
	weight []*big.Int // weight of each tuple
	cum    []*big.Int // cumulative weights (cum[i] = Σ_{j≤i} weight[j])
}

// findBucket walks the chain at t's fingerprint, comparing the actual
// separator values.
func findBucket(m map[uint64]*bucket, t database.Tuple, cols []int) *bucket {
	for b := m[t.KeyHash(cols)]; b != nil; b = b.next {
		match := true
		for i, c := range cols {
			if b.key[i] != t[c] {
				match = false
				break
			}
		}
		if match {
			return b
		}
	}
	return nil
}

// internBucket is findBucket with get-or-create semantics.
func internBucket(m map[uint64]*bucket, t database.Tuple, cols []int) *bucket {
	if b := findBucket(m, t, cols); b != nil {
		return b
	}
	key := make(database.Tuple, len(cols))
	for i, c := range cols {
		key[i] = t[c]
	}
	fp := t.KeyHash(cols)
	b := &bucket{key: key, next: m[fp]}
	m[fp] = b
	return b
}

func (b *bucket) totalWeight() *big.Int {
	if len(b.cum) == 0 {
		return new(big.Int)
	}
	return b.cum[len(b.cum)-1]
}

// find returns the index i with cum[i-1] ≤ x < cum[i] and the residue
// x − cum[i−1], by binary search.
func (b *bucket) find(x *big.Int) (int, *big.Int) {
	i := sort.Search(len(b.cum), func(i int) bool { return b.cum[i].Cmp(x) > 0 })
	res := new(big.Int).Set(x)
	if i > 0 {
		res.Sub(res, b.cum[i-1])
	}
	return i, res
}

// NewRandomAccess builds the access structure for a free-connex acyclic
// conjunctive query.
func NewRandomAccess(db *database.Database, q *logic.CQ) (*RandomAccess, error) {
	return NewRandomAccessCounted(db, q, nil)
}

// NewRandomAccessCounted is NewRandomAccess reporting phase spans through
// c's sink (the construction predates step counting, so the internal passes
// tick nothing; the spans carry wall time only).
func NewRandomAccessCounted(db *database.Database, q *logic.CQ, c *delay.Counter) (*RandomAccess, error) {
	parts, err := BuildFreeParts(db, q, c)
	if err != nil {
		return nil, err
	}
	// Join tree over the part schemas, plus full reduction.
	rspan := c.StartSpan("semijoin-reduce", -1)
	h := hypergraph.New()
	for i, p := range parts {
		h.AddEdge(hypergraph.NewEdge(fmt.Sprintf("V%d", i), p.Schema...))
	}
	jt, ok := hypergraph.GYO(h)
	if !ok {
		rspan.End()
		return nil, fmt.Errorf("cq: internal: free parts not acyclic")
	}
	ch := jt.Children()
	post := postorder(jt)
	for _, i := range post {
		for _, c := range ch[i] {
			parts[i] = semijoin(parts[i], parts[c])
		}
	}
	for k := len(post) - 1; k >= 0; k-- {
		i := post[k]
		for _, c := range ch[i] {
			parts[c] = semijoin(parts[c], parts[i])
		}
	}
	rspan.End()
	cspan := c.StartSpan("count", -1)
	defer cspan.End()
	ra := &RandomAccess{head: q.Head, rels: parts, tree: jt}
	ra.weight = make([][]*big.Int, len(parts))
	ra.buckets = make([]map[uint64]*bucket, len(parts))
	// Hoist the separator column lists: childCols[i][k] are the columns of
	// node i's tuples forming the separator with its k-th child, aligned
	// with that child's own sepCols grouping.
	ra.childCols = make([][][]int, len(parts))
	for i := range parts {
		ra.childCols[i] = make([][]int, len(ch[i]))
		for k, c := range ch[i] {
			var cols []int
			for _, v := range parts[c].Schema {
				if pc := parts[i].col(v); pc >= 0 {
					cols = append(cols, pc)
				}
			}
			ra.childCols[i][k] = cols
		}
	}

	// Bottom-up weights: weight(t) = Π over children of the total weight
	// of the child bucket matching t on the separator.
	for _, i := range post {
		rel := parts[i]
		ra.weight[i] = make([]*big.Int, rel.R.Len())
		for ti, t := range rel.R.Tuples {
			w := big.NewInt(1)
			for k, c := range ch[i] {
				b := ra.childBucket(i, k, c, t)
				if b == nil {
					w = new(big.Int)
					break
				}
				w.Mul(w, b.totalWeight())
			}
			ra.weight[i][ti] = w
		}
		// Group into buckets keyed on the separator towards the parent.
		sep := ra.sepCols(i, jt.Parent[i])
		ra.buckets[i] = map[uint64]*bucket{}
		for ti, t := range rel.R.Tuples {
			b := internBucket(ra.buckets[i], t, sep)
			b.tuples = append(b.tuples, t)
			b.weight = append(b.weight, ra.weight[i][ti])
			prev := new(big.Int)
			if len(b.cum) > 0 {
				prev = b.cum[len(b.cum)-1]
			}
			b.cum = append(b.cum, new(big.Int).Add(prev, ra.weight[i][ti]))
		}
	}
	root := jt.Root()
	ra.rootB = findBucket(ra.buckets[root], database.Tuple{}, nil)
	if ra.rootB == nil {
		ra.rootB = &bucket{}
	}
	ra.total = ra.rootB.totalWeight()

	// Preorder and output positions.
	var pre func(i int)
	pre = func(i int) {
		ra.order = append(ra.order, i)
		for _, c := range ch[i] {
			pre(c)
		}
	}
	pre(root)
	for _, v := range q.Head {
		found := false
		for _, i := range ra.order {
			if k := parts[i].col(v); k >= 0 {
				ra.outPos = append(ra.outPos, [2]int{i, k})
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cq: head variable %q missing from join parts", v)
		}
	}
	return ra, nil
}

// sepCols returns the columns of node i shared with node p (nil if p < 0:
// the root groups into a single bucket under the empty key).
func (ra *RandomAccess) sepCols(i, p int) []int {
	if p < 0 {
		return nil
	}
	var cols []int
	for col, v := range ra.rels[i].Schema {
		if ra.rels[p].col(v) >= 0 {
			cols = append(cols, col)
		}
	}
	return cols
}

// childBucket returns the bucket of child c (the k-th child of parent)
// matching parent tuple t on the precomputed separator columns.
func (ra *RandomAccess) childBucket(parent, k, c int, t database.Tuple) *bucket {
	return findBucket(ra.buckets[c], t, ra.childCols[parent][k])
}

// Count returns |φ(D)|, computed during construction — this doubles as a
// counting algorithm for free-connex queries.
func (ra *RandomAccess) Count() *big.Int { return new(big.Int).Set(ra.total) }

// Get returns the i-th answer (0-based) in the structure's fixed order.
// Each call costs O(‖φ‖·log‖D‖): one prefix-sum search per join-tree node.
func (ra *RandomAccess) Get(i *big.Int) (database.Tuple, error) {
	if i.Sign() < 0 || i.Cmp(ra.total) >= 0 {
		return nil, fmt.Errorf("cq: index %s out of range [0, %s)", i, ra.total)
	}
	chosen := make(map[int]database.Tuple, len(ra.order))
	ch := ra.tree.Children()
	var descend func(node int, b *bucket, idx *big.Int)
	descend = func(node int, b *bucket, idx *big.Int) {
		ti, res := b.find(idx)
		t := b.tuples[ti]
		chosen[node] = t
		// Mixed-radix decomposition of res across the children: child c1 is
		// the most significant digit.
		kids := ch[node]
		if len(kids) == 0 {
			return
		}
		// radix for child k = Π_{j>k} totalWeight(bucket_j)
		bks := make([]*bucket, len(kids))
		for k, c := range kids {
			bks[k] = ra.childBucket(node, k, c, t)
		}
		for k := range kids {
			radix := big.NewInt(1)
			for j := k + 1; j < len(kids); j++ {
				radix.Mul(radix, bks[j].totalWeight())
			}
			digit := new(big.Int)
			digit.DivMod(res, radix, res)
			descend(kids[k], bks[k], digit)
		}
	}
	descend(ra.tree.Root(), ra.rootB, new(big.Int).Set(i))
	out := make(database.Tuple, len(ra.head))
	for k, pc := range ra.outPos {
		out[k] = chosen[pc[0]][pc[1]]
	}
	return out, nil
}

// GetInt is Get with an int index.
func (ra *RandomAccess) GetInt(i int64) (database.Tuple, error) {
	return ra.Get(big.NewInt(i))
}

// RandomOrder returns an enumerator producing every answer exactly once in
// uniformly random order — the random-order enumeration of [23]. It
// requires the answer count to fit in memory as a permutation (≤ 1<<24).
func (ra *RandomAccess) RandomOrder(rng *rand.Rand) (delay.Enumerator, error) {
	if !ra.total.IsInt64() || ra.total.Int64() > 1<<24 {
		return nil, fmt.Errorf("cq: %s answers is too many for an in-memory permutation", ra.total)
	}
	n := ra.total.Int64()
	perm := rng.Perm(int(n))
	i := 0
	return delay.Func(func() (database.Tuple, bool) {
		if i >= len(perm) {
			return nil, false
		}
		t, err := ra.GetInt(int64(perm[i]))
		i++
		if err != nil {
			return nil, false
		}
		return t, true
	}), nil
}
