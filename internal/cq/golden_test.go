package cq

import (
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/logic/logictest"
)

// figure1Query is the running example of the paper's Figure 1: the acyclic,
// free-connex query φ(x1,x2,x3) over atoms R1(x1,x2), S1(x2,x3,y3),
// R2(x1,y1), T(y3,y4,y5), S2(x2,y2). (Atom occurrences are disambiguated
// with distinct predicate names so the golden node labels are stable.)
func figure1Instance() (*logic.CQ, *database.Database) {
	q := logictest.MustParseCQ("Q(x1,x2,x3) :- R1(x1,x2), S1(x2,x3,y3), R2(x1,y1), T(y3,y4,y5), S2(x2,y2).")
	db := database.NewDatabase()
	for _, a := range q.Atoms {
		db.AddRelation(database.NewRelation(a.Pred, len(a.Args)))
	}
	return q, db
}

// TestGoldenFigure1JoinTree pins the exact join tree BuildTree constructs
// for the Figure 1 query — the structure every Yannakakis pass in this
// package walks. The outline is deterministic (GYO ear removal with sorted
// tie-breaking), so any change to tree construction shows up as a diff
// here, not as a silent perf or correctness drift.
func TestGoldenFigure1JoinTree(t *testing.T) {
	q, db := figure1Instance()
	tr, err := BuildTree(db, q, false)
	if err != nil {
		t.Fatal(err)
	}
	const want = `S1#1{x2,x3,y3}
  R1#0{x1,x2}
    R2#2{x1,y1}
    S2#4{x2,y2}
  T#3{y3,y4,y5}
`
	if got := tr.JT.String(); got != want {
		t.Fatalf("Figure 1 join tree drifted:\ngot:\n%swant:\n%s", got, want)
	}
	if err := tr.JT.Validate(); err != nil {
		t.Fatalf("golden tree violates the running-intersection property: %v", err)
	}
	if tr.HeadIdx != -1 {
		t.Fatalf("plain tree has HeadIdx %d, want -1", tr.HeadIdx)
	}
	// Structural spot checks independent of the rendering: S1 is the root
	// and T hangs directly under it (they share y3).
	root := tr.JT.Root()
	if tr.JT.Nodes[root].Name != "S1#1" {
		t.Fatalf("root is %s, want S1#1", tr.JT.Nodes[root].Name)
	}
	for i, n := range tr.JT.Nodes {
		if n.Name == "T#3" && tr.JT.Parent[i] != root {
			t.Fatalf("T#3 parent is node %d, want root %d", tr.JT.Parent[i], root)
		}
	}
}

// TestGoldenFigure1ExtendedTree pins the free-connex extended tree
// (Definition 4.4): the synthetic head edge {x1,x2,x3} becomes the root and
// carries no relation; the atoms of the head-connected prefix hang directly
// below it.
func TestGoldenFigure1ExtendedTree(t *testing.T) {
	q, db := figure1Instance()
	tr, err := BuildTree(db, q, true)
	if err != nil {
		t.Fatal(err)
	}
	const want = `__head__{x1,x2,x3}
  R1#0{x1,x2}
  R2#2{x1,y1}
  S1#1{x2,x3,y3}
    S2#4{x2,y2}
    T#3{y3,y4,y5}
`
	if got := tr.JT.String(); got != want {
		t.Fatalf("Figure 1 extended tree drifted:\ngot:\n%swant:\n%s", got, want)
	}
	if err := tr.JT.Validate(); err != nil {
		t.Fatalf("golden extended tree violates the running-intersection property: %v", err)
	}
	root := tr.JT.Root()
	if tr.HeadIdx != root {
		t.Fatalf("HeadIdx %d is not the root %d", tr.HeadIdx, root)
	}
	if tr.Rels[root].R != nil {
		t.Fatalf("synthetic head node carries a relation")
	}
	// Every child of the head node must intersect the head variables —
	// that is what makes the enumeration preamble constant-delay.
	head := map[string]bool{"x1": true, "x2": true, "x3": true}
	for i := range tr.JT.Nodes {
		if tr.JT.Parent[i] != root {
			continue
		}
		hit := false
		for _, v := range tr.JT.Nodes[i].Vertices {
			if head[v] {
				hit = true
			}
		}
		if !hit {
			t.Fatalf("node %s hangs under the head edge without sharing a head variable", tr.JT.Nodes[i].Name)
		}
	}
}
