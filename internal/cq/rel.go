// Package cq implements the evaluation algorithms for acyclic conjunctive
// queries of Section 4.1: the Yannakakis algorithm (Theorem 4.2), the
// linear-delay enumeration of Theorem 4.3 (Algorithm 2), and the
// constant-delay enumeration for free-connex queries of Theorem 4.6, plus
// the reduction database construction of the Theorem 4.8 lower bound
// (Example 4.7).
package cq

import (
	"fmt"
	"sort"

	"repro/internal/database"
	"repro/internal/logic"
)

// Rel is a relation tagged with a variable schema: column i holds the value
// of variable Schema[i].
type Rel struct {
	Schema []string
	R      *database.Relation
}

// Col returns the column of variable v, or -1.
func (r Rel) Col(v string) int {
	for i, s := range r.Schema {
		if s == v {
			return i
		}
	}
	return -1
}

// col is the internal alias of Col.
func (r Rel) col(v string) int { return r.Col(v) }

// hasVar reports whether v is in the schema.
func (r Rel) hasVar(v string) bool { return r.col(v) >= 0 }

// commonCols returns the aligned column lists of the variables shared by a
// and b, in a's schema order.
func commonCols(a, b Rel) (ac, bc []int) {
	for i, v := range a.Schema {
		if j := b.col(v); j >= 0 {
			ac = append(ac, i)
			bc = append(bc, j)
		}
	}
	return ac, bc
}

// SemijoinRel keeps the tuples of a that match some tuple of b on their
// shared variables.
func SemijoinRel(a, b Rel) Rel { return semijoin(a, b) }

// ProjectRel projects a onto the given variables.
func ProjectRel(a Rel, vars []string) Rel { return project(a, vars) }

// JoinRel computes the natural join of a and b on their shared variables.
func JoinRel(name string, a, b Rel) Rel { return join(name, a, b) }

// semijoin keeps the tuples of a that match some tuple of b on their shared
// variables.
func semijoin(a, b Rel) Rel {
	ac, bc := commonCols(a, b)
	if len(ac) == 0 {
		// No shared variables: a survives iff b is nonempty.
		if b.R.Len() == 0 {
			return Rel{Schema: a.Schema, R: database.NewRelation(a.R.Name, a.R.Arity)}
		}
		return a
	}
	return Rel{Schema: a.Schema, R: database.Semijoin(a.R, ac, b.R, bc)}
}

// project projects a onto the given variables (which must be in a's schema).
func project(a Rel, vars []string) Rel {
	cols := make([]int, len(vars))
	for i, v := range vars {
		c := a.col(v)
		if c < 0 {
			panic(fmt.Sprintf("cq: projection variable %q not in schema %v", v, a.Schema))
		}
		cols[i] = c
	}
	return Rel{Schema: append([]string(nil), vars...), R: a.R.Project(a.R.Name, cols)}
}

// join computes the natural join of a and b on their shared variables.
func join(name string, a, b Rel) Rel {
	ac, bc := commonCols(a, b)
	out := Rel{Schema: append([]string(nil), a.Schema...)}
	skip := make(map[int]bool)
	for _, c := range bc {
		skip[c] = true
	}
	for c, v := range b.Schema {
		if !skip[c] {
			out.Schema = append(out.Schema, v)
		}
	}
	out.R = database.Join(name, a.R, ac, b.R, bc)
	return out
}

// AtomRelation builds the relation of a single atom: tuples of the base
// relation satisfying the atom's constants and repeated variables, projected
// onto the distinct variables (first occurrence order). This uniformly
// handles self-joins — each atom occurrence gets its own relation — and
// constants in atoms.
func AtomRelation(db *database.Database, a logic.Atom) (Rel, error) {
	base := db.Relation(a.Pred)
	if base == nil {
		return Rel{}, fmt.Errorf("cq: unknown relation %q", a.Pred)
	}
	if base.Arity != len(a.Args) {
		return Rel{}, fmt.Errorf("cq: relation %q has arity %d, atom has %d arguments", a.Pred, base.Arity, len(a.Args))
	}
	vars := a.Vars()
	firstCol := make(map[string]int)
	for i, t := range a.Args {
		if !t.IsConst {
			if _, ok := firstCol[t.Var]; !ok {
				firstCol[t.Var] = i
			}
		}
	}
	sel := base.Select(a.Pred, func(t database.Tuple) bool {
		for i, arg := range a.Args {
			if arg.IsConst {
				if t[i] != arg.Const {
					return false
				}
			} else if t[i] != t[firstCol[arg.Var]] {
				return false
			}
		}
		return true
	})
	cols := make([]int, len(vars))
	for i, v := range vars {
		cols[i] = firstCol[v]
	}
	out := sel.Project(a.Pred, cols)
	out.Dedup()
	return Rel{Schema: vars, R: out}, nil
}

// checkPlainACQ verifies that q is a plain conjunctive query this package
// handles (no negation, no comparisons), that it is acyclic, and that it is
// safe (every head variable occurs in a positive atom).
func checkPlainACQ(q *logic.CQ) error {
	if len(q.NegAtoms) > 0 {
		return fmt.Errorf("cq: query %s has negated atoms; use the ncq package", q.Name)
	}
	if len(q.Comparisons) > 0 {
		return fmt.Errorf("cq: query %s has comparisons; use the ineq package", q.Name)
	}
	if len(q.Atoms) == 0 {
		return fmt.Errorf("cq: query %s has no atoms", q.Name)
	}
	inAtom := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, v := range a.Vars() {
			inAtom[v] = true
		}
	}
	for _, v := range q.Head {
		if !inAtom[v] {
			return fmt.Errorf("cq: unsafe query %s: head variable %q occurs in no atom", q.Name, v)
		}
	}
	if !q.IsAcyclic() {
		return fmt.Errorf("cq: query %s is not acyclic", q.Name)
	}
	return nil
}

// sortedVars returns a sorted copy (deterministic schemas for projections).
func sortedVars(vs map[string]bool) []string {
	out := make([]string, 0, len(vs))
	for v := range vs {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

