package cq

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
	"repro/internal/logic/logictest"
)

// ----- helpers -----

func sortTuples(ts []database.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

func equalAnswerSets(t *testing.T, label string, got, want []database.Tuple) {
	t.Helper()
	sortTuples(got)
	sortTuples(want)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d answers, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: answer %d: got %v, want %v", label, i, got[i], want[i])
		}
	}
}

// randomDB builds a database with relations named by the atoms of q, with
// random small contents.
func randomDB(rng *rand.Rand, q *logic.CQ, domSize, relSize int) *database.Database {
	db := database.NewDatabase()
	for _, a := range q.Atoms {
		if db.Relation(a.Pred) != nil {
			continue
		}
		r := database.NewRelation(a.Pred, len(a.Args))
		for i := 0; i < relSize; i++ {
			t := make(database.Tuple, len(a.Args))
			for j := range t {
				t[j] = database.Value(rng.Intn(domSize) + 1)
			}
			r.Insert(t)
		}
		r.Dedup()
		db.AddRelation(r)
	}
	return db
}

// randomACQ generates a random acyclic conjunctive query: each new atom
// shares variables with a single previously generated atom, which keeps the
// hypergraph GYO-reducible.
func randomACQ(rng *rand.Rand) *logic.CQ {
	numAtoms := 1 + rng.Intn(4)
	var atoms []logic.Atom
	varCount := 0
	fresh := func() string { varCount++; return fmt.Sprintf("v%d", varCount) }
	for i := 0; i < numAtoms; i++ {
		var vars []string
		if i > 0 {
			prev := atoms[rng.Intn(len(atoms))]
			pv := prev.Vars()
			for _, v := range pv {
				if rng.Intn(2) == 0 {
					vars = append(vars, v)
				}
			}
		}
		for len(vars) == 0 || rng.Intn(3) == 0 {
			vars = append(vars, fresh())
			if len(vars) >= 3 {
				break
			}
		}
		atoms = append(atoms, logic.NewAtom(fmt.Sprintf("R%d", i), vars...))
	}
	q := &logic.CQ{Name: "Q", Atoms: atoms}
	all := q.Vars()
	for _, v := range all {
		if rng.Intn(2) == 0 {
			q.Head = append(q.Head, v)
		}
	}
	return q
}

// ----- unit tests -----

func TestAtomRelationConstantsAndSelfEquality(t *testing.T) {
	db := database.NewDatabase()
	r := database.NewRelation("R", 3)
	r.InsertValues(1, 7, 1)
	r.InsertValues(2, 7, 1)
	r.InsertValues(1, 8, 1)
	db.AddRelation(r)

	// R(x, 7, x): constants and repeated variables.
	a := logic.Atom{Pred: "R", Args: []logic.Term{logic.V("x"), logic.C(7), logic.V("x")}}
	rel, err := AtomRelation(db, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Schema) != 1 || rel.Schema[0] != "x" {
		t.Fatalf("schema: %v", rel.Schema)
	}
	if rel.R.Len() != 1 || rel.R.Tuples[0][0] != 1 {
		t.Fatalf("tuples: %v", rel.R.Tuples)
	}
}

func TestAtomRelationErrors(t *testing.T) {
	db := database.NewDatabase()
	r := database.NewRelation("R", 2)
	db.AddRelation(r)
	if _, err := AtomRelation(db, logic.NewAtom("S", "x")); err == nil {
		t.Errorf("unknown relation must fail")
	}
	if _, err := AtomRelation(db, logic.NewAtom("R", "x")); err == nil {
		t.Errorf("arity mismatch must fail")
	}
}

func TestDecideAndEvalPath(t *testing.T) {
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	for _, p := range [][2]database.Value{{1, 2}, {2, 3}, {3, 4}} {
		e.InsertValues(p[0], p[1])
	}
	db.AddRelation(e)

	q := logictest.MustParseCQ("Q(x,z) :- E(x,y), E(y,z).")
	got, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	want := q.EvalNaive(db)
	equalAnswerSets(t, "path eval", got, want)

	bq := logictest.MustParseCQ("B() :- E(x,y), E(y,z), E(z,w).")
	ok, err := Decide(db, bq)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("three-step path exists")
	}
	bq4 := logictest.MustParseCQ("B() :- E(x,y), E(y,z), E(z,w), E(w,u).")
	ok, err = Decide(db, bq4)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("four-step path does not exist")
	}
}

func TestRejectsCyclicNegatedComparisons(t *testing.T) {
	db := database.NewDatabase()
	db.AddRelation(database.NewRelation("E", 2))
	if _, err := Eval(db, logictest.MustParseCQ("Q() :- E(x,y), E(y,z), E(z,x).")); err == nil {
		t.Errorf("cyclic query must be rejected")
	}
	if _, err := Eval(db, logictest.MustParseCQ("Q(x) :- E(x,y), !E(y,x).")); err == nil {
		t.Errorf("negated atoms must be rejected")
	}
	if _, err := Eval(db, logictest.MustParseCQ("Q(x) :- E(x,y), x != y.")); err == nil {
		t.Errorf("comparisons must be rejected")
	}
	if _, err := Eval(db, logictest.MustParseCQ("Q(x,w) :- E(x,y).")); err == nil {
		t.Errorf("unsafe head variable must be rejected")
	}
}

// The Figure 1 query end to end: constant-delay enumeration agrees with the
// naive evaluation.
func TestFigure1QueryEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := logictest.MustParseCQ("Q(x1,x2,x3) :- R(x1,x2), S(x2,x3,y3), R(x1,y1), T(y3,y4,y5), S(x2,y2).")
	if !q.IsFreeConnex() {
		t.Fatalf("Figure 1 query must be free-connex")
	}
	// Relations: R binary, S ternary, T ternary. Note R and S are
	// self-joined (used twice with different arities in the paper's φ: S is
	// used as ternary and binary — we rename the binary use).
	// The paper's query uses S(x2,y2) with binary S; to stay faithful we
	// give S arity 3 and use a separate binary relation for the last atom.
	q = logictest.MustParseCQ("Q(x1,x2,x3) :- R(x1,x2), S(x2,x3,y3), R(x1,y1), T(y3,y4,y5), S2(x2,y2).")
	db := randomDB(rng, q, 4, 20)
	want := q.EvalNaive(db)

	e, err := EnumerateConstantDelay(db, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := delay.Collect(e)
	equalAnswerSets(t, "figure 1 constant delay", got, want)

	le, err := EnumerateLinearDelay(db, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	equalAnswerSets(t, "figure 1 linear delay", delay.Collect(le), want)

	ev, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	equalAnswerSets(t, "figure 1 yannakakis", ev, want)
}

// Π(x,y) = ∃z A(x,z) ∧ B(z,y) is not free-connex: the constant-delay
// enumerator must refuse it, the linear-delay one must handle it.
func TestMatrixQueryNotConstantDelay(t *testing.T) {
	q := logictest.MustParseCQ("Pi(x,y) :- A(x,z), B(z,y).")
	db := database.NewDatabase()
	a := database.NewRelation("A", 2)
	a.InsertValues(1, 5)
	a.InsertValues(2, 5)
	b := database.NewRelation("B", 2)
	b.InsertValues(5, 9)
	db.AddRelation(a)
	db.AddRelation(b)

	if _, err := EnumerateConstantDelay(db, q, nil); err == nil {
		t.Errorf("Π must be rejected by the constant-delay enumerator")
	}
	le, err := EnumerateLinearDelay(db, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	equalAnswerSets(t, "Π linear delay", delay.Collect(le), q.EvalNaive(db))
}

func TestBooleanEnumerators(t *testing.T) {
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	e.InsertValues(1, 2)
	db.AddRelation(e)
	q := logictest.MustParseCQ("B() :- E(x,y).")
	ce, err := EnumerateConstantDelay(db, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := delay.Collect(ce)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("true Boolean query: want one empty tuple, got %v", got)
	}
	qf := logictest.MustParseCQ("B() :- E(x,x).")
	ce2, err := EnumerateConstantDelay(db, qf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := delay.Collect(ce2); len(got) != 0 {
		t.Errorf("false Boolean query: want no answers, got %v", got)
	}
}

func TestEmptyRelationNoAnswers(t *testing.T) {
	db := database.NewDatabase()
	db.AddRelation(database.NewRelation("A", 2))
	b := database.NewRelation("B", 2)
	b.InsertValues(1, 2)
	db.AddRelation(b)
	q := logictest.MustParseCQ("Q(x) :- A(x,z), B(z,y).")
	e, err := EnumerateConstantDelay(db, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := delay.Collect(e); len(got) != 0 {
		t.Errorf("empty relation: want no answers, got %v", got)
	}
}

// ----- differential tests -----

func TestRandomACQDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	fcCount, anyCount := 0, 0
	for trial := 0; trial < 400; trial++ {
		q := randomACQ(rng)
		db := randomDB(rng, q, 3, 8)
		if !q.IsSelfJoinFree() {
			// randomACQ names atoms uniquely, so this cannot happen; the
			// engines would still be correct.
			t.Fatalf("generator produced self-join")
		}
		want := q.EvalNaive(db)

		got, err := Eval(db, q)
		if err != nil {
			t.Fatalf("trial %d: Eval(%s): %v", trial, q, err)
		}
		equalAnswerSets(t, fmt.Sprintf("trial %d yannakakis %s", trial, q), got, want)

		le, err := EnumerateLinearDelay(db, q, nil)
		if err != nil {
			t.Fatalf("trial %d: linear(%s): %v", trial, q, err)
		}
		lres := delay.Collect(le)
		equalAnswerSets(t, fmt.Sprintf("trial %d linear %s", trial, q), lres, want)
		anyCount++

		if q.IsFreeConnex() {
			fcCount++
			ce, err := EnumerateConstantDelay(db, q, nil)
			if err != nil {
				t.Fatalf("trial %d: constant(%s): %v", trial, q, err)
			}
			cres := delay.Collect(ce)
			equalAnswerSets(t, fmt.Sprintf("trial %d constant %s", trial, q), cres, want)
		}

		// Boolean decision agrees with naive on the Boolean-ified query.
		bq := &logic.CQ{Name: "B", Atoms: q.Atoms}
		ok, err := Decide(db, bq)
		if err != nil {
			t.Fatalf("trial %d: decide: %v", trial, err)
		}
		if ok != bq.DecideNaive(db) {
			t.Fatalf("trial %d: decide mismatch for %s", trial, bq)
		}
	}
	if fcCount < 50 {
		t.Fatalf("too few free-connex samples: %d", fcCount)
	}
}

// No duplicates from the enumerators.
func TestEnumeratorsNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		q := randomACQ(rng)
		db := randomDB(rng, q, 3, 10)
		if !q.IsFreeConnex() {
			continue
		}
		e, err := EnumerateConstantDelay(db, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for {
			tup, ok := e.Next()
			if !ok {
				break
			}
			k := tup.FullKey()
			if seen[k] {
				t.Fatalf("duplicate answer %v for %s", tup, q)
			}
			seen[k] = true
		}
	}
}

// The measured per-output delay (in counted steps) of the constant-delay
// enumerator must not grow with the database, while the linear-delay
// baseline's must.
func TestConstantDelayIsConstant(t *testing.T) {
	q := logictest.MustParseCQ("Q(x,y) :- A(x,z), B(z), C(z,y).")
	// Free-connex? H+head {x,y}: A{x,z}, B{z}, C{z,y}, {x,y}: GYO: B ⊆ A;
	// then A{x,z} shared {x (head), z (C)}: not ⊆ single edge... let's
	// instead use a certainly free-connex query:
	q = logictest.MustParseCQ("Q(x,y) :- A(x,z), B(z,y).")
	if q.IsFreeConnex() {
		t.Fatalf("Π is not free-connex; test setup wrong")
	}
	q = logictest.MustParseCQ("Q(x,y) :- A(x,y), B(y,z).")
	if !q.IsFreeConnex() {
		t.Fatalf("expected free-connex")
	}

	maxDelayAt := func(n int) int64 {
		db := database.NewDatabase()
		a := database.NewRelation("A", 2)
		b := database.NewRelation("B", 2)
		for i := 0; i < n; i++ {
			a.InsertValues(database.Value(i), database.Value(i+1))
			b.InsertValues(database.Value(i+1), database.Value(i%7))
		}
		db.AddRelation(a)
		db.AddRelation(b)
		c := &delay.Counter{}
		st, _ := delay.Measure(c, func() delay.Enumerator {
			e, err := EnumerateConstantDelay(db, q, c)
			if err != nil {
				t.Fatal(err)
			}
			return e
		})
		if st.Outputs == 0 {
			t.Fatalf("no outputs at n=%d", n)
		}
		return st.MaxDelaySteps
	}
	small := maxDelayAt(100)
	large := maxDelayAt(10000)
	if large > 4*small+16 {
		t.Errorf("constant-delay enumerator delay grew with n: %d -> %d", small, large)
	}
}
