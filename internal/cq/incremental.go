package cq

// Incremental maintenance of the enumeration spines (delta-binding).
//
// A bound constant-delay plan holds the fully Yannakakis-reduced "free
// parts" of the Theorem 4.6 construction, frozen into slabs and CSR hash
// indexes. Rebuilding all of that on every base mutation is the re-Bind
// cliff; this file maintains it incrementally instead, in the style of
// counting-based incremental view maintenance (the enumeration-under-
// updates line of "Enumeration Complexity: Incremental Time, Delay and
// Space", PAPERS.md).
//
// The reduced state is a composition of select-project-semijoin nodes:
//
//	b[i]     = π_keep( atom_i ⋉ b[c1] ⋉ ... ⋉ b[ck] )   (elimination pass)
//	up[j]    = part_j ⋉ up[children]                     (bottom-up pass)
//	final[r] = up[r],  final[j] = up[j] ⋉ final[parent]  (top-down pass)
//
// Each node (incNode) maintains its output SET under input deltas with
// counters: per source row a multiplicity and the number of semijoin
// edges with no support ("missing"), per edge a support count for each
// join key, and per output tuple the number of alive source rows
// projecting to it. Every operation restores the invariants locally, so
// the order of deltas within a pass does not matter; a node emits only
// the net presence transitions of its output tuples, which become the
// input deltas of its parent. One topological sweep per Apply therefore
// propagates a base delta to the fully-reduced sets exactly.
//
// Because globally consistent (fully reduced) tuple sets are canonical —
// independent of which join tree the reducer used — the refresher may
// run its own GYO tree over the part schemas and still land on exactly
// the sets the bound core holds. That is what lets Apply patch the
// core's slabs, indexes, and root bucket in place: set-level deltas are
// translated to row-id insertions (Slab.Append + Index.AddRow) and
// removals (Index.RemoveRow, root swap-remove).
//
// Any inconsistency — a delete of an untracked occurrence, a support
// underflow, a full slab, too much accumulated layout waste — makes
// Apply return false WITHOUT attempting repair. The caller must then
// discard the refresher and fall back to a full rebuild, which is always
// correct; partial node-state mutations before the failure are harmless
// because nothing reads the refresher again.

import (
	"fmt"
	"sort"

	"repro/internal/database"
	"repro/internal/hypergraph"
	"repro/internal/logic"
)

// setDelta is the net presence change of a maintained set: tuples that
// appeared and tuples that vanished. The two lists are disjoint.
type setDelta struct {
	add []database.Tuple
	del []database.Tuple
}

// incRow is one tracked source tuple of a node: its multiplicity in the
// (multiset) source, its per-edge join keys, and how many edges
// currently have no support for it. The row is alive — contributes to
// the node's output — iff count > 0 and missing == 0.
type incRow struct {
	t       database.Tuple
	count   int
	missing int
	keys    []string // aligned with the node's edges
}

func (r *incRow) alive() bool { return r.count > 0 && r.missing == 0 }

// incEdge is one semijoin edge of a node: support counts the alive
// output tuples of the child per join key, group collects the source
// rows sharing a key so 0↔1 support transitions can flip their missing
// counters. An edge with no shared columns degenerates to the single key
// "" — support is then the child's output size, matching semijoin's
// no-shared-variables case.
type incEdge struct {
	selfCols  []int // key columns in this node's source schema
	childCols []int // aligned key columns in the child's output schema
	support   map[string]int
	group     map[string][]*incRow
}

// incOut is one output tuple with the number of alive source rows
// projecting to it; the tuple is present iff n > 0.
type incOut struct {
	t database.Tuple
	n int
}

// incNode maintains one select-project-semijoin view. Feed it source and
// child deltas in any order, then call finish to collect the net output
// delta of the pass.
type incNode struct {
	schema   []string
	projCols []int // output projection columns; nil = identity
	edges    []*incEdge
	src      map[string]*incRow
	out      map[string]*incOut
	prev     map[string]bool // presence before this pass, per touched key
	order    []string        // touch order, for deterministic emission
	fail     bool
}

func newIncNode(schema []string, projCols []int) *incNode {
	return &incNode{
		schema:   schema,
		projCols: projCols,
		src:      make(map[string]*incRow),
		out:      make(map[string]*incOut),
		prev:     make(map[string]bool),
	}
}

func (nd *incNode) addEdge(selfCols, childCols []int) {
	nd.edges = append(nd.edges, &incEdge{
		selfCols:  selfCols,
		childCols: childCols,
		support:   make(map[string]int),
		group:     make(map[string][]*incRow),
	})
}

func (nd *incNode) project(t database.Tuple) database.Tuple {
	if nd.projCols == nil {
		return t
	}
	out := make(database.Tuple, len(nd.projCols))
	for i, c := range nd.projCols {
		out[i] = t[c]
	}
	return out
}

// srcAdd raises the multiplicity of source tuple t by n, registering it
// on first sight (computing its edge keys against current support).
func (nd *incNode) srcAdd(t database.Tuple, n int) {
	k := t.FullKey()
	row := nd.src[k]
	if row == nil {
		row = &incRow{t: t, keys: make([]string, len(nd.edges))}
		for ei, e := range nd.edges {
			ek := t.Key(e.selfCols)
			row.keys[ei] = ek
			e.group[ek] = append(e.group[ek], row)
			if e.support[ek] == 0 {
				row.missing++
			}
		}
		nd.src[k] = row
	}
	was := row.alive()
	row.count += n
	if !was && row.alive() {
		nd.outInc(row)
	}
}

// srcDel lowers the multiplicity of source tuple t by n; false signals
// an untracked or over-deleted occurrence (caller must rebuild).
func (nd *incNode) srcDel(t database.Tuple, n int) bool {
	row := nd.src[t.FullKey()]
	if row == nil || row.count < n {
		return false
	}
	was := row.alive()
	row.count -= n
	if was && !row.alive() {
		nd.outDec(row)
	}
	return true
}

// childAdd records one new output tuple of the child behind edge ei.
func (nd *incNode) childAdd(ei int, u database.Tuple) {
	e := nd.edges[ei]
	k := u.Key(e.childCols)
	e.support[k]++
	if e.support[k] == 1 {
		for _, row := range e.group[k] {
			row.missing--
			if row.alive() {
				nd.outInc(row)
			}
		}
	}
}

// childDel records one vanished output tuple of the child behind edge
// ei; false signals a support underflow.
func (nd *incNode) childDel(ei int, u database.Tuple) bool {
	e := nd.edges[ei]
	k := u.Key(e.childCols)
	s := e.support[k]
	if s == 0 {
		return false
	}
	if s > 1 {
		e.support[k] = s - 1
		return true
	}
	delete(e.support, k)
	for _, row := range e.group[k] {
		if row.alive() {
			nd.outDec(row)
		}
		row.missing++
	}
	return true
}

func (nd *incNode) outInc(row *incRow) {
	p := nd.project(row.t)
	k := p.FullKey()
	o := nd.out[k]
	if o == nil {
		o = &incOut{t: p}
		nd.out[k] = o
	}
	nd.touch(k, o)
	o.n++
}

func (nd *incNode) outDec(row *incRow) {
	k := nd.project(row.t).FullKey()
	o := nd.out[k]
	if o == nil || o.n == 0 {
		nd.fail = true
		return
	}
	nd.touch(k, o)
	o.n--
}

func (nd *incNode) touch(k string, o *incOut) {
	if _, seen := nd.prev[k]; !seen {
		nd.prev[k] = o.n > 0
		nd.order = append(nd.order, k)
	}
}

// finish collects the net presence transitions of the pass, in first-
// touch order (deterministic for a given delta), and resets the pass
// bookkeeping.
func (nd *incNode) finish() (setDelta, bool) {
	if nd.fail {
		return setDelta{}, false
	}
	var d setDelta
	for _, k := range nd.order {
		o := nd.out[k]
		now := o.n > 0
		if now && !nd.prev[k] {
			d.add = append(d.add, o.t)
		}
		if !now && nd.prev[k] {
			d.del = append(d.del, o.t)
		}
		if o.n == 0 {
			delete(nd.out, k)
		}
		delete(nd.prev, k)
	}
	nd.order = nd.order[:0]
	return d, true
}

// --- atom filtering ---------------------------------------------------

// atomFilter replicates AtomRelation at the tuple level: the constant and
// repeated-variable selection plus the projection onto the atom's
// distinct variables (first-occurrence columns). Feeding every base
// occurrence through it yields the atom's relation as a multiset, which
// is what survives duplicate inserts and occurrence-level deletes.
type atomFilter struct {
	atom  logic.Atom
	first map[string]int
	cols  []int
}

func newAtomFilter(a logic.Atom) atomFilter {
	first := make(map[string]int)
	for i, arg := range a.Args {
		if !arg.IsConst {
			if _, ok := first[arg.Var]; !ok {
				first[arg.Var] = i
			}
		}
	}
	vars := a.Vars()
	cols := make([]int, len(vars))
	for i, v := range vars {
		cols[i] = first[v]
	}
	return atomFilter{atom: a, first: first, cols: cols}
}

func (f *atomFilter) match(t database.Tuple) bool {
	for i, arg := range f.atom.Args {
		if arg.IsConst {
			if t[i] != arg.Const {
				return false
			}
		} else if t[i] != t[f.first[arg.Var]] {
			return false
		}
	}
	return true
}

func (f *atomFilter) proj(t database.Tuple) database.Tuple {
	out := make(database.Tuple, len(f.cols))
	for i, c := range f.cols {
		out[i] = t[c]
	}
	return out
}

// feed pushes one base-relation delta through the filter into the node's
// source. Inserts land before deletes (the caller batches them so), so a
// net-zero churn inside one window cannot underflow the counters.
func (f *atomFilter) feed(nd *incNode, d database.Delta) bool {
	for _, t := range d.Ins {
		if f.match(t) {
			nd.srcAdd(f.proj(t), 1)
		}
	}
	for _, t := range d.Del {
		if f.match(t) {
			if !nd.srcDel(f.proj(t), 1) {
				return false
			}
		}
	}
	return true
}

// sharedCols returns the aligned column lists of the variables shared by
// the two schemas, in a's order.
func sharedCols(a, b []string) (ac, bc []int) {
	for i, v := range a {
		for j, w := range b {
			if v == w {
				ac = append(ac, i)
				bc = append(bc, j)
				break
			}
		}
	}
	return ac, bc
}

// --- constant-delay refresher -----------------------------------------

// ConstRefresher incrementally maintains a bound OdometerCore under base
// relation deltas. Built by NewConstRefresher together with the core it
// patches; Apply pushes one delta batch through the maintenance pipeline
// and patches the core's slabs, indexes, and root bucket in place. A
// false return means the refresher could not apply the delta safely —
// the caller must discard BOTH the refresher and the core and rebuild.
type ConstRefresher struct {
	q       *logic.CQ
	headIdx int

	// Elimination layer: one node per query atom, in join-tree postorder.
	filters      []atomFilter
	atomNodes    []*incNode
	atomChildren [][]int
	atomPostord  []int

	// Part reduction layers over the refresher's own join tree of the
	// part schemas (valid by join-tree independence of full reduction).
	partNode   []int // part p's atom-layer node index
	upNodes    []*incNode
	finNodes   []*incNode
	upChildren [][]int
	upPostord  []int
	upParent   []int
	upRoot     int

	// Core patching state.
	core     *OdometerCore
	pos      []map[string]int32 // per core position: tuple key -> row id
	rootIdx  map[int32]int      // root row id -> index in core.root
	sizes    []int              // live rows per core position
	baseRows int                // live rows at build time (waste budget)
	churn    int                // rows appended + removed since build
}

// NewConstRefresher builds the maintenance pipeline for a free-connex
// query over db, materializes the fully-reduced free parts by feeding
// the entire base through it (build IS the first Apply, from empty), and
// returns the refresher together with the OdometerCore it maintains.
func NewConstRefresher(db *database.Database, q *logic.CQ) (*ConstRefresher, *OdometerCore, error) {
	t, err := BuildTree(db, q, true)
	if err != nil {
		return nil, nil, err
	}
	cr := &ConstRefresher{
		q:            q,
		headIdx:      t.HeadIdx,
		filters:      make([]atomFilter, len(t.Rels)),
		atomNodes:    make([]*incNode, len(t.Rels)),
		atomChildren: t.children,
		atomPostord:  t.postord,
	}
	freeSet := headSet(q)
	outSchema := make([][]string, len(t.Rels))
	for i := range t.Rels {
		if i == cr.headIdx {
			continue
		}
		a := q.Atoms[i]
		cr.filters[i] = newAtomFilter(a)
		schema := a.Vars()
		keep := make(map[string]bool)
		p := t.JT.Parent[i]
		var pe hypergraph.Edge
		if p >= 0 {
			pe = t.JT.Nodes[p]
		}
		for _, v := range schema {
			if freeSet[v] || (p >= 0 && pe.Has(v)) {
				keep[v] = true
			}
		}
		outSchema[i] = sortedVars(keep)
		projCols := make([]int, len(outSchema[i]))
		for k, v := range outSchema[i] {
			projCols[k] = Rel{Schema: schema}.col(v)
		}
		cr.atomNodes[i] = newIncNode(schema, projCols)
	}
	// Edges need every child's output schema, so a second sweep.
	for i := range t.Rels {
		if i == cr.headIdx {
			continue
		}
		nd := cr.atomNodes[i]
		for _, ch := range t.children[i] {
			sc, cc := sharedCols(nd.schema, outSchema[ch])
			nd.addEdge(sc, cc)
		}
	}

	// Part layers: the head's children carry the free parts.
	cr.partNode = t.children[cr.headIdx]
	if len(cr.partNode) == 0 {
		return nil, nil, fmt.Errorf("cq: internal: head node has no children for %s", q.Name)
	}
	partSchemas := make([][]string, len(cr.partNode))
	h := hypergraph.New()
	for p, node := range cr.partNode {
		partSchemas[p] = outSchema[node]
		h.AddEdge(hypergraph.NewEdge(fmt.Sprintf("V%d", p), partSchemas[p]...))
	}
	jt, ok := hypergraph.GYO(h)
	if !ok {
		return nil, nil, fmt.Errorf("cq: internal: head-part schemas not acyclic")
	}
	cr.upChildren = jt.Children()
	cr.upPostord = postorder(jt)
	cr.upParent = jt.Parent
	cr.upRoot = jt.Root()
	cr.upNodes = make([]*incNode, len(cr.partNode))
	cr.finNodes = make([]*incNode, len(cr.partNode))
	for p := range cr.partNode {
		cr.upNodes[p] = newIncNode(partSchemas[p], nil)
		cr.finNodes[p] = newIncNode(partSchemas[p], nil)
	}
	for p := range cr.partNode {
		for _, cc := range cr.upChildren[p] {
			sc, ccols := sharedCols(partSchemas[p], partSchemas[cc])
			cr.upNodes[p].addEdge(sc, ccols)
		}
		if p != cr.upRoot {
			sc, pc := sharedCols(partSchemas[p], partSchemas[cr.upParent[p]])
			cr.finNodes[p].addEdge(sc, pc)
		}
	}

	// Initial state: the whole base is the first delta (from empty).
	initial := make(map[string]database.Delta)
	for i := range t.Rels {
		if i == cr.headIdx {
			continue
		}
		pred := q.Atoms[i].Pred
		if _, done := initial[pred]; !done {
			initial[pred] = database.Delta{Ins: db.Relation(pred).Tuples}
		}
	}
	finOut, ok := cr.runPipeline(initial)
	if !ok {
		return nil, nil, fmt.Errorf("cq: internal: initial maintenance pass failed for %s", q.Name)
	}
	parts := make([]Rel, len(cr.partNode))
	for p := range parts {
		parts[p] = Rel{
			Schema: partSchemas[p],
			R:      database.FromTuples(fmt.Sprintf("P%d", p), len(partSchemas[p]), finOut[p].add),
		}
	}
	// The parts are already fully reduced, so the core's internal
	// reduction passes change nothing (full reduction is idempotent, and
	// its result is the same for any join tree).
	core, err := NewOdometerCore(q.Head, parts, nil)
	if err != nil {
		return nil, nil, err
	}
	cr.core = core
	cr.pos = make([]map[string]int32, len(core.order))
	cr.sizes = make([]int, len(core.order))
	for j := range core.order {
		rel := core.rels[j].R
		cr.sizes[j] = rel.Len()
		cr.baseRows += rel.Len()
		cr.pos[j] = make(map[string]int32, rel.Len())
		for i, tp := range rel.Tuples {
			cr.pos[j][tp.FullKey()] = int32(i)
		}
	}
	cr.rootIdx = make(map[int32]int, len(core.root))
	for i, id := range core.root {
		cr.rootIdx[id] = i
	}
	return cr, core, nil
}

// runPipeline pushes one base delta batch through the three maintenance
// layers and returns the net delta of each fully-reduced part.
func (cr *ConstRefresher) runPipeline(deltas map[string]database.Delta) ([]setDelta, bool) {
	nodeOut := make([]setDelta, len(cr.atomNodes))
	for _, i := range cr.atomPostord {
		if i == cr.headIdx {
			continue
		}
		nd := cr.atomNodes[i]
		if !cr.filters[i].feed(nd, deltas[cr.filters[i].atom.Pred]) {
			return nil, false
		}
		for ei, ch := range cr.atomChildren[i] {
			for _, u := range nodeOut[ch].add {
				nd.childAdd(ei, u)
			}
			for _, u := range nodeOut[ch].del {
				if !nd.childDel(ei, u) {
					return nil, false
				}
			}
		}
		var ok bool
		if nodeOut[i], ok = nd.finish(); !ok {
			return nil, false
		}
	}

	upOut := make([]setDelta, len(cr.partNode))
	for _, j := range cr.upPostord {
		nd := cr.upNodes[j]
		d := nodeOut[cr.partNode[j]]
		for _, u := range d.add {
			nd.srcAdd(u, 1)
		}
		for _, u := range d.del {
			if !nd.srcDel(u, 1) {
				return nil, false
			}
		}
		for ei, cc := range cr.upChildren[j] {
			for _, u := range upOut[cc].add {
				nd.childAdd(ei, u)
			}
			for _, u := range upOut[cc].del {
				if !nd.childDel(ei, u) {
					return nil, false
				}
			}
		}
		var ok bool
		if upOut[j], ok = nd.finish(); !ok {
			return nil, false
		}
	}

	finOut := make([]setDelta, len(cr.partNode))
	// Reverse postorder visits parents before children: final[parent] is
	// settled before its delta feeds the child's edge.
	for k := len(cr.upPostord) - 1; k >= 0; k-- {
		j := cr.upPostord[k]
		nd := cr.finNodes[j]
		for _, u := range upOut[j].add {
			nd.srcAdd(u, 1)
		}
		for _, u := range upOut[j].del {
			if !nd.srcDel(u, 1) {
				return nil, false
			}
		}
		if j != cr.upRoot {
			p := cr.upParent[j]
			for _, u := range finOut[p].add {
				nd.childAdd(0, u)
			}
			for _, u := range finOut[p].del {
				if !nd.childDel(0, u) {
					return nil, false
				}
			}
		}
		var ok bool
		if finOut[j], ok = nd.finish(); !ok {
			return nil, false
		}
	}
	return finOut, true
}

// Apply pushes one base delta batch through the pipeline and patches the
// bound core in place. On false the refresher and the core must both be
// discarded (node state may have advanced past the core's), and the
// caller rebuilds from scratch — always safe, never wrong answers.
func (cr *ConstRefresher) Apply(deltas map[string]database.Delta) bool {
	// Bounded degradation: once patching has churned a large fraction of
	// the originally bound rows, slab tombstones and index waste make a
	// rebuild both cheaper and cleaner.
	if cr.churn > cr.baseRows/2+1024 {
		return false
	}
	finOut, ok := cr.runPipeline(deltas)
	if !ok {
		return false
	}
	core := cr.core
	for p, d := range finOut {
		j := core.origPos[p]
		for _, t := range d.del {
			k := t.FullKey()
			id, ok := cr.pos[j][k]
			if !ok {
				return false
			}
			if j == 0 {
				ri, ok := cr.rootIdx[id]
				if !ok {
					return false
				}
				last := len(core.root) - 1
				core.root[ri] = core.root[last]
				cr.rootIdx[core.root[ri]] = ri
				core.root = core.root[:last]
				delete(cr.rootIdx, id)
			} else if !core.idx[j].RemoveRow(id) {
				return false
			}
			delete(cr.pos[j], k)
			cr.sizes[j]--
			cr.churn++
		}
		for _, t := range d.add {
			var id int32
			if len(core.rels[j].Schema) == 0 {
				// Arity-0 part: the maintained set is {} or {()}, so the
				// single (empty) row always has id 0 and the slab — which
				// cannot store zero-width rows — is left untouched. Index
				// probes over the empty column set never read the slab.
				if j != 0 {
					core.idx[j].AddRow(0)
				}
			} else {
				if core.slabs[j].Full() {
					return false
				}
				var slab database.Slab
				slab, id = core.slabs[j].Append(t)
				core.slabs[j] = slab
				if j != 0 {
					core.idx[j].SetSlab(slab)
					core.idx[j].AddRow(id)
				}
			}
			if j == 0 {
				cr.rootIdx[id] = len(core.root)
				core.root = append(core.root, id)
			}
			cr.pos[j][t.FullKey()] = id
			cr.sizes[j]++
			cr.churn++
		}
	}
	core.dead = false
	for _, n := range cr.sizes {
		if n == 0 {
			core.dead = true
		}
	}
	return true
}

// SlabWaste totals the tombstoned slab rows across the core's positions:
// storage grown by Apply that deletes have since abandoned (root
// swap-remove and Index.RemoveRow drop the row id but never the slot, so
// under delete/insert churn the slabs only grow).
func (cr *ConstRefresher) SlabWaste() int {
	w := 0
	for j := range cr.core.slabs {
		if n := cr.core.slabs[j].Len() - cr.sizes[j]; n > 0 {
			w += n
		}
	}
	return w
}

// CompactSlabs rebuilds the row storage of every core position whose slab
// holds at least minWaste tombstoned rows, returning a fresh core over the
// compacted slabs (nil when no position crossed the threshold) and the
// number of rows reclaimed. The old core is left fully intact — live
// enumeration cursors keep reading it — so the caller must republish the
// returned core for new cursors; the refresher itself switches over
// immediately and subsequent Apply calls patch the new core.
//
// Live rows are re-laid-out in ascending old-id order and each index is
// rebased structure-preservingly (Index.Rebase), so bucket contents and
// the root sequence keep their exact enumeration order: pagination
// cursors minted at the current generation resolve to the same answers
// against the compacted core.
func (cr *ConstRefresher) CompactSlabs(minWaste int) (*OdometerCore, int) {
	core := cr.core
	var ncore *OdometerCore
	reclaimed := 0
	for j := range core.slabs {
		waste := core.slabs[j].Len() - cr.sizes[j]
		if waste < minWaste {
			continue // arity-0 positions report Len 0 and never qualify
		}
		if ncore == nil {
			c := *core
			c.slabs = append([]database.Slab(nil), core.slabs...)
			c.idx = append([]*database.Index(nil), core.idx...)
			ncore = &c
		}
		live := make([]int32, 0, cr.sizes[j])
		for _, id := range cr.pos[j] {
			live = append(live, id)
		}
		sort.Slice(live, func(a, b int) bool { return live[a] < live[b] })
		sl, remap := core.rels[j].R.CompactSlab(core.slabs[j], live)
		ncore.slabs[j] = sl
		if j == 0 {
			// The root bucket holds exactly the live ids (deletes swap-
			// remove), so every remap hit is valid; order is preserved
			// elementwise.
			nroot := make([]int32, len(core.root))
			for i, id := range core.root {
				nroot[i] = remap[id]
			}
			ncore.root = nroot
			cr.rootIdx = make(map[int32]int, len(nroot))
			for i, id := range nroot {
				cr.rootIdx[id] = i
			}
		} else {
			ncore.idx[j] = core.idx[j].Rebase(sl, remap)
		}
		np := make(map[string]int32, len(cr.pos[j]))
		for k, id := range cr.pos[j] {
			np[k] = remap[id]
		}
		cr.pos[j] = np
		reclaimed += waste
	}
	if ncore == nil {
		return nil, 0
	}
	cr.core = ncore
	// Compaction restored density, so the churn budget that forces the
	// eventual full rebuild resets to the remaining (sub-threshold) waste:
	// sustained delete/insert churn stays on the delta path indefinitely
	// instead of hitting the rebuild cliff every baseRows/2 mutations.
	cr.baseRows = 0
	for _, n := range cr.sizes {
		cr.baseRows += n
	}
	cr.churn = cr.SlabWaste()
	return ncore, reclaimed
}

// --- linear-delay refresher -------------------------------------------

// LinearRefresher incrementally maintains a LinearPrep's fully-reduced
// base relations under base deltas. The maintained relations are patched
// through InsertBatch/DeleteBatch — enumeration passes restrict copies,
// so no row ids dangle — and the boolean fast path is kept in sync.
type LinearRefresher struct {
	q *logic.CQ
	t *Tree

	filters   []atomFilter
	atomNodes []*incNode // atom multiset → set
	upNodes   []*incNode
	finNodes  []*incNode

	rels []Rel // maintained fully-reduced base, aligned with t.Rels
	lp   *LinearPrep
}

// NewLinearRefresher builds the maintenance pipeline for an acyclic
// query, materializes its fully-reduced base by feeding the entire
// database through it, and returns the refresher with the LinearPrep it
// maintains.
func NewLinearRefresher(db *database.Database, q *logic.CQ) (*LinearRefresher, *LinearPrep, error) {
	t, err := BuildTree(db, q, false)
	if err != nil {
		return nil, nil, err
	}
	lr := &LinearRefresher{
		q:         q,
		t:         t,
		filters:   make([]atomFilter, len(t.Rels)),
		atomNodes: make([]*incNode, len(t.Rels)),
		upNodes:   make([]*incNode, len(t.Rels)),
		finNodes:  make([]*incNode, len(t.Rels)),
		rels:      make([]Rel, len(t.Rels)),
	}
	root := t.JT.Root()
	for i := range t.Rels {
		a := q.Atoms[i]
		lr.filters[i] = newAtomFilter(a)
		schema := a.Vars()
		lr.atomNodes[i] = newIncNode(schema, nil)
		lr.upNodes[i] = newIncNode(schema, nil)
		lr.finNodes[i] = newIncNode(schema, nil)
	}
	for i := range t.Rels {
		for _, ch := range t.children[i] {
			sc, cc := sharedCols(lr.upNodes[i].schema, lr.upNodes[ch].schema)
			lr.upNodes[i].addEdge(sc, cc)
		}
		if i != root {
			p := t.JT.Parent[i]
			sc, pc := sharedCols(lr.finNodes[i].schema, lr.finNodes[p].schema)
			lr.finNodes[i].addEdge(sc, pc)
		}
	}

	initial := make(map[string]database.Delta)
	for i := range t.Rels {
		pred := q.Atoms[i].Pred
		if _, done := initial[pred]; !done {
			initial[pred] = database.Delta{Ins: db.Relation(pred).Tuples}
		}
	}
	finOut, ok := lr.runPipeline(initial)
	if !ok {
		return nil, nil, fmt.Errorf("cq: internal: initial maintenance pass failed for %s", q.Name)
	}
	for i := range t.Rels {
		lr.rels[i] = Rel{
			Schema: lr.atomNodes[i].schema,
			R:      database.FromTuples(q.Atoms[i].Pred, len(lr.atomNodes[i].schema), finOut[i].add),
		}
	}
	lr.lp = &LinearPrep{t: t, head: q.Head, boolean: len(q.Head) == 0}
	lr.sync()
	return lr, lr.lp, nil
}

// runPipeline pushes one base delta batch through the atom, bottom-up,
// and top-down layers, returning the net delta of each fully-reduced
// base relation.
func (lr *LinearRefresher) runPipeline(deltas map[string]database.Delta) ([]setDelta, bool) {
	t := lr.t
	atomOut := make([]setDelta, len(t.Rels))
	for i := range t.Rels {
		nd := lr.atomNodes[i]
		if !lr.filters[i].feed(nd, deltas[lr.filters[i].atom.Pred]) {
			return nil, false
		}
		var ok bool
		if atomOut[i], ok = nd.finish(); !ok {
			return nil, false
		}
	}

	upOut := make([]setDelta, len(t.Rels))
	for _, i := range t.postord {
		nd := lr.upNodes[i]
		for _, u := range atomOut[i].add {
			nd.srcAdd(u, 1)
		}
		for _, u := range atomOut[i].del {
			if !nd.srcDel(u, 1) {
				return nil, false
			}
		}
		for ei, ch := range t.children[i] {
			for _, u := range upOut[ch].add {
				nd.childAdd(ei, u)
			}
			for _, u := range upOut[ch].del {
				if !nd.childDel(ei, u) {
					return nil, false
				}
			}
		}
		var ok bool
		if upOut[i], ok = nd.finish(); !ok {
			return nil, false
		}
	}

	root := t.JT.Root()
	finOut := make([]setDelta, len(t.Rels))
	for k := len(t.postord) - 1; k >= 0; k-- {
		i := t.postord[k]
		nd := lr.finNodes[i]
		for _, u := range upOut[i].add {
			nd.srcAdd(u, 1)
		}
		for _, u := range upOut[i].del {
			if !nd.srcDel(u, 1) {
				return nil, false
			}
		}
		if i != root {
			p := t.JT.Parent[i]
			for _, u := range finOut[p].add {
				nd.childAdd(0, u)
			}
			for _, u := range finOut[p].del {
				if !nd.childDel(0, u) {
					return nil, false
				}
			}
		}
		var ok bool
		if finOut[i], ok = nd.finish(); !ok {
			return nil, false
		}
	}
	return finOut, true
}

// sync re-derives the LinearPrep's derived state from the maintained
// relations: base is exposed only when the join is nonempty (all reduced
// relations nonempty), and boolean queries resolve to that same check.
func (lr *LinearRefresher) sync() {
	nonempty := true
	for _, r := range lr.rels {
		if r.R.Len() == 0 {
			nonempty = false
		}
	}
	if lr.lp.boolean {
		lr.lp.boolOK = nonempty
		return
	}
	if nonempty {
		lr.lp.base = lr.rels
	} else {
		lr.lp.base = nil
	}
}

// Apply pushes one base delta batch through the pipeline and patches the
// maintained relations. On false the refresher and prep must be
// discarded and rebuilt.
func (lr *LinearRefresher) Apply(deltas map[string]database.Delta) bool {
	finOut, ok := lr.runPipeline(deltas)
	if !ok {
		return false
	}
	for i := range lr.rels {
		d := finOut[i]
		if len(d.del) > 0 && lr.rels[i].R.DeleteBatch(d.del) != len(d.del) {
			return false
		}
		if err := lr.rels[i].R.InsertBatch(d.add); err != nil {
			return false
		}
	}
	lr.sync()
	return true
}
