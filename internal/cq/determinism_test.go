package cq

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic/logictest"
)

// These tests pin down that every enumerator and evaluator in this package
// produces the identical answer *sequence* on repeated runs — a
// prerequisite for diff-testing the parallel engine against the sequential
// one, and for golden tests over enumeration order. Map iteration order
// must never leak into outputs.

func runTwice(t *testing.T, label string, mk func() delay.Enumerator) {
	t.Helper()
	first := delay.Collect(mk())
	second := delay.Collect(mk())
	exactSequence(t, label, second, first)
	if len(first) == 0 {
		t.Fatalf("%s: instance produced no answers; the test is vacuous", label)
	}
}

func TestEnumeratorsDeterministicSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	qFC := logictest.MustParseCQ("Q(x,y) :- A(x,y), B(y,z).")
	db := randomDB(rng, qFC, 25, 300)

	runTwice(t, "EnumerateConstantDelay", func() delay.Enumerator {
		e, err := EnumerateConstantDelay(db, qFC, nil)
		if err != nil {
			t.Fatal(err)
		}
		return e
	})
	runTwice(t, "EnumerateLinearDelay", func() delay.Enumerator {
		e, err := EnumerateLinearDelay(db, qFC, nil)
		if err != nil {
			t.Fatal(err)
		}
		return e
	})
}

func TestEvalDeterministicSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	q := logictest.MustParseCQ("Q(x,w) :- R(x,y), S(y,z), T(z,w).")
	db := randomDB(rng, q, 20, 250)
	first, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("no answers; vacuous")
	}
	again, err := Eval(db, q)
	if err != nil {
		t.Fatal(err)
	}
	exactSequence(t, "Eval", again, first)
}

func TestRandomAccessDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	q := logictest.MustParseCQ("Q(x,y) :- A(x,y), B(y,z).")
	db := randomDB(rng, q, 25, 300)
	ra1, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	ra2, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if ra1.Count().Cmp(ra2.Count()) != 0 {
		t.Fatalf("counts differ: %s vs %s", ra1.Count(), ra2.Count())
	}
	n := ra1.Count().Int64()
	if n == 0 {
		t.Fatal("no answers; vacuous")
	}
	for i := int64(0); i < n; i++ {
		a, err := ra1.GetInt(i)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ra2.GetInt(i)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("index %d: %v vs %v — the access order is data-dependent but must be stable", i, a, b)
		}
	}
}

func TestRandomACQEnumerationDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 30; trial++ {
		q := randomACQ(rng)
		db := randomDB(rng, q, 6, 30)
		first, err := Eval(db, q)
		if err != nil {
			t.Fatal(err)
		}
		again, err := Eval(db, q)
		if err != nil {
			t.Fatal(err)
		}
		exactSequence(t, fmt.Sprintf("trial %d", trial), again, first)
		_ = database.Tuple{}
	}
}
