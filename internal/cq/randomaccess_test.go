package cq

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic/logictest"
)

func TestRandomAccessBasics(t *testing.T) {
	db := database.NewDatabase()
	a := database.NewRelation("A", 2)
	b := database.NewRelation("B", 2)
	for i := 0; i < 5; i++ {
		a.InsertValues(database.Value(i), database.Value(i%2))
		b.InsertValues(database.Value(i%2), database.Value(i))
	}
	db.AddRelation(a)
	db.AddRelation(b)
	q := logictest.MustParseCQ("Q(x,y,z) :- A(x,y), B(y,z).")
	ra, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	want := q.EvalNaive(db)
	if ra.Count().Cmp(big.NewInt(int64(len(want)))) != 0 {
		t.Fatalf("count = %s, want %d", ra.Count(), len(want))
	}
	// All indices produce distinct, valid answers.
	seen := map[string]bool{}
	wantSet := map[string]bool{}
	for _, w := range want {
		wantSet[w.FullKey()] = true
	}
	for i := int64(0); i < int64(len(want)); i++ {
		tup, err := ra.GetInt(i)
		if err != nil {
			t.Fatal(err)
		}
		k := tup.FullKey()
		if seen[k] {
			t.Fatalf("duplicate at index %d: %v", i, tup)
		}
		if !wantSet[k] {
			t.Fatalf("invalid answer at index %d: %v", i, tup)
		}
		seen[k] = true
	}
	// Out of range.
	if _, err := ra.GetInt(int64(len(want))); err == nil {
		t.Errorf("out-of-range index must fail")
	}
	if _, err := ra.GetInt(-1); err == nil {
		t.Errorf("negative index must fail")
	}
}

func TestRandomAccessDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	checked := 0
	for trial := 0; trial < 600 && checked < 120; trial++ {
		q := randomACQ(rng)
		if !q.IsFreeConnex() || len(q.Head) == 0 {
			continue
		}
		checked++
		db := randomDB(rng, q, 3, 8)
		ra, err := NewRandomAccess(db, q)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, q, err)
		}
		want := q.EvalNaive(db)
		if !ra.Count().IsInt64() || ra.Count().Int64() != int64(len(want)) {
			t.Fatalf("trial %d (%s): count %s want %d", trial, q, ra.Count(), len(want))
		}
		got := make([]database.Tuple, 0, len(want))
		for i := int64(0); i < int64(len(want)); i++ {
			tup, err := ra.GetInt(i)
			if err != nil {
				t.Fatalf("trial %d Get(%d): %v", trial, i, err)
			}
			got = append(got, tup.Clone())
		}
		equalAnswerSets(t, fmt.Sprintf("trial %d %s", trial, q), got, want)
	}
	if checked < 60 {
		t.Fatalf("too few free-connex samples: %d", checked)
	}
}

func TestRandomAccessBoolean(t *testing.T) {
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	e.InsertValues(1, 2)
	db.AddRelation(e)
	ra, err := NewRandomAccess(db, logictest.MustParseCQ("B() :- E(x,y)."))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Count().Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("Boolean count = %s", ra.Count())
	}
	tup, err := ra.GetInt(0)
	if err != nil || len(tup) != 0 {
		t.Fatalf("Boolean Get: %v, %v", tup, err)
	}
}

func TestRandomOrder(t *testing.T) {
	db := database.NewDatabase()
	a := database.NewRelation("A", 2)
	for i := 0; i < 20; i++ {
		a.InsertValues(database.Value(i), database.Value(i%4))
	}
	db.AddRelation(a)
	q := logictest.MustParseCQ("Q(x,y) :- A(x,y).")
	ra, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	e, err := ra.RandomOrder(rng)
	if err != nil {
		t.Fatal(err)
	}
	got := delay.Collect(e)
	// With high probability the random order differs from the index order
	// (checked before equalAnswerSets, which sorts got in place).
	inOrder := true
	for i := range got {
		tup, _ := ra.GetInt(int64(i))
		if !tup.Equal(got[i]) {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Errorf("random order equals index order (seed-dependent but very unlikely)")
	}
	want := q.EvalNaive(db)
	equalAnswerSets(t, "random order", got, want)
}

func TestRandomAccessRejectsNonFreeConnex(t *testing.T) {
	db := database.NewDatabase()
	db.AddRelation(database.NewRelation("A", 2))
	db.AddRelation(database.NewRelation("B", 2))
	if _, err := NewRandomAccess(db, logictest.MustParseCQ("Q(x,y) :- A(x,z), B(z,y).")); err == nil {
		t.Errorf("non-free-connex query must be rejected")
	}
}
