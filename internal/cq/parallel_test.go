package cq

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
	"repro/internal/logic/logictest"
)

var parDegrees = []int{1, 2, 4, 8}

// treeQueryDB builds a complete-binary-tree-shaped query of the given depth
// — E1(x1,x2), E2(x1,x3), E3(x2,x4), ... — with head {x1}, over random
// relations of relSize tuples. Sibling subtrees of its join tree are where
// the parallel engine's concurrency lives.
func treeQueryDB(rng *rand.Rand, depth, relSize, domSize int) (*logic.CQ, *database.Database) {
	q := &logic.CQ{Name: "T", Head: []string{"x1"}}
	db := database.NewDatabase()
	nodes := 1<<depth - 1
	for child := 2; child <= nodes; child++ {
		parent := child / 2
		name := fmt.Sprintf("E%d", child-1)
		q.Atoms = append(q.Atoms, logic.NewAtom(name,
			fmt.Sprintf("x%d", parent), fmt.Sprintf("x%d", child)))
		r := database.NewRelation(name, 2)
		for i := 0; i < relSize; i++ {
			r.InsertValues(database.Value(rng.Intn(domSize)+1), database.Value(rng.Intn(domSize)+1))
		}
		r.Dedup()
		db.AddRelation(r)
	}
	return q, db
}

func exactSequence(t *testing.T, label string, got, want []database.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d answers, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: answer %d: got %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestParEvalMatchesEvalFixedQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	queries := []string{
		"Q(x,w) :- R(x,y), S(y,z), T(z,w).",
		"Q(x,y) :- A(x,y), B(y,z).",
		"Q(x) :- R(x,y), R(y,x).",
		"Q(x,y,z) :- R(x,y), S(y,z).",
	}
	for _, qs := range queries {
		q := logictest.MustParseCQ(qs)
		db := randomDB(rng, q, 30, 200)
		want, err := Eval(db, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range parDegrees {
			got, err := ParEval(db, q, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			exactSequence(t, fmt.Sprintf("%s par=%d", qs, p), got, want)
		}
	}
}

func TestParEvalMatchesEvalRandomACQ(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		q := randomACQ(rng)
		if len(q.Head) == 0 {
			continue
		}
		db := randomDB(rng, q, 6, 25)
		want, err := Eval(db, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 4} {
			got, err := ParEval(db, q, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			exactSequence(t, fmt.Sprintf("trial %d par=%d", trial, p), got, want)
		}
	}
}

func TestParDecideMatchesDecide(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		q := randomACQ(rng)
		q.Head = nil // Boolean
		db := randomDB(rng, q, 5, 10)
		want, err := Decide(db, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range parDegrees {
			got, err := ParDecide(db, q, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d par=%d: ParDecide = %v, Decide = %v", trial, p, got, want)
			}
		}
	}
}

func TestParFullReduceMatchesFullReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := logictest.MustParseCQ("Q(x,w) :- R(x,y), S(y,z), T(z,w).")
	db := randomDB(rng, q, 40, 400)
	seq, err := BuildTree(db, q, false)
	if err != nil {
		t.Fatal(err)
	}
	okSeq := seq.FullReduce()
	for _, p := range parDegrees {
		par, err := BuildTree(db, q, false)
		if err != nil {
			t.Fatal(err)
		}
		okPar := par.ParFullReduce(p, nil)
		if okPar != okSeq {
			t.Fatalf("par=%d: ParFullReduce = %v, FullReduce = %v", p, okPar, okSeq)
		}
		for i := range seq.Rels {
			exactSequence(t, fmt.Sprintf("par=%d node %d", p, i),
				par.Rels[i].R.Tuples, seq.Rels[i].R.Tuples)
		}
	}
}

// TestParStepsEqualSequential checks the engine invariant advertised in the
// docs: on a nonempty join, parallelism changes wall time but not counted
// steps — the parallel engine performs exactly the sequential engine's
// relational operations and ticks at the same points.
func TestParStepsEqualSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	q, db := treeQueryDB(rng, 4, 3000, 80)
	cs := &delay.Counter{}
	want, err := EvalCounted(db, q, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("instance produced no answers; pick a denser one")
	}
	if cs.Steps() == 0 {
		t.Fatal("sequential engine counted no steps")
	}
	for _, p := range parDegrees {
		cp := &delay.Counter{}
		got, err := ParEval(db, q, p, cp)
		if err != nil {
			t.Fatal(err)
		}
		exactSequence(t, fmt.Sprintf("par=%d answers", p), got, want)
		if cp.Steps() != cs.Steps() {
			t.Errorf("par=%d: counted %d steps, sequential counted %d", p, cp.Steps(), cs.Steps())
		}
	}
}

// TestParEvalDeterministic runs the parallel engine repeatedly and demands
// the identical answer sequence every time, whatever the scheduling.
func TestParEvalDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q, db := treeQueryDB(rng, 3, 800, 40)
	first, err := ParEval(db, q, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		again, err := ParEval(db, q, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		exactSequence(t, fmt.Sprintf("round %d", round), again, first)
	}
}

func TestParEvalEmptyJoin(t *testing.T) {
	q := logictest.MustParseCQ("Q(x,y) :- A(x,y), B(y,z).")
	db := database.NewDatabase()
	a := database.NewRelation("A", 2)
	a.InsertValues(1, 2)
	b := database.NewRelation("B", 2)
	b.InsertValues(9, 9) // no y overlap: join is empty
	db.AddRelation(a)
	db.AddRelation(b)
	for _, p := range parDegrees {
		got, err := ParEval(db, q, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("par=%d: want no answers, got %v", p, got)
		}
		ok, err := ParDecide(db, &logic.CQ{Name: "B", Atoms: q.Atoms}, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("par=%d: ParDecide true on empty join", p)
		}
	}
}

func TestParEvalErrors(t *testing.T) {
	cyc := logictest.MustParseCQ("Q(x) :- R(x,y), S(y,z), T(z,x).")
	db := database.NewDatabase()
	if _, err := ParEval(db, cyc, 4, nil); err == nil {
		t.Error("ParEval accepted a cyclic query")
	}
	if _, err := ParDecide(db, cyc, 4, nil); err == nil {
		t.Error("ParDecide accepted a cyclic query")
	}
	q := logictest.MustParseCQ("Q(x) :- Missing(x,y).")
	if _, err := ParEval(db, q, 4, nil); err == nil {
		t.Error("ParEval accepted an unknown relation")
	}
}

func TestParallelismDefault(t *testing.T) {
	if Parallelism(0) < 1 || Parallelism(-3) < 1 {
		t.Error("Parallelism must default to at least one worker")
	}
	if Parallelism(5) != 5 {
		t.Error("explicit degree must be kept")
	}
}
