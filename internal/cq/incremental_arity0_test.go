package cq

import (
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic/logictest"
)

// arity0Instance builds the canonical arity-0-part shape: B shares no
// variable with the head, so the head-extended tree projects its subtree
// down to an arity-0 part (present iff B is nonempty after reduction).
func arity0Instance(t *testing.T) (*database.Database, *ConstRefresher, *OdometerCore) {
	t.Helper()
	q := logictest.MustParseCQ("Q(x) :- A(x), B(y).")
	db := database.NewDatabase()
	a := database.NewRelation("A", 1)
	for _, v := range []database.Value{1, 2, 3} {
		a.Insert(database.Tuple{v})
	}
	b := database.NewRelation("B", 1)
	b.Insert(database.Tuple{7})
	db.AddRelation(a)
	db.AddRelation(b)
	cr, core, err := NewConstRefresher(db, q)
	if err != nil {
		t.Fatalf("NewConstRefresher: %v", err)
	}
	return db, cr, core
}

// TestConstRefresherArity0Part pins the ROADMAP item 2 gap: deltas that
// flip an arity-0 part between {} and {()} used to make Apply decline
// unconditionally (forcing a rebuild); now they patch the core in place.
func TestConstRefresherArity0Part(t *testing.T) {
	db, cr, core := arity0Instance(t)

	answers := func() []database.Tuple { return delay.Collect(core.Cursor(nil)) }
	if got := answers(); len(got) != 3 {
		t.Fatalf("initial answers = %v, want 3", got)
	}

	dt := trackDeltas(db)

	// Kill the arity-0 part: its single empty tuple vanishes and every
	// answer dies with it.
	if !db.Relation("B").Delete(database.Tuple{7}) {
		t.Fatal("Delete removed nothing")
	}
	if !cr.Apply(dt.collect(t)) {
		t.Fatal("Apply declined the arity-0 delete (regression: rebuild fallback)")
	}
	if core.NonEmpty() {
		t.Fatal("core still NonEmpty with B empty")
	}
	if got := answers(); len(got) != 0 {
		t.Fatalf("answers = %v after emptying B, want none", got)
	}

	// Revive it with a different witness: the part flips back to {()}.
	db.Relation("B").Insert(database.Tuple{9})
	if !cr.Apply(dt.collect(t)) {
		t.Fatal("Apply declined the arity-0 insert")
	}
	if got := answers(); len(got) != 3 {
		t.Fatalf("answers = %v after reviving B, want 3", got)
	}

	// A second witness is absorbed by the multiset counters: no set-level
	// change, answers unchanged.
	db.Relation("B").Insert(database.Tuple{10})
	if !cr.Apply(dt.collect(t)) {
		t.Fatal("Apply declined the second witness insert")
	}
	if got := answers(); len(got) != 3 {
		t.Fatalf("answers = %v with two witnesses, want 3", got)
	}

	// Mutations on the non-trivial part still patch alongside.
	db.Relation("A").Insert(database.Tuple{4})
	if !cr.Apply(dt.collect(t)) {
		t.Fatal("Apply declined the A insert")
	}
	got := answers()
	fresh, err := PrepareConstantDelay(db, logictest.MustParseCQ("Q(x) :- A(x), B(y)."), nil)
	if err != nil {
		t.Fatalf("fresh prepare: %v", err)
	}
	equalAnswerSets(t, "after all arity-0 deltas", got, delay.Collect(fresh.Cursor(nil)))
}
