package database_test

// Micro-benchmarks for the index/probe layer: index construction, point
// lookups, and the semijoin built on them (sequential and parallel). Run
// with -benchmem; the lookup path is pinned allocation-free by
// TestLookupAllocs, and cmd/benchgate compares these numbers across
// branches in CI.

import (
	"math/rand"
	"testing"

	"repro/internal/database"
)

// benchRelation builds a deduplicated binary relation of about n tuples
// over a domain of dom values per column.
func benchRelation(name string, seed int64, n, dom int) *database.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := database.NewRelation(name, 2)
	for i := 0; i < n; i++ {
		r.InsertValues(database.Value(1+rng.Intn(dom)), database.Value(1+rng.Intn(dom)))
	}
	r.Dedup()
	return r
}

// freshView returns a relation sharing r's tuples but none of its cached
// indexes, so per-iteration index builds are really measured.
func freshView(r *database.Relation) *database.Relation {
	v := database.NewRelation(r.Name, r.Arity)
	v.Tuples = r.Tuples
	return v
}

const (
	benchN   = 1 << 16
	benchDom = 1 << 15
)

func BenchmarkIndexBuild(b *testing.B) {
	r := benchRelation("R", 1, benchN, benchDom)
	b.SetBytes(int64(r.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		freshView(r).IndexOn([]int{0})
	}
}

func BenchmarkIndexBuildPar(b *testing.B) {
	r := benchRelation("R", 1, benchN, benchDom)
	b.SetBytes(int64(r.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		freshView(r).ParIndexOn([]int{0}, 4)
	}
}

func BenchmarkLookup(b *testing.B) {
	r := benchRelation("R", 1, benchN, benchDom)
	probes := benchRelation("P", 2, 4096, benchDom)
	ix := r.IndexOn([]int{0})
	cols := []int{0}
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		t := probes.Tuples[i%probes.Len()]
		if len(ix.Lookup(t, cols)) > 0 {
			hits++
		}
	}
	_ = hits
}

func BenchmarkSemijoin(b *testing.B) {
	r := benchRelation("R", 1, benchN, benchDom)
	s := benchRelation("S", 2, benchN, benchDom)
	b.SetBytes(int64(r.Len() + s.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		database.Semijoin(freshView(r), []int{1}, freshView(s), []int{0})
	}
}

// BenchmarkSemijoinScalar and BenchmarkSemijoinBatch measure the same
// warm semijoin (index and slab prebuilt, probe pass + output assembly
// timed) on the scalar and the vectorized kernel; their ratio is the
// batching speedup that E22 sweeps across data shapes.
func BenchmarkSemijoinScalar(b *testing.B) {
	r := benchRelation("R", 1, benchN, benchDom)
	s := benchRelation("S", 2, benchN, benchDom)
	s.IndexOn([]int{0})
	b.SetBytes(int64(r.Len() + s.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		database.SemijoinScalar(r, []int{1}, s, []int{0})
	}
}

func BenchmarkSemijoinBatch(b *testing.B) {
	r := benchRelation("R", 1, benchN, benchDom)
	s := benchRelation("S", 2, benchN, benchDom)
	s.IndexOn([]int{0})
	b.SetBytes(int64(r.Len() + s.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		database.Semijoin(r, []int{1}, s, []int{0})
	}
}

// BenchmarkLookupBatch pins the warm batched probe path itself: tables and
// scratch buffers prebuilt, zero allocs/op (the batch analogue of
// BenchmarkLookup's pinned scalar probe).
func BenchmarkLookupBatch(b *testing.B) {
	r := benchRelation("R", 1, benchN, benchDom)
	s := benchRelation("S", 2, benchN, benchDom)
	ix := s.IndexOn([]int{0})
	sl := r.Slab()
	sc := database.GetScratch()
	defer sc.Release()
	cols := []int{1}
	ix.ContainsBatch(sl, cols, sc.Iota(r.Len()), sc) // warm tables and buffers
	b.SetBytes(int64(r.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.ContainsBatch(sl, cols, sc.Iota(r.Len()), sc)
	}
}

func BenchmarkSemijoinPar(b *testing.B) {
	r := benchRelation("R", 1, benchN, benchDom)
	s := benchRelation("S", 2, benchN, benchDom)
	b.SetBytes(int64(r.Len() + s.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		database.ParSemijoin(freshView(r), []int{1}, freshView(s), []int{0}, 4)
	}
}

func BenchmarkJoin(b *testing.B) {
	r := benchRelation("R", 1, benchN/4, benchDom)
	s := benchRelation("S", 2, benchN/4, benchDom)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		database.Join("J", freshView(r), []int{1}, freshView(s), []int{0})
	}
}
