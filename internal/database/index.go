package database

// The index layer: allocation-free hash indexes over columnar tuple slabs.
//
// A Relation freezes its tuples into a Slab — one flat []Value with
// arity-strided rows — and an Index groups row ids by a 64-bit fingerprint
// of the key columns. Buckets store row ids (int32) into the slab, so a
// probe performs no allocation: hash the probe columns, look the
// fingerprint up, compare the actual key columns of the bucketed rows to
// resolve fingerprint collisions exactly, and return a sub-slice of the
// index's row array. The RAM-model dictionaries of Section 2.3 (linear
// preprocessing, constant-time probes) are exactly this structure; keeping
// the probe free of allocation is what makes the constant factor small.

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Slab is a relation's frozen tuple storage: row i occupies
// data[i*arity : (i+1)*arity]. Rows returned by Row are views into the
// slab, never copies.
//
// The data may live in heap slices (the mutation-capable default) or alias
// read-only pages of an mmap-ed snapshot file (mapped set; see
// internal/snapshot and FromSlab in store.go). The distinction is
// invisible to every read path — probes, batch kernels, and index builds
// operate on the []Value either way — and the write paths (Append here,
// the mutation funnel in mutate.go) copy to heap before the first write.
type Slab struct {
	data   []Value
	arity  int
	mapped bool // data aliases read-only mapped snapshot pages
}

// Mapped reports whether the slab's storage aliases read-only mapped
// snapshot pages (and so must never be written through).
func (s Slab) Mapped() bool { return s.mapped }

// Row returns row i as a tuple view into the slab.
func (s Slab) Row(i int32) Tuple {
	a := int(i) * s.arity
	return Tuple(s.data[a : a+s.arity])
}

// Len returns the number of rows.
func (s Slab) Len() int {
	if s.arity == 0 {
		return 0
	}
	return len(s.data) / s.arity
}

// Append adds a row to the slab and returns the grown slab together with
// the new row's id. The original slab value is untouched (append copies
// when the backing array is full, and freshly built slabs have no spare
// capacity), so existing row views stay valid; delta refresh uses this to
// extend a bound spine's storage without rebuilding it.
func (s Slab) Append(t Tuple) (Slab, int32) {
	if s.arity == 0 || len(t) != s.arity {
		panic(fmt.Sprintf("database: slab append: arity %d, got tuple of length %d", s.arity, len(t)))
	}
	if s.mapped {
		// Mapped pages are read-only; copy to heap before the first write.
		// (The mapped slice's len equals its cap, so append would reallocate
		// anyway — this makes the copy-on-write explicit and unconditional.)
		s.data = append([]Value(nil), s.data...)
		s.mapped = false
	}
	id := int32(s.Len())
	s.data = append(s.data, t...)
	return s, id
}

// Full reports whether the slab has reached the int32 row-id capacity.
func (s Slab) Full() bool { return s.Len() >= maxRows }

// Slab returns the relation's columnar slab, building and caching it on
// first use. The slab is invalidated by mutations, like the indexes.
func (r *Relation) Slab() Slab {
	if p := r.slabPtr.Load(); p != nil {
		return *p
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.slabLocked()
}

// slabLocked is Slab with r.mu already held. Relations grown past the int32
// row-id range fail loudly here — the choke point of every slab and index
// build — instead of letting the int32 conversions truncate: the internal
// relational operations (Project, Join, ...) append to Tuples directly, so
// the TryInsert guard alone cannot bound them.
func (r *Relation) slabLocked() Slab {
	if p := r.slabPtr.Load(); p != nil {
		return *p
	}
	if len(r.Tuples) > maxRows {
		panic(fmt.Sprintf("database: relation %s has %d rows; row ids are int32, max %d", r.Name, len(r.Tuples), maxRows))
	}
	s := Slab{arity: r.Arity, data: make([]Value, len(r.Tuples)*r.Arity)}
	for i, t := range r.Tuples {
		copy(s.data[i*r.Arity:(i+1)*r.Arity], t)
	}
	r.slabPtr.Store(&s)
	return s
}

// Row returns tuple i as a view into the relation's slab.
func (r *Relation) Row(i int) Tuple { return r.Slab().Row(int32(i)) }

// CompactSlab rebuilds the relation's row storage from the live rows of
// sl, reclaiming the slots tombstoned by delete churn: Slab.Append-grown
// storage is never shrunk by deletes — the incremental refreshers abandon
// slots, so under sustained delete/insert churn a spine slab only grows.
// live lists the surviving row ids in ascending order; the result is a
// fresh dense slab whose row i is a copy of sl.Row(live[i]), installed as
// the relation's storage together with rebuilt tuple views. The returned
// remap translates old row ids to new ones (-1 for dead rows), for
// Index.Rebase and refresher bookkeeping. The relation's generation is
// untouched — the live tuple set is identical, only its layout moved — so
// the caller must itself rebase every holder of old row ids (indexes,
// position maps) before publishing the new slab.
func (r *Relation) CompactSlab(sl Slab, live []int32) (Slab, []int32) {
	if sl.arity == 0 {
		panic("database: CompactSlab on arity-0 slab")
	}
	ns := Slab{arity: sl.arity, data: make([]Value, len(live)*sl.arity)}
	remap := make([]int32, sl.Len())
	for i := range remap {
		remap[i] = -1
	}
	tuples := make([]Tuple, len(live))
	for i, id := range live {
		copy(ns.data[i*sl.arity:(i+1)*sl.arity], sl.Row(id))
		remap[id] = int32(i)
		tuples[i] = ns.Row(int32(i))
	}
	r.mu.Lock()
	r.Tuples = tuples
	r.indexes = nil
	r.indexesBig = nil
	r.sorted = false
	r.mapped = false // the compacted slab is a heap copy
	r.slabPtr.Store(&ns)
	r.mu.Unlock()
	return ns, remap
}

// --- fingerprints -----------------------------------------------------

const keyHashSeed uint64 = 0x9e3779b97f4a7c15

// foldHash mixes one value into a running fingerprint with a 128-bit
// multiply (wyhash-style); one multiplication per column, no allocation.
func foldHash(h uint64, v Value) uint64 {
	hi, lo := bits.Mul64(h^uint64(v), 0xa0761d6478bd642f)
	return hi ^ lo
}

// KeyHash returns a 64-bit fingerprint of t's projection onto cols. Equal
// projections always collide; distinct projections collide with
// probability ~2^-64 and every index resolves such collisions exactly by
// comparing the real key columns.
func (t Tuple) KeyHash(cols []int) uint64 {
	h := keyHashSeed ^ uint64(len(cols))
	for _, c := range cols {
		h = foldHash(h, t[c])
	}
	return h
}

// keyHashFunc abstracts the fingerprint function so tests can force
// collisions; production indexes always use Tuple.KeyHash.
type keyHashFunc func(t Tuple, cols []int) uint64

func defaultKeyHash(t Tuple, cols []int) uint64 { return t.KeyHash(cols) }

// testIndexHash, when non-nil, replaces the default fingerprint in every
// subsequent IndexOn/ParIndexOn build. In-package tests inject degraded
// hashes directly through buildIndex; this process-wide hook exists for
// the cross-package differential suites (internal/snapshot, internal/plan)
// that must degrade whole-engine runs they cannot reach into.
var testIndexHash atomic.Pointer[keyHashFunc]

// SetIndexHashForTesting forces every subsequent index build process-wide
// onto the given fingerprint function and returns a restore func. A
// degraded hash (a handful of fingerprints for the whole domain) drives
// the exact collision-resolution paths that the 2^-64 default never
// exercises. Answers and counted steps must be identical under any hash —
// the differential suites inject one to prove it. Not for production use;
// concurrent index builds observe the swap racily.
func SetIndexHashForTesting(hash func(Tuple, []int) uint64) (restore func()) {
	var h keyHashFunc
	if hash != nil {
		h = hash
		testIndexHash.Store(&h)
	} else {
		testIndexHash.Store(nil)
	}
	return func() { testIndexHash.Store(nil) }
}

// identCols[:k] is the identity column list [0..k); shared so full-arity
// probes need not allocate one.
var identCols = func() []int {
	c := make([]int, 64)
	for i := range c {
		c[i] = i
	}
	return c
}()

func identityCols(arity int) []int {
	if arity <= len(identCols) {
		return identCols[:arity]
	}
	c := make([]int, arity)
	for i := range c {
		c[i] = i
	}
	return c
}

// colsSig packs a column list into one uint64 — 4 bits of length, 7 bits
// per column — as the index-cache key, replacing the old fmt.Sprint
// signature (reflection plus an allocation under the relation mutex).
// Lists longer than 8 columns or with column numbers ≥ 126 fall back to a
// byte-string signature (colsSigBig).
func colsSig(cols []int) (uint64, bool) {
	if len(cols) > 8 {
		return 0, false
	}
	sig := uint64(len(cols))
	for i, c := range cols {
		if c >= 126 {
			return 0, false
		}
		sig |= uint64(c+1) << (4 + 7*i)
	}
	return sig, true
}

func colsSigBig(cols []int) string {
	b := make([]byte, 0, 2*len(cols))
	for _, c := range cols {
		b = append(b, byte(c), byte(c>>8))
	}
	return string(b)
}

// --- the index --------------------------------------------------------

// span is one bucket: rows [off, off+n) of its shard's row array, all
// sharing a single key-column projection.
type span struct{ off, n int32 }

// shard holds the buckets of the fingerprints routed to it. buckets maps a
// fingerprint to its first bucket; in the (cosmically rare) event that two
// distinct keys share a fingerprint, the extra buckets live in overflow.
type shard struct {
	buckets  map[uint64]span
	rows     []int32
	overflow map[uint64][]span
}

// Index is a hash index of a relation's tuples keyed on a column subset.
// Buckets hold row ids into the relation's Slab, grouped by the exact key
// projection (fingerprint collisions are resolved at build time), and are
// partitioned into one or more fingerprint-disjoint shards: a sequential
// build produces a single shard, a parallel build (ParIndexOn) one shard
// per worker. After construction the index is read-only, so lookups from
// many goroutines need no locking, and the probe path performs zero
// allocations.
type Index struct {
	Cols  []int
	slab  Slab
	hash  keyHashFunc
	fast  bool // hash is the default fingerprint, so Slab.HashCols applies
	mask  uint32
	waste int // row slots abandoned by AddRow relocations and RemoveRow shrinks

	// state holds the bucket layout, plus the lazily built flat probe
	// tables of the batch kernels, behind one atomic pointer: Compact and
	// the lazy table build swap in a whole new layout while concurrent
	// readers keep a consistent view of the old one.
	state   atomic.Pointer[indexState]
	tableMu sync.Mutex // serializes lazy table builds and Compact swaps
}

// indexState is one immutable-together snapshot of an index's layout.
// tables (when non-nil) is derived from exactly these shards; bundling
// them keeps a reader from pairing fresh tables with stale spans.
type indexState struct {
	shards []shard
	tables []probeTable // one per shard; nil until a batched probe builds them
}

// keyEq reports whether the indexed row's key columns equal the probe's
// probeCols projection.
func (ix *Index) keyEq(row int32, probe Tuple, probeCols []int) bool {
	t := ix.slab.Row(row)
	for i, c := range ix.Cols {
		if t[c] != probe[probeCols[i]] {
			return false
		}
	}
	return true
}

// Lookup returns the ids of all rows whose key columns equal probe's
// projection onto probeCols (aligned with the index's Cols). The returned
// slice aliases the index's row array; it is valid until the index is
// garbage collected and must not be modified. Lookup allocates nothing.
func (ix *Index) Lookup(probe Tuple, probeCols []int) []int32 {
	fp := ix.hash(probe, probeCols)
	sh := &ix.state.Load().shards[uint32(fp)&ix.mask]
	sp, ok := sh.buckets[fp]
	if !ok {
		return nil
	}
	if ix.keyEq(sh.rows[sp.off], probe, probeCols) {
		return sh.rows[sp.off : sp.off+sp.n : sp.off+sp.n]
	}
	for _, sp := range sh.overflow[fp] {
		if ix.keyEq(sh.rows[sp.off], probe, probeCols) {
			return sh.rows[sp.off : sp.off+sp.n : sp.off+sp.n]
		}
	}
	return nil
}

// LookupRow returns the first indexed row matching probe on probeCols, as
// a view into the slab. It allocates nothing.
func (ix *Index) LookupRow(probe Tuple, probeCols []int) (Tuple, bool) {
	ids := ix.Lookup(probe, probeCols)
	if len(ids) == 0 {
		return nil, false
	}
	return ix.slab.Row(ids[0]), true
}

// Contains reports whether some indexed row matches probe on probeCols.
func (ix *Index) Contains(probe Tuple, probeCols []int) bool {
	return len(ix.Lookup(probe, probeCols)) > 0
}

// Row resolves a row id returned by Lookup to its tuple view.
func (ix *Index) Row(id int32) Tuple { return ix.slab.Row(id) }

// Buckets returns the number of distinct keys in the index.
func (ix *Index) Buckets() int {
	shards := ix.state.Load().shards
	n := 0
	for i := range shards {
		n += len(shards[i].buckets)
		for _, sps := range shards[i].overflow {
			n += len(sps)
		}
	}
	return n
}

// buildIndex constructs the index over tuples (backed by sl) keyed on
// cols, with the fingerprint pass and the shard builds fanned out over par
// workers when par ≥ 2. A nil hash selects the default fingerprint
// (Tuple.KeyHash) and additionally enables the batched slab-hashing
// kernel; tests inject a degraded hash to force collisions.
func buildIndex(tuples []Tuple, cols []int, sl Slab, par int, hash keyHashFunc) *Index {
	fast := hash == nil
	if fast {
		hash = defaultKeyHash
	}
	if par > runtime.GOMAXPROCS(0) {
		par = runtime.GOMAXPROCS(0)
	}
	if par < 1 {
		par = 1
	}
	shardCount := 1
	for shardCount < par {
		shardCount <<= 1
	}
	n := len(tuples)
	fps := make([]uint64, n)
	if par < 2 || n < 1024 {
		for i, t := range tuples {
			fps[i] = hash(t, cols)
		}
	} else {
		var wg sync.WaitGroup
		chunk := (n + par - 1) / par
		for w := 0; w < par; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					fps[i] = hash(tuples[i], cols)
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	ix := &Index{
		Cols: append([]int(nil), cols...),
		slab: sl,
		hash: hash,
		fast: fast,
		mask: uint32(shardCount - 1),
	}
	shards := make([]shard, shardCount)
	if shardCount == 1 {
		shards[0] = ix.buildShard(fps, 0)
	} else {
		var wg sync.WaitGroup
		for s := 0; s < shardCount; s++ {
			wg.Add(1)
			go func(s uint32) {
				defer wg.Done()
				shards[s] = ix.buildShard(fps, s)
			}(uint32(s))
		}
		wg.Wait()
	}
	ix.state.Store(&indexState{shards: shards})
	return ix
}

// buildShard builds the CSR bucket layout for the rows whose fingerprint
// routes to shard s: assign each distinct fingerprint a dense id, count,
// prefix-sum, fill, then split any bucket that mixes distinct true keys
// (a real fingerprint collision) into per-key groups.
func (ix *Index) buildShard(fps []uint64, s uint32) shard {
	idOf := make(map[uint64]int32)
	var counts []int32
	var mine, ids []int32
	for i, fp := range fps {
		if uint32(fp)&ix.mask != s {
			continue
		}
		id, ok := idOf[fp]
		if !ok {
			id = int32(len(counts))
			idOf[fp] = id
			counts = append(counts, 0)
		}
		mine = append(mine, int32(i))
		ids = append(ids, id)
		counts[id]++
	}
	offs := make([]int32, len(counts))
	var off int32
	for id, c := range counts {
		offs[id] = off
		off += c
	}
	rows := make([]int32, len(mine))
	cur := make([]int32, len(counts))
	for k, rowID := range mine {
		id := ids[k]
		rows[offs[id]+cur[id]] = rowID
		cur[id]++
	}
	buckets := make(map[uint64]span, len(counts))
	for fp, id := range idOf {
		buckets[fp] = span{offs[id], counts[id]}
	}
	sh := shard{buckets: buckets, rows: rows}
	// Exactness pass: a fingerprint bucket must hold a single true key.
	for fp, sp := range buckets {
		if sp.n > 1 && !ix.uniformKey(sh.rows, sp) {
			groups := ix.splitSpan(sh.rows, sp)
			buckets[fp] = groups[0]
			if sh.overflow == nil {
				sh.overflow = make(map[uint64][]span)
			}
			sh.overflow[fp] = groups[1:]
		}
	}
	return sh
}

// uniformKey reports whether every row of the span agrees with the first
// on the key columns.
func (ix *Index) uniformKey(rows []int32, sp span) bool {
	first := ix.slab.Row(rows[sp.off])
	for i := sp.off + 1; i < sp.off+sp.n; i++ {
		t := ix.slab.Row(rows[i])
		for _, c := range ix.Cols {
			if t[c] != first[c] {
				return false
			}
		}
	}
	return true
}

// splitSpan stably regroups a colliding span's rows by their true key and
// rewrites them back in group order, returning one sub-span per key.
func (ix *Index) splitSpan(rows []int32, sp span) []span {
	orig := append([]int32(nil), rows[sp.off:sp.off+sp.n]...)
	var groups [][]int32
next:
	for _, rowID := range orig {
		t := ix.slab.Row(rowID)
		for g, grp := range groups {
			rep := ix.slab.Row(grp[0])
			same := true
			for _, c := range ix.Cols {
				if t[c] != rep[c] {
					same = false
					break
				}
			}
			if same {
				groups[g] = append(grp, rowID)
				continue next
			}
		}
		groups = append(groups, []int32{rowID})
	}
	spans := make([]span, len(groups))
	off := sp.off
	for g, grp := range groups {
		copy(rows[off:], grp)
		spans[g] = span{off, int32(len(grp))}
		off += int32(len(grp))
	}
	return spans
}

// --- in-place patching ------------------------------------------------
//
// Delta refresh (plan.Prepared.Refresh) patches a bound index instead of
// rebuilding it: inserted rows are appended to the slab and routed into
// their bucket, deleted rows are cut out of theirs. Lookup's contract —
// one contiguous, allocation-free sub-slice per key — is preserved by
// relocating a bucket to the tail of the shard's row array when it cannot
// grow in place; the abandoned slots are tracked in waste so the consumer
// can fall back to a rebuild once the layout degrades too far. Patching
// is NOT safe concurrently with lookups; the refresh path serializes
// both.

// SetSlab repoints the index at a grown slab (from Slab.Append). The new
// slab must extend the indexed one: existing row ids must resolve to the
// same tuples.
func (ix *Index) SetSlab(s Slab) { ix.slab = s }

// Waste returns the number of abandoned row slots accumulated by AddRow
// relocations and RemoveRow shrinks — a proxy for layout degradation.
func (ix *Index) Waste() int { return ix.waste }

// patchState returns the layout about to be patched in place, first
// dropping any derived probe tables (their spans are about to go stale).
// Callers are serialized with lookups per the patching contract above.
func (ix *Index) patchState() *indexState {
	st := ix.state.Load()
	if st.tables != nil {
		st = &indexState{shards: st.shards}
		ix.state.Store(st)
	}
	return st
}

// AddRow routes slab row id into its bucket, creating the bucket if the
// key is new. The row must already be present in the slab (SetSlab first
// when it was just appended).
func (ix *Index) AddRow(id int32) {
	t := ix.slab.Row(id)
	fp := ix.hash(t, ix.Cols)
	sh := &ix.patchState().shards[uint32(fp)&ix.mask]
	sp, ok := sh.buckets[fp]
	if !ok {
		sh.rows = append(sh.rows, id)
		sh.buckets[fp] = span{int32(len(sh.rows) - 1), 1}
		return
	}
	if ix.keyEq(sh.rows[sp.off], t, ix.Cols) {
		sh.buckets[fp] = ix.appendToSpan(sh, sp, id)
		return
	}
	for i, osp := range sh.overflow[fp] {
		if ix.keyEq(sh.rows[osp.off], t, ix.Cols) {
			sh.overflow[fp][i] = ix.appendToSpan(sh, osp, id)
			return
		}
	}
	// New key whose fingerprint collides with an existing one.
	sh.rows = append(sh.rows, id)
	if sh.overflow == nil {
		sh.overflow = make(map[uint64][]span)
	}
	sh.overflow[fp] = append(sh.overflow[fp], span{int32(len(sh.rows) - 1), 1})
}

// appendToSpan grows a bucket by one row: in place when the span already
// sits at the tail of the shard's row array, otherwise by relocating the
// whole bucket to the tail (keeping it contiguous for Lookup) and
// abandoning the old slots.
func (ix *Index) appendToSpan(sh *shard, sp span, id int32) span {
	if int(sp.off+sp.n) == len(sh.rows) {
		sh.rows = append(sh.rows, id)
		return span{sp.off, sp.n + 1}
	}
	off := int32(len(sh.rows))
	sh.rows = append(sh.rows, sh.rows[sp.off:sp.off+sp.n]...)
	sh.rows = append(sh.rows, id)
	ix.waste += int(sp.n)
	return span{off, sp.n + 1}
}

// RemoveRow cuts slab row id out of its bucket, reporting whether it was
// found. The bucket shrinks in place (the removed slot is swapped with
// the bucket's last and abandoned); an emptied bucket is deleted, with
// any fingerprint-colliding overflow span promoted in its place.
func (ix *Index) RemoveRow(id int32) bool {
	t := ix.slab.Row(id)
	fp := ix.hash(t, ix.Cols)
	sh := &ix.patchState().shards[uint32(fp)&ix.mask]
	sp, ok := sh.buckets[fp]
	if !ok {
		return false
	}
	if cut, found := ix.cutFromSpan(sh, sp, id); found {
		if cut.n == 0 {
			if ovs := sh.overflow[fp]; len(ovs) > 0 {
				sh.buckets[fp] = ovs[0]
				if len(ovs) == 1 {
					delete(sh.overflow, fp)
				} else {
					sh.overflow[fp] = ovs[1:]
				}
			} else {
				delete(sh.buckets, fp)
			}
		} else {
			sh.buckets[fp] = cut
		}
		return true
	}
	for i, osp := range sh.overflow[fp] {
		if cut, found := ix.cutFromSpan(sh, osp, id); found {
			if cut.n == 0 {
				ovs := sh.overflow[fp]
				sh.overflow[fp] = append(ovs[:i], ovs[i+1:]...)
				if len(sh.overflow[fp]) == 0 {
					delete(sh.overflow, fp)
				}
			} else {
				sh.overflow[fp][i] = cut
			}
			return true
		}
	}
	return false
}

// cutFromSpan removes id from the span if present, swapping it with the
// span's last row and shrinking by one.
func (ix *Index) cutFromSpan(sh *shard, sp span, id int32) (span, bool) {
	for i := sp.off; i < sp.off+sp.n; i++ {
		if sh.rows[i] == id {
			sh.rows[i] = sh.rows[sp.off+sp.n-1]
			ix.waste++
			return span{sp.off, sp.n - 1}, true
		}
	}
	return sp, false
}

// Compact rebuilds every shard's row array with the buckets laid out
// contiguously, reclaiming the slots abandoned by AddRow relocations and
// RemoveRow shrinks. Row ids are untouched — only the CSR layout changes —
// so refresher state keyed on slab rows stays valid. The rebuilt layout is
// swapped in atomically: Compact is safe concurrently with lookups (in-
// flight bucket slices keep aliasing the old row array, which stays
// intact), but like AddRow/RemoveRow it must be serialized with other
// patching; plan.Cache runs both under its own lock. Returns the number of
// reclaimed slots.
func (ix *Index) Compact() int {
	if ix.waste == 0 {
		return 0
	}
	ix.tableMu.Lock()
	defer ix.tableMu.Unlock()
	old := ix.state.Load().shards
	shards := make([]shard, len(old))
	for i := range old {
		shards[i] = compactShard(&old[i])
	}
	reclaimed := ix.waste
	ix.waste = 0
	ix.state.Store(&indexState{shards: shards})
	return reclaimed
}

// Rebase returns a new index over a compacted slab: remap translates every
// old slab row id to its new id, as produced by Relation.CompactSlab.
// Bucket structure — the fingerprint → key grouping, each bucket's content
// order, overflow chains — is preserved exactly, so an enumeration pass
// over the rebased index visits rows in the same order as over the
// original; only the ids and the (now dense) CSR layout change. The
// receiver is left fully intact, keeping in-flight cursors over the old
// slab valid.
func (ix *Index) Rebase(sl Slab, remap []int32) *Index {
	nix := &Index{Cols: ix.Cols, slab: sl, hash: ix.hash, fast: ix.fast, mask: ix.mask}
	old := ix.state.Load().shards
	shards := make([]shard, len(old))
	for i := range old {
		ns := compactShard(&old[i])
		for k, id := range ns.rows {
			ns.rows[k] = remap[id]
		}
		shards[i] = ns
	}
	nix.state.Store(&indexState{shards: shards})
	return nix
}

// compactShard rewrites one shard's buckets into a dense row array.
func compactShard(sh *shard) shard {
	live := 0
	for _, sp := range sh.buckets {
		live += int(sp.n)
	}
	for _, sps := range sh.overflow {
		for _, sp := range sps {
			live += int(sp.n)
		}
	}
	rows := make([]int32, 0, live)
	buckets := make(map[uint64]span, len(sh.buckets))
	for fp, sp := range sh.buckets {
		buckets[fp] = span{int32(len(rows)), sp.n}
		rows = append(rows, sh.rows[sp.off:sp.off+sp.n]...)
	}
	var overflow map[uint64][]span
	if len(sh.overflow) > 0 {
		overflow = make(map[uint64][]span, len(sh.overflow))
		for fp, sps := range sh.overflow {
			nsps := make([]span, len(sps))
			for i, sp := range sps {
				nsps[i] = span{int32(len(rows)), sp.n}
				rows = append(rows, sh.rows[sp.off:sp.off+sp.n]...)
			}
			overflow[fp] = nsps
		}
	}
	return shard{buckets: buckets, rows: rows, overflow: overflow}
}

// --- KeyMap -----------------------------------------------------------

// KeyMap assigns dense ids [0, Len) to the distinct key-column
// projections of interned tuples. It is the fingerprint analogue of a
// map[string]T keyed on Tuple.Key: collisions are resolved exactly by
// comparing materialized key values, and Find (the probe path) allocates
// nothing. The counting DP of Theorem 4.21 stores its per-separator sums
// in slices indexed by KeyMap ids.
type KeyMap struct {
	cols []int
	m    map[uint64]int32
	keys []Tuple // materialized projection per id
	next []int32 // collision chain: next id with the same fingerprint, or -1
}

// NewKeyMap creates a KeyMap grouping tuples on the given columns.
func NewKeyMap(cols []int) *KeyMap {
	return &KeyMap{cols: append([]int(nil), cols...), m: make(map[uint64]int32)}
}

// Len returns the number of distinct keys interned so far.
func (km *KeyMap) Len() int { return len(km.keys) }

// Key returns the materialized projection of id.
func (km *KeyMap) Key(id int) Tuple { return km.keys[id] }

// Find returns the id of t's projection onto probeCols (aligned with the
// map's columns), or -1. probeCols may differ from the interning columns;
// pass km.Cols-aligned columns of the probing tuple.
func (km *KeyMap) Find(t Tuple, probeCols []int) int {
	fp := t.KeyHash(probeCols)
	id, ok := km.m[fp]
	if !ok {
		return -1
	}
	for {
		k := km.keys[id]
		same := true
		for i := range probeCols {
			if k[i] != t[probeCols[i]] {
				same = false
				break
			}
		}
		if same {
			return int(id)
		}
		if km.next[id] < 0 {
			return -1
		}
		id = km.next[id]
	}
}

// Intern returns the id of t's projection onto the map's columns, adding
// it if new.
func (km *KeyMap) Intern(t Tuple) int {
	if id := km.Find(t, km.cols); id >= 0 {
		return id
	}
	key := make(Tuple, len(km.cols))
	for i, c := range km.cols {
		key[i] = t[c]
	}
	id := int32(len(km.keys))
	km.keys = append(km.keys, key)
	km.next = append(km.next, -1)
	fp := t.KeyHash(km.cols)
	if first, ok := km.m[fp]; ok {
		// Walk to the chain tail (collisions are ~nonexistent).
		at := first
		for km.next[at] >= 0 {
			at = km.next[at]
		}
		km.next[at] = id
	} else {
		km.m[fp] = id
	}
	return int(id)
}
