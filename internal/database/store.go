package database

// The storage seam between relations and the out-of-core snapshot layer
// (internal/snapshot). A relation's columnar storage can come from two
// places: heap slices built by slabLocked (today's mutation-capable path),
// or read-only pages of an mmap-ed snapshot file installed wholesale via
// FromSlab. The seam is deliberately narrow — a spec struct in, a relation
// out, plus dump/restore of the CSR index layout and the dictionary — so
// the snapshot package never touches Relation internals and the engines
// never learn where their slabs live. Mapped relations promote themselves
// to heap storage on first mutation (see promoteLocked in mutate.go), so
// the delta-log/refresh machinery works unchanged on either backing.

import (
	"fmt"
	"sort"
)

// SlabSpec describes a relation to be installed from prebuilt columnar
// storage. Data holds the rows arity-strided (row i at Data[i*Arity:]);
// it may alias read-only mapped memory, in which case Mapped must be set
// so the relation copies it to heap before the first mutation. Gen seeds
// the relation's mutation counter, so a restored database reproduces the
// original's Generation and previously minted plans/cursors stay valid.
type SlabSpec struct {
	Name   string
	Arity  int
	Rows   int
	Data   []Value
	Sorted bool
	Mapped bool
	Gen    uint64
}

// FromSlab builds a relation directly over prebuilt columnar storage: the
// slab is installed as-is and the Tuples become views into it, exactly the
// layout slabLocked would have produced — so every engine, index build,
// and batch kernel runs unchanged over a restored relation. No tuple data
// is copied; a Mapped spec defers the copy to the first mutation.
func FromSlab(spec SlabSpec) (*Relation, error) {
	if spec.Arity < 0 || spec.Rows < 0 {
		return nil, fmt.Errorf("database: FromSlab %s: negative arity or rows", spec.Name)
	}
	if spec.Rows > maxRows {
		return nil, fmt.Errorf("database: FromSlab %s: %d rows; row ids are int32, max %d", spec.Name, spec.Rows, maxRows)
	}
	if len(spec.Data) != spec.Rows*spec.Arity {
		return nil, fmt.Errorf("database: FromSlab %s: %d values for %d rows of arity %d",
			spec.Name, len(spec.Data), spec.Rows, spec.Arity)
	}
	r := NewRelation(spec.Name, spec.Arity)
	r.Tuples = make([]Tuple, spec.Rows)
	if spec.Arity == 0 {
		// Arity-0 relations have no columnar payload; their tuples are the
		// empty tuple and the heap path handles them throughout.
		for i := range r.Tuples {
			r.Tuples[i] = Tuple{}
		}
	} else {
		sl := Slab{data: spec.Data, arity: spec.Arity, mapped: spec.Mapped}
		for i := range r.Tuples {
			r.Tuples[i] = sl.Row(int32(i))
		}
		r.slabPtr.Store(&sl)
		r.mapped = spec.Mapped
	}
	r.sorted = spec.Sorted
	r.gen.Store(spec.Gen)
	return r, nil
}

// Sorted reports whether the relation is known sorted (established by
// Sort/Dedup, cleared by inserts). The snapshot writer persists the flag
// so a restored relation keeps its binary-search Contains path.
func (r *Relation) Sorted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sorted
}

// Mapped reports whether the relation's storage still aliases read-only
// mapped snapshot pages. It flips to false on the first mutation, when the
// relation promotes itself to heap storage (copy-on-write).
func (r *Relation) Mapped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mapped
}

// StructuralGen returns the database's structural mutation counter (the
// AddRelation count that Generation shifts past the per-relation sum).
// The snapshot layer persists it so a restored database reproduces the
// original's Generation exactly.
func (db *Database) StructuralGen() uint64 { return db.mutGen.Load() }

// SetStructuralGen seeds the structural counter of a freshly restored
// database. It must only be called before the database is shared.
func (db *Database) SetStructuralGen(g uint64) { db.mutGen.Store(g) }

// Names returns the interned names in value order: Names()[i] is the name
// of Value(i+1). Persisting this slice and replaying it through
// DictionaryFromNames reproduces the dictionary with identical value ids.
func (d *Dictionary) Names() []string {
	return append([]string(nil), d.toName...)
}

// DictionaryFromNames rebuilds a dictionary from a Names slice, interning
// in order so value ids round-trip. A duplicated name is corruption (Intern
// never hands out two ids for one name) and is rejected.
func DictionaryFromNames(names []string) (*Dictionary, error) {
	d := NewDictionary()
	for _, n := range names {
		if _, ok := d.toValue[n]; ok {
			return nil, fmt.Errorf("database: dictionary restore: duplicate name %q", n)
		}
		d.toName = append(d.toName, n)
		d.toValue[n] = Value(len(d.toName))
	}
	return d, nil
}

// --- CSR index dump/restore -------------------------------------------

// IndexCSR is the serializable layout of a single-shard hash index: the
// bucket row array plus one (fingerprint, span) triple per bucket, sorted
// by fingerprint. A fingerprint that holds several distinct true keys (a
// real 64-bit collision, or a degraded test hash) appears once per key —
// the first occurrence restores as the primary bucket, the rest as its
// overflow chain, preserving probe order.
type IndexCSR struct {
	Cols []int
	Rows []int32
	FPs  []uint64
	Offs []int32
	Lens []int32
}

// DumpIndex builds a fresh single-shard index on cols with the default
// fingerprint and returns its CSR layout in deterministic (fingerprint-
// sorted) order. The build is not cached: snapshot writing must not
// perturb the relation's warm index cache, and a cached index may be
// sharded (ParIndexOn) or test-hashed, neither of which serializes.
func (r *Relation) DumpIndex(cols []int) IndexCSR {
	r.mu.Lock()
	sl := r.slabLocked()
	tuples := r.Tuples
	r.mu.Unlock()
	ix := buildIndex(tuples, cols, sl, 1, nil)
	sh := &ix.state.Load().shards[0]
	c := IndexCSR{
		Cols: append([]int(nil), cols...),
		Rows: append([]int32(nil), sh.rows...),
	}
	fps := make([]uint64, 0, len(sh.buckets))
	for fp := range sh.buckets {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	for _, fp := range fps {
		sp := sh.buckets[fp]
		c.FPs = append(c.FPs, fp)
		c.Offs = append(c.Offs, sp.off)
		c.Lens = append(c.Lens, sp.n)
		for _, osp := range sh.overflow[fp] {
			c.FPs = append(c.FPs, fp)
			c.Offs = append(c.Offs, osp.off)
			c.Lens = append(c.Lens, osp.n)
		}
	}
	return c
}

// RestoreIndex installs a prebuilt CSR layout (as produced by DumpIndex)
// into the relation's index cache, skipping the linear-time build. Bounds
// are validated — row ids must resolve inside the relation, spans inside
// the row array — so corrupt input yields an error, never a panic; the
// grouping itself is trusted, which is why the snapshot layer only calls
// this after the section checksum verifies. The restored index uses the
// default fingerprint and is indistinguishable from an IndexOn build.
func (r *Relation) RestoreIndex(c IndexCSR) error {
	for _, col := range c.Cols {
		if col < 0 || col >= r.Arity {
			return fmt.Errorf("database: restore index on %s: column %d out of arity %d", r.Name, col, r.Arity)
		}
	}
	if len(c.FPs) != len(c.Offs) || len(c.FPs) != len(c.Lens) {
		return fmt.Errorf("database: restore index on %s: bucket arrays disagree: %d/%d/%d",
			r.Name, len(c.FPs), len(c.Offs), len(c.Lens))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int32(len(r.Tuples))
	for _, id := range c.Rows {
		if id < 0 || id >= n {
			return fmt.Errorf("database: restore index on %s: row id %d out of %d rows", r.Name, id, n)
		}
	}
	sh := shard{buckets: make(map[uint64]span, len(c.FPs)), rows: append([]int32(nil), c.Rows...)}
	total := int32(0)
	for i, fp := range c.FPs {
		sp := span{c.Offs[i], c.Lens[i]}
		if sp.n < 1 || sp.off < 0 || int(sp.off)+int(sp.n) > len(c.Rows) {
			return fmt.Errorf("database: restore index on %s: span [%d,+%d) outside %d rows",
				r.Name, sp.off, sp.n, len(c.Rows))
		}
		total += sp.n
		if _, ok := sh.buckets[fp]; !ok {
			sh.buckets[fp] = sp
			continue
		}
		if sh.overflow == nil {
			sh.overflow = make(map[uint64][]span)
		}
		sh.overflow[fp] = append(sh.overflow[fp], sp)
	}
	if int(total) != len(c.Rows) {
		return fmt.Errorf("database: restore index on %s: spans cover %d of %d rows", r.Name, total, len(c.Rows))
	}
	ix := &Index{
		Cols: append([]int(nil), c.Cols...),
		slab: r.slabLocked(),
		hash: defaultKeyHash,
		fast: true,
	}
	ix.state.Store(&indexState{shards: []shard{sh}})
	if sig, packed := colsSig(c.Cols); packed {
		if r.indexes == nil {
			r.indexes = make(map[uint64]*Index)
		}
		r.indexes[sig] = ix
	} else {
		if r.indexesBig == nil {
			r.indexesBig = make(map[string]*Index)
		}
		r.indexesBig[colsSigBig(c.Cols)] = ix
	}
	return nil
}
