package database

// In-package tests for the batch kernels: the zero-allocation contract of
// the warm batched probe path, correctness under an injected degraded
// hash (collision handling must survive batching), bit-identical
// fingerprints between the slab kernel and the scalar hash, and Compact's
// waste reclamation under sustained churn.

import (
	"math/rand"
	"testing"
)

// batchRelation builds a deduplicated random relation.
func batchRelation(rng *rand.Rand, name string, arity, n, dom int) *Relation {
	r := NewRelation(name, arity)
	for i := 0; i < n; i++ {
		t := make(Tuple, arity)
		for j := range t {
			t[j] = Value(1 + rng.Intn(dom))
		}
		r.Insert(t)
	}
	r.Dedup()
	return r
}

// TestHashColsMatchesKeyHash pins the batched fingerprint kernel to the
// scalar Tuple.KeyHash bit for bit, across the specialized one- and two-
// column loops and the generic fallback.
func TestHashColsMatchesKeyHash(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, arity := range []int{1, 2, 3, 4} {
		r := batchRelation(rng, "R", arity, 200, 16)
		sl := r.Slab()
		sc := GetScratch()
		for k := 1; k <= arity; k++ {
			cols := rng.Perm(arity)[:k]
			ids := sc.Iota(r.Len())
			dst := make([]uint64, r.Len())
			sl.HashCols(cols, ids, dst)
			for i, tu := range r.Tuples {
				if want := tu.KeyHash(cols); dst[i] != want {
					t.Fatalf("arity %d cols %v row %d: HashCols %x, KeyHash %x", arity, cols, i, dst[i], want)
				}
			}
		}
		sc.Release()
	}
}

// TestBatchedProbeAllocs pins the warm batched probe path allocation-free:
// with the flat tables built and the scratch buffers grown, ContainsBatch
// and LookupBatch must not allocate.
func TestBatchedProbeAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := batchRelation(rng, "R", 2, 4096, 512)
	s := batchRelation(rng, "S", 2, 4096, 512)
	ix := buildIndex(s.Tuples, []int{0}, s.Slab(), 1, nil)
	sl := r.Slab()
	cols := []int{1}
	sc := GetScratch()
	defer sc.Release()
	ix.ContainsBatch(sl, cols, sc.Iota(r.Len()), sc) // warm tables and buffers
	allocs := testing.AllocsPerRun(50, func() {
		ix.ContainsBatch(sl, cols, sc.Iota(r.Len()), sc)
	})
	if allocs != 0 {
		t.Fatalf("warm ContainsBatch: %v allocs/run, want 0", allocs)
	}
	emit := func(i int, ids []int32) {}
	allocs = testing.AllocsPerRun(50, func() {
		ix.LookupBatch(sl, cols, sc.Iota(r.Len()), sc, emit)
	})
	if allocs != 0 {
		t.Fatalf("warm LookupBatch: %v allocs/run, want 0", allocs)
	}
}

// sameIDs reports whether two row-id slices are identical element-wise.
func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchedForcedCollisions degrades every fingerprint to one of two
// values (the scalar forced-collision setup) and checks that the batched
// kernels — flat tables, inline-key short-circuit, result cache — still
// resolve every probe exactly like the scalar Lookup/Contains path.
func TestBatchedForcedCollisions(t *testing.T) {
	degenerate := func(tu Tuple, cols []int) uint64 {
		if len(cols) > 0 {
			return uint64(tu[cols[0]]) & 1
		}
		return 0
	}
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := batchRelation(rng, "S", 2, 1+rng.Intn(80), 12)
		r := batchRelation(rng, "R", 2, 1+rng.Intn(80), 14)
		cols := []int{rng.Intn(2)}
		probeCols := []int{rng.Intn(2)}
		sl := r.Slab()
		for _, par := range []int{1, 4} {
			ix := buildIndex(s.Tuples, cols, s.Slab(), par, degenerate)
			sc := GetScratch()
			ids := sc.Iota(r.Len())

			// ContainsBatch must keep exactly the scalar survivors, in order.
			got := ix.ContainsBatch(sl, probeCols, ids, sc)
			var want []int32
			for i, tu := range r.Tuples {
				if ix.Contains(tu, probeCols) {
					want = append(want, int32(i))
				}
			}
			if !sameIDs(got, want) {
				t.Fatalf("seed %d par %d: ContainsBatch %v, scalar %v", seed, par, got, want)
			}

			// LookupBatch must hand out the very buckets Lookup returns.
			pos := 0
			ix.LookupBatch(sl, probeCols, sc.Iota(r.Len()), sc, func(i int, bids []int32) {
				for pos < i {
					if n := len(ix.Lookup(r.Tuples[pos], probeCols)); n != 0 {
						t.Fatalf("seed %d par %d: LookupBatch skipped row %d with %d scalar rows", seed, par, pos, n)
					}
					pos++
				}
				if sids := ix.Lookup(r.Tuples[i], probeCols); !sameIDs(bids, sids) {
					t.Fatalf("seed %d par %d row %d: LookupBatch %v, Lookup %v", seed, par, i, bids, sids)
				}
				pos = i + 1
			})
			for ; pos < r.Len(); pos++ {
				if n := len(ix.Lookup(r.Tuples[pos], probeCols)); n != 0 {
					t.Fatalf("seed %d par %d: LookupBatch missed trailing row %d with %d scalar rows", seed, par, pos, n)
				}
			}
			sc.Release()
		}
	}
}

// lookupAll snapshots every bucket of ix as probed through the scalar path.
func lookupAll(ix *Index, probes []Tuple, cols []int) [][]int32 {
	out := make([][]int32, len(probes))
	for i, tu := range probes {
		out[i] = append([]int32(nil), ix.Lookup(tu, cols)...)
	}
	return out
}

// TestIndexCompact churns an index through add/remove cycles — the
// ConstRefresher access pattern — and checks that Compact reclaims the
// abandoned slots, preserves every bucket (including fingerprint-collision
// overflow spans), and keeps waste bounded when invoked at the threshold.
func TestIndexCompact(t *testing.T) {
	degenerate := func(tu Tuple, cols []int) uint64 {
		if len(cols) > 0 {
			return uint64(tu[cols[0]]) & 1
		}
		return 0
	}
	for _, tc := range []struct {
		name string
		hash keyHashFunc
	}{{"default", nil}, {"degenerate", degenerate}} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			r := batchRelation(rng, "R", 2, 512, 24)
			sl := r.Slab()
			ix := buildIndex(r.Tuples, []int{0}, sl, 1, tc.hash)
			live := make([]bool, r.Len())
			for i := range live {
				live[i] = true
			}
			maxWaste := 0
			for round := 0; round < 200; round++ {
				// Remove a random live row, re-add a random dead one: spans
				// shrink, relocate, and regrow, accumulating waste.
				for k := 0; k < 8; k++ {
					i := rng.Intn(r.Len())
					if live[i] {
						if !ix.RemoveRow(int32(i)) {
							t.Fatalf("round %d: RemoveRow(%d) did not find the row", round, i)
						}
					} else {
						ix.AddRow(int32(i))
					}
					live[i] = !live[i]
				}
				if ix.Waste() >= 64 {
					before := lookupAll(ix, r.Tuples, []int{0})
					reclaimed := ix.Compact()
					if reclaimed == 0 {
						t.Fatalf("round %d: Compact reclaimed nothing at waste %d", round, ix.Waste())
					}
					if ix.Waste() != 0 {
						t.Fatalf("round %d: waste %d after Compact, want 0", round, ix.Waste())
					}
					after := lookupAll(ix, r.Tuples, []int{0})
					for i := range before {
						if !sameIDs(before[i], after[i]) {
							t.Fatalf("round %d probe %d: bucket %v after Compact, want %v", round, i, after[i], before[i])
						}
					}
				}
				if ix.Waste() > maxWaste {
					maxWaste = ix.Waste()
				}
			}
			// The threshold sweep keeps waste bounded: at most the threshold
			// plus one burst of relocations (each of the 8 patches in a
			// burst can abandon up to one whole bucket). Unbounded churn
			// would accumulate an order of magnitude more over 200 rounds.
			if bound := 64 + 8*128; maxWaste > bound {
				t.Fatalf("waste reached %d under periodic compaction, bound %d", maxWaste, bound)
			}
			// Batched probes agree with scalar after churn + compaction.
			ix.Compact()
			sc := GetScratch()
			defer sc.Release()
			got := ix.ContainsBatch(sl, []int{0}, sc.Iota(r.Len()), sc)
			var want []int32
			for i, tu := range r.Tuples {
				if ix.Contains(tu, []int{0}) {
					want = append(want, int32(i))
				}
			}
			if !sameIDs(got, want) {
				t.Fatalf("post-churn ContainsBatch %v, scalar %v", got, want)
			}
		})
	}
}
