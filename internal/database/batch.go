package database

// Vectorized batch execution over the columnar slabs.
//
// The scalar probe path (Index.Lookup) hashes one tuple, walks one Go map
// bucket, and resolves one key comparison per call. The batch kernels in
// this file amortize all three across runs of probe rows:
//
//   - Slab.HashCols fingerprints a run of slab rows in one pass over the
//     flat column data — no per-tuple slice-header chase.
//   - Each shard gets a lazily built flat open-addressing probe table
//     (fingerprint → primary span), replacing the Go map walk with a
//     couple of cache lines of linear probing.
//   - A small direct-mapped result cache in the scratch groups probes by
//     fingerprint: runs of equal keys (the common case in semijoins of
//     skewed data) resolve their bucket once and reuse it, with exact
//     probe-key comparison so a degraded hash still answers correctly.
//   - Survivor row ids are compacted branch-free into pooled []int32
//     scratch buffers, so the warm probe path performs zero allocations.
//
// Counted steps are untouched: the delay counters of internal/cq tick per
// intermediate-result tuple, and the batch kernels return exactly the rows
// the scalar path returns, in exactly the same order. The scalar kernels
// (SemijoinScalar, JoinScalar, Index.Lookup) remain in place as the oracle
// for the differential suites.

import "sync"

// probeBatch is the number of probe rows fingerprinted per inner pass; it
// bounds the scratch's fps buffer so a batch of hashes stays in L1.
const probeBatch = 256

// cacheSlots sizes the direct-mapped bucket-result cache (a power of two).
const cacheSlots = 256

// --- batched fingerprints ---------------------------------------------

// HashCols writes the key fingerprint of each listed row's projection onto
// cols into dst (len(dst) ≥ len(rowIDs)). The fingerprints are bit-
// identical to Tuple.KeyHash on the same projection; the specialized one-
// and two-column loops cover every join the engines emit today.
func (s Slab) HashCols(cols []int, rowIDs []int32, dst []uint64) {
	seed := keyHashSeed ^ uint64(len(cols))
	data, ar := s.data, s.arity
	switch len(cols) {
	case 1:
		c := cols[0]
		for i, id := range rowIDs {
			dst[i] = foldHash(seed, data[int(id)*ar+c])
		}
	case 2:
		c0, c1 := cols[0], cols[1]
		for i, id := range rowIDs {
			base := int(id) * ar
			dst[i] = foldHash(foldHash(seed, data[base+c0]), data[base+c1])
		}
	default:
		for i, id := range rowIDs {
			base := int(id) * ar
			h := seed
			for _, c := range cols {
				h = foldHash(h, data[base+c])
			}
			dst[i] = h
		}
	}
}

// hashRows fingerprints a run of probe rows: through the flat slab kernel
// when the index uses the default fingerprint, row-at-a-time through the
// injected hash otherwise (identical bits either way).
func (ix *Index) hashRows(sl Slab, cols []int, rowIDs []int32, dst []uint64) {
	if ix.fast {
		sl.HashCols(cols, rowIDs, dst)
		return
	}
	for i, id := range rowIDs {
		dst[i] = ix.hash(sl.Row(id), cols)
	}
}

// --- flat probe tables ------------------------------------------------

// tableEnt is one slot of a shard's flat probe table: the primary span of
// fp together with its key values inlined (keys of up to two columns — all
// the engines emit today — fit in k0/k1, so resolving the exact key is a
// compare within the already-loaded entry instead of a random access into
// the indexed slab). n == 0 marks an empty slot (bucket spans are never
// empty); 32 bytes per slot, two slots per cache line.
type tableEnt struct {
	fp     uint64
	off    int32
	n      int32
	k0, k1 Value
}

// probeTable is a flat open-addressing copy of a shard's fingerprint →
// primary-span map. Slots are addressed by the high fingerprint bits (the
// low bits route between shards), with linear probing.
type probeTable struct {
	ents []tableEnt
	mask uint32
}

func (ix *Index) buildProbeTable(sh *shard) probeTable {
	n := len(sh.buckets)
	if n == 0 {
		return probeTable{}
	}
	size := 1
	for size < n*2 {
		size <<= 1
	}
	ents := make([]tableEnt, size)
	mask := uint32(size - 1)
	for fp, sp := range sh.buckets {
		slot := uint32(fp>>32) & mask
		for ents[slot].n != 0 {
			slot = (slot + 1) & mask
		}
		e := tableEnt{fp: fp, off: sp.off, n: sp.n}
		rep := ix.slab.Row(sh.rows[sp.off])
		if len(ix.Cols) >= 1 {
			e.k0 = rep[ix.Cols[0]]
		}
		if len(ix.Cols) >= 2 {
			e.k1 = rep[ix.Cols[1]]
		}
		ents[slot] = e
	}
	return probeTable{ents: ents, mask: mask}
}

// tables returns a state whose flat probe tables are built, constructing
// them on first batched probe. The build races only with Compact (both
// take tableMu); in-place patching is already serialized with all lookups.
func (ix *Index) tables() *indexState {
	if st := ix.state.Load(); st.tables != nil {
		return st
	}
	ix.tableMu.Lock()
	defer ix.tableMu.Unlock()
	st := ix.state.Load()
	if st.tables != nil {
		return st
	}
	tabs := make([]probeTable, len(st.shards))
	for i := range st.shards {
		tabs[i] = ix.buildProbeTable(&st.shards[i])
	}
	st = &indexState{shards: st.shards, tables: tabs}
	ix.state.Store(st)
	return st
}

// lookupFP resolves one fingerprint against the flat table: find the
// primary span by linear probing, then resolve the exact key like the
// scalar path (primary first, overflow spans after). Returns the same
// bucket slice Lookup would.
func (ix *Index) lookupFP(st *indexState, fp uint64, probe Tuple, probeCols []int) []int32 {
	si := uint32(fp) & ix.mask
	pt := &st.tables[si]
	if len(pt.ents) == 0 {
		return nil
	}
	slot := uint32(fp>>32) & pt.mask
	for {
		e := &pt.ents[slot]
		if e.n == 0 {
			return nil
		}
		if e.fp == fp {
			sh := &st.shards[si]
			// Exact-key check against the entry's inlined key values for
			// one- and two-column keys (no slab access; slicing sh.rows
			// below does not dereference it either), via the slab for
			// wider keys.
			var eq bool
			switch len(probeCols) {
			case 1:
				eq = e.k0 == probe[probeCols[0]]
			case 2:
				eq = e.k0 == probe[probeCols[0]] && e.k1 == probe[probeCols[1]]
			default:
				eq = ix.keyEq(sh.rows[e.off], probe, probeCols)
			}
			if eq {
				return sh.rows[e.off : e.off+e.n : e.off+e.n]
			}
			for _, sp := range sh.overflow[fp] {
				if ix.keyEq(sh.rows[sp.off], probe, probeCols) {
					return sh.rows[sp.off : sp.off+sp.n : sp.off+sp.n]
				}
			}
			return nil
		}
		slot = (slot + 1) & pt.mask
	}
}

// --- scratch ----------------------------------------------------------

// cacheEnt memoizes one resolved bucket: probes whose fingerprint maps to
// the same slot reuse it after an exact probe-key comparison against the
// representative row, so equal-key runs cost one bucket walk total.
type cacheEnt struct {
	fp    uint64
	ids   []int32
	row   int32 // representative probe row (in the probe slab)
	epoch uint32
}

// BatchScratch holds the reusable buffers of the batch kernels: the
// fingerprint staging area, the survivor buffer, an iota buffer for whole-
// relation probes, and the bucket-result cache. Scratches are pooled
// (GetScratch/Release); a warm kernel call allocates nothing.
type BatchScratch struct {
	fps   [probeBatch]uint64
	ids   []int32 // iota buffer handed to kernels as rowIDs
	keep  []int32 // survivor buffer returned by ContainsBatch
	epoch uint32  // bumped per kernel call; cache entries from other calls are dead
	cache [cacheSlots]cacheEnt
}

var scratchPool = sync.Pool{New: func() any { return new(BatchScratch) }}

// GetScratch returns a scratch from the pool.
func GetScratch() *BatchScratch { return scratchPool.Get().(*BatchScratch) }

// Release returns the scratch to the pool. Buffers previously returned by
// ContainsBatch on this scratch are invalid afterwards.
func (sc *BatchScratch) Release() { scratchPool.Put(sc) }

// Iota fills the scratch's id buffer with row ids [0, n) — the rowIDs
// argument for probing a whole relation.
func (sc *BatchScratch) Iota(n int) []int32 {
	return sc.IotaRange(0, n)
}

// IotaRange fills the scratch's id buffer with row ids [lo, hi).
func (sc *BatchScratch) IotaRange(lo, hi int) []int32 {
	n := hi - lo
	if cap(sc.ids) < n {
		sc.ids = make([]int32, n)
	}
	ids := sc.ids[:n]
	for i := range ids {
		ids[i] = int32(lo + i)
	}
	return ids
}

func (sc *BatchScratch) growKeep(n int) []int32 {
	if cap(sc.keep) < n {
		sc.keep = make([]int32, n)
	}
	return sc.keep[:n]
}

// probeEq reports whether probe rows a and b of sl agree on cols.
func probeEq(sl Slab, cols []int, a, b int32) bool {
	if a == b {
		return true
	}
	ra, rb := sl.Row(a), sl.Row(b)
	for _, c := range cols {
		if ra[c] != rb[c] {
			return false
		}
	}
	return true
}

// bucket resolves the bucket of probe row id through the direct-mapped
// cache: on a fingerprint hit the exact probe keys are compared, so a
// colliding (or degraded) hash falls through to a real lookup instead of
// reusing the wrong bucket.
func (sc *BatchScratch) bucket(ix *Index, st *indexState, sl Slab, probeCols []int, fp uint64, id int32) []int32 {
	e := &sc.cache[uint32(fp>>32)&(cacheSlots-1)]
	if e.epoch == sc.epoch && e.fp == fp && probeEq(sl, probeCols, id, e.row) {
		return e.ids
	}
	ids := ix.lookupFP(st, fp, sl.Row(id), probeCols)
	*e = cacheEnt{fp: fp, ids: ids, row: id, epoch: sc.epoch}
	return ids
}

// b2i returns 1 for true and 0 for false; the compiler lowers it to a
// conditional move, keeping the survivor compaction below branch-free.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// --- batched probes ---------------------------------------------------

// ContainsBatch filters rowIDs (rows of the probe slab sl) down to those
// whose probeCols projection matches some indexed row, preserving input
// order. The result aliases the scratch's survivor buffer: it is valid
// until the next ContainsBatch on the same scratch and must not be
// modified. A warm call (tables built, scratch buffers grown) allocates
// nothing.
func (ix *Index) ContainsBatch(sl Slab, probeCols []int, rowIDs []int32, sc *BatchScratch) []int32 {
	st := ix.tables()
	n := len(rowIDs)
	keep := sc.growKeep(n)
	sc.epoch++
	k := 0
	for lo := 0; lo < n; lo += probeBatch {
		hi := lo + probeBatch
		if hi > n {
			hi = n
		}
		batch := rowIDs[lo:hi]
		fps := sc.fps[:len(batch)]
		ix.hashRows(sl, probeCols, batch, fps)
		for i, id := range batch {
			ids := sc.bucket(ix, st, sl, probeCols, fps[i], id)
			// Branch-free compaction: unconditional store, conditional
			// advance.
			keep[k] = id
			k += b2i(len(ids) > 0)
		}
	}
	return keep[:k]
}

// LookupBatch resolves the bucket of every probe row and hands non-empty
// ones to emit in input order: emit(i, ids) receives the position i of the
// probe within rowIDs and its bucket (aliasing the index's row array, like
// Lookup). Beyond the emit calls themselves, a warm call allocates
// nothing.
func (ix *Index) LookupBatch(sl Slab, probeCols []int, rowIDs []int32, sc *BatchScratch, emit func(i int, ids []int32)) {
	st := ix.tables()
	n := len(rowIDs)
	sc.epoch++
	for lo := 0; lo < n; lo += probeBatch {
		hi := lo + probeBatch
		if hi > n {
			hi = n
		}
		batch := rowIDs[lo:hi]
		fps := sc.fps[:len(batch)]
		ix.hashRows(sl, probeCols, batch, fps)
		for i, id := range batch {
			if ids := sc.bucket(ix, st, sl, probeCols, fps[i], id); len(ids) > 0 {
				emit(lo+i, ids)
			}
		}
	}
}
