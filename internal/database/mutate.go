package database

// The mutation layer: batched inserts, deletes, and the per-generation
// delta log that delta-binding (plan.Prepared.Refresh) consumes.
//
// Every mutation funnels through mutate, which drops derived state
// (indexes, slab), advances the generation exactly once per call — an
// N-tuple batch is one generation step, not N — and, when delta logging
// is enabled, appends the mutation's multiset difference to a bounded
// log. The log records occurrence-level changes: inserting a duplicate
// logs one more insert of the same tuple, Delete logs one delete per
// removed occurrence, and a reorder-only mutation (Sort) logs an empty
// record — row-id holders must still rebind, but set-level consumers see
// that nothing changed. Logging is off by default so workloads that
// never refresh a plan pay nothing; plan binding switches it on for the
// relations a refreshable statement reads.

import "fmt"

const (
	// maxDeltaRecords and maxDeltaTuples bound the per-relation delta
	// log. Once either bound is exceeded the oldest records are trimmed
	// and their generations fall off the horizon: DeltaSince then reports
	// the delta unavailable and the consumer falls back to a full
	// re-Bind, which is cheaper than replaying an unbounded history.
	maxDeltaRecords = 256
	maxDeltaTuples  = 4096
)

// Delta is the multiset difference between two generations of a
// relation, as occurrence-level insert and delete lists: a tuple
// inserted twice appears twice in Ins, and deleting a tuple stored with
// multiplicity k contributes k entries to Del.
type Delta struct {
	Ins []Tuple
	Del []Tuple
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool { return len(d.Ins) == 0 && len(d.Del) == 0 }

// Len returns the total number of changed tuple occurrences.
func (d Delta) Len() int { return len(d.Ins) + len(d.Del) }

// deltaRecord is the logged multiset difference of one mutation; gen is
// the relation's generation after applying it.
type deltaRecord struct {
	gen uint64
	ins []Tuple
	del []Tuple
}

// mutate drops the relation's derived state and advances its generation
// once, logging the given multiset delta when logging is enabled. sorted
// is the sortedness of r.Tuples after the mutation (deletes preserve
// order; Sort and Dedup establish it).
func (r *Relation) mutate(ins, del []Tuple, sorted bool) {
	r.mu.Lock()
	r.mutateLocked(ins, del, sorted)
	r.mu.Unlock()
}

// mutateOne is mutate for a single inserted tuple; the slice wrapping
// the tuple is only allocated when delta logging is on, so the
// non-refreshing TryInsert path stays allocation-free here.
func (r *Relation) mutateOne(t Tuple) {
	r.mu.Lock()
	if r.logDeltas {
		r.mutateLocked([]Tuple{t}, nil, false)
	} else {
		r.mutateLocked(nil, nil, false)
	}
	r.mu.Unlock()
}

func (r *Relation) mutateLocked(ins, del []Tuple, sorted bool) {
	r.indexes = nil
	r.indexesBig = nil
	if r.mapped {
		r.promoteLocked()
	} else {
		r.slabPtr.Store(nil)
	}
	r.sorted = sorted
	r.gen.Add(1)
	if r.logDeltas {
		r.logDelta(ins, del)
	}
}

// promoteLocked is the copy-on-write step for relations restored over
// mmap-ed snapshot pages (database.FromSlab with Mapped set): the first
// mutation — which has already restructured r.Tuples but never writes
// through the old views — copies the current tuples into fresh heap
// storage and repoints the views at it. The snapshot file's bytes are
// never written; every holder of pre-mutation row ids was invalidated by
// this same mutation, exactly as on the heap path, so the delta-log and
// refresh machinery above sees no difference between backings.
func (r *Relation) promoteLocked() {
	r.mapped = false
	a := r.Arity
	if a == 0 {
		r.slabPtr.Store(nil)
		return
	}
	s := Slab{arity: a, data: make([]Value, len(r.Tuples)*a)}
	for i, t := range r.Tuples {
		copy(s.data[i*a:(i+1)*a], t)
		r.Tuples[i] = s.Row(int32(i))
	}
	r.slabPtr.Store(&s)
}

// logDelta appends one record to the bounded delta log (r.mu held). The
// slices are copied: callers keep ownership of theirs.
func (r *Relation) logDelta(ins, del []Tuple) {
	g := r.gen.Load()
	n := len(ins) + len(del)
	if n > maxDeltaTuples {
		// One oversized mutation: replaying it would cost as much as a
		// re-Bind, so drop the log and move the horizon past it.
		r.deltas = nil
		r.deltaSize = 0
		r.deltaFloor = g
		return
	}
	rec := deltaRecord{gen: g}
	if len(ins) > 0 {
		rec.ins = append([]Tuple(nil), ins...)
	}
	if len(del) > 0 {
		rec.del = append([]Tuple(nil), del...)
	}
	r.deltas = append(r.deltas, rec)
	r.deltaSize += n
	for len(r.deltas) > maxDeltaRecords || r.deltaSize > maxDeltaTuples {
		old := r.deltas[0]
		r.deltaSize -= len(old.ins) + len(old.del)
		r.deltaFloor = old.gen
		r.deltas = r.deltas[1:]
	}
}

// EnableDeltaLog starts recording per-generation multiset deltas.
// Logging is off by default — mutations on relations never bound into a
// refreshable plan pay nothing — and plan binding switches it on for the
// relations a statement reads. Deltas are available from the relation's
// current generation onward; enabling an already-logging relation is a
// no-op, so statements bound at different generations share one log.
func (r *Relation) EnableDeltaLog() {
	r.mu.Lock()
	if !r.logDeltas {
		r.logDeltas = true
		r.deltaFloor = r.gen.Load()
	}
	r.mu.Unlock()
}

// DeltaSince returns the multiset difference between the relation's
// contents at generation gen and its current contents. ok is false when
// the delta is unavailable — logging is off, gen predates the log's
// bounded horizon, or gen never belonged to this relation's history —
// and the caller must fall back to reading the full relation. The
// current generation yields an empty delta.
func (r *Relation) DeltaSince(gen uint64) (Delta, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.gen.Load()
	if gen == cur {
		return Delta{}, true
	}
	if !r.logDeltas || gen > cur || gen < r.deltaFloor {
		return Delta{}, false
	}
	var d Delta
	for _, rec := range r.deltas {
		if rec.gen <= gen {
			continue
		}
		d.Ins = append(d.Ins, rec.ins...)
		d.Del = append(d.Del, rec.del...)
	}
	return d, true
}

// InsertBatch appends a batch of tuples as one mutation: indexes and
// slabs are invalidated once and the generation advances once, however
// large the batch. Bulk loads (FromTuples, core.LoadFacts) route through
// it so an N-tuple load is one generation step, not N — a warm plan over
// other relations is staled once instead of N times, and the delta log
// holds one record instead of N. Tuples are appended in order;
// duplicates are permitted, as with Insert. An empty batch is a no-op.
func (r *Relation) InsertBatch(ts []Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	for _, t := range ts {
		if len(t) != r.Arity {
			return fmt.Errorf("database: relation %s has arity %d, got tuple of length %d", r.Name, r.Arity, len(t))
		}
	}
	if len(r.Tuples)+len(ts) > maxRows {
		return fmt.Errorf("database: relation %s is full: row ids are int32, max %d rows", r.Name, maxRows)
	}
	r.Tuples = append(r.Tuples, ts...)
	r.mutate(ts, nil, false)
	return nil
}

// Delete removes every occurrence of t from the relation, reporting
// whether anything was removed. Deleting an absent tuple is a no-op: the
// generation does not advance, so warm plans are not staled spuriously.
func (r *Relation) Delete(t Tuple) bool {
	return r.DeleteBatch([]Tuple{t}) > 0
}

// DeleteBatch removes every occurrence of each tuple in ts as one
// mutation (at most one generation bump), returning the number of
// removed occurrences. Tuples not present, or of the wrong arity, are
// ignored. The surviving tuples keep their relative order, so a sorted
// relation stays sorted.
func (r *Relation) DeleteBatch(ts []Tuple) int {
	if len(ts) == 0 || len(r.Tuples) == 0 {
		return 0
	}
	drop := make(map[string]bool, len(ts))
	for _, t := range ts {
		if len(t) == r.Arity {
			drop[t.FullKey()] = true
		}
	}
	if len(drop) == 0 {
		return 0
	}
	var removed []Tuple
	kept := r.Tuples[:0]
	for _, t := range r.Tuples {
		if drop[t.FullKey()] {
			removed = append(removed, t)
		} else {
			kept = append(kept, t)
		}
	}
	if len(removed) == 0 {
		return 0
	}
	for i := len(kept); i < len(r.Tuples); i++ {
		r.Tuples[i] = nil // release removed tuples held by the backing array
	}
	wasSorted := r.sorted
	r.Tuples = kept
	r.mutate(nil, removed, wasSorted)
	return len(removed)
}
