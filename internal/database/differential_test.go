package database_test

// Differential tests for the relational primitives: the hash-based
// Semijoin/ParSemijoin/Join and the sharded index are compared against
// transparent nested-loop references on random relations from
// internal/qgen. (External test package: qgen itself depends on database.)

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/database"
	"repro/internal/qgen"
)

// naiveSemijoin is the textbook nested-loop semijoin.
func naiveSemijoin(r *database.Relation, rCols []int, s *database.Relation, sCols []int) []database.Tuple {
	var out []database.Tuple
	for _, t := range r.Tuples {
		for _, u := range s.Tuples {
			match := true
			for i := range rCols {
				if t[rCols[i]] != u[sCols[i]] {
					match = false
					break
				}
			}
			if match {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

// naiveJoin is the textbook nested-loop natural join: r's columns followed
// by s's non-join columns.
func naiveJoin(r *database.Relation, rCols []int, s *database.Relation, sCols []int) []database.Tuple {
	skip := make(map[int]bool)
	for _, c := range sCols {
		skip[c] = true
	}
	var out []database.Tuple
	for _, t := range r.Tuples {
		for _, u := range s.Tuples {
			match := true
			for i := range rCols {
				if t[rCols[i]] != u[sCols[i]] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			row := append(database.Tuple(nil), t...)
			for c, v := range u {
				if !skip[c] {
					row = append(row, v)
				}
			}
			out = append(out, row)
		}
	}
	return out
}

func sortTuples(ts []database.Tuple) []database.Tuple {
	out := append([]database.Tuple(nil), ts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// randomJoinArgs draws two relations plus aligned join columns.
func randomJoinArgs(rng *rand.Rand) (r, s *database.Relation, rCols, sCols []int) {
	ra := 1 + rng.Intn(3)
	sa := 1 + rng.Intn(3)
	k := 1 + rng.Intn(min(ra, sa))
	r = qgen.RandRelation(rng, "R", ra, rng.Intn(30), 4)
	s = qgen.RandRelation(rng, "S", sa, rng.Intn(30), 4)
	rCols = rng.Perm(ra)[:k]
	sCols = rng.Perm(sa)[:k]
	return r, s, rCols, sCols
}

func TestDifferentialSemijoin(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r, s, rCols, sCols := randomJoinArgs(rng)
		want := sortTuples(naiveSemijoin(r, rCols, s, sCols))
		got := sortTuples(database.Semijoin(r, rCols, s, sCols).Tuples)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: Semijoin %v != naive %v (rCols %v, sCols %v)\n%s%s",
				seed, got, want, rCols, sCols, dump(r), dump(s))
		}
		par := sortTuples(database.ParSemijoin(r, rCols, s, sCols, 4).Tuples)
		if !reflect.DeepEqual(par, want) {
			t.Fatalf("seed %d: ParSemijoin %v != naive %v (rCols %v, sCols %v)\n%s%s",
				seed, par, want, rCols, sCols, dump(r), dump(s))
		}
	}
}

func TestDifferentialJoin(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r, s, rCols, sCols := randomJoinArgs(rng)
		want := sortTuples(naiveJoin(r, rCols, s, sCols))
		got := sortTuples(database.Join("J", r, rCols, s, sCols).Tuples)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: Join %v != naive %v (rCols %v, sCols %v)\n%s%s",
				seed, got, want, rCols, sCols, dump(r), dump(s))
		}
	}
}

// TestDifferentialIndex: a sharded index lookup returns exactly the tuples
// a scan finds, for every key that occurs and for some that don't.
func TestDifferentialIndex(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		arity := 1 + rng.Intn(3)
		r := qgen.RandRelation(rng, "R", arity, rng.Intn(40), 4)
		k := 1 + rng.Intn(arity)
		cols := rng.Perm(arity)[:k]
		idx := r.IndexOn(cols)
		// Probe tuples drawn over a slightly larger domain so some keys
		// miss.
		probe := qgen.RandRelation(rng, "P", arity, 20, 5)
		for _, p := range probe.Tuples {
			key := p.Key(cols)
			var want []database.Tuple
			for _, tp := range r.Tuples {
				if tp.Key(cols) == key {
					want = append(want, tp)
				}
			}
			var got []database.Tuple
			for _, id := range idx.Lookup(p, cols) {
				got = append(got, idx.Row(id))
			}
			if !reflect.DeepEqual(sortTuples(got), sortTuples(want)) {
				t.Fatalf("seed %d: Lookup(%q) = %v, scan = %v\n%s", seed, key, got, want, dump(r))
			}
		}
	}
}

// TestDifferentialProject: Project equals a by-hand column extraction.
func TestDifferentialProject(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		arity := 1 + rng.Intn(4)
		r := qgen.RandRelation(rng, "R", arity, rng.Intn(30), 4)
		k := 1 + rng.Intn(arity)
		cols := rng.Perm(arity)[:k]
		// Project has set semantics: duplicates collapse.
		var want []database.Tuple
		seen := make(map[string]bool)
		for _, tp := range r.Tuples {
			row := make(database.Tuple, len(cols))
			for i, c := range cols {
				row[i] = tp[c]
			}
			if k := row.FullKey(); !seen[k] {
				seen[k] = true
				want = append(want, row)
			}
		}
		got := r.Project("P", cols)
		if !reflect.DeepEqual(sortTuples(got.Tuples), sortTuples(want)) {
			t.Fatalf("seed %d: Project(%v) = %v, want %v\n%s", seed, cols, got.Tuples, want, dump(r))
		}
	}
}

func dump(r *database.Relation) string {
	db := database.NewDatabase()
	db.AddRelation(r)
	return qgen.FormatDatabase(db)
}
