package database_test

// 250-seed differential between the scalar and the vectorized probe
// engines: Semijoin/ParSemijoin/Join through the batch kernels must equal
// SemijoinScalar/JoinScalar tuple for tuple, IN ORDER — not just as sets.
// Order-exactness is what lets the cq layer's per-result step counting
// stay bit-identical when the kernels are swapped, so it is asserted
// directly here.

import (
	"math/rand"
	"testing"

	"repro/internal/database"
)

// skewedRelation draws a relation whose key skew varies by seed: small
// domains produce long equal-key runs (exercising the kernels' result
// cache), large domains produce near-unique keys (exercising the flat
// tables), and sizes cross the parallel-probe cutoff at 1024.
func skewedRelation(rng *rand.Rand, name string, arity int) *database.Relation {
	n := 1 + rng.Intn(2000)
	dom := 1 + rng.Intn(3*n)
	if rng.Intn(3) == 0 {
		dom = 1 + rng.Intn(20) // heavy duplication
	}
	r := database.NewRelation(name, arity)
	for i := 0; i < n; i++ {
		t := make(database.Tuple, arity)
		for j := range t {
			t[j] = database.Value(1 + rng.Intn(dom))
		}
		r.Tuples = append(r.Tuples, t)
	}
	r.Dedup()
	return r
}

func tuplesEqualOrdered(a, b []database.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestDifferentialScalarBatchSemijoin(t *testing.T) {
	for seed := int64(0); seed < 250; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ra := 1 + rng.Intn(3)
		sa := 1 + rng.Intn(3)
		k := 1 + rng.Intn(min(ra, sa))
		r := skewedRelation(rng, "R", ra)
		s := skewedRelation(rng, "S", sa)
		rCols := rng.Perm(ra)[:k]
		sCols := rng.Perm(sa)[:k]

		want := database.SemijoinScalar(r, rCols, s, sCols)
		got := database.Semijoin(r, rCols, s, sCols)
		if !tuplesEqualOrdered(got.Tuples, want.Tuples) {
			t.Fatalf("seed %d: batched Semijoin %d tuples, scalar %d (or order drift)", seed, got.Len(), want.Len())
		}
		for _, par := range []int{1, 4} {
			gotPar := database.ParSemijoin(r, rCols, s, sCols, par)
			if !tuplesEqualOrdered(gotPar.Tuples, want.Tuples) {
				t.Fatalf("seed %d par %d: batched ParSemijoin diverges from scalar", seed, par)
			}
		}
	}
}

func TestDifferentialScalarBatchJoin(t *testing.T) {
	for seed := int64(0); seed < 250; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		ra := 1 + rng.Intn(3)
		sa := 1 + rng.Intn(3)
		k := 1 + rng.Intn(min(ra, sa))
		r := skewedRelation(rng, "R", ra)
		s := skewedRelation(rng, "S", sa)
		rCols := rng.Perm(ra)[:k]
		sCols := rng.Perm(sa)[:k]

		want := database.JoinScalar("J", r, rCols, s, sCols)
		got := database.Join("J", r, rCols, s, sCols)
		if !tuplesEqualOrdered(got.Tuples, want.Tuples) {
			t.Fatalf("seed %d: batched Join %d tuples, scalar %d (or order drift)", seed, got.Len(), want.Len())
		}
	}
}

// TestSetBatchKernelsToggle proves the process-wide toggle routes the
// public entry points through the scalar path and back, with identical
// results either way.
func TestSetBatchKernelsToggle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := skewedRelation(rng, "R", 2)
	s := skewedRelation(rng, "S", 2)

	prev := database.SetBatchKernels(false)
	if !prev {
		t.Fatalf("batch kernels expected on by default")
	}
	off := database.Semijoin(r, []int{1}, s, []int{0})
	database.SetBatchKernels(true)
	on := database.Semijoin(r, []int{1}, s, []int{0})
	if !tuplesEqualOrdered(off.Tuples, on.Tuples) {
		t.Fatalf("toggle changed the semijoin result: off %d tuples, on %d", off.Len(), on.Len())
	}
}
