package database

// In-package tests for the fingerprint index: collision handling uses the
// injectable hash function, which the exported API deliberately hides.

import (
	"math/rand"
	"sort"
	"testing"
)

// TestForcedCollisions degrades every fingerprint to one of two values, so
// almost all distinct keys collide, and checks that build-time bucket
// splitting plus probe-time key comparison still return exactly the
// matching rows.
func TestForcedCollisions(t *testing.T) {
	degenerate := func(tu Tuple, cols []int) uint64 {
		// Two hash values only: parity of the first key column.
		if len(cols) > 0 {
			return uint64(tu[cols[0]]) & 1
		}
		return 0
	}
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := NewRelation("R", 2)
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			r.InsertValues(Value(rng.Intn(12)), Value(rng.Intn(12)))
		}
		cols := []int{rng.Intn(2)}
		for _, par := range []int{1, 4} {
			ix := buildIndex(r.Tuples, cols, r.Slab(), par, degenerate)
			// Every probe (hits and misses) must return scan-exact rows.
			for probe := Value(0); probe < 14; probe++ {
				pt := Tuple{probe, probe}
				var want []Tuple
				for _, tu := range r.Tuples {
					if tu[cols[0]] == probe {
						want = append(want, tu)
					}
				}
				var got []Tuple
				for _, id := range ix.Lookup(pt, cols) {
					got = append(got, ix.Row(id))
				}
				if len(got) != len(want) {
					t.Fatalf("seed %d par %d probe %d: got %d rows, scan %d", seed, par, probe, len(got), len(want))
				}
				sort.Slice(got, func(i, j int) bool { return got[i].Compare(got[j]) < 0 })
				sort.Slice(want, func(i, j int) bool { return want[i].Compare(want[j]) < 0 })
				for i := range got {
					if !got[i].Equal(want[i]) {
						t.Fatalf("seed %d par %d probe %d: row %d = %v, want %v", seed, par, probe, i, got[i], want[i])
					}
				}
			}
			// Bucket count must reflect true keys, not fingerprints.
			keys := map[Value]bool{}
			for _, tu := range r.Tuples {
				keys[tu[cols[0]]] = true
			}
			if ix.Buckets() != len(keys) {
				t.Fatalf("seed %d par %d: Buckets() = %d, want %d true keys", seed, par, ix.Buckets(), len(keys))
			}
		}
	}
}

// TestForcedCollisionsKeyMap runs the same degradation against KeyMap's
// Intern/Find chain.
func TestForcedCollisionsKeyMap(t *testing.T) {
	// KeyMap uses Tuple.KeyHash directly, so force collisions with real
	// colliding content instead: many tuples, tiny domain, then verify ids
	// are consistent between Intern and Find.
	rng := rand.New(rand.NewSource(7))
	km := NewKeyMap([]int{0, 1})
	type entry struct {
		t  Tuple
		id int
	}
	byKey := map[string]int{}
	var all []entry
	for i := 0; i < 500; i++ {
		tu := Tuple{Value(rng.Intn(5)), Value(rng.Intn(5)), Value(rng.Intn(100))}
		id := km.Intern(tu)
		k := tu.Key([]int{0, 1})
		if prev, ok := byKey[k]; ok && prev != id {
			t.Fatalf("key %q interned twice with ids %d and %d", k, prev, id)
		}
		byKey[k] = id
		all = append(all, entry{tu, id})
	}
	if km.Len() != len(byKey) {
		t.Fatalf("Len() = %d, want %d distinct keys", km.Len(), len(byKey))
	}
	for _, e := range all {
		if got := km.Find(e.t, []int{0, 1}); got != e.id {
			t.Fatalf("Find(%v) = %d, want %d", e.t, got, e.id)
		}
	}
	if got := km.Find(Tuple{9, 9}, []int{0, 1}); got != -1 {
		t.Fatalf("Find(miss) = %d, want -1", got)
	}
}

// TestColsSig checks the packed column-list signature is injective over the
// lists the cache actually sees, and that wide/large lists fall back.
func TestColsSig(t *testing.T) {
	lists := [][]int{
		{}, {0}, {1}, {0, 1}, {1, 0}, {2}, {0, 1, 2}, {2, 1, 0},
		{5, 3}, {3, 5}, {0, 0}, {125}, {1, 2, 3, 4, 5, 6, 7, 0},
	}
	seen := map[uint64][]int{}
	for _, l := range lists {
		sig, ok := colsSig(l)
		if !ok {
			t.Fatalf("colsSig(%v) not packable", l)
		}
		if prev, dup := seen[sig]; dup {
			t.Fatalf("colsSig collision: %v and %v -> %#x", prev, l, sig)
		}
		seen[sig] = l
	}
	if _, ok := colsSig([]int{126}); ok {
		t.Error("colsSig should reject column 126")
	}
	if _, ok := colsSig(make([]int, 9)); ok {
		t.Error("colsSig should reject 9 columns")
	}
	if a, b := colsSigBig([]int{1, 26}), colsSigBig([]int{12, 6}); a == b {
		t.Errorf("colsSigBig ambiguous: %q == %q", a, b)
	}
}

// TestLookupAllocs pins the probe path at zero allocations per operation:
// Index.Lookup, Index.Contains, Index.LookupRow, and KeyMap.Find.
func TestLookupAllocs(t *testing.T) {
	r := NewRelation("R", 2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4096; i++ {
		r.InsertValues(Value(rng.Intn(1000)), Value(rng.Intn(1000)))
	}
	r.Dedup()
	cols := []int{0}
	ix := r.IndexOn(cols)
	probe := Tuple{500, 500}
	var sink int
	if n := testing.AllocsPerRun(200, func() {
		for v := Value(0); v < 64; v++ {
			probe[0] = v
			sink += len(ix.Lookup(probe, cols))
		}
	}); n != 0 {
		t.Errorf("Index.Lookup allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		for v := Value(0); v < 64; v++ {
			probe[0] = v
			if ix.Contains(probe, cols) {
				sink++
			}
		}
	}); n != 0 {
		t.Errorf("Index.Contains allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		for v := Value(0); v < 64; v++ {
			probe[0] = v
			if row, ok := ix.LookupRow(probe, cols); ok {
				sink += len(row)
			}
		}
	}); n != 0 {
		t.Errorf("Index.LookupRow allocates %.1f per run, want 0", n)
	}
	km := NewKeyMap(cols)
	for _, tu := range r.Tuples {
		km.Intern(tu)
	}
	if n := testing.AllocsPerRun(200, func() {
		for v := Value(0); v < 64; v++ {
			probe[0] = v
			sink += km.Find(probe, cols)
		}
	}); n != 0 {
		t.Errorf("KeyMap.Find allocates %.1f per run, want 0", n)
	}
	// Relation.Contains on a sorted relation is allocation-free too.
	r.Sort()
	if n := testing.AllocsPerRun(200, func() {
		for v := Value(0); v < 64; v++ {
			probe[0] = v
			if r.Contains(probe) {
				sink++
			}
		}
	}); n != 0 {
		t.Errorf("sorted Relation.Contains allocates %.1f per run, want 0", n)
	}
	_ = sink
}
