package database

import (
	"math/rand"
	"sort"
	"testing"
)

func shardTestRelations(seed int64, n int) (*Relation, *Relation) {
	rng := rand.New(rand.NewSource(seed))
	r := NewRelation("R", 2)
	s := NewRelation("S", 2)
	for i := 0; i < n; i++ {
		r.Insert(Tuple{Value(rng.Intn(n / 2)), Value(i)})
		s.Insert(Tuple{Value(rng.Intn(n / 2)), Value(rng.Intn(n))})
	}
	return r, s
}

func TestShardCount(t *testing.T) {
	for k, want := range map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 8: 8, 9: 16, 1 << 17: 1 << 16} {
		if got := ShardCount(k); got != want {
			t.Fatalf("ShardCount(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestShardPartition(t *testing.T) {
	r, _ := shardTestRelations(1, 2000)
	cols := []int{0}
	const k = 8
	shards := Shard(r, cols, k)
	if len(shards) != k {
		t.Fatalf("got %d shards, want %d", len(shards), k)
	}
	total := 0
	for si, sh := range shards {
		total += sh.Len()
		prev := Value(-1)
		for _, tu := range sh.Tuples {
			// Routing: the tuple's key fingerprint must route here — the
			// same uint32(fp)&mask rule the sharded index builds use.
			if got := uint32(tu.KeyHash(cols)) & (k - 1); got != uint32(si) {
				t.Fatalf("tuple %v routed to shard %d, lives in %d", tu, got, si)
			}
			// Base order preserved: the second column is the insert ordinal.
			if tu[1] <= prev {
				t.Fatalf("shard %d reordered tuples: %v after %d", si, tu, prev)
			}
			prev = tu[1]
		}
	}
	if total != r.Len() {
		t.Fatalf("shards hold %d tuples, relation holds %d", total, r.Len())
	}
	// Equal keys always land together.
	where := map[Value]int{}
	for si, sh := range shards {
		for _, tu := range sh.Tuples {
			if prev, ok := where[tu[0]]; ok && prev != si {
				t.Fatalf("key %d split across shards %d and %d", tu[0], prev, si)
			}
			where[tu[0]] = si
		}
	}
}

// TestShardMatchesIndexShards pins the routing contract: Shard's
// partition is exactly the row ownership of a parallel index build with
// the same fan-out.
func TestShardMatchesIndexShards(t *testing.T) {
	r, _ := shardTestRelations(2, 4000)
	cols := []int{0}
	ix := buildIndex(r.Tuples, cols, r.Slab(), 4, nil)
	k := int(ix.mask) + 1
	parts := ShardRowIDs(r, cols, k)
	if len(parts) != k {
		t.Fatalf("ShardRowIDs returned %d parts for mask %d", len(parts), ix.mask)
	}
	shards := ix.state.Load().shards
	for si := range shards {
		got := append([]int32(nil), shards[si].rows...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := parts[si]
		if len(got) != len(want) {
			t.Fatalf("shard %d: index owns %d rows, Shard assigns %d", si, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shard %d: row sets differ at %d: %d vs %d", si, i, got[i], want[i])
			}
		}
	}
}

func sortedTuples(r *Relation) []Tuple {
	out := make([]Tuple, len(r.Tuples))
	copy(out, r.Tuples)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func TestSemijoinShardedMatches(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r, s := shardTestRelations(seed, 1000)
		want := sortedTuples(Semijoin(r, []int{0}, s, []int{0}))
		for _, k := range []int{1, 2, 8} {
			got := sortedTuples(SemijoinSharded(r, []int{0}, s, []int{0}, k))
			if len(got) != len(want) {
				t.Fatalf("seed %d k %d: %d tuples, want %d", seed, k, len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("seed %d k %d: tuple %d: %v != %v", seed, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSemijoinShardedForcedCollisions(t *testing.T) {
	// Under a degraded two-fingerprint hash every shard>2 is empty and all
	// keys pile into two buckets — the multiset answer must not change.
	restore := SetIndexHashForTesting(func(tu Tuple, cols []int) uint64 {
		return uint64(tu[cols[0]]) & 1
	})
	defer restore()
	r, s := shardTestRelations(3, 600)
	want := sortedTuples(Semijoin(r, []int{0}, s, []int{0}))
	got := sortedTuples(SemijoinSharded(r, []int{0}, s, []int{0}, 8))
	if len(got) != len(want) {
		t.Fatalf("%d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("tuple %d: %v != %v", i, got[i], want[i])
		}
	}
}
