package database

import "testing"

// TestGenerationMonotone: every mutation entry point advances the database
// generation, and the generation never decreases — the contract the plan
// cache's staleness check builds on.
func TestGenerationMonotone(t *testing.T) {
	db := NewDatabase()
	last := db.Generation()
	step := func(what string) {
		t.Helper()
		g := db.Generation()
		if g <= last {
			t.Fatalf("%s: generation %d not greater than previous %d", what, g, last)
		}
		last = g
	}

	r := NewRelation("R", 2)
	r.InsertValues(1, 2)
	db.AddRelation(r)
	step("AddRelation")

	r.InsertValues(3, 4)
	step("InsertValues")
	r.Insert(Tuple{5, 6})
	step("Insert")
	if err := r.TryInsert(Tuple{7, 8}); err != nil {
		t.Fatal(err)
	}
	step("TryInsert")
	r.Sort()
	step("Sort")
	r.Dedup()
	step("Dedup")

	db.AddRelation(NewRelation("S", 1))
	step("AddRelation(second)")
	db.Relation("S").InsertValues(9)
	step("InsertValues(second relation)")
}

// TestGenerationReadOnlyStable: reads — index builds, projections on
// copies, Contains — must NOT advance the generation, or every warm cache
// probe would miss.
func TestGenerationReadOnlyStable(t *testing.T) {
	db := NewDatabase()
	r := NewRelation("R", 2)
	for i := 0; i < 10; i++ {
		r.InsertValues(Value(i), Value(i%3))
	}
	db.AddRelation(r)
	g := db.Generation()

	r.IndexOn([]int{0})
	r.IndexOn([]int{1})
	_ = r.Contains(Tuple{1, 1})
	_ = r.Project("P", []int{0})
	_ = r.Select("Sel", func(t Tuple) bool { return t[0] > 2 })
	_ = r.Clone()
	_ = db.Size()
	_ = db.Domain()
	_ = db.Clone()

	if db.Generation() != g {
		t.Fatalf("read-only operations moved the generation: %d -> %d", g, db.Generation())
	}
}

// TestGenerationDistinguishesRelations: mutating a relation via a clone of
// the database does not advance the original's generation.
func TestGenerationIndependentClones(t *testing.T) {
	db := NewDatabase()
	r := NewRelation("R", 1)
	r.InsertValues(1)
	db.AddRelation(r)
	g := db.Generation()

	clone := db.Clone()
	cg := clone.Generation()
	clone.Relation("R").InsertValues(2)
	if db.Generation() != g {
		t.Fatal("mutating a clone moved the original's generation")
	}
	if clone.Generation() == cg {
		t.Fatal("mutating a clone did not move the clone's generation")
	}
}
