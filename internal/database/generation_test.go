package database

import "testing"

// TestGenerationMonotone: every content- or order-changing mutation entry
// point advances the database generation exactly once, no-op mutations
// leave it alone, and the generation never decreases — the contract the
// plan cache's staleness check and Prepared.Refresh build on.
func TestGenerationMonotone(t *testing.T) {
	db := NewDatabase()
	last := db.Generation()
	step := func(what string, want uint64) {
		t.Helper()
		g := db.Generation()
		if g < last {
			t.Fatalf("%s: generation went backwards: %d -> %d", what, last, g)
		}
		if g-last != want {
			t.Fatalf("%s: generation advanced by %d, want %d", what, g-last, want)
		}
		last = g
	}
	stepUp := func(what string) {
		t.Helper()
		g := db.Generation()
		if g <= last {
			t.Fatalf("%s: generation %d not greater than previous %d", what, g, last)
		}
		last = g
	}

	r := NewRelation("R", 2)
	r.InsertValues(5, 6)
	db.AddRelation(r)
	stepUp("AddRelation")

	r.InsertValues(3, 4)
	step("InsertValues", 1)
	r.Insert(Tuple{1, 2})
	step("Insert", 1)
	if err := r.TryInsert(Tuple{3, 4}); err != nil { // duplicate, for Dedup below
		t.Fatal(err)
	}
	step("TryInsert", 1)

	// The tuples are out of order, so Sort really moves rows: one bump.
	r.Sort()
	step("Sort(reorders)", 1)
	// Already sorted: no bump.
	r.Sort()
	step("Sort(no-op)", 0)
	// A duplicate (3,4) is present, so Dedup removes it: exactly one bump,
	// not the historical two (Sort's plus Dedup's own).
	r.Dedup()
	step("Dedup(removes)", 1)
	if r.Len() != 3 {
		t.Fatalf("after Dedup: %d tuples, want 3", r.Len())
	}
	// Sorted and duplicate-free: no bump.
	r.Dedup()
	step("Dedup(no-op)", 0)

	// A batch insert is one mutation regardless of size.
	if err := r.InsertBatch([]Tuple{{7, 8}, {9, 10}, {11, 12}}); err != nil {
		t.Fatal(err)
	}
	step("InsertBatch", 1)
	if err := r.InsertBatch(nil); err != nil {
		t.Fatal(err)
	}
	step("InsertBatch(empty)", 0)

	if !r.Delete(Tuple{7, 8}) {
		t.Fatal("Delete(7,8) found nothing")
	}
	step("Delete", 1)
	if r.Delete(Tuple{777, 888}) {
		t.Fatal("Delete of an absent tuple reported a removal")
	}
	step("Delete(absent)", 0)
	if n := r.DeleteBatch([]Tuple{{9, 10}, {11, 12}}); n != 2 {
		t.Fatalf("DeleteBatch removed %d occurrences, want 2", n)
	}
	step("DeleteBatch", 1)

	db.AddRelation(NewRelation("S", 1))
	stepUp("AddRelation(second)")
	db.Relation("S").InsertValues(9)
	step("InsertValues(second relation)", 1)
}

// TestGenerationFromTuplesBatched: building a relation from N rows costs
// O(1) generation steps, not N — the bulk paths route through InsertBatch.
func TestGenerationFromTuplesBatched(t *testing.T) {
	rows := make([]Tuple, 100)
	for i := range rows {
		rows[i] = Tuple{Value(i % 10), Value(i % 7)}
	}
	r := FromTuples("R", 2, rows)
	if g := r.Generation(); g > 2 {
		t.Fatalf("FromTuples of 100 rows advanced the generation %d times, want <= 2", g)
	}
	if r.Len() != 70 {
		t.Fatalf("FromTuples: %d tuples after dedup, want 70", r.Len())
	}
}

// TestGenerationReadOnlyStable: reads — index builds, projections on
// copies, Contains — must NOT advance the generation, or every warm cache
// probe would miss.
func TestGenerationReadOnlyStable(t *testing.T) {
	db := NewDatabase()
	r := NewRelation("R", 2)
	for i := 0; i < 10; i++ {
		r.InsertValues(Value(i), Value(i%3))
	}
	db.AddRelation(r)
	g := db.Generation()

	r.IndexOn([]int{0})
	r.IndexOn([]int{1})
	_ = r.Contains(Tuple{1, 1})
	_ = r.Project("P", []int{0})
	_ = r.Select("Sel", func(t Tuple) bool { return t[0] > 2 })
	_ = r.Clone()
	_ = db.Size()
	_ = db.Domain()
	_ = db.Clone()

	if db.Generation() != g {
		t.Fatalf("read-only operations moved the generation: %d -> %d", g, db.Generation())
	}
}

// TestGenerationDistinguishesRelations: mutating a relation via a clone of
// the database does not advance the original's generation.
func TestGenerationIndependentClones(t *testing.T) {
	db := NewDatabase()
	r := NewRelation("R", 1)
	r.InsertValues(1)
	db.AddRelation(r)
	g := db.Generation()

	clone := db.Clone()
	cg := clone.Generation()
	clone.Relation("R").InsertValues(2)
	if db.Generation() != g {
		t.Fatal("mutating a clone moved the original's generation")
	}
	if clone.Generation() == cg {
		t.Fatal("mutating a clone did not move the clone's generation")
	}
}
