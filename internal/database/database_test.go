package database

import (
	"testing"
	"testing/quick"
)

func TestTupleBasics(t *testing.T) {
	a := Tuple{1, 2, 3}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatalf("clone not equal")
	}
	b[0] = 9
	if a.Equal(b) {
		t.Fatalf("clone aliases original")
	}
	if a.Compare(Tuple{1, 2, 4}) != -1 {
		t.Errorf("compare lex order failed")
	}
	if a.Compare(Tuple{1, 2}) != 1 {
		t.Errorf("longer tuple should compare greater")
	}
	if a.Compare(Tuple{1, 2, 3}) != 0 {
		t.Errorf("equal tuples should compare 0")
	}
	if got := a.String(); got != "(1,2,3)" {
		t.Errorf("String = %q", got)
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Keys on the same column set must be injective.
	f := func(a, b int64, c, d int64) bool {
		t1 := Tuple{Value(a), Value(b)}
		t2 := Tuple{Value(c), Value(d)}
		k1 := t1.Key([]int{0, 1})
		k2 := t2.Key([]int{0, 1})
		return (k1 == k2) == t1.Equal(t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelationInsertDedup(t *testing.T) {
	r := NewRelation("R", 2)
	r.InsertValues(1, 2)
	r.InsertValues(3, 4)
	r.InsertValues(1, 2)
	r.InsertValues(0, 7)
	r.Dedup()
	if r.Len() != 3 {
		t.Fatalf("dedup: want 3 tuples, got %d", r.Len())
	}
	if !r.Tuples[0].Equal(Tuple{0, 7}) {
		t.Errorf("dedup should sort; first tuple = %v", r.Tuples[0])
	}
	if !r.Contains(Tuple{1, 2}) || r.Contains(Tuple{2, 1}) {
		t.Errorf("Contains wrong")
	}
}

func TestInsertArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on arity mismatch")
		}
	}()
	r := NewRelation("R", 2)
	r.Insert(Tuple{1})
}

func TestIndexLookup(t *testing.T) {
	r := NewRelation("R", 2)
	r.InsertValues(1, 10)
	r.InsertValues(1, 11)
	r.InsertValues(2, 20)
	ix := r.IndexOn([]int{0})
	if got := len(ix.Lookup(Tuple{1}, []int{0})); got != 2 {
		t.Errorf("lookup 1: want 2 tuples, got %d", got)
	}
	if got := len(ix.Lookup(Tuple{3}, []int{0})); got != 0 {
		t.Errorf("lookup 3: want 0 tuples, got %d", got)
	}
	if got, ok := ix.LookupRow(Tuple{2}, []int{0}); !ok || !got.Equal(Tuple{2, 20}) {
		t.Errorf("LookupRow 2: want (2,20), got %v ok=%v", got, ok)
	}
	if _, ok := ix.LookupRow(Tuple{9}, []int{0}); ok {
		t.Errorf("LookupRow 9: want miss")
	}
	if ix.Buckets() != 2 {
		t.Errorf("want 2 buckets, got %d", ix.Buckets())
	}
	// Index caching: same columns return the same index object.
	if r.IndexOn([]int{0}) != ix {
		t.Errorf("index not cached")
	}
	// Insert invalidates.
	r.InsertValues(3, 30)
	if r.IndexOn([]int{0}) == ix {
		t.Errorf("index not invalidated by insert")
	}
}

func TestProject(t *testing.T) {
	r := NewRelation("R", 3)
	r.InsertValues(1, 2, 3)
	r.InsertValues(1, 2, 4)
	r.InsertValues(5, 6, 7)
	p := r.Project("P", []int{0, 1})
	if p.Len() != 2 || p.Arity != 2 {
		t.Fatalf("projection wrong: %v", p.Tuples)
	}
	q := r.Project("Q", []int{2, 0})
	q.Sort()
	if !q.Tuples[0].Equal(Tuple{3, 1}) {
		t.Errorf("column reordering in projection failed: %v", q.Tuples)
	}
}

func TestSelect(t *testing.T) {
	r := NewRelation("R", 2)
	r.InsertValues(1, 1)
	r.InsertValues(1, 2)
	r.InsertValues(2, 2)
	s := r.Select("S", func(t Tuple) bool { return t[0] == t[1] })
	if s.Len() != 2 {
		t.Errorf("select diag: want 2, got %d", s.Len())
	}
}

func TestSemijoin(t *testing.T) {
	r := NewRelation("R", 2)
	r.InsertValues(1, 10)
	r.InsertValues(2, 20)
	r.InsertValues(3, 30)
	s := NewRelation("S", 2)
	s.InsertValues(10, 100)
	s.InsertValues(30, 300)
	out := Semijoin(r, []int{1}, s, []int{0})
	if out.Len() != 2 {
		t.Fatalf("semijoin: want 2 tuples, got %d", out.Len())
	}
	if out.Contains(Tuple{2, 20}) {
		t.Errorf("semijoin kept dangling tuple")
	}
}

func TestJoin(t *testing.T) {
	r := NewRelation("R", 2)
	r.InsertValues(1, 10)
	r.InsertValues(2, 20)
	s := NewRelation("S", 2)
	s.InsertValues(10, 100)
	s.InsertValues(10, 101)
	out := Join("J", r, []int{1}, s, []int{0})
	if out.Arity != 3 {
		t.Fatalf("join arity: want 3, got %d", out.Arity)
	}
	out.Sort()
	if out.Len() != 2 || !out.Tuples[0].Equal(Tuple{1, 10, 100}) || !out.Tuples[1].Equal(Tuple{1, 10, 101}) {
		t.Fatalf("join result wrong: %v", out.Tuples)
	}
}

func TestJoinIsSymmetricOnCount(t *testing.T) {
	// |R ⋈ S| must not depend on the join direction.
	f := func(rs, ss []uint8) bool {
		r := NewRelation("R", 2)
		for i, v := range rs {
			r.InsertValues(Value(i%5), Value(v%4))
		}
		s := NewRelation("S", 2)
		for i, v := range ss {
			s.InsertValues(Value(v%4), Value(i%5))
		}
		r.Dedup()
		s.Dedup()
		a := Join("A", r, []int{1}, s, []int{0})
		b := Join("B", s, []int{0}, r, []int{1})
		return a.Len() == b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDatabaseSizeDomainDegree(t *testing.T) {
	db := NewDatabase()
	e := NewRelation("E", 2)
	e.InsertValues(1, 2)
	e.InsertValues(2, 3)
	e.InsertValues(2, 4)
	db.AddRelation(e)
	u := NewRelation("U", 1)
	u.InsertValues(2)
	db.AddRelation(u)

	dom := db.Domain()
	if len(dom) != 4 {
		t.Fatalf("domain: want 4, got %v", dom)
	}
	// ‖D‖ = |σ| + |Dom| + Σ |R|·ar(R) = 2 + 4 + (3·2 + 1·1) = 13.
	if got := db.Size(); got != 13 {
		t.Errorf("size: want 13, got %d", got)
	}
	// deg(2) = occurs in 3 tuples of E and 1 of U = 4.
	if got := db.Degree(); got != 4 {
		t.Errorf("degree: want 4, got %d", got)
	}
}

func TestDegreeCountsTupleOnce(t *testing.T) {
	db := NewDatabase()
	e := NewRelation("E", 2)
	e.InsertValues(5, 5) // self-loop: element 5 occurs once in this tuple
	db.AddRelation(e)
	if got := db.Degree(); got != 1 {
		t.Errorf("degree of self-loop: want 1, got %d", got)
	}
}

func TestDatabaseClone(t *testing.T) {
	db := NewDatabase()
	e := NewRelation("E", 1)
	e.InsertValues(1)
	db.AddRelation(e)
	c := db.Clone()
	c.Relation("E").InsertValues(2)
	if db.Relation("E").Len() != 1 {
		t.Errorf("clone aliases original")
	}
	if got := c.Names(); len(got) != 1 || got[0] != "E" {
		t.Errorf("names: %v", got)
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("alice")
	b := d.Intern("bob")
	if a == b {
		t.Fatalf("distinct names got same value")
	}
	if d.Intern("alice") != a {
		t.Errorf("intern not idempotent")
	}
	if a == 0 || b == 0 {
		t.Errorf("value 0 must stay reserved")
	}
	if d.Name(a) != "alice" || d.Name(b) != "bob" {
		t.Errorf("name lookup failed")
	}
	if d.Name(99) != "?99" {
		t.Errorf("unknown value rendering: %q", d.Name(99))
	}
	if d.Len() != 2 {
		t.Errorf("len: want 2, got %d", d.Len())
	}
}

func TestRelationCloneIndependent(t *testing.T) {
	r := NewRelation("R", 1)
	r.InsertValues(1)
	c := r.Clone()
	c.Tuples[0][0] = 9
	if r.Tuples[0][0] != 1 {
		t.Errorf("relation clone aliases tuples")
	}
}

func TestTryInsertArityError(t *testing.T) {
	r := NewRelation("R", 2)
	if err := r.TryInsert(Tuple{1, 2, 3}); err == nil {
		t.Error("TryInsert accepted an arity mismatch")
	}
	if err := r.TryInsert(Tuple{1, 2}); err != nil {
		t.Errorf("TryInsert rejected a valid tuple: %v", err)
	}
	if r.Len() != 1 {
		t.Errorf("len after failed insert: want 1, got %d", r.Len())
	}
}

func randomRel(seed int64, name string, n, dom int) *Relation {
	r := NewRelation(name, 2)
	s := uint64(seed)
	next := func() int {
		s = s*6364136223846793005 + 1442695040888963407
		return int(s>>33) % dom
	}
	for i := 0; i < n; i++ {
		r.InsertValues(Value(next()+1), Value(next()+1))
	}
	r.Dedup()
	return r
}

func TestParIndexOnMatchesIndexOn(t *testing.T) {
	// Above the sharding threshold so the parallel path is really taken.
	r := randomRel(1, "R", 5000, 300)
	seq := NewRelation("R", 2)
	seq.Tuples = r.Tuples
	ixSeq := seq.IndexOn([]int{1})
	ixPar := r.ParIndexOn([]int{1}, 4)
	if ixSeq.Buckets() != ixPar.Buckets() {
		t.Fatalf("bucket count: seq %d, par %d", ixSeq.Buckets(), ixPar.Buckets())
	}
	cols := []int{1}
	for _, tu := range r.Tuples {
		a, b := ixSeq.Lookup(tu, cols), ixPar.Lookup(tu, cols)
		if len(a) != len(b) {
			t.Fatalf("key %v: seq %d tuples, par %d", tu[1], len(a), len(b))
		}
		for i := range a {
			if !ixSeq.Row(a[i]).Equal(ixPar.Row(b[i])) {
				t.Fatalf("key %v tuple %d: %v vs %v", tu[1], i, ixSeq.Row(a[i]), ixPar.Row(b[i]))
			}
		}
	}
	if got := r.ParIndexOn([]int{1}, 4); got != ixPar {
		t.Error("ParIndexOn did not cache")
	}
}

func TestParSemijoinMatchesSemijoin(t *testing.T) {
	for _, n := range []int{50, 5000} { // below and above the parallel threshold
		r := randomRel(2, "R", n, 97)
		s := randomRel(3, "S", n, 97)
		want := Semijoin(r, []int{1}, s, []int{0})
		for _, p := range []int{1, 2, 4, 8} {
			rc := NewRelation("R", 2)
			rc.Tuples = r.Tuples
			sc := NewRelation("S", 2)
			sc.Tuples = s.Tuples
			got := ParSemijoin(rc, []int{1}, sc, []int{0}, p)
			if got.Len() != want.Len() {
				t.Fatalf("n=%d par=%d: %d tuples, want %d", n, p, got.Len(), want.Len())
			}
			for i := range want.Tuples {
				if !got.Tuples[i].Equal(want.Tuples[i]) {
					t.Fatalf("n=%d par=%d: tuple %d order differs: %v vs %v",
						n, p, i, got.Tuples[i], want.Tuples[i])
				}
			}
		}
	}
}

func TestIndexOnConcurrent(t *testing.T) {
	r := randomRel(4, "R", 3000, 50)
	done := make(chan *Index, 8)
	for w := 0; w < 8; w++ {
		cols := []int{w % 2}
		go func(cols []int) { done <- r.IndexOn(cols) }(cols)
	}
	seen := map[*Index]bool{}
	for w := 0; w < 8; w++ {
		seen[<-done] = true
	}
	if len(seen) != 2 {
		t.Errorf("concurrent IndexOn built %d distinct indexes, want 2 (one per column set)", len(seen))
	}
}
