package database

import (
	"strings"
	"testing"
)

// lowerMaxRows shrinks the int32 row-id capacity guard for the duration of
// a test, so the overflow paths can be exercised without 2^31 rows.
func lowerMaxRows(t *testing.T, n int) {
	t.Helper()
	old := maxRows
	maxRows = n
	t.Cleanup(func() { maxRows = old })
}

func TestTryInsertRowLimit(t *testing.T) {
	lowerMaxRows(t, 3)
	r := NewRelation("R", 1)
	for i := 0; i < 3; i++ {
		if err := r.TryInsert(Tuple{Value(i)}); err != nil {
			t.Fatalf("insert %d: unexpected error %v", i, err)
		}
	}
	err := r.TryInsert(Tuple{Value(99)})
	if err == nil {
		t.Fatalf("insert beyond maxRows succeeded; want error")
	}
	if !strings.Contains(err.Error(), "int32") {
		t.Errorf("error %q does not mention the int32 row-id limit", err)
	}
	if r.Len() != 3 {
		t.Errorf("failed insert mutated the relation: len=%d, want 3", r.Len())
	}
}

func TestSlabBuildRowLimit(t *testing.T) {
	lowerMaxRows(t, 2)
	// Bypass TryInsert the way the internal relational operations do:
	// appending to Tuples directly.
	r := NewRelation("R", 2)
	for i := 0; i < 4; i++ {
		r.Tuples = append(r.Tuples, Tuple{Value(i), Value(i)})
	}
	defer func() {
		msg, ok := recover().(string)
		if !ok {
			t.Fatalf("slab build over maxRows did not panic")
		}
		if !strings.Contains(msg, "int32") {
			t.Errorf("panic %q does not mention the int32 row-id limit", msg)
		}
	}()
	r.IndexOn([]int{0}) // forces the slab build
}

func TestSlabBuildAtLimitOK(t *testing.T) {
	lowerMaxRows(t, 4)
	r := NewRelation("R", 1)
	for i := 0; i < 4; i++ {
		r.Insert(Tuple{Value(i)})
	}
	ix := r.IndexOn([]int{0})
	if got := len(ix.Lookup(Tuple{Value(2)}, []int{0})); got != 1 {
		t.Errorf("lookup at the row limit: got %d rows, want 1", got)
	}
}
