// Package database implements the finite relational structures of Section 2.1
// of the paper: domains, relations, databases, their sizes ‖D‖ and degrees,
// together with the basic relational operations (projection, selection,
// join, semijoin) that the query engines build on.
//
// Values are interned integers. A Dictionary maps external strings to Values
// so that databases over arbitrary constants can be loaded; all engines work
// on Values only, matching the RAM model of Section 2.3 where the domain
// comes with a linear order (here: the order on Value).
package database

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// maxRows caps a relation's tuple count so that row ids always fit in the
// int32 used by slab rows, index buckets, and KeyMap ids; beyond it the
// conversions in the index layer would silently truncate. It is a variable
// (not a const) only so the guard-path tests can lower it instead of
// allocating 2^31 rows.
var maxRows = math.MaxInt32

// Value is a domain element. The linear order on the domain required by the
// RAM model of Section 2.3.1 is the natural order on Value.
type Value int64

// Tuple is an ordered list of domain elements.
type Tuple []Value

// Clone returns a fresh copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports whether t and u are the same tuple.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically; it returns -1, 0 or +1.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		switch {
		case t[i] < u[i]:
			return -1
		case t[i] > u[i]:
			return 1
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// String renders the tuple as "(v1,v2,...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Key returns a hashable projection of t onto the given columns. The
// encoding is injective for fixed len(cols). The engines' hot paths use
// the allocation-free KeyHash fingerprints instead (see index.go); Key
// remains for callers that want an exact map key without collision
// handling.
func (t Tuple) Key(cols []int) string {
	var b []byte
	for _, c := range cols {
		v := t[c]
		b = append(b,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return string(b)
}

// FullKey returns a hashable encoding of the entire tuple.
func (t Tuple) FullKey() string {
	cols := make([]int, len(t))
	for i := range cols {
		cols[i] = i
	}
	return t.Key(cols)
}

// Relation is a named finite relation: a set of tuples of fixed arity.
// Reads (lookups, iteration, index builds) are safe from multiple
// goroutines; mutations (Insert, Dedup, Sort) are not and must be
// serialized by the caller.
type Relation struct {
	Name   string
	Arity  int
	Tuples []Tuple

	mu         sync.Mutex // guards index/slab construction
	indexes    map[uint64]*Index
	indexesBig map[string]*Index // column lists too wide for a packed signature
	slabPtr    atomic.Pointer[Slab]
	sorted     bool // set by Sort/Dedup, cleared by inserts; enables binary-search Contains
	mapped     bool // storage aliases read-only snapshot pages; promoted to heap on first mutation

	// gen counts mutations (inserts, deletes, reorders — anything that
	// invalidates indexes and may dangle row ids). Prepared query plans
	// snapshot Database.Generation at Bind time and refuse to execute once
	// it has advanced (plan.ErrStalePlan), or incrementally catch up via
	// the delta log below (plan.Prepared.Refresh).
	gen atomic.Uint64

	// Bounded per-generation delta log, populated only after
	// EnableDeltaLog (see mutate.go). deltaFloor is the oldest generation
	// DeltaSince can still answer from.
	logDeltas  bool
	deltaFloor uint64
	deltaSize  int
	deltas     []deltaRecord
}

// Generation returns the relation's mutation counter. It advances once
// per content- or order-changing mutation — Insert/TryInsert, InsertBatch,
// Delete/DeleteBatch, and Sort/Dedup when they actually move or remove
// tuples — exactly the operations that invalidate cached indexes, slabs,
// and row ids. No-op mutations (Sort on a sorted relation, Dedup with
// nothing to remove, deleting an absent tuple) leave it untouched so warm
// plans are not staled spuriously.
func (r *Relation) Generation() uint64 { return r.gen.Load() }

// NewRelation creates an empty relation of the given name and arity.
func NewRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity}
}

// FromTuples builds a relation from the given rows, deduplicating them.
// The rows land as one batch: at most two generation steps (the batch
// insert and a non-trivial Dedup), not one per row.
func FromTuples(name string, arity int, rows []Tuple) *Relation {
	r := NewRelation(name, arity)
	if err := r.InsertBatch(rows); err != nil {
		panic(err.Error())
	}
	r.Dedup()
	return r
}

// TryInsert appends a tuple, reporting an arity mismatch as an error. Load
// paths handling external (possibly malformed) input should use TryInsert
// so they can attach file/line context instead of crashing the process.
func (r *Relation) TryInsert(t Tuple) error {
	if len(t) != r.Arity {
		return fmt.Errorf("database: relation %s has arity %d, got tuple of length %d", r.Name, r.Arity, len(t))
	}
	if len(r.Tuples) >= maxRows {
		return fmt.Errorf("database: relation %s is full: row ids are int32, max %d rows", r.Name, maxRows)
	}
	r.Tuples = append(r.Tuples, t)
	r.mutateOne(t)
	return nil
}

// Insert appends a tuple. Duplicates are permitted until Dedup is called;
// the query engines always work on deduplicated relations. An arity
// mismatch is programmer error and panics; external input goes through
// TryInsert.
func (r *Relation) Insert(t Tuple) {
	if err := r.TryInsert(t); err != nil {
		panic(err.Error())
	}
}

// InsertValues is Insert with variadic values, convenient in tests.
func (r *Relation) InsertValues(vs ...Value) {
	r.Insert(Tuple(vs))
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Sort orders the tuples lexicographically. When tuples actually move,
// row ids held by previously built indexes would dangle, so the caches
// are invalidated and the generation advances (with an empty delta: the
// tuple set is unchanged, only row order). Sorting an already-sorted
// relation is a no-op and leaves the generation untouched.
func (r *Relation) Sort() {
	if r.sorted {
		return
	}
	if sort.SliceIsSorted(r.Tuples, func(i, j int) bool {
		return r.Tuples[i].Compare(r.Tuples[j]) < 0
	}) {
		r.mu.Lock()
		r.sorted = true
		r.mu.Unlock()
		return
	}
	sort.Slice(r.Tuples, func(i, j int) bool {
		return r.Tuples[i].Compare(r.Tuples[j]) < 0
	})
	r.mutate(nil, nil, true)
}

// Dedup sorts the relation and removes duplicate tuples. The generation
// advances at most once — and not at all when the relation is already
// sorted and duplicate-free, so a warm Prepared is not staled by a
// defensive Dedup that changed nothing.
func (r *Relation) Dedup() {
	if len(r.Tuples) == 0 {
		r.mu.Lock()
		r.sorted = true
		r.mu.Unlock()
		return
	}
	less := func(i, j int) bool {
		return r.Tuples[i].Compare(r.Tuples[j]) < 0
	}
	reordered := false
	if !r.sorted && !sort.SliceIsSorted(r.Tuples, less) {
		sort.Slice(r.Tuples, less)
		reordered = true
	}
	out := r.Tuples[:1]
	var removed []Tuple
	for _, t := range r.Tuples[1:] {
		if t.Equal(out[len(out)-1]) {
			removed = append(removed, t)
		} else {
			out = append(out, t)
		}
	}
	if !reordered && len(removed) == 0 {
		r.mu.Lock()
		r.sorted = true
		r.mu.Unlock()
		return
	}
	for i := len(out); i < len(r.Tuples); i++ {
		r.Tuples[i] = nil // release duplicates held by the backing array
	}
	r.Tuples = out
	r.mutate(nil, removed, true)
}

// Contains reports whether the relation holds the given tuple. On a
// sorted relation (any relation after Dedup or Sort) it is a plain binary
// search — no index build, no allocation. Otherwise it probes the
// full-arity fingerprint index, building it on first use.
func (r *Relation) Contains(t Tuple) bool {
	if r.sorted {
		i := sort.Search(len(r.Tuples), func(i int) bool {
			return r.Tuples[i].Compare(t) >= 0
		})
		return i < len(r.Tuples) && r.Tuples[i].Equal(t)
	}
	cols := identityCols(r.Arity)
	return r.IndexOn(cols).Contains(t, cols)
}

// Clone returns a deep copy of the relation (indexes are not copied).
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Name, r.Arity)
	c.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		c.Tuples[i] = t.Clone()
	}
	return c
}

// IndexOn builds (or returns the cached) hash index on the given columns.
// It is safe to call from multiple goroutines; concurrent builds on the
// same relation are serialized and the first result is shared.
func (r *Relation) IndexOn(cols []int) *Index {
	return r.indexOn(cols, 1)
}

// ParIndexOn is IndexOn with the build parallelized over par workers:
// tuple fingerprints are computed in parallel chunks, then the buckets are
// built as par fingerprint-disjoint shards, one goroutine each. The
// resulting merged view answers Lookup without locks and is cached like a
// sequential index.
func (r *Relation) ParIndexOn(cols []int, par int) *Index {
	return r.indexOn(cols, par)
}

func (r *Relation) indexOn(cols []int, par int) *Index {
	sig, packed := colsSig(cols)
	var bigSig string
	if !packed {
		bigSig = colsSigBig(cols)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if packed {
		if ix, ok := r.indexes[sig]; ok {
			return ix
		}
	} else if ix, ok := r.indexesBig[bigSig]; ok {
		return ix
	}
	if par < 2 || len(r.Tuples) < 1024 {
		par = 1
	}
	var hash keyHashFunc
	if p := testIndexHash.Load(); p != nil {
		hash = *p
	}
	ix := buildIndex(r.Tuples, cols, r.slabLocked(), par, hash)
	if packed {
		if r.indexes == nil {
			r.indexes = make(map[uint64]*Index)
		}
		r.indexes[sig] = ix
	} else {
		if r.indexesBig == nil {
			r.indexesBig = make(map[string]*Index)
		}
		r.indexesBig[bigSig] = ix
	}
	return ix
}

// Project returns a new deduplicated relation containing the projection of r
// onto the given columns.
func (r *Relation) Project(name string, cols []int) *Relation {
	out := NewRelation(name, len(cols))
	// Fingerprint-keyed dedup with exact collision resolution against the
	// already-kept rows.
	seen := make(map[uint64][]int32, len(r.Tuples))
	for _, t := range r.Tuples {
		fp := t.KeyHash(cols)
		dup := false
		for _, j := range seen[fp] {
			kept := out.Tuples[j]
			same := true
			for i, c := range cols {
				if kept[i] != t[c] {
					same = false
					break
				}
			}
			if same {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[fp] = append(seen[fp], int32(len(out.Tuples)))
		p := make(Tuple, len(cols))
		for i, c := range cols {
			p[i] = t[c]
		}
		out.Tuples = append(out.Tuples, p)
	}
	return out
}

// Select returns the sub-relation of tuples satisfying pred.
func (r *Relation) Select(name string, pred func(Tuple) bool) *Relation {
	out := NewRelation(name, r.Arity)
	for _, t := range r.Tuples {
		if pred(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// batchKernels gates the vectorized probe kernels (see batch.go) inside
// Semijoin, ParSemijoin, and Join. On by default; the step-identity and
// differential suites flip it off to run the whole engine through the
// scalar oracle path.
var batchKernels atomic.Bool

func init() { batchKernels.Store(true) }

// SetBatchKernels enables or disables the batched probe kernels process-
// wide and returns the previous setting. Scalar and batched execution
// produce bit-identical results (same tuples, same order, same counted
// steps); the toggle exists so differential tests can prove it.
func SetBatchKernels(on bool) bool {
	prev := batchKernels.Load()
	batchKernels.Store(on)
	return prev
}

// Semijoin keeps the tuples of r that agree with at least one tuple of s on
// the given column pairs (rCols[i] of r must equal sCols[i] of s). This is
// the workhorse of the Yannakakis full reducer (Theorem 4.2).
func Semijoin(r *Relation, rCols []int, s *Relation, sCols []int) *Relation {
	return semijoinProbe(r, rCols, s.IndexOn(sCols))
}

// SemijoinScalar is Semijoin on the scalar probe path regardless of the
// batch-kernel toggle: one hash, one bucket walk, one comparison per
// probe. It is the oracle of the scalar≡batched differential suite.
func SemijoinScalar(r *Relation, rCols []int, s *Relation, sCols []int) *Relation {
	return semijoinScalarProbe(r, rCols, s.IndexOn(sCols))
}

// semijoinProbe dispatches one probe pass over r against a prebuilt index.
func semijoinProbe(r *Relation, rCols []int, ix *Index) *Relation {
	if !batchKernels.Load() {
		return semijoinScalarProbe(r, rCols, ix)
	}
	out := NewRelation(r.Name, r.Arity)
	n := len(r.Tuples)
	if n == 0 {
		return out
	}
	sl := r.Slab()
	sc := GetScratch()
	ids := ix.ContainsBatch(sl, rCols, sc.Iota(n), sc)
	out.Tuples = make([]Tuple, len(ids))
	for i, id := range ids {
		out.Tuples[i] = r.Tuples[id]
	}
	sc.Release()
	return out
}

func semijoinScalarProbe(r *Relation, rCols []int, ix *Index) *Relation {
	out := NewRelation(r.Name, r.Arity)
	if len(r.Tuples) == 0 {
		return out
	}
	out.Tuples = make([]Tuple, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		if ix.Contains(t, rCols) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// ParSemijoin is Semijoin with the index build sharded over par workers and
// the probe pass chunked over par goroutines. The output tuple order is
// identical to the sequential Semijoin (chunk results are concatenated in
// input order), so parallel and sequential engines are diff-testable.
func ParSemijoin(r *Relation, rCols []int, s *Relation, sCols []int, par int) *Relation {
	if par < 2 || len(r.Tuples) < 1024 {
		// A single-worker call probes the relation's shared sequential
		// index; sharding the build buys nothing at this size.
		if par < 2 {
			return semijoinProbe(r, rCols, s.IndexOn(sCols))
		}
		return semijoinProbe(r, rCols, s.ParIndexOn(sCols, par))
	}
	ix := s.ParIndexOn(sCols, par)
	batched := batchKernels.Load()
	chunk := (len(r.Tuples) + par - 1) / par
	parts := make([][]Tuple, par)
	var wg sync.WaitGroup
	var sl Slab
	if batched {
		sl = r.Slab()
	}
	for w := 0; w < par; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(r.Tuples) {
			hi = len(r.Tuples)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			if batched {
				sc := GetScratch()
				ids := ix.ContainsBatch(sl, rCols, sc.IotaRange(lo, hi), sc)
				keep := make([]Tuple, len(ids))
				for i, id := range ids {
					keep[i] = r.Tuples[id]
				}
				sc.Release()
				parts[w] = keep
				return
			}
			keep := make([]Tuple, 0, hi-lo)
			for _, t := range r.Tuples[lo:hi] {
				if ix.Contains(t, rCols) {
					keep = append(keep, t)
				}
			}
			parts[w] = keep
		}(w, lo, hi)
	}
	wg.Wait()
	out := NewRelation(r.Name, r.Arity)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out.Tuples = make([]Tuple, 0, total)
	for _, p := range parts {
		out.Tuples = append(out.Tuples, p...)
	}
	return out
}

// joinKeepCols returns the columns of s carried into the join output: all
// of s's columns not already matched by sCols.
func joinKeepCols(s *Relation, sCols []int) []int {
	skip := make(map[int]bool, len(sCols))
	for _, c := range sCols {
		skip[c] = true
	}
	var keep []int
	for c := 0; c < s.Arity; c++ {
		if !skip[c] {
			keep = append(keep, c)
		}
	}
	return keep
}

// Join computes the natural join of r and s on the given column pairs. The
// result columns are all of r's columns followed by s's columns not in sCols.
func Join(name string, r *Relation, rCols []int, s *Relation, sCols []int) *Relation {
	if !batchKernels.Load() {
		return JoinScalar(name, r, rCols, s, sCols)
	}
	ix := s.IndexOn(sCols)
	keep := joinKeepCols(s, sCols)
	out := NewRelation(name, r.Arity+len(keep))
	n := len(r.Tuples)
	if n == 0 {
		return out
	}
	out.Tuples = make([]Tuple, 0, n)
	sl := r.Slab()
	sc := GetScratch()
	st := ix.tables()
	sc.epoch++
	// The probe loop is LookupBatch inlined (an emit closure on this hot
	// path costs an indirect call per matching probe); output tuples are
	// sliced off arena chunks instead of allocated one by one.
	ar := out.Arity
	const arenaRows = 1024
	var arena []Value
	for lo := 0; lo < n; lo += probeBatch {
		hi := lo + probeBatch
		if hi > n {
			hi = n
		}
		batch := sc.IotaRange(lo, hi)
		fps := sc.fps[:len(batch)]
		ix.hashRows(sl, rCols, batch, fps)
		for i, id := range batch {
			ids := sc.bucket(ix, st, sl, rCols, fps[i], id)
			if len(ids) == 0 {
				continue
			}
			t := r.Tuples[id]
			for _, sid := range ids {
				u := ix.Row(sid)
				if len(arena) < ar {
					arena = make([]Value, arenaRows*ar)
				}
				j := Tuple(arena[:ar:ar])
				arena = arena[ar:]
				copy(j, t)
				w := j[len(t):]
				for ci, c := range keep {
					w[ci] = u[c]
				}
				out.Tuples = append(out.Tuples, j)
			}
		}
	}
	sc.Release()
	return out
}

// JoinScalar is Join on the scalar probe path regardless of the batch-
// kernel toggle — the oracle of the scalar≡batched differential suite.
func JoinScalar(name string, r *Relation, rCols []int, s *Relation, sCols []int) *Relation {
	ix := s.IndexOn(sCols)
	keep := joinKeepCols(s, sCols)
	out := NewRelation(name, r.Arity+len(keep))
	if len(r.Tuples) == 0 {
		return out
	}
	out.Tuples = make([]Tuple, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		for _, id := range ix.Lookup(t, rCols) {
			u := ix.Row(id)
			j := make(Tuple, 0, out.Arity)
			j = append(j, t...)
			for _, c := range keep {
				j = append(j, u[c])
			}
			out.Tuples = append(out.Tuples, j)
		}
	}
	return out
}

// Database is a finite relational structure (Section 2.1).
type Database struct {
	Relations map[string]*Relation
	order     []string // insertion order, for deterministic iteration

	// mutGen counts structural mutations (AddRelation). Together with the
	// per-relation counters it forms Generation.
	mutGen atomic.Uint64
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{Relations: make(map[string]*Relation)}
}

// AddRelation registers r under its name, replacing any previous relation of
// that name.
func (db *Database) AddRelation(r *Relation) {
	if _, ok := db.Relations[r.Name]; !ok {
		db.order = append(db.order, r.Name)
	}
	db.Relations[r.Name] = r
	db.mutGen.Add(1)
}

// Generation is a monotone counter that advances on every mutation of the
// database: adding or replacing a relation, and any insert/Sort/Dedup on a
// member relation. Prepared query plans snapshot it at Bind time; a changed
// generation means cached row ids, indexes, and reduced relations may be
// stale. The structural counter is shifted past the per-relation sum so
// that replacing a relation (which may lower the sum) still strictly
// increases the result; the read is allocation-free.
func (db *Database) Generation() uint64 {
	g := db.mutGen.Load() << 24
	for _, name := range db.order {
		g += db.Relations[name].gen.Load()
	}
	return g
}

// Relation returns the named relation, or nil.
func (db *Database) Relation(name string) *Relation { return db.Relations[name] }

// Names returns the relation names in insertion order.
func (db *Database) Names() []string { return append([]string(nil), db.order...) }

// Domain returns the sorted active domain: every value occurring in some
// tuple of some relation.
func (db *Database) Domain() []Value {
	seen := make(map[Value]bool)
	for _, r := range db.Relations {
		for _, t := range r.Tuples {
			for _, v := range t {
				seen[v] = true
			}
		}
	}
	dom := make([]Value, 0, len(seen))
	for v := range seen {
		dom = append(dom, v)
	}
	sort.Slice(dom, func(i, j int) bool { return dom[i] < dom[j] })
	return dom
}

// Size computes ‖D‖ = |σ| + |Dom(D)| + Σ_R |R^D|·ar(R) as in Section 2.1.
func (db *Database) Size() int {
	n := len(db.Relations) + len(db.Domain())
	for _, r := range db.Relations {
		n += r.Len() * r.Arity
	}
	return n
}

// Degree returns deg(D) = max over domain elements x of the number of tuples
// (over all relations) in which x occurs (Section 3.1).
func (db *Database) Degree() int {
	deg := make(map[Value]int)
	for _, r := range db.Relations {
		for _, t := range r.Tuples {
			seen := make(map[Value]bool, len(t))
			for _, v := range t {
				if !seen[v] {
					seen[v] = true
					deg[v]++
				}
			}
		}
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	return max
}

// Clone returns a deep copy of the database.
func (db *Database) Clone() *Database {
	c := NewDatabase()
	for _, name := range db.order {
		c.AddRelation(db.Relations[name].Clone())
	}
	return c
}

// Dictionary interns external string constants as Values, so text-format
// data files can be loaded. Value 0 is reserved (never handed out) so
// engines may use it as a sentinel such as the ⊥ of Theorem 4.8.
type Dictionary struct {
	toValue map[string]Value
	toName  []string // toName[v-1] is the name of Value v
}

// NewDictionary creates an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{toValue: make(map[string]Value)}
}

// Intern returns the Value for name, assigning a fresh one if needed.
func (d *Dictionary) Intern(name string) Value {
	if v, ok := d.toValue[name]; ok {
		return v
	}
	d.toName = append(d.toName, name)
	v := Value(len(d.toName))
	d.toValue[name] = v
	return v
}

// Name returns the external name of v, or "?<v>" if v was never interned.
func (d *Dictionary) Name(v Value) string {
	i := int(v) - 1
	if i < 0 || i >= len(d.toName) {
		return fmt.Sprintf("?%d", v)
	}
	return d.toName[i]
}

// Len returns the number of interned names.
func (d *Dictionary) Len() int { return len(d.toName) }
