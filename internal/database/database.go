// Package database implements the finite relational structures of Section 2.1
// of the paper: domains, relations, databases, their sizes ‖D‖ and degrees,
// together with the basic relational operations (projection, selection,
// join, semijoin) that the query engines build on.
//
// Values are interned integers. A Dictionary maps external strings to Values
// so that databases over arbitrary constants can be loaded; all engines work
// on Values only, matching the RAM model of Section 2.3 where the domain
// comes with a linear order (here: the order on Value).
package database

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Value is a domain element. The linear order on the domain required by the
// RAM model of Section 2.3.1 is the natural order on Value.
type Value int64

// Tuple is an ordered list of domain elements.
type Tuple []Value

// Clone returns a fresh copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports whether t and u are the same tuple.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically; it returns -1, 0 or +1.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		switch {
		case t[i] < u[i]:
			return -1
		case t[i] > u[i]:
			return 1
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// String renders the tuple as "(v1,v2,...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Key returns a hashable projection of t onto the given columns. The
// encoding is injective for fixed len(cols).
func (t Tuple) Key(cols []int) string {
	var b []byte
	for _, c := range cols {
		v := t[c]
		b = append(b,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return string(b)
}

// FullKey returns a hashable encoding of the entire tuple.
func (t Tuple) FullKey() string {
	cols := make([]int, len(t))
	for i := range cols {
		cols[i] = i
	}
	return t.Key(cols)
}

// Relation is a named finite relation: a set of tuples of fixed arity.
// Reads (lookups, iteration, index builds) are safe from multiple
// goroutines; mutations (Insert, Dedup, Sort) are not and must be
// serialized by the caller.
type Relation struct {
	Name   string
	Arity  int
	Tuples []Tuple

	mu      sync.Mutex // guards indexes
	indexes map[string]*Index
}

// NewRelation creates an empty relation of the given name and arity.
func NewRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity}
}

// FromTuples builds a relation from the given rows, deduplicating them.
func FromTuples(name string, arity int, rows []Tuple) *Relation {
	r := NewRelation(name, arity)
	for _, t := range rows {
		r.Insert(t)
	}
	r.Dedup()
	return r
}

// TryInsert appends a tuple, reporting an arity mismatch as an error. Load
// paths handling external (possibly malformed) input should use TryInsert
// so they can attach file/line context instead of crashing the process.
func (r *Relation) TryInsert(t Tuple) error {
	if len(t) != r.Arity {
		return fmt.Errorf("database: relation %s has arity %d, got tuple of length %d", r.Name, r.Arity, len(t))
	}
	r.Tuples = append(r.Tuples, t)
	r.invalidateIndexes()
	return nil
}

// Insert appends a tuple. Duplicates are permitted until Dedup is called;
// the query engines always work on deduplicated relations. An arity
// mismatch is programmer error and panics; external input goes through
// TryInsert.
func (r *Relation) Insert(t Tuple) {
	if err := r.TryInsert(t); err != nil {
		panic(err.Error())
	}
}

func (r *Relation) invalidateIndexes() {
	r.mu.Lock()
	r.indexes = nil
	r.mu.Unlock()
}

// InsertValues is Insert with variadic values, convenient in tests.
func (r *Relation) InsertValues(vs ...Value) {
	r.Insert(Tuple(vs))
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Sort orders the tuples lexicographically.
func (r *Relation) Sort() {
	sort.Slice(r.Tuples, func(i, j int) bool {
		return r.Tuples[i].Compare(r.Tuples[j]) < 0
	})
}

// Dedup sorts the relation and removes duplicate tuples.
func (r *Relation) Dedup() {
	if len(r.Tuples) == 0 {
		return
	}
	r.Sort()
	out := r.Tuples[:1]
	for _, t := range r.Tuples[1:] {
		if !t.Equal(out[len(out)-1]) {
			out = append(out, t)
		}
	}
	r.Tuples = out
	r.invalidateIndexes()
}

// Contains reports whether the relation holds the given tuple.
// It builds (and caches) a full-tuple index on first use.
func (r *Relation) Contains(t Tuple) bool {
	cols := make([]int, r.Arity)
	for i := range cols {
		cols[i] = i
	}
	idx := r.IndexOn(cols)
	return len(idx.Lookup(t.Key(cols))) > 0
}

// Clone returns a deep copy of the relation (indexes are not copied).
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Name, r.Arity)
	c.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		c.Tuples[i] = t.Clone()
	}
	return c
}

// Index is a hash index of a relation's tuples keyed on a column subset.
// The buckets are held in one or more shards with disjoint key sets,
// partitioned by key hash; a sequential build produces a single shard, a
// parallel build (ParIndexOn) one shard per worker. After construction the
// index is read-only, so lookups from many goroutines need no locking.
type Index struct {
	Cols   []int
	shards []map[string][]Tuple // disjoint by key hash; len is a power of two
	mask   uint32               // len(shards) - 1
}

// shardHash is FNV-1a over the key bytes; it routes a key to its shard.
func shardHash(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (ix *Index) shardFor(key string) map[string][]Tuple {
	if ix.mask == 0 {
		return ix.shards[0]
	}
	return ix.shards[shardHash(key)&ix.mask]
}

// Lookup returns all indexed tuples whose key columns encode to key.
func (ix *Index) Lookup(key string) []Tuple { return ix.shardFor(key)[key] }

// LookupTuple projects probe onto probeCols and returns the matching bucket.
func (ix *Index) LookupTuple(probe Tuple, probeCols []int) []Tuple {
	return ix.Lookup(probe.Key(probeCols))
}

// Buckets returns the number of distinct keys in the index.
func (ix *Index) Buckets() int {
	n := 0
	for _, s := range ix.shards {
		n += len(s)
	}
	return n
}

// IndexOn builds (or returns the cached) hash index on the given columns.
// It is safe to call from multiple goroutines; concurrent builds on the
// same relation are serialized and the first result is shared.
func (r *Relation) IndexOn(cols []int) *Index {
	return r.indexOn(cols, 1)
}

// ParIndexOn is IndexOn with the build parallelized over par workers:
// tuple keys are encoded in parallel chunks, then the buckets are built as
// par hash-disjoint shards, one goroutine each. The resulting merged view
// answers Lookup without locks and is cached like a sequential index.
func (r *Relation) ParIndexOn(cols []int, par int) *Index {
	return r.indexOn(cols, par)
}

func (r *Relation) indexOn(cols []int, par int) *Index {
	sig := fmt.Sprint(cols)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.indexes == nil {
		r.indexes = make(map[string]*Index)
	}
	if ix, ok := r.indexes[sig]; ok {
		return ix
	}
	if par < 2 || len(r.Tuples) < 1024 {
		ix := &Index{Cols: append([]int(nil), cols...),
			shards: []map[string][]Tuple{make(map[string][]Tuple, len(r.Tuples))}}
		for _, t := range r.Tuples {
			k := t.Key(cols)
			ix.shards[0][k] = append(ix.shards[0][k], t)
		}
		r.indexes[sig] = ix
		return ix
	}
	ix := buildSharded(r.Tuples, cols, par)
	r.indexes[sig] = ix
	return ix
}

// buildSharded builds the index in two parallel phases: encode all keys in
// chunks, then insert into hash-disjoint shards, one worker per shard.
func buildSharded(tuples []Tuple, cols []int, par int) *Index {
	if par > runtime.GOMAXPROCS(0) {
		par = runtime.GOMAXPROCS(0)
	}
	shardCount := 1
	for shardCount < par {
		shardCount <<= 1
	}
	keys := make([]string, len(tuples))
	var wg sync.WaitGroup
	chunk := (len(tuples) + par - 1) / par
	for w := 0; w < par; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(tuples) {
			hi = len(tuples)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				keys[i] = tuples[i].Key(cols)
			}
		}(lo, hi)
	}
	wg.Wait()
	ix := &Index{Cols: append([]int(nil), cols...),
		shards: make([]map[string][]Tuple, shardCount),
		mask:   uint32(shardCount - 1)}
	for s := 0; s < shardCount; s++ {
		wg.Add(1)
		go func(s uint32) {
			defer wg.Done()
			m := make(map[string][]Tuple, len(tuples)/shardCount+1)
			for i, k := range keys {
				if shardHash(k)&ix.mask == s {
					m[k] = append(m[k], tuples[i])
				}
			}
			ix.shards[s] = m
		}(uint32(s))
	}
	wg.Wait()
	return ix
}

// Project returns a new deduplicated relation containing the projection of r
// onto the given columns.
func (r *Relation) Project(name string, cols []int) *Relation {
	out := NewRelation(name, len(cols))
	seen := make(map[string]bool, len(r.Tuples))
	for _, t := range r.Tuples {
		k := t.Key(cols)
		if seen[k] {
			continue
		}
		seen[k] = true
		p := make(Tuple, len(cols))
		for i, c := range cols {
			p[i] = t[c]
		}
		out.Tuples = append(out.Tuples, p)
	}
	return out
}

// Select returns the sub-relation of tuples satisfying pred.
func (r *Relation) Select(name string, pred func(Tuple) bool) *Relation {
	out := NewRelation(name, r.Arity)
	for _, t := range r.Tuples {
		if pred(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Semijoin keeps the tuples of r that agree with at least one tuple of s on
// the given column pairs (rCols[i] of r must equal sCols[i] of s). This is
// the workhorse of the Yannakakis full reducer (Theorem 4.2).
func Semijoin(r *Relation, rCols []int, s *Relation, sCols []int) *Relation {
	ix := s.IndexOn(sCols)
	out := NewRelation(r.Name, r.Arity)
	for _, t := range r.Tuples {
		if len(ix.LookupTuple(t, rCols)) > 0 {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// ParSemijoin is Semijoin with the index build sharded over par workers and
// the probe pass chunked over par goroutines. The output tuple order is
// identical to the sequential Semijoin (chunk results are concatenated in
// input order), so parallel and sequential engines are diff-testable.
func ParSemijoin(r *Relation, rCols []int, s *Relation, sCols []int, par int) *Relation {
	if par < 2 || len(r.Tuples) < 1024 {
		ix := s.ParIndexOn(sCols, par)
		out := NewRelation(r.Name, r.Arity)
		for _, t := range r.Tuples {
			if len(ix.LookupTuple(t, rCols)) > 0 {
				out.Tuples = append(out.Tuples, t)
			}
		}
		return out
	}
	ix := s.ParIndexOn(sCols, par)
	chunk := (len(r.Tuples) + par - 1) / par
	parts := make([][]Tuple, par)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(r.Tuples) {
			hi = len(r.Tuples)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var keep []Tuple
			for _, t := range r.Tuples[lo:hi] {
				if len(ix.LookupTuple(t, rCols)) > 0 {
					keep = append(keep, t)
				}
			}
			parts[w] = keep
		}(w, lo, hi)
	}
	wg.Wait()
	out := NewRelation(r.Name, r.Arity)
	for _, p := range parts {
		out.Tuples = append(out.Tuples, p...)
	}
	return out
}

// Join computes the natural join of r and s on the given column pairs. The
// result columns are all of r's columns followed by s's columns not in sCols.
func Join(name string, r *Relation, rCols []int, s *Relation, sCols []int) *Relation {
	ix := s.IndexOn(sCols)
	skip := make(map[int]bool, len(sCols))
	for _, c := range sCols {
		skip[c] = true
	}
	var keep []int
	for c := 0; c < s.Arity; c++ {
		if !skip[c] {
			keep = append(keep, c)
		}
	}
	out := NewRelation(name, r.Arity+len(keep))
	for _, t := range r.Tuples {
		for _, u := range ix.LookupTuple(t, rCols) {
			j := make(Tuple, 0, out.Arity)
			j = append(j, t...)
			for _, c := range keep {
				j = append(j, u[c])
			}
			out.Tuples = append(out.Tuples, j)
		}
	}
	return out
}

// Database is a finite relational structure (Section 2.1).
type Database struct {
	Relations map[string]*Relation
	order     []string // insertion order, for deterministic iteration
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{Relations: make(map[string]*Relation)}
}

// AddRelation registers r under its name, replacing any previous relation of
// that name.
func (db *Database) AddRelation(r *Relation) {
	if _, ok := db.Relations[r.Name]; !ok {
		db.order = append(db.order, r.Name)
	}
	db.Relations[r.Name] = r
}

// Relation returns the named relation, or nil.
func (db *Database) Relation(name string) *Relation { return db.Relations[name] }

// Names returns the relation names in insertion order.
func (db *Database) Names() []string { return append([]string(nil), db.order...) }

// Domain returns the sorted active domain: every value occurring in some
// tuple of some relation.
func (db *Database) Domain() []Value {
	seen := make(map[Value]bool)
	for _, r := range db.Relations {
		for _, t := range r.Tuples {
			for _, v := range t {
				seen[v] = true
			}
		}
	}
	dom := make([]Value, 0, len(seen))
	for v := range seen {
		dom = append(dom, v)
	}
	sort.Slice(dom, func(i, j int) bool { return dom[i] < dom[j] })
	return dom
}

// Size computes ‖D‖ = |σ| + |Dom(D)| + Σ_R |R^D|·ar(R) as in Section 2.1.
func (db *Database) Size() int {
	n := len(db.Relations) + len(db.Domain())
	for _, r := range db.Relations {
		n += r.Len() * r.Arity
	}
	return n
}

// Degree returns deg(D) = max over domain elements x of the number of tuples
// (over all relations) in which x occurs (Section 3.1).
func (db *Database) Degree() int {
	deg := make(map[Value]int)
	for _, r := range db.Relations {
		for _, t := range r.Tuples {
			seen := make(map[Value]bool, len(t))
			for _, v := range t {
				if !seen[v] {
					seen[v] = true
					deg[v]++
				}
			}
		}
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	return max
}

// Clone returns a deep copy of the database.
func (db *Database) Clone() *Database {
	c := NewDatabase()
	for _, name := range db.order {
		c.AddRelation(db.Relations[name].Clone())
	}
	return c
}

// Dictionary interns external string constants as Values, so text-format
// data files can be loaded. Value 0 is reserved (never handed out) so
// engines may use it as a sentinel such as the ⊥ of Theorem 4.8.
type Dictionary struct {
	toValue map[string]Value
	toName  []string // toName[v-1] is the name of Value v
}

// NewDictionary creates an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{toValue: make(map[string]Value)}
}

// Intern returns the Value for name, assigning a fresh one if needed.
func (d *Dictionary) Intern(name string) Value {
	if v, ok := d.toValue[name]; ok {
		return v
	}
	d.toName = append(d.toName, name)
	v := Value(len(d.toName))
	d.toValue[name] = v
	return v
}

// Name returns the external name of v, or "?<v>" if v was never interned.
func (d *Dictionary) Name(v Value) string {
	i := int(v) - 1
	if i < 0 || i >= len(d.toName) {
		return fmt.Sprintf("?%d", v)
	}
	return d.toName[i]
}

// Len returns the number of interned names.
func (d *Dictionary) Len() int { return len(d.toName) }
