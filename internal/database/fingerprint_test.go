package database_test

// Equivalence suite for the fingerprint-keyed index: for 250 random
// relations, every probe through the fingerprint API must agree with the
// string-key (Tuple.Key) semantics the engine used before the columnar
// slab rewrite.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/database"
	"repro/internal/qgen"
)

func TestFingerprintMatchesStringKeys(t *testing.T) {
	for seed := int64(0); seed < 250; seed++ {
		rng := rand.New(rand.NewSource(seed))
		arity := 1 + rng.Intn(4)
		r := qgen.RandRelation(rng, "R", arity, rng.Intn(50), 5)
		k := 1 + rng.Intn(arity)
		cols := rng.Perm(arity)[:k]
		var ix *database.Index
		if rng.Intn(2) == 0 {
			ix = r.IndexOn(cols)
		} else {
			ix = r.ParIndexOn(cols, 1+rng.Intn(4))
		}

		// String-key ground truth: group rows by Tuple.Key.
		groups := map[string][]database.Tuple{}
		for _, tu := range r.Tuples {
			key := tu.Key(cols)
			groups[key] = append(groups[key], tu)
		}
		if ix.Buckets() != len(groups) {
			t.Fatalf("seed %d: Buckets() = %d, string keys = %d", seed, ix.Buckets(), len(groups))
		}

		// Probes over a larger domain so both hits and misses occur. The
		// probe tuple has its own random shape: key values land in probeCols
		// positions.
		probeCols := cols
		for i := 0; i < 30; i++ {
			probe := make(database.Tuple, arity)
			for j := range probe {
				probe[j] = database.Value(rng.Intn(7))
			}
			key := probe.Key(probeCols)
			want := groups[key]
			var got []database.Tuple
			for _, id := range ix.Lookup(probe, probeCols) {
				got = append(got, ix.Row(id))
			}
			if !reflect.DeepEqual(sortTuples(got), sortTuples(want)) {
				t.Fatalf("seed %d probe %v cols %v: Lookup = %v, string-key scan = %v\n%s",
					seed, probe, cols, got, want, dump(r))
			}
			if got := ix.Contains(probe, probeCols); got != (len(want) > 0) {
				t.Fatalf("seed %d probe %v: Contains = %v, want %v", seed, probe, got, len(want) > 0)
			}
			row, ok := ix.LookupRow(probe, probeCols)
			if ok != (len(want) > 0) {
				t.Fatalf("seed %d probe %v: LookupRow ok = %v, want %v", seed, probe, ok, len(want) > 0)
			}
			if ok && row.Key(cols) != key {
				t.Fatalf("seed %d probe %v: LookupRow returned %v, key %q != %q", seed, probe, row, row.Key(cols), key)
			}
		}
	}
}

// TestContainsSortedAndUnsorted: Relation.Contains agrees with a scan in
// both the hash-probe (unsorted) and binary-search (sorted) regimes, and
// across the transitions insert→sort→insert.
func TestContainsSortedAndUnsorted(t *testing.T) {
	for seed := int64(0); seed < 250; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		arity := 1 + rng.Intn(3)
		r := qgen.RandRelation(rng, "R", arity, rng.Intn(40), 4)
		check := func(stage string) {
			for i := 0; i < 25; i++ {
				probe := make(database.Tuple, arity)
				for j := range probe {
					probe[j] = database.Value(rng.Intn(6))
				}
				want := false
				for _, tu := range r.Tuples {
					if tu.Equal(probe) {
						want = true
						break
					}
				}
				if got := r.Contains(probe); got != want {
					t.Fatalf("seed %d %s: Contains(%v) = %v, scan = %v\n%s", seed, stage, probe, got, want, dump(r))
				}
			}
		}
		check("unsorted")
		r.Sort()
		check("sorted")
		r.InsertValues(make(database.Tuple, arity)...) // clears the sorted flag
		check("after insert")
		r.Dedup()
		check("after dedup")
	}
}
