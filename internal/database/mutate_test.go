package database

import (
	"sort"
	"testing"
)

func tuplesEqual(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func sortTuples(ts []Tuple) []Tuple {
	out := append([]Tuple(nil), ts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// TestDeltaLogWindow: DeltaSince reconstructs the multiset difference for
// any generation inside the logged window, and reports unavailability
// outside it.
func TestDeltaLogWindow(t *testing.T) {
	r := NewRelation("R", 2)
	r.InsertValues(1, 1)

	// Before EnableDeltaLog nothing is recorded.
	g0 := r.Generation()
	r.InsertValues(2, 2)
	if _, ok := r.DeltaSince(g0); ok {
		t.Fatal("DeltaSince available before EnableDeltaLog")
	}

	r.EnableDeltaLog()
	base := r.Generation()
	if d, ok := r.DeltaSince(base); !ok || !d.Empty() {
		t.Fatalf("DeltaSince(current) = %v, %v; want empty, true", d, ok)
	}
	// Generations before the enable point are outside the horizon.
	if _, ok := r.DeltaSince(g0); ok {
		t.Fatal("DeltaSince available for a generation before EnableDeltaLog")
	}

	r.InsertValues(3, 3)
	mid := r.Generation()
	r.Insert(Tuple{3, 3}) // duplicate occurrence: logged again
	if !r.Delete(Tuple{1, 1}) {
		t.Fatal("Delete(1,1) found nothing")
	}

	d, ok := r.DeltaSince(base)
	if !ok {
		t.Fatal("DeltaSince(base) unavailable")
	}
	if !tuplesEqual(sortTuples(d.Ins), []Tuple{{3, 3}, {3, 3}}) {
		t.Errorf("Ins = %v, want two occurrences of (3,3)", d.Ins)
	}
	if !tuplesEqual(d.Del, []Tuple{{1, 1}}) {
		t.Errorf("Del = %v, want [(1,1)]", d.Del)
	}

	d, ok = r.DeltaSince(mid)
	if !ok {
		t.Fatal("DeltaSince(mid) unavailable")
	}
	if !tuplesEqual(d.Ins, []Tuple{{3, 3}}) || !tuplesEqual(d.Del, []Tuple{{1, 1}}) {
		t.Errorf("DeltaSince(mid) = %+v, want Ins=[(3,3)] Del=[(1,1)]", d)
	}

	// A second EnableDeltaLog must not reset the window: an older
	// statement's bind generation stays answerable.
	r.EnableDeltaLog()
	if _, ok := r.DeltaSince(base); !ok {
		t.Fatal("re-enabling the delta log truncated the window")
	}

	// A future generation is not part of this relation's history.
	if _, ok := r.DeltaSince(r.Generation() + 5); ok {
		t.Fatal("DeltaSince accepted a future generation")
	}
}

// TestDeltaLogReorderOnly: a real Sort changes row order but not the
// tuple set, so the generation advances with an EMPTY delta — set-level
// consumers see no change, row-id holders still notice.
func TestDeltaLogReorderOnly(t *testing.T) {
	r := NewRelation("R", 1)
	r.InsertValues(5)
	r.InsertValues(1)
	r.EnableDeltaLog()
	g := r.Generation()
	r.Sort()
	if r.Generation() != g+1 {
		t.Fatalf("reordering Sort advanced generation by %d, want 1", r.Generation()-g)
	}
	d, ok := r.DeltaSince(g)
	if !ok || !d.Empty() {
		t.Fatalf("DeltaSince over a reorder-only Sort = %+v, %v; want empty, true", d, ok)
	}
}

// TestDeltaLogBounded: the log trims its oldest records under the tuple
// and record bounds, moving the horizon forward; an oversized single
// mutation truncates the log entirely.
func TestDeltaLogBounded(t *testing.T) {
	r := NewRelation("R", 1)
	r.EnableDeltaLog()
	base := r.Generation()
	for i := 0; i < maxDeltaRecords+10; i++ {
		r.InsertValues(Value(i))
	}
	if len(r.deltas) > maxDeltaRecords {
		t.Fatalf("log holds %d records, bound is %d", len(r.deltas), maxDeltaRecords)
	}
	if _, ok := r.DeltaSince(base); ok {
		t.Fatal("DeltaSince answered from beyond the trimmed horizon")
	}
	if _, ok := r.DeltaSince(r.deltaFloor); !ok {
		t.Fatal("DeltaSince unavailable at the advertised floor")
	}

	// One mutation larger than the whole budget: log truncated, only the
	// current generation remains answerable.
	big := make([]Tuple, maxDeltaTuples+1)
	for i := range big {
		big[i] = Tuple{Value(i + 100000)}
	}
	gPrev := r.Generation()
	if err := r.InsertBatch(big); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.DeltaSince(gPrev); ok {
		t.Fatal("DeltaSince answered across an oversized mutation")
	}
	if d, ok := r.DeltaSince(r.Generation()); !ok || !d.Empty() {
		t.Fatal("current generation unanswerable after truncation")
	}
}

// TestDeleteBatchSemantics: every occurrence of each listed tuple goes,
// order of survivors is preserved, wrong-arity and absent tuples are
// ignored, and sortedness survives.
func TestDeleteBatchSemantics(t *testing.T) {
	r := NewRelation("R", 2)
	for _, t2 := range []Tuple{{1, 1}, {2, 2}, {1, 1}, {3, 3}, {2, 2}} {
		r.Insert(t2)
	}
	n := r.DeleteBatch([]Tuple{{1, 1}, {9, 9}, {2, 2, 2}})
	if n != 2 {
		t.Fatalf("DeleteBatch removed %d occurrences, want 2", n)
	}
	if !tuplesEqual(r.Tuples, []Tuple{{2, 2}, {3, 3}, {2, 2}}) {
		t.Fatalf("survivors = %v, want order-preserving [(2,2),(3,3),(2,2)]", r.Tuples)
	}

	r.Dedup()
	if !r.sorted {
		t.Fatal("not sorted after Dedup")
	}
	r.DeleteBatch([]Tuple{{2, 2}})
	if !r.sorted {
		t.Fatal("delete from a sorted relation cleared the sorted flag")
	}
	if !r.Contains(Tuple{3, 3}) || r.Contains(Tuple{2, 2}) {
		t.Fatal("binary-search Contains wrong after sorted delete")
	}
}

// TestIndexPatchEquivalence: an index patched through a random sequence of
// AddRow/RemoveRow answers every probe exactly like an index built from
// scratch over the final relation state.
func TestIndexPatchEquivalence(t *testing.T) {
	r := NewRelation("R", 2)
	for i := 0; i < 40; i++ {
		r.InsertValues(Value(i), Value(i%5))
	}
	r.Dedup()

	slab := r.Slab()
	ix := r.IndexOn([]int{1})

	// Tracked live rows: id -> alive. Patch in inserts and deletes.
	alive := make(map[int32]bool)
	for i := 0; i < r.Len(); i++ {
		alive[int32(i)] = true
	}
	// Delete every fourth row.
	for id := int32(0); id < int32(r.Len()); id += 4 {
		if !ix.RemoveRow(id) {
			t.Fatalf("RemoveRow(%d) did not find the row", id)
		}
		alive[id] = false
	}
	if !(ix.Waste() > 0) {
		t.Error("removals did not record waste")
	}
	// Removing an absent row fails loudly (returns false).
	if ix.RemoveRow(0) {
		t.Error("RemoveRow of an already-removed row reported success")
	}
	// Insert new rows, including into existing buckets (key i%5) and a
	// brand-new bucket (key 99).
	for i := 0; i < 12; i++ {
		var id int32
		slab, id = slab.Append(Tuple{Value(100 + i), Value(i % 6 * 33 % 5)})
		ix.SetSlab(slab)
		ix.AddRow(id)
		alive[id] = true
	}
	var id99 int32
	slab, id99 = slab.Append(Tuple{Value(999), Value(99)})
	ix.SetSlab(slab)
	ix.AddRow(id99)
	alive[id99] = true

	// Reference: rebuild a relation from the alive rows and index it.
	ref := NewRelation("Ref", 2)
	for id, ok := range alive {
		if ok {
			ref.Insert(slab.Row(id).Clone())
		}
	}
	refIx := ref.IndexOn([]int{1})

	keys := map[Value]bool{}
	for id, ok := range alive {
		if ok {
			keys[slab.Row(id)[1]] = true
		}
	}
	keys[Value(2)] = true // possibly emptied bucket
	keys[Value(12345)] = true
	for k := range keys {
		probe := Tuple{0, k}
		got := ix.Lookup(probe, []int{1})
		want := refIx.Lookup(probe, []int{1})
		if len(got) != len(want) {
			t.Fatalf("key %d: patched index returns %d rows, rebuilt returns %d", k, len(got), len(want))
		}
		// Same multiset of tuples behind the ids.
		gt := make([]Tuple, len(got))
		wt := make([]Tuple, len(want))
		for i := range got {
			gt[i] = ix.Row(got[i])
			wt[i] = refIx.Row(want[i])
		}
		if !tuplesEqual(sortTuples(gt), sortTuples(wt)) {
			t.Fatalf("key %d: patched bucket %v != rebuilt bucket %v", k, gt, wt)
		}
	}
}

// TestIndexPatchOverflow: patching stays exact across true fingerprint
// collisions (forced by a degenerate hash): colliding keys live in
// overflow spans, removals promote them, and lookups remain key-exact.
func TestIndexPatchOverflow(t *testing.T) {
	r := NewRelation("R", 1)
	for i := 0; i < 8; i++ {
		r.InsertValues(Value(i % 4))
	}
	r.Dedup() // tuples: 0,1,2,3
	slab := r.Slab()
	collide := func(Tuple, []int) uint64 { return 42 }
	ix := buildIndex(r.Tuples, []int{0}, slab, 1, collide)

	for k := Value(0); k < 4; k++ {
		if n := len(ix.Lookup(Tuple{k}, []int{0})); n != 1 {
			t.Fatalf("key %d: %d rows before patching, want 1", k, n)
		}
	}

	// Add a duplicate-keyed row and a new colliding key.
	var idDup, idNew int32
	slab, idDup = slab.Append(Tuple{2})
	ix.SetSlab(slab)
	ix.AddRow(idDup)
	slab, idNew = slab.Append(Tuple{7})
	ix.SetSlab(slab)
	ix.AddRow(idNew)

	if n := len(ix.Lookup(Tuple{2}, []int{0})); n != 2 {
		t.Fatalf("key 2 after duplicate add: %d rows, want 2", n)
	}
	if n := len(ix.Lookup(Tuple{7}, []int{0})); n != 1 {
		t.Fatalf("new colliding key 7: %d rows, want 1", n)
	}

	// Remove the bucket-resident key entirely; an overflow span must be
	// promoted so the remaining keys stay reachable.
	for _, id := range append([]int32(nil), ix.Lookup(Tuple{0}, []int{0})...) {
		if !ix.RemoveRow(id) {
			t.Fatalf("RemoveRow(%d) failed", id)
		}
	}
	if n := len(ix.Lookup(Tuple{0}, []int{0})); n != 0 {
		t.Fatalf("key 0 after removal: %d rows, want 0", n)
	}
	for _, k := range []Value{1, 2, 3, 7} {
		if len(ix.Lookup(Tuple{k}, []int{0})) == 0 {
			t.Fatalf("key %d unreachable after bucket promotion", k)
		}
	}
}

// TestInsertBatchArityAndCapacity: batch inserts validate arity up front
// (rejecting the whole batch) and respect the int32 row-id capacity.
func TestInsertBatchArityAndCapacity(t *testing.T) {
	r := NewRelation("R", 2)
	err := r.InsertBatch([]Tuple{{1, 2}, {3}})
	if err == nil {
		t.Fatal("InsertBatch accepted a wrong-arity tuple")
	}
	if r.Len() != 0 {
		t.Fatalf("failed batch left %d tuples behind", r.Len())
	}

	lowerMaxRows(t, 4)
	if err := r.InsertBatch([]Tuple{{1, 1}, {2, 2}, {3, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := r.InsertBatch([]Tuple{{4, 4}, {5, 5}}); err == nil {
		t.Fatal("InsertBatch exceeded maxRows without error")
	}
	if err := r.InsertBatch([]Tuple{{4, 4}}); err != nil {
		t.Fatalf("InsertBatch at exactly maxRows: %v", err)
	}
}
