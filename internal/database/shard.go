package database

// Hash-partitioned relation shards. Shard splits a relation into k
// fingerprint-disjoint partitions by the same routing the sharded index
// builds use — uint32(fp) & (k-1) over the join-key fingerprint — so a
// shard-local index or semijoin sees exactly the keys a ParIndexOn shard
// of the same fan-out would own. Tuples are shared views, never copies,
// and keep their base-relation order within a shard; the snapshot layer
// persists the partition as per-shard row-id lists over the unreordered
// base slab, so sharding never perturbs enumeration order (counted steps
// must stay bit-identical whether or not a database is sharded on disk).

import "fmt"

// ShardCount rounds k up to the power of two the routing mask needs,
// clamped to [1, 1<<16]. Shard, the snapshot writer, and any sharded
// daemon must agree on this normalization or tuples would route to
// different partitions on each side.
func ShardCount(k int) int {
	if k < 1 {
		return 1
	}
	if k > 1<<16 {
		k = 1 << 16
	}
	n := 1
	for n < k {
		n <<= 1
	}
	return n
}

// ShardRowIDs partitions the relation's rows by the fingerprint of the
// given key columns into ShardCount(k) lists of row ids, each ascending
// (base order preserved). The index-build fingerprint hook applies here
// too, so degraded-hash differential runs shard consistently with the
// indexes they probe.
func ShardRowIDs(r *Relation, cols []int, k int) [][]int32 {
	k = ShardCount(k)
	mask := uint32(k - 1)
	hash := defaultKeyHash
	if p := testIndexHash.Load(); p != nil {
		hash = *p
	}
	parts := make([][]int32, k)
	for i, t := range r.Tuples {
		s := uint32(hash(t, cols)) & mask
		parts[s] = append(parts[s], int32(i))
	}
	return parts
}

// Shard partitions r into ShardCount(k) relations by the fingerprint of
// the key columns. Shard i holds exactly the tuples whose key routes to
// shard i of a k-way ParIndexOn on the same columns, as tuple views into
// r's storage (no copying), in base order. Matching keys always land in
// the same shard, so a semijoin or join on cols decomposes into k
// independent shard-local ones — see SemijoinSharded.
func Shard(r *Relation, cols []int, k int) []*Relation {
	for _, c := range cols {
		if c < 0 || c >= r.Arity {
			panic(fmt.Sprintf("database: shard %s on column %d, arity %d", r.Name, c, r.Arity))
		}
	}
	parts := ShardRowIDs(r, cols, k)
	out := make([]*Relation, len(parts))
	for s, ids := range parts {
		sr := NewRelation(fmt.Sprintf("%s/%d", r.Name, s), r.Arity)
		sr.Tuples = make([]Tuple, len(ids))
		for i, id := range ids {
			sr.Tuples[i] = r.Tuples[id]
		}
		out[s] = sr
	}
	return out
}

// SemijoinSharded computes Semijoin(r, rCols, s, sCols) shard-locally:
// both sides are partitioned on their join columns with the same fan-out,
// and each r-shard probes only the matching s-shard — the access pattern
// of a sharded daemon that maps one partition per process. The output
// concatenates shard results in shard order, a permutation of the
// sequential Semijoin's output with identical tuple multiset.
func SemijoinSharded(r *Relation, rCols []int, s *Relation, sCols []int, k int) *Relation {
	rs := Shard(r, rCols, k)
	ss := Shard(s, sCols, k)
	out := NewRelation(r.Name, r.Arity)
	for i := range rs {
		part := Semijoin(rs[i], rCols, ss[i], sCols)
		out.Tuples = append(out.Tuples, part.Tuples...)
	}
	return out
}
