package database

import (
	"math/rand"
	"testing"
)

// storeTestRelation builds a small deterministic relation for the seam
// tests: n rows of arity 3 with clustered keys so indexes have multi-row
// buckets.
func storeTestRelation(t *testing.T, n int) *Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	rows := make([]Tuple, n)
	for i := range rows {
		rows[i] = Tuple{Value(rng.Intn(n / 4)), Value(rng.Intn(8)), Value(i)}
	}
	r := NewRelation("R", 3)
	if err := r.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	return r
}

// slabData flattens a relation's tuples the way the snapshot writer does.
func slabData(r *Relation) []Value {
	data := make([]Value, 0, len(r.Tuples)*r.Arity)
	for _, t := range r.Tuples {
		data = append(data, t...)
	}
	return data
}

func TestFromSlabRoundTrip(t *testing.T) {
	r := storeTestRelation(t, 200)
	r.Dedup()
	got, err := FromSlab(SlabSpec{
		Name: r.Name, Arity: r.Arity, Rows: r.Len(),
		Data: slabData(r), Sorted: true, Gen: r.Generation(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != r.Len() || got.Generation() != r.Generation() {
		t.Fatalf("restored %d rows gen %d, want %d rows gen %d", got.Len(), got.Generation(), r.Len(), r.Generation())
	}
	for i, tu := range r.Tuples {
		if !got.Tuples[i].Equal(tu) {
			t.Fatalf("row %d: %v != %v", i, got.Tuples[i], tu)
		}
	}
	// The sorted flag must survive so Contains stays a binary search.
	for _, tu := range r.Tuples {
		if !got.Contains(tu) {
			t.Fatalf("restored relation misses %v", tu)
		}
	}
	if got.Contains(Tuple{-1, -1, -1}) {
		t.Fatal("restored relation contains a tuple that was never inserted")
	}
}

func TestFromSlabRejectsBadSpecs(t *testing.T) {
	if _, err := FromSlab(SlabSpec{Name: "R", Arity: 2, Rows: 3, Data: make([]Value, 5)}); err == nil {
		t.Fatal("mismatched data length accepted")
	}
	if _, err := FromSlab(SlabSpec{Name: "R", Arity: -1}); err == nil {
		t.Fatal("negative arity accepted")
	}
	if _, err := FromSlab(SlabSpec{Name: "R", Arity: 1, Rows: maxRows + 1, Data: nil}); err == nil {
		t.Fatal("row count past the int32 cap accepted")
	}
}

func TestFromSlabArityZero(t *testing.T) {
	r, err := FromSlab(SlabSpec{Name: "T", Arity: 0, Rows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || len(r.Tuples[0]) != 0 {
		t.Fatalf("arity-0 restore: %v", r.Tuples)
	}
}

func TestMappedPromotionOnMutation(t *testing.T) {
	base := storeTestRelation(t, 100)
	data := slabData(base)
	orig := append([]Value(nil), data...)

	r, err := FromSlab(SlabSpec{Name: "R", Arity: 3, Rows: 100, Data: data, Mapped: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Mapped() || !r.Slab().Mapped() {
		t.Fatal("freshly restored relation should report mapped storage")
	}
	// Reads never promote.
	r.IndexOn([]int{0})
	if !r.Contains(base.Tuples[7]) {
		t.Fatal("mapped relation lost a tuple")
	}
	if !r.Mapped() {
		t.Fatal("a read promoted the relation")
	}
	// The first mutation promotes to heap and leaves the backing untouched.
	r.Insert(Tuple{1000, 1000, 1000})
	if r.Mapped() || r.Slab().Mapped() {
		t.Fatal("mutated relation still reports mapped storage")
	}
	if r.Len() != 101 || !r.Contains(Tuple{1000, 1000, 1000}) || !r.Contains(base.Tuples[7]) {
		t.Fatal("promotion lost tuples")
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatalf("mutation wrote through to the mapped backing at value %d", i)
		}
	}
	// Deletes after promotion behave as on any heap relation.
	if !r.Delete(base.Tuples[7].Clone()) {
		t.Fatal("delete after promotion failed")
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatalf("delete wrote through to the mapped backing at value %d", i)
		}
	}
}

func TestMappedPromotionOnDelete(t *testing.T) {
	base := storeTestRelation(t, 50)
	data := slabData(base)
	orig := append([]Value(nil), data...)
	r, err := FromSlab(SlabSpec{Name: "R", Arity: 3, Rows: 50, Data: data, Mapped: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Delete(base.Tuples[3].Clone()) {
		t.Fatal("delete on mapped relation failed")
	}
	if r.Mapped() {
		t.Fatal("delete did not promote")
	}
	if r.Len() != 49 || r.Contains(base.Tuples[3]) {
		t.Fatal("delete on mapped relation produced wrong contents")
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatalf("delete wrote through to the mapped backing at value %d", i)
		}
	}
}

func TestMappedSlabAppendCopies(t *testing.T) {
	data := []Value{1, 2, 3, 4}
	sl := Slab{data: data, arity: 2, mapped: true}
	grown, id := sl.Append(Tuple{5, 6})
	if grown.Mapped() {
		t.Fatal("append left the slab mapped")
	}
	if id != 2 || !grown.Row(2).Equal(Tuple{5, 6}) || !grown.Row(0).Equal(Tuple{1, 2}) {
		t.Fatalf("append produced wrong rows: %v", grown.data)
	}
	if data[0] != 1 || data[3] != 4 {
		t.Fatal("append wrote through to the mapped backing")
	}
}

func TestMappedDeltaLogFeedsRefresh(t *testing.T) {
	// The promotion must be invisible to the delta-log consumers: a mapped
	// relation that mutates logs the same deltas a heap one would.
	base := storeTestRelation(t, 30)
	r, err := FromSlab(SlabSpec{Name: "R", Arity: 3, Rows: 30, Data: slabData(base), Mapped: true})
	if err != nil {
		t.Fatal(err)
	}
	r.EnableDeltaLog()
	gen := r.Generation()
	ins := Tuple{900, 900, 900}
	r.Insert(ins)
	r.Delete(base.Tuples[0].Clone())
	d, ok := r.DeltaSince(gen)
	if !ok {
		t.Fatal("delta unavailable after promotion")
	}
	if len(d.Ins) != 1 || !d.Ins[0].Equal(ins) || len(d.Del) != 1 || !d.Del[0].Equal(base.Tuples[0]) {
		t.Fatalf("wrong delta after promotion: +%v -%v", d.Ins, d.Del)
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	d := NewDictionary()
	names := []string{"alice", "bob", "carol", "日本", "x y z"}
	for _, n := range names {
		d.Intern(n)
	}
	rd, err := DictionaryFromNames(d.Names())
	if err != nil {
		t.Fatal(err)
	}
	if rd.Len() != d.Len() {
		t.Fatalf("restored %d names, want %d", rd.Len(), d.Len())
	}
	for _, n := range names {
		if rd.Intern(n) != d.Intern(n) {
			t.Fatalf("value id for %q drifted across the round-trip", n)
		}
	}
	if _, err := DictionaryFromNames([]string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestRestoreIndexMatchesBuild(t *testing.T) {
	r := storeTestRelation(t, 500)
	cols := []int{0, 1}
	dump := r.DumpIndex(cols)

	fresh, err := FromSlab(SlabSpec{Name: "R", Arity: 3, Rows: r.Len(), Data: slabData(r)})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreIndex(dump); err != nil {
		t.Fatal(err)
	}
	want := r.IndexOn(cols)
	got := fresh.IndexOn(cols) // must return the restored index, not rebuild
	for _, tu := range r.Tuples {
		w := want.Lookup(tu, cols)
		g := got.Lookup(tu, cols)
		if len(w) != len(g) {
			t.Fatalf("lookup %v: %d vs %d rows", tu, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("lookup %v: row order drifted: %v vs %v", tu, w, g)
			}
		}
	}
	if got.Contains(Tuple{-5, -5, -5}, cols) {
		t.Fatal("restored index matches an absent key")
	}
}

func TestRestoreIndexRejectsCorruptCSR(t *testing.T) {
	r := storeTestRelation(t, 50)
	dump := r.DumpIndex([]int{0})

	bad := dump
	bad.Rows = append([]int32(nil), dump.Rows...)
	bad.Rows[0] = 50 // out of range
	if err := r.RestoreIndex(bad); err == nil {
		t.Fatal("out-of-range row id accepted")
	}

	bad = dump
	bad.Lens = append([]int32(nil), dump.Lens...)
	bad.Lens[0] = int32(len(dump.Rows)) + 1
	if err := r.RestoreIndex(bad); err == nil {
		t.Fatal("span past the row array accepted")
	}

	bad = dump
	bad.Cols = []int{9}
	if err := r.RestoreIndex(bad); err == nil {
		t.Fatal("column outside the arity accepted")
	}

	bad = dump
	bad.FPs = dump.FPs[:len(dump.FPs)-1]
	if err := r.RestoreIndex(bad); err == nil {
		t.Fatal("disagreeing bucket arrays accepted")
	}
}

func TestRestoreIndexUnderForcedCollisions(t *testing.T) {
	// A dump taken under the default hash restores buckets that resolve
	// exactly even when the dump contains true fingerprint collisions:
	// force them with a degraded hash at dump time via the process hook.
	restore := SetIndexHashForTesting(func(tu Tuple, cols []int) uint64 {
		return uint64(tu[cols[0]]) & 1
	})
	r := storeTestRelation(t, 300)
	cols := []int{0}
	want := map[Value]int{}
	for _, tu := range r.Tuples {
		want[tu[0]]++
	}
	ix := r.IndexOn(cols)
	probe := Tuple{0}
	for v, n := range want {
		probe[0] = v
		if got := len(ix.Lookup(probe, []int{0})); got != n {
			t.Fatalf("degraded index: key %d has %d rows, want %d", v, got, n)
		}
	}
	restore()

	// The hook is process-wide and must restore cleanly.
	r2 := storeTestRelation(t, 100)
	if r2.IndexOn(cols) == nil {
		t.Fatal("index build after restore failed")
	}
}

func TestStructuralGenRoundTrip(t *testing.T) {
	db := NewDatabase()
	db.AddRelation(FromTuples("A", 1, []Tuple{{1}, {2}}))
	db.AddRelation(FromTuples("B", 2, []Tuple{{1, 2}}))
	gen := db.Generation()

	re := NewDatabase()
	for _, name := range db.Names() {
		r := db.Relation(name)
		nr, err := FromSlab(SlabSpec{
			Name: name, Arity: r.Arity, Rows: r.Len(),
			Data: slabData(r), Sorted: true, Gen: r.Generation(),
		})
		if err != nil {
			t.Fatal(err)
		}
		re.AddRelation(nr)
	}
	re.SetStructuralGen(db.StructuralGen())
	if re.Generation() != gen {
		t.Fatalf("restored generation %d, want %d", re.Generation(), gen)
	}
}
