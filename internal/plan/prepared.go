package plan

import (
	"errors"
	"math/big"
	"sync"
	"sync/atomic"

	"repro/internal/counting"
	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/ineq"
	"repro/internal/ncq"
	"repro/internal/ucq"
)

// ErrStalePlan is returned by every execution method of a Prepared whose
// database has mutated since Bind: the bound semijoin reductions, hash
// indexes, and slab row ids may dangle (Relation.Sort reorders rows in
// place). Re-Bind the plan to recover.
var ErrStalePlan = errors.New("plan: prepared query is stale: database generation advanced since Bind (re-Bind to recover)")

// Prepared is a plan bound to a database: the data-dependent preprocessing
// has run and is reusable across any number of executions. Decide, Count,
// Enumerate, NewRandomAccess and ParEval never repeat classification,
// join-tree construction, semijoin reduction, or index builds — repeated
// executions pay only the per-answer work, which is the amortization all
// the paper's preprocessing/delay splits are about.
//
// Decide and Count are safe for concurrent use; enumerators returned by
// Enumerate are independent cursors but each one must be drained by a
// single goroutine.
type Prepared struct {
	plan *Plan
	db   *database.Database
	gen  uint64 // database generation at Bind time

	// Enumeration spines, built eagerly at Bind for the routes with
	// reusable preprocessing. At most one is non-nil; a build failure is
	// recorded in spineErr and surfaced by Enumerate (and recovered from
	// by the lazy decision paths). constCore is behind an atomic pointer
	// because slab compaction (Cache.Sweep → CompactSlabs) republishes a
	// rebuilt core at an unchanged generation, concurrently with Decide/
	// Enumerate fast paths that read it without taking pr.mu.
	constCore atomic.Pointer[cq.OdometerCore]
	linPrep   *cq.LinearPrep
	neqPrep   *ineq.NeqPrep
	spineErr  error

	// Refresh state: the read set pinned at the last bind/refresh, and the
	// incremental refreshers once a Refresh has installed them (Bind stays
	// lazy — it only snapshots, so the hot bind path pays nothing).
	snaps   []relSnap
	constR  *cq.ConstRefresher
	linR    *cq.LinearRefresher
	tracked bool

	mu      sync.Mutex
	decided bool
	decideV bool
	decideE error
	counted bool
	countV  *big.Int
	countE  error
	matDone bool
	matRows []database.Tuple
	matErr  error
	raDone  bool
	ra      *cq.RandomAccess
	raErr   error
	parDone bool
	parRows []database.Tuple
	parErr  error

	// Union state: bound head-stripped disjuncts (decide) and the
	// materialized union answers once a pass completed (enumerate).
	uDone bool
	uRows []database.Tuple
}

// spineCompactMinWaste is the per-index waste (abandoned row slots) at
// which CompactIndexes rebuilds a spine index's layout. Small enough that
// sustained churn cannot degrade probe locality far, large enough that a
// handful of refreshed rows never triggers a rebuild.
const spineCompactMinWaste = 64

// SpineWaste reports the abandoned row slots accumulated in the bound
// spine's probe indexes by incremental refreshes — the layout degradation
// CompactIndexes reclaims. Zero for statements without a patched spine.
func (pr *Prepared) SpineWaste() int {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if core := pr.constCore.Load(); core != nil {
		return core.IndexWaste()
	}
	return 0
}

// CompactIndexes rebuilds spine-index layouts whose waste crossed the
// compaction threshold, returning the number of row slots reclaimed.
// Compaction leaves row ids (and therefore refresher state) untouched and
// is safe concurrently with in-flight enumerations; plan.Cache.Sweep calls
// it on every surviving statement so sustained mutate/refresh loops keep
// bounded waste without ever rebinding.
func (pr *Prepared) CompactIndexes() int {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if core := pr.constCore.Load(); core != nil {
		return core.CompactIndexes(spineCompactMinWaste)
	}
	return 0
}

// SlabWaste reports the tombstoned slab rows accumulated in the bound
// spine by incremental deletes — the storage-only-grows leak CompactSlabs
// reclaims. Zero for statements without an installed constant-delay
// refresher.
func (pr *Prepared) SlabWaste() int {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.constR != nil {
		return pr.constR.SlabWaste()
	}
	return 0
}

// CompactSlabs reclaims tombstoned spine slab rows once a position's waste
// crosses the same threshold Index.Compact uses, returning the number of
// rows reclaimed. The rebuilt core preserves enumeration order exactly and
// is republished atomically at an unchanged generation, so concurrent
// executions and already-minted pagination cursors stay valid: in-flight
// cursors keep reading the old core, new ones pick up the dense layout.
// plan.Cache.Sweep calls it on every surviving statement, bounding spine
// storage under sustained delete/insert churn.
func (pr *Prepared) CompactSlabs() int {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.constR == nil {
		return 0
	}
	core, reclaimed := pr.constR.CompactSlabs(spineCompactMinWaste)
	if core != nil {
		pr.constCore.Store(core)
	}
	return reclaimed
}

// Bind runs the data-dependent preprocessing of p over db. See BindCounted.
func (p *Plan) Bind(db *database.Database) (*Prepared, error) {
	return p.BindCounted(db, nil)
}

// BindCounted is Bind with step counting: the preprocessing ticks land on
// c (under a "bind" phase span), exactly where the one-shot engines would
// have ticked them, so pipeline and one-shot runs are step-compatible.
//
// Bind itself only fails on nil arguments. A failure to build the
// enumeration spine (unknown relation, unsafe head, ...) is deferred: it
// is returned by Enumerate, with the same error the one-shot engine
// produces, while Decide and Count fall back to their own engines.
func (p *Plan) BindCounted(db *database.Database, c *delay.Counter) (*Prepared, error) {
	if db == nil {
		return nil, errors.New("plan: nil database")
	}
	span := c.StartSpan("bind", -1)
	defer span.End()
	pr := &Prepared{plan: p, db: db, gen: db.Generation()}
	if p.UCQ != nil {
		return pr, nil
	}
	switch p.EnumerateEngine {
	case EngineConstantDelay:
		core, err := cq.PrepareConstantDelay(db, p.CQ, c)
		pr.constCore.Store(core)
		pr.spineErr = err
	case EngineLinearDelay:
		pr.linPrep, pr.spineErr = cq.PrepareLinearDelay(db, p.CQ, c)
	case EngineNeqEnum:
		pr.neqPrep, pr.spineErr = ineq.PrepareNeq(db, p.CQ, c)
	}
	if pr.hasSpine() {
		// Snapshot the read set and switch its delta logs on so a later
		// Refresh can replay the mutations. The refreshers themselves are
		// built lazily by the first Refresh that rebinds.
		pr.trackRelations()
	}
	return pr, nil
}

// Plan returns the immutable plan this statement was bound from.
func (pr *Prepared) Plan() *Plan { return pr.plan }

// Generation returns the database generation snapshotted at Bind time.
func (pr *Prepared) Generation() uint64 { return pr.gen }

// Stale reports whether the database has mutated since Bind.
func (pr *Prepared) Stale() bool { return pr.db.Generation() != pr.gen }

// check guards every execution method. It is allocation-free so the warm
// path stays zero-alloc.
func (pr *Prepared) check() error {
	if pr.db.Generation() != pr.gen {
		return ErrStalePlan
	}
	return nil
}

// Decide answers the Boolean version of the query. On a bound plan whose
// enumeration spine exists this is a constant-time non-emptiness check;
// the other routes run their decision engine once and memoize.
func (pr *Prepared) Decide(c *delay.Counter) (bool, error) {
	if err := pr.check(); err != nil {
		return false, err
	}
	p := pr.plan
	if p.UCQ != nil {
		return pr.decideUnion(c)
	}
	if p.DecideEngine == EngineYannakakis && pr.spineErr == nil {
		// The spine is a full reduction of the (comparison-free) query, so
		// non-emptiness answers the decision problem with no further work.
		if core := pr.constCore.Load(); core != nil {
			return core.NonEmpty(), nil
		}
		if pr.linPrep != nil {
			return pr.linPrep.NonEmpty(), nil
		}
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if !pr.decided {
		pr.decideV, pr.decideE = pr.decideSlow(c)
		pr.decided = true
	}
	return pr.decideV, pr.decideE
}

// decideSlow runs the decision engine chosen at compile time on the
// head-stripped query, mirroring the one-shot facade.
func (pr *Prepared) decideSlow(c *delay.Counter) (bool, error) {
	p := pr.plan
	switch p.DecideEngine {
	case EngineNCQ:
		ok, err := ncq.Decide(pr.db, p.boolQ)
		if err != nil {
			return ncq.DecideBrute(pr.db, p.boolQ)
		}
		return ok, nil
	case EngineBacktrack:
		return ineq.DecideBacktrack(pr.db, p.boolQ)
	default:
		return cq.DecideCounted(pr.db, p.boolQ, c)
	}
}

func (pr *Prepared) decideUnion(c *delay.Counter) (bool, error) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.decided {
		return pr.decideV, pr.decideE
	}
	pr.decided = true
	// True iff some disjunct decides true; later disjuncts are neither
	// bound nor decided once one is (short-circuit).
	for _, bp := range pr.plan.boolDjs {
		sub, err := bp.BindCounted(pr.db, c)
		if err != nil {
			pr.decideE = err
			return false, err
		}
		ok, err := sub.Decide(c)
		if err != nil {
			pr.decideE = err
			return false, err
		}
		if ok {
			pr.decideV = true
			return true, nil
		}
	}
	return false, nil
}

// Count computes |φ(D)| with the counting engine chosen at compile time,
// memoized. The returned value is a fresh copy on every call.
func (pr *Prepared) Count(c *delay.Counter) (*big.Int, error) {
	if err := pr.check(); err != nil {
		return nil, err
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if !pr.counted {
		pr.countV, pr.countE = pr.countSlow(c)
		pr.counted = true
	}
	if pr.countE != nil {
		return nil, pr.countE
	}
	return new(big.Int).Set(pr.countV), nil
}

func (pr *Prepared) countSlow(c *delay.Counter) (*big.Int, error) {
	p := pr.plan
	if p.UCQ != nil {
		return counting.CountUCQ(pr.db, p.UCQ)
	}
	switch p.CountEngine {
	case EngineStarSizeCount:
		s := counting.BigInt{}
		v, err := counting.CountCounted(pr.db, p.CQ, counting.UnitWeight(s), s, c)
		if err != nil {
			return nil, err
		}
		return v.(*big.Int), nil
	case EngineNeqCount:
		return counting.CountNeq(pr.db, p.CQ)
	default:
		res, err := ineq.EvalBacktrack(pr.db, p.CQ)
		if err != nil {
			return nil, err
		}
		return big.NewInt(int64(len(res))), nil
	}
}

// Enumerate starts an enumeration pass. Constant- and linear-delay routes
// hand out a fresh cursor over the bound spine — no preprocessing is
// repeated; the materializing routes evaluate once, memoize, and replay.
// Per-answer work ticks c.
func (pr *Prepared) Enumerate(c *delay.Counter) (delay.Enumerator, error) {
	if err := pr.check(); err != nil {
		return nil, err
	}
	p := pr.plan
	if p.UCQ != nil {
		return pr.enumerateUnion(c)
	}
	switch p.EnumerateEngine {
	case EngineConstantDelay:
		if pr.spineErr != nil {
			return nil, pr.spineErr
		}
		return pr.constCore.Load().Cursor(c), nil
	case EngineLinearDelay:
		if pr.spineErr != nil {
			return nil, pr.spineErr
		}
		return pr.linPrep.Enumerate(c), nil
	case EngineNeqEnum:
		if pr.spineErr != nil {
			return nil, pr.spineErr
		}
		return pr.neqPrep.Enumerate(c), nil
	default:
		rows, err := pr.materialized()
		if err != nil {
			return nil, err
		}
		return delay.Slice(rows), nil
	}
}

// materialized memoizes the backtracking evaluation used by the fallback
// enumeration route.
func (pr *Prepared) materialized() ([]database.Tuple, error) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if !pr.matDone {
		pr.matRows, pr.matErr = ineq.EvalBacktrack(pr.db, pr.plan.CQ)
		pr.matDone = true
	}
	return pr.matRows, pr.matErr
}

// enumerateUnion enumerates a union. The first pass runs the
// union-extension enumerator of Theorem 4.13 (or the materializing
// fallback) live, recording the deduplicated output; once a pass has been
// fully drained, later passes replay the recording.
func (pr *Prepared) enumerateUnion(c *delay.Counter) (delay.Enumerator, error) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.uDone {
		return delay.Slice(pr.uRows), nil
	}
	p := pr.plan
	if p.unionOK {
		if e, err := ucq.Enumerate(pr.db, p.UCQ, unionMaxExtra, c); err == nil {
			var rec []database.Tuple
			return delay.Func(func() (database.Tuple, bool) {
				t, ok := e.Next()
				if !ok {
					pr.mu.Lock()
					pr.uDone, pr.uRows = true, rec
					pr.mu.Unlock()
					return nil, false
				}
				rec = append(rec, t.Clone())
				return t, true
			}), nil
		}
		// The extension plan failed against this database (e.g. a missing
		// base relation): fall back like the one-shot facade.
	}
	var all []database.Tuple
	seen := map[string]bool{}
	for _, d := range p.UCQ.Disjuncts {
		res, err := ineq.EvalBacktrack(pr.db, d)
		if err != nil {
			return nil, err
		}
		for _, t := range res {
			k := t.FullKey()
			if !seen[k] {
				seen[k] = true
				all = append(all, t)
			}
		}
	}
	pr.uDone, pr.uRows = true, all
	return delay.Slice(all), nil
}

// NewRandomAccess builds (once, memoized) the random-access structure over
// the i-th answer of a free-connex acyclic query — the Section 4.3
// extension. Only the constant-delay route supports it.
func (pr *Prepared) NewRandomAccess(c *delay.Counter) (*cq.RandomAccess, error) {
	if err := pr.check(); err != nil {
		return nil, err
	}
	if pr.plan.UCQ != nil || pr.plan.EnumerateEngine != EngineConstantDelay {
		return nil, errors.New("plan: random access requires a free-connex acyclic query without comparisons")
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if !pr.raDone {
		pr.ra, pr.raErr = cq.NewRandomAccessCounted(pr.db, pr.plan.CQ, c)
		pr.raDone = true
	}
	return pr.ra, pr.raErr
}

// ParEval evaluates the full answer set with the parallel Yannakakis
// engine over par workers, memoized (the answers are independent of par;
// the differential suites pin that). The returned slice is shared: callers
// must not mutate it.
func (pr *Prepared) ParEval(par int, c *delay.Counter) ([]database.Tuple, error) {
	if err := pr.check(); err != nil {
		return nil, err
	}
	if pr.plan.UCQ != nil {
		return nil, errors.New("plan: ParEval is per-query; enumerate the union instead")
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if !pr.parDone {
		pr.parRows, pr.parErr = cq.ParEval(pr.db, pr.plan.CQ, par, c)
		pr.parDone = true
	}
	return pr.parRows, pr.parErr
}
