package plan_test

// Out-of-core regression for the plan layer: a Prepared bound over an
// mmap-backed snapshot restore behaves exactly like one bound over heap
// storage — identical bind-time counted steps, and the delta-log Refresh
// machinery keeps working after mutations promote the mapped relations to
// heap copies (copy-on-write leaves the snapshot file untouched).

import (
	"path/filepath"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/oracle"
	"repro/internal/plan"
	"repro/internal/snapshot"
)

func TestPreparedOverMappedSnapshot(t *testing.T) {
	q := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	db := chainDB(40)
	path := filepath.Join(t.TempDir(), "chain.snap")
	if err := snapshot.WriteFile(path, db, nil, nil); err != nil {
		t.Fatal(err)
	}
	s, err := snapshot.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mdb := s.Database()

	p, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}

	// Bind-time counted steps are backing-independent.
	cHeap, cMap := &delay.Counter{}, &delay.Counter{}
	if _, err := p.BindCounted(db, cHeap); err != nil {
		t.Fatal(err)
	}
	pr, err := p.BindCounted(mdb, cMap)
	if err != nil {
		t.Fatal(err)
	}
	if cHeap.Steps() != cMap.Steps() {
		t.Fatalf("bind steps over mmap %d != heap %d", cMap.Steps(), cHeap.Steps())
	}

	checkAnswers := func(what string) {
		t.Helper()
		e, err := pr.Enumerate(nil)
		if err != nil {
			t.Fatalf("%s: Enumerate: %v", what, err)
		}
		got := delay.Collect(e)
		want, err := oracle.Eval(mdb, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswers(got, want) {
			t.Fatalf("%s: answers %v, oracle says %v", what, got, want)
		}
	}
	checkAnswers("mapped bind")

	// Mutations promote the mapped relations to heap copies; the delta log
	// feeds Refresh exactly as it does for heap-born relations.
	a := mdb.Relation("A")
	if !a.Mapped() {
		t.Fatal("relation A is not mmap-backed before mutation")
	}
	a.Insert(database.Tuple{1000, 1})
	if a.Mapped() {
		t.Fatal("relation A still claims mapped storage after an insert")
	}
	if !pr.Stale() {
		t.Fatal("Prepared not stale after mutating a promoted relation")
	}
	if _, err := pr.Refresh(nil); err != nil {
		t.Fatalf("first Refresh after promotion: %v", err)
	}
	checkAnswers("refresh after promotion")

	// Steady-state single-tuple updates ride the delta path.
	a.Insert(database.Tuple{1001, 2})
	kind, err := pr.Refresh(nil)
	if err != nil {
		t.Fatalf("delta Refresh: %v", err)
	}
	if kind != plan.RefreshDelta {
		t.Fatalf("second refresh kind = %v, want %v", kind, plan.RefreshDelta)
	}
	checkAnswers("delta refresh")

	if !a.Delete(database.Tuple{1000, 1}) {
		t.Fatal("delete of the promoted insert failed")
	}
	if kind, err = pr.Refresh(nil); err != nil || kind != plan.RefreshDelta {
		t.Fatalf("delete refresh: kind %v, err %v", kind, err)
	}
	checkAnswers("delta refresh after delete")

	// The other relation is still mapped — only mutated relations promote.
	if !mdb.Relation("B").Mapped() {
		t.Fatal("relation B promoted without being mutated")
	}

	// And the file still restores the original, untouched database.
	fresh, err := snapshot.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.Database().Relation("A").Len() != db.Relation("A").Len() {
		t.Fatal("mutations under the Prepared leaked into the snapshot file")
	}
}
