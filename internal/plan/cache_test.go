package plan_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/plan"
)

// TestCacheHitMiss: first Prepare compiles and binds (miss), the second is
// a warm probe (hit), a mutation forces exactly one more miss, and the
// answers track the database state throughout.
func TestCacheHitMiss(t *testing.T) {
	q := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	db := chainDB(20)
	cache := plan.NewCache()

	pr1, err := cache.Prepare(q, db)
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := cache.Prepare(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if pr1 != pr2 {
		t.Error("second Prepare returned a different Prepared")
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Errorf("after two Prepares: hits=%d misses=%d, want 1/1", hits, misses)
	}

	// A structurally equal but distinct query value hits the same plan.
	q2 := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	pr3, err := cache.Prepare(q2, db)
	if err != nil {
		t.Fatal(err)
	}
	if pr3 != pr1 {
		t.Error("structurally equal query missed the cache")
	}

	e, err := pr1.Enumerate(nil)
	if err != nil {
		t.Fatal(err)
	}
	before := len(delay.Collect(e))

	// Mutation: the stale entry is caught up in place — the SAME Prepared
	// keeps serving, now against the mutated data, and the probe is neither
	// a hit nor a miss but a refresh.
	db.Relation("A").Insert(database.Tuple{900, 1})
	pr4, err := cache.Prepare(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if pr4 != pr1 {
		t.Error("Prepare bound a fresh statement instead of refreshing the cached one")
	}
	if pr4.Stale() {
		t.Error("refreshed Prepared still reports stale")
	}
	if _, misses := cache.Stats(); misses != 1 {
		t.Errorf("misses=%d after mutation, want 1 (refresh, not rebind)", misses)
	}
	if r := cache.Refreshes(); r != 1 {
		t.Errorf("refreshes=%d after mutation, want 1", r)
	}
	e4, err := pr4.Enumerate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if after := len(delay.Collect(e4)); after != before+1 {
		t.Errorf("refreshed answers=%d, want %d", after, before+1)
	}

	// Different databases get independent entries under the same plan.
	db2 := chainDB(5)
	if _, err := cache.Prepare(q, db2); err != nil {
		t.Fatal(err)
	}
	if _, misses := cache.Stats(); misses != 2 {
		t.Errorf("misses=%d after second database, want 2", misses)
	}
	if n := cache.Len(); n != 2 {
		t.Errorf("cache holds %d statements, want 2", n)
	}
}

// TestCacheMutateHeavyBounded: a mutate-heavy loop must not grow the
// cache — every probe refreshes the one cached statement in place — and a
// size bound must hold even when the workload cycles through more
// databases than the cache may retain.
func TestCacheMutateHeavyBounded(t *testing.T) {
	q := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	db := chainDB(20)
	cache := plan.NewCache()
	pr0, err := cache.Prepare(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		db.Relation("A").Insert(database.Tuple{database.Value(1000 + i), 1})
		pr, err := cache.Prepare(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if pr != pr0 {
			t.Fatalf("step %d: mutation produced a fresh Prepared instead of a refresh", i)
		}
		if n := cache.Len(); n != 1 {
			t.Fatalf("step %d: cache grew to %d statements", i, n)
		}
	}
	if r := cache.Refreshes(); r != 50 {
		t.Errorf("refreshes=%d, want 50", r)
	}
	if _, misses := cache.Stats(); misses != 1 {
		t.Errorf("misses=%d, want 1", misses)
	}

	// Size bound: cycling through many databases stays within the cap,
	// and the hot statement (touched every round) survives eviction.
	cache.SetMaxPrepared(4)
	for i := 0; i < 20; i++ {
		if _, err := cache.Prepare(q, chainDB(5)); err != nil {
			t.Fatal(err)
		}
		if pr, err := cache.Prepare(q, db); err != nil || pr != pr0 {
			t.Fatalf("round %d: hot statement evicted (pr==pr0: %v, err=%v)", i, pr == pr0, err)
		}
		if n := cache.Len(); n > 4 {
			t.Fatalf("round %d: cache holds %d statements, cap 4", i, n)
		}
	}

	// Sweep drops exactly the stale survivors.
	db.Relation("A").Insert(database.Tuple{2000, 1})
	if n := cache.Sweep(); n != 1 {
		t.Errorf("Sweep dropped %d statements, want 1 (only db mutated)", n)
	}
}

// TestCacheUCQ: union plans are cached under the union fingerprint.
func TestCacheUCQ(t *testing.T) {
	u := mustUCQ(t, "Q(x) :- A(x,y); Q(x) :- B(x,y).")
	db := chainDB(10)
	cache := plan.NewCache()
	pr1, err := cache.PrepareUCQ(u, db)
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := cache.PrepareUCQ(mustUCQ(t, "Q(x) :- A(x,y); Q(x) :- B(x,y)."), db)
	if err != nil {
		t.Fatal(err)
	}
	if pr1 != pr2 {
		t.Error("equal unions got distinct Prepareds")
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestCacheWarmPathAllocs pins the warm-path contract: once a (query,
// database) pair is bound, probing the cache and deciding performs zero
// allocations — no fingerprint rendering, no key boxing, no index rebuild.
func TestCacheWarmPathAllocs(t *testing.T) {
	q := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	db := chainDB(50)
	cache := plan.NewCache()
	if _, err := cache.Prepare(q, db); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		pr, err := cache.Prepare(q, db)
		if err != nil {
			panic(err)
		}
		ok, err := pr.Decide(nil)
		if err != nil {
			panic(err)
		}
		if !ok {
			panic("instance unexpectedly empty")
		}
	})
	if allocs != 0 {
		t.Errorf("warm cache.Prepare + Decide allocates %.1f objects/run, want 0", allocs)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines with
// structurally equal queries and interleaved executions; run under -race
// this pins the locking discipline. Every goroutine must observe the same
// answer count.
func TestCacheConcurrent(t *testing.T) {
	db := chainDB(30)
	cache := plan.NewCache()
	qref := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	pref, err := cache.Prepare(qref, db)
	if err != nil {
		t.Fatal(err)
	}
	eref, err := pref.Enumerate(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := len(delay.Collect(eref))

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
			for i := 0; i < 50; i++ {
				pr, err := cache.Prepare(q, db)
				if err != nil {
					errs <- err
					return
				}
				e, err := pr.Enumerate(nil)
				if err != nil {
					errs <- err
					return
				}
				if got := len(delay.Collect(e)); got != want {
					errs <- fmt.Errorf("got %d answers, want %d", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if hits, misses := cache.Stats(); misses != 1 {
		t.Errorf("hits=%d misses=%d, want exactly 1 miss", hits, misses)
	}
}

// TestCacheReset drops all entries.
func TestCacheReset(t *testing.T) {
	q := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	db := chainDB(5)
	cache := plan.NewCache()
	if _, err := cache.Prepare(q, db); err != nil {
		t.Fatal(err)
	}
	cache.Reset()
	if _, err := cache.Prepare(q, db); err != nil {
		t.Fatal(err)
	}
	if _, misses := cache.Stats(); misses != 2 {
		t.Errorf("misses=%d after Reset, want 2", misses)
	}
}
