package plan

import (
	"encoding/json"
	"fmt"
)

// planJSON is the machine-readable rendering of a compiled plan, emitted
// by qeval -task analyze -format json.
type planJSON struct {
	Query          string             `json:"query"`
	Fingerprint    string             `json:"fingerprint"`
	Classification *Report            `json:"classification,omitempty"`
	Engines        map[string]Engine  `json:"engines"`
	JoinTree       []joinTreeNodeJSON `json:"join_tree,omitempty"`
	Disjuncts      []*planJSON        `json:"disjuncts,omitempty"`
}

// joinTreeNodeJSON is one node of the GYO join tree: the atom (or the
// synthetic head edge), its variables, and the parent index (-1 for the
// root).
type joinTreeNodeJSON struct {
	Name   string   `json:"name"`
	Vars   []string `json:"vars"`
	Parent int      `json:"parent"`
}

func (p *Plan) jsonView() *planJSON {
	v := &planJSON{
		Fingerprint:    fmt.Sprintf("%016x", p.fp),
		Classification: p.Report,
		Engines: map[string]Engine{
			"decide":    p.DecideEngine,
			"count":     p.CountEngine,
			"enumerate": p.EnumerateEngine,
		},
	}
	if p.UCQ != nil {
		v.Query = p.UCQ.String()
	} else {
		v.Query = p.CQ.String()
	}
	if p.JoinTree != nil {
		for i, e := range p.JoinTree.Nodes {
			v.JoinTree = append(v.JoinTree, joinTreeNodeJSON{
				Name:   e.Name,
				Vars:   e.Vertices,
				Parent: p.JoinTree.Parent[i],
			})
		}
	}
	for _, d := range p.Disjuncts {
		v.Disjuncts = append(v.Disjuncts, d.jsonView())
	}
	return v
}

// MarshalJSON renders the plan: query, fingerprint, classification
// verdicts, chosen engines, and join tree (per disjunct for unions).
func (p *Plan) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.jsonView())
}
