package plan_test

import (
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/oracle"
	"repro/internal/plan"
	"repro/internal/qgen"
)

// TestRefreshKinds walks a Prepared through the refresh state machine: a
// clean statement is a noop; the first mutation forces an in-place rebuild
// (which installs the incremental refreshers); from then on single-tuple
// inserts and deletes are absorbed as deltas; a delta larger than the
// rebuild threshold falls back to another rebuild — and the answers track
// the database at every step.
func TestRefreshKinds(t *testing.T) {
	q := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	db := chainDB(40)
	p, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.EnumerateEngine != plan.EngineConstantDelay {
		t.Fatalf("expected the constant-delay route, got %v", p.EnumerateEngine)
	}
	pr, err := p.Bind(db)
	if err != nil {
		t.Fatal(err)
	}

	check := func(what string, wantKind plan.RefreshKind) {
		t.Helper()
		kind, err := pr.Refresh(nil)
		if err != nil {
			t.Fatalf("%s: Refresh: %v", what, err)
		}
		if kind != wantKind {
			t.Fatalf("%s: RefreshKind = %v, want %v", what, kind, wantKind)
		}
		if pr.Stale() {
			t.Fatalf("%s: still stale after Refresh", what)
		}
		e, err := pr.Enumerate(nil)
		if err != nil {
			t.Fatalf("%s: Enumerate: %v", what, err)
		}
		got := delay.Collect(e)
		want, err := oracle.Eval(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswers(got, want) {
			t.Fatalf("%s: answers %v, oracle says %v", what, got, want)
		}
		ok, err := pr.Decide(nil)
		if err != nil || ok != (len(want) > 0) {
			t.Fatalf("%s: Decide = %v/%v, oracle has %d answers", what, ok, err, len(want))
		}
	}

	check("clean statement", plan.RefreshNoop)

	db.Relation("A").Insert(database.Tuple{900, 1})
	check("first mutation", plan.RefreshRebind)

	db.Relation("A").Insert(database.Tuple{901, 2})
	check("single insert", plan.RefreshDelta)

	if !db.Relation("A").Delete(database.Tuple{901, 2}) {
		t.Fatal("Delete removed nothing")
	}
	check("single delete", plan.RefreshDelta)

	db.Relation("B").Insert(database.Tuple{1, 99})
	check("insert on the other relation", plan.RefreshDelta)

	batch := make([]database.Tuple, 200)
	for i := range batch {
		batch[i] = database.Tuple{database.Value(2000 + i), 1}
	}
	if err := db.Relation("A").InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	check("oversized batch", plan.RefreshRebind)

	db.Relation("A").Insert(database.Tuple{903, 4})
	check("delta after the rebuild", plan.RefreshDelta)
}

// TestRefreshNonSpineRoutes: routes that bind nothing eagerly (UCQ plans
// and materializing fallbacks) refresh by dropping their memos — the kind
// is RefreshDelta and re-execution sees the new data.
func TestRefreshUCQ(t *testing.T) {
	u := mustUCQ(t, "Q(x) :- A(x,y); Q(x) :- B(x,y).")
	db := chainDB(10)
	p, err := plan.CompileUCQ(u)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := p.Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	e, err := pr.Enumerate(nil)
	if err != nil {
		t.Fatal(err)
	}
	before := len(delay.Collect(e))
	db.Relation("A").Insert(database.Tuple{500, 1})
	kind, err := pr.Refresh(nil)
	if err != nil {
		t.Fatal(err)
	}
	if kind != plan.RefreshDelta {
		t.Fatalf("UCQ refresh kind = %v, want %v", kind, plan.RefreshDelta)
	}
	e2, err := pr.Enumerate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if after := len(delay.Collect(e2)); after != before+1 {
		t.Fatalf("answers after refresh = %d, want %d", after, before+1)
	}
}

// TestDifferentialRefreshReplay is the oracle mutation-replay suite: on
// every seeded instance a bound statement survives a replayable script of
// random single-tuple mutations (inserts, duplicate inserts, deletes,
// absent deletes) through Refresh, and after every step its enumerate /
// decide / count agree with the brute-force oracle AND with a freshly
// bound statement — including the counted execution steps, which must be
// bit-identical to the fresh bind's (the refresh machinery may never leak
// steps into enumeration).
func TestDifferentialRefreshReplay(t *testing.T) {
	cfg := qgen.Default()
	var deltas, rebinds, noops int
	for _, seed := range diffSeeds() {
		q, db := qgen.Instance(seed)
		p, err := plan.Compile(q)
		if err != nil {
			failInstance(t, seed, q, db, "Compile: %v", err)
		}
		pr, err := p.Bind(db)
		if err != nil {
			failInstance(t, seed, q, db, "Bind: %v", err)
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		script := qgen.MutationScript(rng, cfg, db, 8)
		for step, m := range script {
			if err := m.Apply(db); err != nil {
				failInstance(t, seed, q, db, "step %d (%s): Apply: %v", step, m, err)
			}
			kind, err := pr.Refresh(nil)
			if err != nil {
				failInstance(t, seed, q, db, "step %d (%s): Refresh: %v", step, m, err)
			}
			switch kind {
			case plan.RefreshDelta:
				deltas++
			case plan.RefreshRebind:
				rebinds++
			case plan.RefreshNoop:
				noops++
				if pr.Stale() {
					failInstance(t, seed, q, db, "step %d (%s): noop refresh left the plan stale", step, m)
				}
			}

			want, err := oracle.Eval(db, q)
			if err != nil {
				failInstance(t, seed, q, db, "step %d: oracle: %v", step, err)
			}

			// Fresh bind over the mutated database: the reference for both
			// answers and counted execution steps.
			cFresh := &delay.Counter{}
			fresh, err := p.BindCounted(db, cFresh)
			if err != nil {
				failInstance(t, seed, q, db, "step %d: fresh Bind: %v", step, err)
			}
			bindSteps := cFresh.Steps()
			eFresh, err := fresh.Enumerate(cFresh)
			if err != nil {
				failInstance(t, seed, q, db, "step %d: fresh Enumerate: %v", step, err)
			}
			freshRows := delay.Collect(eFresh)
			freshExec := cFresh.Steps() - bindSteps

			cRef := &delay.Counter{}
			eRef, err := pr.Enumerate(cRef)
			if err != nil {
				failInstance(t, seed, q, db, "step %d (%s): Enumerate: %v", step, m, err)
			}
			got := delay.Collect(eRef)

			if !sameAnswers(got, want) {
				failInstance(t, seed, q, db, "step %d (%s, %v): refreshed answers %v != oracle %v", step, m, kind, got, want)
			}
			switch p.EnumerateEngine {
			case plan.EngineConstantDelay:
				// The refreshed core may enumerate in a different root order
				// than a fresh bind (set equality is pinned above), but the
				// per-pass step totals must match exactly.
				if cRef.Steps() != freshExec {
					failInstance(t, seed, q, db, "step %d (%s, %v): refreshed exec steps %d != fresh %d", step, m, kind, cRef.Steps(), freshExec)
				}
			case plan.EngineLinearDelay, plan.EngineNeqEnum:
				if !sameSequence(got, freshRows) {
					failInstance(t, seed, q, db, "step %d (%s, %v): refreshed sequence %v != fresh %v", step, m, kind, got, freshRows)
				}
				if cRef.Steps() != freshExec {
					failInstance(t, seed, q, db, "step %d (%s, %v): refreshed exec steps %d != fresh %d", step, m, kind, cRef.Steps(), freshExec)
				}
			}

			ok, err := pr.Decide(nil)
			if err != nil {
				failInstance(t, seed, q, db, "step %d: Decide: %v", step, err)
			}
			if ok != (len(want) > 0) {
				failInstance(t, seed, q, db, "step %d (%s): Decide = %v, oracle has %d answers", step, m, ok, len(want))
			}
			n, err := pr.Count(nil)
			if err != nil {
				failInstance(t, seed, q, db, "step %d: Count: %v", step, err)
			}
			if !n.IsInt64() || n.Int64() != int64(len(want)) {
				failInstance(t, seed, q, db, "step %d (%s): Count = %s, oracle %d", step, m, n, len(want))
			}
		}
	}
	if deltas == 0 {
		t.Fatal("no mutation in the whole sweep was absorbed incrementally")
	}
	t.Logf("refresh replay: %d deltas, %d rebinds, %d noops", deltas, rebinds, noops)
}
