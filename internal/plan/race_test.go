package plan_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
	"repro/internal/oracle"
	"repro/internal/plan"
	"repro/internal/qgen"
)

// genState is the ground truth for one database generation, recomputed by
// the mutator (under the write lock) after every mutation. Workers compare
// every answer they extract from the cache against the state matching the
// generation they observed — a stale answer escaping the cache's
// generation checks would show up as a mismatch here.
type genState struct {
	gen     uint64
	decide  []bool
	answers [][]database.Tuple // sorted, per query
}

func sortTuples(ts []database.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

// TestCacheRaceStress hammers one plan.Cache from many goroutines with
// interleaved Prepare (bind), Decide/Enumerate (execute), Refresh (via the
// cache's refresh-in-place on the probe after each mutation), and
// Sweep/Len/Stats — against a database mutating under a qgen script. The
// locking discipline is the serving one (qservd uses the same): executions
// hold a read lock on the database for their whole probe+execute window,
// mutations hold the write lock. Workers alternate randomly between the
// query-text path (Prepare) and the handle path qservd's bind lane uses
// (PeekPlan probe, PreparePlan on a miss) so the singleflight registry and
// the warm-probe fast path race against eviction, refresh, and each other.
// Run under -race this guards the cache's concurrency; the assertions
// guard that no stale answer ever escapes and that ErrStalePlan always
// recovers within one re-probe.
func TestCacheRaceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := qgen.Default()

	var queries []*logic.CQ
	for len(queries) < 6 {
		var q *logic.CQ
		if len(queries)%2 == 0 {
			q = qgen.FreeConnexCQ(rng, cfg)
		} else {
			q = qgen.AcyclicCQ(rng, cfg)
		}
		if len(q.Head) == 0 {
			continue
		}
		// Generated queries draw predicate names from a shared R0, R1, …
		// pool with per-query arities; prefix them so six queries can share
		// one database without arity collisions.
		for j := range q.Atoms {
			q.Atoms[j].Pred = fmt.Sprintf("q%d_%s", len(queries), q.Atoms[j].Pred)
		}
		queries = append(queries, q)
	}
	db := qgen.DatabaseFor(rng, cfg, queries...)
	script := qgen.MutationScript(rng, cfg, db, 120)

	cache := plan.NewCache()
	cache.SetMaxPrepared(4) // smaller than the working set: constant eviction churn

	// Compiled plans for the handle path: qservd resolves a statement
	// handle to a *Plan and then probes/binds by plan, never re-parsing.
	plans := make([]*plan.Plan, len(queries))
	for i, q := range queries {
		p, err := cache.Compile(q)
		if err != nil {
			t.Fatalf("compile q%d: %v", i, err)
		}
		plans[i] = p
	}

	compute := func() *genState {
		st := &genState{gen: db.Generation()}
		for _, q := range queries {
			want, err := oracle.Eval(db, q)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			sortTuples(want)
			st.answers = append(st.answers, want)
			st.decide = append(st.decide, len(want) > 0)
		}
		return st
	}

	var dbMu sync.RWMutex
	var cur atomic.Pointer[genState]
	cur.Store(compute())

	done := make(chan struct{})
	var wg sync.WaitGroup

	// Workers: probe the cache and execute under the read lock, comparing
	// against the ground truth of the generation they hold.
	const workers = 8
	var staleRetries atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(1000 + w)))
			for {
				select {
				case <-done:
					return
				default:
				}
				i := wrng.Intn(len(queries))
				dbMu.RLock()
				st := cur.Load()
				if st.gen != db.Generation() {
					dbMu.RUnlock()
					t.Errorf("worker %d: read-locked generation %d does not match published state %d", w, db.Generation(), st.gen)
					return
				}
				var pr *plan.Prepared
				var err error
				if wrng.Intn(2) == 0 {
					// Handle path: warm probe first, singleflight bind on a
					// miss — exactly qservd's withStatement sequence.
					var warm bool
					if pr, warm = cache.PeekPlan(plans[i], db); !warm {
						pr, err = cache.PreparePlan(plans[i], db, nil)
					}
				} else {
					pr, err = cache.Prepare(queries[i], db)
				}
				if err != nil {
					dbMu.RUnlock()
					t.Errorf("worker %d: Prepare: %v", w, err)
					return
				}
				ok, err := pr.Decide(nil)
				if errors.Is(err, plan.ErrStalePlan) {
					// Must recover within one re-probe: under the read lock
					// the generation cannot move, so a fresh probe binds (or
					// refreshes) against exactly the generation we hold.
					staleRetries.Add(1)
					pr, err = cache.Prepare(queries[i], db)
					if err == nil {
						ok, err = pr.Decide(nil)
					}
				}
				if err != nil {
					dbMu.RUnlock()
					t.Errorf("worker %d: Decide did not recover: %v", w, err)
					return
				}
				if ok != st.decide[i] {
					dbMu.RUnlock()
					t.Errorf("worker %d: STALE ANSWER: Decide(q%d) = %v at gen %d, want %v", w, i, ok, st.gen, st.decide[i])
					return
				}
				if wrng.Intn(3) == 0 {
					e, err := pr.Enumerate(nil)
					if errors.Is(err, plan.ErrStalePlan) {
						staleRetries.Add(1)
						if pr, err = cache.Prepare(queries[i], db); err == nil {
							e, err = pr.Enumerate(nil)
						}
					}
					if err != nil {
						dbMu.RUnlock()
						t.Errorf("worker %d: Enumerate did not recover: %v", w, err)
						return
					}
					got := delay.Collect(e)
					sortTuples(got)
					if !sameAnswers(got, st.answers[i]) {
						dbMu.RUnlock()
						t.Errorf("worker %d: STALE ANSWERS: q%d at gen %d: got %v want %v", w, i, st.gen, got, st.answers[i])
						return
					}
				}
				dbMu.RUnlock()
			}
		}(w)
	}

	// Sweeper: cache maintenance ops need no database lock — they must be
	// safe against concurrent probes and refreshes by construction.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			cache.Sweep()
			cache.Len()
			cache.Stats()
			cache.Refreshes()
		}
	}()

	// Mutator: apply the script under the write lock, publish the new
	// ground truth, and probe one query so the cache's refresh-in-place
	// path (Prepared.Refresh) runs interleaved with the workers.
	for step, m := range script {
		dbMu.Lock()
		if err := m.Apply(db); err != nil {
			dbMu.Unlock()
			t.Fatalf("step %d: %v", step, err)
		}
		cur.Store(compute())
		if _, err := cache.Prepare(queries[step%len(queries)], db); err != nil {
			dbMu.Unlock()
			t.Fatalf("step %d: refresh probe: %v", step, err)
		}
		dbMu.Unlock()
	}
	close(done)
	wg.Wait()

	hits, misses := cache.Stats()
	t.Logf("cache: hits=%d misses=%d refreshes=%d sweeps-survived len=%d staleRetries=%d",
		hits, misses, cache.Refreshes(), cache.Len(), staleRetries.Load())
}
