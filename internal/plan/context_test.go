package plan_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/delay"
	"repro/internal/plan"
)

// TestEnumerateCtxCancelMidStream: cancelling the context mid-drain stops
// the enumeration at the next answer boundary and Err distinguishes the
// cut from ordinary exhaustion.
func TestEnumerateCtxCancelMidStream(t *testing.T) {
	q := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	db := chainDB(64)
	p, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := p.Bind(db)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	e, err := pr.EnumerateCtx(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := 0; i < 5; i++ {
		if _, ok := e.Next(); !ok {
			t.Fatalf("exhausted after %d answers, expected ≥ 5", got)
		}
		got++
	}
	cancel()
	if _, ok := e.Next(); ok {
		t.Fatal("Next produced an answer after cancellation")
	}
	if !errors.Is(e.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", e.Err())
	}
	// The cut is sticky.
	if _, ok := e.Next(); ok {
		t.Fatal("Next resumed after a cancelled pass")
	}
}

// TestEnumerateCtxDeadline: an already-expired deadline refuses the pass
// up front; a live context drains to ordinary exhaustion with a nil Err.
func TestEnumerateCtxDeadline(t *testing.T) {
	q := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	db := chainDB(16)
	p, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := p.Bind(db)
	if err != nil {
		t.Fatal(err)
	}

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := pr.EnumerateCtx(expired, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EnumerateCtx on expired context: err = %v, want DeadlineExceeded", err)
	}

	e, err := pr.EnumerateCtx(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	n := len(delay.Collect(e))
	if n == 0 {
		t.Fatal("no answers from a live context")
	}
	if e.Err() != nil {
		t.Fatalf("Err() = %v after ordinary exhaustion, want nil", e.Err())
	}
}
