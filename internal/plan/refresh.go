package plan

// Delta-binding: Refresh catches a stale Prepared up with the database
// instead of forcing the full re-Bind cliff. Bind snapshots which
// relations a statement reads (switching their delta logs on); the first
// Refresh after a mutation rebuilds the spine in place and installs the
// incremental refreshers from internal/cq; every later small delta is
// then absorbed by patching the bound state — semijoin-reduced sets, CSR
// row-id buckets, slabs — in time proportional to the delta, not the
// database. Oversized deltas, relation swaps, and anything the
// refreshers decline fall back to the in-place rebuild, which is always
// correct.

import (
	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/ineq"
)

// RefreshKind reports how a Refresh call caught the statement up.
type RefreshKind int

const (
	// RefreshNoop: the database had not mutated; nothing was done.
	RefreshNoop RefreshKind = iota
	// RefreshDelta: the bound state was patched incrementally (or the
	// route binds nothing eagerly and only the memos were dropped).
	RefreshDelta
	// RefreshRebind: the spine was rebuilt in place — the delta was too
	// large, unavailable, or declined by the incremental refresher.
	RefreshRebind
)

func (k RefreshKind) String() string {
	switch k {
	case RefreshNoop:
		return "noop"
	case RefreshDelta:
		return "delta"
	case RefreshRebind:
		return "rebind"
	}
	return "unknown"
}

// relSnap pins one read relation at its generation as of the last
// bind/refresh; a pointer mismatch on a later Refresh means the relation
// was replaced wholesale and deltas cannot be trusted.
type relSnap struct {
	name string
	rel  *database.Relation
	gen  uint64
}

// hasSpine reports whether the plan's enumeration route binds eager
// state that Refresh must maintain.
func (pr *Prepared) hasSpine() bool {
	if pr.plan.UCQ != nil {
		return false
	}
	switch pr.plan.EnumerateEngine {
	case EngineConstantDelay, EngineLinearDelay, EngineNeqEnum:
		return true
	}
	return false
}

// trackRelations records the statement's read set and enables delta
// logging on it, so mutations between now and the next Refresh are
// replayable. Called at Bind and after every in-place rebuild.
func (pr *Prepared) trackRelations() {
	pr.snaps = pr.snaps[:0]
	seen := make(map[string]bool)
	for _, a := range pr.plan.CQ.Atoms {
		if seen[a.Pred] {
			continue
		}
		seen[a.Pred] = true
		s := relSnap{name: a.Pred, rel: pr.db.Relation(a.Pred)}
		if s.rel != nil {
			s.rel.EnableDeltaLog()
			s.gen = s.rel.Generation()
		}
		pr.snaps = append(pr.snaps, s)
	}
}

// collectDeltas gathers each read relation's delta since the last
// bind/refresh. ok is false — forcing a rebuild — when a relation was
// replaced, a delta window has expired, or the combined delta is so
// large that replaying it would cost more than rebuilding.
func (pr *Prepared) collectDeltas() (map[string]database.Delta, bool) {
	deltas := make(map[string]database.Delta, len(pr.snaps))
	total, base := 0, 0
	for i := range pr.snaps {
		s := &pr.snaps[i]
		cur := pr.db.Relation(s.name)
		if cur == nil || cur != s.rel {
			return nil, false
		}
		d, ok := cur.DeltaSince(s.gen)
		if !ok {
			return nil, false
		}
		deltas[s.name] = d
		total += d.Len()
		base += cur.Len()
	}
	if total*4 > base+256 {
		return nil, false
	}
	return deltas, true
}

// Refresh brings a stale Prepared back in sync with its database. Small
// deltas are absorbed by incrementally patching the bound spine
// (RefreshDelta); large or unreplayable ones trigger an in-place rebuild
// of the spine (RefreshRebind) — either way the SAME Prepared keeps
// serving, its memoized results dropped, and the plan cache need not
// evict the entry. Refresh never ticks enumeration counters: counted
// steps of decide/count/enumerate stay bit-identical to one-shot runs
// (the maintenance work is visible under a "refresh" phase span).
//
// Refresh is not safe concurrently with in-flight executions of the same
// statement — but those are exactly the executions the staleness check
// already invalidates.
func (pr *Prepared) Refresh(c *delay.Counter) (RefreshKind, error) {
	g := pr.db.Generation()
	if g == pr.gen {
		return RefreshNoop, nil
	}
	span := c.StartSpan("refresh", -1)
	defer span.End()
	pr.mu.Lock()
	defer pr.mu.Unlock()
	pr.clearMemosLocked()
	if !pr.hasSpine() {
		// Lazy routes bind nothing eagerly: every execution engine reads
		// pr.db live, so adopting the new generation IS the refresh.
		pr.gen = g
		return RefreshDelta, nil
	}
	if pr.tracked {
		if deltas, ok := pr.collectDeltas(); ok && pr.applyDeltas(deltas) {
			pr.trackRelations()
			pr.gen = g
			return RefreshDelta, nil
		}
	}
	pr.rebindLocked()
	pr.gen = g
	return RefreshRebind, nil
}

// applyDeltas feeds the collected deltas to the installed incremental
// refresher; false means the caller must rebuild.
func (pr *Prepared) applyDeltas(deltas map[string]database.Delta) bool {
	switch {
	case pr.constR != nil:
		return pr.constR.Apply(deltas)
	case pr.linR != nil:
		return pr.linR.Apply(deltas)
	}
	return false
}

// rebindLocked rebuilds the enumeration spine in place against the
// current database and installs the incremental refreshers so the NEXT
// small delta is absorbed without rebuilding. Spine build failures are
// deferred into spineErr, exactly as Bind defers them.
func (pr *Prepared) rebindLocked() {
	p := pr.plan
	pr.constR, pr.linR = nil, nil
	pr.tracked = false
	switch p.EnumerateEngine {
	case EngineConstantDelay:
		cr, core, err := cq.NewConstRefresher(pr.db, p.CQ)
		if err != nil {
			pr.constCore.Store(nil)
			pr.spineErr = err
			break
		}
		pr.constCore.Store(core)
		pr.spineErr = nil
		pr.constR = cr
		pr.tracked = true
	case EngineLinearDelay:
		lr, lp, err := cq.NewLinearRefresher(pr.db, p.CQ)
		if err != nil {
			pr.linPrep, pr.spineErr = nil, err
			break
		}
		pr.linPrep, pr.spineErr = lp, nil
		pr.linR = lr
		pr.tracked = true
	case EngineNeqEnum:
		if pr.neqPrep != nil {
			pr.spineErr = pr.neqPrep.Rebuild(pr.db, p.CQ, nil)
		} else {
			pr.neqPrep, pr.spineErr = ineq.PrepareNeq(pr.db, p.CQ, nil)
		}
	}
	pr.trackRelations()
}

// clearMemosLocked drops every memoized execution result; they were
// computed against the previous generation.
func (pr *Prepared) clearMemosLocked() {
	pr.decided, pr.decideV, pr.decideE = false, false, nil
	pr.counted, pr.countV, pr.countE = false, nil, nil
	pr.matDone, pr.matRows, pr.matErr = false, nil, nil
	pr.raDone, pr.ra, pr.raErr = false, nil, nil
	pr.parDone, pr.parRows, pr.parErr = false, nil, nil
	pr.uDone, pr.uRows = false, nil
}
