package plan_test

import (
	"errors"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
	"repro/internal/plan"
)

func mustCQ(t *testing.T, src string) *logic.CQ {
	t.Helper()
	q, err := logic.ParseCQ(src)
	if err != nil {
		t.Fatalf("ParseCQ(%q): %v", src, err)
	}
	return q
}

func mustUCQ(t *testing.T, src string) *logic.UCQ {
	t.Helper()
	u, err := logic.ParseUCQ(src)
	if err != nil {
		t.Fatalf("ParseUCQ(%q): %v", src, err)
	}
	return u
}

// chainDB builds {A(i, i%7), B(i%7, i%3) : i < n} — a free-connex instance
// for Q(x,y) :- A(x,y), B(y,z).
func chainDB(n int) *database.Database {
	db := database.NewDatabase()
	a := database.NewRelation("A", 2)
	b := database.NewRelation("B", 2)
	for i := 0; i < n; i++ {
		a.InsertValues(database.Value(i), database.Value(i%7))
		b.InsertValues(database.Value(i%7), database.Value(i%3))
	}
	a.Dedup()
	b.Dedup()
	db.AddRelation(a)
	db.AddRelation(b)
	return db
}

// TestStalePlanAllMethods: once the database mutates under a Prepared,
// every execution method fails loudly with ErrStalePlan instead of serving
// answers computed from dead row ids; re-binding the same plan recovers and
// sees the mutation.
func TestStalePlanAllMethods(t *testing.T) {
	q := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	db := chainDB(20)
	p, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := p.Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Stale() {
		t.Fatal("fresh Prepared reports stale")
	}
	e, err := pr.Enumerate(nil)
	if err != nil {
		t.Fatal(err)
	}
	before := len(delay.Collect(e))
	if before == 0 {
		t.Fatal("instance unexpectedly empty")
	}

	// Mutate through a relation the query reads; (900, 0) joins with the
	// existing B(0, 0), so the re-bound statement must emit one new answer.
	if err := db.Relation("A").TryInsert(database.Tuple{900, 0}); err != nil {
		t.Fatal(err)
	}
	if !pr.Stale() {
		t.Fatal("Prepared not stale after TryInsert")
	}

	if _, err := pr.Decide(nil); !errors.Is(err, plan.ErrStalePlan) {
		t.Errorf("Decide after mutation: got %v, want ErrStalePlan", err)
	}
	if _, err := pr.Count(nil); !errors.Is(err, plan.ErrStalePlan) {
		t.Errorf("Count after mutation: got %v, want ErrStalePlan", err)
	}
	if _, err := pr.Enumerate(nil); !errors.Is(err, plan.ErrStalePlan) {
		t.Errorf("Enumerate after mutation: got %v, want ErrStalePlan", err)
	}
	if _, err := pr.NewRandomAccess(nil); !errors.Is(err, plan.ErrStalePlan) {
		t.Errorf("NewRandomAccess after mutation: got %v, want ErrStalePlan", err)
	}
	if _, err := pr.ParEval(2, nil); !errors.Is(err, plan.ErrStalePlan) {
		t.Errorf("ParEval after mutation: got %v, want ErrStalePlan", err)
	}

	// Re-Bind recovers: the same immutable plan binds against the new
	// generation and the new tuple shows up.
	pr2, err := p.Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := pr2.Enumerate(nil)
	if err != nil {
		t.Fatal(err)
	}
	after := delay.Collect(e2)
	if len(after) != before+1 {
		t.Errorf("after re-Bind: %d answers, want %d", len(after), before+1)
	}
	found := false
	for _, tp := range after {
		if tp.Equal(database.Tuple{900, 0}) {
			found = true
		}
	}
	if !found {
		t.Error("re-bound Prepared does not see the inserted tuple")
	}
}

// TestStalePlanIndexOnlyMutations: mutations that reorder, deduplicate, or
// delete — not just insert — advance the generation too, since bound
// spines hold row-id references into the slabs. No-op mutations (Sort on a
// sorted relation, Dedup with nothing to remove, deleting an absent tuple)
// must NOT stale a warm plan: that was the spurious-staleness bug.
func TestStalePlanIndexOnlyMutations(t *testing.T) {
	for _, tc := range []struct {
		name      string
		setup     func(db *database.Database) // pre-Bind state adjustment
		mutate    func(db *database.Database)
		wantStale bool
	}{
		{
			// (0, 5) appended after the chainDB Dedup leaves A unsorted,
			// so this Sort really moves rows.
			name:      "Sort(reorders)",
			setup:     func(db *database.Database) { db.Relation("A").Insert(database.Tuple{0, 5}) },
			mutate:    func(db *database.Database) { db.Relation("A").Sort() },
			wantStale: true,
		},
		{
			name:      "Sort(no-op)",
			mutate:    func(db *database.Database) { db.Relation("A").Sort() },
			wantStale: false,
		},
		{
			// chainDB already holds A(0,0); the duplicate makes Dedup real.
			name:      "Dedup(removes)",
			setup:     func(db *database.Database) { db.Relation("A").Insert(database.Tuple{0, 0}) },
			mutate:    func(db *database.Database) { db.Relation("A").Dedup() },
			wantStale: true,
		},
		{
			name:      "Dedup(no-op)",
			mutate:    func(db *database.Database) { db.Relation("B").Dedup() },
			wantStale: false,
		},
		{
			name:      "Insert",
			mutate:    func(db *database.Database) { db.Relation("A").Insert(database.Tuple{800, 801}) },
			wantStale: true,
		},
		{
			name:      "Delete",
			mutate:    func(db *database.Database) { db.Relation("A").Delete(database.Tuple{0, 0}) },
			wantStale: true,
		},
		{
			name:      "Delete(absent)",
			mutate:    func(db *database.Database) { db.Relation("A").Delete(database.Tuple{900, 901}) },
			wantStale: false,
		},
		{
			name:      "AddRelation",
			mutate:    func(db *database.Database) { db.AddRelation(database.NewRelation("Zz", 1)) },
			wantStale: true,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
			db := chainDB(10)
			if tc.setup != nil {
				tc.setup(db)
			}
			p, err := plan.Compile(q)
			if err != nil {
				t.Fatal(err)
			}
			pr, err := p.Bind(db)
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(db)
			if pr.Stale() != tc.wantStale {
				t.Fatalf("%s: Stale() = %v, want %v", tc.name, pr.Stale(), tc.wantStale)
			}
			if _, err := pr.Enumerate(nil); tc.wantStale != errors.Is(err, plan.ErrStalePlan) {
				t.Errorf("Enumerate after %s: got %v, wantStale %v", tc.name, err, tc.wantStale)
			}
		})
	}
}

// TestStalePlanUCQ: union statements observe staleness through the same
// generation check.
func TestStalePlanUCQ(t *testing.T) {
	u := mustUCQ(t, "Q(x) :- A(x,y); Q(x) :- B(x,y).")
	db := chainDB(10)
	p, err := plan.CompileUCQ(u)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := p.Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Decide(nil); err != nil {
		t.Fatal(err)
	}
	db.Relation("B").Insert(database.Tuple{70, 71})
	if _, err := pr.Decide(nil); !errors.Is(err, plan.ErrStalePlan) {
		t.Errorf("union Decide after mutation: got %v, want ErrStalePlan", err)
	}
	if _, err := pr.Count(nil); !errors.Is(err, plan.ErrStalePlan) {
		t.Errorf("union Count after mutation: got %v, want ErrStalePlan", err)
	}
	if _, err := pr.Enumerate(nil); !errors.Is(err, plan.ErrStalePlan) {
		t.Errorf("union Enumerate after mutation: got %v, want ErrStalePlan", err)
	}
}
