package plan_test

import (
	"sync"
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/plan"
)

// TestPrepareSingleflight: N goroutines racing to bind the same cold
// statement must cost exactly one bind — one flight holder pays the miss,
// every waiter is counted a hit and receives the same *Prepared.
func TestPrepareSingleflight(t *testing.T) {
	q := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	db := database.NewDatabase()
	a := database.NewRelation("A", 2)
	b := database.NewRelation("B", 2)
	for i := 0; i < 50_000; i++ {
		a.InsertValues(database.Value(i), database.Value(i+1))
		b.InsertValues(database.Value(i), database.Value(i+1))
	}
	db.AddRelation(a)
	db.AddRelation(b)
	cache := plan.NewCache()
	p, err := cache.Compile(q)
	if err != nil {
		t.Fatal(err)
	}

	const n = 16
	var start, wg sync.WaitGroup
	start.Add(1)
	prs := make([]*plan.Prepared, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			pr, err := cache.PreparePlan(p, db, nil)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			prs[i] = pr
		}(i)
	}
	start.Done()
	wg.Wait()
	for i := 1; i < n; i++ {
		if prs[i] != prs[0] {
			t.Fatalf("goroutine %d got a different Prepared than goroutine 0", i)
		}
	}
	hits, misses := cache.Stats()
	if misses != 1 {
		t.Fatalf("%d concurrent cold Prepares cost %d binds, want exactly 1", n, misses)
	}
	if hits != n-1 {
		t.Fatalf("hits %d, want %d (every waiter counts as a hit)", hits, n-1)
	}
}

// TestSlabCompactionBoundedGrowth is the regression test for tombstoned
// slab rows: before Relation.CompactSlab, a delete under the delta path
// retired the row's index entry but never reclaimed its slab slot, so
// sustained delete/insert churn grew the constant-delay spine's slabs
// without bound — and the churn counter it fed eventually tripped the
// rebuild cliff. With Cache.Sweep compacting slabs under the same waste
// threshold as the index spines, waste must stay bounded by threshold +
// inter-sweep churn, refreshes must stay in place, answers must stay
// correct — and the subtle invariant compaction has to preserve: the
// enumeration ORDER must be identical across a compaction, because live
// cursors address answers by offset.
func TestSlabCompactionBoundedGrowth(t *testing.T) {
	q := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	db := database.NewDatabase()
	a := database.NewRelation("A", 2)
	b := database.NewRelation("B", 2)
	const base = 600
	for i := 0; i < base; i++ {
		a.InsertValues(database.Value(i), database.Value(i+1))
		b.InsertValues(database.Value(i), database.Value(i+1))
	}
	db.AddRelation(a)
	db.AddRelation(b)

	cache := plan.NewCache()
	pr, err := cache.Prepare(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Plan().EnumerateEngine != plan.EngineConstantDelay {
		t.Fatalf("test query landed on %s, want constant-delay", pr.Plan().EnumerateEngine)
	}

	collect := func() []database.Tuple {
		e, err := pr.Enumerate(nil)
		if err != nil {
			t.Fatalf("enumerate: %v", err)
		}
		return delay.Collect(e)
	}

	const rounds = 400
	const sweepEvery = 25
	maxWaste, compactedOnce := 0, false
	for round := 0; round < rounds; round++ {
		// Steady churn: delete a tuple on even rounds, reinsert it on odd
		// ones — with a refresh between the two, so the incremental nodes
		// see real presence transitions (a delete+reinsert inside ONE pass
		// cancels to a net no-op and would exercise nothing). Every delete
		// retires a slab row; every reinsert appends a fresh one — net
		// content unchanged per pair, net waste +1 until a sweep reclaims
		// it.
		i := (round / 2) % (base / 2)
		tup := database.Tuple{database.Value(i), database.Value(i + 1)}
		if round%2 == 0 {
			if !a.Delete(tup) {
				t.Fatalf("round %d: delete missed", round)
			}
		} else if err := a.InsertBatch([]database.Tuple{tup}); err != nil {
			t.Fatalf("round %d: insert: %v", round, err)
		}
		got, err := cache.Prepare(q, db)
		if err != nil {
			t.Fatalf("round %d: refresh probe: %v", round, err)
		}
		if got != pr {
			t.Fatalf("round %d: statement was rebound, not refreshed in place", round)
		}
		if w := pr.SlabWaste(); w > maxWaste {
			maxWaste = w
		}
		if (round+1)%sweepEvery == 0 {
			// Order preservation: the answer sequence before a sweep must be
			// exactly the answer sequence after it, offset for offset.
			before := collect()
			wasteBefore := pr.SlabWaste()
			if n := cache.Sweep(); n != 0 {
				t.Fatalf("round %d: Sweep dropped %d fresh statements", round, n)
			}
			if pr.SlabWaste() < wasteBefore {
				compactedOnce = true
			}
			after := collect()
			if len(before) != len(after) {
				t.Fatalf("round %d: compaction changed answer count %d → %d", round, len(before), len(after))
			}
			for k := range before {
				if before[k].Compare(after[k]) != 0 {
					t.Fatalf("round %d: compaction broke enumeration order at offset %d: %v → %v",
						round, k, before[k], after[k])
				}
			}
		}
	}
	cache.Sweep()

	if !compactedOnce {
		t.Fatalf("churn never tripped slab compaction (peak waste %d) — the test lost its teeth", maxWaste)
	}
	// Bounded: a delete tombstones a row in each spine position whose slab
	// holds it (here two: the reduced source part and the answer part), so
	// post-sweep waste is bounded by 2 positions × the sub-threshold
	// residue (< 64 each) plus one inter-sweep burst — and, unlike the
	// leak, it does NOT grow with the round count.
	if w := pr.SlabWaste(); w >= 160 {
		t.Fatalf("slab waste %d after final sweep; compaction is not reclaiming tombstones", w)
	}
	if maxWaste >= 256 {
		t.Fatalf("peak slab waste %d across %d rounds; growth is effectively unbounded", maxWaste, rounds)
	}
	t.Logf("peak slab waste %d, final %d, refreshes %d", maxWaste, pr.SlabWaste(), cache.Refreshes())

	// Correctness after all the churn: contents are back to the originals,
	// so the chain query has exactly base-1 answers.
	if got := collect(); len(got) != base-1 {
		t.Fatalf("after %d churn rounds: %d answers, want %d", rounds, len(got), base-1)
	}
}
