// Package plan implements the Compile → Bind → Execute query pipeline.
//
// Every theorem reproduced by this library separates preprocessing from
// answering: linear preprocessing then constant delay for free-connex
// acyclic queries (Theorem 4.6), the one-pass table build of the counting
// DP (Theorem 4.28), the witness-set construction for ACQ≠
// (Theorem 4.20). The pipeline makes that split an API:
//
//   - Compile(q) classifies the query along the paper's dichotomies and
//     fixes the engine for each task. The resulting Plan is immutable and
//     pure of data — it can be computed once and shared freely.
//   - Plan.Bind(db) runs the data-dependent preprocessing (semijoin
//     reduction, hash index builds, witness maps) and returns a Prepared
//     handle. Binding snapshots the database generation; executing a
//     Prepared after the database mutated fails with ErrStalePlan.
//   - Prepared exposes the unified execution API — Decide, Count,
//     Enumerate, NewRandomAccess, ParEval — each call reusing the bound
//     preprocessing, so repeated executions pay only the per-answer work.
//
// Cache keys Plans by an allocation-free structural fingerprint and
// Prepareds by (plan, database, generation), so a serving loop gets
// amortized preprocessing without bookkeeping.
//
// The one-shot facade in internal/core wraps this pipeline; its classifier
// (Report, Analyze) lives here so that compilation and classification are
// one step.
package plan

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/hypergraph"
	"repro/internal/logic"
	"repro/internal/ucq"
)

// Report is the tractability classification of a conjunctive query.
type Report struct {
	Query        *logic.CQ `json:"-"`
	Arity        int       `json:"arity"`
	SelfJoinFree bool      `json:"self_join_free"`
	HasNegation  bool      `json:"has_negation"`
	HasOrder     bool      `json:"has_order"` // <, ≤ comparisons
	HasDiseq     bool      `json:"has_diseq"` // ≠ comparisons

	Acyclic     bool `json:"acyclic"`
	FreeConnex  bool `json:"free_connex"`
	StarSize    int  `json:"star_size"` // quantified star size (acyclic queries only)
	BetaAcyclic bool `json:"beta_acyclic"`

	DecisionVerdict    string `json:"decision_verdict"`
	CountingVerdict    string `json:"counting_verdict"`
	EnumerationVerdict string `json:"enumeration_verdict"`
}

// Analyze classifies q along the paper's dichotomies.
func Analyze(q *logic.CQ) *Report {
	r := &Report{
		Query:        q,
		Arity:        len(q.Head),
		SelfJoinFree: q.IsSelfJoinFree(),
		HasNegation:  len(q.NegAtoms) > 0,
	}
	for _, c := range q.Comparisons {
		switch c.Op {
		case logic.LT, logic.LE:
			r.HasOrder = true
		case logic.NEQ:
			r.HasDiseq = true
		}
	}
	h := q.Hypergraph()
	r.Acyclic = hypergraph.IsAcyclic(h)
	r.BetaAcyclic = hypergraph.IsBetaAcyclic(h)
	if r.Acyclic {
		r.FreeConnex = hypergraph.FreeConnex(h, q.Head)
		r.StarSize = hypergraph.QuantifiedStarSize(h, q.Head)
	}
	r.fillVerdicts()
	return r
}

func (r *Report) fillVerdicts() {
	switch {
	case r.HasNegation && len(r.Query.Atoms) == 0:
		if r.BetaAcyclic {
			r.DecisionVerdict = "quasi-linear (β-acyclic NCQ, Theorem 4.31)"
		} else {
			r.DecisionVerdict = "no quasi-linear algorithm expected (not β-acyclic, Theorem 4.31 under Triangle)"
		}
		r.CountingVerdict = "not covered (negative queries: see #SAT literature, Section 4.5)"
		r.EnumerationVerdict = r.DecisionVerdict
		return
	case r.HasNegation:
		r.DecisionVerdict = "signed query: only partial characterizations known ([18], Section 4.5); generic backtracking used"
		r.CountingVerdict = r.DecisionVerdict
		r.EnumerationVerdict = r.DecisionVerdict
		return
	case r.HasOrder:
		r.DecisionVerdict = "W[1]-complete in general (ACQ<, Theorem 4.15); generic backtracking used"
		r.CountingVerdict = r.DecisionVerdict
		r.EnumerationVerdict = r.DecisionVerdict
		return
	case !r.Acyclic:
		r.DecisionVerdict = "cyclic: NP-complete combined complexity (Chandra–Merlin); generic backtracking used"
		r.CountingVerdict = "cyclic: ♯P-hard in general; brute-force counting used"
		r.EnumerationVerdict = "no Constant-Delay_lin expected (Theorem 4.9 under Hyperclique)"
		return
	}
	r.DecisionVerdict = "O(‖φ‖·‖D‖) semijoin pass (Yannakakis, Theorem 4.2)"
	if r.StarSize == 1 {
		r.CountingVerdict = "polynomial via star-size algorithm, k = 1 (free-connex, Theorem 4.28)"
	} else {
		r.CountingVerdict = fmt.Sprintf("(‖D‖+‖φ‖)^O(k) via star-size algorithm, k = %d (Theorem 4.28)", r.StarSize)
	}
	suffix := ""
	if r.HasDiseq {
		suffix = " with disequalities (Theorem 4.20)"
	}
	if r.FreeConnex {
		r.EnumerationVerdict = "Constant-Delay_lin (free-connex, Theorem 4.6)" + suffix
	} else if r.SelfJoinFree {
		r.EnumerationVerdict = "linear delay (Theorem 4.3); constant delay impossible under Mat-Mul (Theorem 4.8)" + suffix
	} else {
		r.EnumerationVerdict = "linear delay (Theorem 4.3); not free-connex (self-joins: classification open)" + suffix
	}
}

// String renders the report as an aligned block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query:          %s\n", r.Query)
	fmt.Fprintf(&b, "arity:          %d\n", r.Arity)
	fmt.Fprintf(&b, "self-join free: %v\n", r.SelfJoinFree)
	fmt.Fprintf(&b, "acyclic:        %v\n", r.Acyclic)
	if r.Acyclic {
		fmt.Fprintf(&b, "free-connex:    %v\n", r.FreeConnex)
		fmt.Fprintf(&b, "star size:      %d\n", r.StarSize)
	}
	fmt.Fprintf(&b, "β-acyclic:      %v\n", r.BetaAcyclic)
	fmt.Fprintf(&b, "decide:         %s\n", r.DecisionVerdict)
	fmt.Fprintf(&b, "count:          %s\n", r.CountingVerdict)
	fmt.Fprintf(&b, "enumerate:      %s\n", r.EnumerationVerdict)
	return b.String()
}

// Engine names the algorithm a compiled plan selected for a task. The
// values are stable strings, reported as-is by qeval -task analyze
// -format json.
type Engine string

const (
	// Decision engines.
	EngineYannakakis        Engine = "yannakakis-semijoin" // bottom-up semijoin pass (Theorem 4.2)
	EngineNCQ               Engine = "ncq-csp"             // β-acyclic negative CQ via CSP (Theorem 4.31)
	EngineUnionShortCircuit Engine = "union-short-circuit" // disjunct-wise decide, stop at the first ⊤

	// Counting engines.
	EngineStarSizeCount      Engine = "starsize-dp"         // counting DP over the join tree (Theorem 4.28)
	EngineNeqCount           Engine = "neq-count"           // inclusion–exclusion over disequalities
	EngineInclusionExclusion Engine = "inclusion-exclusion" // UCQ counting over disjunct intersections

	// Enumeration engines.
	EngineConstantDelay    Engine = "constant-delay"     // free-connex odometer (Theorem 4.6)
	EngineLinearDelay      Engine = "linear-delay"       // head-binding enumeration (Theorem 4.3)
	EngineNeqEnum          Engine = "neq-constant-delay" // witness-set ACQ≠ enumerator (Theorem 4.20)
	EngineUnionExtension   Engine = "union-extension"    // free-connex UCQ enumerator (Theorem 4.13)
	EngineUnionMaterialize Engine = "union-materialize"  // per-disjunct materialization + dedup

	// Generic fallback, valid for every task.
	EngineBacktrack Engine = "backtrack"
)

// Plan is an immutable compiled query: the classification report, the
// engine chosen for each task, and (for acyclic queries) the join tree.
// A Plan holds no database state — Bind attaches one.
type Plan struct {
	// Exactly one of CQ, UCQ is non-nil.
	CQ  *logic.CQ
	UCQ *logic.UCQ

	// Report is the classification of CQ (nil for union plans; see
	// Disjuncts).
	Report *Report

	DecideEngine    Engine
	CountEngine     Engine
	EnumerateEngine Engine

	// JoinTree is the GYO join tree of the comparison-free part of the
	// query, when that part is acyclic (nil otherwise, and for unions).
	JoinTree *hypergraph.JoinTree

	// Disjuncts holds the compiled per-disjunct plans of a union.
	Disjuncts []*Plan

	fp      uint64
	boolQ   *logic.CQ // head-stripped query, for the decision engines
	plain   *logic.CQ // comparison-free query, for the classification of enumeration
	boolDjs []*Plan   // compiled head-stripped disjuncts, for union decide
	unionOK bool      // the union admits free-connex union extensions
}

// Fingerprint is the structural 64-bit fingerprint of the compiled query,
// the plan cache key.
func (p *Plan) Fingerprint() uint64 { return p.fp }

// Compile classifies q and fixes the engine for each task. The result is
// immutable and independent of any database: compile once, Bind per
// database (and per mutation), execute any number of times.
func Compile(q *logic.CQ) (*Plan, error) {
	if q == nil {
		return nil, errors.New("plan: nil query")
	}
	rep := Analyze(q)
	p := &Plan{CQ: q, Report: rep, fp: FingerprintCQ(q)}
	p.boolQ = &logic.CQ{Name: q.Name, Atoms: q.Atoms, NegAtoms: q.NegAtoms, Comparisons: q.Comparisons}

	// Decision routing (on the head-stripped query), mirroring the paper's
	// decision dichotomy.
	switch {
	case rep.HasNegation && len(q.Atoms) == 0:
		p.DecideEngine = EngineNCQ
	case rep.HasNegation:
		p.DecideEngine = EngineBacktrack
	case len(q.Comparisons) > 0 || !rep.Acyclic:
		p.DecideEngine = EngineBacktrack
	default:
		p.DecideEngine = EngineYannakakis
	}

	// Counting routing (Theorem 4.28 and the ≠-extension).
	switch {
	case !rep.HasNegation && len(q.Comparisons) == 0 && rep.Acyclic:
		p.CountEngine = EngineStarSizeCount
	case !rep.HasNegation && !rep.HasOrder && rep.Acyclic:
		p.CountEngine = EngineNeqCount
	default:
		p.CountEngine = EngineBacktrack
	}

	// Enumeration routing: order comparisons (and equalities) or a cyclic
	// core force materialization; otherwise the free-connex/linear-delay
	// dichotomy applies, with the witness-set enumerator when
	// disequalities remain.
	hasOrderEnum, hasDiseq := false, false
	for _, cmp := range q.Comparisons {
		switch cmp.Op {
		case logic.LT, logic.LE, logic.EQ:
			hasOrderEnum = true
		case logic.NEQ:
			hasDiseq = true
		}
	}
	p.plain = &logic.CQ{Name: q.Name, Head: q.Head, Atoms: q.Atoms}
	plainAcyclic := p.plain.IsAcyclic()
	switch {
	case rep.HasNegation:
		p.EnumerateEngine = EngineBacktrack
	case hasOrderEnum || !plainAcyclic:
		p.EnumerateEngine = EngineBacktrack
	case hasDiseq && p.plain.IsFreeConnex():
		p.EnumerateEngine = EngineNeqEnum
	case hasDiseq:
		p.EnumerateEngine = EngineBacktrack
	case p.plain.IsFreeConnex():
		p.EnumerateEngine = EngineConstantDelay
	default:
		p.EnumerateEngine = EngineLinearDelay
	}

	if plainAcyclic && !rep.HasNegation {
		if jt, ok := hypergraph.GYO(p.plain.Hypergraph()); ok {
			p.JoinTree = jt
		}
	}
	return p, nil
}

// CompileUCQ compiles a union of conjunctive queries: each disjunct is
// compiled on its own, and the union-extension analysis of Theorem 4.13
// (pure of data) decides at compile time whether the union enumerates with
// constant delay or falls back to materialization.
func CompileUCQ(u *logic.UCQ) (*Plan, error) {
	if u == nil {
		return nil, errors.New("plan: nil union")
	}
	if len(u.Disjuncts) == 0 {
		return nil, errors.New("plan: union has no disjuncts")
	}
	p := &Plan{
		UCQ:          u,
		fp:           FingerprintUCQ(u),
		DecideEngine: EngineUnionShortCircuit,
		CountEngine:  EngineInclusionExclusion,
	}
	for _, d := range u.Disjuncts {
		dp, err := Compile(d)
		if err != nil {
			return nil, err
		}
		p.Disjuncts = append(p.Disjuncts, dp)
		bp, err := Compile(&logic.CQ{Name: d.Name, Atoms: d.Atoms, NegAtoms: d.NegAtoms, Comparisons: d.Comparisons})
		if err != nil {
			return nil, err
		}
		p.boolDjs = append(p.boolDjs, bp)
	}
	if _, err := ucq.Analyze(u, unionMaxExtra); err == nil {
		p.unionOK = true
		p.EnumerateEngine = EngineUnionExtension
	} else {
		p.EnumerateEngine = EngineUnionMaterialize
	}
	return p, nil
}

// unionMaxExtra bounds the number of fresh atoms tried per disjunct in the
// union-extension search, matching the one-shot facade.
const unionMaxExtra = 2
