package plan_test

// Differential suite for the Compile → Bind → Execute pipeline: on hundreds
// of seeded random instances the pipeline must agree with the one-shot core
// facade and with internal/oracle's brute-force reference — on the answers
// AND on the counted steps. A failure prints the seed, the query, and the
// database, so any mismatch reproduces with
//
//	go test ./internal/plan -run TestDifferential -seed=N

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/oracle"
	"repro/internal/plan"
	"repro/internal/qgen"
)

var seedFlag = flag.Int64("seed", -1, "replay a single differential-suite seed (-1 runs the full sweep)")

// numSeeds matches the sweep size of the engine-level suites in
// internal/cq and internal/counting.
const numSeeds = 250

func diffSeeds() []int64 {
	if *seedFlag >= 0 {
		return []int64{*seedFlag}
	}
	seeds := make([]int64, numSeeds)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	return seeds
}

func failInstance(t *testing.T, seed int64, q fmt.Stringer, db *database.Database, format string, args ...interface{}) {
	t.Helper()
	t.Fatalf("%s\nseed %d — replay with: go test ./internal/plan -run %s -seed=%d\n%s",
		fmt.Sprintf(format, args...), seed, t.Name(), seed, qgen.FormatInstance(q, db))
}

func sortedCopy(ts []database.Tuple) []database.Tuple {
	out := append([]database.Tuple(nil), ts...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Compare(out[j-1]) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sameAnswers(a, b []database.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	a, b = sortedCopy(a), sortedCopy(b)
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func sameSequence(a, b []database.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestDifferentialPipeline: for every seeded instance, the explicit
// Compile → Bind → Execute chain produces the oracle's answer set for
// decide, count, and enumerate, with the total counted steps bit-identical
// to the one-shot core facade; and a second execution of the same Prepared
// (the warm path) replays the identical answer sequence with the identical
// execution step count while skipping all preprocessing.
func TestDifferentialPipeline(t *testing.T) {
	for _, seed := range diffSeeds() {
		q, db := qgen.Instance(seed)
		want, err := oracle.Eval(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "oracle: %v", err)
		}

		// One-shot facade: compile + bind + enumerate on one counter.
		c1 := &delay.Counter{}
		e1, err := core.Enumerate(db, q, c1)
		if err != nil {
			failInstance(t, seed, q, db, "core.Enumerate: %v", err)
		}
		got1 := delay.Collect(e1)
		oneShotSteps := c1.Steps()

		// Explicit pipeline, cold: same counter placement, so the grand
		// total must be bit-identical to the facade.
		p, err := plan.Compile(q)
		if err != nil {
			failInstance(t, seed, q, db, "Compile: %v", err)
		}
		c2 := &delay.Counter{}
		pr, err := p.BindCounted(db, c2)
		if err != nil {
			failInstance(t, seed, q, db, "Bind: %v", err)
		}
		bindSteps := c2.Steps()
		e2, err := pr.Enumerate(c2)
		if err != nil {
			failInstance(t, seed, q, db, "Enumerate: %v", err)
		}
		got2 := delay.Collect(e2)
		coldSteps := c2.Steps()
		execSteps := coldSteps - bindSteps

		if !sameAnswers(got1, want) {
			failInstance(t, seed, q, db, "core.Enumerate %v != oracle %v", got1, want)
		}
		if !sameAnswers(got2, want) {
			failInstance(t, seed, q, db, "pipeline enumerate %v != oracle %v", got2, want)
		}
		if oneShotSteps != coldSteps {
			failInstance(t, seed, q, db, "total steps: one-shot %d != pipeline %d", oneShotSteps, coldSteps)
		}

		// Warm path: a fresh cursor over the already-bound spine. The
		// answer sequence and the execution steps must replay exactly;
		// no bind/classification steps may reappear.
		c3 := &delay.Counter{}
		e3, err := pr.Enumerate(c3)
		if err != nil {
			failInstance(t, seed, q, db, "warm Enumerate: %v", err)
		}
		got3 := delay.Collect(e3)
		if !sameSequence(got3, got2) {
			failInstance(t, seed, q, db, "warm enumerate sequence %v != cold %v", got3, got2)
		}
		switch p.EnumerateEngine {
		case plan.EngineConstantDelay, plan.EngineLinearDelay, plan.EngineNeqEnum:
			if c3.Steps() != execSteps {
				failInstance(t, seed, q, db, "warm execution steps %d != cold %d", c3.Steps(), execSteps)
			}
		default:
			// Materializing routes replay a memoized answer list; the warm
			// run must not exceed the cold execution cost.
			if c3.Steps() > execSteps {
				failInstance(t, seed, q, db, "warm steps %d > cold execution steps %d", c3.Steps(), execSteps)
			}
		}

		// Decide and count through the same Prepared agree with the oracle
		// and with the one-shot wrappers.
		okPipeline, err := pr.Decide(nil)
		if err != nil {
			failInstance(t, seed, q, db, "Decide: %v", err)
		}
		if okPipeline != (len(want) > 0) {
			failInstance(t, seed, q, db, "Decide %v != oracle %v", okPipeline, len(want) > 0)
		}
		okFacade, err := core.Decide(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "core.Decide: %v", err)
		}
		if okFacade != okPipeline {
			failInstance(t, seed, q, db, "core.Decide %v != pipeline %v", okFacade, okPipeline)
		}
		n, err := pr.Count(nil)
		if err != nil {
			failInstance(t, seed, q, db, "Count: %v", err)
		}
		if !n.IsInt64() || n.Int64() != int64(len(want)) {
			failInstance(t, seed, q, db, "Count %s != oracle %d", n, len(want))
		}
	}
}

// TestDifferentialUCQ: unions through the pipeline — DecideUCQ (the
// satellite bugfix), inclusion–exclusion counting, and union enumeration
// all agree with the brute-force UCQ oracle.
func TestDifferentialUCQ(t *testing.T) {
	cfg := qgen.Default()
	for _, seed := range diffSeeds() {
		rng := rand.New(rand.NewSource(seed))
		u := qgen.UCQ(rng, cfg)
		db := qgen.DatabaseForUCQ(rng, cfg, u)
		want, err := oracle.EvalUCQ(db, u)
		if err != nil {
			failInstance(t, seed, u, db, "oracle: %v", err)
		}

		got, err := core.DecideUCQ(db, u)
		if err != nil {
			failInstance(t, seed, u, db, "DecideUCQ: %v", err)
		}
		if got != (len(want) > 0) {
			failInstance(t, seed, u, db, "DecideUCQ %v != oracle %v", got, len(want) > 0)
		}

		p, err := plan.CompileUCQ(u)
		if err != nil {
			failInstance(t, seed, u, db, "CompileUCQ: %v", err)
		}
		pr, err := p.Bind(db)
		if err != nil {
			failInstance(t, seed, u, db, "Bind: %v", err)
		}
		ok, err := pr.Decide(nil)
		if err != nil {
			failInstance(t, seed, u, db, "Decide: %v", err)
		}
		if ok != got {
			failInstance(t, seed, u, db, "pipeline Decide %v != DecideUCQ %v", ok, got)
		}
		n, err := pr.Count(nil)
		if err != nil {
			failInstance(t, seed, u, db, "Count: %v", err)
		}
		if !n.IsInt64() || n.Int64() != int64(len(want)) {
			failInstance(t, seed, u, db, "Count %s != oracle %d", n, len(want))
		}
		e, err := pr.Enumerate(nil)
		if err != nil {
			failInstance(t, seed, u, db, "Enumerate: %v", err)
		}
		enum := delay.Collect(e)
		if !sameAnswers(enum, want) {
			failInstance(t, seed, u, db, "enumerate %v != oracle %v", enum, want)
		}
		// Warm union enumeration replays the identical sequence.
		e2, err := pr.Enumerate(nil)
		if err != nil {
			failInstance(t, seed, u, db, "warm Enumerate: %v", err)
		}
		if enum2 := delay.Collect(e2); !sameSequence(enum2, enum) {
			failInstance(t, seed, u, db, "warm union sequence %v != cold %v", enum2, enum)
		}
	}
}

// TestDifferentialRandomAccessPipeline: the Prepared's random-access handle
// matches the oracle on free-connex instances, and the handle is memoized
// (building twice returns the same structure with the same count).
func TestDifferentialRandomAccessPipeline(t *testing.T) {
	cfg := qgen.Default()
	for _, seed := range diffSeeds() {
		rng := rand.New(rand.NewSource(seed))
		q := qgen.FreeConnexCQ(rng, cfg)
		db := qgen.DatabaseFor(rng, cfg, q)
		want, err := oracle.Eval(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "oracle: %v", err)
		}
		p, err := plan.Compile(q)
		if err != nil {
			failInstance(t, seed, q, db, "Compile: %v", err)
		}
		if p.EnumerateEngine != plan.EngineConstantDelay {
			continue // generator rarely emits a non-free-connex corner; skip
		}
		pr, err := p.Bind(db)
		if err != nil {
			failInstance(t, seed, q, db, "Bind: %v", err)
		}
		ra, err := pr.NewRandomAccess(nil)
		if err != nil {
			failInstance(t, seed, q, db, "NewRandomAccess: %v", err)
		}
		n := ra.Count()
		if !n.IsInt64() || n.Int64() != int64(len(want)) {
			failInstance(t, seed, q, db, "random access Count %s != oracle %d", n, len(want))
		}
		got := make([]database.Tuple, 0, len(want))
		for i := int64(0); i < n.Int64(); i++ {
			tp, err := ra.GetInt(i)
			if err != nil {
				failInstance(t, seed, q, db, "Get(%d): %v", i, err)
			}
			got = append(got, tp.Clone())
		}
		if !sameAnswers(got, want) {
			failInstance(t, seed, q, db, "random access image %v != oracle %v", got, want)
		}
		ra2, err := pr.NewRandomAccess(nil)
		if err != nil {
			failInstance(t, seed, q, db, "second NewRandomAccess: %v", err)
		}
		if ra2 != ra {
			failInstance(t, seed, q, db, "random access handle not memoized")
		}
	}
}
