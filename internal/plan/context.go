package plan

// Context plumbing: serving a query over the network gives every request
// a deadline, and the enumeration loops — the only unbounded work after
// Bind — must observe it. EnumerateCtx threads a context into the loop at
// answer granularity: the check is O(1) per output, so the paper's delay
// guarantees survive cancellation support (constant delay stays constant,
// just with one more constant-time operation per answer).

import (
	"context"

	"repro/internal/database"
	"repro/internal/delay"
)

// CtxEnumerator wraps an enumerator with cooperative cancellation: Next
// reports exhaustion as soon as the context is done, and Err tells the
// two apart. It implements delay.Enumerator.
type CtxEnumerator struct {
	e   delay.Enumerator
	ctx context.Context
	err error
}

// Next produces the next answer unless the context has been cancelled or
// its deadline has passed, in which case it reports ok=false and records
// the context error.
func (ce *CtxEnumerator) Next() (database.Tuple, bool) {
	if ce.err != nil {
		return nil, false
	}
	if err := ce.ctx.Err(); err != nil {
		ce.err = err
		return nil, false
	}
	return ce.e.Next()
}

// Err returns nil after ordinary exhaustion and the context's error
// (context.Canceled or context.DeadlineExceeded) when the enumeration was
// cut short. Valid once Next has returned ok=false.
func (ce *CtxEnumerator) Err() error { return ce.err }

// EnumerateCtx is Enumerate with the request context threaded into the
// enumeration loop: draining the returned enumerator checks ctx once per
// answer, so a deadline expiring mid-stream stops the pass after at most
// one more delay unit — no goroutines, timers, or partial state are left
// behind, because cancellation is observed synchronously by the drainer.
func (pr *Prepared) EnumerateCtx(ctx context.Context, c *delay.Counter) (*CtxEnumerator, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e, err := pr.Enumerate(c)
	if err != nil {
		return nil, err
	}
	return &CtxEnumerator{e: e, ctx: ctx}, nil
}
