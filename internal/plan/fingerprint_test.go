package plan

import (
	"testing"

	"repro/internal/logic"
)

func parseCQ(t *testing.T, src string) *logic.CQ {
	t.Helper()
	q, err := logic.ParseCQ(src)
	if err != nil {
		t.Fatalf("ParseCQ(%q): %v", src, err)
	}
	return q
}

// TestFingerprintStability: the fingerprint is a pure function of the query
// structure — equal across calls and across independently parsed values.
func TestFingerprintStability(t *testing.T) {
	src := "Q(x,y) :- A(x,y), B(y,z), x != z."
	a, b := parseCQ(t, src), parseCQ(t, src)
	if FingerprintCQ(a) != FingerprintCQ(b) {
		t.Error("equal queries got different fingerprints")
	}
	if FingerprintCQ(a) != FingerprintCQ(a) {
		t.Error("fingerprint not deterministic")
	}
	if !equalCQ(a, b) {
		t.Error("equalCQ rejects structurally equal queries")
	}
}

// TestFingerprintSensitivity: every structural edit — head order, atom
// name, variable renaming, comparison operator, negation — must move the
// fingerprint (these are distinct queries; a collision here would be
// resolved by equalCQ, but the hash should separate them outright).
func TestFingerprintSensitivity(t *testing.T) {
	base := parseCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	variants := []string{
		"Q(y,x) :- A(x,y), B(y,z).",         // head order
		"Q(x,y) :- A(y,x), B(y,z).",         // argument order
		"Q(x,y) :- C(x,y), B(y,z).",         // atom name
		"Q(x,y) :- A(x,y), B(y,w).",         // variable renamed
		"Q(x,y) :- A(x,y), B(y,z), x != z.", // extra comparison
		"Q(x,y) :- A(x,y), B(y,z), x < z.",  // (different op below)
		"Q(x,y) :- A(x,y), B(y,z), !C(x).",  // negated atom
		"Q(x) :- A(x,y), B(y,z).",           // narrower head
	}
	seen := map[uint64]string{FingerprintCQ(base): base.String()}
	for _, src := range variants {
		v := parseCQ(t, src)
		fp := FingerprintCQ(v)
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision: %q vs %q", prev, src)
		}
		seen[fp] = src
		if equalCQ(base, v) {
			t.Errorf("equalCQ conflates %q with the base query", src)
		}
	}
	// Operator identity matters: x != z vs x < z differ.
	neq := parseCQ(t, "Q(x,y) :- A(x,y), B(y,z), x != z.")
	lt := parseCQ(t, "Q(x,y) :- A(x,y), B(y,z), x < z.")
	if FingerprintCQ(neq) == FingerprintCQ(lt) {
		t.Error("comparison operator not folded into the fingerprint")
	}
	if equalCQ(neq, lt) {
		t.Error("equalCQ ignores the comparison operator")
	}
}

// TestFingerprintUCQ: union fingerprints separate unions from their own
// disjuncts and are sensitive to disjunct order (the cache treats reordered
// unions as distinct — answers agree, but plans are not shared).
func TestFingerprintUCQ(t *testing.T) {
	u1, err := logic.ParseUCQ("Q(x) :- A(x,y); Q(x) :- B(x,y).")
	if err != nil {
		t.Fatal(err)
	}
	u2, err := logic.ParseUCQ("Q(x) :- B(x,y); Q(x) :- A(x,y).")
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintUCQ(u1) == FingerprintUCQ(u2) {
		t.Error("reordered unions share a fingerprint")
	}
	if equalUCQ(u1, u2) {
		t.Error("equalUCQ conflates reordered unions")
	}
	if FingerprintUCQ(u1) == FingerprintCQ(u1.Disjuncts[0]) {
		t.Error("union fingerprint equals its first disjunct's CQ fingerprint")
	}
	u3, err := logic.ParseUCQ("Q(x) :- A(x,y); Q(x) :- B(x,y).")
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintUCQ(u1) != FingerprintUCQ(u3) || !equalUCQ(u1, u3) {
		t.Error("equal unions do not match")
	}
}

// TestFingerprintAllocs: hashing must not allocate — it runs on the cache's
// warm path under a read lock.
func TestFingerprintAllocs(t *testing.T) {
	q := parseCQ(t, "Q(x,y) :- A(x,y), B(y,z), x != z, !C(x).")
	if a := testing.AllocsPerRun(100, func() { FingerprintCQ(q) }); a != 0 {
		t.Errorf("FingerprintCQ allocates %.1f objects/run, want 0", a)
	}
	q2 := parseCQ(t, "Q(x,y) :- A(x,y), B(y,z), x != z, !C(x).")
	if a := testing.AllocsPerRun(100, func() { equalCQ(q, q2) }); a != 0 {
		t.Errorf("equalCQ allocates %.1f objects/run, want 0", a)
	}
}
