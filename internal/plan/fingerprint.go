package plan

import (
	"math/bits"

	"repro/internal/logic"
)

// The plan cache is keyed by a 64-bit structural fingerprint of the query
// AST, folded with the same wyhash-style multiply-mix as the tuple
// fingerprints in internal/database. The fold walks the structure directly
// (no String() rendering), so a cache probe allocates nothing. Collisions
// are harmless for correctness: the cache resolves them by exact
// structural comparison (equalCQ/equalUCQ).

const (
	fpSeed  = 0x9e3779b97f4a7c15
	fpMul   = 0xa0761d6478bd642f
	fpConst = 1 // tag for constant terms
	fpVar   = 2 // tag for variable terms
)

func fpMix(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a^fpMul, b^fpSeed)
	return hi ^ lo
}

// fpString folds a string without allocating: the length first (so "ab"+"c"
// and "a"+"bc" differ), then 8-byte chunks.
func fpString(h uint64, s string) uint64 {
	h = fpMix(h, uint64(len(s)))
	var chunk uint64
	n := 0
	for i := 0; i < len(s); i++ {
		chunk = chunk<<8 | uint64(s[i])
		if n++; n == 8 {
			h = fpMix(h, chunk)
			chunk, n = 0, 0
		}
	}
	if n > 0 {
		h = fpMix(h, chunk)
	}
	return h
}

func fpTerm(h uint64, t logic.Term) uint64 {
	if t.IsConst {
		return fpMix(fpMix(h, fpConst), uint64(t.Const))
	}
	return fpString(fpMix(h, fpVar), t.Var)
}

func fpAtoms(h uint64, atoms []logic.Atom) uint64 {
	h = fpMix(h, uint64(len(atoms)))
	for _, a := range atoms {
		h = fpString(h, a.Pred)
		h = fpMix(h, uint64(len(a.Args)))
		for _, t := range a.Args {
			h = fpTerm(h, t)
		}
	}
	return h
}

// FingerprintCQ folds the full structure of q — name, head, atoms, negated
// atoms, comparisons — into 64 bits, allocation-free.
func FingerprintCQ(q *logic.CQ) uint64 {
	h := fpString(fpSeed, q.Name)
	h = fpMix(h, uint64(len(q.Head)))
	for _, v := range q.Head {
		h = fpString(h, v)
	}
	h = fpAtoms(h, q.Atoms)
	h = fpAtoms(h, q.NegAtoms)
	h = fpMix(h, uint64(len(q.Comparisons)))
	for _, c := range q.Comparisons {
		h = fpMix(h, uint64(c.Op))
		h = fpTerm(h, c.L)
		h = fpTerm(h, c.R)
	}
	return h
}

// FingerprintUCQ folds a union as its name plus the disjunct fingerprints.
func FingerprintUCQ(u *logic.UCQ) uint64 {
	h := fpString(fpSeed^0x5bf03635, u.Name)
	h = fpMix(h, uint64(len(u.Disjuncts)))
	for _, d := range u.Disjuncts {
		h = fpMix(h, FingerprintCQ(d))
	}
	return h
}

func equalTerm(a, b logic.Term) bool {
	if a.IsConst != b.IsConst {
		return false
	}
	if a.IsConst {
		return a.Const == b.Const
	}
	return a.Var == b.Var
}

func equalAtoms(a, b []logic.Atom) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Pred != b[i].Pred || len(a[i].Args) != len(b[i].Args) {
			return false
		}
		for j := range a[i].Args {
			if !equalTerm(a[i].Args[j], b[i].Args[j]) {
				return false
			}
		}
	}
	return true
}

// equalCQ is exact structural equality, the collision resolver behind the
// fingerprint. Allocation-free.
func equalCQ(a, b *logic.CQ) bool {
	if a == b {
		return true
	}
	if a.Name != b.Name || len(a.Head) != len(b.Head) {
		return false
	}
	for i := range a.Head {
		if a.Head[i] != b.Head[i] {
			return false
		}
	}
	if !equalAtoms(a.Atoms, b.Atoms) || !equalAtoms(a.NegAtoms, b.NegAtoms) {
		return false
	}
	if len(a.Comparisons) != len(b.Comparisons) {
		return false
	}
	for i := range a.Comparisons {
		ca, cb := a.Comparisons[i], b.Comparisons[i]
		if ca.Op != cb.Op || !equalTerm(ca.L, cb.L) || !equalTerm(ca.R, cb.R) {
			return false
		}
	}
	return true
}

func equalUCQ(a, b *logic.UCQ) bool {
	if a == b {
		return true
	}
	if a.Name != b.Name || len(a.Disjuncts) != len(b.Disjuncts) {
		return false
	}
	for i := range a.Disjuncts {
		if !equalCQ(a.Disjuncts[i], b.Disjuncts[i]) {
			return false
		}
	}
	return true
}
