package plan_test

// Churn test for spine-index compaction: a statement kept warm through
// sustained single-tuple mutations accumulates index waste (every bucket
// relocation abandons slots), and periodic Cache.Sweep calls must keep
// that waste bounded by compacting the surviving statement's spine —
// without ever rebinding and without disturbing answers.

import (
	"testing"

	"repro/internal/database"
	"repro/internal/plan"
)

func TestSweepCompactsSpineUnderChurn(t *testing.T) {
	q := mustCQ(t, "Q(x,y) :- A(x,y), B(y,z).")
	db := database.NewDatabase()
	a := database.NewRelation("A", 2)
	b := database.NewRelation("B", 2)
	for i := 0; i < 2000; i++ {
		a.InsertValues(database.Value(i), database.Value(i%50))
	}
	for y := 0; y < 50; y++ {
		for z := 0; z < 4; z++ {
			b.InsertValues(database.Value(y), database.Value(100+z))
		}
	}
	a.Dedup()
	b.Dedup()
	db.AddRelation(a)
	db.AddRelation(b)

	cache := plan.NewCache()
	pr, err := cache.Prepare(q, db)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 400
	const sweepEvery = 25
	maxWaste, maxAfterSweep, compactedOnce := 0, 0, false
	for r := 0; r < rounds; r++ {
		// Rotate one tuple through each relation: the insert relocates a
		// bucket (abandoning its old span), the delete shrinks one.
		at := database.Tuple{database.Value(50000 + r), database.Value(r % 50)}
		bt := database.Tuple{database.Value(r % 50), database.Value(1000 + r%7)}
		a.Insert(at)
		if r%7 != 0 {
			b.Insert(bt)
		} else {
			b.Delete(database.Tuple{database.Value(r % 50), database.Value(1000 + r%7 + 1)})
		}

		// Re-probe: the cache catches the statement up in place.
		got, err := cache.Prepare(q, db)
		if err != nil {
			t.Fatalf("round %d: Prepare: %v", r, err)
		}
		if got != pr {
			t.Fatalf("round %d: cache bound a fresh statement instead of refreshing", r)
		}
		if w := pr.SpineWaste(); w > maxWaste {
			maxWaste = w
		}

		if (r+1)%sweepEvery == 0 {
			before := pr.SpineWaste()
			if n := cache.Sweep(); n != 0 {
				t.Fatalf("round %d: Sweep dropped %d fresh statements", r, n)
			}
			after := pr.SpineWaste()
			if after < before {
				compactedOnce = true
			}
			if after > maxAfterSweep {
				maxAfterSweep = after
			}
			// Answers survive compaction. Q(x,y) selects the A tuples
			// whose y occurs in B — cheap to recompute exactly.
			ys := map[database.Value]bool{}
			for _, bt := range b.Tuples {
				ys[bt[0]] = true
			}
			var want []database.Tuple
			for _, at := range a.Tuples {
				if ys[at[1]] {
					want = append(want, at)
				}
			}
			gotRows, err := pr.ParEval(2, nil)
			if err != nil {
				t.Fatalf("round %d: ParEval after sweep: %v", r, err)
			}
			if !sameAnswers(gotRows, want) {
				t.Fatalf("round %d: answers diverged after sweep-compaction", r)
			}
		}
	}

	if !compactedOnce {
		t.Fatalf("churn never tripped the compaction threshold (max waste %d) — the test lost its teeth", maxWaste)
	}
	// Every sweep compacts any index at or past the threshold, so
	// post-sweep waste stays below it (small slack for sub-threshold
	// indexes); and between sweeps waste is bounded by one burst of
	// relocations on top of that.
	if maxAfterSweep >= 128 {
		t.Fatalf("post-sweep spine waste reached %d, want < 128", maxAfterSweep)
	}
	if maxWaste > 2000 {
		t.Fatalf("spine waste reached %d under periodic sweeps — effectively unbounded", maxWaste)
	}
}
