package plan

import (
	"sync"
	"sync/atomic"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
)

// Cache memoizes compiled plans and bound statements. Plans are keyed by
// the structural fingerprint of the query (collisions resolved by exact
// comparison); Prepareds by (plan, database) with the database generation
// checked on every probe, so a mutation transparently forces a re-Bind
// instead of serving stale row ids. All methods are safe for concurrent
// use; the warm path (fingerprint, probe, generation check) performs no
// allocation — pinned by TestCacheWarmPathAllocs.
type Cache struct {
	mu       sync.RWMutex
	plans    map[uint64][]*Plan
	prepared map[preparedKey]*preparedEntry

	// maxPrepared bounds len(prepared); 0 means unbounded. Entries beyond
	// the bound are evicted least-recently-used, so a workload cycling
	// through many (plan, database) pairs cannot grow the cache — and,
	// through the db pointers in its keys, retain dead databases — forever.
	maxPrepared int

	hits      atomic.Uint64
	misses    atomic.Uint64
	refreshes atomic.Uint64
	clock     atomic.Uint64
}

type preparedKey struct {
	plan *Plan
	db   *database.Database
}

type preparedEntry struct {
	gen     uint64
	pr      *Prepared
	lastUse atomic.Uint64
}

func (c *Cache) touch(e *preparedEntry) {
	e.lastUse.Store(c.clock.Add(1))
}

// NewCache creates an empty plan cache.
func NewCache() *Cache {
	return &Cache{
		plans:    make(map[uint64][]*Plan),
		prepared: make(map[preparedKey]*preparedEntry),
	}
}

// Stats returns the number of warm probes (hits) and of probes that had to
// compile and/or bind (misses).
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Refreshes returns how many probes found a stale statement and caught it
// up in place (Prepared.Refresh) instead of binding a fresh one. A refresh
// counts as neither hit nor miss.
func (c *Cache) Refreshes() uint64 { return c.refreshes.Load() }

// Len returns the number of bound statements currently cached.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.prepared)
}

// SetMaxPrepared bounds the number of cached bound statements; 0 removes
// the bound. If the cache is already over the new bound, least-recently-
// used entries are evicted immediately.
func (c *Cache) SetMaxPrepared(n int) {
	c.mu.Lock()
	c.maxPrepared = n
	c.evictLocked()
	c.mu.Unlock()
}

// Sweep drops every cached statement whose database has mutated since it
// was bound or refreshed, returning how many were dropped. Useful after a
// bulk load, when catching the survivors up would be pure waste. Surviving
// statements get their spine indexes compacted (Prepared.CompactIndexes)
// when incremental refreshes have degraded the bucket layout past the
// threshold, so periodic sweeps also bound index waste under churn.
func (c *Cache) Sweep() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, e := range c.prepared {
		if e.gen != k.db.Generation() {
			delete(c.prepared, k)
			n++
			continue
		}
		e.pr.CompactIndexes()
	}
	return n
}

// evictLocked enforces maxPrepared by dropping least-recently-used
// entries. Caller holds the write lock.
func (c *Cache) evictLocked() {
	if c.maxPrepared <= 0 {
		return
	}
	for len(c.prepared) > c.maxPrepared {
		var oldest preparedKey
		first, min := true, uint64(0)
		for k, e := range c.prepared {
			if u := e.lastUse.Load(); first || u < min {
				first, min, oldest = false, u, k
			}
		}
		delete(c.prepared, oldest)
	}
}

// Reset drops every cached plan and bound statement.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.plans = make(map[uint64][]*Plan)
	c.prepared = make(map[preparedKey]*preparedEntry)
	c.mu.Unlock()
}

// lookupPlan finds a cached plan structurally equal to q (or u). Caller
// holds at least the read lock.
func (c *Cache) lookupPlan(fp uint64, q *logic.CQ, u *logic.UCQ) *Plan {
	for _, p := range c.plans[fp] {
		if q != nil && p.CQ != nil && equalCQ(p.CQ, q) {
			return p
		}
		if u != nil && p.UCQ != nil && equalUCQ(p.UCQ, u) {
			return p
		}
	}
	return nil
}

// Compile returns the cached plan for q, compiling on first use.
func (c *Cache) Compile(q *logic.CQ) (*Plan, error) {
	fp := FingerprintCQ(q)
	c.mu.RLock()
	p := c.lookupPlan(fp, q, nil)
	c.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.lookupPlan(fp, q, nil); p != nil {
		return p, nil
	}
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	c.plans[fp] = append(c.plans[fp], p)
	return p, nil
}

// CompileUCQ is Compile for unions.
func (c *Cache) CompileUCQ(u *logic.UCQ) (*Plan, error) {
	fp := FingerprintUCQ(u)
	c.mu.RLock()
	p := c.lookupPlan(fp, nil, u)
	c.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.lookupPlan(fp, nil, u); p != nil {
		return p, nil
	}
	p, err := CompileUCQ(u)
	if err != nil {
		return nil, err
	}
	c.plans[fp] = append(c.plans[fp], p)
	return p, nil
}

// Prepare returns a bound statement for (q, db), compiling and binding at
// most once per database generation. See PrepareCounted.
func (c *Cache) Prepare(q *logic.CQ, db *database.Database) (*Prepared, error) {
	return c.PrepareCounted(q, db, nil)
}

// PrepareCounted is Prepare with step counting on the miss path (compile
// and bind spans land on counter). A hit performs two map probes, one
// generation read, and no allocation.
func (c *Cache) PrepareCounted(q *logic.CQ, db *database.Database, counter *delay.Counter) (*Prepared, error) {
	fp := FingerprintCQ(q)
	c.mu.RLock()
	p := c.lookupPlan(fp, q, nil)
	if p != nil {
		if e := c.prepared[preparedKey{p, db}]; e != nil && e.gen == db.Generation() {
			c.touch(e)
			c.mu.RUnlock()
			c.hits.Add(1)
			return e.pr, nil
		}
	}
	c.mu.RUnlock()
	return c.prepareSlow(fp, p, q, nil, db, counter)
}

// PrepareUCQ is Prepare for unions.
func (c *Cache) PrepareUCQ(u *logic.UCQ, db *database.Database) (*Prepared, error) {
	return c.PrepareUCQCounted(u, db, nil)
}

// PrepareUCQCounted is PrepareCounted for unions.
func (c *Cache) PrepareUCQCounted(u *logic.UCQ, db *database.Database, counter *delay.Counter) (*Prepared, error) {
	fp := FingerprintUCQ(u)
	c.mu.RLock()
	p := c.lookupPlan(fp, nil, u)
	if p != nil {
		if e := c.prepared[preparedKey{p, db}]; e != nil && e.gen == db.Generation() {
			c.touch(e)
			c.mu.RUnlock()
			c.hits.Add(1)
			return e.pr, nil
		}
	}
	c.mu.RUnlock()
	return c.prepareSlow(fp, p, nil, u, db, counter)
}

// prepareSlow is the non-hit path: compile if the plan was not cached,
// then either catch a stale cached statement up in place (Refresh — the
// entry, its memory, and its bound spine survive the mutation) or bind a
// fresh one.
func (c *Cache) prepareSlow(fp uint64, p *Plan, q *logic.CQ, u *logic.UCQ, db *database.Database, counter *delay.Counter) (*Prepared, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p == nil {
		if p = c.lookupPlan(fp, q, u); p == nil {
			var err error
			if u != nil {
				p, err = CompileUCQ(u)
			} else {
				p, err = Compile(q)
			}
			if err != nil {
				return nil, err
			}
			c.plans[fp] = append(c.plans[fp], p)
		}
	}
	// Another goroutine may have bound it while we waited for the lock.
	key := preparedKey{p, db}
	if e := c.prepared[key]; e != nil {
		if e.gen == db.Generation() {
			c.touch(e)
			c.hits.Add(1)
			return e.pr, nil
		}
		if _, err := e.pr.Refresh(counter); err == nil {
			e.gen = e.pr.Generation()
			c.touch(e)
			c.refreshes.Add(1)
			return e.pr, nil
		}
		delete(c.prepared, key)
	}
	c.misses.Add(1)
	pr, err := p.BindCounted(db, counter)
	if err != nil {
		return nil, err
	}
	e := &preparedEntry{gen: pr.Generation(), pr: pr}
	c.touch(e)
	c.prepared[key] = e
	c.evictLocked()
	return pr, nil
}
