package plan

import (
	"sync"
	"sync/atomic"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
)

// Cache memoizes compiled plans and bound statements. Plans are keyed by
// the structural fingerprint of the query (collisions resolved by exact
// comparison); Prepareds by (plan, database) with the database generation
// checked on every probe, so a mutation transparently forces a re-Bind
// instead of serving stale row ids. All methods are safe for concurrent
// use; the warm path (fingerprint, probe, generation check) performs no
// allocation — pinned by TestCacheWarmPathAllocs.
type Cache struct {
	mu       sync.RWMutex
	plans    map[uint64][]*Plan
	prepared map[preparedKey]*preparedEntry

	// inflight is the singleflight registry of binds and refreshes in
	// progress. Compilation is cheap and pure, so it stays under c.mu; the
	// data-dependent Bind/Refresh runs OUTSIDE the lock behind a flight
	// entry, so one slow bind never head-of-line-blocks warm probes of
	// other statements, and a thundering herd of cold probes for the same
	// (plan, db) coalesces onto one bind instead of serializing N of them.
	inflight map[preparedKey]*bindFlight

	// maxPrepared bounds len(prepared); 0 means unbounded. Entries beyond
	// the bound are evicted least-recently-used, so a workload cycling
	// through many (plan, database) pairs cannot grow the cache — and,
	// through the db pointers in its keys, retain dead databases — forever.
	maxPrepared int

	hits      atomic.Uint64
	misses    atomic.Uint64
	refreshes atomic.Uint64
	clock     atomic.Uint64
}

type preparedKey struct {
	plan *Plan
	db   *database.Database
}

type preparedEntry struct {
	gen     uint64
	pr      *Prepared
	lastUse atomic.Uint64
}

// bindFlight is one in-progress bind/refresh: done is closed once pr/err
// are settled, and every prepareSlow caller that found the flight waits on
// it instead of binding again.
type bindFlight struct {
	done chan struct{}
	pr   *Prepared
	err  error
}

func (c *Cache) touch(e *preparedEntry) {
	e.lastUse.Store(c.clock.Add(1))
}

// NewCache creates an empty plan cache.
func NewCache() *Cache {
	return &Cache{
		plans:    make(map[uint64][]*Plan),
		prepared: make(map[preparedKey]*preparedEntry),
		inflight: make(map[preparedKey]*bindFlight),
	}
}

// Stats returns the number of warm probes (hits) and of probes that had to
// compile and/or bind (misses).
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Refreshes returns how many probes found a stale statement and caught it
// up in place (Prepared.Refresh) instead of binding a fresh one. A refresh
// counts as neither hit nor miss.
func (c *Cache) Refreshes() uint64 { return c.refreshes.Load() }

// Len returns the number of bound statements currently cached.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.prepared)
}

// SetMaxPrepared bounds the number of cached bound statements; 0 removes
// the bound. If the cache is already over the new bound, least-recently-
// used entries are evicted immediately.
func (c *Cache) SetMaxPrepared(n int) {
	c.mu.Lock()
	c.maxPrepared = n
	c.evictLocked()
	c.mu.Unlock()
}

// Sweep drops every cached statement whose database has mutated since it
// was bound or refreshed, returning how many were dropped. Useful after a
// bulk load, when catching the survivors up would be pure waste. Surviving
// statements get their spine index layouts compacted
// (Prepared.CompactIndexes) and their tombstoned slab rows reclaimed
// (Prepared.CompactSlabs) once past the waste threshold, so periodic
// sweeps bound both index waste and row-storage growth under sustained
// mutate/refresh churn.
func (c *Cache) Sweep() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, e := range c.prepared {
		if e.gen != k.db.Generation() {
			delete(c.prepared, k)
			n++
			continue
		}
		e.pr.CompactIndexes()
		e.pr.CompactSlabs()
	}
	return n
}

// evictLocked enforces maxPrepared by dropping least-recently-used
// entries. Caller holds the write lock.
func (c *Cache) evictLocked() {
	if c.maxPrepared <= 0 {
		return
	}
	for len(c.prepared) > c.maxPrepared {
		var oldest preparedKey
		first, min := true, uint64(0)
		for k, e := range c.prepared {
			if u := e.lastUse.Load(); first || u < min {
				first, min, oldest = false, u, k
			}
		}
		delete(c.prepared, oldest)
	}
}

// Reset drops every cached plan and bound statement.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.plans = make(map[uint64][]*Plan)
	c.prepared = make(map[preparedKey]*preparedEntry)
	c.mu.Unlock()
}

// lookupPlan finds a cached plan structurally equal to q (or u). Caller
// holds at least the read lock.
func (c *Cache) lookupPlan(fp uint64, q *logic.CQ, u *logic.UCQ) *Plan {
	for _, p := range c.plans[fp] {
		if q != nil && p.CQ != nil && equalCQ(p.CQ, q) {
			return p
		}
		if u != nil && p.UCQ != nil && equalUCQ(p.UCQ, u) {
			return p
		}
	}
	return nil
}

// Compile returns the cached plan for q, compiling on first use.
func (c *Cache) Compile(q *logic.CQ) (*Plan, error) {
	fp := FingerprintCQ(q)
	c.mu.RLock()
	p := c.lookupPlan(fp, q, nil)
	c.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.lookupPlan(fp, q, nil); p != nil {
		return p, nil
	}
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	c.plans[fp] = append(c.plans[fp], p)
	return p, nil
}

// CompileUCQ is Compile for unions.
func (c *Cache) CompileUCQ(u *logic.UCQ) (*Plan, error) {
	fp := FingerprintUCQ(u)
	c.mu.RLock()
	p := c.lookupPlan(fp, nil, u)
	c.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.lookupPlan(fp, nil, u); p != nil {
		return p, nil
	}
	p, err := CompileUCQ(u)
	if err != nil {
		return nil, err
	}
	c.plans[fp] = append(c.plans[fp], p)
	return p, nil
}

// Prepare returns a bound statement for (q, db), compiling and binding at
// most once per database generation. See PrepareCounted.
func (c *Cache) Prepare(q *logic.CQ, db *database.Database) (*Prepared, error) {
	return c.PrepareCounted(q, db, nil)
}

// PrepareCounted is Prepare with step counting on the miss path (compile
// and bind spans land on counter). A hit performs two map probes, one
// generation read, and no allocation.
func (c *Cache) PrepareCounted(q *logic.CQ, db *database.Database, counter *delay.Counter) (*Prepared, error) {
	fp := FingerprintCQ(q)
	c.mu.RLock()
	p := c.lookupPlan(fp, q, nil)
	if p != nil {
		if e := c.prepared[preparedKey{p, db}]; e != nil && e.gen == db.Generation() {
			c.touch(e)
			c.mu.RUnlock()
			c.hits.Add(1)
			return e.pr, nil
		}
	}
	c.mu.RUnlock()
	return c.prepareSlow(fp, p, q, nil, db, counter)
}

// PrepareUCQ is Prepare for unions.
func (c *Cache) PrepareUCQ(u *logic.UCQ, db *database.Database) (*Prepared, error) {
	return c.PrepareUCQCounted(u, db, nil)
}

// PrepareUCQCounted is PrepareCounted for unions.
func (c *Cache) PrepareUCQCounted(u *logic.UCQ, db *database.Database, counter *delay.Counter) (*Prepared, error) {
	fp := FingerprintUCQ(u)
	c.mu.RLock()
	p := c.lookupPlan(fp, nil, u)
	if p != nil {
		if e := c.prepared[preparedKey{p, db}]; e != nil && e.gen == db.Generation() {
			c.touch(e)
			c.mu.RUnlock()
			c.hits.Add(1)
			return e.pr, nil
		}
	}
	c.mu.RUnlock()
	return c.prepareSlow(fp, p, nil, u, db, counter)
}

// prepareSlow is the non-hit path: compile if the plan was not cached,
// then either catch a stale cached statement up in place (Refresh — the
// entry, its memory, and its bound spine survive the mutation) or bind a
// fresh one.
//
// Compilation (pure, cheap) runs under c.mu; the data-dependent
// Refresh/Bind runs outside it behind a singleflight entry. Concurrent
// cold probes for the same (plan, db) wait on the one in-flight bind and
// count as hits; probes for OTHER statements are never blocked by it.
func (c *Cache) prepareSlow(fp uint64, p *Plan, q *logic.CQ, u *logic.UCQ, db *database.Database, counter *delay.Counter) (*Prepared, error) {
	c.mu.Lock()
	if p == nil {
		if p = c.lookupPlan(fp, q, u); p == nil {
			var err error
			if u != nil {
				p, err = CompileUCQ(u)
			} else {
				p, err = Compile(q)
			}
			if err != nil {
				c.mu.Unlock()
				return nil, err
			}
			c.plans[fp] = append(c.plans[fp], p)
		}
	}
	// Another goroutine may have bound it while we waited for the lock.
	key := preparedKey{p, db}
	if e := c.prepared[key]; e != nil && e.gen == db.Generation() {
		c.touch(e)
		c.hits.Add(1)
		c.mu.Unlock()
		return e.pr, nil
	}
	if fl := c.inflight[key]; fl != nil {
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		// Under the usual locking discipline (executions hold the database
		// read-side while probing) the flight's result is necessarily at
		// the current generation; an undisciplined caller may receive a
		// statement already stale, exactly as the pre-singleflight code
		// could, and recovers through ErrStalePlan.
		c.hits.Add(1)
		return fl.pr, nil
	}
	fl := &bindFlight{done: make(chan struct{})}
	c.inflight[key] = fl
	stale := c.prepared[key] // non-nil ⇒ stale (fresh was handled above)
	c.mu.Unlock()

	var pr *Prepared
	var err error
	refreshed := false
	if stale != nil {
		if _, rerr := stale.pr.Refresh(counter); rerr == nil {
			pr, refreshed = stale.pr, true
		}
	}
	if pr == nil {
		pr, err = p.BindCounted(db, counter)
	}

	c.mu.Lock()
	delete(c.inflight, key)
	switch {
	case err != nil:
		if stale != nil && c.prepared[key] == stale {
			delete(c.prepared, key)
		}
		fl.err = err
	case refreshed:
		stale.gen = pr.Generation()
		c.touch(stale)
		// Re-insert: a concurrent Sweep may have dropped the entry while
		// the refresh was in flight.
		c.prepared[key] = stale
		c.refreshes.Add(1)
		fl.pr = pr
	default:
		if stale != nil && c.prepared[key] == stale {
			delete(c.prepared, key)
		}
		c.misses.Add(1)
		e := &preparedEntry{gen: pr.Generation(), pr: pr}
		c.touch(e)
		c.prepared[key] = e
		c.evictLocked()
		fl.pr = pr
	}
	c.mu.Unlock()
	close(fl.done)
	return pr, err
}

// PeekPlan probes for a warm bound statement of an already-compiled plan
// without ever binding — the serving fast lane's probe-without-bind. ok is
// false when the statement is cold or stale; the caller decides whether to
// pay the bind (PreparePlan), queue it, or shed the request. A warm probe
// counts as a cache hit; a cold probe counts nothing.
func (c *Cache) PeekPlan(p *Plan, db *database.Database) (*Prepared, bool) {
	c.mu.RLock()
	e := c.prepared[preparedKey{p, db}]
	if e == nil || e.gen != db.Generation() {
		c.mu.RUnlock()
		return nil, false
	}
	c.touch(e)
	c.mu.RUnlock()
	c.hits.Add(1)
	return e.pr, true
}

// PreparePlan is PrepareCounted from an already-compiled plan: it skips
// parse and fingerprint work entirely. Bind workers resolving queued cold
// binds and the prepared-handle path (which recovers the plan by
// fingerprint) both enter here.
func (c *Cache) PreparePlan(p *Plan, db *database.Database, counter *delay.Counter) (*Prepared, error) {
	if pr, ok := c.PeekPlan(p, db); ok {
		return pr, nil
	}
	return c.prepareSlow(0, p, nil, nil, db, counter)
}

// PlanByFingerprint resolves a structural fingerprint to the unique cached
// plan carrying it, or nil when no such plan is cached — or when several
// structurally distinct queries collide on fp, in which case serving a
// plan would be a guess; the caller treats both as an unknown handle and
// forces the client to re-prepare with the full query text.
func (c *Cache) PlanByFingerprint(fp uint64) *Plan {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if ps := c.plans[fp]; len(ps) == 1 {
		return ps[0]
	}
	return nil
}
