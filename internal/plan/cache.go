package plan

import (
	"sync"
	"sync/atomic"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
)

// Cache memoizes compiled plans and bound statements. Plans are keyed by
// the structural fingerprint of the query (collisions resolved by exact
// comparison); Prepareds by (plan, database) with the database generation
// checked on every probe, so a mutation transparently forces a re-Bind
// instead of serving stale row ids. All methods are safe for concurrent
// use; the warm path (fingerprint, probe, generation check) performs no
// allocation — pinned by TestCacheWarmPathAllocs.
type Cache struct {
	mu       sync.RWMutex
	plans    map[uint64][]*Plan
	prepared map[preparedKey]*preparedEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

type preparedKey struct {
	plan *Plan
	db   *database.Database
}

type preparedEntry struct {
	gen uint64
	pr  *Prepared
}

// NewCache creates an empty plan cache.
func NewCache() *Cache {
	return &Cache{
		plans:    make(map[uint64][]*Plan),
		prepared: make(map[preparedKey]*preparedEntry),
	}
}

// Stats returns the number of warm probes (hits) and of probes that had to
// compile and/or bind (misses).
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Reset drops every cached plan and bound statement.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.plans = make(map[uint64][]*Plan)
	c.prepared = make(map[preparedKey]*preparedEntry)
	c.mu.Unlock()
}

// lookupPlan finds a cached plan structurally equal to q (or u). Caller
// holds at least the read lock.
func (c *Cache) lookupPlan(fp uint64, q *logic.CQ, u *logic.UCQ) *Plan {
	for _, p := range c.plans[fp] {
		if q != nil && p.CQ != nil && equalCQ(p.CQ, q) {
			return p
		}
		if u != nil && p.UCQ != nil && equalUCQ(p.UCQ, u) {
			return p
		}
	}
	return nil
}

// Compile returns the cached plan for q, compiling on first use.
func (c *Cache) Compile(q *logic.CQ) (*Plan, error) {
	fp := FingerprintCQ(q)
	c.mu.RLock()
	p := c.lookupPlan(fp, q, nil)
	c.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.lookupPlan(fp, q, nil); p != nil {
		return p, nil
	}
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	c.plans[fp] = append(c.plans[fp], p)
	return p, nil
}

// CompileUCQ is Compile for unions.
func (c *Cache) CompileUCQ(u *logic.UCQ) (*Plan, error) {
	fp := FingerprintUCQ(u)
	c.mu.RLock()
	p := c.lookupPlan(fp, nil, u)
	c.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.lookupPlan(fp, nil, u); p != nil {
		return p, nil
	}
	p, err := CompileUCQ(u)
	if err != nil {
		return nil, err
	}
	c.plans[fp] = append(c.plans[fp], p)
	return p, nil
}

// Prepare returns a bound statement for (q, db), compiling and binding at
// most once per database generation. See PrepareCounted.
func (c *Cache) Prepare(q *logic.CQ, db *database.Database) (*Prepared, error) {
	return c.PrepareCounted(q, db, nil)
}

// PrepareCounted is Prepare with step counting on the miss path (compile
// and bind spans land on counter). A hit performs two map probes, one
// generation read, and no allocation.
func (c *Cache) PrepareCounted(q *logic.CQ, db *database.Database, counter *delay.Counter) (*Prepared, error) {
	fp := FingerprintCQ(q)
	c.mu.RLock()
	p := c.lookupPlan(fp, q, nil)
	if p != nil {
		if e := c.prepared[preparedKey{p, db}]; e != nil && e.gen == db.Generation() {
			c.mu.RUnlock()
			c.hits.Add(1)
			return e.pr, nil
		}
	}
	c.mu.RUnlock()
	return c.prepareSlow(fp, p, q, nil, db, counter)
}

// PrepareUCQ is Prepare for unions.
func (c *Cache) PrepareUCQ(u *logic.UCQ, db *database.Database) (*Prepared, error) {
	return c.PrepareUCQCounted(u, db, nil)
}

// PrepareUCQCounted is PrepareCounted for unions.
func (c *Cache) PrepareUCQCounted(u *logic.UCQ, db *database.Database, counter *delay.Counter) (*Prepared, error) {
	fp := FingerprintUCQ(u)
	c.mu.RLock()
	p := c.lookupPlan(fp, nil, u)
	if p != nil {
		if e := c.prepared[preparedKey{p, db}]; e != nil && e.gen == db.Generation() {
			c.mu.RUnlock()
			c.hits.Add(1)
			return e.pr, nil
		}
	}
	c.mu.RUnlock()
	return c.prepareSlow(fp, p, nil, u, db, counter)
}

// prepareSlow is the miss path: compile if the plan was not cached, bind,
// and (re)place the prepared entry — evicting a stale one in passing.
func (c *Cache) prepareSlow(fp uint64, p *Plan, q *logic.CQ, u *logic.UCQ, db *database.Database, counter *delay.Counter) (*Prepared, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p == nil {
		if p = c.lookupPlan(fp, q, u); p == nil {
			var err error
			if u != nil {
				p, err = CompileUCQ(u)
			} else {
				p, err = Compile(q)
			}
			if err != nil {
				return nil, err
			}
			c.plans[fp] = append(c.plans[fp], p)
		}
	}
	// Another goroutine may have bound it while we waited for the lock.
	key := preparedKey{p, db}
	if e := c.prepared[key]; e != nil && e.gen == db.Generation() {
		c.hits.Add(1)
		return e.pr, nil
	}
	c.misses.Add(1)
	pr, err := p.BindCounted(db, counter)
	if err != nil {
		return nil, err
	}
	c.prepared[key] = &preparedEntry{gen: pr.Generation(), pr: pr}
	return pr, nil
}
