package plan_test

import (
	"testing"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/oracle"
	"repro/internal/plan"
)

// TestRefreshArity0PartDelta pins the arity-0 refresher fix at the plan
// layer: B(y) shares nothing with the head, so its subtree reduces to an
// arity-0 part. Before the fix the installed ConstRefresher declined every
// delta on such a shape and each Refresh after the first was a rebuild;
// now single-tuple churn is absorbed as RefreshDelta.
func TestRefreshArity0PartDelta(t *testing.T) {
	q := mustCQ(t, "Q(x) :- A(x), B(y).")
	db := database.NewDatabase()
	a := database.NewRelation("A", 1)
	for v := database.Value(1); v <= 5; v++ {
		a.Insert(database.Tuple{v})
	}
	b := database.NewRelation("B", 1)
	b.Insert(database.Tuple{7})
	db.AddRelation(a)
	db.AddRelation(b)

	p, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.EnumerateEngine != plan.EngineConstantDelay {
		t.Fatalf("expected the constant-delay route, got %v", p.EnumerateEngine)
	}
	pr, err := p.Bind(db)
	if err != nil {
		t.Fatal(err)
	}

	check := func(what string, wantKind plan.RefreshKind) {
		t.Helper()
		kind, err := pr.Refresh(nil)
		if err != nil {
			t.Fatalf("%s: Refresh: %v", what, err)
		}
		if kind != wantKind {
			t.Fatalf("%s: RefreshKind = %v, want %v", what, kind, wantKind)
		}
		e, err := pr.Enumerate(nil)
		if err != nil {
			t.Fatalf("%s: Enumerate: %v", what, err)
		}
		got := delay.Collect(e)
		want, err := oracle.Eval(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswers(got, want) {
			t.Fatalf("%s: answers %v, oracle says %v", what, got, want)
		}
	}

	// First mutation: rebuild-in-place installs the refresher.
	db.Relation("B").Insert(database.Tuple{8})
	check("first mutation", plan.RefreshRebind)

	// From here on the arity-0 part absorbs churn incrementally — this is
	// the step that regressed to RefreshRebind before the fix.
	if !db.Relation("B").Delete(database.Tuple{8}) {
		t.Fatal("Delete removed nothing")
	}
	check("delete second witness", plan.RefreshDelta)

	if !db.Relation("B").Delete(database.Tuple{7}) {
		t.Fatal("Delete removed nothing")
	}
	check("delete last witness (join dies)", plan.RefreshDelta)

	db.Relation("B").Insert(database.Tuple{9})
	check("revive the witness set", plan.RefreshDelta)

	db.Relation("A").Insert(database.Tuple{6})
	check("insert on the head-carrying part", plan.RefreshDelta)
}
