package counting

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/logic/logictest"
)

func TestCountNeqFixed(t *testing.T) {
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	for _, p := range [][2]database.Value{{1, 2}, {2, 3}, {3, 1}, {1, 1}} {
		e.InsertValues(p[0], p[1])
	}
	db.AddRelation(e)
	cases := []string{
		"Q(x,y) :- E(x,y), x != y.",
		"Q(x) :- E(x,y), E(y,z), x != z.",
		"Q(x,y) :- E(x,y), x != 1.",
		"Q(x,y) :- E(x,y), x = y.",
		"Q(x,y) :- E(x,z), E(z,y), x != y, z != 1.",
		"Q(x,y) :- E(x,y), 1 != 2.",
		"Q(x,y) :- E(x,y), 1 != 1.",
	}
	for _, src := range cases {
		q := logictest.MustParseCQ(src)
		got, err := CountNeq(db, q)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		want := q.CountNaive(db)
		if got.Cmp(big.NewInt(int64(want))) != 0 {
			t.Errorf("%s: got %s want %d", src, got, want)
		}
	}
	// Order comparisons and negation rejected.
	if _, err := CountNeq(db, logictest.MustParseCQ("Q(x) :- E(x,y), x < y.")); err == nil {
		t.Errorf("order comparison must be rejected")
	}
	if _, err := CountNeq(db, logictest.MustParseCQ("Q(x) :- E(x,y), !E(y,x).")); err == nil {
		t.Errorf("negation must be rejected")
	}
}

func TestCountNeqDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		q := randomACQ(rng)
		// Sprinkle random equalities and disequalities.
		all := q.Vars()
		for i := 0; i < rng.Intn(4); i++ {
			op := logic.NEQ
			if rng.Intn(3) == 0 {
				op = logic.EQ
			}
			l := logic.V(all[rng.Intn(len(all))])
			r := logic.V(all[rng.Intn(len(all))])
			if rng.Intn(5) == 0 {
				r = logic.C(database.Value(rng.Intn(3) + 1))
			}
			q.Comparisons = append(q.Comparisons, logic.Comparison{Op: op, L: l, R: r})
		}
		db := randomDB(rng, q, 3, 8)
		got, err := CountNeq(db, q)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, q, err)
		}
		want := q.CountNaive(db)
		if got.Cmp(big.NewInt(int64(want))) != 0 {
			t.Fatalf("trial %d (%s): got %s want %d", trial, q, got, want)
		}
	}
}

func TestCountNeqHeadConstants(t *testing.T) {
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	e.InsertValues(1, 2)
	e.InsertValues(2, 2)
	db.AddRelation(e)
	// Forcing a head variable to a constant through an equality chain.
	q := logictest.MustParseCQ("Q(x,y) :- E(x,y), x = z, z = 2.")
	got, err := CountNeq(db, q)
	if err != nil {
		t.Fatal(err)
	}
	want := q.CountNaive(db)
	if got.Cmp(big.NewInt(int64(want))) != 0 {
		t.Errorf("got %s want %d", got, want)
	}
	_ = fmt.Sprint(want)
}
