package counting

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/hypergraph"
	"repro/internal/logic"
)

// CountFullJoin computes the weighted count Σ_{a ∈ ⋈rels} Π_v w(a[v]) of a
// full (projection-free) acyclic join by dynamic programming over a join
// tree (Theorem 4.21). Every variable is charged at its topmost occurrence
// in the tree so its weight is multiplied exactly once. The schemas of rels
// must form an acyclic hypergraph and their union must cover vars.
func CountFullJoin(rels []cq.Rel, vars []string, w Weight, s Semiring) (interface{}, error) {
	return CountFullJoinCounted(rels, vars, w, s, nil)
}

// CountFullJoinCounted is CountFullJoin reporting phase spans ("tree-build"
// for the GYO run, "semijoin-reduce" for the full reduction, "count" for the
// DP) through c's sink. The counting pass predates step counting, so c is
// never ticked: it only carries the observability sink.
func CountFullJoinCounted(rels []cq.Rel, vars []string, w Weight, s Semiring, c *delay.Counter) (interface{}, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("counting: no relations")
	}
	covered := make(map[string]bool)
	wanted := make(map[string]bool, len(vars))
	for _, v := range vars {
		wanted[v] = true
	}
	h := hypergraph.New()
	for i, r := range rels {
		h.AddEdge(hypergraph.NewEdge(fmt.Sprintf("N%d", i), r.Schema...))
		for _, v := range r.Schema {
			covered[v] = true
			if !wanted[v] {
				return nil, fmt.Errorf("counting: relation variable %q not among the counted variables", v)
			}
		}
	}
	for _, v := range vars {
		if !covered[v] {
			return nil, fmt.Errorf("counting: variable %q not covered by any relation", v)
		}
	}
	tspan := c.StartSpan("tree-build", -1)
	jt, ok := hypergraph.GYO(h)
	tspan.End()
	if !ok {
		return nil, fmt.Errorf("counting: join not acyclic: %s", schemasOf(rels))
	}
	ch := jt.Children()
	// Full reduce along the tree so the DP never mixes dangling tuples.
	rspan := c.StartSpan("semijoin-reduce", -1)
	post := postorderOf(jt)
	red := make([]cq.Rel, len(rels))
	copy(red, rels)
	for _, i := range post {
		for _, c := range ch[i] {
			red[i] = semijoinRel(red[i], red[c])
		}
	}
	for k := len(post) - 1; k >= 0; k-- {
		i := post[k]
		for _, c := range ch[i] {
			red[c] = semijoinRel(red[c], red[i])
		}
	}
	rspan.End()
	cspan := c.StartSpan("count", -1)
	defer cspan.End()
	// Charge each requested variable to its topmost node (preorder-first).
	charged := make([][]int, len(rels)) // column indexes charged at node i
	assigned := make(map[string]bool)
	wantVar := make(map[string]bool, len(vars))
	for _, v := range vars {
		wantVar[v] = true
	}
	var pre []int
	var rec func(i int)
	rec = func(i int) {
		pre = append(pre, i)
		for _, c := range ch[i] {
			rec(c)
		}
	}
	rec(jt.Root())
	for _, i := range pre {
		for col, v := range red[i].Schema {
			if wantVar[v] && !assigned[v] {
				assigned[v] = true
				charged[i] = append(charged[i], col)
			}
		}
	}
	// Bottom-up DP: per node, a KeyMap assigns dense ids to the distinct
	// separator projections and vals[id] accumulates Σ over tuples of node i
	// of (Π charged weights · Π children sums). Probing a child's sum is a
	// fingerprint lookup (Find) — no string keys are built anywhere in the
	// DP loop.
	type nodeSums struct {
		ids  *database.KeyMap
		vals []interface{}
	}
	sums := make([]nodeSums, len(rels))
	for _, i := range post {
		parent := jt.Parent[i]
		var sepChild []int
		if parent >= 0 {
			for col, v := range red[i].Schema {
				if red[parent].Col(v) >= 0 {
					sepChild = append(sepChild, col)
				}
			}
		}
		// Hoist the separator column lists towards each child out of the
		// tuple loop.
		kids := ch[i]
		childCols := make([][]int, len(kids))
		for k, c := range kids {
			childCols[k] = childSepParentCols(red, jt, i, c)
		}
		ns := nodeSums{ids: database.NewKeyMap(sepChild)}
		for _, t := range red[i].R.Tuples {
			val := s.One()
			for _, col := range charged[i] {
				val = s.Mul(val, w(t[col]))
			}
			for k, c := range kids {
				// Child c's sum keyed on the separator between i and c.
				var cs interface{}
				if id := sums[c].ids.Find(t, childCols[k]); id >= 0 {
					cs = sums[c].vals[id]
				} else {
					cs = s.Zero()
				}
				val = s.Mul(val, cs)
			}
			id := ns.ids.Intern(t)
			if id == len(ns.vals) {
				ns.vals = append(ns.vals, val)
			} else {
				ns.vals[id] = s.Add(ns.vals[id], val)
			}
		}
		sums[i] = ns
	}
	root := jt.Root()
	total := s.Zero()
	// Sum in sorted key order: neither map iteration nor interning order may
	// leak into the result for semirings whose Add is not exactly
	// associative (floats), and deterministic totals are what the parallel
	// engine is diff-tested against. (At the root the separator is empty, so
	// there is normally a single key; the sort is belt and braces.)
	order := make([]int, sums[root].ids.Len())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return sums[root].ids.Key(order[a]).Compare(sums[root].ids.Key(order[b])) < 0
	})
	for _, id := range order {
		total = s.Add(total, sums[root].vals[id])
	}
	return total, nil
}

// childSepParentCols returns the columns of parent-node tuples that form the
// separator with child c (aligned with the child's stored key columns).
func childSepParentCols(red []cq.Rel, jt *hypergraph.JoinTree, parent, c int) []int {
	var cols []int
	for _, v := range red[c].Schema {
		if pc := red[parent].Col(v); pc >= 0 {
			cols = append(cols, pc)
		}
	}
	return cols
}

func postorderOf(jt *hypergraph.JoinTree) []int {
	ch := jt.Children()
	var out []int
	var rec func(i int)
	rec = func(i int) {
		for _, c := range ch[i] {
			rec(c)
		}
		out = append(out, i)
	}
	if r := jt.Root(); r >= 0 {
		rec(r)
	}
	return out
}

func semijoinRel(a, b cq.Rel) cq.Rel { return cq.SemijoinRel(a, b) }

func schemasOf(rels []cq.Rel) string {
	parts := make([]string, len(rels))
	for i, r := range rels {
		parts[i] = "{" + strings.Join(r.Schema, ",") + "}"
	}
	return strings.Join(parts, " ")
}

// CountQuantifierFree computes the weighted count of a projection-free
// acyclic conjunctive query (♯FACQ⁰, Theorem 4.21): q.Head must list all of
// q's variables.
func CountQuantifierFree(db *database.Database, q *logic.CQ, w Weight, s Semiring) (interface{}, error) {
	return CountQuantifierFreeCounted(db, q, w, s, nil)
}

// CountQuantifierFreeCounted is CountQuantifierFree reporting phase spans
// through c's sink (see CountFullJoinCounted; c is never ticked).
func CountQuantifierFreeCounted(db *database.Database, q *logic.CQ, w Weight, s Semiring, c *delay.Counter) (interface{}, error) {
	if len(q.Head) != len(q.Vars()) {
		return nil, fmt.Errorf("counting: query %s has projections; use Count", q.Name)
	}
	rels, err := atomRels(db, q)
	if err != nil {
		return nil, err
	}
	return CountFullJoinCounted(rels, q.Head, w, s, c)
}

func atomRels(db *database.Database, q *logic.CQ) ([]cq.Rel, error) {
	if len(q.NegAtoms) > 0 || len(q.Comparisons) > 0 {
		return nil, fmt.Errorf("counting: query %s has negation or comparisons", q.Name)
	}
	var rels []cq.Rel
	for _, a := range q.Atoms {
		r, err := cq.AtomRelation(db, a)
		if err != nil {
			return nil, err
		}
		rels = append(rels, r)
	}
	return rels, nil
}

// Count computes |φ(D)| for an acyclic conjunctive query by the
// quantified-star-size algorithm of Theorem 4.28:
//
//  1. decompose the query hypergraph into S-components, S = free(φ)
//     (Definition 4.23);
//  2. evaluate each component subquery φᵢ, materializing a relation Rᵢ over
//     the component's free variables — the only step whose cost grows as
//     ‖D‖^k where k is the quantified star size (Definition 4.26);
//  3. the remaining query — the Rᵢ plus the atoms over free variables only —
//     is a projection-free acyclic query; count it with the weighted DP of
//     Theorem 4.21.
//
// The weight of an answer is the product of its components' weights, so
// Count generalizes to ♯FACQ.
func Count(db *database.Database, q *logic.CQ, w Weight, s Semiring) (interface{}, error) {
	return CountCounted(db, q, w, s, nil)
}

// CountCounted is Count reporting phase spans through c's sink: one "join"
// span covering the S-component materialization (step 2, the only step whose
// cost grows with the quantified star size), then the spans of the final
// CountFullJoinCounted. c is never ticked (see CountFullJoinCounted).
func CountCounted(db *database.Database, q *logic.CQ, w Weight, s Semiring, c *delay.Counter) (interface{}, error) {
	if len(q.NegAtoms) > 0 || len(q.Comparisons) > 0 {
		return nil, fmt.Errorf("counting: query %s has negation or comparisons", q.Name)
	}
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("counting: query %s has no atoms", q.Name)
	}
	if !q.IsAcyclic() {
		return nil, fmt.Errorf("counting: query %s is not acyclic", q.Name)
	}
	inAtom := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, v := range a.Vars() {
			inAtom[v] = true
		}
	}
	for _, v := range q.Head {
		if !inAtom[v] {
			return nil, fmt.Errorf("counting: unsafe query %s: head variable %q occurs in no atom", q.Name, v)
		}
	}
	if q.IsBoolean() {
		ok, err := cq.Decide(db, q)
		if err != nil {
			return nil, err
		}
		if ok {
			return s.One(), nil
		}
		return s.Zero(), nil
	}

	h := q.Hypergraph()
	sset := make(map[string]bool, len(q.Head))
	for _, v := range q.Head {
		sset[v] = true
	}
	comps := hypergraph.SComponents(h, sset)

	var parts []cq.Rel
	// Step 2: one materialized relation per S-component.
	jspan := c.StartSpan("join", -1)
	for ci, comp := range comps {
		var atoms []logic.Atom
		freeVars := make(map[string]bool)
		for _, ei := range comp.EdgeIdx {
			// Edge names are "Pred#atomIndex"; recover the atom.
			idx := atomIndexOf(h.Edges[ei].Name)
			atoms = append(atoms, q.Atoms[idx])
			for _, v := range q.Atoms[idx].Vars() {
				if sset[v] {
					freeVars[v] = true
				}
			}
		}
		head := make([]string, 0, len(freeVars))
		for v := range freeVars {
			head = append(head, v)
		}
		sort.Strings(head)
		sub := &logic.CQ{Name: fmt.Sprintf("%s_c%d", q.Name, ci), Head: head, Atoms: atoms}
		tuples, err := cq.Eval(db, sub)
		if err != nil {
			jspan.End()
			return nil, fmt.Errorf("counting: component %d: %w", ci, err)
		}
		rel := database.FromTuples(sub.Name, len(head), tuples)
		parts = append(parts, cq.Rel{Schema: head, R: rel})
	}
	// Step 3: atoms entirely over free variables join in unchanged.
	for i, a := range q.Atoms {
		inside := true
		for _, v := range a.Vars() {
			if !sset[v] {
				inside = false
				break
			}
		}
		if !inside {
			continue
		}
		r, err := cq.AtomRelation(db, a)
		if err != nil {
			jspan.End()
			return nil, err
		}
		_ = i
		parts = append(parts, r)
	}
	jspan.End()
	return CountFullJoinCounted(parts, q.Head, w, s, c)
}

// atomIndexOf parses the atom index out of a hypergraph edge name
// "Pred#idx" produced by logic.CQ.Hypergraph.
func atomIndexOf(name string) int {
	i := strings.LastIndexByte(name, '#')
	idx := 0
	fmt.Sscanf(name[i+1:], "%d", &idx)
	return idx
}

// CountInt is Count over the BigInt semiring with unit weights, returning
// the plain answer count as a string-convertible big integer.
func CountInt(db *database.Database, q *logic.CQ) (string, error) {
	s := BigInt{}
	v, err := Count(db, q, UnitWeight(s), s)
	if err != nil {
		return "", err
	}
	return s.String(v), nil
}
