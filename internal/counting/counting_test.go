package counting

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/graphs"
	"repro/internal/logic"
	"repro/internal/logic/logictest"
)

func TestSemiringLaws(t *testing.T) {
	rings := []Semiring{BigInt{}, Float64{}, NewGF(101), Rational{}}
	for _, s := range rings {
		two := s.Add(s.One(), s.One())
		three := s.Add(two, s.One())
		// distributivity: (1+1)·3 = 3+3
		l := s.Mul(two, three)
		r := s.Add(three, three)
		if !s.Eq(l, r) {
			t.Errorf("%T: distributivity failed: %s vs %s", s, s.String(l), s.String(r))
		}
		if !s.Eq(s.Mul(s.Zero(), three), s.Zero()) {
			t.Errorf("%T: 0·x != 0", s)
		}
		if !s.Eq(s.Mul(s.One(), three), three) {
			t.Errorf("%T: 1·x != x", s)
		}
		if s.String(three) == "" {
			t.Errorf("%T: empty string rendering", s)
		}
	}
}

func TestGFWrapsAround(t *testing.T) {
	f := NewGF(5)
	four := f.Add(f.Add(f.One(), f.One()), f.Add(f.One(), f.One()))
	if !f.Eq(f.Add(four, f.One()), f.Zero()) {
		t.Errorf("4+1 != 0 mod 5")
	}
}

func TestCountQuantifierFreeSimple(t *testing.T) {
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	for _, p := range [][2]database.Value{{1, 2}, {2, 3}, {3, 4}, {2, 4}} {
		e.InsertValues(p[0], p[1])
	}
	db.AddRelation(e)
	q := logictest.MustParseCQ("Q(x,y,z) :- E(x,y), E(y,z).")
	s := BigInt{}
	got, err := CountQuantifierFree(db, q, UnitWeight(s), s)
	if err != nil {
		t.Fatal(err)
	}
	want := big.NewInt(int64(q.CountNaive(db)))
	if !s.Eq(got, want) {
		t.Errorf("count = %s, want %s", s.String(got), want)
	}
	// Rejects projected queries.
	if _, err := CountQuantifierFree(db, logictest.MustParseCQ("Q(x) :- E(x,y)."), UnitWeight(s), s); err == nil {
		t.Errorf("projection must be rejected by the quantifier-free counter")
	}
}

func TestCountWeighted(t *testing.T) {
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	e.InsertValues(1, 2)
	e.InsertValues(1, 3)
	db.AddRelation(e)
	q := logictest.MustParseCQ("Q(x,y) :- E(x,y).")
	s := Float64{}
	w := func(v database.Value) interface{} { return float64(v) }
	got, err := CountQuantifierFree(db, q, w, s)
	if err != nil {
		t.Fatal(err)
	}
	// w(1)w(2) + w(1)w(3) = 2 + 3 = 5.
	if !s.Eq(got, float64(5)) {
		t.Errorf("weighted count = %v, want 5", got)
	}
}

// naiveWeighted computes the weighted count by enumerating naive answers.
func naiveWeighted(db *database.Database, q *logic.CQ, w Weight, s Semiring) interface{} {
	total := s.Zero()
	for _, t := range q.EvalNaive(db) {
		v := s.One()
		for _, x := range t {
			v = s.Mul(v, w(x))
		}
		total = s.Add(total, v)
	}
	return total
}

func randomDB(rng *rand.Rand, q *logic.CQ, domSize, relSize int) *database.Database {
	db := database.NewDatabase()
	for _, a := range q.Atoms {
		if db.Relation(a.Pred) != nil {
			continue
		}
		r := database.NewRelation(a.Pred, len(a.Args))
		for i := 0; i < relSize; i++ {
			tp := make(database.Tuple, len(a.Args))
			for j := range tp {
				tp[j] = database.Value(rng.Intn(domSize) + 1)
			}
			r.Insert(tp)
		}
		r.Dedup()
		db.AddRelation(r)
	}
	return db
}

func randomACQ(rng *rand.Rand) *logic.CQ {
	numAtoms := 1 + rng.Intn(4)
	var atoms []logic.Atom
	varCount := 0
	fresh := func() string { varCount++; return fmt.Sprintf("v%d", varCount) }
	for i := 0; i < numAtoms; i++ {
		var vars []string
		if i > 0 {
			prev := atoms[rng.Intn(len(atoms))]
			for _, v := range prev.Vars() {
				if rng.Intn(2) == 0 {
					vars = append(vars, v)
				}
			}
		}
		for len(vars) == 0 || rng.Intn(3) == 0 {
			vars = append(vars, fresh())
			if len(vars) >= 3 {
				break
			}
		}
		atoms = append(atoms, logic.NewAtom(fmt.Sprintf("R%d", i), vars...))
	}
	q := &logic.CQ{Name: "Q", Atoms: atoms}
	for _, v := range q.Vars() {
		if rng.Intn(2) == 0 {
			q.Head = append(q.Head, v)
		}
	}
	return q
}

// The star-size counting algorithm must agree with brute force on random
// acyclic queries, over three different (semi)fields.
func TestCountDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	bi := BigInt{}
	gf := NewGF(97)
	ra := Rational{}
	for trial := 0; trial < 250; trial++ {
		q := randomACQ(rng)
		db := randomDB(rng, q, 3, 8)

		got, err := Count(db, q, UnitWeight(bi), bi)
		if err != nil {
			t.Fatalf("trial %d: Count(%s): %v", trial, q, err)
		}
		want := big.NewInt(int64(q.CountNaive(db)))
		if !bi.Eq(got, want) {
			t.Fatalf("trial %d: Count(%s) = %s, want %s", trial, q, bi.String(got), want)
		}

		// Weighted, over GF(97): weight v ↦ v mod 97.
		wgf := func(v database.Value) interface{} { return uint64(v) % 97 }
		gotGF, err := Count(db, q, wgf, gf)
		if err != nil {
			t.Fatalf("trial %d: Count GF: %v", trial, err)
		}
		wantGF := naiveWeighted(db, q, wgf, gf)
		if !gf.Eq(gotGF, wantGF) {
			t.Fatalf("trial %d: GF count mismatch for %s: %s vs %s", trial, q, gf.String(gotGF), gf.String(wantGF))
		}

		// Weighted over ℚ: weight v ↦ 1/v.
		wra := func(v database.Value) interface{} { return big.NewRat(1, int64(v)) }
		gotRa, err := Count(db, q, wra, ra)
		if err != nil {
			t.Fatalf("trial %d: Count Rat: %v", trial, err)
		}
		wantRa := naiveWeighted(db, q, wra, ra)
		if !ra.Eq(gotRa, wantRa) {
			t.Fatalf("trial %d: ℚ count mismatch for %s: %s vs %s", trial, q, ra.String(gotRa), ra.String(wantRa))
		}
	}
}

func TestCountBooleanAndErrors(t *testing.T) {
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	e.InsertValues(1, 2)
	db.AddRelation(e)
	s := BigInt{}
	got, err := Count(db, logictest.MustParseCQ("B() :- E(x,y)."), UnitWeight(s), s)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Eq(got, big.NewInt(1)) {
		t.Errorf("true Boolean count = %s, want 1", s.String(got))
	}
	got, err = Count(db, logictest.MustParseCQ("B() :- E(x,x)."), UnitWeight(s), s)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Eq(got, big.NewInt(0)) {
		t.Errorf("false Boolean count = %s, want 0", s.String(got))
	}
	if _, err := Count(db, logictest.MustParseCQ("Q() :- E(x,y), E(y,z), E(z,x)."), UnitWeight(s), s); err == nil {
		t.Errorf("cyclic query must be rejected")
	}
	if _, err := Count(db, logictest.MustParseCQ("Q(x) :- E(x,y), x != y."), UnitWeight(s), s); err == nil {
		t.Errorf("comparisons must be rejected")
	}
	if _, err := Count(db, logictest.MustParseCQ("Q(w) :- E(x,y)."), UnitWeight(s), s); err == nil {
		t.Errorf("unsafe query must be rejected")
	}
}

func TestCountIntString(t *testing.T) {
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	e.InsertValues(1, 2)
	e.InsertValues(1, 3)
	db.AddRelation(e)
	got, err := CountInt(db, logictest.MustParseCQ("Q(x) :- E(x,y)."))
	if err != nil {
		t.Fatal(err)
	}
	if got != "1" {
		t.Errorf("CountInt = %s, want 1", got)
	}
}

// E12: the Equation 2 identity #PM = |φ| − |ψ| against Ryser's permanent.
func TestPerfectMatchingsViaACQ(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	// Deterministic cases first.
	k22 := [][]bool{{true, true}, {true, true}}
	got, err := PerfectMatchingsViaACQ(k22)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("K22 matchings = %s, want 2", got)
	}
	// Identity matrix: exactly one matching.
	id3 := [][]bool{{true, false, false}, {false, true, false}, {false, false, true}}
	got, err = PerfectMatchingsViaACQ(id3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("I3 matchings = %s, want 1", got)
	}
	// Random graphs n = 1..5.
	for n := 1; n <= 5; n++ {
		for trial := 0; trial < 5; trial++ {
			adj := make([][]bool, n)
			for i := range adj {
				adj[i] = make([]bool, n)
				for j := range adj[i] {
					adj[i][j] = rng.Intn(2) == 0
				}
			}
			got, err := PerfectMatchingsViaACQ(adj)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			want := Permanent(adj)
			if got.Cmp(want) != 0 {
				t.Fatalf("n=%d adj=%v: ACQ count %s, permanent %s", n, adj, got, want)
			}
		}
	}
}

func TestPermanentEdgeCases(t *testing.T) {
	if Permanent(nil).Cmp(big.NewInt(1)) != 0 {
		t.Errorf("empty permanent must be 1")
	}
	if got, err := PerfectMatchingsViaACQ(nil); err != nil || got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("empty graph matchings: %v, %v", got, err)
	}
	none := [][]bool{{false}}
	if Permanent(none).Sign() != 0 {
		t.Errorf("edgeless permanent must be 0")
	}
	got, err := PerfectMatchingsViaACQ(none)
	if err != nil || got.Sign() != 0 {
		t.Errorf("edgeless matchings: %v, %v", got, err)
	}
}

// The ψ query of Equation 2 has quantified star size n.
func TestMatchingQueryStarSize(t *testing.T) {
	for n := 2; n <= 4; n++ {
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
			for j := range adj[i] {
				adj[i][j] = true
			}
		}
		_, _, psi := MatchingQueries(adj)
		if got := psi.QuantifiedStarSize(); got != n {
			t.Errorf("n=%d: ψ star size = %d, want %d", n, got, n)
		}
	}
}

// CountFullJoin input validation.
func TestCountFullJoinValidation(t *testing.T) {
	s := BigInt{}
	if _, err := CountFullJoin(nil, nil, UnitWeight(s), s); err == nil {
		t.Errorf("no relations must fail")
	}
	r := database.NewRelation("R", 1)
	r.InsertValues(1)
	rel := cq.Rel{Schema: []string{"x"}, R: r}
	if _, err := CountFullJoin([]cq.Rel{rel}, []string{"x", "y"}, UnitWeight(s), s); err == nil {
		t.Errorf("uncovered variable must fail")
	}
	if _, err := CountFullJoin([]cq.Rel{rel}, []string{"y"}, UnitWeight(s), s); err == nil {
		t.Errorf("extraneous schema variable must fail")
	}
	// Cyclic schemas must fail.
	mk := func(name string, vs ...string) cq.Rel {
		rr := database.NewRelation(name, len(vs))
		return cq.Rel{Schema: vs, R: rr}
	}
	if _, err := CountFullJoin([]cq.Rel{mk("A", "a", "b"), mk("B", "b", "c"), mk("C", "c", "a")},
		[]string{"a", "b", "c"}, UnitWeight(s), s); err == nil {
		t.Errorf("cyclic join must fail")
	}
}

// Counting must be deterministic run-to-run: no map-iteration order may
// leak into the total (the root sum iterates in sorted key order).
func TestCountDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	q := logictest.MustParseCQ("Q(x,y) :- R(x,y), S(y,z).")
	db := database.NewDatabase()
	db.AddRelation(graphs.RandomRelation(rng, "R", 2, 500, 60))
	db.AddRelation(graphs.RandomRelation(rng, "S", 2, 500, 60))
	s := BigInt{}
	first, err := Count(db, q, UnitWeight(s), s)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		again, err := Count(db, q, UnitWeight(s), s)
		if err != nil {
			t.Fatal(err)
		}
		if s.String(first) != s.String(again) {
			t.Fatalf("round %d: count %s != %s", round, s.String(again), s.String(first))
		}
	}
}
