package counting

import (
	"fmt"
	"math/big"

	"repro/internal/database"
	"repro/internal/ineq"
	"repro/internal/logic"
)

// CountUCQ computes |φ1(D) ∪ ... ∪ φk(D)| by inclusion–exclusion: the
// intersection of conjunctive-query answer sets is itself a conjunctive
// query (the disjuncts' bodies conjoined after renaming the non-head
// variables apart and unifying the head positionally), so each term is a
// ♯ACQ instance for the star-size algorithm of Theorem 4.28 — with a
// backtracking fallback when an intersection turns out cyclic. The cost is
// 2^k counting calls, exponential only in the number of disjuncts.
func CountUCQ(db *database.Database, u *logic.UCQ) (*big.Int, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	k := len(u.Disjuncts)
	if k == 0 {
		return new(big.Int), nil
	}
	if k > 16 {
		return nil, fmt.Errorf("counting: too many disjuncts (%d) for inclusion–exclusion", k)
	}
	for _, d := range u.Disjuncts {
		if len(d.NegAtoms) > 0 || len(d.Comparisons) > 0 {
			return nil, fmt.Errorf("counting: UCQ counting supports plain conjunctive disjuncts only")
		}
	}
	total := new(big.Int)
	for mask := 1; mask < 1<<k; mask++ {
		var sel []*logic.CQ
		bits := 0
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				sel = append(sel, u.Disjuncts[i])
				bits++
			}
		}
		q, err := IntersectCQs(sel)
		if err != nil {
			return nil, err
		}
		cnt, err := countIntersection(db, q)
		if err != nil {
			return nil, err
		}
		if bits%2 == 1 {
			total.Add(total, cnt)
		} else {
			total.Sub(total, cnt)
		}
	}
	return total, nil
}

func countIntersection(db *database.Database, q *logic.CQ) (*big.Int, error) {
	if q.IsAcyclic() {
		s := BigInt{}
		v, err := Count(db, q, UnitWeight(s), s)
		if err == nil {
			return v.(*big.Int), nil
		}
		// Fall through to backtracking (e.g. unsafe corner cases).
	}
	res, err := ineq.EvalBacktrack(db, q)
	if err != nil {
		return nil, err
	}
	return big.NewInt(int64(len(res))), nil
}

// IntersectCQs builds the conjunctive query whose answers are the
// intersection of the given queries' answer sets (all of the same arity):
// head positions are unified (a disjunct that repeats a head variable
// forces the corresponding positions equal, propagated by union–find), and
// body variables are renamed apart.
func IntersectCQs(ds []*logic.CQ) (*logic.CQ, error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("counting: empty intersection")
	}
	m := len(ds[0].Head)
	// Union-find over head positions.
	parent := make([]int, m)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, d := range ds {
		if len(d.Head) != m {
			return nil, fmt.Errorf("counting: arity mismatch in intersection")
		}
		first := map[string]int{}
		for j, v := range d.Head {
			if f, ok := first[v]; ok {
				union(f, j)
			} else {
				first[v] = j
			}
		}
	}
	posName := func(j int) string { return fmt.Sprintf("h%d", find(j)) }

	out := &logic.CQ{Name: "Intersect"}
	for j := 0; j < m; j++ {
		out.Head = append(out.Head, posName(j))
	}
	for di, d := range ds {
		rename := map[string]string{}
		for j, v := range d.Head {
			rename[v] = posName(j)
		}
		mapTerm := func(t logic.Term) logic.Term {
			if t.IsConst {
				return t
			}
			if nm, ok := rename[t.Var]; ok {
				return logic.V(nm)
			}
			return logic.V(fmt.Sprintf("d%d_%s", di, t.Var))
		}
		for _, a := range d.Atoms {
			na := logic.Atom{Pred: a.Pred}
			for _, t := range a.Args {
				na.Args = append(na.Args, mapTerm(t))
			}
			out.Atoms = append(out.Atoms, na)
		}
	}
	return out, nil
}
