package counting

import (
	"fmt"
	"math/big"

	"repro/internal/database"
	"repro/internal/ineq"
	"repro/internal/logic"
)

// CountNeq counts |φ(D)| for a conjunctive query with equalities and
// disequalities, completing the Theorem 4.20 picture on the counting side.
//
// When every comparison touches only free variables (and constants), each
// disequality is the complement of an equality over the *answer tuple*, so
// inclusion–exclusion applies:
//
//	|{ā : all zᵢ ≠ z′ᵢ}| = Σ_{T ⊆ Δ} (−1)^{|T|} |{ā : equalities in T}|,
//
// and a conjunctive query with forced equalities is again a conjunctive
// query (variables merged, constants substituted), counted by the
// star-size algorithm of Theorem 4.28 when acyclic and by backtracking
// otherwise. The cost is 2^|Δ| counting calls — exponential only in the
// number of disequalities, a query parameter.
//
// When a comparison involves an existentially quantified variable,
// inclusion–exclusion over projected answers is unsound (an answer may
// have witnesses on both sides of the split), so the count falls back to
// output-sensitive enumeration: constant-delay for free-connex queries
// (Theorem 4.20 gives total time f(‖φ‖)·(|φ(D)|+‖D‖)), backtracking
// otherwise.
func CountNeq(db *database.Database, q *logic.CQ) (*big.Int, error) {
	if len(q.NegAtoms) > 0 {
		return nil, fmt.Errorf("counting: negated atoms not supported by CountNeq")
	}
	head := map[string]bool{}
	for _, v := range q.Head {
		head[v] = true
	}
	freeOnly := true
	var eqs, neqs []logic.Comparison
	for _, c := range q.Comparisons {
		switch c.Op {
		case logic.EQ:
			eqs = append(eqs, c)
		case logic.NEQ:
			neqs = append(neqs, c)
		default:
			return nil, fmt.Errorf("counting: order comparison %s not supported (Theorem 4.15)", c)
		}
		for _, t := range []logic.Term{c.L, c.R} {
			if !t.IsConst && !head[t.Var] {
				freeOnly = false
			}
		}
	}
	if !freeOnly {
		return countNeqByEnumeration(db, q)
	}
	if len(neqs) > 12 {
		return nil, fmt.Errorf("counting: too many disequalities (%d) for inclusion–exclusion", len(neqs))
	}
	total := new(big.Int)
	for mask := 0; mask < 1<<len(neqs); mask++ {
		forced := append([]logic.Comparison(nil), eqs...)
		bits := 0
		for i, c := range neqs {
			if mask&(1<<i) != 0 {
				bits++
				forced = append(forced, logic.Comparison{Op: logic.EQ, L: c.L, R: c.R})
			}
		}
		cnt, err := countWithEqualities(db, q, forced)
		if err != nil {
			return nil, err
		}
		if bits%2 == 0 {
			total.Add(total, cnt)
		} else {
			total.Sub(total, cnt)
		}
	}
	return total, nil
}

// countNeqByEnumeration counts by draining the Theorem 4.20 constant-delay
// enumerator when the query is free-connex, or the generic backtracking
// evaluator otherwise.
func countNeqByEnumeration(db *database.Database, q *logic.CQ) (*big.Int, error) {
	plain := &logic.CQ{Name: q.Name, Head: q.Head, Atoms: q.Atoms}
	onlyNeq := true
	for _, c := range q.Comparisons {
		if c.Op != logic.NEQ {
			onlyNeq = false
		}
	}
	if onlyNeq && plain.IsAcyclic() && plain.IsFreeConnex() {
		e, err := ineq.EnumerateNeq(db, q, nil)
		if err == nil {
			n := int64(0)
			for {
				if _, ok := e.Next(); !ok {
					break
				}
				n++
			}
			return big.NewInt(n), nil
		}
	}
	res, err := ineq.EvalBacktrack(db, q)
	if err != nil {
		return nil, err
	}
	return big.NewInt(int64(len(res))), nil
}

// countWithEqualities counts the query with the given equalities forced
// (and all other comparisons dropped).
func countWithEqualities(db *database.Database, q *logic.CQ, eqs []logic.Comparison) (*big.Int, error) {
	// Union-find over variables, with an optional constant per class.
	parent := map[string]string{}
	var find func(string) string
	find = func(v string) string {
		p, ok := parent[v]
		if !ok {
			parent[v] = v
			return v
		}
		if p != v {
			parent[v] = find(p)
		}
		return parent[v]
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	constOf := map[string]database.Value{}
	bindConst := func(v string, c database.Value) bool {
		r := find(v)
		if prev, ok := constOf[r]; ok {
			return prev == c
		}
		constOf[r] = c
		return true
	}
	for _, e := range eqs {
		switch {
		case e.L.IsConst && e.R.IsConst:
			if e.L.Const != e.R.Const {
				return new(big.Int), nil
			}
		case e.L.IsConst:
			if !bindConst(e.R.Var, e.L.Const) {
				return new(big.Int), nil
			}
		case e.R.IsConst:
			if !bindConst(e.L.Var, e.R.Const) {
				return new(big.Int), nil
			}
		default:
			ra, rb := find(e.L.Var), find(e.R.Var)
			if ra == rb {
				continue
			}
			ca, hasA := constOf[ra]
			cb, hasB := constOf[rb]
			if hasA && hasB && ca != cb {
				return new(big.Int), nil
			}
			union(ra, rb)
			r := find(ra)
			if hasA {
				if !bindConst(r, ca) {
					return new(big.Int), nil
				}
			}
			if hasB {
				if !bindConst(r, cb) {
					return new(big.Int), nil
				}
			}
		}
	}
	mapTerm := func(t logic.Term) logic.Term {
		if t.IsConst {
			return t
		}
		r := find(t.Var)
		if c, ok := constOf[r]; ok {
			return logic.C(c)
		}
		return logic.V(r)
	}
	q2 := &logic.CQ{Name: q.Name + "_eq"}
	dbx := db
	// Head positions bound to constants become fresh variables constrained
	// by singleton relations, so the query stays in pure CQ form.
	singles := map[database.Value]string{}
	ensureSingle := func(c database.Value) string {
		if nm, ok := singles[c]; ok {
			return nm
		}
		nm := fmt.Sprintf("__const_%d__", c)
		if dbx == db {
			dbx = database.NewDatabase()
			for _, name := range db.Names() {
				dbx.AddRelation(db.Relation(name))
			}
		}
		rel := database.NewRelation(nm, 1)
		rel.InsertValues(c)
		dbx.AddRelation(rel)
		singles[c] = nm
		return nm
	}
	for i, v := range q.Head {
		t := mapTerm(logic.V(v))
		if t.IsConst {
			fresh := fmt.Sprintf("hc%d", i)
			q2.Head = append(q2.Head, fresh)
			q2.Atoms = append(q2.Atoms, logic.NewAtom(ensureSingle(t.Const), fresh))
		} else {
			q2.Head = append(q2.Head, t.Var)
		}
	}
	for _, a := range q.Atoms {
		na := logic.Atom{Pred: a.Pred}
		for _, t := range a.Args {
			na.Args = append(na.Args, mapTerm(t))
		}
		q2.Atoms = append(q2.Atoms, na)
	}
	return countIntersection(dbx, q2)
}
