package counting

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/logic/logictest"
)

func TestIntersectCQs(t *testing.T) {
	a := logictest.MustParseCQ("Q(x,y) :- R(x,z), S(z,y).")
	b := logictest.MustParseCQ("P(u,v) :- T(u,v).")
	q, err := IntersectCQs([]*logic.CQ{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 2 || q.Head[0] != "h0" || q.Head[1] != "h1" {
		t.Fatalf("head: %v", q.Head)
	}
	if len(q.Atoms) != 3 {
		t.Fatalf("atoms: %v", q.Atoms)
	}
	// Repeated head variable forces position unification.
	c := logictest.MustParseCQ("R2(x,x) :- U(x).")
	q2, err := IntersectCQs([]*logic.CQ{a, c})
	if err != nil {
		t.Fatal(err)
	}
	if q2.Head[0] != q2.Head[1] {
		t.Fatalf("positions not unified: %v", q2.Head)
	}
	if _, err := IntersectCQs(nil); err == nil {
		t.Errorf("empty intersection must fail")
	}
	if _, err := IntersectCQs([]*logic.CQ{a, logictest.MustParseCQ("P(x) :- T(x,x).")}); err == nil {
		t.Errorf("arity mismatch must fail")
	}
}

func randomUCQ(rng *rand.Rand) *logic.UCQ {
	arity := rng.Intn(3)
	k := 1 + rng.Intn(3)
	u := &logic.UCQ{Name: "U"}
	for d := 0; d < k; d++ {
		numAtoms := 1 + rng.Intn(3)
		q := &logic.CQ{Name: fmt.Sprintf("U%d", d)}
		varCount := 0
		fresh := func() string { varCount++; return fmt.Sprintf("v%d", varCount) }
		var atoms []logic.Atom
		for i := 0; i < numAtoms; i++ {
			var vars []string
			if i > 0 {
				prev := atoms[rng.Intn(len(atoms))]
				for _, v := range prev.Vars() {
					if rng.Intn(2) == 0 {
						vars = append(vars, v)
					}
				}
			}
			for len(vars) == 0 || rng.Intn(3) == 0 {
				vars = append(vars, fresh())
				if len(vars) >= 3 {
					break
				}
			}
			// Shared relation names across disjuncts on purpose.
			atoms = append(atoms, logic.NewAtom(fmt.Sprintf("R%d", rng.Intn(3)), vars...))
		}
		q.Atoms = atoms
		all := q.Vars()
		for len(q.Head) < arity {
			q.Head = append(q.Head, all[rng.Intn(len(all))])
		}
		u.Disjuncts = append(u.Disjuncts, q)
	}
	return u
}

func TestCountUCQDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tested := 0
	for trial := 0; trial < 600 && tested < 200; trial++ {
		u := randomUCQ(rng)
		// Relations R0,R1,R2 may be used at different arities across
		// disjuncts; regenerate until consistent.
		arities := map[string]int{}
		ok := true
		for _, d := range u.Disjuncts {
			for _, a := range d.Atoms {
				if prev, seen := arities[a.Pred]; seen && prev != len(a.Args) {
					ok = false
				}
				arities[a.Pred] = len(a.Args)
			}
		}
		if !ok {
			continue
		}
		tested++
		db := database.NewDatabase()
		for pred, ar := range arities {
			r := database.NewRelation(pred, ar)
			for i := 0; i < 8; i++ {
				tp := make(database.Tuple, ar)
				for j := range tp {
					tp[j] = database.Value(rng.Intn(3) + 1)
				}
				r.Insert(tp)
			}
			r.Dedup()
			db.AddRelation(r)
		}
		got, err := CountUCQ(db, u)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, u, err)
		}
		want := len(u.EvalNaive(db))
		if got.Cmp(big.NewInt(int64(want))) != 0 {
			t.Fatalf("trial %d (%s): got %s want %d", trial, u, got, want)
		}
	}
	if tested < 100 {
		t.Fatalf("too few consistent samples: %d", tested)
	}
}

func TestCountUCQEdgeCases(t *testing.T) {
	db := database.NewDatabase()
	r := database.NewRelation("R", 2)
	r.InsertValues(1, 2)
	r.InsertValues(2, 3)
	db.AddRelation(r)

	// Union of identical disjuncts counts once.
	u := logictest.MustParseUCQ("Q(x,y) :- R(x,y); Q(a,b) :- R(a,b).")
	got, err := CountUCQ(db, u)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("identical union: %s, want 2", got)
	}
	// Boolean union.
	ub := logictest.MustParseUCQ("Q() :- R(x,x); Q() :- R(x,y).")
	got, err = CountUCQ(db, ub)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("Boolean union: %s, want 1", got)
	}
	// Empty union.
	got, err = CountUCQ(db, &logic.UCQ{})
	if err != nil || got.Sign() != 0 {
		t.Errorf("empty union: %s, %v", got, err)
	}
	// Negation rejected.
	if _, err := CountUCQ(db, logictest.MustParseUCQ("Q(x) :- R(x,y), !R(y,x).")); err == nil {
		t.Errorf("negation must be rejected")
	}
}
