package counting

import (
	"fmt"
	"math/big"

	"repro/internal/database"
	"repro/internal/logic"
)

// Equation 2 of the paper: over a bipartite graph G = (A ∪ B, E) with
// A = {a₁,...,aₙ}, B = {b₁,...,bₙ},
//
//	φ(x₁,...,xₙ)  =  ⋀ᵢ E(aᵢ,xᵢ)
//	ψ(x₁,...,xₙ)  =  ∃t ⋀ᵢ E(aᵢ,xᵢ) ∧ NE(t,xᵢ)
//
// where NE(t,x) holds for t,x ∈ B with t ≠ x (the paper writes both atoms
// with the same symbol E; the second must be read over the auxiliary
// "misses t" relation — a tuple x̄ fails to be surjective onto B exactly
// when some t ∈ B differs from every xᵢ). Then
//
//	#perfect-matchings(G) = |φ(G)| − |ψ(G)|,
//
// because |φ| counts all systems of representatives xᵢ ∈ N(aᵢ) and |ψ|
// counts the non-surjective ones; a surjective system on n elements is a
// bijection, i.e. a perfect matching. φ is quantifier-free while ψ has a
// single quantified variable of quantified star size n (Example 4.27) —
// this is the survey's witness that one existential quantifier already makes
// ♯ACQ ♯P-hard (Theorem 4.22).

// MatchingQueries builds the database and the two queries of Equation 2 for
// the bipartite graph with biadjacency matrix adj (adj[i][j]: edge aᵢ–bⱼ).
// Domain encoding: aᵢ ↦ i+1, bⱼ ↦ n+j+1.
func MatchingQueries(adj [][]bool) (*database.Database, *logic.CQ, *logic.CQ) {
	n := len(adj)
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	for i := range adj {
		for j, ok := range adj[i] {
			if ok {
				e.InsertValues(database.Value(i+1), database.Value(n+j+1))
			}
		}
	}
	db.AddRelation(e)
	ne := database.NewRelation("NE", 2)
	for t := 0; t < n; t++ {
		for x := 0; x < n; x++ {
			if t != x {
				ne.InsertValues(database.Value(n+t+1), database.Value(n+x+1))
			}
		}
	}
	db.AddRelation(ne)

	phi := &logic.CQ{Name: "phi"}
	psi := &logic.CQ{Name: "psi"}
	for i := 0; i < n; i++ {
		x := fmt.Sprintf("x%d", i+1)
		phi.Head = append(phi.Head, x)
		psi.Head = append(psi.Head, x)
		ai := logic.C(database.Value(i + 1))
		phi.Atoms = append(phi.Atoms, logic.Atom{Pred: "E", Args: []logic.Term{ai, logic.V(x)}})
		psi.Atoms = append(psi.Atoms, logic.Atom{Pred: "E", Args: []logic.Term{ai, logic.V(x)}})
		psi.Atoms = append(psi.Atoms, logic.Atom{Pred: "NE", Args: []logic.Term{logic.V("t"), logic.V(x)}})
	}
	return db, phi, psi
}

// PerfectMatchingsViaACQ counts the perfect matchings of the bipartite
// graph by evaluating |φ(G)| − |ψ(G)| per Equation 2. |φ| is computed with
// the polynomial quantifier-free counter; |ψ| with the star-size algorithm,
// whose cost grows as ‖D‖^n — the point of the example.
func PerfectMatchingsViaACQ(adj [][]bool) (*big.Int, error) {
	n := len(adj)
	db, phi, psi := MatchingQueries(adj)
	s := BigInt{}
	if n == 0 {
		return big.NewInt(1), nil // the empty graph has one (empty) matching
	}
	cphi, err := CountQuantifierFree(db, phi, UnitWeight(s), s)
	if err != nil {
		return nil, err
	}
	cpsi, err := Count(db, psi, UnitWeight(s), s)
	if err != nil {
		return nil, err
	}
	return new(big.Int).Sub(cphi.(*big.Int), cpsi.(*big.Int)), nil
}

// Permanent computes the permanent of the 0/1 biadjacency matrix by Ryser's
// inclusion–exclusion formula — the brute-force reference for the matching
// count.
func Permanent(adj [][]bool) *big.Int {
	n := len(adj)
	if n == 0 {
		return big.NewInt(1)
	}
	total := new(big.Int)
	row := make([]int64, n)
	for mask := 1; mask < 1<<n; mask++ {
		// row[i] = |N(a_i) ∩ S| for S given by mask.
		for i := 0; i < n; i++ {
			row[i] = 0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 && adj[i][j] {
					row[i]++
				}
			}
		}
		prod := big.NewInt(1)
		for i := 0; i < n; i++ {
			prod.Mul(prod, big.NewInt(row[i]))
		}
		if (n-popcount(mask))%2 == 1 {
			prod.Neg(prod)
		}
		total.Add(total, prod)
	}
	return total
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
