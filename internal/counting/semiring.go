// Package counting implements the counting algorithms of Section 4.4 of the
// paper: weighted counting for quantifier-free acyclic conjunctive queries
// (♯FACQ⁰, Theorem 4.21), the quantified-star-size algorithm for ♯ACQ
// (Theorem 4.28), and the perfect-matching reduction of Equation 2 that
// witnesses ♯P-hardness of ♯ACQ (Theorem 4.22).
package counting

import (
	"fmt"
	"math/big"

	"repro/internal/database"
)

// Semiring abstracts the (commutative) arithmetic the counting dynamic
// program runs over. The paper states Theorem 4.21 for a field F; the
// algorithm only needs a commutative semiring, so we expose that. Elements
// are opaque values owned by the semiring.
type Semiring interface {
	Zero() interface{}
	One() interface{}
	Add(a, b interface{}) interface{}
	Mul(a, b interface{}) interface{}
	// Eq reports element equality (used by tests).
	Eq(a, b interface{}) bool
	String(a interface{}) string
}

// Weight maps domain elements to semiring values; the weight of a tuple is
// the product of its components' weights (Section 4.4).
type Weight func(database.Value) interface{}

// UnitWeight returns the weight function that assigns One to every element,
// turning weighted counting into plain counting.
func UnitWeight(s Semiring) Weight {
	one := s.One()
	return func(database.Value) interface{} { return one }
}

// BigInt is the semiring of arbitrary-precision integers — exact counting
// that cannot overflow.
type BigInt struct{}

// Zero returns 0.
func (BigInt) Zero() interface{} { return new(big.Int) }

// One returns 1.
func (BigInt) One() interface{} { return big.NewInt(1) }

// Add returns a+b.
func (BigInt) Add(a, b interface{}) interface{} {
	return new(big.Int).Add(a.(*big.Int), b.(*big.Int))
}

// Mul returns a·b.
func (BigInt) Mul(a, b interface{}) interface{} {
	return new(big.Int).Mul(a.(*big.Int), b.(*big.Int))
}

// Eq reports a == b.
func (BigInt) Eq(a, b interface{}) bool { return a.(*big.Int).Cmp(b.(*big.Int)) == 0 }

// String formats a.
func (BigInt) String(a interface{}) string { return a.(*big.Int).String() }

// Float64 is the field of float64 numbers (approximate weighted counting,
// e.g. probabilities).
type Float64 struct{}

// Zero returns 0.
func (Float64) Zero() interface{} { return float64(0) }

// One returns 1.
func (Float64) One() interface{} { return float64(1) }

// Add returns a+b.
func (Float64) Add(a, b interface{}) interface{} { return a.(float64) + b.(float64) }

// Mul returns a·b.
func (Float64) Mul(a, b interface{}) interface{} { return a.(float64) * b.(float64) }

// Eq reports approximate equality.
func (Float64) Eq(a, b interface{}) bool {
	x, y := a.(float64), b.(float64)
	d := x - y
	if d < 0 {
		d = -d
	}
	m := x
	if m < 0 {
		m = -m
	}
	if y > m {
		m = y
	} else if -y > m {
		m = -y
	}
	return d <= 1e-9*(1+m)
}

// String formats a.
func (Float64) String(a interface{}) string { return fmt.Sprintf("%g", a.(float64)) }

// GF is the prime field Z/pZ. Useful for modular counting and as a third
// Field instance exercising the parametricity of Theorem 4.21.
type GF struct{ P uint64 }

// NewGF returns the field Z/pZ; p must be a prime > 1 (not verified).
func NewGF(p uint64) GF { return GF{P: p} }

// Zero returns 0.
func (f GF) Zero() interface{} { return uint64(0) }

// One returns 1 mod p.
func (f GF) One() interface{} { return uint64(1 % f.P) }

// Add returns a+b mod p.
func (f GF) Add(a, b interface{}) interface{} { return (a.(uint64) + b.(uint64)) % f.P }

// Mul returns a·b mod p.
func (f GF) Mul(a, b interface{}) interface{} {
	return (a.(uint64) * b.(uint64)) % f.P
}

// Eq reports a == b.
func (f GF) Eq(a, b interface{}) bool { return a.(uint64) == b.(uint64) }

// String formats a.
func (f GF) String(a interface{}) string { return fmt.Sprintf("%d (mod %d)", a.(uint64), f.P) }

// Rational is the field ℚ of arbitrary-precision rationals.
type Rational struct{}

// Zero returns 0.
func (Rational) Zero() interface{} { return new(big.Rat) }

// One returns 1.
func (Rational) One() interface{} { return big.NewRat(1, 1) }

// Add returns a+b.
func (Rational) Add(a, b interface{}) interface{} {
	return new(big.Rat).Add(a.(*big.Rat), b.(*big.Rat))
}

// Mul returns a·b.
func (Rational) Mul(a, b interface{}) interface{} {
	return new(big.Rat).Mul(a.(*big.Rat), b.(*big.Rat))
}

// Eq reports a == b.
func (Rational) Eq(a, b interface{}) bool { return a.(*big.Rat).Cmp(b.(*big.Rat)) == 0 }

// String formats a.
func (Rational) String(a interface{}) string { return a.(*big.Rat).RatString() }
