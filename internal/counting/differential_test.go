package counting

// Differential suite for the counting engines: every count is pinned to
// internal/oracle's brute-force answer sets on seeded random instances. A
// failure prints the seed, query, and database; replay with
//
//	go test ./internal/counting -run TestDifferential -seed=N

import (
	"flag"
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/database"
	"repro/internal/oracle"
	"repro/internal/qgen"
)

var seedFlag = flag.Int64("seed", -1, "replay a single differential-suite seed (-1 runs the full sweep)")

const numSeeds = 250

func diffSeeds() []int64 {
	if *seedFlag >= 0 {
		return []int64{*seedFlag}
	}
	seeds := make([]int64, numSeeds)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	return seeds
}

func failInstance(t *testing.T, seed int64, q fmt.Stringer, db *database.Database, format string, args ...interface{}) {
	t.Helper()
	t.Fatalf("%s\nseed %d — replay with: go test ./internal/counting -run %s -seed=%d\n%s",
		fmt.Sprintf(format, args...), seed, t.Name(), seed, qgen.FormatInstance(q, db))
}

// TestDifferentialCount: the quantified-star-size algorithm (Theorem 4.28)
// agrees with the oracle on free-connex instances with projections.
func TestDifferentialCount(t *testing.T) {
	for _, seed := range diffSeeds() {
		q, db := qgen.Instance(seed)
		want, err := oracle.Count(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "oracle: %v", err)
		}
		got, err := CountInt(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "CountInt: %v", err)
		}
		if got != strconv.Itoa(want) {
			failInstance(t, seed, q, db, "CountInt %s != oracle %d", got, want)
		}
	}
}

// TestDifferentialCountFullJoin: the projection-free weighted DP
// (Theorem 4.21, via CountQuantifierFree) agrees with the oracle on
// quantifier-free instances.
func TestDifferentialCountFullJoin(t *testing.T) {
	cfg := qgen.Default()
	for _, seed := range diffSeeds() {
		rng := rand.New(rand.NewSource(seed))
		q := qgen.FullCQ(rng, cfg)
		db := qgen.DatabaseFor(rng, cfg, q)
		want, err := oracle.Count(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "oracle: %v", err)
		}
		s := BigInt{}
		v, err := CountQuantifierFree(db, q, UnitWeight(s), s)
		if err != nil {
			failInstance(t, seed, q, db, "CountQuantifierFree: %v", err)
		}
		if s.String(v) != strconv.Itoa(want) {
			failInstance(t, seed, q, db, "CountQuantifierFree %s != oracle %d", s.String(v), want)
		}
	}
}

// TestDifferentialCountUCQ: inclusion–exclusion over disjunct intersections
// agrees with the oracle's duplicate-free union count.
func TestDifferentialCountUCQ(t *testing.T) {
	cfg := qgen.Default()
	// Intersections multiply the variable count; keep disjuncts small so
	// the oracle side stays fast.
	cfg.MaxAtoms = 3
	cfg.MaxFresh = 1
	for _, seed := range diffSeeds() {
		rng := rand.New(rand.NewSource(seed))
		u := qgen.UCQ(rng, cfg)
		db := qgen.DatabaseForUCQ(rng, cfg, u)
		want, err := oracle.CountUCQ(db, u)
		if err != nil {
			failInstance(t, seed, u, db, "oracle: %v", err)
		}
		got, err := CountUCQ(db, u)
		if err != nil {
			failInstance(t, seed, u, db, "CountUCQ: %v", err)
		}
		if !got.IsInt64() || got.Int64() != int64(want) {
			failInstance(t, seed, u, db, "CountUCQ %s != oracle %d", got, want)
		}
	}
}
