// Package logic defines the query languages of the paper — conjunctive
// queries (CQ, Section 4), unions of conjunctive queries (UCQ, Section 4.2),
// conjunctive queries with comparisons and disequalities (Section 4.3),
// negative conjunctive queries (NCQ, Section 4.5), and first-order /
// monadic-second-order formulas (Sections 3 and 5) — together with naive
// reference evaluators and a text parser.
package logic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/database"
	"repro/internal/hypergraph"
)

// Term is a variable or a constant.
type Term struct {
	Var     string
	IsConst bool
	Const   database.Value
}

// V makes a variable term.
func V(name string) Term { return Term{Var: name} }

// C makes a constant term.
func C(v database.Value) Term { return Term{IsConst: true, Const: v} }

// String renders the term.
func (t Term) String() string {
	if t.IsConst {
		return fmt.Sprintf("%d", t.Const)
	}
	return t.Var
}

// Atom is a relational atom R(t1,...,tk).
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom over variables only, the common case.
func NewAtom(pred string, vars ...string) Atom {
	a := Atom{Pred: pred}
	for _, v := range vars {
		a.Args = append(a.Args, V(v))
	}
	return a
}

// Vars returns the distinct variables of the atom, in first-occurrence order.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Args {
		if !t.IsConst && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// CompOp is a comparison operator (Section 4.3).
type CompOp int

// Comparison operators. NEQ is the disequality of ACQ≠; LT/LE are the order
// comparisons of ACQ< and ACQ≤.
const (
	EQ CompOp = iota
	NEQ
	LT
	LE
)

// String renders the operator.
func (op CompOp) String() string {
	switch op {
	case EQ:
		return "="
	case NEQ:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	}
	return "?"
}

// Eval applies the operator to two values.
func (op CompOp) Eval(a, b database.Value) bool {
	switch op {
	case EQ:
		return a == b
	case NEQ:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	}
	return false
}

// Comparison is an atom z ◁ z' with ◁ ∈ {=, ≠, <, ≤} (Definition 4.14).
type Comparison struct {
	Op   CompOp
	L, R Term
}

// String renders the comparison.
func (c Comparison) String() string {
	return c.L.String() + " " + c.Op.String() + " " + c.R.String()
}

// CQ is a conjunctive query φ(x) := ∃y ⋀ᵢ Rᵢ(zᵢ), possibly extended with
// negated atoms (NCQ, Section 4.5) and comparisons (Section 4.3). Head lists
// the free variables in output order; every other variable is existentially
// quantified.
type CQ struct {
	Name        string
	Head        []string
	Atoms       []Atom
	NegAtoms    []Atom
	Comparisons []Comparison
}

// Vars returns all variables of the query in first-occurrence order
// (head first, then body).
func (q *CQ) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range q.Head {
		add(v)
	}
	for _, a := range q.Atoms {
		for _, v := range a.Vars() {
			add(v)
		}
	}
	for _, a := range q.NegAtoms {
		for _, v := range a.Vars() {
			add(v)
		}
	}
	for _, c := range q.Comparisons {
		if !c.L.IsConst {
			add(c.L.Var)
		}
		if !c.R.IsConst {
			add(c.R.Var)
		}
	}
	return out
}

// ExistentialVars returns the non-head variables in first-occurrence order.
func (q *CQ) ExistentialVars() []string {
	head := make(map[string]bool, len(q.Head))
	for _, v := range q.Head {
		head[v] = true
	}
	var out []string
	for _, v := range q.Vars() {
		if !head[v] {
			out = append(out, v)
		}
	}
	return out
}

// IsBoolean reports whether the query is a sentence (arity 0).
func (q *CQ) IsBoolean() bool { return len(q.Head) == 0 }

// IsSelfJoinFree reports whether no relation symbol occurs twice among the
// positive atoms (Section 4: "A query is said to be self-join free if no
// relation symbol is used more than once").
func (q *CQ) IsSelfJoinFree() bool {
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		if seen[a.Pred] {
			return false
		}
		seen[a.Pred] = true
	}
	return true
}

// Hypergraph returns the query hypergraph (Section 4): vertices are the
// variables, hyperedges the atoms. Following Definition 4.14, comparison
// atoms do not contribute hyperedges; negated atoms do (Section 4.5 extends
// acyclicity "to negative atoms as well"). Head variables that appear in no
// atom are added as isolated vertices.
func (q *CQ) Hypergraph() *hypergraph.Hypergraph {
	h := hypergraph.New()
	for i, a := range q.Atoms {
		h.AddEdge(hypergraph.NewEdge(fmt.Sprintf("%s#%d", a.Pred, i), a.Vars()...))
	}
	for i, a := range q.NegAtoms {
		h.AddEdge(hypergraph.NewEdge(fmt.Sprintf("!%s#%d", a.Pred, i), a.Vars()...))
	}
	for _, v := range q.Head {
		h.AddVertex(v)
	}
	return h
}

// IsAcyclic reports α-acyclicity of the query hypergraph.
func (q *CQ) IsAcyclic() bool { return hypergraph.IsAcyclic(q.Hypergraph()) }

// IsFreeConnex reports free-connexity (Definition 4.4).
func (q *CQ) IsFreeConnex() bool {
	return hypergraph.FreeConnex(q.Hypergraph(), q.Head)
}

// QuantifiedStarSize returns the quantified star size (Definition 4.26).
// The query must be acyclic.
func (q *CQ) QuantifiedStarSize() int {
	return hypergraph.QuantifiedStarSize(q.Hypergraph(), q.Head)
}

// Size returns ‖φ‖, the number of symbols needed to write the query
// (Section 2.1): one per predicate plus one per argument, per comparison
// operand, plus the head.
func (q *CQ) Size() int {
	n := 1 + len(q.Head)
	for _, a := range q.Atoms {
		n += 1 + len(a.Args)
	}
	for _, a := range q.NegAtoms {
		n += 2 + len(a.Args)
	}
	n += 3 * len(q.Comparisons)
	return n
}

// String renders the query in rule syntax, e.g.
// "Q(x,y) :- R(x,z), S(z,y), x != y.".
func (q *CQ) String() string {
	var b strings.Builder
	name := q.Name
	if name == "" {
		name = "Q"
	}
	b.WriteString(name)
	b.WriteByte('(')
	b.WriteString(strings.Join(q.Head, ","))
	b.WriteString(") :- ")
	var parts []string
	for _, a := range q.Atoms {
		parts = append(parts, a.String())
	}
	for _, a := range q.NegAtoms {
		parts = append(parts, "!"+a.String())
	}
	for _, c := range q.Comparisons {
		parts = append(parts, c.String())
	}
	b.WriteString(strings.Join(parts, ", "))
	b.WriteByte('.')
	return b.String()
}

// Assignment maps variables to domain values.
type Assignment map[string]database.Value

// holds evaluates all atoms, negated atoms and comparisons under a total
// assignment of the query's variables.
func (q *CQ) holds(db *database.Database, asg Assignment) bool {
	for _, a := range q.Atoms {
		if !atomHolds(db, a, asg) {
			return false
		}
	}
	for _, a := range q.NegAtoms {
		if atomHolds(db, a, asg) {
			return false
		}
	}
	for _, c := range q.Comparisons {
		l, r := termValue(c.L, asg), termValue(c.R, asg)
		if !c.Op.Eval(l, r) {
			return false
		}
	}
	return true
}

func termValue(t Term, asg Assignment) database.Value {
	if t.IsConst {
		return t.Const
	}
	return asg[t.Var]
}

func atomHolds(db *database.Database, a Atom, asg Assignment) bool {
	r := db.Relation(a.Pred)
	if r == nil {
		return false
	}
	t := make(database.Tuple, len(a.Args))
	for i, arg := range a.Args {
		t[i] = termValue(arg, asg)
	}
	return r.Contains(t)
}

// EvalNaive computes φ(D) by brute force over all assignments of the
// query's variables to the active domain — the NP-complete combined
// complexity baseline of Chandra–Merlin mentioned in the introduction. It is
// the reference implementation all engines are differentially tested
// against; use only on small inputs.
func (q *CQ) EvalNaive(db *database.Database) []database.Tuple {
	dom := db.Domain()
	vars := q.Vars()
	asg := make(Assignment, len(vars))
	seen := make(map[string]bool)
	var out []database.Tuple
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			if q.holds(db, asg) {
				t := make(database.Tuple, len(q.Head))
				for j, v := range q.Head {
					t[j] = asg[v]
				}
				k := t.FullKey()
				if !seen[k] {
					seen[k] = true
					out = append(out, t)
				}
			}
			return
		}
		for _, v := range dom {
			asg[vars[i]] = v
			rec(i + 1)
		}
		delete(asg, vars[i])
	}
	rec(0)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// CountNaive returns |φ(D)| by brute force.
func (q *CQ) CountNaive(db *database.Database) int {
	return len(q.EvalNaive(db))
}

// DecideNaive reports whether the Boolean query holds by brute force.
func (q *CQ) DecideNaive(db *database.Database) bool {
	dom := db.Domain()
	vars := q.Vars()
	asg := make(Assignment, len(vars))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			return q.holds(db, asg)
		}
		for _, v := range dom {
			asg[vars[i]] = v
			if rec(i + 1) {
				return true
			}
		}
		delete(asg, vars[i])
		return false
	}
	return rec(0)
}

// UCQ is a union of conjunctive queries φ = φ1 ∨ ... ∨ φk
// (Definition 4.10). All disjuncts must share the same head arity; answers
// are positional.
type UCQ struct {
	Name      string
	Disjuncts []*CQ
}

// Arity returns the common head arity of the disjuncts.
func (u *UCQ) Arity() int {
	if len(u.Disjuncts) == 0 {
		return 0
	}
	return len(u.Disjuncts[0].Head)
}

// Validate checks that all disjuncts have the same arity.
func (u *UCQ) Validate() error {
	for _, d := range u.Disjuncts {
		if len(d.Head) != u.Arity() {
			return fmt.Errorf("logic: UCQ %s mixes arities %d and %d", u.Name, u.Arity(), len(d.Head))
		}
	}
	return nil
}

// EvalNaive evaluates the union by brute force, deduplicating across
// disjuncts.
func (u *UCQ) EvalNaive(db *database.Database) []database.Tuple {
	seen := make(map[string]bool)
	var out []database.Tuple
	for _, d := range u.Disjuncts {
		for _, t := range d.EvalNaive(db) {
			k := t.FullKey()
			if !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// String renders the union.
func (u *UCQ) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, d := range u.Disjuncts {
		parts[i] = d.String()
	}
	return strings.Join(parts, "  ∨  ")
}
