// Package logictest provides panicking parse helpers for tests and
// benchmarks working with compile-time-constant query strings.
//
// The library itself exposes only the error-returning logic.ParseCQ /
// ParseUCQ / ParseFormula: user-supplied input (cmd/qeval) must never be
// able to crash the process, so the panicking convenience wrappers live
// here, out of every production import path. Production code embedding a
// fixed query should construct it structurally (see boolmat.PiQuery) or
// propagate the parse error.
package logictest

import (
	"fmt"

	"repro/internal/logic"
)

// MustParseCQ parses a constant conjunctive-query rule, panicking on error.
func MustParseCQ(src string) *logic.CQ {
	q, err := logic.ParseCQ(src)
	if err != nil {
		panic(fmt.Sprintf("logictest: MustParseCQ(%q): %v", src, err))
	}
	return q
}

// MustParseUCQ parses a constant union of rules, panicking on error.
func MustParseUCQ(src string) *logic.UCQ {
	u, err := logic.ParseUCQ(src)
	if err != nil {
		panic(fmt.Sprintf("logictest: MustParseUCQ(%q): %v", src, err))
	}
	return u
}

// MustParseFormula parses a constant FO/MSO formula, panicking on error.
func MustParseFormula(src string) logic.Formula {
	f, err := logic.ParseFormula(src)
	if err != nil {
		panic(fmt.Sprintf("logictest: MustParseFormula(%q): %v", src, err))
	}
	return f
}
