package logic

import (
	"strings"
	"testing"
)

// The parser fields input typed by cmd/qeval users, so every malformed
// query must come back as an error — never a panic or an out-of-bounds
// read. These inputs all previously reached panicking code paths or
// exercise truncation at each parser state.
func TestParseCQMalformed(t *testing.T) {
	cases := []string{
		"",
		"Q",
		"Q(",
		"Q(x",
		"Q(x,",
		"Q(x,) :- R(x).",
		"Q(x)",
		"Q(x) :-",
		"Q(x) :- ",
		"Q(x) :- .",
		"Q(x) :- R",
		"Q(x) :- R(",
		"Q(x) :- R(x",
		"Q(x) :- R(x,",
		"Q(x) :- R(x,y",
		"Q(x) :- R(x))",
		"Q(x) :- R(x), ",
		"Q(x) :- R(x), S",
		"Q(x) :- !",
		"Q(x) :- !R",
		"Q(x) :- x !",
		"Q(x) :- x != ",
		"Q(x) :- x <",
		"Q(x) :- x = = y",
		"Q(x) :- R(x) S(x).",
		"Q(x) :- R(x). extra",
		"(x) :- R(x).",
		":- R(x).",
		"Q(x) R(x).",
		"Q(1x) :- R(x).",
		"Q(x) :- R(x), !",
		"Q(x) :- ,",
	}
	for _, src := range cases {
		if _, err := ParseCQ(src); err == nil {
			t.Errorf("ParseCQ(%q): expected error, got none", src)
		}
	}
}

func TestParseUCQMalformed(t *testing.T) {
	cases := []string{
		"",
		";",
		"Q(x) :- R(x);",
		"Q(x) :- R(x); Q(y)",
		"Q(x) :- R(x); P(",
	}
	for _, src := range cases {
		if _, err := ParseUCQ(src); err == nil {
			t.Errorf("ParseUCQ(%q): expected error, got none", src)
		}
	}
}

func TestParseFormulaMalformed(t *testing.T) {
	cases := []string{
		"",
		"(",
		")",
		"exists",
		"exists .",
		"exists x",
		"exists x.",
		"forall x. (",
		"E(x,y) and",
		"E(x,y) or or E(y,x)",
		"not",
		"x in",
		"in X",
		"exists set",
		"exists set X",
		"E(x,",
		"E(x,y))",
		"x <",
		"-> E(x,y)",
	}
	for _, src := range cases {
		if _, err := ParseFormula(src); err == nil {
			t.Errorf("ParseFormula(%q): expected error, got none", src)
		}
	}
}

// TestParseErrorsMentionInput: parse errors should be actionable — at
// minimum they must not be empty.
func TestParseErrorsMentionInput(t *testing.T) {
	_, err := ParseCQ("Q(x) :- R(x")
	if err == nil || strings.TrimSpace(err.Error()) == "" {
		t.Fatalf("uninformative error: %v", err)
	}
}
