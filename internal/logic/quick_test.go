package logic

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/database"
)

// genCQ builds a query from fuzz bytes deterministically.
func genCQ(spec []byte) *CQ {
	q := &CQ{Name: "Q"}
	if len(spec) == 0 {
		spec = []byte{0}
	}
	numAtoms := int(spec[0]%3) + 1
	vars := []string{"a", "b", "c", "d"}
	at := 1
	next := func() byte {
		if at >= len(spec) {
			at = 0
		}
		b := spec[at]
		at++
		return b
	}
	for i := 0; i < numAtoms; i++ {
		arity := int(next()%3) + 1
		a := Atom{Pred: fmt.Sprintf("R%d", i)}
		for j := 0; j < arity; j++ {
			if next()%5 == 0 {
				a.Args = append(a.Args, C(database.Value(next()%4)))
			} else {
				a.Args = append(a.Args, V(vars[next()%4]))
			}
		}
		q.Atoms = append(q.Atoms, a)
	}
	for _, v := range q.Vars() {
		if next()%2 == 0 {
			q.Head = append(q.Head, v)
		}
	}
	if next()%3 == 0 {
		q.Comparisons = append(q.Comparisons, Comparison{
			Op: []CompOp{EQ, NEQ, LT, LE}[next()%4],
			L:  V(vars[next()%4]),
			R:  V(vars[next()%4]),
		})
	}
	return q
}

// Property: String → ParseCQ is the identity on the printed form.
func TestQuickCQRoundTrip(t *testing.T) {
	f := func(spec []byte) bool {
		q := genCQ(spec)
		s := q.String()
		q2, err := ParseCQ(s)
		if err != nil {
			return false
		}
		return q2.String() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: the hypergraph vertex set equals atom variables ∪ head
// variables (comparison atoms contribute no vertices, Definition 4.14).
func TestQuickHypergraphVertices(t *testing.T) {
	f := func(spec []byte) bool {
		q := genCQ(spec)
		hv := q.Hypergraph().Vertices()
		qv := map[string]bool{}
		for _, a := range q.Atoms {
			for _, v := range a.Vars() {
				qv[v] = true
			}
		}
		for _, v := range q.Head {
			qv[v] = true
		}
		if len(hv) != len(qv) {
			return false
		}
		for _, v := range hv {
			if !qv[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: CQToFormula's free variables are exactly the head variables
// (safe queries).
func TestQuickCQToFormulaFreeVars(t *testing.T) {
	f := func(spec []byte) bool {
		q := genCQ(spec)
		q.Comparisons = nil // comparisons may introduce head-only vars
		fv := FreeVars(CQToFormula(q))
		head := map[string]bool{}
		for _, v := range q.Head {
			head[v] = true
		}
		if len(fv) != len(head) {
			return false
		}
		for _, v := range fv {
			if !head[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
