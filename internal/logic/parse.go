package logic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/database"
)

// The text syntax:
//
// Conjunctive queries use rule syntax:
//
//	Q(x,y) :- R(x,z), S(z,y), !T(x), x != y, z < 5.
//
// Lower- or upper-case identifiers in term position are variables; numbers
// are constants. A leading "!" negates an atom (NCQ). Unions of conjunctive
// queries are rules separated by ";".
//
// First-order / MSO formulas:
//
//	exists y. (E(x,y) and not x = y)
//	forall x. (x in X -> exists y. E(x,y))
//	exists set X. forall x. (x in X or U(x))
//
// with connectives "and", "or", "not", "->", comparisons "=", "!=", "<",
// "<=", membership "t in X", and constants "true" / "false".

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPunct // ( ) , . ; :- ! = != < <= ->
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_' || l.src[l.pos] == '\'') {
				l.pos++
			}
			l.emit(tokIdent, l.src[start:l.pos], start)
		case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
				l.pos++
			}
			l.emit(tokNumber, l.src[start:l.pos], start)
		default:
			start := l.pos
			two := ""
			if l.pos+1 < len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			switch two {
			case ":-", "!=", "<=", "->":
				l.pos += 2
				l.emit(tokPunct, two, start)
				continue
			}
			switch c {
			case '(', ')', ',', '.', ';', '!', '=', '<':
				l.pos++
				l.emit(tokPunct, string(c), start)
			default:
				return nil, fmt.Errorf("logic: unexpected character %q at offset %d", c, l.pos)
			}
		}
	}
	l.emit(tokEOF, "", l.pos)
	return l.toks, nil
}

func (l *lexer) emit(k tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

type parser struct {
	toks []token
	i    int
}

// peekAt returns the token k positions ahead, saturating at the trailing
// EOF token so that no input — however malformed — can drive the parser
// out of bounds. Parser input reaches this code straight from cmd/qeval
// users; every error path must return an error, never panic.
func (p *parser) peekAt(k int) token {
	if p.i+k >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.i+k]
}

func (p *parser) peek() token { return p.peekAt(0) }

func (p *parser) next() token {
	t := p.peek()
	if p.i < len(p.toks) {
		p.i++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) accept(text string) bool {
	if p.peek().kind != tokEOF && p.peek().text == text {
		p.i++
		return true
	}
	return false
}
func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return fmt.Errorf("logic: expected %q at offset %d, got %q", text, p.peek().pos, p.peek().text)
	}
	return nil
}

// ParseCQ parses a single conjunctive-query rule.
func ParseCQ(src string) (*CQ, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseRule()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("logic: trailing input at offset %d", p.peek().pos)
	}
	return q, nil
}

// ParseUCQ parses one or more rules separated by ";". The rules may have
// different names; they must have the same arity.
func ParseUCQ(src string) (*UCQ, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	u := &UCQ{}
	for {
		q, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		if u.Name == "" {
			u.Name = q.Name
		}
		u.Disjuncts = append(u.Disjuncts, q)
		if !p.accept(";") {
			break
		}
		if p.atEOF() {
			return nil, fmt.Errorf("logic: dangling %q at end of union", ";")
		}
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("logic: trailing input at offset %d", p.peek().pos)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return u, nil
}

func (p *parser) parseRule() (*CQ, error) {
	head := p.next()
	if head.kind != tokIdent {
		return nil, fmt.Errorf("logic: expected rule head at offset %d", head.pos)
	}
	q := &CQ{Name: head.text}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.accept(")") {
		for {
			v := p.next()
			if v.kind != tokIdent {
				return nil, fmt.Errorf("logic: head variables must be identifiers, got %q", v.text)
			}
			q.Head = append(q.Head, v.text)
			if p.accept(")") {
				break
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expect(":-"); err != nil {
		return nil, err
	}
	for {
		if err := p.parseBodyItem(q); err != nil {
			return nil, err
		}
		if !p.accept(",") {
			break
		}
	}
	p.accept(".") // optional terminator
	return q, nil
}

func (p *parser) parseBodyItem(q *CQ) error {
	if p.accept("!") {
		a, err := p.parseAtom()
		if err != nil {
			return err
		}
		q.NegAtoms = append(q.NegAtoms, a)
		return nil
	}
	// Either an atom Pred(...) or a comparison term op term.
	if p.peek().kind == tokIdent && p.peekAt(1).text == "(" {
		a, err := p.parseAtom()
		if err != nil {
			return err
		}
		q.Atoms = append(q.Atoms, a)
		return nil
	}
	l, err := p.parseTerm()
	if err != nil {
		return err
	}
	op, err := p.parseCompOp()
	if err != nil {
		return err
	}
	r, err := p.parseTerm()
	if err != nil {
		return err
	}
	q.Comparisons = append(q.Comparisons, Comparison{Op: op, L: l, R: r})
	return nil
}

func (p *parser) parseAtom() (Atom, error) {
	name := p.next()
	if name.kind != tokIdent {
		return Atom{}, fmt.Errorf("logic: expected predicate at offset %d", name.pos)
	}
	a := Atom{Pred: name.text}
	if err := p.expect("("); err != nil {
		return Atom{}, err
	}
	if p.accept(")") {
		return a, nil
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.accept(")") {
			return a, nil
		}
		if err := p.expect(","); err != nil {
			return Atom{}, err
		}
	}
}

func (p *parser) parseTerm() (Term, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		return V(t.text), nil
	case tokNumber:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Term{}, fmt.Errorf("logic: bad number %q: %v", t.text, err)
		}
		return C(database.Value(n)), nil
	}
	return Term{}, fmt.Errorf("logic: expected term at offset %d, got %q", t.pos, t.text)
}

func (p *parser) parseCompOp() (CompOp, error) {
	t := p.next()
	switch t.text {
	case "=":
		return EQ, nil
	case "!=":
		return NEQ, nil
	case "<":
		return LT, nil
	case "<=":
		return LE, nil
	}
	return 0, fmt.Errorf("logic: expected comparison operator at offset %d, got %q", t.pos, t.text)
}

// ParseFormula parses a first-order / MSO formula.
func ParseFormula(src string) (Formula, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("logic: trailing input at offset %d: %q", p.peek().pos, p.peek().text)
	}
	return f, nil
}

func (p *parser) parseFormula() (Formula, error) {
	if p.peek().kind == tokIdent && (p.peek().text == "exists" || p.peek().text == "forall") {
		kw := p.next().text
		isSet := false
		if p.peek().kind == tokIdent && p.peek().text == "set" {
			p.next()
			isSet = true
		}
		var names []string
		for p.peek().kind == tokIdent {
			names = append(names, p.next().text)
			if !p.accept(",") {
				break
			}
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("logic: %s needs at least one variable at offset %d", kw, p.peek().pos)
		}
		if err := p.expect("."); err != nil {
			return nil, err
		}
		body, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		for i := len(names) - 1; i >= 0; i-- {
			switch {
			case kw == "exists" && isSet:
				body = FExistsSet{Set: names[i], F: body}
			case kw == "exists":
				body = FExists{Var: names[i], F: body}
			case isSet:
				body = FForallSet{Set: names[i], F: body}
			default:
				body = FForall{Var: names[i], F: body}
			}
		}
		return body, nil
	}
	return p.parseImplication()
}

func (p *parser) parseImplication() (Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.accept("->") {
		r, err := p.parseFormula() // right-associative; quantifiers allowed
		if err != nil {
			return nil, err
		}
		return Or(Not(l), r), nil
	}
	return l, nil
}

func (p *parser) parseOr() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	fs := []Formula{l}
	for p.peek().kind == tokIdent && p.peek().text == "or" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		fs = append(fs, r)
	}
	return Or(fs...), nil
}

func (p *parser) parseAnd() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	fs := []Formula{l}
	for p.peek().kind == tokIdent && p.peek().text == "and" {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		fs = append(fs, r)
	}
	return And(fs...), nil
}

func (p *parser) parseUnary() (Formula, error) {
	if p.peek().kind == tokIdent {
		switch p.peek().text {
		case "not":
			p.next()
			f, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return Not(f), nil
		case "true":
			p.next()
			return And(), nil
		case "false":
			p.next()
			return Or(), nil
		case "exists", "forall":
			return p.parseFormula()
		}
	}
	if p.accept("(") {
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	// Atom, membership, or comparison.
	if p.peek().kind == tokIdent && p.peekAt(1).text == "(" {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return FAtom{Pred: a.Pred, Args: a.Args}, nil
	}
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokIdent && p.peek().text == "in" {
		p.next()
		set := p.next()
		if set.kind != tokIdent {
			return nil, fmt.Errorf("logic: expected set variable after 'in' at offset %d", set.pos)
		}
		return FMember{Set: set.text, Elem: l}, nil
	}
	op, err := p.parseCompOp()
	if err != nil {
		return nil, err
	}
	r, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return FComp{Op: op, L: l, R: r}, nil
}

// normalizeSpaces is used by tests comparing printed forms.
func normalizeSpaces(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
