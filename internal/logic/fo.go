package logic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/database"
)

// Formula is a first-order or monadic-second-order formula (Sections 2, 3
// and 5). Set variables make the MSO and prefix-class fragments of
// Sections 3.3 and 5 expressible.
type Formula interface {
	fmt.Stringer
	formula()
}

// FAtom is a relational atom R(t1,...,tk).
type FAtom struct {
	Pred string
	Args []Term
}

// FComp is a comparison t1 ◁ t2 with ◁ ∈ {=, ≠, <, ≤}.
type FComp struct {
	Op   CompOp
	L, R Term
}

// FMember is set membership t ∈ X, with X a monadic second-order variable.
type FMember struct {
	Set  string
	Elem Term
}

// FNot is negation.
type FNot struct{ F Formula }

// FAnd is conjunction.
type FAnd struct{ Fs []Formula }

// FOr is disjunction.
type FOr struct{ Fs []Formula }

// FExists is first-order existential quantification over one variable.
type FExists struct {
	Var string
	F   Formula
}

// FForall is first-order universal quantification over one variable.
type FForall struct {
	Var string
	F   Formula
}

// FExistsSet is monadic second-order existential quantification.
type FExistsSet struct {
	Set string
	F   Formula
}

// FForallSet is monadic second-order universal quantification.
type FForallSet struct {
	Set string
	F   Formula
}

func (FAtom) formula()      {}
func (FComp) formula()      {}
func (FMember) formula()    {}
func (FNot) formula()       {}
func (FAnd) formula()       {}
func (FOr) formula()        {}
func (FExists) formula()    {}
func (FForall) formula()    {}
func (FExistsSet) formula() {}
func (FForallSet) formula() {}

// And builds a conjunction, flattening the trivial cases.
func And(fs ...Formula) Formula {
	if len(fs) == 1 {
		return fs[0]
	}
	return FAnd{Fs: fs}
}

// Or builds a disjunction, flattening the trivial cases.
func Or(fs ...Formula) Formula {
	if len(fs) == 1 {
		return fs[0]
	}
	return FOr{Fs: fs}
}

// Not negates a formula.
func Not(f Formula) Formula { return FNot{F: f} }

// Exists quantifies variables left to right: Exists("x","y",f) = ∃x∃y f.
func Exists(vars []string, f Formula) Formula {
	for i := len(vars) - 1; i >= 0; i-- {
		f = FExists{Var: vars[i], F: f}
	}
	return f
}

// Forall quantifies variables left to right.
func Forall(vars []string, f Formula) Formula {
	for i := len(vars) - 1; i >= 0; i-- {
		f = FForall{Var: vars[i], F: f}
	}
	return f
}

func (f FAtom) String() string {
	parts := make([]string, len(f.Args))
	for i, t := range f.Args {
		parts[i] = t.String()
	}
	return f.Pred + "(" + strings.Join(parts, ",") + ")"
}
func (f FComp) String() string   { return f.L.String() + " " + f.Op.String() + " " + f.R.String() }
func (f FMember) String() string { return f.Elem.String() + " in " + f.Set }
func (f FNot) String() string    { return "not (" + f.F.String() + ")" }
func (f FAnd) String() string {
	parts := make([]string, len(f.Fs))
	for i, g := range f.Fs {
		parts[i] = "(" + g.String() + ")"
	}
	return strings.Join(parts, " and ")
}
func (f FOr) String() string {
	parts := make([]string, len(f.Fs))
	for i, g := range f.Fs {
		parts[i] = "(" + g.String() + ")"
	}
	return strings.Join(parts, " or ")
}
func (f FExists) String() string    { return "exists " + f.Var + ". " + f.F.String() }
func (f FForall) String() string    { return "forall " + f.Var + ". " + f.F.String() }
func (f FExistsSet) String() string { return "exists set " + f.Set + ". " + f.F.String() }
func (f FForallSet) String() string { return "forall set " + f.Set + ". " + f.F.String() }

// FreeVars returns the free first-order variables of f, sorted.
func FreeVars(f Formula) []string {
	set := make(map[string]bool)
	freeVarsInto(f, make(map[string]bool), set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func freeVarsInto(f Formula, bound map[string]bool, out map[string]bool) {
	addTerm := func(t Term) {
		if !t.IsConst && !bound[t.Var] {
			out[t.Var] = true
		}
	}
	switch g := f.(type) {
	case FAtom:
		for _, t := range g.Args {
			addTerm(t)
		}
	case FComp:
		addTerm(g.L)
		addTerm(g.R)
	case FMember:
		addTerm(g.Elem)
	case FNot:
		freeVarsInto(g.F, bound, out)
	case FAnd:
		for _, h := range g.Fs {
			freeVarsInto(h, bound, out)
		}
	case FOr:
		for _, h := range g.Fs {
			freeVarsInto(h, bound, out)
		}
	case FExists:
		was := bound[g.Var]
		bound[g.Var] = true
		freeVarsInto(g.F, bound, out)
		bound[g.Var] = was
	case FForall:
		was := bound[g.Var]
		bound[g.Var] = true
		freeVarsInto(g.F, bound, out)
		bound[g.Var] = was
	case FExistsSet:
		freeVarsInto(g.F, bound, out)
	case FForallSet:
		freeVarsInto(g.F, bound, out)
	}
}

// FreeSetVars returns the free monadic second-order variables of f, sorted.
func FreeSetVars(f Formula) []string {
	set := make(map[string]bool)
	freeSetVarsInto(f, make(map[string]bool), set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func freeSetVarsInto(f Formula, bound map[string]bool, out map[string]bool) {
	switch g := f.(type) {
	case FMember:
		if !bound[g.Set] {
			out[g.Set] = true
		}
	case FNot:
		freeSetVarsInto(g.F, bound, out)
	case FAnd:
		for _, h := range g.Fs {
			freeSetVarsInto(h, bound, out)
		}
	case FOr:
		for _, h := range g.Fs {
			freeSetVarsInto(h, bound, out)
		}
	case FExists:
		freeSetVarsInto(g.F, bound, out)
	case FForall:
		freeSetVarsInto(g.F, bound, out)
	case FExistsSet:
		was := bound[g.Set]
		bound[g.Set] = true
		freeSetVarsInto(g.F, bound, out)
		bound[g.Set] = was
	case FForallSet:
		was := bound[g.Set]
		bound[g.Set] = true
		freeSetVarsInto(g.F, bound, out)
		bound[g.Set] = was
	}
}

// QuantifierRank returns the maximal nesting depth of quantifiers
// (first-order and second-order combined).
func QuantifierRank(f Formula) int {
	switch g := f.(type) {
	case FAtom, FComp, FMember:
		return 0
	case FNot:
		return QuantifierRank(g.F)
	case FAnd:
		m := 0
		for _, h := range g.Fs {
			if r := QuantifierRank(h); r > m {
				m = r
			}
		}
		return m
	case FOr:
		m := 0
		for _, h := range g.Fs {
			if r := QuantifierRank(h); r > m {
				m = r
			}
		}
		return m
	case FExists:
		return 1 + QuantifierRank(g.F)
	case FForall:
		return 1 + QuantifierRank(g.F)
	case FExistsSet:
		return 1 + QuantifierRank(g.F)
	case FForallSet:
		return 1 + QuantifierRank(g.F)
	}
	return 0
}

// Size returns ‖φ‖: the number of symbols of the formula.
func Size(f Formula) int {
	switch g := f.(type) {
	case FAtom:
		return 1 + len(g.Args)
	case FComp:
		return 3
	case FMember:
		return 3
	case FNot:
		return 1 + Size(g.F)
	case FAnd:
		n := len(g.Fs) - 1
		for _, h := range g.Fs {
			n += Size(h)
		}
		return n
	case FOr:
		n := len(g.Fs) - 1
		for _, h := range g.Fs {
			n += Size(h)
		}
		return n
	case FExists:
		return 2 + Size(g.F)
	case FForall:
		return 2 + Size(g.F)
	case FExistsSet:
		return 2 + Size(g.F)
	case FForallSet:
		return 2 + Size(g.F)
	}
	return 0
}

// SetAssignment maps set variables to subsets of the domain.
type SetAssignment map[string]map[database.Value]bool

// Interpretation bundles the two assignments used when evaluating formulas
// with first- and second-order free variables, as in φ(x̄, X̄) of Section 5.
type Interpretation struct {
	FirstOrder Assignment
	Sets       SetAssignment
}

// Eval decides D ⊨ f under the given interpretation, by brute force over
// the active domain for first-order quantifiers and over all subsets of the
// active domain for set quantifiers. Data complexity ‖D‖^h for FO
// (Section 3) and exponential for MSO; this is the reference evaluator.
func Eval(db *database.Database, f Formula, in Interpretation) bool {
	if in.FirstOrder == nil {
		in.FirstOrder = Assignment{}
	}
	if in.Sets == nil {
		in.Sets = SetAssignment{}
	}
	return eval(db, db.Domain(), f, in)
}

func eval(db *database.Database, dom []database.Value, f Formula, in Interpretation) bool {
	switch g := f.(type) {
	case FAtom:
		r := db.Relation(g.Pred)
		if r == nil {
			return false
		}
		t := make(database.Tuple, len(g.Args))
		for i, a := range g.Args {
			t[i] = termValue(a, in.FirstOrder)
		}
		return r.Contains(t)
	case FComp:
		return g.Op.Eval(termValue(g.L, in.FirstOrder), termValue(g.R, in.FirstOrder))
	case FMember:
		s := in.Sets[g.Set]
		return s != nil && s[termValue(g.Elem, in.FirstOrder)]
	case FNot:
		return !eval(db, dom, g.F, in)
	case FAnd:
		for _, h := range g.Fs {
			if !eval(db, dom, h, in) {
				return false
			}
		}
		return true
	case FOr:
		for _, h := range g.Fs {
			if eval(db, dom, h, in) {
				return true
			}
		}
		return false
	case FExists:
		old, had := in.FirstOrder[g.Var]
		for _, v := range dom {
			in.FirstOrder[g.Var] = v
			if eval(db, dom, g.F, in) {
				restore(in.FirstOrder, g.Var, old, had)
				return true
			}
		}
		restore(in.FirstOrder, g.Var, old, had)
		return false
	case FForall:
		old, had := in.FirstOrder[g.Var]
		for _, v := range dom {
			in.FirstOrder[g.Var] = v
			if !eval(db, dom, g.F, in) {
				restore(in.FirstOrder, g.Var, old, had)
				return false
			}
		}
		restore(in.FirstOrder, g.Var, old, had)
		return true
	case FExistsSet:
		oldSet := in.Sets[g.Set]
		found := forEachSubset(dom, func(s map[database.Value]bool) bool {
			in.Sets[g.Set] = s
			return eval(db, dom, g.F, in)
		})
		in.Sets[g.Set] = oldSet
		return found
	case FForallSet:
		oldSet := in.Sets[g.Set]
		foundCounter := forEachSubset(dom, func(s map[database.Value]bool) bool {
			in.Sets[g.Set] = s
			return !eval(db, dom, g.F, in)
		})
		in.Sets[g.Set] = oldSet
		return !foundCounter
	}
	return false
}

func restore(asg Assignment, v string, old database.Value, had bool) {
	if had {
		asg[v] = old
	} else {
		delete(asg, v)
	}
}

// forEachSubset calls visit on every subset of dom until visit returns true;
// it reports whether any call did.
func forEachSubset(dom []database.Value, visit func(map[database.Value]bool) bool) bool {
	n := len(dom)
	if n > 30 {
		panic("logic: domain too large for subset enumeration")
	}
	for mask := 0; mask < (1 << n); mask++ {
		s := make(map[database.Value]bool)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s[dom[i]] = true
			}
		}
		if visit(s) {
			return true
		}
	}
	return false
}

// EvalFO enumerates φ(D) for a formula with free first-order variables only,
// by brute force. Answers are tuples over the free variables in the order
// given by freeOrder (which must be a permutation of FreeVars(f)).
func EvalFO(db *database.Database, f Formula, freeOrder []string) []database.Tuple {
	dom := db.Domain()
	asg := Assignment{}
	in := Interpretation{FirstOrder: asg, Sets: SetAssignment{}}
	var out []database.Tuple
	var rec func(i int)
	rec = func(i int) {
		if i == len(freeOrder) {
			if eval(db, dom, f, in) {
				t := make(database.Tuple, len(freeOrder))
				for j, v := range freeOrder {
					t[j] = asg[v]
				}
				out = append(out, t)
			}
			return
		}
		for _, v := range dom {
			asg[freeOrder[i]] = v
			rec(i + 1)
		}
		delete(asg, freeOrder[i])
	}
	rec(0)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// CountMixed counts |φ(D)| = |{(ā,Ā) : D ⊨ φ(ā,Ā)}| for a formula with both
// free first-order and free set variables (the counting problems of
// Section 5), by brute force.
func CountMixed(db *database.Database, f Formula) int {
	dom := db.Domain()
	fo := FreeVars(f)
	sets := FreeSetVars(f)
	asg := Assignment{}
	in := Interpretation{FirstOrder: asg, Sets: SetAssignment{}}
	count := 0
	var recSets func(i int)
	recSets = func(i int) {
		if i == len(sets) {
			if eval(db, dom, f, in) {
				count++
			}
			return
		}
		forEachSubset(dom, func(s map[database.Value]bool) bool {
			in.Sets[sets[i]] = s
			recSets(i + 1)
			return false
		})
		delete(in.Sets, sets[i])
	}
	var recFO func(i int)
	recFO = func(i int) {
		if i == len(fo) {
			recSets(0)
			return
		}
		for _, v := range dom {
			asg[fo[i]] = v
			recFO(i + 1)
		}
		delete(asg, fo[i])
	}
	recFO(0)
	return count
}

// CQToFormula converts a conjunctive query to the equivalent first-order
// formula ∃ȳ ⋀ atoms ∧ ⋀ ¬negatoms ∧ ⋀ comparisons.
func CQToFormula(q *CQ) Formula {
	var fs []Formula
	for _, a := range q.Atoms {
		fs = append(fs, FAtom{Pred: a.Pred, Args: a.Args})
	}
	for _, a := range q.NegAtoms {
		fs = append(fs, Not(FAtom{Pred: a.Pred, Args: a.Args}))
	}
	for _, c := range q.Comparisons {
		fs = append(fs, FComp{Op: c.Op, L: c.L, R: c.R})
	}
	body := And(fs...)
	return Exists(q.ExistentialVars(), body)
}
