package logic

// In-package test shims for the panicking parse helpers. The exported
// library surface is error-returning only (user input from cmd/qeval must
// not be able to crash the process); external tests use
// internal/logic/logictest, which this package cannot import without a
// cycle, so the same wrappers are restated here for _test files.

func MustParseCQ(src string) *CQ {
	q, err := ParseCQ(src)
	if err != nil {
		panic(err)
	}
	return q
}

func MustParseUCQ(src string) *UCQ {
	u, err := ParseUCQ(src)
	if err != nil {
		panic(err)
	}
	return u
}

func MustParseFormula(src string) Formula {
	f, err := ParseFormula(src)
	if err != nil {
		panic(err)
	}
	return f
}
