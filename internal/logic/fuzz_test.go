package logic

import (
	"strings"
	"testing"
)

// FuzzParseCQ drives the query parser with arbitrary input. The corpus is
// seeded with the query strings appearing across the examples directory and
// the test suites, plus malformed prefixes of them. Properties: the parser
// never panics (the process would crash the fuzzer), and accepted queries
// round-trip — rendering and re-parsing is the identity on the rendering.
func FuzzParseCQ(f *testing.F) {
	seeds := []string{
		// examples/quickstart and examples/socialnetwork.
		"Q(who, kind) :- bought(who, p), category(p, kind).",
		"Q(a,b) :- follows(a,b), verified(b), follows(b,c).",
		// Paper artifacts used throughout the repo.
		"Pi(x,y) :- A(x,z), B(z,y).",
		"Phi(x1,x2,x4) :- E(x1,x4), S(x1,x1,x3), T(x3,x2,x4).",
		"Q(x1,x2,x3) :- R(x1,x2), S(x2,x3,y3), R(x1,y1), T(y3,y4,y5), S(x2,y2).",
		// Extended-CQ syntax: negation, comparisons, constants.
		"Q(x) :- E(x,y), !B(y), x != y, y <= 4.",
		"Q(x) :- R(x, 7), !S(x).",
		"Q() :- E(x,y), E(y,z), E(z,x).",
		// Malformed shapes.
		"Q(x) :- R(x",
		"Q(x,) :- R(x).",
		"Q(x) :- R(x). extra",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseCQ(src)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := ParseCQ(rendered)
		if err != nil {
			t.Fatalf("round-trip reject: %q -> %q: %v", src, rendered, err)
		}
		if got := q2.String(); got != rendered {
			t.Fatalf("round-trip drift: %q -> %q -> %q", src, rendered, got)
		}
	})
}

// FuzzParseUCQ is FuzzParseCQ for unions.
func FuzzParseUCQ(f *testing.F) {
	seeds := []string{
		"Q(x,y,w) :- R1(x,z), R2(z,y), R3(x,w); Q(x,y,w) :- R1(x,y), R2(y,w).",
		"Q(x) :- B(x); Q(x) :- E(x,y), E(y,x).",
		"Q(x) :- R(x);",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// UCQ.String renders with the display glyph "∨", which is not input
	// syntax, so the round-trip goes through ";"-joined rule syntax.
	asInput := func(u *UCQ) string {
		parts := make([]string, len(u.Disjuncts))
		for i, d := range u.Disjuncts {
			parts[i] = strings.TrimSuffix(d.String(), ".")
		}
		return strings.Join(parts, "; ") + "."
	}
	f.Fuzz(func(t *testing.T, src string) {
		u, err := ParseUCQ(src)
		if err != nil {
			return
		}
		rendered := asInput(u)
		u2, err := ParseUCQ(rendered)
		if err != nil {
			t.Fatalf("round-trip reject: %q -> %q: %v", src, rendered, err)
		}
		if got := asInput(u2); got != rendered {
			t.Fatalf("round-trip drift: %q -> %q -> %q", src, rendered, got)
		}
	})
}

// FuzzParseFormula covers the FO/MSO formula grammar, which has the deepest
// recursion and the most lookahead in the parser.
func FuzzParseFormula(f *testing.F) {
	seeds := []string{
		"forall x. (Leaf(x) -> exists y. Child(y,x))",
		"(exists z. z in X) and forall y. (y in X -> a(y))",
		"E(x,y) and x in X and not y in X",
		"exists set X. x in X",
		"exists x, y, z. (D0(x,y,z) and x in T)",
		"x < 3 or x = y",
		"exists x. (",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseFormula(src)
		if err != nil {
			return
		}
		rendered := g.String()
		g2, err := ParseFormula(rendered)
		if err != nil {
			t.Fatalf("round-trip reject: %q -> %q: %v", src, rendered, err)
		}
		if got := g2.String(); got != rendered {
			t.Fatalf("round-trip drift: %q -> %q -> %q", src, rendered, got)
		}
	})
}
