package logic

import (
	"math/rand"
	"testing"

	"repro/internal/database"
)

// smallGraph returns a database with E = edges of a 5-cycle plus a chord,
// and a unary predicate B = {1,3}.
func smallGraph() *database.Database {
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	for _, p := range [][2]database.Value{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 1}, {1, 3}} {
		e.InsertValues(p[0], p[1])
	}
	db.AddRelation(e)
	b := database.NewRelation("B", 1)
	b.InsertValues(1)
	b.InsertValues(3)
	db.AddRelation(b)
	return db
}

func TestParseCQBasics(t *testing.T) {
	q := MustParseCQ("Q(x,y) :- E(x,z), E(z,y), x != y, z < 4.")
	if q.Name != "Q" || len(q.Head) != 2 || len(q.Atoms) != 2 || len(q.Comparisons) != 2 {
		t.Fatalf("parse structure wrong: %s", q)
	}
	if got := q.Vars(); len(got) != 3 {
		t.Errorf("vars: %v", got)
	}
	if got := q.ExistentialVars(); len(got) != 1 || got[0] != "z" {
		t.Errorf("existential vars: %v", got)
	}
	if q.IsBoolean() {
		t.Errorf("binary query reported Boolean")
	}
	if q.IsSelfJoinFree() {
		// E occurs twice: not self-join free.
		t.Errorf("E twice must NOT be self-join free")
	}
}

func TestSelfJoinFree(t *testing.T) {
	q := MustParseCQ("Q(x) :- R(x,y), S(y).")
	if !q.IsSelfJoinFree() {
		t.Errorf("distinct predicates should be self-join free")
	}
	q2 := MustParseCQ("Q(x) :- R(x,y), R(y,x).")
	if q2.IsSelfJoinFree() {
		t.Errorf("repeated predicate should not be self-join free")
	}
}

func TestParseNegAtomsAndConstants(t *testing.T) {
	q := MustParseCQ("Q(x) :- R(x, 7), !S(x).")
	if len(q.Atoms) != 1 || len(q.NegAtoms) != 1 {
		t.Fatalf("neg parse wrong: %s", q)
	}
	if !q.Atoms[0].Args[1].IsConst || q.Atoms[0].Args[1].Const != 7 {
		t.Errorf("constant parse wrong")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"Q(x) :- ",
		"Q(x :- R(x).",
		"(x) :- R(x).",
		"Q(x) :- R(x) S(x).",
		"Q(x) :- x ! y.",
		"Q(x) :- R(x). extra",
	} {
		if _, err := ParseCQ(src); err == nil {
			t.Errorf("ParseCQ(%q) should fail", src)
		}
	}
	for _, src := range []string{
		"exists . E(x,y)",
		"exists x E(x,y)",
		"E(x,",
		"x in",
		"(E(x,y)",
		"E(x,y) and",
	} {
		if _, err := ParseFormula(src); err == nil {
			t.Errorf("ParseFormula(%q) should fail", src)
		}
	}
}

func TestEvalNaivePathQuery(t *testing.T) {
	db := smallGraph()
	q := MustParseCQ("Q(x,y) :- E(x,z), E(z,y).")
	res := q.EvalNaive(db)
	// Check a few expected two-step paths.
	want := map[string]bool{
		database.Tuple{1, 3}.FullKey(): true, // 1→2→3
		database.Tuple{2, 4}.FullKey(): true, // 2→3→4
	}
	found := 0
	for _, r := range res {
		if want[r.FullKey()] {
			found++
		}
	}
	if found != 2 {
		t.Errorf("missing expected paths in %v", res)
	}
	if q.CountNaive(db) != len(res) {
		t.Errorf("CountNaive inconsistent")
	}
}

func TestDecideNaiveTriangle(t *testing.T) {
	db := smallGraph()
	// Triangle 1→2→3→1: E(1,2), E(2,3), and E(3,?1)... E(3,4) no; but
	// E(1,3) exists so triangle x=1,y=2? needs E(3,1): absent. Directed
	// triangle via 1→3? E(1,3), E(3,4)... Check 5-cycle chord: 5→1→3? needs E(3,5) absent.
	tri := MustParseCQ("T() :- E(x,y), E(y,z), E(z,x).")
	if tri.DecideNaive(db) {
		t.Errorf("no directed triangle expected")
	}
	// Add E(3,1): now 1→2→3→1 closes.
	db.Relation("E").InsertValues(3, 1)
	if !tri.DecideNaive(db) {
		t.Errorf("directed triangle expected after adding E(3,1)")
	}
}

func TestComparisonsAndNegationInEval(t *testing.T) {
	db := smallGraph()
	q := MustParseCQ("Q(x,y) :- E(x,y), x < y.")
	for _, r := range q.EvalNaive(db) {
		if r[0] >= r[1] {
			t.Errorf("comparison violated: %v", r)
		}
	}
	qn := MustParseCQ("Q(x) :- E(x,y), !B(x).")
	for _, r := range qn.EvalNaive(db) {
		if r[0] == 1 || r[0] == 3 {
			t.Errorf("negation violated: %v", r)
		}
	}
}

func TestUCQParseAndEval(t *testing.T) {
	u := MustParseUCQ("Q(x) :- B(x); Q(x) :- E(x,y), E(y,x).")
	if len(u.Disjuncts) != 2 || u.Arity() != 1 {
		t.Fatalf("UCQ parse wrong: %s", u)
	}
	db := smallGraph()
	res := u.EvalNaive(db)
	// B = {1,3}; no symmetric edge pairs in smallGraph.
	if len(res) != 2 {
		t.Errorf("UCQ eval: want 2 answers, got %v", res)
	}
	if _, err := ParseUCQ("Q(x) :- B(x); Q(x,y) :- E(x,y)."); err == nil {
		t.Errorf("mixed arities must be rejected")
	}
}

func TestCQStringRoundTrip(t *testing.T) {
	src := "Q(x,y) :- E(x,z), S(z,y), !T(z), x != y."
	q := MustParseCQ(src)
	q2 := MustParseCQ(q.String())
	if q2.String() != q.String() {
		t.Errorf("round trip: %q vs %q", q.String(), q2.String())
	}
}

func TestFormulaParseEvalBasics(t *testing.T) {
	db := smallGraph()
	cases := []struct {
		src  string
		want bool
	}{
		{"exists x. B(x)", true},
		{"forall x. B(x)", false},
		{"exists x,y. (E(x,y) and E(y,x))", false},
		{"exists x. (B(x) and exists y. E(x,y))", true},
		{"forall x. (B(x) -> exists y. E(x,y))", true},
		{"exists x. x = 3", true},
		{"exists x. (x < 1 or x = 1)", true},
		{"not exists x. E(x,x)", true},
		{"true", true},
		{"false", false},
		{"exists set X. forall x. (B(x) -> x in X)", true},
		{"forall set X. exists x. x in X", false}, // empty set fails
	}
	for _, c := range cases {
		f := MustParseFormula(c.src)
		if got := Eval(db, f, Interpretation{}); got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestFreeVarsAndSetVars(t *testing.T) {
	f := MustParseFormula("exists y. (E(x,y) and y in X and forall z. z in Y)")
	if got := FreeVars(f); len(got) != 1 || got[0] != "x" {
		t.Errorf("FreeVars = %v", got)
	}
	sv := FreeSetVars(f)
	if len(sv) != 2 || sv[0] != "X" || sv[1] != "Y" {
		t.Errorf("FreeSetVars = %v", sv)
	}
	g := MustParseFormula("exists set X. x in X")
	if got := FreeSetVars(g); len(got) != 0 {
		t.Errorf("bound set var leaked: %v", got)
	}
}

func TestQuantifierRankAndSize(t *testing.T) {
	f := MustParseFormula("exists x. (E(x,y) and forall z. exists w. E(z,w))")
	if got := QuantifierRank(f); got != 3 {
		t.Errorf("rank = %d, want 3", got)
	}
	if Size(f) <= 0 {
		t.Errorf("size must be positive")
	}
}

func TestEvalFOFreeVariables(t *testing.T) {
	db := smallGraph()
	f := MustParseFormula("exists y. (E(x,y) and B(y))")
	res := EvalFO(db, f, []string{"x"})
	// x with an edge into B={1,3}: E(2,3), E(1,3)→x=1? E(1,3) yes so x=1;
	// E(2,3)→x=2; E(5,1)→x=5; E(4,5)? 5∉B. x∈{1,2,5}... also E(1,2)? 2∉B.
	want := map[database.Value]bool{1: true, 2: true, 5: true}
	if len(res) != len(want) {
		t.Fatalf("EvalFO: got %v", res)
	}
	for _, r := range res {
		if !want[r[0]] {
			t.Errorf("unexpected answer %v", r)
		}
	}
}

func TestCountMixed(t *testing.T) {
	db := database.NewDatabase()
	u := database.NewRelation("U", 1)
	u.InsertValues(1)
	u.InsertValues(2)
	db.AddRelation(u)
	// |{(X) : X ⊆ {1,2} and forall x (x in X -> U(x))}| = all 4 subsets.
	f := MustParseFormula("forall x. (x in X -> U(x))")
	if got := CountMixed(db, f); got != 4 {
		t.Errorf("CountMixed = %d, want 4", got)
	}
	// Pairs (x, X) with x in X: sum over x of 2^(n-1) = 2·2 = 4.
	g := MustParseFormula("x in X")
	if got := CountMixed(db, g); got != 4 {
		t.Errorf("CountMixed member = %d, want 4", got)
	}
}

// CQToFormula must agree with the naive CQ evaluator.
func TestCQToFormulaEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	queries := []*CQ{
		MustParseCQ("Q(x,y) :- E(x,z), E(z,y)."),
		MustParseCQ("Q(x) :- E(x,y), B(y), x != y."),
		MustParseCQ("Q(x) :- E(x,y), !B(y)."),
		MustParseCQ("Q() :- E(x,y), E(y,z), E(z,x)."),
	}
	for trial := 0; trial < 30; trial++ {
		db := database.NewDatabase()
		e := database.NewRelation("E", 2)
		for i := 0; i < 8; i++ {
			e.InsertValues(database.Value(rng.Intn(4)+1), database.Value(rng.Intn(4)+1))
		}
		e.Dedup()
		db.AddRelation(e)
		b := database.NewRelation("B", 1)
		for i := 0; i < 2; i++ {
			b.InsertValues(database.Value(rng.Intn(4) + 1))
		}
		b.Dedup()
		db.AddRelation(b)

		for _, q := range queries {
			f := CQToFormula(q)
			got := EvalFO(db, f, q.Head)
			want := q.EvalNaive(db)
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: formula %d answers, naive %d", trial, q, len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("trial %d %s: mismatch %v vs %v", trial, q, got[i], want[i])
				}
			}
		}
	}
}

func TestHypergraphConstruction(t *testing.T) {
	q := MustParseCQ("Q(x,y) :- E(x,z), E(z,y).")
	h := q.Hypergraph()
	if len(h.Edges) != 2 {
		t.Fatalf("hypergraph edges: %v", h.Edges)
	}
	if !q.IsAcyclic() {
		t.Errorf("path query must be acyclic")
	}
	if q.IsFreeConnex() {
		t.Errorf("Π-shaped query must not be free-connex")
	}
	if got := q.QuantifiedStarSize(); got != 2 {
		t.Errorf("star size of Π = %d, want 2", got)
	}
	tri := MustParseCQ("Q() :- E(x,y), E(y,z), E(z,x).")
	if tri.IsAcyclic() {
		t.Errorf("triangle must be cyclic")
	}
	// Head variable not occurring in any atom becomes an isolated vertex.
	iso := MustParseCQ("Q(x,w) :- E(x,y).")
	vs := iso.Hypergraph().Vertices()
	found := false
	for _, v := range vs {
		if v == "w" {
			found = true
		}
	}
	if !found {
		t.Errorf("isolated head variable missing from hypergraph: %v", vs)
	}
}

func TestCQSize(t *testing.T) {
	q := MustParseCQ("Q(x,y) :- E(x,z), S(z,y), x != y.")
	if q.Size() <= 0 {
		t.Errorf("size must be positive")
	}
	q2 := MustParseCQ("Q(x,y) :- E(x,z), S(z,y), T(x,y,z), x != y.")
	if q2.Size() <= q.Size() {
		t.Errorf("bigger query must have bigger size")
	}
}

func TestNormalizeSpaces(t *testing.T) {
	if normalizeSpaces("  a   b\nc ") != "a b c" {
		t.Errorf("normalizeSpaces broken")
	}
}

func TestFormulaStrings(t *testing.T) {
	for _, src := range []string{
		"exists x. (E(x,y) and not x = y)",
		"forall set X. (x in X or B(x))",
		"exists x. (E(x,x) or x != 3)",
	} {
		f := MustParseFormula(src)
		// The printed form must re-parse to something that prints the same.
		g := MustParseFormula(f.String())
		if f.String() != g.String() {
			t.Errorf("print/reparse unstable: %q vs %q", f.String(), g.String())
		}
	}
}
