package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/delay"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 40, 41}, {1<<63 - 1, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		if c.bucket > 0 {
			if lo, hi := BucketLo(c.bucket), BucketHi(c.bucket); c.v < lo || c.v > hi {
				t.Errorf("value %d outside its bucket edges [%d, %d]", c.v, lo, hi)
			}
		}
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 15 || h.Max() != 5 {
		t.Fatalf("count/sum/max = %d/%d/%d, want 5/15/5", h.Count(), h.Sum(), h.Max())
	}
	if m := h.Mean(); m != 3 {
		t.Errorf("mean = %v, want 3", m)
	}
	// Quantiles are bucket upper edges capped at the exact max: samples
	// {1,2,3,4,5} land in buckets [1,1] [2,3] [2,3] [4,7] [4,7].
	if p50 := h.Quantile(0.5); p50 != 3 {
		t.Errorf("p50 = %d, want 3 (upper edge of the [2,3] bucket)", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 5 {
		t.Errorf("p99 = %d, want 5 (bucket edge 7 capped at max)", p99)
	}
	if q := h.Quantile(1); q != 5 {
		t.Errorf("q=1 quantile = %d, want max 5", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram p99 = %d, want 0", got)
	}
}

// TestHistogramConcurrent exercises the lock-free Observe path under -race:
// the totals must reflect every sample regardless of interleaving.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	want := int64(workers*per) * int64(workers*per-1) / 2
	if h.Sum() != want {
		t.Errorf("sum = %d, want %d", h.Sum(), want)
	}
	if h.Max() != workers*per-1 {
		t.Errorf("max = %d, want %d", h.Max(), workers*per-1)
	}
}

func TestObserverSpansAndSnapshot(t *testing.T) {
	o := New()
	base := o.epoch
	o.ObserveSpan("semijoin-reduce", 1, 0, 10, base.Add(5*time.Millisecond), base.Add(8*time.Millisecond))
	o.ObserveSpan("semijoin-reduce", 2, 10, 20, base.Add(6*time.Millisecond), base.Add(9*time.Millisecond))
	o.ObserveSpan("tree-build", -1, 0, 0, base, base.Add(1*time.Millisecond))
	o.ObserveDelay(3, 100)
	o.ObserveDelay(5, 200)

	spans := o.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Phase != "tree-build" {
		t.Errorf("spans not sorted by start: first is %q", spans[0].Phase)
	}

	tr := o.Snapshot("test")
	if tr.DelaySteps.Count != 2 || tr.DelaySteps.Max != 5 {
		t.Errorf("delay histogram: count=%d max=%d, want 2/5", tr.DelaySteps.Count, tr.DelaySteps.Max)
	}
	byPhase := map[string]PhaseSummary{}
	for _, p := range tr.Phases {
		byPhase[p.Phase] = p
	}
	sj := byPhase["semijoin-reduce"]
	if sj.Spans != 2 || sj.Workers != 2 {
		t.Errorf("semijoin-reduce summary %+v, want 2 spans from 2 workers", sj)
	}
	if sj.WallNS != (6 * time.Millisecond).Nanoseconds() {
		t.Errorf("semijoin-reduce wall = %d ns, want 6ms", sj.WallNS)
	}
}

func TestNilObserverSafe(t *testing.T) {
	var o *Observer
	o.ObserveDelay(1, 1)
	o.ObserveSpan("x", 0, 0, 0, time.Time{}, time.Time{})
	if s := o.Spans(); s != nil {
		t.Errorf("nil observer spans = %v, want nil", s)
	}
	if tr := o.Snapshot("nil"); tr.Label != "nil" {
		t.Errorf("nil observer snapshot label = %q", tr.Label)
	}
}

func TestWriteTraceRoundTrip(t *testing.T) {
	o := New()
	c := &delay.Counter{}
	c.SetSink(o)
	c.MarkStart()
	c.Tick(4)
	c.MarkOutput()
	sp := c.StartSpan("enumerate", -1)
	c.Tick(2)
	sp.End()

	var buf bytes.Buffer
	if err := WriteTrace(&buf, []Trace{o.Snapshot("rt")}); err != nil {
		t.Fatal(err)
	}
	var got []Trace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 1 || got[0].Label != "rt" {
		t.Fatalf("round trip lost the trace: %+v", got)
	}
	if got[0].DelaySteps.Count != 1 || got[0].DelaySteps.Max != 4 {
		t.Errorf("delay histogram after round trip: %+v", got[0].DelaySteps)
	}
	if len(got[0].Spans) != 1 || got[0].Spans[0].EndSteps-got[0].Spans[0].StartSteps != 2 {
		t.Errorf("span after round trip: %+v", got[0].Spans)
	}
}

// TestPublishReentrant: publishing a second observer under the same expvar
// name must replace the first, not panic like expvar.Publish.
func TestPublishReentrant(t *testing.T) {
	a, b := New(), New()
	a.ObserveDelay(1, 1)
	a.Publish("obs_test_reentrant")
	b.ObserveDelay(2, 2)
	b.ObserveDelay(3, 3)
	b.Publish("obs_test_reentrant") // must not panic
	pubMu.Lock()
	cur := pubObs["obs_test_reentrant"]
	pubMu.Unlock()
	if cur != b {
		t.Fatal("second Publish did not replace the observer")
	}
	if got := cur.Snapshot("x").DelaySteps.Count; got != 2 {
		t.Errorf("published snapshot count = %d, want 2 (observer b)", got)
	}
}

// TestDisabledPathAllocs pins the contract in the package comment: with no
// sink attached (the default for every engine call today), the observability
// hooks on the enumeration hot path cost zero allocations.
func TestDisabledPathAllocs(t *testing.T) {
	c := &delay.Counter{} // no sink
	var nilC *delay.Counter
	allocs := testing.AllocsPerRun(1000, func() {
		c.MarkStart()
		c.Tick(1)
		c.MarkOutput()
		sp := c.StartSpan("enumerate", -1)
		c.Tick(1)
		sp.End()
		nilC.MarkOutput()
		nilC.StartSpan("x", 0).End()
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestHistogramString keeps the log format stable enough to grep.
func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(4)
	if s := h.String(); !strings.Contains(s, "n=1") || !strings.Contains(s, "max=4") {
		t.Errorf("String() = %q", s)
	}
}
