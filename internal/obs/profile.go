package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile starts a CPU profile writing to path and returns the
// function that stops it and closes the file. It is the shared pprof
// wiring of cmd/qbench and cmd/qeval.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile runs a GC and writes the heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write heap profile: %w", err)
	}
	return f.Close()
}
