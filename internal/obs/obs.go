package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/delay"
)

// Span is one completed phase span on the trace timeline. Times are
// nanoseconds relative to the Observer's epoch (New), so spans from
// different workers share one clock; steps are counter readings at the
// boundaries. In a parallel engine a span's step delta includes ticks from
// concurrently running workers — the wall interval, not the step delta, is
// what belongs to the worker.
type Span struct {
	Phase      string `json:"phase"`
	Worker     int    `json:"worker"` // -1 for single-threaded phases
	StartNS    int64  `json:"start_ns"`
	EndNS      int64  `json:"end_ns"`
	StartSteps int64  `json:"start_steps"`
	EndSteps   int64  `json:"end_steps"`
}

// Observer implements delay.Sink: it accumulates the per-output delay
// histograms (counted steps and wall nanoseconds) and the phase-span
// timeline of one instrumented run. All methods are goroutine-safe and
// nil-receiver-safe, so `var o *Observer` disables observation without a
// second code path.
type Observer struct {
	// DelaySteps and DelayNS histogram every gap between consecutive
	// enumeration emissions, in counted RAM steps and wall nanoseconds.
	DelaySteps Histogram
	DelayNS    Histogram

	epoch time.Time

	mu    sync.Mutex
	spans []Span
}

// The compile-time contract with internal/delay.
var _ delay.Sink = (*Observer)(nil)

// New creates an Observer; its epoch (span time zero) is now.
func New() *Observer {
	return &Observer{epoch: time.Now()}
}

// ObserveDelay implements delay.Sink.
func (o *Observer) ObserveDelay(steps, wallNS int64) {
	if o == nil {
		return
	}
	o.DelaySteps.Observe(steps)
	o.DelayNS.Observe(wallNS)
}

// ObserveSpan implements delay.Sink.
func (o *Observer) ObserveSpan(phase string, worker int, startSteps, endSteps int64, start, end time.Time) {
	if o == nil {
		return
	}
	s := Span{
		Phase:      phase,
		Worker:     worker,
		StartNS:    start.Sub(o.epoch).Nanoseconds(),
		EndNS:      end.Sub(o.epoch).Nanoseconds(),
		StartSteps: startSteps,
		EndSteps:   endSteps,
	}
	o.mu.Lock()
	o.spans = append(o.spans, s)
	o.mu.Unlock()
}

// Spans returns a copy of the recorded spans in start order.
func (o *Observer) Spans() []Span {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	out := append([]Span(nil), o.spans...)
	o.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNS < out[j].StartNS })
	return out
}

// PhaseSummary aggregates the spans of one phase.
type PhaseSummary struct {
	Phase   string `json:"phase"`
	Spans   int    `json:"spans"`
	Workers int    `json:"workers"` // distinct reporting workers
	WallNS  int64  `json:"wall_ns"` // summed span wall time (overlaps counted once per span)
}

// Trace is the machine-readable dump of one Observer, written by
// `qbench -trace` / `qeval -trace` and consumed by humans, plotting
// scripts, and cmd/benchgate's p99 gate.
type Trace struct {
	Label       string            `json:"label,omitempty"`
	DelaySteps  HistogramSnapshot `json:"delay_steps"`
	DelayWallNS HistogramSnapshot `json:"delay_wall_ns"`
	Phases      []PhaseSummary    `json:"phases,omitempty"`
	Spans       []Span            `json:"spans,omitempty"`
}

// Snapshot dumps the observer under the given label.
func (o *Observer) Snapshot(label string) Trace {
	if o == nil {
		return Trace{Label: label}
	}
	spans := o.Spans()
	byPhase := map[string]*PhaseSummary{}
	workers := map[string]map[int]bool{}
	var order []string
	for _, s := range spans {
		p, ok := byPhase[s.Phase]
		if !ok {
			p = &PhaseSummary{Phase: s.Phase}
			byPhase[s.Phase] = p
			workers[s.Phase] = map[int]bool{}
			order = append(order, s.Phase)
		}
		p.Spans++
		p.WallNS += s.EndNS - s.StartNS
		workers[s.Phase][s.Worker] = true
	}
	tr := Trace{
		Label:       label,
		DelaySteps:  o.DelaySteps.Snapshot(),
		DelayWallNS: o.DelayNS.Snapshot(),
		Spans:       spans,
	}
	for _, ph := range order {
		p := byPhase[ph]
		p.Workers = len(workers[ph])
		tr.Phases = append(tr.Phases, *p)
	}
	return tr
}

// WriteTrace JSON-encodes traces (indented) to w.
func WriteTrace(w io.Writer, traces []Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traces)
}

// --- expvar hook ------------------------------------------------------

var (
	pubMu  sync.Mutex
	pubObs = map[string]*Observer{}
)

// Publish exposes the observer's snapshot as the expvar variable `name`
// (reachable via the standard /debug/vars endpoint next to pprof). Unlike
// expvar.Publish it is re-entrant: publishing a second observer under the
// same name atomically replaces the first instead of panicking, so a
// long-running process can rotate observers per query batch.
func (o *Observer) Publish(name string) {
	pubMu.Lock()
	defer pubMu.Unlock()
	if _, ok := pubObs[name]; !ok {
		n := name
		expvar.Publish(n, expvar.Func(func() interface{} {
			pubMu.Lock()
			cur := pubObs[n]
			pubMu.Unlock()
			return cur.Snapshot(n)
		}))
	}
	pubObs[name] = o
}
