// Package obs is the per-query observability layer: log-bucketed delay
// histograms over counted RAM steps and wall nanoseconds, phase spans with
// per-worker attribution, and trace/expvar/pprof export hooks.
//
// The paper's headline claims are *per-output delay* bounds (constant-delay
// enumeration, Theorems 3.2 and 4.6) and *phase-separated* costs (linear
// preprocessing vs. delay). Max-delay spot checks cannot distinguish a
// constant-delay enumerator from an amortized one whose worst gap happens
// to be small on one instance; the delay *distribution* can (see Segoufin's
// enumeration-complexity survey). An Observer attaches to a delay.Counter
// as its Sink; a nil Observer — or no sink at all — disables everything at
// the cost of one branch, and the disabled enumeration hot loop is pinned
// allocation-free by TestDisabledPathAllocs.
package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// numBuckets covers every int64: bucket 0 holds values ≤ 0 and bucket b
// (1 ≤ b ≤ 63) holds values in [2^(b-1), 2^b).
const numBuckets = 64

// Histogram is a fixed-size log₂-bucketed histogram of int64 samples.
// Observe is lock-free and goroutine-safe, so one histogram may be fed by
// the workers of a parallel engine; the bucket counts depend only on the
// multiset of observed values, never on interleaving.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64 // max of samples and 0 (delays are never negative)
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // 1 → 1, 2..3 → 2, 4..7 → 3, ...
}

// BucketLo returns the smallest value routed to bucket b (minInt64 for 0).
func BucketLo(b int) int64 {
	if b <= 0 {
		return 0 // reported lower edge; bucket 0 also absorbs negatives
	}
	return 1 << (b - 1)
}

// BucketHi returns the largest value routed to bucket b.
func BucketHi(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 63 {
		return 1<<63 - 1
	}
	return 1<<b - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.counts[bucketOf(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the mean sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1): the
// upper edge of the first bucket whose cumulative count reaches q·Count,
// capped at the exact maximum. Counted-step delays are deterministic, so
// for them the bound is reproducible run to run.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	target := int64(q * float64(n))
	if float64(target) < q*float64(n) {
		target++
	}
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < numBuckets; b++ {
		cum += h.counts[b].Load()
		if cum >= target {
			hi := BucketHi(b)
			if m := h.max.Load(); m < hi {
				return m
			}
			return hi
		}
	}
	return h.max.Load()
}

// QuantileInterpolated estimates the q-quantile (0 < q ≤ 1) by linear
// interpolation within the winning log₂ bucket, assuming samples are
// uniformly spread across it. Unlike Quantile it is an estimate, not an
// upper bound — but it moves when the underlying distribution moves inside
// a bucket, which is what a latency regression gate needs: with 2× bucket
// edges, Quantile pins p50/p99 to the same edge across runs whose real
// latencies differ by up to 2×. The result is still capped at the exact
// observed maximum and floored at the bucket's lower edge.
func (h *Histogram) QuantileInterpolated(q float64) int64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	target := int64(q * float64(n))
	if float64(target) < q*float64(n) {
		target++
	}
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < numBuckets; b++ {
		c := h.counts[b].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum < target {
			continue
		}
		if b == 0 {
			return 0
		}
		lo, hi := BucketLo(b), BucketHi(b)
		if m := h.max.Load(); m < hi {
			hi = m
		}
		if hi <= lo {
			return lo
		}
		// rank within this bucket, in (0, 1]: rank 1 of c lands just above
		// lo, rank c lands on hi.
		frac := float64(target-(cum-c)) / float64(c)
		v := lo + int64(frac*float64(hi-lo))
		if v > hi {
			v = hi
		}
		return v
	}
	return h.max.Load()
}

// Bucket is one nonzero histogram bucket in a snapshot.
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON-ready dump of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	P50     int64    `json:"p50"`
	P90     int64    `json:"p90"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot dumps the histogram. Concurrent Observe calls may or may not be
// included; the result is internally consistent for a quiesced histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	for b := 0; b < numBuckets; b++ {
		if c := h.counts[b].Load(); c > 0 {
			s.Buckets = append(s.Buckets, Bucket{Lo: BucketLo(b), Hi: BucketHi(b), Count: c})
		}
	}
	return s
}

// String renders a compact one-line summary, for log output.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50≤%d p99≤%d max=%d",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}
