package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/database"
	"repro/internal/serve"
)

// exampleDB carries the relations the examples/ queries mention, so seed
// bodies built from those queries exercise real execution paths, not just
// parse errors.
func exampleDB() *database.Database {
	db := database.NewDatabase()
	bought := database.NewRelation("bought", 2)
	category := database.NewRelation("category", 2)
	follows := database.NewRelation("follows", 2)
	verified := database.NewRelation("verified", 1)
	for i := 1; i <= 8; i++ {
		bought.Insert(database.Tuple{database.Value(i), database.Value(i % 4)})
		category.Insert(database.Tuple{database.Value(i % 4), database.Value(i % 3)})
		follows.Insert(database.Tuple{database.Value(i), database.Value((i + 1) % 8)})
		if i%2 == 0 {
			verified.Insert(database.Tuple{database.Value(i)})
		}
	}
	db.AddRelation(bought)
	db.AddRelation(category)
	db.AddRelation(follows)
	db.AddRelation(verified)
	return db
}

// FuzzServeRequest throws arbitrary paths and bodies at the request
// surface: malformed JSON, hostile query text, oversized and forged
// cursors, absurd limits. The server must never panic, must always answer
// with well-formed JSON (NDJSON in stream mode), and must never map
// garbage onto 5xx — the only server-side statuses are the deadline and
// admission ones, which valid traffic alone can trigger.
func FuzzServeRequest(f *testing.F) {
	quickstart := "Q(who, kind) :- bought(who, p), category(p, kind)."
	social := "Q(a,b) :- follows(a,b), verified(b), follows(b,c)."

	add := func(path string, body interface{}) {
		buf, err := json.Marshal(body)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(path, string(buf))
	}
	add("/v1/decide", map[string]interface{}{"query": quickstart})
	add("/v1/count", map[string]interface{}{"query": social})
	add("/v1/enumerate", map[string]interface{}{"query": quickstart, "limit": 2})
	add("/v1/enumerate", map[string]interface{}{"query": social, "stream": true})
	add("/v1/enumerate", map[string]interface{}{"query": quickstart, "cursor": "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"})
	add("/v1/enumerate", map[string]interface{}{"query": quickstart, "cursor": strings.Repeat("x", 2048)})
	add("/v1/enumerate", map[string]interface{}{"query": quickstart, "limit": -5, "deadline_ms": -1})
	add("/v1/prepare", map[string]interface{}{"query": "Q() :- bought(x, y)."})
	add("/v1/mutate", map[string]interface{}{"pred": "bought", "op": "insert", "tuple": []int64{9, 1}})
	add("/v1/mutate", map[string]interface{}{"pred": "nope", "op": "delete", "tuple": []int64{}})
	f.Add("/v1/decide", `{"query": "Q(x) :- `)
	f.Add("/v1/enumerate", `{"query": 17}`)
	f.Add("/v1/other", `{}`)
	f.Add("/v1/decide", `null`)
	f.Add("/v1/decide", strings.Repeat("[", 1<<10))

	db := exampleDB()
	h := serve.New(db, nil, serve.Config{
		CursorKey:    bytes.Repeat([]byte{7}, 32),
		MaxBodyBytes: 1 << 16,
		MaxPageSize:  64,
	}).Handler()

	f.Fuzz(func(t *testing.T, path, body string) {
		if len(path) > 256 {
			path = path[:256]
		}
		if !strings.HasPrefix(path, "/") || strings.ContainsAny(path, " \x00") {
			path = "/v1/enumerate"
		}
		// httptest.NewRequest panics on URLs the HTTP layer would already
		// have rejected before routing; only well-formed paths reach the mux.
		if _, err := url.ParseRequestURI(path); err != nil {
			path = "/v1/enumerate"
		}
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic

		switch rec.Code {
		case 200, 400, 410, 413:
		case 301, 307, 308, 404, 405:
			// The mux canonicalizes paths with redirects and answers
			// unknown paths/methods with plain text; only the protocol
			// endpoints promise JSON.
			return
		case 429, 504:
			t.Fatalf("single-threaded fuzz request hit %d on %q", rec.Code, path)
		default:
			t.Fatalf("unexpected status %d for path %q body %q", rec.Code, path, body)
		}
		if rec.Body.Len() == 0 {
			return
		}
		// Every response line must be JSON (one line for unary responses,
		// many for NDJSON streams).
		dec := json.NewDecoder(bytes.NewReader(rec.Body.Bytes()))
		for dec.More() {
			var v interface{}
			if err := dec.Decode(&v); err != nil {
				t.Fatalf("non-JSON response for path %q body %q: %v\n%s", path, body, err, rec.Body.String())
			}
		}
	})
}
