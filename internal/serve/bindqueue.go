package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/plan"
)

// The bind queue is the slow lane of the serving path. Warm requests — the
// fast lane — probe the cache under the database read lock and execute
// immediately; a cold request would previously run its bind inline while
// occupying an admission slot, so a storm of cold binds (after a burst of
// mutations, or a flood of novel queries) could tie up every slot in
// multi-millisecond bind work and starve sub-microsecond warm traffic.
//
// Instead, cold requests drop the read lock and come here:
//
//   - Duplicate cold binds for the same (fingerprint, generation) coalesce
//     onto one in-flight bind; joiners just wait for its completion.
//   - At most BindWorkers binds execute concurrently. An uncontended cold
//     bind runs synchronously in the requesting goroutine (so a single
//     client never pays queueing machinery, and a single-threaded caller
//     can never be shed or time out here); beyond that, flights queue.
//   - The queue is bounded (BindQueueDepth) and deadline-aware: a request
//     whose deadline cannot survive the estimated wait — an EWMA of
//     observed bind costs times the queue it would sit behind — is shed
//     immediately with 503 + Retry-After instead of timing out after
//     holding a slot. Shedding is a mutex-guarded arithmetic check, well
//     under a millisecond.
//
// A flight, once started or queued, always runs to completion even if
// every waiter's deadline expires: its result lands in the plan cache, so
// the work warms the next probe instead of being wasted. That also means
// no goroutine ever blocks on an abandoned channel — executors are spawned
// per flight and exit when it completes, so an idle server holds no
// bind-lane goroutines at all.
type bindQueue struct {
	s *Server

	mu      sync.Mutex
	active  int                     // binds executing now (≤ BindWorkers)
	queued  []*bindFlight           // FIFO, waiting for a worker slot
	flights map[bindKey]*bindFlight // every unfinished flight, for coalescing
	ewmaNS  int64                   // smoothed observed bind cost; 0 until first bind
}

// bindKey identifies one bind: a plan at a database generation. A mutation
// moves the generation, so binds against the old world never coalesce with
// binds against the new one.
type bindKey struct {
	fp  uint64
	gen uint64
}

type bindFlight struct {
	key  bindKey
	p    *plan.Plan
	done chan struct{}
	err  error // set before done is closed
}

// shedError is returned to waiters the queue refuses; the handler maps it
// to 503 with the Retry-After hint.
type shedError struct {
	retryAfter time.Duration
	detail     string
}

func (e *shedError) Error() string { return "bind queue overloaded: " + e.detail }

func newBindQueue(s *Server) *bindQueue {
	return &bindQueue{s: s, flights: make(map[bindKey]*bindFlight)}
}

// bind ensures a bound statement for p at the current generation exists in
// the cache (or that the attempt failed), subject to coalescing, queueing,
// and shedding. The caller must NOT hold the database lock. A nil return
// means some flight for this key completed without error — the caller
// re-probes the cache under the read lock; the statement may have gone
// stale again in between, in which case the caller's retry loop comes back
// here with the new generation.
func (q *bindQueue) bind(ctx context.Context, p *plan.Plan) error {
	key := bindKey{fp: p.Fingerprint(), gen: q.s.db.Generation()}
	q.mu.Lock()
	if fl, ok := q.flights[key]; ok {
		q.mu.Unlock()
		q.s.m.bindsCoalesced.Add(1)
		return q.wait(ctx, fl)
	}
	if q.active < q.s.cfg.BindWorkers {
		// Uncontended: run the bind in this goroutine. No queue, no
		// deadline arithmetic — the flight is registered first so
		// concurrent duplicates coalesce onto it.
		fl := &bindFlight{key: key, p: p, done: make(chan struct{})}
		q.flights[key] = fl
		q.active++
		q.mu.Unlock()
		q.execute(fl)
		return fl.err
	}
	// All workers busy: shed or queue.
	depth := len(q.queued)
	if depth >= q.s.cfg.BindQueueDepth {
		q.mu.Unlock()
		return q.shed(0, fmt.Sprintf("bind queue full (%d deep)", depth))
	}
	if dl, ok := ctx.Deadline(); ok && q.ewmaNS > 0 {
		// The queue ahead drains through BindWorkers workers, then our own
		// bind runs: estimate (queued/workers + 1) bind costs.
		est := time.Duration(q.ewmaNS) * time.Duration(depth/q.s.cfg.BindWorkers+1)
		if time.Until(dl) < est {
			q.mu.Unlock()
			return q.shed(est, fmt.Sprintf("deadline cannot survive estimated bind wait %v", est))
		}
	}
	fl := &bindFlight{key: key, p: p, done: make(chan struct{})}
	q.flights[key] = fl
	q.queued = append(q.queued, fl)
	q.s.m.bindsQueued.Add(1)
	q.mu.Unlock()
	return q.wait(ctx, fl)
}

// shed rejects a request without queueing it. retryAfter hints when the
// backlog should have drained; zero (queue full with no cost estimate yet)
// falls back to one second.
func (q *bindQueue) shed(est time.Duration, detail string) error {
	q.s.m.shed503.Add(1)
	now := time.Now()
	q.s.cfg.Obs.ObserveSpan("bind-shed", -1, 0, 0, now, now)
	ra := est
	if ra < time.Second {
		ra = time.Second
	}
	return &shedError{retryAfter: ra, detail: detail}
}

// execute runs one flight: the bind itself happens under the database read
// lock (a mutation in progress blocks it, exactly like any query), through
// the cache's own singleflight prepare, so the result is shared with any
// non-serving-path caller too.
func (q *bindQueue) execute(fl *bindFlight) {
	start := time.Now()
	q.s.dbMu.RLock()
	_, err := q.s.cache.PreparePlan(fl.p, q.s.db, nil)
	q.s.dbMu.RUnlock()
	end := time.Now()
	cost := end.Sub(start).Nanoseconds()
	fl.err = err
	q.s.m.bindCost.Observe(cost)
	q.s.cfg.Obs.ObserveSpan("bind-exec", -1, 0, 0, start, end)

	q.mu.Lock()
	if q.ewmaNS == 0 {
		q.ewmaNS = cost
	} else {
		q.ewmaNS = (3*q.ewmaNS + cost) / 4
	}
	delete(q.flights, fl.key)
	q.active--
	var next *bindFlight
	if q.active < q.s.cfg.BindWorkers && len(q.queued) > 0 {
		next = q.queued[0]
		q.queued = q.queued[1:]
		q.active++
	}
	q.mu.Unlock()
	close(fl.done)
	if next != nil {
		go q.execute(next)
	}
}

// wait blocks a joiner (or the creator of a queued flight) until the
// flight completes or the request deadline expires. The flight itself is
// never cancelled — see the type comment.
func (q *bindQueue) wait(ctx context.Context, fl *bindFlight) error {
	start := time.Now()
	select {
	case <-fl.done:
		end := time.Now()
		q.s.m.bindWait.Observe(end.Sub(start).Nanoseconds())
		q.s.cfg.Obs.ObserveSpan("bind-queue-wait", -1, 0, 0, start, end)
		return fl.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// queueDepth reports the instantaneous queue length (stats only).
func (q *bindQueue) queueDepth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queued)
}

// ewma reports the current bind-cost estimate in nanoseconds (stats only).
func (q *bindQueue) ewma() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ewmaNS
}
