package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/plan"
)

func compileOn(t *testing.T, s *Server, src string) *plan.Plan {
	t.Helper()
	q, err := logic.ParseCQ(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.cache.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// bindChainDB builds the same A/B chain the external tests use, in-package:
// big enough that a cold bind takes real time, so concurrent requests
// genuinely overlap with it.
func bindChainDB(n int) *database.Database {
	db := database.NewDatabase()
	a := database.NewRelation("A", 2)
	b := database.NewRelation("B", 2)
	for i := 0; i < n; i++ {
		a.Insert(database.Tuple{database.Value(i), database.Value(i + 1)})
		b.Insert(database.Tuple{database.Value(i), database.Value(i + 1)})
	}
	db.AddRelation(a)
	db.AddRelation(b)
	return db
}

// TestBindQueueShedDecisions drives the two shed conditions directly
// against a saturated queue (state seeded by hand — real saturation needs
// a bind storm, which the E23 harness provides): a full queue sheds
// unconditionally, and a deadline that cannot survive the EWMA wait
// estimate sheds even with queue space. Both decisions are pure in-memory
// checks — they must return immediately, not after any bind-scale delay.
func TestBindQueueShedDecisions(t *testing.T) {
	s := New(tinyDB(), nil, Config{BindWorkers: 1, BindQueueDepth: 2})
	p := compileOn(t, s, "Q(x) :- A(x).")

	// Queue full: workers busy and every queue slot taken.
	s.binds.mu.Lock()
	s.binds.active = s.cfg.BindWorkers
	s.binds.queued = make([]*bindFlight, s.cfg.BindQueueDepth)
	s.binds.mu.Unlock()
	start := time.Now()
	err := s.binds.bind(context.Background(), p)
	elapsed := time.Since(start)
	var sh *shedError
	if !errors.As(err, &sh) {
		t.Fatalf("full queue: got %v, want shedError", err)
	}
	if elapsed > 20*time.Millisecond {
		t.Fatalf("shed took %v; it must not wait on anything", elapsed)
	}
	if sh.retryAfter < time.Second {
		t.Fatalf("Retry-After hint %v, want ≥ 1s", sh.retryAfter)
	}

	// Deadline shed: queue has room, but the EWMA estimate says the bind
	// cannot finish inside the request's budget.
	s.binds.mu.Lock()
	s.binds.queued = nil
	s.binds.ewmaNS = (50 * time.Millisecond).Nanoseconds()
	s.binds.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := s.binds.bind(ctx, p); !errors.As(err, &sh) {
		t.Fatalf("doomed deadline: got %v, want shedError", err)
	}
	if got := s.m.shed503.Load(); got != 2 {
		t.Fatalf("shed counter %d, want 2", got)
	}
	// A generous deadline clears the estimate and queues... but with the
	// workers faked busy it would wait forever, so first release them.
	s.binds.mu.Lock()
	s.binds.active = 0
	s.binds.mu.Unlock()
	if err := s.binds.bind(context.Background(), p); err != nil {
		t.Fatalf("recovered queue refused a bind: %v", err)
	}
	if _, warm := s.cache.PeekPlan(p, s.db); !warm {
		t.Fatal("bind reported success but the statement is cold")
	}
}

// TestBindShedHTTP503 checks the wire mapping end to end: a request the
// bind lane sheds answers 503 with error bind_overloaded and a Retry-After
// header, and once the lane has capacity again the identical request binds
// and serves 200.
func TestBindShedHTTP503(t *testing.T) {
	s := New(tinyDB(), nil, Config{BindWorkers: 1})
	h := s.Handler()
	body := func() *bytes.Reader {
		buf, _ := json.Marshal(map[string]interface{}{
			"query": "Q(x) :- A(x).", "deadline_ms": 5,
		})
		return bytes.NewReader(buf)
	}

	s.binds.mu.Lock()
	s.binds.active = s.cfg.BindWorkers
	s.binds.ewmaNS = (50 * time.Millisecond).Nanoseconds()
	s.binds.mu.Unlock()

	start := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/decide", body()))
	elapsed := time.Since(start)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated bind lane answered %d, want 503\n%s", rec.Code, rec.Body.String())
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error != "bind_overloaded" {
		t.Fatalf("503 body %q (%v)", rec.Body.String(), err)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("503 without a usable Retry-After header (%q)", ra)
	}
	if elapsed > 20*time.Millisecond {
		t.Fatalf("shed response took %v; shedding must be immediate", elapsed)
	}
	if st := s.Stats(); st.Shed503 != 1 {
		t.Fatalf("shed_503 stat %d, want 1", st.Shed503)
	}

	s.binds.mu.Lock()
	s.binds.active = 0
	s.binds.mu.Unlock()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/decide", body()))
	if rec.Code != http.StatusOK {
		t.Fatalf("after capacity freed: %d, want 200\n%s", rec.Code, rec.Body.String())
	}
}

// TestBindCoalescing: N concurrent cold requests for the same query must
// cost exactly one bind — one flight holder, everyone else either joins
// the in-flight bind or probes warm after it lands. The plan cache's miss
// counter is the bind count.
func TestBindCoalescing(t *testing.T) {
	s := New(bindChainDB(60_000), nil, Config{})
	h := s.Handler()
	const n = 12
	var start, wg sync.WaitGroup
	start.Add(1)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf, _ := json.Marshal(map[string]interface{}{"query": "Q(x,y) :- A(x,y), B(y,z)."})
			rec := httptest.NewRecorder()
			start.Wait()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/decide", bytes.NewReader(buf)))
			codes[i] = rec.Code
		}(i)
	}
	start.Done()
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200", i, c)
		}
	}
	hits, misses := s.cache.Stats()
	if misses != 1 {
		t.Fatalf("%d concurrent cold requests cost %d binds, want exactly 1 (hits %d)", n, misses, hits)
	}
	t.Logf("coalescing: hits=%d misses=%d joined=%d queued=%d",
		hits, misses, s.m.bindsCoalesced.Load(), s.m.bindsQueued.Load())
}

// TestShedLeavesNoGoroutines storms a one-worker bind lane with distinct
// cold queries — real multi-millisecond binds over a 60k-row database —
// under doomed deadlines: contenders shed with 503, winners bind and serve
// 200, and afterwards the server must hold no bind-lane goroutines at all
// (executors exit with their flight; shed requests never spawn anything).
func TestShedLeavesNoGoroutines(t *testing.T) {
	s := New(bindChainDB(60_000), nil, Config{BindWorkers: 1, BindQueueDepth: 2})
	h := s.Handler()
	// Pessimistic cost estimate: any contended request with a small
	// deadline sheds instead of queueing (so no waiter can hit 504 and
	// the outcome split below is exact).
	s.binds.mu.Lock()
	s.binds.ewmaNS = (250 * time.Millisecond).Nanoseconds()
	s.binds.mu.Unlock()

	runtime.GC()
	before := runtime.NumGoroutine()

	// Distinct head projections give distinct fingerprints: every request
	// is its own cold bind, nothing coalesces.
	heads := []string{"x", "y", "x,y", "y,x", "x,z", "z,x", "y,z", "z,y"}
	const n = 48
	var wg sync.WaitGroup
	var mu sync.Mutex
	byCode := map[int]int{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := fmt.Sprintf("Q%d(%s) :- A(x,y), B(y,z).", i, heads[i%len(heads)])
			buf, _ := json.Marshal(map[string]interface{}{"query": q, "deadline_ms": 5})
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/decide", bytes.NewReader(buf)))
			mu.Lock()
			byCode[rec.Code]++
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	for code := range byCode {
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Fatalf("storm produced status %d (distribution %v)", code, byCode)
		}
	}
	if byCode[http.StatusServiceUnavailable] == 0 {
		t.Fatalf("48 doomed cold binds against one worker shed nothing: %v", byCode)
	}
	t.Logf("storm outcomes: %v, shed=%d", byCode, s.m.shed503.Load())

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("bind lane leaked goroutines: %d before storm, %d after", before, after)
	}
}

// TestHandleRoundTrip pins the handle codec: encode → decode is the
// identity, keys matter, and the version byte keeps handles and cursors
// from impersonating each other.
func TestHandleRoundTrip(t *testing.T) {
	key := bytes.Repeat([]byte{9}, 32)
	in := stmtHandle{fp: 0xfeedface00112233, gen: 77}
	out, err := decodeHandle(key, encodeHandle(key, in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v → %+v", in, out)
	}
	if _, err := decodeHandle(bytes.Repeat([]byte{8}, 32), encodeHandle(key, in)); err == nil {
		t.Fatal("handle verified under a different key")
	}
	// Version confusion: a cursor is not a handle and vice versa.
	if _, err := decodeHandle(key, encodeCursor(key, cursor{fp: 1, gen: 2, offset: 3})); err == nil {
		t.Fatal("cursor accepted as a handle")
	}
	if _, err := decodeCursor(key, encodeHandle(key, in)); err == nil {
		t.Fatal("handle accepted as a cursor")
	}
}
