// Package serve implements qservd's HTTP/JSON query-serving layer: prepared
// statements from a shared plan.Cache served to concurrent clients over a
// mutable database.
//
// The concurrency discipline is the one TestCacheRaceStress pins down at the
// plan layer: every query request holds a read lock on the database for its
// whole probe+execute window, and every mutation holds the write lock. Under
// the read lock the generation cannot move, so a cache probe hands back a
// Prepared that is fresh for the entire execution; ErrStalePlan is therefore
// unreachable in steady state, but the handlers still recover from it with a
// bounded re-probe as defense in depth.
//
// Enumeration is paginated behind opaque resumable cursors (see cursor.go).
// The server keeps no per-client state: a cursor is fingerprint + generation
// + offset, and the deterministic enumeration order of every engine makes
// the offset meaningful across requests — even after the cached Prepared
// was evicted and transparently re-bound. On the constant-delay route pages
// are served via the random-access engine's Get(i), so a page at offset k
// costs O(limit · log n) instead of O(k + limit).
package serve

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Config tunes the server. Zero values select the defaults.
type Config struct {
	// MaxInFlight bounds concurrently admitted requests; excess requests
	// are rejected immediately with 429 (open-loop clients must see
	// backpressure, not queueing). Default 64.
	MaxInFlight int
	// DefaultDeadline is the per-request execution budget when the request
	// does not carry deadline_ms. Default 5s.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines. Default 30s.
	MaxDeadline time.Duration
	// MaxBodyBytes bounds request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// MaxPageSize caps (and defaults) the enumerate page size. Default 1024.
	MaxPageSize int
	// MaxPrepared bounds the plan cache's prepared-statement set (LRU).
	// Default 256.
	MaxPrepared int
	// CursorKey authenticates cursors and statement handles. Nil draws a
	// random per-server key; tests inject a fixed key to exercise forgery
	// handling.
	CursorKey []byte
	// BindWorkers bounds concurrently executing cold binds in the bind
	// lane (see bindqueue.go). Default 2.
	BindWorkers int
	// BindQueueDepth bounds cold binds waiting for a bind worker; beyond
	// it requests are shed with 503. Default 32.
	BindQueueDepth int
	// InlineBind disables the bind lane: cold binds run inline inside the
	// request's read-lock window, occupying an admission slot for the
	// whole bind. This is the pre-queue behavior, kept as the overload
	// baseline for experiment E23.
	InlineBind bool
	// Obs, when non-nil, receives bind-lane spans (bind-exec,
	// bind-queue-wait, bind-shed) for offline analysis.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxPageSize <= 0 {
		c.MaxPageSize = 1024
	}
	if c.MaxPrepared <= 0 {
		c.MaxPrepared = 256
	}
	if c.BindWorkers <= 0 {
		c.BindWorkers = 2
	}
	if c.BindQueueDepth <= 0 {
		c.BindQueueDepth = 32
	}
	if len(c.CursorKey) == 0 {
		key := make([]byte, 32)
		if _, err := rand.Read(key); err != nil {
			panic(fmt.Sprintf("serve: cannot draw cursor key: %v", err))
		}
		c.CursorKey = key
	}
	return c
}

// Server serves prepared-statement queries over one database.
type Server struct {
	cfg   Config
	db    *database.Database
	dict  *database.Dictionary
	cache *plan.Cache
	dbMu  sync.RWMutex // read: query execution; write: mutation
	sem   chan struct{}
	m     *metrics
	binds *bindQueue
}

// New builds a Server over db. dict may be nil (numeric constants only).
func New(db *database.Database, dict *database.Dictionary, cfg Config) *Server {
	cfg = cfg.withDefaults()
	cache := plan.NewCache()
	cache.SetMaxPrepared(cfg.MaxPrepared)
	s := &Server{
		cfg:   cfg,
		db:    db,
		dict:  dict,
		cache: cache,
		sem:   make(chan struct{}, cfg.MaxInFlight),
		m:     newMetrics(),
	}
	s.binds = newBindQueue(s)
	return s
}

// Cache exposes the plan cache (tests inspect hit/refresh counters).
func (s *Server) Cache() *plan.Cache { return s.cache }

// Handler returns the HTTP mux: the /v1 query protocol plus health and
// stats. expvar/pprof wiring is left to the daemon binary, which mounts
// this next to the default serve mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/prepare", s.guard("prepare", s.handlePrepare))
	mux.HandleFunc("POST /v1/decide", s.guard("decide", s.handleDecide))
	mux.HandleFunc("POST /v1/count", s.guard("count", s.handleCount))
	mux.HandleFunc("POST /v1/enumerate", s.guard("enumerate", s.handleEnumerate))
	mux.HandleFunc("POST /v1/mutate", s.guard("mutate", s.handleMutate))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]interface{}{"status": "ok", "generation": s.db.Generation()})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

// guard is the admission wrapper: bounded concurrency with immediate 429
// on saturation, in-flight accounting, and end-to-end latency recording.
func (s *Server) guard(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.m.rejected.Add(1)
			writeError(w, http.StatusTooManyRequests, "overloaded", "max in-flight requests reached")
			return
		}
		defer func() { <-s.sem }()
		s.m.count(endpoint)
		s.m.inflight.Add(1)
		defer s.m.inflight.Add(-1)
		start := time.Now()
		h(w, r)
		s.m.latency.Observe(time.Since(start).Nanoseconds())
	}
}

// ---- request/response wire types ----

type queryRequest struct {
	Query string `json:"query"`
	// Handle, when set, names the statement by a token from /v1/prepare
	// instead of query text (which is then ignored).
	Handle string `json:"handle,omitempty"`
	// Enumerate only:
	Cursor string `json:"cursor,omitempty"`
	Limit  int    `json:"limit,omitempty"`
	Stream bool   `json:"stream,omitempty"`
	// Optional per-request deadline override, capped by MaxDeadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

type mutateRequest struct {
	Pred  string  `json:"pred"`
	Op    string  `json:"op"` // "insert" | "delete"
	Tuple []int64 `json:"tuple"`
	// Handle, when set, is validated (liveness assertion) before the
	// mutation is applied; the mutation itself is addressed by Pred.
	Handle string `json:"handle,omitempty"`
}

type errorBody struct {
	Error  string `json:"error"`
	Detail string `json:"detail,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, detail string) {
	writeJSON(w, status, errorBody{Error: code, Detail: detail})
}

// decodeBody parses a JSON request body under the configured size cap.
func decodeBody(s *Server, w http.ResponseWriter, r *http.Request, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		s.m.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return false
	}
	return true
}

// parseQuery turns request text into a CQ, counting malformed input.
func (s *Server) parseQuery(w http.ResponseWriter, src string) (*logic.CQ, bool) {
	if src == "" {
		s.m.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", "empty query")
		return nil, false
	}
	q, err := logic.ParseCQ(src)
	if err != nil {
		s.m.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "parse_error", err.Error())
		return nil, false
	}
	return q, true
}

// deadline derives the request context: the client's deadline_ms if given
// (capped), else the configured default.
func (s *Server) deadline(r *http.Request, req *queryRequest) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if req != nil && req.DeadlineMS > 0 {
		d = time.Duration(req.DeadlineMS) * time.Millisecond
		if d > s.cfg.MaxDeadline {
			d = s.cfg.MaxDeadline
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// resolvePlan turns the request into a compiled plan: by statement handle
// when one is attached (no parsing, no query text round trip), else by
// query text. Writes the error response itself on failure. Handles that no
// longer resolve — the compiled plan was dropped, e.g. by a cache reset —
// get 410 so the client knows to re-prepare with query text rather than
// retry.
func (s *Server) resolvePlan(w http.ResponseWriter, req *queryRequest) (*plan.Plan, bool) {
	if req.Handle != "" {
		h, err := decodeHandle(s.cfg.CursorKey, req.Handle)
		if err != nil {
			s.m.badRequests.Add(1)
			writeError(w, http.StatusBadRequest, "bad_handle", err.Error())
			return nil, false
		}
		p := s.cache.PlanByFingerprint(h.fp)
		if p == nil {
			s.m.staleHandles.Add(1)
			writeError(w, http.StatusGone, "unknown_handle",
				"handle no longer resolves to a cached plan; re-prepare with query text")
			return nil, false
		}
		return p, true
	}
	q, ok := s.parseQuery(w, req.Query)
	if !ok {
		return nil, false
	}
	p, err := s.cache.Compile(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "unsupported_query", err.Error())
		return nil, false
	}
	return p, true
}

// withStatement resolves a generation-fresh bound statement for p and runs
// fn with the database read lock held — the fast lane. A cold statement
// sends the request through the bind lane (see bindqueue.go) with the read
// lock RELEASED, so slow binds never stall mutations or occupy more than a
// bind-worker slot; once the bind lands the fast lane re-probes. With
// InlineBind set the bind instead runs inside the read-lock window, as it
// did before the bind lane existed. The ErrStalePlan retry remains defense
// in depth exactly as before (see the package comment).
func (s *Server) withStatement(ctx context.Context, p *plan.Plan, fn func(pr *plan.Prepared) error) error {
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		s.dbMu.RLock()
		pr, warm := s.cache.PeekPlan(p, s.db)
		if !warm && s.cfg.InlineBind {
			pr, err = s.cache.PreparePlan(p, s.db, nil)
			if err != nil {
				s.dbMu.RUnlock()
				return err
			}
			warm = true
		}
		if warm {
			err = fn(pr)
			s.dbMu.RUnlock()
			if !errors.Is(err, plan.ErrStalePlan) {
				return err
			}
			s.m.staleRetries.Add(1)
			continue
		}
		s.dbMu.RUnlock()
		if err = s.binds.bind(ctx, p); err != nil {
			return err
		}
		// The bind landed; loop to re-probe. A mutation racing in between
		// sends the next iteration back through the bind lane at the new
		// generation.
	}
	if err == nil {
		err = plan.ErrStalePlan
	}
	return err
}

// writeQueryError maps statement-path errors onto the wire: bind-lane
// shedding → 503 with a Retry-After hint, deadline expiry → 504, anything
// else (unsupported queries, bind failures) → 400.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	var sh *shedError
	switch {
	case errors.As(err, &sh):
		w.Header().Set("Retry-After",
			strconv.Itoa(int((sh.retryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusServiceUnavailable, "bind_overloaded", sh.detail)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.m.deadlineExpired.Add(1)
		writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", err.Error())
	default:
		writeError(w, http.StatusBadRequest, "unsupported_query", err.Error())
	}
}

// ---- handlers ----

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(s, w, r, &req) {
		return
	}
	p, ok := s.resolvePlan(w, &req)
	if !ok {
		return
	}
	ctx, cancel := s.deadline(r, &req)
	defer cancel()
	err := s.withStatement(ctx, p, func(pr *plan.Prepared) error {
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"fingerprint": fmt.Sprintf("%016x", p.Fingerprint()),
			"handle": encodeHandle(s.cfg.CursorKey, stmtHandle{
				fp:  p.Fingerprint(),
				gen: pr.Generation(),
			}),
			"engines": map[string]plan.Engine{
				"decide":    p.DecideEngine,
				"count":     p.CountEngine,
				"enumerate": p.EnumerateEngine,
			},
			"generation": pr.Generation(),
		})
		return nil
	})
	if err != nil {
		s.writeQueryError(w, err)
	}
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(s, w, r, &req) {
		return
	}
	p, ok := s.resolvePlan(w, &req)
	if !ok {
		return
	}
	ctx, cancel := s.deadline(r, &req)
	defer cancel()
	err := s.withStatement(ctx, p, func(pr *plan.Prepared) error {
		ans, err := pr.Decide(nil)
		if err != nil {
			return err
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"answer":     ans,
			"generation": pr.Generation(),
		})
		return nil
	})
	if err != nil {
		s.writeQueryError(w, err)
	}
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(s, w, r, &req) {
		return
	}
	p, ok := s.resolvePlan(w, &req)
	if !ok {
		return
	}
	ctx, cancel := s.deadline(r, &req)
	defer cancel()
	err := s.withStatement(ctx, p, func(pr *plan.Prepared) error {
		n, err := pr.Count(nil)
		if err != nil {
			return err
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"count":      n.String(),
			"generation": pr.Generation(),
		})
		return nil
	})
	if err != nil {
		s.writeQueryError(w, err)
	}
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	var req mutateRequest
	if !decodeBody(s, w, r, &req) {
		return
	}
	if req.Handle != "" {
		// Liveness assertion: a client batching mutations against a held
		// statement can learn its handle died (cache reset) before paying
		// for the write. The mutation itself is addressed by predicate.
		h, err := decodeHandle(s.cfg.CursorKey, req.Handle)
		if err != nil {
			s.m.badRequests.Add(1)
			writeError(w, http.StatusBadRequest, "bad_handle", err.Error())
			return
		}
		if s.cache.PlanByFingerprint(h.fp) == nil {
			s.m.staleHandles.Add(1)
			writeError(w, http.StatusGone, "unknown_handle",
				"handle no longer resolves to a cached plan; re-prepare with query text")
			return
		}
	}
	t := make(database.Tuple, len(req.Tuple))
	for i, v := range req.Tuple {
		t[i] = database.Value(v)
	}
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	rel := s.db.Relation(req.Pred)
	if rel == nil {
		s.m.badRequests.Add(1)
		writeError(w, http.StatusNotFound, "unknown_relation", req.Pred)
		return
	}
	var applied bool
	switch req.Op {
	case "insert":
		if err := rel.InsertBatch([]database.Tuple{t}); err != nil {
			s.m.badRequests.Add(1)
			writeError(w, http.StatusBadRequest, "bad_tuple", err.Error())
			return
		}
		applied = true
	case "delete":
		applied = rel.Delete(t)
	default:
		s.m.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown op %q", req.Op))
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"applied":    applied,
		"generation": s.db.Generation(),
	})
}

// ---- enumeration: pages, cursors, streaming ----

func tupleInts(t database.Tuple) []int64 {
	out := make([]int64, len(t))
	for i, v := range t {
		out[i] = int64(v)
	}
	return out
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(s, w, r, &req) {
		return
	}
	p, ok := s.resolvePlan(w, &req)
	if !ok {
		return
	}
	limit := req.Limit
	if limit <= 0 || limit > s.cfg.MaxPageSize {
		limit = s.cfg.MaxPageSize
	}
	// Cursor authenticity and fingerprint binding are checked before any
	// statement work — a garbage cursor never costs a bind. The generation
	// check has to wait for the read lock below.
	var cur cursor
	hasCursor := false
	if req.Cursor != "" {
		var err error
		cur, err = decodeCursor(s.cfg.CursorKey, req.Cursor)
		if err != nil {
			s.m.badRequests.Add(1)
			writeError(w, http.StatusBadRequest, "bad_cursor", err.Error())
			return
		}
		if cur.fp != p.Fingerprint() {
			s.m.badRequests.Add(1)
			writeError(w, http.StatusBadRequest, "cursor_mismatch",
				"cursor was minted for a different query")
			return
		}
		hasCursor = true
	}
	ctx, cancel := s.deadline(r, &req)
	defer cancel()

	err := s.withStatement(ctx, p, func(pr *plan.Prepared) error {
		gen := s.db.Generation()
		var offset uint64
		if hasCursor {
			if cur.gen != gen {
				// The database moved under the client's pagination. The
				// cursor is dead; the client restarts against the current
				// generation (the cache entry has been refreshed in place,
				// so the restart is a warm probe, not a rebuild).
				s.m.staleCursors.Add(1)
				writeError(w, http.StatusGone, "stale_cursor",
					fmt.Sprintf("cursor generation %d, database at %d", cur.gen, gen))
				return nil
			}
			offset = cur.offset
		}
		if req.Stream {
			return s.streamAnswers(ctx, w, pr, gen, offset)
		}
		return s.servePage(ctx, w, pr, gen, offset, limit)
	})
	if err != nil {
		s.writeQueryError(w, err)
	}
}

// servePage writes one page of answers starting at offset. On the
// constant-delay route pages are random-accessed in O(limit · log n); the
// other engines re-enumerate and skip, which is linear in the offset but
// still one pass per page.
func (s *Server) servePage(ctx context.Context, w http.ResponseWriter, pr *plan.Prepared, gen, offset uint64, limit int) error {
	answers, done, err := s.page(ctx, pr, offset, limit)
	if err != nil {
		return err
	}
	resp := map[string]interface{}{
		"answers":    answers,
		"done":       done,
		"generation": gen,
	}
	if !done {
		resp["next_cursor"] = encodeCursor(s.cfg.CursorKey, cursor{
			fp:     pr.Plan().Fingerprint(),
			gen:    gen,
			offset: offset + uint64(len(answers)),
		})
	}
	s.m.answersServed.Add(int64(len(answers)))
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// page extracts answers [offset, offset+limit) in the engine's
// deterministic order and reports whether the enumeration is exhausted.
func (s *Server) page(ctx context.Context, pr *plan.Prepared, offset uint64, limit int) ([][]int64, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	// Fast path: random access over the constant-delay route.
	if pr.Plan().EnumerateEngine == plan.EngineConstantDelay {
		if ra, err := pr.NewRandomAccess(nil); err == nil {
			total := ra.Count()
			if !total.IsInt64() {
				return nil, false, fmt.Errorf("serve: answer count %s overflows pagination", total.String())
			}
			n := total.Int64()
			answers := make([][]int64, 0, limit)
			for i := int64(offset); i < n && len(answers) < limit; i++ {
				if err := ctx.Err(); err != nil {
					return nil, false, err
				}
				t, err := ra.GetInt(i)
				if err != nil {
					return nil, false, err
				}
				answers = append(answers, tupleInts(t))
			}
			return answers, int64(offset)+int64(len(answers)) >= n, nil
		}
		// Random access can refuse (e.g. comparisons); fall through to the
		// enumerator path, staleness included in its error surface.
	}
	e, err := pr.EnumerateCtx(ctx, nil)
	if err != nil {
		return nil, false, err
	}
	for skipped := uint64(0); skipped < offset; skipped++ {
		if _, ok := e.Next(); !ok {
			return nil, e.Err() == nil, e.Err()
		}
	}
	answers := make([][]int64, 0, limit)
	done := false
	for len(answers) < limit {
		t, ok := e.Next()
		if !ok {
			if err := e.Err(); err != nil {
				return nil, false, err
			}
			done = true
			break
		}
		answers = append(answers, tupleInts(t))
	}
	if !done {
		// Peek one ahead so the last full page reports done without an
		// extra round trip.
		if _, ok := e.Next(); !ok {
			if err := e.Err(); err != nil {
				return nil, false, err
			}
			done = true
		}
	}
	return answers, done, nil
}

// streamAnswers writes newline-delimited JSON, one answer per line, then a
// terminal record. A completed stream ends with {"done":true,"count":n}; a
// deadline expiring mid-stream cuts at an answer boundary and ends with
// {"truncated":true,"cursor":...} so the client can tell a cut from a
// finish and resume exactly where the stream stopped. The enumeration is
// synchronous in this handler, so cancellation leaks nothing.
func (s *Server) streamAnswers(ctx context.Context, w http.ResponseWriter, pr *plan.Prepared, gen, offset uint64) error {
	e, err := pr.EnumerateCtx(ctx, nil)
	if err != nil {
		return err
	}
	for skipped := uint64(0); skipped < offset; skipped++ {
		if _, ok := e.Next(); !ok {
			break
		}
	}
	if err := e.Err(); err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	var n int64
	for {
		t, ok := e.Next()
		if !ok {
			break
		}
		enc.Encode(map[string]interface{}{"answer": tupleInts(t)})
		n++
		if flusher != nil && n%64 == 0 {
			flusher.Flush()
		}
	}
	s.m.answersServed.Add(n)
	if err := e.Err(); err != nil {
		// Headers are out; report the cut in-band with a resume cursor
		// positioned after the last emitted answer.
		s.m.deadlineExpired.Add(1)
		enc.Encode(map[string]interface{}{
			"truncated": true,
			"error":     "deadline_exceeded",
			"detail":    err.Error(),
			"cursor": encodeCursor(s.cfg.CursorKey, cursor{
				fp:     pr.Plan().Fingerprint(),
				gen:    gen,
				offset: offset + uint64(n),
			}),
		})
		return nil
	}
	enc.Encode(map[string]interface{}{"done": true, "count": n})
	return nil
}
