// Package serve implements qservd's HTTP/JSON query-serving layer: prepared
// statements from a shared plan.Cache served to concurrent clients over a
// mutable database.
//
// The concurrency discipline is the one TestCacheRaceStress pins down at the
// plan layer: every query request holds a read lock on the database for its
// whole probe+execute window, and every mutation holds the write lock. Under
// the read lock the generation cannot move, so a cache probe hands back a
// Prepared that is fresh for the entire execution; ErrStalePlan is therefore
// unreachable in steady state, but the handlers still recover from it with a
// bounded re-probe as defense in depth.
//
// Enumeration is paginated behind opaque resumable cursors (see cursor.go).
// The server keeps no per-client state: a cursor is fingerprint + generation
// + offset, and the deterministic enumeration order of every engine makes
// the offset meaningful across requests — even after the cached Prepared
// was evicted and transparently re-bound. On the constant-delay route pages
// are served via the random-access engine's Get(i), so a page at offset k
// costs O(limit · log n) instead of O(k + limit).
package serve

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/plan"
)

// Config tunes the server. Zero values select the defaults.
type Config struct {
	// MaxInFlight bounds concurrently admitted requests; excess requests
	// are rejected immediately with 429 (open-loop clients must see
	// backpressure, not queueing). Default 64.
	MaxInFlight int
	// DefaultDeadline is the per-request execution budget when the request
	// does not carry deadline_ms. Default 5s.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines. Default 30s.
	MaxDeadline time.Duration
	// MaxBodyBytes bounds request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// MaxPageSize caps (and defaults) the enumerate page size. Default 1024.
	MaxPageSize int
	// MaxPrepared bounds the plan cache's prepared-statement set (LRU).
	// Default 256.
	MaxPrepared int
	// CursorKey authenticates cursors. Nil draws a random per-server key;
	// tests inject a fixed key to exercise forgery handling.
	CursorKey []byte
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxPageSize <= 0 {
		c.MaxPageSize = 1024
	}
	if c.MaxPrepared <= 0 {
		c.MaxPrepared = 256
	}
	if len(c.CursorKey) == 0 {
		key := make([]byte, 32)
		if _, err := rand.Read(key); err != nil {
			panic(fmt.Sprintf("serve: cannot draw cursor key: %v", err))
		}
		c.CursorKey = key
	}
	return c
}

// Server serves prepared-statement queries over one database.
type Server struct {
	cfg   Config
	db    *database.Database
	dict  *database.Dictionary
	cache *plan.Cache
	dbMu  sync.RWMutex // read: query execution; write: mutation
	sem   chan struct{}
	m     *metrics
}

// New builds a Server over db. dict may be nil (numeric constants only).
func New(db *database.Database, dict *database.Dictionary, cfg Config) *Server {
	cfg = cfg.withDefaults()
	cache := plan.NewCache()
	cache.SetMaxPrepared(cfg.MaxPrepared)
	return &Server{
		cfg:   cfg,
		db:    db,
		dict:  dict,
		cache: cache,
		sem:   make(chan struct{}, cfg.MaxInFlight),
		m:     newMetrics(),
	}
}

// Cache exposes the plan cache (tests inspect hit/refresh counters).
func (s *Server) Cache() *plan.Cache { return s.cache }

// Handler returns the HTTP mux: the /v1 query protocol plus health and
// stats. expvar/pprof wiring is left to the daemon binary, which mounts
// this next to the default serve mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/prepare", s.guard("prepare", s.handlePrepare))
	mux.HandleFunc("POST /v1/decide", s.guard("decide", s.handleDecide))
	mux.HandleFunc("POST /v1/count", s.guard("count", s.handleCount))
	mux.HandleFunc("POST /v1/enumerate", s.guard("enumerate", s.handleEnumerate))
	mux.HandleFunc("POST /v1/mutate", s.guard("mutate", s.handleMutate))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]interface{}{"status": "ok", "generation": s.db.Generation()})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

// guard is the admission wrapper: bounded concurrency with immediate 429
// on saturation, in-flight accounting, and end-to-end latency recording.
func (s *Server) guard(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.m.rejected.Add(1)
			writeError(w, http.StatusTooManyRequests, "overloaded", "max in-flight requests reached")
			return
		}
		defer func() { <-s.sem }()
		s.m.count(endpoint)
		s.m.inflight.Add(1)
		defer s.m.inflight.Add(-1)
		start := time.Now()
		h(w, r)
		s.m.latency.Observe(time.Since(start).Nanoseconds())
	}
}

// ---- request/response wire types ----

type queryRequest struct {
	Query string `json:"query"`
	// Enumerate only:
	Cursor string `json:"cursor,omitempty"`
	Limit  int    `json:"limit,omitempty"`
	Stream bool   `json:"stream,omitempty"`
	// Optional per-request deadline override, capped by MaxDeadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

type mutateRequest struct {
	Pred  string  `json:"pred"`
	Op    string  `json:"op"` // "insert" | "delete"
	Tuple []int64 `json:"tuple"`
}

type errorBody struct {
	Error  string `json:"error"`
	Detail string `json:"detail,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, detail string) {
	writeJSON(w, status, errorBody{Error: code, Detail: detail})
}

// decodeBody parses a JSON request body under the configured size cap.
func decodeBody(s *Server, w http.ResponseWriter, r *http.Request, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		s.m.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return false
	}
	return true
}

// parseQuery turns request text into a CQ, counting malformed input.
func (s *Server) parseQuery(w http.ResponseWriter, src string) (*logic.CQ, bool) {
	if src == "" {
		s.m.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", "empty query")
		return nil, false
	}
	q, err := logic.ParseCQ(src)
	if err != nil {
		s.m.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "parse_error", err.Error())
		return nil, false
	}
	return q, true
}

// deadline derives the request context: the client's deadline_ms if given
// (capped), else the configured default.
func (s *Server) deadline(r *http.Request, req *queryRequest) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if req != nil && req.DeadlineMS > 0 {
		d = time.Duration(req.DeadlineMS) * time.Millisecond
		if d > s.cfg.MaxDeadline {
			d = s.cfg.MaxDeadline
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// withPrepared probes the cache and runs fn, re-probing on ErrStalePlan.
// The caller must hold the database read lock; the retry loop is defense
// in depth (see the package comment).
func (s *Server) withPrepared(q *logic.CQ, fn func(pr *plan.Prepared) error) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		var pr *plan.Prepared
		pr, err = s.cache.Prepare(q, s.db)
		if err != nil {
			return err
		}
		err = fn(pr)
		if !errors.Is(err, plan.ErrStalePlan) {
			return err
		}
		s.m.staleRetries.Add(1)
	}
	return err
}

// ---- handlers ----

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(s, w, r, &req) {
		return
	}
	q, ok := s.parseQuery(w, req.Query)
	if !ok {
		return
	}
	s.dbMu.RLock()
	defer s.dbMu.RUnlock()
	err := s.withPrepared(q, func(pr *plan.Prepared) error {
		p := pr.Plan()
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"fingerprint": fmt.Sprintf("%016x", p.Fingerprint()),
			"engines": map[string]plan.Engine{
				"decide":    p.DecideEngine,
				"count":     p.CountEngine,
				"enumerate": p.EnumerateEngine,
			},
			"generation": pr.Generation(),
		})
		return nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "unsupported_query", err.Error())
	}
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(s, w, r, &req) {
		return
	}
	q, ok := s.parseQuery(w, req.Query)
	if !ok {
		return
	}
	s.dbMu.RLock()
	defer s.dbMu.RUnlock()
	err := s.withPrepared(q, func(pr *plan.Prepared) error {
		ans, err := pr.Decide(nil)
		if err != nil {
			return err
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"answer":     ans,
			"generation": pr.Generation(),
		})
		return nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "unsupported_query", err.Error())
	}
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(s, w, r, &req) {
		return
	}
	q, ok := s.parseQuery(w, req.Query)
	if !ok {
		return
	}
	s.dbMu.RLock()
	defer s.dbMu.RUnlock()
	err := s.withPrepared(q, func(pr *plan.Prepared) error {
		n, err := pr.Count(nil)
		if err != nil {
			return err
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"count":      n.String(),
			"generation": pr.Generation(),
		})
		return nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "unsupported_query", err.Error())
	}
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	var req mutateRequest
	if !decodeBody(s, w, r, &req) {
		return
	}
	t := make(database.Tuple, len(req.Tuple))
	for i, v := range req.Tuple {
		t[i] = database.Value(v)
	}
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	rel := s.db.Relation(req.Pred)
	if rel == nil {
		s.m.badRequests.Add(1)
		writeError(w, http.StatusNotFound, "unknown_relation", req.Pred)
		return
	}
	var applied bool
	switch req.Op {
	case "insert":
		if err := rel.InsertBatch([]database.Tuple{t}); err != nil {
			s.m.badRequests.Add(1)
			writeError(w, http.StatusBadRequest, "bad_tuple", err.Error())
			return
		}
		applied = true
	case "delete":
		applied = rel.Delete(t)
	default:
		s.m.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown op %q", req.Op))
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"applied":    applied,
		"generation": s.db.Generation(),
	})
}

// ---- enumeration: pages, cursors, streaming ----

func tupleInts(t database.Tuple) []int64 {
	out := make([]int64, len(t))
	for i, v := range t {
		out[i] = int64(v)
	}
	return out
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(s, w, r, &req) {
		return
	}
	q, ok := s.parseQuery(w, req.Query)
	if !ok {
		return
	}
	limit := req.Limit
	if limit <= 0 || limit > s.cfg.MaxPageSize {
		limit = s.cfg.MaxPageSize
	}
	ctx, cancel := s.deadline(r, &req)
	defer cancel()

	s.dbMu.RLock()
	defer s.dbMu.RUnlock()
	gen := s.db.Generation()

	err := s.withPrepared(q, func(pr *plan.Prepared) error {
		var offset uint64
		if req.Cursor != "" {
			cur, err := decodeCursor(s.cfg.CursorKey, req.Cursor)
			if err != nil {
				s.m.badRequests.Add(1)
				writeError(w, http.StatusBadRequest, "bad_cursor", err.Error())
				return nil
			}
			if cur.fp != pr.Plan().Fingerprint() {
				s.m.badRequests.Add(1)
				writeError(w, http.StatusBadRequest, "cursor_mismatch",
					"cursor was minted for a different query")
				return nil
			}
			if cur.gen != gen {
				// The database moved under the client's pagination. The
				// cursor is dead; the client restarts against the current
				// generation (the cache entry has been refreshed in place,
				// so the restart is a warm probe, not a rebuild).
				s.m.staleCursors.Add(1)
				writeError(w, http.StatusGone, "stale_cursor",
					fmt.Sprintf("cursor generation %d, database at %d", cur.gen, gen))
				return nil
			}
			offset = cur.offset
		}
		if req.Stream {
			return s.streamAnswers(ctx, w, pr, offset)
		}
		return s.servePage(ctx, w, pr, gen, offset, limit)
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.m.deadlineExpired.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "unsupported_query", err.Error())
	}
}

// servePage writes one page of answers starting at offset. On the
// constant-delay route pages are random-accessed in O(limit · log n); the
// other engines re-enumerate and skip, which is linear in the offset but
// still one pass per page.
func (s *Server) servePage(ctx context.Context, w http.ResponseWriter, pr *plan.Prepared, gen, offset uint64, limit int) error {
	answers, done, err := s.page(ctx, pr, offset, limit)
	if err != nil {
		return err
	}
	resp := map[string]interface{}{
		"answers":    answers,
		"done":       done,
		"generation": gen,
	}
	if !done {
		resp["next_cursor"] = encodeCursor(s.cfg.CursorKey, cursor{
			fp:     pr.Plan().Fingerprint(),
			gen:    gen,
			offset: offset + uint64(len(answers)),
		})
	}
	s.m.answersServed.Add(int64(len(answers)))
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// page extracts answers [offset, offset+limit) in the engine's
// deterministic order and reports whether the enumeration is exhausted.
func (s *Server) page(ctx context.Context, pr *plan.Prepared, offset uint64, limit int) ([][]int64, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	// Fast path: random access over the constant-delay route.
	if pr.Plan().EnumerateEngine == plan.EngineConstantDelay {
		if ra, err := pr.NewRandomAccess(nil); err == nil {
			total := ra.Count()
			if !total.IsInt64() {
				return nil, false, fmt.Errorf("serve: answer count %s overflows pagination", total.String())
			}
			n := total.Int64()
			answers := make([][]int64, 0, limit)
			for i := int64(offset); i < n && len(answers) < limit; i++ {
				if err := ctx.Err(); err != nil {
					return nil, false, err
				}
				t, err := ra.GetInt(i)
				if err != nil {
					return nil, false, err
				}
				answers = append(answers, tupleInts(t))
			}
			return answers, int64(offset)+int64(len(answers)) >= n, nil
		}
		// Random access can refuse (e.g. comparisons); fall through to the
		// enumerator path, staleness included in its error surface.
	}
	e, err := pr.EnumerateCtx(ctx, nil)
	if err != nil {
		return nil, false, err
	}
	for skipped := uint64(0); skipped < offset; skipped++ {
		if _, ok := e.Next(); !ok {
			return nil, e.Err() == nil, e.Err()
		}
	}
	answers := make([][]int64, 0, limit)
	done := false
	for len(answers) < limit {
		t, ok := e.Next()
		if !ok {
			if err := e.Err(); err != nil {
				return nil, false, err
			}
			done = true
			break
		}
		answers = append(answers, tupleInts(t))
	}
	if !done {
		// Peek one ahead so the last full page reports done without an
		// extra round trip.
		if _, ok := e.Next(); !ok {
			if err := e.Err(); err != nil {
				return nil, false, err
			}
			done = true
		}
	}
	return answers, done, nil
}

// streamAnswers writes newline-delimited JSON, one answer per line, then a
// final summary line. A deadline expiring mid-stream cuts the stream at an
// answer boundary with an error line — the enumeration is synchronous in
// this handler, so cancellation leaks nothing.
func (s *Server) streamAnswers(ctx context.Context, w http.ResponseWriter, pr *plan.Prepared, offset uint64) error {
	e, err := pr.EnumerateCtx(ctx, nil)
	if err != nil {
		return err
	}
	for skipped := uint64(0); skipped < offset; skipped++ {
		if _, ok := e.Next(); !ok {
			break
		}
	}
	if err := e.Err(); err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	var n int64
	for {
		t, ok := e.Next()
		if !ok {
			break
		}
		enc.Encode(map[string]interface{}{"answer": tupleInts(t)})
		n++
		if flusher != nil && n%64 == 0 {
			flusher.Flush()
		}
	}
	s.m.answersServed.Add(n)
	if err := e.Err(); err != nil {
		// Headers are out; report the cut in-band.
		s.m.deadlineExpired.Add(1)
		enc.Encode(errorBody{Error: "deadline_exceeded", Detail: err.Error()})
		return nil
	}
	enc.Encode(map[string]interface{}{"done": true, "count": n})
	return nil
}
