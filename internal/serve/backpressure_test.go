package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/database"
)

func tinyDB() *database.Database {
	db := database.NewDatabase()
	a := database.NewRelation("A", 1)
	a.Insert(database.Tuple{1})
	db.AddRelation(a)
	return db
}

// TestAdmissionControl429 exercises the semaphore deterministically: with
// every admission slot held, any request is rejected immediately with 429
// and the rejection counter moves; once a slot frees, the same request is
// served. This is the backpressure an open-loop load generator must see
// instead of unbounded queueing.
func TestAdmissionControl429(t *testing.T) {
	s := New(tinyDB(), nil, Config{MaxInFlight: 2})
	h := s.Handler()
	body := func() *bytes.Reader {
		buf, _ := json.Marshal(map[string]string{"query": "Q(x) :- A(x)."})
		return bytes.NewReader(buf)
	}

	// Occupy every slot.
	s.sem <- struct{}{}
	s.sem <- struct{}{}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/decide", body()))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", rec.Code)
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error != "overloaded" {
		t.Fatalf("429 body %q (%v)", rec.Body.String(), err)
	}
	if got := s.m.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}

	// Free one slot: the identical request is admitted.
	<-s.sem
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/decide", body()))
	if rec.Code != http.StatusOK {
		t.Fatalf("after freeing a slot: %d, want 200", rec.Code)
	}
	<-s.sem

	// Rejection is non-blocking even under a stampede.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/decide", body()))
			if rec.Code != http.StatusTooManyRequests {
				t.Errorf("stampede request answered %d, want 429", rec.Code)
			}
		}()
	}
	wg.Wait()
	if got := s.Stats().Rejected; got != 1+32 {
		t.Fatalf("rejected counter %d, want 33", got)
	}
}

// TestCursorRoundTrip pins the codec: encode → decode is the identity, and
// each field lands in its slot.
func TestCursorRoundTrip(t *testing.T) {
	key := bytes.Repeat([]byte{9}, 32)
	in := cursor{fp: 0xdeadbeefcafe, gen: 42, offset: 1 << 40}
	out, err := decodeCursor(key, encodeCursor(key, in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v → %+v", in, out)
	}
	if _, err := decodeCursor(bytes.Repeat([]byte{8}, 32), encodeCursor(key, in)); err == nil {
		t.Fatal("cursor verified under a different key")
	}
}
