package serve_test

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/qgen"
	"repro/internal/serve"
)

// prepareHandle runs /v1/prepare and returns the minted statement handle.
func prepareHandle(t *testing.T, h http.Handler, query string) string {
	t.Helper()
	code, out := postJSON(t, h, "/v1/prepare", map[string]interface{}{"query": query})
	if code != http.StatusOK {
		t.Fatalf("prepare: status %d: %s", code, out["error"])
	}
	var handle string
	json.Unmarshal(out["handle"], &handle)
	if handle == "" {
		t.Fatal("prepare returned no handle")
	}
	return handle
}

// TestHandleLifecycle walks a statement handle through its whole life:
// minted by prepare, accepted by every query endpoint and by mutate as a
// liveness assertion, surviving mutations (the refresh-in-place path), and
// dying with 410 only when the cached plan itself is dropped — after which
// re-preparing with query text issues a working replacement. Forged,
// truncated, and cross-type tokens are refused up front.
func TestHandleLifecycle(t *testing.T) {
	db := chainDB(64)
	srv := serve.New(db, nil, serve.Config{CursorKey: testKey})
	h := srv.Handler()
	handle := prepareHandle(t, h, chainQuery)

	// Every read endpoint accepts the handle and matches the query-text path.
	code, out := postJSON(t, h, "/v1/decide", map[string]interface{}{"handle": handle})
	if code != http.StatusOK {
		t.Fatalf("decide by handle: status %d: %s", code, out["error"])
	}
	var ans bool
	json.Unmarshal(out["answer"], &ans)
	if !ans {
		t.Fatal("decide by handle: false on a nonempty query")
	}
	code, out = postJSON(t, h, "/v1/count", map[string]interface{}{"handle": handle})
	if code != http.StatusOK {
		t.Fatalf("count by handle: status %d", code)
	}
	var byHandle string
	json.Unmarshal(out["count"], &byHandle)
	_, out = postJSON(t, h, "/v1/count", map[string]interface{}{"query": chainQuery})
	var byText string
	json.Unmarshal(out["count"], &byText)
	if byHandle != byText || byHandle == "" {
		t.Fatalf("count by handle %q ≠ by text %q", byHandle, byText)
	}
	if code, _ := postJSON(t, h, "/v1/enumerate", map[string]interface{}{"handle": handle, "limit": 4}); code != http.StatusOK {
		t.Fatalf("enumerate by handle: status %d", code)
	}

	// Handles survive mutations: the statement refreshes underneath them.
	code, _ = postJSON(t, h, "/v1/mutate", map[string]interface{}{
		"pred": "A", "op": "insert", "tuple": []int64{500, 501}, "handle": handle,
	})
	if code != http.StatusOK {
		t.Fatalf("mutate with handle assertion: status %d", code)
	}
	if code, out = postJSON(t, h, "/v1/decide", map[string]interface{}{"handle": handle}); code != http.StatusOK {
		t.Fatalf("decide by handle after mutation: status %d: %s", code, out["error"])
	}

	// Tampering: flip a bit inside the authenticated region.
	raw, err := base64.RawURLEncoding.DecodeString(handle)
	if err != nil {
		t.Fatal(err)
	}
	raw[3] ^= 1
	expectHandleErr := func(what, tok string, wantCode int, wantErr string) {
		t.Helper()
		code, out := postJSON(t, h, "/v1/decide", map[string]interface{}{"handle": tok})
		var e string
		if out["error"] != nil {
			json.Unmarshal(out["error"], &e)
		}
		if code != wantCode || e != wantErr {
			t.Fatalf("%s: got %d/%q, want %d/%q", what, code, e, wantCode, wantErr)
		}
	}
	expectHandleErr("forged", base64.RawURLEncoding.EncodeToString(raw), http.StatusBadRequest, "bad_handle")
	expectHandleErr("truncated", handle[:6], http.StatusBadRequest, "bad_handle")
	expectHandleErr("oversized", strings.Repeat("A", 4096), http.StatusBadRequest, "bad_handle")

	// A cursor is not a handle: mint one via pagination and cross-feed it.
	code, out = postJSON(t, h, "/v1/enumerate", map[string]interface{}{"query": chainQuery, "limit": 2})
	if code != http.StatusOK {
		t.Fatalf("page for cursor: status %d", code)
	}
	var cur string
	json.Unmarshal(out["next_cursor"], &cur)
	expectHandleErr("cursor as handle", cur, http.StatusBadRequest, "bad_handle")

	// Eviction of the compiled plan kills the handle with 410 — on query
	// and mutate endpoints alike.
	srv.Cache().Reset()
	expectHandleErr("after cache reset", handle, http.StatusGone, "unknown_handle")
	if code, _ := postJSON(t, h, "/v1/mutate", map[string]interface{}{
		"pred": "A", "op": "delete", "tuple": []int64{500, 501}, "handle": handle,
	}); code != http.StatusGone {
		t.Fatalf("mutate with dead handle: status %d, want 410", code)
	}

	// Recovery contract: re-prepare with query text, get a live handle.
	handle = prepareHandle(t, h, chainQuery)
	if code, out = postJSON(t, h, "/v1/decide", map[string]interface{}{"handle": handle}); code != http.StatusOK {
		t.Fatalf("re-prepared handle refused: status %d: %s", code, out["error"])
	}
	if st := srv.Stats(); st.StaleHandles < 2 {
		t.Fatalf("stale_handles stat %d, want ≥ 2", st.StaleHandles)
	}
}

// TestStreamTruncationAndResume pins the NDJSON terminal-record contract
// (the bug this fixes: a deadline cut used to end with a bare error line a
// client could not tell from a crash, with no way to resume). A cut stream
// must end with {"truncated":true,"cursor":...}; resuming from that cursor
// over paged enumeration yields exactly the answers the stream did not
// deliver. A completed stream must end with {"done":true} and carry no
// truncation marker.
func TestStreamTruncationAndResume(t *testing.T) {
	const n = 200_000
	db := chainDB(n)
	h := newHandler(db, serve.Config{MaxPageSize: 1 << 20})
	// Warm the statement so the deadline is spent streaming, not binding.
	if code, _ := postJSON(t, h, "/v1/decide", map[string]interface{}{"query": chainQuery}); code != http.StatusOK {
		t.Fatal("warmup failed")
	}

	buf, _ := json.Marshal(map[string]interface{}{
		"query": chainQuery, "stream": true, "deadline_ms": 5,
	})
	req := httptest.NewRequest("POST", "/v1/enumerate", bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream status %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var tail struct {
		Truncated bool   `json:"truncated"`
		Done      bool   `json:"done"`
		Error     string `json:"error"`
		Cursor    string `json:"cursor"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tail); err != nil {
		t.Fatalf("terminal record is not JSON: %v", err)
	}
	if !tail.Truncated || tail.Error != "deadline_exceeded" || tail.Cursor == "" {
		t.Fatalf("cut stream terminal record %s, want truncated:true with a resume cursor", lines[len(lines)-1])
	}

	// The streamed prefix plus the paged resume must be exactly the full
	// answer set — no gap, no overlap — and resuming costs no stale_cursor
	// because nothing mutated.
	got := answerSet{}
	for _, l := range lines[:len(lines)-1] {
		var line struct {
			Answer []int64 `json:"answer"`
		}
		if err := json.Unmarshal([]byte(l), &line); err != nil || len(line.Answer) != 2 {
			t.Fatalf("malformed answer line before the cut: %q", l)
		}
		got[keyOf(line.Answer)]++
	}
	streamed := len(got)
	cursor := tail.Cursor
	for cursor != "" {
		code, out := postJSON(t, h, "/v1/enumerate", map[string]interface{}{
			"query": chainQuery, "cursor": cursor, "limit": 1 << 16,
		})
		if code != http.StatusOK {
			t.Fatalf("resume from truncation cursor: status %d: %s", code, out["error"])
		}
		var answers [][]int64
		json.Unmarshal(out["answers"], &answers)
		for _, a := range answers {
			got[keyOf(a)]++
			if got[keyOf(a)] > 1 {
				t.Fatalf("answer %v delivered both before and after the cut", a)
			}
		}
		var done bool
		json.Unmarshal(out["done"], &done)
		cursor = ""
		if !done {
			json.Unmarshal(out["next_cursor"], &cursor)
		}
	}
	if len(got) != n-1 {
		t.Fatalf("stream(%d) + resume = %d answers, want %d", streamed, len(got), n-1)
	}

	// The completed shape: a small database finishes inside the deadline
	// and must report done, not truncated.
	h2 := newHandler(chainDB(32), serve.Config{})
	buf, _ = json.Marshal(map[string]interface{}{"query": chainQuery, "stream": true})
	rec = httptest.NewRecorder()
	h2.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/enumerate", bytes.NewReader(buf)))
	lines = strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	tail = struct {
		Truncated bool   `json:"truncated"`
		Done      bool   `json:"done"`
		Error     string `json:"error"`
		Cursor    string `json:"cursor"`
	}{}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tail); err != nil {
		t.Fatalf("terminal record is not JSON: %v", err)
	}
	if !tail.Done || tail.Truncated || tail.Error != "" {
		t.Fatalf("completed stream terminal record %s, want done:true", lines[len(lines)-1])
	}
}

// walkPagesBody is walkPages over an arbitrary request base (query text or
// statement handle).
func walkPagesBody(t *testing.T, h http.Handler, base map[string]interface{}, pageSize int) answerSet {
	t.Helper()
	got := answerSet{}
	cursor := ""
	for page := 0; ; page++ {
		body := map[string]interface{}{"limit": pageSize}
		for k, v := range base {
			body[k] = v
		}
		if cursor != "" {
			body["cursor"] = cursor
		}
		code, out := postJSON(t, h, "/v1/enumerate", body)
		if code != http.StatusOK {
			t.Fatalf("page %d: status %d: %s", page, code, out["error"])
		}
		var answers [][]int64
		json.Unmarshal(out["answers"], &answers)
		for _, a := range answers {
			got[keyOf(a)]++
			if got[keyOf(a)] > 1 {
				t.Fatalf("page %d: duplicate answer %v", page, a)
			}
		}
		var done bool
		json.Unmarshal(out["done"], &done)
		if done {
			return got
		}
		if err := json.Unmarshal(out["next_cursor"], &cursor); err != nil || cursor == "" {
			t.Fatalf("page %d: not done but no cursor", page)
		}
	}
}

// TestServeHandleDifferential: for 250 seeded instances per route, a
// server driven entirely through statement handles (prepare once, then
// decide/count/enumerate by handle) must agree exactly — answer sets and
// count strings — with a second server driven inline by query text over an
// identical database. This is the acceptance check that handle-served
// answers are bit-identical to the inline path.
func TestServeHandleDifferential(t *testing.T) {
	seeds := make([]int64, 0, 250)
	if *seedFlag >= 0 {
		seeds = append(seeds, *seedFlag)
	} else {
		for s := int64(0); s < 250; s++ {
			seeds = append(seeds, s)
		}
	}
	covered := map[string]int{}
	for _, seed := range seeds {
		for _, rc := range routes {
			rng := rand.New(rand.NewSource(seed))
			cfg := qgen.Default()
			q := rc.build(rng, cfg)
			if q == nil {
				continue
			}
			covered[rc.name]++
			db := qgen.DatabaseFor(rng, cfg, q)
			hText := newHandler(db, serve.Config{})
			// Second server over the same database: the handle path. (The
			// database is only read here, so sharing it is safe.)
			hHandle := newHandler(db, serve.Config{})
			handle := prepareHandle(t, hHandle, q.String())

			textSet := walkPagesBody(t, hText, map[string]interface{}{"query": q.String()}, 7)
			handleSet := walkPagesBody(t, hHandle, map[string]interface{}{"handle": handle}, 7)
			if !sameSets(textSet, handleSet) {
				t.Fatalf("seed %d %s: handle pagination ≠ inline (%d vs %d answers)\nreplay: go test ./internal/serve -run %s -seed=%d",
					seed, rc.name, len(handleSet), len(textSet), t.Name(), seed)
			}
			_, out := postJSON(t, hText, "/v1/count", map[string]interface{}{"query": q.String()})
			var cText string
			json.Unmarshal(out["count"], &cText)
			code, out := postJSON(t, hHandle, "/v1/count", map[string]interface{}{"handle": handle})
			var cHandle string
			json.Unmarshal(out["count"], &cHandle)
			if code != http.StatusOK || cHandle != cText {
				t.Fatalf("seed %d %s: count by handle %q ≠ inline %q (status %d)\nreplay: go test ./internal/serve -run %s -seed=%d",
					seed, rc.name, cHandle, cText, code, t.Name(), seed)
			}
		}
	}
	for _, rc := range routes {
		if covered[rc.name] == 0 {
			t.Errorf("route %s: no seed produced an instance", rc.name)
		}
	}
	t.Logf("instances per route: %v", covered)
}
