package serve_test

// Out-of-core regression: a server booted from a snapshot of a database —
// heap-reloaded or mmap-backed — is indistinguishable on the wire from the
// server over the original. Enumeration cursors and statement handles are
// stateless and generation-stamped, so the ones minted by the original
// process must resume/execute identically on the snapshot-restored process
// (same CursorKey, same restored generation).

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"path/filepath"
	"testing"

	"repro/internal/database"
	"repro/internal/graphs"
	"repro/internal/serve"
	"repro/internal/snapshot"
)

// snapshotServeDB is a database with enough answers to paginate several
// times over.
func snapshotServeDB(t *testing.T) *database.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	db := database.NewDatabase()
	db.AddRelation(graphs.RandomRelation(rng, "edge", 2, 400, 40))
	db.AddRelation(graphs.RandomRelation(rng, "label", 1, 60, 40))
	return db
}

// resumeAll drains /v1/enumerate from a given cursor, returning the
// remaining answers in wire order.
func resumeAll(t *testing.T, h http.Handler, query, cursor string) [][]int64 {
	t.Helper()
	var got [][]int64
	for page := 0; ; page++ {
		body := map[string]interface{}{"query": query, "limit": 7}
		if cursor != "" {
			body["cursor"] = cursor
		}
		code, out := postJSON(t, h, "/v1/enumerate", body)
		if code != http.StatusOK {
			t.Fatalf("resume page %d: status %d: %s", page, code, out["error"])
		}
		var answers [][]int64
		if err := json.Unmarshal(out["answers"], &answers); err != nil {
			t.Fatalf("resume page %d: %v", page, err)
		}
		got = append(got, answers...)
		var done bool
		json.Unmarshal(out["done"], &done)
		if done {
			return got
		}
		if err := json.Unmarshal(out["next_cursor"], &cursor); err != nil || cursor == "" {
			t.Fatalf("resume page %d: not done but no cursor", page)
		}
	}
}

func sameWire(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestSnapshotReloadServesIdenticalCursorsAndHandles: mint a cursor and a
// statement handle on a server over the original database; snapshot the
// database; boot servers over the heap-reloaded and mmap-backed restores
// (same cursor key); the cursor resumes to the identical remaining answer
// sequence and the handle serves identical decide/count/enumerate results.
func TestSnapshotReloadServesIdenticalCursorsAndHandles(t *testing.T) {
	db := snapshotServeDB(t)
	query := "Q(x,y) :- edge(x,z), edge(z,y)."
	hA := newHandler(db, serve.Config{})

	// First page + cursor on the original server.
	code, out := postJSON(t, hA, "/v1/enumerate", map[string]interface{}{"query": query, "limit": 5})
	if code != http.StatusOK {
		t.Fatalf("first page: status %d: %s", code, out["error"])
	}
	var firstPage [][]int64
	json.Unmarshal(out["answers"], &firstPage)
	var cursor string
	if err := json.Unmarshal(out["next_cursor"], &cursor); err != nil || cursor == "" {
		t.Fatalf("no cursor on the first page (answers %d)", len(firstPage))
	}
	wantRest := resumeAll(t, hA, query, cursor)
	if len(wantRest) == 0 {
		t.Fatal("instance too small: nothing left after the first page")
	}

	// Handle + reference answers on the original server.
	handle := prepareHandle(t, hA, query)
	var wantCount string
	code, out = postJSON(t, hA, "/v1/count", map[string]interface{}{"handle": handle})
	if code != http.StatusOK {
		t.Fatalf("count on original: status %d", code)
	}
	json.Unmarshal(out["count"], &wantCount)

	path := filepath.Join(t.TempDir(), "db.snap")
	if err := snapshot.WriteFile(path, db, nil, nil); err != nil {
		t.Fatal(err)
	}

	heap, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := snapshot.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	for _, bk := range []struct {
		label string
		db    *database.Database
	}{{"heap reload", heap.Database()}, {"mmap", mapped.Database()}} {
		if bk.db.Generation() != db.Generation() {
			t.Fatalf("%s: generation %d, original %d — cursors could never transfer",
				bk.label, bk.db.Generation(), db.Generation())
		}
		hB := newHandler(bk.db, serve.Config{})

		// The original server's cursor resumes here, mid-stream, to the
		// byte-identical remaining sequence.
		gotRest := resumeAll(t, hB, query, cursor)
		if !sameWire(gotRest, wantRest) {
			t.Fatalf("%s: resumed sequence diverged (%d vs %d answers)", bk.label, len(gotRest), len(wantRest))
		}

		// The original server's statement handle works unmodified.
		code, out := postJSON(t, hB, "/v1/decide", map[string]interface{}{"handle": handle})
		if code != http.StatusOK {
			t.Fatalf("%s: decide by transferred handle: status %d: %s", bk.label, code, out["error"])
		}
		var ok bool
		json.Unmarshal(out["answer"], &ok)
		if !ok {
			t.Fatalf("%s: decide by transferred handle: false", bk.label)
		}
		code, out = postJSON(t, hB, "/v1/count", map[string]interface{}{"handle": handle})
		if code != http.StatusOK {
			t.Fatalf("%s: count by transferred handle: status %d", bk.label, code)
		}
		var gotCount string
		json.Unmarshal(out["count"], &gotCount)
		if gotCount != wantCount {
			t.Fatalf("%s: count %s, original %s", bk.label, gotCount, wantCount)
		}
		code, out = postJSON(t, hB, "/v1/enumerate", map[string]interface{}{"handle": handle, "limit": 5})
		if code != http.StatusOK {
			t.Fatalf("%s: enumerate by transferred handle: status %d", bk.label, code)
		}
		var page [][]int64
		json.Unmarshal(out["answers"], &page)
		if !sameWire(page, firstPage) {
			t.Fatalf("%s: first page by handle diverged from original", bk.label)
		}
	}

	// Mutating the mmap-backed restore invalidates transferred cursors
	// (generation moved) without disturbing the snapshot file — a second
	// mmap of the same path still matches the original.
	re := mapped.Database().Relation("edge")
	re.Insert(database.Tuple{1000, 1000}) // outside the generated domain: a real insert, not a dup no-op
	hMut := newHandler(mapped.Database(), serve.Config{})
	code, out = postJSON(t, hMut, "/v1/enumerate", map[string]interface{}{"query": query, "cursor": cursor})
	if code != http.StatusGone {
		t.Fatalf("stale transferred cursor: status %d, want %d: %s", code, http.StatusGone, out["error"])
	}
	fresh, err := snapshot.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.Database().Generation() != db.Generation() {
		t.Fatal("mutating a mapped restore leaked into the snapshot file")
	}
}
