package serve_test

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/serve"
)

// chainDB builds A = B = {(i, i+1) : i < n}; Q(x,y) :- A(x,y), B(y,z) is
// free-connex over it with n-1 answers, big enough to outlive any deadline.
func chainDB(n int) *database.Database {
	db := database.NewDatabase()
	a := database.NewRelation("A", 2)
	b := database.NewRelation("B", 2)
	for i := 0; i < n; i++ {
		a.Insert(database.Tuple{database.Value(i), database.Value(i + 1)})
		b.Insert(database.Tuple{database.Value(i), database.Value(i + 1)})
	}
	db.AddRelation(a)
	db.AddRelation(b)
	return db
}

const chainQuery = "Q(x,y) :- A(x,y), B(y,z)."

// TestDeadlineCutsStreamWithoutLeaking: a 1ms deadline against a 200k-answer
// stream must cut the NDJSON at an answer boundary with an in-band error
// line — and because enumeration is synchronous in the handler, the
// goroutine count afterwards matches the count before.
func TestDeadlineCutsStreamWithoutLeaking(t *testing.T) {
	h := newHandler(chainDB(200_000), serve.Config{})
	// Warm the cache so the deadline is spent inside the stream, not on the
	// one-time bind of a 200k-tuple database.
	if code, _ := postJSON(t, h, "/v1/decide", map[string]interface{}{"query": chainQuery}); code != http.StatusOK {
		t.Fatalf("warmup: status %d", code)
	}
	runtime.GC()
	before := runtime.NumGoroutine()

	buf, _ := json.Marshal(map[string]interface{}{
		"query": chainQuery, "stream": true, "deadline_ms": 5,
	})
	req := httptest.NewRequest("POST", "/v1/enumerate", bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream status %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	last := lines[len(lines)-1]
	var tail struct {
		Error string `json:"error"`
		Done  bool   `json:"done"`
	}
	if err := json.Unmarshal([]byte(last), &tail); err != nil {
		t.Fatalf("last stream line is not JSON: %v\n%s", err, last)
	}
	if tail.Error != "deadline_exceeded" {
		t.Fatalf("stream of 200k answers finished under a 5ms deadline (last line %s)", last)
	}
	// Every line before the cut is a well-formed answer line.
	for _, l := range lines[:len(lines)-1] {
		var line struct {
			Answer []int64 `json:"answer"`
		}
		if err := json.Unmarshal([]byte(l), &line); err != nil || len(line.Answer) != 2 {
			t.Fatalf("malformed answer line before the cut: %q", l)
		}
	}

	// No goroutines may outlive the request.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked across a deadline-cut stream: %d before, %d after", before, after)
	}
}

// TestDeadlineExpiresPageMode: page mode under an immediate deadline fails
// closed with 504/deadline_exceeded rather than returning a partial page.
func TestDeadlineExpiresPageMode(t *testing.T) {
	h := newHandler(chainDB(200_000), serve.Config{MaxPageSize: 1 << 20})
	code, out := postJSON(t, h, "/v1/enumerate", map[string]interface{}{
		"query": chainQuery, "limit": 1 << 20, "deadline_ms": 1,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
	var e string
	json.Unmarshal(out["error"], &e)
	if e != "deadline_exceeded" {
		t.Fatalf("error %q, want deadline_exceeded", e)
	}
}

// TestCursorRejection: forged, mismatched, truncated, and oversized cursors
// are all refused before any of their fields are trusted.
func TestCursorRejection(t *testing.T) {
	db := chainDB(64)
	h := newHandler(db, serve.Config{})
	code, out := postJSON(t, h, "/v1/enumerate", map[string]interface{}{
		"query": chainQuery, "limit": 4,
	})
	if code != http.StatusOK {
		t.Fatalf("first page: status %d", code)
	}
	var cur string
	json.Unmarshal(out["next_cursor"], &cur)
	if cur == "" {
		t.Fatal("no cursor on an unfinished pagination")
	}

	expect := func(what, cursor, query string, wantCode int, wantErr string) {
		t.Helper()
		code, out := postJSON(t, h, "/v1/enumerate", map[string]interface{}{
			"query": query, "cursor": cursor,
		})
		var e string
		if out["error"] != nil {
			json.Unmarshal(out["error"], &e)
		}
		if code != wantCode || e != wantErr {
			t.Fatalf("%s: got %d/%q, want %d/%q", what, code, e, wantCode, wantErr)
		}
	}

	// Flip one bit inside the authenticated region.
	raw, err := base64.RawURLEncoding.DecodeString(cur)
	if err != nil {
		t.Fatal(err)
	}
	raw[5] ^= 1
	expect("forged fingerprint", base64.RawURLEncoding.EncodeToString(raw), chainQuery,
		http.StatusBadRequest, "bad_cursor")

	// A valid cursor replayed against a different query.
	expect("query mismatch", cur, "Q(y,x) :- A(x,y), B(y,z).",
		http.StatusBadRequest, "cursor_mismatch")

	expect("truncated", cur[:8], chainQuery, http.StatusBadRequest, "bad_cursor")
	expect("oversized", strings.Repeat("A", 4096), chainQuery, http.StatusBadRequest, "bad_cursor")
	expect("not base64", "!!!!", chainQuery, http.StatusBadRequest, "bad_cursor")

	// The untampered cursor still works afterwards.
	code, _ = postJSON(t, h, "/v1/enumerate", map[string]interface{}{
		"query": chainQuery, "cursor": cur,
	})
	if code != http.StatusOK {
		t.Fatalf("legitimate cursor refused: status %d", code)
	}
}

// TestStatelessResumeAcrossCacheEviction: a cursor held by a client outlives
// the server's prepared-statement cache — Reset evicts everything, and the
// resumed request transparently re-binds and completes the pagination.
func TestStatelessResumeAcrossCacheEviction(t *testing.T) {
	db := chainDB(32)
	srv := serve.New(db, nil, serve.Config{CursorKey: testKey})
	h := srv.Handler()

	got := answerSet{}
	code, out := postJSON(t, h, "/v1/enumerate", map[string]interface{}{
		"query": chainQuery, "limit": 10,
	})
	if code != http.StatusOK {
		t.Fatalf("first page: status %d", code)
	}
	var answers [][]int64
	json.Unmarshal(out["answers"], &answers)
	for _, a := range answers {
		got[keyOf(a)]++
	}
	var cur string
	json.Unmarshal(out["next_cursor"], &cur)

	srv.Cache().Reset() // the server forgets every plan and binding

	for cur != "" {
		code, out := postJSON(t, h, "/v1/enumerate", map[string]interface{}{
			"query": chainQuery, "cursor": cur, "limit": 10,
		})
		if code != http.StatusOK {
			t.Fatalf("resume after eviction: status %d: %s", code, out["error"])
		}
		json.Unmarshal(out["answers"], &answers)
		for _, a := range answers {
			got[keyOf(a)]++
			if got[keyOf(a)] > 1 {
				t.Fatalf("duplicate answer %v across the eviction boundary", a)
			}
		}
		var done bool
		json.Unmarshal(out["done"], &done)
		cur = ""
		if !done {
			json.Unmarshal(out["next_cursor"], &cur)
		}
	}
	if want := oracleSetFromQuery(t, db); !sameSets(got, want) {
		t.Fatalf("resumed pagination lost answers: %d got, %d want", len(got), len(want))
	}
}

func oracleSetFromQuery(t *testing.T, db *database.Database) answerSet {
	t.Helper()
	q, err := logic.ParseCQ(chainQuery)
	if err != nil {
		t.Fatal(err)
	}
	return oracleSet(t, db, q)
}

// TestMutateEndpoint covers the mutation surface: insert, duplicate insert,
// delete, absent delete, unknown relation, arity mismatch, unknown op.
func TestMutateEndpoint(t *testing.T) {
	h := newHandler(chainDB(4), serve.Config{})
	post := func(body map[string]interface{}) (int, map[string]json.RawMessage) {
		return postJSON(t, h, "/v1/mutate", body)
	}
	appliedOf := func(out map[string]json.RawMessage) bool {
		var b bool
		json.Unmarshal(out["applied"], &b)
		return b
	}

	if code, out := post(map[string]interface{}{"pred": "A", "op": "insert", "tuple": []int64{100, 101}}); code != 200 || !appliedOf(out) {
		t.Fatalf("insert: %d applied=%v", code, appliedOf(out))
	}
	if code, out := post(map[string]interface{}{"pred": "A", "op": "delete", "tuple": []int64{100, 101}}); code != 200 || !appliedOf(out) {
		t.Fatalf("delete: %d applied=%v", code, appliedOf(out))
	}
	if code, out := post(map[string]interface{}{"pred": "A", "op": "delete", "tuple": []int64{100, 101}}); code != 200 || appliedOf(out) {
		t.Fatalf("absent delete: %d applied=%v, want applied=false", code, appliedOf(out))
	}
	if code, _ := post(map[string]interface{}{"pred": "Z", "op": "insert", "tuple": []int64{1}}); code != http.StatusNotFound {
		t.Fatalf("unknown relation: status %d, want 404", code)
	}
	if code, _ := post(map[string]interface{}{"pred": "A", "op": "insert", "tuple": []int64{1}}); code != http.StatusBadRequest {
		t.Fatalf("arity mismatch: status %d, want 400", code)
	}
	if code, _ := post(map[string]interface{}{"pred": "A", "op": "upsert", "tuple": []int64{1, 2}}); code != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d, want 400", code)
	}
}

// TestStatsAndHealth: the observability endpoints answer with well-formed
// JSON that reflects traffic.
func TestStatsAndHealth(t *testing.T) {
	h := newHandler(chainDB(8), serve.Config{})
	postJSON(t, h, "/v1/decide", map[string]interface{}{"query": chainQuery})
	postJSON(t, h, "/v1/count", map[string]interface{}{"query": chainQuery})

	req := httptest.NewRequest("GET", "/v1/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rec.Code)
	}
	var st serve.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats body: %v", err)
	}
	if st.Requests["decide"] != 1 || st.Requests["count"] != 1 {
		t.Fatalf("request counters %v", st.Requests)
	}
	if st.LatencyCount != 2 {
		t.Fatalf("latency count %d, want 2", st.LatencyCount)
	}

	req = httptest.NewRequest("GET", "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}
}
