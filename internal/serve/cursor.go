package serve

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"errors"
)

// A cursor makes paginated enumeration stateless on the server: it pins the
// plan fingerprint (so a cursor cannot be replayed against a different
// query), the database generation it was minted at (so answers from two
// generations are never stitched into one page), and the offset of the next
// answer. The server keeps nothing per client — resuming after the cached
// Prepared was evicted just re-binds, and the deterministic enumeration
// order makes the offset meaningful again.
//
// Wire format: base64url( version | fp | gen | offset | mac ), fixed-width
// big-endian uint64 fields and an HMAC-SHA256 tag truncated to 8 bytes
// under a per-server key, so forged or corrupted cursors are rejected
// before any of their fields are trusted.

const (
	cursorVersion = 1
	cursorRawLen  = 1 + 8 + 8 + 8 + 8
)

var (
	errCursorMalformed = errors.New("serve: malformed cursor")
	errCursorForged    = errors.New("serve: cursor failed authentication")
)

type cursor struct {
	fp     uint64
	gen    uint64
	offset uint64
}

func cursorMAC(key, raw []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(raw)
	return m.Sum(nil)[:8]
}

func encodeCursor(key []byte, c cursor) string {
	raw := make([]byte, cursorRawLen)
	raw[0] = cursorVersion
	binary.BigEndian.PutUint64(raw[1:], c.fp)
	binary.BigEndian.PutUint64(raw[9:], c.gen)
	binary.BigEndian.PutUint64(raw[17:], c.offset)
	copy(raw[25:], cursorMAC(key, raw[:25]))
	return base64.RawURLEncoding.EncodeToString(raw)
}

// maxCursorLen bounds the encoded form well above the legitimate size
// (45 bytes) so oversized inputs are refused before base64 work.
const maxCursorLen = 128

func decodeCursor(key []byte, s string) (cursor, error) {
	if len(s) > maxCursorLen {
		return cursor{}, errCursorMalformed
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil || len(raw) != cursorRawLen || raw[0] != cursorVersion {
		return cursor{}, errCursorMalformed
	}
	if !hmac.Equal(raw[25:], cursorMAC(key, raw[:25])) {
		return cursor{}, errCursorForged
	}
	return cursor{
		fp:     binary.BigEndian.Uint64(raw[1:]),
		gen:    binary.BigEndian.Uint64(raw[9:]),
		offset: binary.BigEndian.Uint64(raw[17:]),
	}, nil
}
