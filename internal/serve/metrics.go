package serve

import (
	"expvar"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// metrics is the server's live instrumentation: request counts per
// endpoint, admission/backpressure outcomes, and an end-to-end request
// latency histogram (the same lock-free log₂ histogram the delay
// instrumentation uses, so expvar exposes the serving p99 next to the
// enumeration-delay p99).
type metrics struct {
	requests        sync.Map // endpoint → *atomic.Int64
	inflight        atomic.Int64
	rejected        atomic.Int64 // 429s from admission control
	badRequests     atomic.Int64
	staleCursors    atomic.Int64 // 410s: cursor generation behind the database
	deadlineExpired atomic.Int64
	staleRetries    atomic.Int64 // ErrStalePlan recoveries (expected: 0 under the lock discipline)
	answersServed   atomic.Int64
	staleHandles    atomic.Int64 // 410s: statement handle no longer resolves
	shed503         atomic.Int64 // 503s: bind lane shed the request
	bindsQueued     atomic.Int64 // flights that waited for a bind-worker slot
	bindsCoalesced  atomic.Int64 // requests that joined another request's in-flight bind
	latency         *obs.Histogram
	bindWait        *obs.Histogram // waiter time in the bind lane
	bindCost        *obs.Histogram // observed bind execution cost
}

func newMetrics() *metrics {
	return &metrics{
		latency:  &obs.Histogram{},
		bindWait: &obs.Histogram{},
		bindCost: &obs.Histogram{},
	}
}

func (m *metrics) count(endpoint string) {
	c, ok := m.requests.Load(endpoint)
	if !ok {
		c, _ = m.requests.LoadOrStore(endpoint, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(1)
}

// Stats is a point-in-time snapshot of the server, JSON-shaped for the
// /v1/stats endpoint and for expvar. Latencies are nanoseconds.
type Stats struct {
	Generation      uint64           `json:"generation"`
	Inflight        int64            `json:"inflight"`
	Requests        map[string]int64 `json:"requests"`
	Rejected        int64            `json:"rejected_429"`
	BadRequests     int64            `json:"bad_requests"`
	StaleCursors    int64            `json:"stale_cursors"`
	DeadlineExpired int64            `json:"deadline_expired"`
	StaleRetries    int64            `json:"stale_plan_retries"`
	AnswersServed   int64            `json:"answers_served"`
	StaleHandles    int64            `json:"stale_handles"`
	Shed503         int64            `json:"shed_503"`
	BindsQueued     int64            `json:"binds_queued"`
	BindsCoalesced  int64            `json:"binds_coalesced"`
	BindQueueDepth  int              `json:"bind_queue_depth"`
	BindEwmaNS      int64            `json:"bind_ewma_ns"`
	BindWaitP99NS   int64            `json:"bind_wait_p99_ns"`
	BindCostP99NS   int64            `json:"bind_cost_p99_ns"`
	CacheHits       uint64           `json:"cache_hits"`
	CacheMisses     uint64           `json:"cache_misses"`
	CacheRefreshes  uint64           `json:"cache_refreshes"`
	CacheLen        int              `json:"cache_len"`
	LatencyP50NS    int64            `json:"latency_p50_ns"`
	LatencyP99NS    int64            `json:"latency_p99_ns"`
	LatencyMaxNS    int64            `json:"latency_max_ns"`
	LatencyCount    int64            `json:"latency_count"`
}

// Stats snapshots the server's counters, cache statistics, and latency
// quantiles.
func (s *Server) Stats() Stats {
	st := Stats{
		Generation:      s.db.Generation(),
		Inflight:        s.m.inflight.Load(),
		Requests:        map[string]int64{},
		Rejected:        s.m.rejected.Load(),
		BadRequests:     s.m.badRequests.Load(),
		StaleCursors:    s.m.staleCursors.Load(),
		DeadlineExpired: s.m.deadlineExpired.Load(),
		StaleRetries:    s.m.staleRetries.Load(),
		AnswersServed:   s.m.answersServed.Load(),
		StaleHandles:    s.m.staleHandles.Load(),
		Shed503:         s.m.shed503.Load(),
		BindsQueued:     s.m.bindsQueued.Load(),
		BindsCoalesced:  s.m.bindsCoalesced.Load(),
		BindQueueDepth:  s.binds.queueDepth(),
		BindEwmaNS:      s.binds.ewma(),
		BindWaitP99NS:   s.m.bindWait.QuantileInterpolated(0.99),
		BindCostP99NS:   s.m.bindCost.QuantileInterpolated(0.99),
		CacheRefreshes:  s.cache.Refreshes(),
		CacheLen:        s.cache.Len(),
		// Interpolated within the winning log₂ bucket: the raw Quantile
		// returns the bucket's upper bound, which pinned E21's p50/p99 to
		// powers of two (0.52ms/2.10ms) regardless of where the mass sat.
		LatencyP50NS: s.m.latency.QuantileInterpolated(0.5),
		LatencyP99NS: s.m.latency.QuantileInterpolated(0.99),
		LatencyMaxNS: s.m.latency.Max(),
		LatencyCount: s.m.latency.Count(),
	}
	st.CacheHits, st.CacheMisses = s.cache.Stats()
	s.m.requests.Range(func(k, v interface{}) bool {
		st.Requests[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return st
}

var (
	pubMu  sync.Mutex
	pubSrv = map[string]*Server{}
)

// Publish exposes the server's Stats as the expvar variable `name`
// (reachable via /debug/vars). Like obs.Observer.Publish it is re-entrant:
// publishing a second server under the same name replaces the first
// instead of panicking, which keeps tests that build many servers safe.
func (s *Server) Publish(name string) {
	pubMu.Lock()
	defer pubMu.Unlock()
	if _, ok := pubSrv[name]; !ok {
		n := name
		expvar.Publish(n, expvar.Func(func() interface{} {
			pubMu.Lock()
			cur := pubSrv[n]
			pubMu.Unlock()
			return cur.Stats()
		}))
	}
	pubSrv[name] = s
}
