package serve

import (
	"fmt"
	"math/rand"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/qgen"
)

// Workload is a seeded serving workload: a mix of queries over one shared
// database plus a replayable mutation script. qservd -gen and qload -seed
// both call this with the same seed, so the traffic generator knows the
// exact queries, relations, and tuples the daemon is serving without any
// out-of-band coordination — the seed IS the contract.
type Workload struct {
	Seed      int64
	Queries   []*logic.CQ
	DB        *database.Database
	Mutations []qgen.Mutation
}

// NewWorkload derives a workload deterministically from the seed:
// nQueries generated queries (alternating free-connex and general acyclic
// shapes, so both the constant-delay and linear-delay serving routes see
// traffic), a database covering all of them, and nMutations single-tuple
// updates. Each query's predicates are namespaced (q0_R1, q1_R0, …)
// because the generator draws names from a shared pool with per-query
// arities.
func NewWorkload(seed int64, nQueries, nMutations int) *Workload {
	rng := rand.New(rand.NewSource(seed))
	cfg := qgen.Default()
	var queries []*logic.CQ
	for len(queries) < nQueries {
		var q *logic.CQ
		if len(queries)%2 == 0 {
			q = qgen.FreeConnexCQ(rng, cfg)
		} else {
			q = qgen.AcyclicCQ(rng, cfg)
		}
		if len(q.Head) == 0 {
			continue
		}
		for j := range q.Atoms {
			q.Atoms[j].Pred = fmt.Sprintf("q%d_%s", len(queries), q.Atoms[j].Pred)
		}
		queries = append(queries, q)
	}
	db := qgen.DatabaseFor(rng, cfg, queries...)
	mutations := qgen.MutationScript(rng, cfg, db, nMutations)

	// StormRel: a deliberately large binary relation none of the workload
	// queries touch. Cold binds against the generated relations finish in
	// tens of microseconds (they are small), which makes a realistic bind
	// storm impossible to stage — so E23's storm queries join over this
	// relation instead, where one cold bind costs real semijoin work while
	// compile stays cheap. It is appended after the mutation script is
	// derived so the script's tuples are unchanged from earlier seeds.
	storm := database.NewRelation(StormRel, 2)
	for i := 0; i < stormRows; i++ {
		storm.InsertValues(database.Value(i), database.Value((i+1)%stormRows))
	}
	db.AddRelation(storm)

	return &Workload{
		Seed:      seed,
		Queries:   queries,
		DB:        db,
		Mutations: mutations,
	}
}

// StormRel is the big relation E23's cold-bind storm chains over.
const StormRel = "storm_edge"

// stormRows is sized so one cold bind of a few-atom chain over StormRel
// costs low tens of milliseconds — expensive enough that an uncontrolled
// storm visibly starves warm traffic, cheap enough that a single bind
// never dominates a whole trial.
const stormRows = 1 << 12
