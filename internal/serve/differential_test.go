package serve_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/oracle"
	"repro/internal/plan"
	"repro/internal/qgen"
	"repro/internal/serve"
)

// Every failure report names the seed; replay a single instance with:
//
//	go test ./internal/serve -run TestServePaginationDifferential -seed=17
var seedFlag = flag.Int64("seed", -1, "replay a single differential seed")

// testKey pins cursor authentication so cursors can be minted and tampered
// with deterministically across servers in one test.
var testKey = bytes.Repeat([]byte{0x42}, 32)

func newHandler(db *database.Database, cfg serve.Config) http.Handler {
	if len(cfg.CursorKey) == 0 {
		cfg.CursorKey = testKey
	}
	return serve.New(db, nil, cfg).Handler()
}

// postJSON drives the mux in-process: no TCP, just the handler.
func postJSON(t *testing.T, h http.Handler, path string, body interface{}) (int, map[string]json.RawMessage) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]json.RawMessage
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("POST %s: body is not JSON: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec.Code, out
}

type answerSet map[string]int

func keyOf(t []int64) string { return fmt.Sprint(t) }

func toSet(answers [][]int64) answerSet {
	s := answerSet{}
	for _, a := range answers {
		s[keyOf(a)]++
	}
	return s
}

func oracleSet(t *testing.T, db *database.Database, q *logic.CQ) answerSet {
	t.Helper()
	want, err := oracle.Eval(db, q)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	s := answerSet{}
	for _, tp := range want {
		ints := make([]int64, len(tp))
		for i, v := range tp {
			ints[i] = int64(v)
		}
		s[keyOf(ints)]++
	}
	return s
}

func sameSets(a, b answerSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// walkPages paginates /v1/enumerate to exhaustion, asserting every page is
// well-formed and no answer is duplicated across pages.
func walkPages(t *testing.T, h http.Handler, query string, pageSize int) answerSet {
	t.Helper()
	got := answerSet{}
	cursor := ""
	for page := 0; ; page++ {
		body := map[string]interface{}{"query": query, "limit": pageSize}
		if cursor != "" {
			body["cursor"] = cursor
		}
		code, out := postJSON(t, h, "/v1/enumerate", body)
		if code != http.StatusOK {
			t.Fatalf("page %d (size %d): status %d: %s", page, pageSize, code, out["error"])
		}
		var answers [][]int64
		if err := json.Unmarshal(out["answers"], &answers); err != nil {
			t.Fatalf("page %d: bad answers: %v", page, err)
		}
		if len(answers) > pageSize {
			t.Fatalf("page %d: %d answers exceed page size %d", page, len(answers), pageSize)
		}
		for _, a := range answers {
			got[keyOf(a)]++
			if got[keyOf(a)] > 1 {
				t.Fatalf("page %d: duplicate answer %v across pages", page, a)
			}
		}
		var done bool
		if err := json.Unmarshal(out["done"], &done); err != nil {
			t.Fatalf("page %d: bad done: %v", page, err)
		}
		if done {
			if out["next_cursor"] != nil {
				t.Fatalf("page %d: done page still carries a cursor", page)
			}
			return got
		}
		if err := json.Unmarshal(out["next_cursor"], &cursor); err != nil || cursor == "" {
			t.Fatalf("page %d: not done but no usable cursor (%v)", page, err)
		}
	}
}

// streamAll drains /v1/enumerate in stream mode (NDJSON) to one set.
func streamAll(t *testing.T, h http.Handler, query string) answerSet {
	t.Helper()
	buf, _ := json.Marshal(map[string]interface{}{"query": query, "stream": true})
	req := httptest.NewRequest("POST", "/v1/enumerate", bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream: status %d: %s", rec.Code, rec.Body.String())
	}
	got := answerSet{}
	sawDone := false
	dec := json.NewDecoder(rec.Body)
	for dec.More() {
		var line struct {
			Answer []int64 `json:"answer"`
			Done   *bool   `json:"done"`
			Error  string  `json:"error"`
		}
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("stream: bad NDJSON line: %v", err)
		}
		switch {
		case line.Error != "":
			t.Fatalf("stream: server error %q", line.Error)
		case line.Done != nil:
			sawDone = true
		default:
			got[keyOf(line.Answer)]++
		}
	}
	if !sawDone {
		t.Fatal("stream ended without a done line")
	}
	return got
}

// The three serving routes under differential test. Each builder may give
// up for a seed whose generated query does not land on the wanted engine.
type routeCase struct {
	name   string
	engine plan.Engine
	build  func(rng *rand.Rand, cfg qgen.Config) *logic.CQ
}

func engineOf(q *logic.CQ) plan.Engine {
	p, err := plan.Compile(q)
	if err != nil {
		return ""
	}
	return p.EnumerateEngine
}

var routes = []routeCase{
	{"constant-delay", plan.EngineConstantDelay, func(rng *rand.Rand, cfg qgen.Config) *logic.CQ {
		for i := 0; i < 40; i++ {
			q := qgen.FreeConnexCQ(rng, cfg)
			if len(q.Head) > 0 && engineOf(q) == plan.EngineConstantDelay {
				return q
			}
		}
		return nil
	}},
	{"linear-delay", plan.EngineLinearDelay, func(rng *rand.Rand, cfg qgen.Config) *logic.CQ {
		for i := 0; i < 40; i++ {
			q := qgen.AcyclicCQ(rng, cfg)
			if len(q.Head) > 0 && engineOf(q) == plan.EngineLinearDelay {
				return q
			}
		}
		return nil
	}},
	{"neq-enum", plan.EngineNeqEnum, func(rng *rand.Rand, cfg qgen.Config) *logic.CQ {
		for i := 0; i < 40; i++ {
			q := qgen.FreeConnexCQ(rng, cfg)
			if len(q.Head) < 2 {
				continue
			}
			q.Comparisons = append(q.Comparisons, logic.Comparison{
				Op: logic.NEQ, L: logic.V(q.Head[0]), R: logic.V(q.Head[1]),
			})
			if engineOf(q) == plan.EngineNeqEnum {
				return q
			}
		}
		return nil
	}},
}

// TestServePaginationDifferential: for 250 seeded instances per route,
// cursor-resumed pagination at several page sizes (including 1) and the
// NDJSON stream each produce exactly the oracle's answer set; and a cursor
// that survives a mutation is refused as stale, after which a restarted
// pagination matches the oracle on the mutated database.
func TestServePaginationDifferential(t *testing.T) {
	seeds := make([]int64, 0, 250)
	if *seedFlag >= 0 {
		seeds = append(seeds, *seedFlag)
	} else {
		for s := int64(0); s < 250; s++ {
			seeds = append(seeds, s)
		}
	}
	covered := map[string]int{}
	for _, seed := range seeds {
		for _, rc := range routes {
			rng := rand.New(rand.NewSource(seed))
			cfg := qgen.Default()
			q := rc.build(rng, cfg)
			if q == nil {
				continue
			}
			covered[rc.name]++
			// The query must survive the wire: the server re-parses text.
			if _, err := logic.ParseCQ(q.String()); err != nil {
				t.Fatalf("seed %d %s: query %q does not round-trip: %v", seed, rc.name, q, err)
			}
			db := qgen.DatabaseFor(rng, cfg, q)
			h := newHandler(db, serve.Config{})
			want := oracleSet(t, db, q)

			for _, pageSize := range []int{1, 3, 7, 16} {
				got := walkPages(t, h, q.String(), pageSize)
				if !sameSets(got, want) {
					t.Fatalf("seed %d %s: pages(size %d) ≠ one-shot (%d vs %d answers)\nreplay: go test ./internal/serve -run %s -seed=%d\n%s",
						seed, rc.name, pageSize, len(got), len(want), t.Name(), seed, qgen.FormatInstance(q, db))
				}
			}
			if got := streamAll(t, h, q.String()); !sameSets(got, want) {
				t.Fatalf("seed %d %s: stream ≠ oracle\nreplay: go test ./internal/serve -run %s -seed=%d",
					seed, rc.name, t.Name(), seed)
			}

			// Resume-after-mutation: a mid-pagination cursor dies with 410
			// once the database moves; restarting from scratch reflects the
			// new generation (the refreshed cache entry, not a stale one).
			if script := qgen.MutationScript(rng, cfg, db, 1); len(script) == 1 {
				code, out := postJSON(t, h, "/v1/enumerate", map[string]interface{}{
					"query": q.String(), "limit": 2,
				})
				if code != http.StatusOK {
					t.Fatalf("seed %d %s: first page: status %d", seed, rc.name, code)
				}
				var done bool
				var genBefore uint64
				json.Unmarshal(out["done"], &done)
				json.Unmarshal(out["generation"], &genBefore)
				m := script[0]
				op := "delete"
				if m.Insert {
					op = "insert"
				}
				tuple := make([]int64, len(m.Tuple))
				for i, v := range m.Tuple {
					tuple[i] = int64(v)
				}
				code, mout := postJSON(t, h, "/v1/mutate", map[string]interface{}{
					"pred": m.Pred, "op": op, "tuple": tuple,
				})
				if code != http.StatusOK {
					t.Fatalf("seed %d %s: mutate: status %d", seed, rc.name, code)
				}
				var genAfter uint64
				json.Unmarshal(mout["generation"], &genAfter)
				// A duplicate insert or absent delete leaves the generation
				// alone; the cursor only dies when the database moved.
				if !done && genAfter != genBefore {
					var cur string
					json.Unmarshal(out["next_cursor"], &cur)
					code, out := postJSON(t, h, "/v1/enumerate", map[string]interface{}{
						"query": q.String(), "cursor": cur,
					})
					if code != http.StatusGone {
						t.Fatalf("seed %d %s: resumed a cursor across a mutation: status %d %s",
							seed, rc.name, code, out["error"])
					}
				}
				mutated := oracleSet(t, db, q)
				if got := walkPages(t, h, q.String(), 3); !sameSets(got, mutated) {
					t.Fatalf("seed %d %s: restart after mutation ≠ oracle on mutated db\nreplay: go test ./internal/serve -run %s -seed=%d",
						seed, rc.name, t.Name(), seed)
				}
			}
		}
	}
	for _, rc := range routes {
		if covered[rc.name] == 0 {
			t.Errorf("route %s: no seed produced an instance", rc.name)
		}
	}
	t.Logf("instances per route: %v", covered)
}
