package serve

import (
	"crypto/hmac"
	"encoding/base64"
	"encoding/binary"
	"errors"
)

// A statement handle is the prepared-statement analogue of a cursor: an
// opaque, HMAC-authenticated token minted by POST /v1/prepare that lets a
// client name a statement without resending (or re-parsing) the query
// text. It pins the plan fingerprint and the database generation it was
// minted at. The server keeps nothing per client — a handle resolves
// through the plan cache's fingerprint index, so it survives mutations and
// in-place refreshes, and only dies (410 unknown_handle) when the compiled
// plan itself has been dropped, e.g. after a cache reset. The generation
// field is informational (clients can log how far behind their handle is);
// freshness is re-checked per request exactly as for query-text requests.
//
// Wire format mirrors cursors: base64url( version | fp | gen | mac ), with
// fixed-width big-endian uint64 fields and an HMAC-SHA256 tag truncated to
// 8 bytes under the same per-server key. The version byte differs from the
// cursor's, so a handle pasted into a cursor field (or vice versa) fails
// decoding rather than being misinterpreted.

const (
	handleVersion = 2
	handleRawLen  = 1 + 8 + 8 + 8
)

var (
	errHandleMalformed = errors.New("serve: malformed handle")
	errHandleForged    = errors.New("serve: handle failed authentication")
)

type stmtHandle struct {
	fp  uint64
	gen uint64
}

func encodeHandle(key []byte, h stmtHandle) string {
	raw := make([]byte, handleRawLen)
	raw[0] = handleVersion
	binary.BigEndian.PutUint64(raw[1:], h.fp)
	binary.BigEndian.PutUint64(raw[9:], h.gen)
	copy(raw[17:], cursorMAC(key, raw[:17]))
	return base64.RawURLEncoding.EncodeToString(raw)
}

// maxHandleLen bounds the encoded form well above the legitimate size
// (34 bytes) so oversized inputs are refused before base64 work.
const maxHandleLen = 64

func decodeHandle(key []byte, s string) (stmtHandle, error) {
	if len(s) > maxHandleLen {
		return stmtHandle{}, errHandleMalformed
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil || len(raw) != handleRawLen || raw[0] != handleVersion {
		return stmtHandle{}, errHandleMalformed
	}
	if !hmac.Equal(raw[17:], cursorMAC(key, raw[:17])) {
		return stmtHandle{}, errHandleForged
	}
	return stmtHandle{
		fp:  binary.BigEndian.Uint64(raw[1:]),
		gen: binary.BigEndian.Uint64(raw[9:]),
	}, nil
}
