// Package oracle is a deliberately naive, obviously-correct reference
// engine for conjunctive queries and unions of conjunctive queries. It
// evaluates a query by enumerating assignments of the query's variables to
// the active domain and checking every atom by a linear scan over the
// relation's tuple list — no join trees, no hash indexes, no shared code
// with the optimized engines, O(‖dom‖^vars) and proud of it.
//
// Its purpose is differential testing: every answer-producing engine in the
// repository (sequential and parallel Yannakakis, constant- and
// linear-delay enumeration, random access, the counting DP, UCQ
// inclusion–exclusion) is compared against this oracle on randomized
// instances (see internal/qgen). The implementation is kept independent of
// internal/logic's own EvalNaive so that a bug in one naive evaluator
// cannot hide the same bug in the other.
//
// The only concession to tractability is constraint-driven pruning: a
// constraint (atom, negated atom, comparison) is checked as soon as all of
// its variables are assigned, cutting branches that provably cannot satisfy
// the query. Pruning never removes a satisfying assignment, so the answer
// set is exactly the Chandra–Merlin semantics of Section 2.1 of the paper.
package oracle

import (
	"fmt"
	"sort"

	"repro/internal/database"
	"repro/internal/logic"
)

// DefaultBudget bounds the number of search-tree nodes a single evaluation
// may explore before giving up with an error. The oracle is meant for small
// randomized instances; the budget turns an accidental blow-up into a clean
// test failure instead of a hung suite.
const DefaultBudget = 1 << 27

// evaluator holds the per-query state of one brute-force run.
type evaluator struct {
	db     *database.Database
	vars   []string
	varIdx map[string]int
	val    []database.Value // val[i] = current value of vars[i]
	dom    []database.Value

	// Constraints become checkable at the depth where their last variable
	// is assigned; readyAtoms[d] lists the positive atoms checkable once
	// vars[0..d-1] are set (d = 0 means constant-only constraints).
	readyAtoms [][]logic.Atom
	readyNegs  [][]logic.Atom
	readyComps [][]logic.Comparison

	budget int64
}

func newEvaluator(db *database.Database, q *logic.CQ, budget int64) *evaluator {
	e := &evaluator{
		db:     db,
		vars:   q.Vars(),
		dom:    db.Domain(),
		budget: budget,
	}
	e.varIdx = make(map[string]int, len(e.vars))
	for i, v := range e.vars {
		e.varIdx[v] = i
	}
	e.val = make([]database.Value, len(e.vars))
	n := len(e.vars) + 1
	e.readyAtoms = make([][]logic.Atom, n)
	e.readyNegs = make([][]logic.Atom, n)
	e.readyComps = make([][]logic.Comparison, n)
	for _, a := range q.Atoms {
		d := e.atomDepth(a)
		e.readyAtoms[d] = append(e.readyAtoms[d], a)
	}
	for _, a := range q.NegAtoms {
		d := e.atomDepth(a)
		e.readyNegs[d] = append(e.readyNegs[d], a)
	}
	for _, c := range q.Comparisons {
		d := 0
		if !c.L.IsConst {
			d = max(d, e.varIdx[c.L.Var]+1)
		}
		if !c.R.IsConst {
			d = max(d, e.varIdx[c.R.Var]+1)
		}
		e.readyComps[d] = append(e.readyComps[d], c)
	}
	return e
}

// atomDepth returns the depth at which every variable of a is assigned.
func (e *evaluator) atomDepth(a logic.Atom) int {
	d := 0
	for _, t := range a.Args {
		if !t.IsConst {
			d = max(d, e.varIdx[t.Var]+1)
		}
	}
	return d
}

func (e *evaluator) termValue(t logic.Term) database.Value {
	if t.IsConst {
		return t.Const
	}
	return e.val[e.varIdx[t.Var]]
}

// atomHolds checks R(t̄) under the current assignment by scanning the
// relation's tuples front to back — deliberately no index.
func (e *evaluator) atomHolds(a logic.Atom) bool {
	r := e.db.Relation(a.Pred)
	if r == nil {
		return false
	}
	if r.Arity != len(a.Args) {
		return false
	}
	want := make(database.Tuple, len(a.Args))
	for i, t := range a.Args {
		want[i] = e.termValue(t)
	}
scan:
	for _, row := range r.Tuples {
		for i := range want {
			if row[i] != want[i] {
				continue scan
			}
		}
		return true
	}
	return false
}

// check verifies every constraint that became fully assigned at depth d.
func (e *evaluator) check(d int) bool {
	for _, a := range e.readyAtoms[d] {
		if !e.atomHolds(a) {
			return false
		}
	}
	for _, a := range e.readyNegs[d] {
		if e.atomHolds(a) {
			return false
		}
	}
	for _, c := range e.readyComps[d] {
		if !c.Op.Eval(e.termValue(c.L), e.termValue(c.R)) {
			return false
		}
	}
	return true
}

// run explores the assignment tree, calling leaf for every total assignment
// satisfying the query. leaf returning false stops the search early.
func (e *evaluator) run(leaf func() bool) error {
	var rec func(d int) (bool, error)
	rec = func(d int) (bool, error) {
		e.budget--
		if e.budget < 0 {
			return false, fmt.Errorf("oracle: search budget exhausted (domain %d, %d variables)", len(e.dom), len(e.vars))
		}
		if !e.check(d) {
			return true, nil
		}
		if d == len(e.vars) {
			return leaf(), nil
		}
		for _, v := range e.dom {
			e.val[d] = v
			cont, err := rec(d + 1)
			if !cont || err != nil {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := rec(0)
	return err
}

// Eval computes φ(D) by exhaustive search: the sorted, duplicate-free list
// of head tuples of satisfying assignments. A true Boolean query yields the
// single empty tuple.
func Eval(db *database.Database, q *logic.CQ) ([]database.Tuple, error) {
	return EvalBudget(db, q, DefaultBudget)
}

// EvalBudget is Eval with an explicit search budget.
func EvalBudget(db *database.Database, q *logic.CQ, budget int64) ([]database.Tuple, error) {
	e := newEvaluator(db, q, budget)
	headIdx := make([]int, len(q.Head))
	for i, v := range q.Head {
		headIdx[i] = e.varIdx[v]
	}
	seen := make(map[string]bool)
	var out []database.Tuple
	err := e.run(func() bool {
		t := make(database.Tuple, len(headIdx))
		for i, j := range headIdx {
			t[i] = e.val[j]
		}
		k := fmt.Sprint([]database.Value(t))
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

// Count returns |φ(D)| by exhaustive search.
func Count(db *database.Database, q *logic.CQ) (int, error) {
	out, err := Eval(db, q)
	if err != nil {
		return 0, err
	}
	return len(out), nil
}

// Decide reports whether some assignment satisfies the query's body,
// ignoring the head (the Boolean query problem). It stops at the first
// witness.
func Decide(db *database.Database, q *logic.CQ) (bool, error) {
	e := newEvaluator(db, q, DefaultBudget)
	found := false
	err := e.run(func() bool {
		found = true
		return false
	})
	if err != nil {
		return false, err
	}
	return found, nil
}

// EvalUCQ computes the duplicate-free union φ1(D) ∪ ... ∪ φk(D), sorted.
func EvalUCQ(db *database.Database, u *logic.UCQ) ([]database.Tuple, error) {
	seen := make(map[string]bool)
	var out []database.Tuple
	for _, d := range u.Disjuncts {
		res, err := Eval(db, d)
		if err != nil {
			return nil, err
		}
		for _, t := range res {
			k := fmt.Sprint([]database.Value(t))
			if !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

// CountUCQ returns |φ1(D) ∪ ... ∪ φk(D)|.
func CountUCQ(db *database.Database, u *logic.UCQ) (int, error) {
	out, err := EvalUCQ(db, u)
	if err != nil {
		return 0, err
	}
	return len(out), nil
}
