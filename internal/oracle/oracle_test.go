package oracle

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/logic/logictest"
	"repro/internal/qgen"
)

func pathGraph() *database.Database {
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	for _, p := range [][2]database.Value{{1, 2}, {2, 3}, {3, 4}, {1, 3}} {
		e.InsertValues(p[0], p[1])
	}
	db.AddRelation(e)
	b := database.NewRelation("B", 1)
	b.InsertValues(2)
	db.AddRelation(b)
	return db
}

func tuples(rows ...[]database.Value) []database.Tuple {
	out := make([]database.Tuple, len(rows))
	for i, r := range rows {
		out[i] = database.Tuple(r)
	}
	return out
}

func TestEvalHandComputed(t *testing.T) {
	db := pathGraph()
	cases := []struct {
		src  string
		want []database.Tuple
	}{
		// Two-step paths: 1→2→3, 2→3→4, 1→3→4.
		{"Q(x,y) :- E(x,z), E(z,y).", tuples(
			[]database.Value{1, 3}, []database.Value{1, 4}, []database.Value{2, 4})},
		// Projection collapses duplicates: sources of 2-paths.
		{"Q(x) :- E(x,z), E(z,y).", tuples(
			[]database.Value{1}, []database.Value{2})},
		// Constant in an atom.
		{"Q(x) :- E(x, 3).", tuples(
			[]database.Value{1}, []database.Value{2})},
		// Repeated variable: no self-loops.
		{"Q(x) :- E(x,x).", nil},
		// Negation: edges whose source is not in B.
		{"Q(x,y) :- E(x,y), !B(x).", tuples(
			[]database.Value{1, 2}, []database.Value{1, 3}, []database.Value{3, 4})},
		// Comparison.
		{"Q(x,y) :- E(x,y), y <= 3.", tuples(
			[]database.Value{1, 2}, []database.Value{1, 3}, []database.Value{2, 3})},
		// Boolean true and false.
		{"Q() :- E(x,y), B(x).", tuples([]database.Value{})},
		{"Q() :- E(x,x).", nil},
		// Unknown predicate means an empty relation.
		{"Q(x) :- Nope(x).", nil},
	}
	for _, c := range cases {
		q := logictest.MustParseCQ(c.src)
		got, err := Eval(db, q)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: got %v, want %v", c.src, got, c.want)
		}
		n, err := Count(db, q)
		if err != nil || n != len(c.want) {
			t.Errorf("%s: count %d (err %v), want %d", c.src, n, err, len(c.want))
		}
		ok, err := Decide(db, q)
		if err != nil || ok != (len(c.want) > 0) {
			t.Errorf("%s: decide %v (err %v), want %v", c.src, ok, err, len(c.want) > 0)
		}
	}
}

func TestArityMismatchIsEmpty(t *testing.T) {
	db := pathGraph()
	// E has arity 2; an arity-1 atom over it can never hold.
	got, err := Eval(db, logictest.MustParseCQ("Q(x) :- E(x)."))
	if err != nil || len(got) != 0 {
		t.Fatalf("arity mismatch: got %v, err %v", got, err)
	}
}

func TestEvalUCQ(t *testing.T) {
	db := pathGraph()
	u := logictest.MustParseUCQ("Q(x) :- B(x); Q(x) :- E(x, 3).")
	got, err := EvalUCQ(db, u)
	if err != nil {
		t.Fatal(err)
	}
	want := tuples([]database.Value{1}, []database.Value{2})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("union: got %v, want %v", got, want)
	}
	n, err := CountUCQ(db, u)
	if err != nil || n != 2 {
		t.Fatalf("union count: %d (err %v)", n, err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	db := pathGraph()
	q := logictest.MustParseCQ("Q(a,b,c,d) :- E(a,b), E(c,d).")
	if _, err := EvalBudget(db, q, 3); err == nil {
		t.Fatal("expected budget-exhausted error")
	}
	if got, err := EvalBudget(db, q, DefaultBudget); err != nil || len(got) == 0 {
		t.Fatalf("full budget: %v, err %v", got, err)
	}
}

// TestAgainstEvalNaive cross-checks the oracle against internal/logic's own
// independent brute-force evaluator on random instances, including queries
// with negated atoms and comparisons the optimized engines reject.
func TestAgainstEvalNaive(t *testing.T) {
	cfg := qgen.Default()
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := qgen.AcyclicCQ(rng, cfg)
		// Bolt on a comparison and a negated atom on some seeds to cover
		// the extended-CQ paths.
		vs := q.Vars()
		if seed%3 == 0 && len(vs) >= 2 {
			q.Comparisons = append(q.Comparisons, logic.Comparison{
				Op: logic.NEQ, L: logic.V(vs[0]), R: logic.V(vs[1]),
			})
		}
		if seed%5 == 0 {
			q.NegAtoms = append(q.NegAtoms, logic.NewAtom("N", vs[0]))
		}
		db := qgen.DatabaseFor(rng, cfg, q)
		got, err := Eval(db, q)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, qgen.FormatInstance(q, db))
		}
		want := q.EvalNaive(db)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: oracle %v, EvalNaive %v\n%s",
				seed, got, want, qgen.FormatInstance(q, db))
		}
	}
}

func TestUCQAgainstEvalNaive(t *testing.T) {
	cfg := qgen.Default()
	// EvalNaive has no pruning, so keep the unprojected variable count low.
	cfg.MaxAtoms = 3
	cfg.MaxFresh = 1
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		u := qgen.UCQ(rng, cfg)
		db := qgen.DatabaseForUCQ(rng, cfg, u)
		got, err := EvalUCQ(db, u)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, qgen.FormatInstance(u, db))
		}
		want := u.EvalNaive(db)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: oracle %v, EvalNaive %v\n%s",
				seed, got, want, qgen.FormatInstance(u, db))
		}
	}
}
