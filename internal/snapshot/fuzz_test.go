package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/database"
)

// FuzzSnapshot feeds arbitrary bytes through the full snapshot reader. The
// contract a serving daemon depends on: no input panics, and every
// rejection is one of the five typed errors — so qservd can distinguish
// "corrupt file" from a programming bug and refuse to boot cleanly.
func FuzzSnapshot(f *testing.F) {
	db := database.NewDatabase()
	r := database.NewRelation("edge", 2)
	for i := 0; i < 16; i++ {
		r.Insert(database.Tuple{database.Value(i % 5), database.Value(i % 3)})
	}
	r.Dedup()
	db.AddRelation(r)
	db.AddRelation(database.FromTuples("unit", 1, []database.Tuple{{7}}))
	dict := database.NewDictionary()
	dict.Intern("a")
	dict.Intern("b")

	var valid bytes.Buffer
	if err := Write(&valid, db, dict, &Options{
		Indexes: map[string][][]int{"edge": {{0}, {0, 1}}},
		Shards:  map[string]ShardSpec{"edge": {Cols: []int{1}, K: 2}},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(magic))
	f.Add([]byte(footMagic))
	f.Add([]byte{})

	// Seed structured mutants so the fuzzer starts past the framing layer:
	// flipped payload, flipped TOC bytes, truncations, and a header that
	// claims a huge TOC.
	vb := valid.Bytes()
	for _, cut := range []int{1, 13, footerSize, len(vb) / 2} {
		if cut < len(vb) {
			f.Add(append([]byte(nil), vb[:len(vb)-cut]...))
		}
	}
	for _, flip := range []int{headerSize, len(vb) - footerSize + 8, len(vb) - 50} {
		m := append([]byte(nil), vb...)
		m[flip] ^= 0xff
		f.Add(m)
	}
	huge := append([]byte(nil), vb...)
	binary.LittleEndian.PutUint64(huge[len(huge)-footerSize+16:], 1<<40)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := FromBytes(b)
		if err == nil {
			// Accepted input must be fully usable: walk everything the
			// loaders would touch.
			for _, name := range s.Database().Names() {
				rel := s.Database().Relation(name)
				for _, tu := range rel.Tuples {
					if len(tu) != rel.Arity {
						t.Fatalf("relation %s: tuple %v vs arity %d", name, tu, rel.Arity)
					}
				}
				if cols, k, ok := s.ShardMeta(name); ok {
					_ = cols
					for i := 0; i < k; i++ {
						if _, err := s.ShardRelation(name, i); err != nil {
							t.Fatalf("accepted snapshot, broken shard: %v", err)
						}
					}
				}
			}
			_ = s.Dictionary().Names()
			return
		}
		for _, want := range []error{ErrBadMagic, ErrBadVersion, ErrTruncated, ErrChecksum, ErrCorrupt} {
			if errors.Is(err, want) {
				return
			}
		}
		t.Fatalf("untyped error from FromBytes: %v", err)
	})
}
