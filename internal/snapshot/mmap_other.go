//go:build !unix

package snapshot

import "errors"

// mapFile on platforms without mmap support: Open falls back to a heap
// read and Snapshot.Mapped reports false.
func mapFile(path string) ([]byte, func() error, error) {
	return nil, nil, errors.New("snapshot: mmap unavailable on this platform")
}
