package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"

	"repro/internal/database"
)

// ShardSpec asks the writer to persist a hash-shard partition of one
// relation: K shards (rounded up to a power of two) keyed on Cols.
type ShardSpec struct {
	Cols []int
	K    int
}

// Options selects the optional sections. Indexes maps a relation name to
// the column lists whose CSR indexes should be prebuilt into the file;
// Shards maps a relation name to its partition spec. A nil Options writes
// slabs and the dictionary only.
type Options struct {
	Indexes map[string][][]int
	Shards  map[string]ShardSpec
}

// sectionWriter streams sections to w, tracking the file offset, the
// current section's CRC, and the first error. Nothing is buffered beyond
// the bufio layer, so writing a snapshot needs O(1) extra memory however
// large the database.
type sectionWriter struct {
	w   io.Writer
	off uint64
	crc uint64
	err error
}

// raw writes bytes outside any section (header, padding, TOC, footer).
func (sw *sectionWriter) raw(p []byte) {
	if sw.err != nil {
		return
	}
	_, sw.err = sw.w.Write(p)
	sw.off += uint64(len(p))
}

var pad8 [8]byte

// begin pads to 8-byte alignment and opens a new section.
func (sw *sectionWriter) begin() uint64 {
	if rem := sw.off % 8; rem != 0 {
		sw.raw(pad8[:8-rem])
	}
	sw.crc = 0
	return sw.off
}

// sec writes section payload bytes, folding them into the section CRC.
func (sw *sectionWriter) sec(p []byte) {
	if sw.err != nil {
		return
	}
	sw.crc = crc64.Update(sw.crc, crcTable, p)
	sw.raw(p)
}

// Write streams db (and dict, which may be nil) to w in snapshot format.
// Relations are written in database insertion order and rows in relation
// order — never reordered, so a restored database enumerates identically.
func Write(w io.Writer, db *database.Database, dict *database.Dictionary, opts *Options) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	sw := &sectionWriter{w: bw}

	var hdr [headerSize]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:], version)
	binary.LittleEndian.PutUint32(hdr[12:], flagLittleEndian)
	sw.raw(hdr[:])

	var entries []tocEntry
	for _, name := range db.Names() {
		r := db.Relations[name]
		e, err := writeSlab(sw, r)
		if err != nil {
			return err
		}
		entries = append(entries, e)
		if opts != nil {
			for _, cols := range opts.Indexes[name] {
				e, err := writeIndex(sw, r, cols)
				if err != nil {
					return err
				}
				entries = append(entries, e)
			}
			if spec, ok := opts.Shards[name]; ok {
				e, err := writeShards(sw, r, spec)
				if err != nil {
					return err
				}
				entries = append(entries, e)
			}
		}
	}
	if dict != nil {
		entries = append(entries, writeDict(sw, dict))
	}

	toc := make([]byte, 0, 64*len(entries))
	toc = binary.LittleEndian.AppendUint32(toc, uint32(len(entries)))
	for i := range entries {
		toc = entries[i].encode(toc)
	}
	tocOff := sw.begin()
	sw.sec(toc)
	tocCRC := sw.crc

	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[0:], db.StructuralGen())
	binary.LittleEndian.PutUint64(foot[8:], tocOff)
	binary.LittleEndian.PutUint64(foot[16:], uint64(len(toc)))
	binary.LittleEndian.PutUint64(foot[24:], tocCRC)
	copy(foot[32:], footMagic)
	sw.raw(foot[:])

	if sw.err != nil {
		return sw.err
	}
	return bw.Flush()
}

// WriteFile writes the snapshot to path atomically: a same-directory temp
// file renamed into place, so a crashed or failed write never leaves a
// half-snapshot behind for a daemon to map.
func WriteFile(path string, db *database.Database, dict *database.Dictionary, opts *Options) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := Write(f, db, dict, opts); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// checkCols validates a column list against a relation for writing.
func checkCols(r *database.Relation, cols []int) ([]uint16, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("snapshot: empty column list for relation %s", r.Name)
	}
	out := make([]uint16, len(cols))
	for i, c := range cols {
		if c < 0 || c >= r.Arity {
			return nil, fmt.Errorf("snapshot: column %d out of arity %d for relation %s", c, r.Arity, r.Name)
		}
		out[i] = uint16(c)
	}
	return out, nil
}

// writeSlab streams one relation's rows as the in-memory slab layout:
// arity-strided little-endian values, row order preserved.
func writeSlab(sw *sectionWriter, r *database.Relation) (tocEntry, error) {
	if r.Name == "" || len(r.Name) > maxName {
		return tocEntry{}, fmt.Errorf("snapshot: bad relation name %q", r.Name)
	}
	if r.Arity > maxArity {
		return tocEntry{}, fmt.Errorf("snapshot: relation %s arity %d exceeds %d", r.Name, r.Arity, maxArity)
	}
	e := tocEntry{
		kind:  secSlab,
		name:  r.Name,
		arity: uint32(r.Arity),
		rows:  uint64(r.Len()),
		gen:   r.Generation(),
		off:   sw.begin(),
	}
	if r.Sorted() {
		e.flags |= entrySorted
	}
	buf := make([]byte, 0, 1<<13)
	for _, t := range r.Tuples {
		if len(t) != r.Arity {
			return tocEntry{}, fmt.Errorf("snapshot: relation %s holds a tuple of length %d, arity %d", r.Name, len(t), r.Arity)
		}
		for _, v := range t {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
		if len(buf) >= 1<<13 {
			sw.sec(buf)
			buf = buf[:0]
		}
	}
	sw.sec(buf)
	e.length = sw.off - e.off
	e.crc = sw.crc
	return e, nil
}

// writeIndex prebuilds and streams one CSR index section.
func writeIndex(sw *sectionWriter, r *database.Relation, cols []int) (tocEntry, error) {
	wcols, err := checkCols(r, cols)
	if err != nil {
		return tocEntry{}, err
	}
	c := r.DumpIndex(cols)
	e := tocEntry{
		kind: secIndex,
		name: r.Name,
		cols: wcols,
		rows: uint64(len(c.Rows)),
		off:  sw.begin(),
	}
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(c.Rows)))
	for _, id := range c.Rows {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.FPs)))
	for i, fp := range c.FPs {
		buf = binary.LittleEndian.AppendUint64(buf, fp)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Offs[i]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Lens[i]))
	}
	sw.sec(buf)
	e.length = sw.off - e.off
	e.crc = sw.crc
	return e, nil
}

// writeShards streams one hash-partition section: a (k+1)-offset CSR over
// per-shard row-id lists, base row order preserved within each shard.
func writeShards(sw *sectionWriter, r *database.Relation, spec ShardSpec) (tocEntry, error) {
	wcols, err := checkCols(r, spec.Cols)
	if err != nil {
		return tocEntry{}, err
	}
	k := database.ShardCount(spec.K)
	parts := database.ShardRowIDs(r, spec.Cols, k)
	e := tocEntry{
		kind: secShards,
		name: r.Name,
		cols: wcols,
		k:    uint32(k),
		rows: uint64(r.Len()),
		off:  sw.begin(),
	}
	buf := make([]byte, 0, 4*(k+1)+4*r.Len())
	off := uint32(0)
	for _, ids := range parts {
		buf = binary.LittleEndian.AppendUint32(buf, off)
		off += uint32(len(ids))
	}
	buf = binary.LittleEndian.AppendUint32(buf, off)
	for _, ids := range parts {
		for _, id := range ids {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		}
	}
	sw.sec(buf)
	e.length = sw.off - e.off
	e.crc = sw.crc
	return e, nil
}

// writeDict streams the dictionary in value-id order, so Intern replay on
// load reproduces identical Values.
func writeDict(sw *sectionWriter, dict *database.Dictionary) tocEntry {
	names := dict.Names()
	e := tocEntry{
		kind: secDict,
		rows: uint64(len(names)),
		off:  sw.begin(),
	}
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(names)))
	for _, n := range names {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n)))
		buf = append(buf, n...)
		if len(buf) >= 1<<13 {
			sw.sec(buf)
			buf = buf[:0]
		}
	}
	sw.sec(buf)
	e.length = sw.off - e.off
	e.crc = sw.crc
	return e
}
