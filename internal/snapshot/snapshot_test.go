package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/database"
)

// testDB builds a small deterministic database with a dictionary, mixed
// arities, and a sorted relation.
func testDB(t *testing.T) (*database.Database, *database.Dictionary) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	dict := database.NewDictionary()
	for _, n := range []string{"red", "green", "blue"} {
		dict.Intern(n)
	}
	db := database.NewDatabase()
	edge := database.NewRelation("edge", 2)
	for i := 0; i < 500; i++ {
		edge.Insert(database.Tuple{database.Value(rng.Intn(100)), database.Value(rng.Intn(100))})
	}
	edge.Dedup()
	db.AddRelation(edge)
	tri := database.NewRelation("tri", 3)
	for i := 0; i < 300; i++ {
		tri.Insert(database.Tuple{database.Value(rng.Intn(50)), database.Value(rng.Intn(50)), database.Value(i)})
	}
	db.AddRelation(tri)
	db.AddRelation(database.FromTuples("flag", 0, nil))
	return db, dict
}

func snapBytes(t *testing.T, db *database.Database, dict *database.Dictionary, opts *Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, db, dict, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sameRelation(t *testing.T, got, want *database.Relation) {
	t.Helper()
	if got == nil {
		t.Fatalf("relation %s missing", want.Name)
	}
	if got.Arity != want.Arity || got.Len() != want.Len() {
		t.Fatalf("%s: arity %d len %d, want arity %d len %d", want.Name, got.Arity, got.Len(), want.Arity, want.Len())
	}
	for i := range want.Tuples {
		if !got.Tuples[i].Equal(want.Tuples[i]) {
			t.Fatalf("%s row %d: %v != %v", want.Name, i, got.Tuples[i], want.Tuples[i])
		}
	}
	if got.Generation() != want.Generation() {
		t.Fatalf("%s: generation %d != %d", want.Name, got.Generation(), want.Generation())
	}
	if got.Sorted() != want.Sorted() {
		t.Fatalf("%s: sorted flag %v != %v", want.Name, got.Sorted(), want.Sorted())
	}
}

func checkRestored(t *testing.T, s *Snapshot, db *database.Database, dict *database.Dictionary) {
	t.Helper()
	re := s.Database()
	names := db.Names()
	gotNames := re.Names()
	if len(gotNames) != len(names) {
		t.Fatalf("restored %v, want %v", gotNames, names)
	}
	for i, n := range names {
		if gotNames[i] != n {
			t.Fatalf("relation order drifted: %v vs %v", gotNames, names)
		}
		sameRelation(t, re.Relation(n), db.Relation(n))
	}
	if re.Generation() != db.Generation() {
		t.Fatalf("database generation %d != %d", re.Generation(), db.Generation())
	}
	rd := s.Dictionary()
	if rd.Len() != dict.Len() {
		t.Fatalf("dictionary %d names, want %d", rd.Len(), dict.Len())
	}
	for _, n := range dict.Names() {
		if rd.Intern(n) != dict.Intern(n) {
			t.Fatalf("dictionary id for %q drifted", n)
		}
	}
}

func TestRoundTripHeap(t *testing.T) {
	db, dict := testDB(t)
	s, err := FromBytes(snapBytes(t, db, dict, nil))
	if err != nil {
		t.Fatal(err)
	}
	if s.Mapped() {
		t.Fatal("heap restore claims mapped storage")
	}
	checkRestored(t, s, db, dict)
}

func TestRoundTripMapped(t *testing.T) {
	db, dict := testDB(t)
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := WriteFile(path, db, dict, nil); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	checkRestored(t, s, db, dict)
	if s.Mapped() != hostLittleEndian() {
		t.Fatalf("Mapped() = %v on a hostLittleEndian=%v platform", s.Mapped(), hostLittleEndian())
	}
	if s.Mapped() {
		if r := s.Database().Relation("edge"); !r.Mapped() || !r.Slab().Mapped() {
			t.Fatal("mapped snapshot restored heap-backed relations")
		}
	}
}

func TestRoundTripIndexesAndShards(t *testing.T) {
	db, dict := testDB(t)
	opts := &Options{
		Indexes: map[string][][]int{"edge": {{0}, {1}}, "tri": {{0, 1}}},
		Shards:  map[string]ShardSpec{"edge": {Cols: []int{0}, K: 4}},
	}
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := WriteFile(path, db, dict, opts); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	checkRestored(t, s, db, dict)

	// Restored indexes answer identically to fresh builds.
	re := s.Database().Relation("edge")
	base := db.Relation("edge")
	ixGot, ixWant := re.IndexOn([]int{0}), base.IndexOn([]int{0})
	for _, tu := range base.Tuples {
		g, w := ixGot.Lookup(tu, []int{0}), ixWant.Lookup(tu, []int{0})
		if len(g) != len(w) {
			t.Fatalf("lookup %v: %d vs %d rows", tu, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("lookup %v: restored bucket order drifted", tu)
			}
		}
	}

	// The persisted partition matches database.Shard exactly.
	cols, k, ok := s.ShardMeta("edge")
	if !ok || k != 4 || len(cols) != 1 || cols[0] != 0 {
		t.Fatalf("ShardMeta = %v,%d,%v", cols, k, ok)
	}
	want := database.Shard(base, []int{0}, 4)
	total := 0
	for i := 0; i < k; i++ {
		sh, err := s.ShardRelation("edge", i)
		if err != nil {
			t.Fatal(err)
		}
		total += sh.Len()
		if sh.Len() != want[i].Len() {
			t.Fatalf("shard %d: %d rows, want %d", i, sh.Len(), want[i].Len())
		}
		for j := range sh.Tuples {
			if !sh.Tuples[j].Equal(want[i].Tuples[j]) {
				t.Fatalf("shard %d row %d: %v != %v", i, j, sh.Tuples[j], want[i].Tuples[j])
			}
		}
	}
	if total != base.Len() {
		t.Fatalf("shards cover %d of %d rows", total, base.Len())
	}
	if _, err := s.ShardRelation("edge", 4); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := s.ShardRelation("tri", 0); err == nil {
		t.Fatal("unsharded relation returned a shard")
	}
}

// TestCopyOnWriteLeavesFileIntact is the COW satellite: mutating every
// relation of an mmap-backed database must leave the snapshot file
// byte-identical — mutations promote to heap, they never write the pages.
func TestCopyOnWriteLeavesFileIntact(t *testing.T) {
	db, dict := testDB(t)
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := WriteFile(path, db, dict, nil); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sumBefore := sha256.Sum256(before)

	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	re := s.Database()
	edge := re.Relation("edge")
	victim := edge.Tuples[3].Clone()
	edge.Insert(database.Tuple{-7, -7})
	if !edge.Delete(victim) {
		t.Fatal("delete failed")
	}
	tri := re.Relation("tri")
	tri.Sort()
	if s.Mapped() && (edge.Mapped() || tri.Mapped()) {
		t.Fatal("mutated relations still report mapped storage")
	}
	// The mutated database answers from heap copies.
	if !edge.Contains(database.Tuple{-7, -7}) || edge.Contains(victim) {
		t.Fatal("mutation lost on the promoted relation")
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if sha256.Sum256(after) != sumBefore {
		t.Fatal("mutating an mmap-backed database changed the snapshot file")
	}
	// And a fresh open still sees the original contents.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Database().Relation("edge"); got.Len() != db.Relation("edge").Len() {
		t.Fatalf("re-opened edge has %d rows, want %d", got.Len(), db.Relation("edge").Len())
	}
}

// rebuildTOC re-encodes a (possibly mutated) entry list over the data
// area of a valid snapshot and appends a consistent footer, so corruption
// tests can exercise the post-checksum validation layers.
func rebuildTOC(t *testing.T, b []byte, mutate func([]tocEntry) []tocEntry) []byte {
	t.Helper()
	p, err := parse(b)
	if err != nil {
		t.Fatal(err)
	}
	foot := b[len(b)-footerSize:]
	tocOff := binary.LittleEndian.Uint64(foot[8:])
	entries := mutate(p.entries)
	toc := binary.LittleEndian.AppendUint32(nil, uint32(len(entries)))
	for i := range entries {
		toc = entries[i].encode(toc)
	}
	out := append([]byte(nil), b[:tocOff]...)
	out = append(out, toc...)
	var nf [footerSize]byte
	binary.LittleEndian.PutUint64(nf[0:], p.structuralGen)
	binary.LittleEndian.PutUint64(nf[8:], tocOff)
	binary.LittleEndian.PutUint64(nf[16:], uint64(len(toc)))
	binary.LittleEndian.PutUint64(nf[24:], crc64.Checksum(toc, crcTable))
	copy(nf[32:], footMagic)
	return append(out, nf[:]...)
}

func TestCorruptionTypedErrors(t *testing.T) {
	db, dict := testDB(t)
	valid := snapBytes(t, db, dict, &Options{Indexes: map[string][][]int{"edge": {{0}}}})
	if _, err := FromBytes(valid); err != nil {
		t.Fatalf("valid bytes rejected: %v", err)
	}

	check := func(name string, b []byte, want error) {
		t.Helper()
		_, err := FromBytes(b)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !errors.Is(err, want) {
			t.Fatalf("%s: got %v, want %v", name, err, want)
		}
	}

	bad := append([]byte(nil), valid...)
	bad[0] ^= 1
	check("bad magic", bad, ErrBadMagic)

	bad = append([]byte(nil), valid...)
	bad[8] = 9
	check("bad version", bad, ErrBadVersion)

	check("empty", nil, ErrTruncated)
	check("physically truncated", valid[:len(valid)-13], ErrTruncated)

	// Flipped payload byte: the section checksum must catch it.
	bad = append([]byte(nil), valid...)
	bad[headerSize+8] ^= 0x40
	check("flipped slab byte", bad, ErrChecksum)

	// Flipped recorded checksum.
	check("flipped section crc", rebuildTOC(t, valid, func(es []tocEntry) []tocEntry {
		es[0].crc ^= 1
		return es
	}), ErrChecksum)

	// Flipped TOC byte breaks the TOC checksum itself.
	bad = append([]byte(nil), valid...)
	tocOff := binary.LittleEndian.Uint64(valid[len(valid)-footerSize+8:])
	bad[tocOff+5] ^= 1
	check("flipped TOC byte", bad, ErrChecksum)

	// Truncated slab: the section claims bytes past the data area.
	check("slab past data area", rebuildTOC(t, valid, func(es []tocEntry) []tocEntry {
		es[0].length += 1 << 20
		es[0].rows += (1 << 20) / (8 * uint64(es[0].arity))
		return es
	}), ErrTruncated)

	// Oversized arity: rows*arity no longer matches the section length.
	check("oversized arity", rebuildTOC(t, valid, func(es []tocEntry) []tocEntry {
		es[0].arity *= 2 // rows*arity*8 no longer matches the section length
		return es
	}), ErrCorrupt)

	// Absurd arity beyond the format cap.
	check("arity past cap", rebuildTOC(t, valid, func(es []tocEntry) []tocEntry {
		es[0].arity = maxArity + 1
		return es
	}), ErrCorrupt)

	// Misaligned section offset.
	check("misaligned section", rebuildTOC(t, valid, func(es []tocEntry) []tocEntry {
		es[0].off += 4
		return es
	}), ErrCorrupt)

	// Index for a relation the file never defines.
	check("index for unknown relation", rebuildTOC(t, valid, func(es []tocEntry) []tocEntry {
		for i := range es {
			if es[i].kind == secIndex {
				es[i].name = "ghost"
			}
		}
		return es
	}), ErrCorrupt)

	// Duplicate relation.
	check("duplicate relation", rebuildTOC(t, valid, func(es []tocEntry) []tocEntry {
		return append(es, es[0])
	}), ErrCorrupt)
}

func TestCorruptOversizedArityKeepsChecksumValid(t *testing.T) {
	// The arity attack with the checksum left consistent: double the arity
	// AND halve the row count so rows*arity*8 still equals the section
	// length and the payload checksum still verifies — the reader must
	// still refuse via structural validation, not crash or mis-shape rows.
	db, dict := testDB(t)
	valid := snapBytes(t, db, dict, nil)
	mut := rebuildTOC(t, valid, func(es []tocEntry) []tocEntry {
		for i := range es {
			if es[i].name == "edge" && es[i].kind == secSlab {
				es[i].arity *= 2
				es[i].rows /= 2
			}
		}
		return es
	})
	s, err := FromBytes(mut)
	if err == nil {
		// The shape is arithmetically consistent, so the slab loads — but
		// it must load as a well-formed relation, not a panic. The shards/
		// index layers were dropped, so just sanity-check.
		if s.Database().Relation("edge").Arity != 4 {
			t.Fatal("mutated arity not reflected")
		}
	}
}

func TestTombstoneSection(t *testing.T) {
	// No current producer writes tombstones; hand-build a file with one to
	// pin the reader's compaction path: dead rows vanish, live rows keep
	// their order, and the slab is heap-backed (never used in place).
	rows := []database.Tuple{{10, 1}, {20, 2}, {30, 3}, {40, 4}, {50, 5}, {60, 6}}
	var data bytes.Buffer
	sw := &sectionWriter{w: &data}
	var hdr [headerSize]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:], version)
	binary.LittleEndian.PutUint32(hdr[12:], flagLittleEndian)
	sw.raw(hdr[:])

	slab := tocEntry{kind: secSlab, name: "R", arity: 2, rows: 6, gen: 1, off: sw.begin()}
	var payload []byte
	for _, tu := range rows {
		for _, v := range tu {
			payload = binary.LittleEndian.AppendUint64(payload, uint64(v))
		}
	}
	sw.sec(payload)
	slab.length, slab.crc = sw.off-slab.off, sw.crc

	tomb := tocEntry{kind: secTomb, name: "R", rows: 2, off: sw.begin()}
	sw.sec([]byte{1<<1 | 1<<4}) // kill rows 1 and 4
	tomb.length, tomb.crc = sw.off-tomb.off, sw.crc

	toc := binary.LittleEndian.AppendUint32(nil, 2)
	toc = slab.encode(toc)
	toc = tomb.encode(toc)
	tocOff := sw.begin()
	sw.sec(toc)
	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[8:], tocOff)
	binary.LittleEndian.PutUint64(foot[16:], uint64(len(toc)))
	binary.LittleEndian.PutUint64(foot[24:], sw.crc)
	copy(foot[32:], footMagic)
	sw.raw(foot[:])
	if sw.err != nil {
		t.Fatal(sw.err)
	}

	s, err := FromBytes(data.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	r := s.Database().Relation("R")
	want := []database.Tuple{{10, 1}, {30, 3}, {40, 4}, {60, 6}}
	if r.Len() != len(want) {
		t.Fatalf("tombstoned relation has %d rows, want %d", r.Len(), len(want))
	}
	for i := range want {
		if !r.Tuples[i].Equal(want[i]) {
			t.Fatalf("row %d: %v != %v", i, r.Tuples[i], want[i])
		}
	}
	if r.Mapped() {
		t.Fatal("tombstoned slab must never be used in place")
	}

	// Wrong dead-bit count must be rejected.
	bad := rebuildTOC(t, data.Bytes(), func(es []tocEntry) []tocEntry {
		es[1].rows = 3
		return es
	})
	if _, err := FromBytes(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad tombstone count: %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	db, dict := testDB(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "db.snap")
	if err := WriteFile(path, db, dict, nil); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "db.snap" {
		t.Fatalf("temp files left behind: %v", ents)
	}
	// Overwrite in place keeps readers of the old file intact (rename).
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := WriteFile(path, db, dict, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Database().Relation("edge"); got.Len() != db.Relation("edge").Len() {
		t.Fatal("old mapping disturbed by rewrite")
	}
}

func TestSniff(t *testing.T) {
	db, dict := testDB(t)
	if !Sniff(snapBytes(t, db, dict, nil)) {
		t.Fatal("snapshot bytes not sniffed")
	}
	if Sniff([]byte("edge(1,2)\n")) || Sniff(nil) {
		t.Fatal("non-snapshot bytes sniffed")
	}
}
