//go:build unix

package snapshot

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mapFile maps path read-only and shared: every qservd worker mapping the
// same snapshot shares one set of physical pages, and the kernel pages
// data in on demand — a cold start touches only the TOC, checksummed
// sections, and whatever slabs the first queries probe.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size > math.MaxInt32 && uint64(size) > uint64(maxInt) {
		return nil, nil, fmt.Errorf("snapshot: %s: %d bytes exceed the address space", path, size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: mmap %s: %w", path, err)
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}

const maxInt = int(^uint(0) >> 1)
