package snapshot_test

// Differential suite for out-of-core storage: on hundreds of seeded random
// instances, the decide/count/enumerate answers AND the counted steps must
// be bit-identical whether the database is the original heap-backed build,
// a snapshot reloaded into heap storage, or an mmap-backed snapshot. A
// failure prints the seed, the query, and the database, so any mismatch
// reproduces with
//
//	go test ./internal/snapshot -run TestDifferential -seed=N

import (
	"flag"
	"fmt"
	"math/big"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/qgen"
	"repro/internal/snapshot"
)

var seedFlag = flag.Int64("seed", -1, "replay a single differential-suite seed (-1 runs the full sweep)")

// numSeeds matches the sweep size of the engine- and plan-level suites.
const numSeeds = 250

func diffSeeds() []int64 {
	if *seedFlag >= 0 {
		return []int64{*seedFlag}
	}
	seeds := make([]int64, numSeeds)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	return seeds
}

func failInstance(t *testing.T, seed int64, q fmt.Stringer, db *database.Database, format string, args ...interface{}) {
	t.Helper()
	t.Fatalf("%s\nseed %d — replay with: go test ./internal/snapshot -run %s -seed=%d\n%s",
		fmt.Sprintf(format, args...), seed, t.Name(), seed, qgen.FormatInstance(q, db))
}

// backingResult is everything one backing's evaluation produced: answers,
// decide/count results, and the counted-step checkpoints of both the
// one-shot facade and the explicit pipeline.
type backingResult struct {
	answers     []database.Tuple
	decide      bool
	count       *big.Int
	facadeSteps int64 // core.Enumerate: compile + bind + enumerate
	bindSteps   int64
	decideSteps int64
	countSteps  int64
	enumSteps   int64
}

// evalBacking runs the full decide/count/enumerate battery over one
// backing of the instance. Answer tuples are cloned so they stay valid
// after a mapped snapshot is closed.
func evalBacking(db *database.Database, q *logic.CQ) (*backingResult, error) {
	res := &backingResult{}

	c := &delay.Counter{}
	e, err := core.Enumerate(db, q, c)
	if err != nil {
		return nil, fmt.Errorf("core.Enumerate: %w", err)
	}
	for _, tu := range delay.Collect(e) {
		res.answers = append(res.answers, tu.Clone())
	}
	res.facadeSteps = c.Steps()

	p, err := plan.Compile(q)
	if err != nil {
		return nil, fmt.Errorf("Compile: %w", err)
	}
	pc := &delay.Counter{}
	pr, err := p.BindCounted(db, pc)
	if err != nil {
		return nil, fmt.Errorf("Bind: %w", err)
	}
	res.bindSteps = pc.Steps()
	if res.decide, err = pr.Decide(pc); err != nil {
		return nil, fmt.Errorf("Decide: %w", err)
	}
	res.decideSteps = pc.Steps()
	if res.count, err = pr.Count(pc); err != nil {
		return nil, fmt.Errorf("Count: %w", err)
	}
	res.countSteps = pc.Steps()
	pe, err := pr.Enumerate(pc)
	if err != nil {
		return nil, fmt.Errorf("Enumerate: %w", err)
	}
	delay.Collect(pe)
	res.enumSteps = pc.Steps()
	return res, nil
}

func sameSequence(a, b []database.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// compareBackings asserts bit-identity of res against the heap-backed
// reference ref.
func compareBackings(t *testing.T, seed int64, q *logic.CQ, db *database.Database, label string, ref, res *backingResult) {
	t.Helper()
	if !sameSequence(res.answers, ref.answers) {
		failInstance(t, seed, q, db, "%s answer sequence %v != original %v", label, res.answers, ref.answers)
	}
	if res.decide != ref.decide {
		failInstance(t, seed, q, db, "%s decide %v != original %v", label, res.decide, ref.decide)
	}
	if res.count.Cmp(ref.count) != 0 {
		failInstance(t, seed, q, db, "%s count %s != original %s", label, res.count, ref.count)
	}
	if res.facadeSteps != ref.facadeSteps {
		failInstance(t, seed, q, db, "%s facade steps %d != original %d", label, res.facadeSteps, ref.facadeSteps)
	}
	if res.bindSteps != ref.bindSteps {
		failInstance(t, seed, q, db, "%s bind steps %d != original %d", label, res.bindSteps, ref.bindSteps)
	}
	if res.decideSteps != ref.decideSteps {
		failInstance(t, seed, q, db, "%s decide steps %d != original %d", label, res.decideSteps, ref.decideSteps)
	}
	if res.countSteps != ref.countSteps {
		failInstance(t, seed, q, db, "%s count steps %d != original %d", label, res.countSteps, ref.countSteps)
	}
	if res.enumSteps != ref.enumSteps {
		failInstance(t, seed, q, db, "%s enumerate steps %d != original %d", label, res.enumSteps, ref.enumSteps)
	}
}

func runDifferential(t *testing.T, seeds []int64) {
	dir := t.TempDir()
	for _, seed := range seeds {
		q, db := qgen.Instance(seed)

		ref, err := evalBacking(db, q)
		if err != nil {
			failInstance(t, seed, q, db, "original: %v", err)
		}

		path := filepath.Join(dir, fmt.Sprintf("s%d.snap", seed))
		if err := snapshot.WriteFile(path, db, nil, nil); err != nil {
			failInstance(t, seed, q, db, "WriteFile: %v", err)
		}

		heap, err := snapshot.ReadFile(path)
		if err != nil {
			failInstance(t, seed, q, db, "ReadFile: %v", err)
		}
		heapRes, err := evalBacking(heap.Database(), q)
		if err != nil {
			failInstance(t, seed, q, db, "heap reload: %v", err)
		}
		compareBackings(t, seed, q, db, "heap reload", ref, heapRes)

		mapped, err := snapshot.Open(path)
		if err != nil {
			failInstance(t, seed, q, db, "Open: %v", err)
		}
		mapRes, err := evalBacking(mapped.Database(), q)
		if err != nil {
			failInstance(t, seed, q, db, "mmap: %v", err)
		}
		compareBackings(t, seed, q, db, "mmap", ref, mapRes)
		if err := mapped.Close(); err != nil {
			failInstance(t, seed, q, db, "Close: %v", err)
		}

		if db.Generation() != heap.Database().Generation() || db.Generation() != mapped.Database().Generation() {
			failInstance(t, seed, q, db, "generation drifted: %d / %d / %d",
				db.Generation(), heap.Database().Generation(), mapped.Database().Generation())
		}
	}
}

// TestDifferentialSnapshotBackings: the full 250-seed sweep across
// heap-backed, snapshot-reloaded, and mmap-backed execution.
func TestDifferentialSnapshotBackings(t *testing.T) {
	runDifferential(t, diffSeeds())
}

// TestDifferentialSnapshotDegradedHash: the same cross-backing identity
// must survive a pathological fingerprint function that collapses keys
// into two buckets — index layout degrades identically on every backing
// because the persisted rows, not the hash, carry the order.
func TestDifferentialSnapshotDegradedHash(t *testing.T) {
	restore := database.SetIndexHashForTesting(func(tu database.Tuple, cols []int) uint64 {
		if len(cols) == 0 {
			return 0
		}
		return uint64(tu[cols[0]]) & 1
	})
	defer restore()
	seeds := diffSeeds()
	if *seedFlag < 0 && len(seeds) > 50 {
		seeds = seeds[:50] // degraded indexes are quadratic; a subset suffices
	}
	runDifferential(t, seeds)
}
