package snapshot

import (
	"unsafe"

	"repro/internal/database"
)

// hostLittleEndian reports whether the host lays out integers little-
// endian. The payload format is little-endian; only a matching host may
// use mapped slab sections in place, anything else decodes.
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// castValues reinterprets a slab section's bytes as the in-memory []Value
// layout without copying. Safe because the writer emits values as 8-byte
// little-endian words, sections are 8-byte aligned relative to the page-
// aligned mapping base, and the caller (Open) only reaches here on a
// little-endian host. The resulting slice has len == cap, so any append
// reallocates to heap rather than writing the read-only pages.
func castValues(b []byte) []database.Value {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*database.Value)(unsafe.Pointer(&b[0])), len(b)/8)
}
