// Package snapshot persists a whole database.Database as one versioned,
// checksummed binary file and restores it either by reading (heap-backed,
// mutation-ready) or by mmap-ing (read-only pages shared across
// processes, promoted to heap copy-on-first-mutation by the relation
// layer). The point is the ROADMAP's out-of-core item: preprocessing is
// done once at snapshot-build time — slabs laid out, dictionaries
// interned, CSR indexes and hash-shard partitions optionally prebuilt —
// and a serving process starts in milliseconds by mapping the file
// instead of re-parsing text facts.
//
// # File layout
//
//	header   16 B   magic "QSNAP\x00v1", version, flags (bit0: little-endian payload)
//	sections ...    8-byte aligned, one per TOC entry, individually CRC-64'd
//	TOC             per-section directory: kind, name, arity/rows/gen/cols/k, off/len/crc
//	footer   40 B   structural generation, TOC offset/length/CRC, magic "QSNAPEND"
//
// Section kinds: a relation's columnar slab (row-major []Value, exactly
// the layout Relation.Slab builds in memory, so a little-endian host can
// use mapped sections in place without any decode); an optional tombstone
// bitmap (dead rows skipped at load — written by no current producer but
// accepted for format evolution); the interned Dictionary in value-id
// order; optional prebuilt single-shard CSR indexes (database.IndexCSR);
// and optional hash-shard partitions (per-shard row-id lists over the
// unreordered base slab, routed by uint32(fingerprint)&(k-1) exactly like
// database.Shard and the parallel index builds).
//
// Everything is validated before use: magics, version, section bounds and
// alignment, every CRC, arity/row arithmetic (with overflow checks), and
// the structural invariants of index and shard sections. Corruption
// surfaces as ErrBadMagic/ErrBadVersion/ErrTruncated/ErrChecksum/
// ErrCorrupt — never a panic, which FuzzSnapshot enforces.
//
// Row order is sacred: the writer persists slabs in relation row order and
// shard partitions as row-id lists over that unreordered slab, so
// enumeration order — and with it the engines' counted steps — is
// bit-identical across heap-backed, snapshot-reloaded, and mmap-backed
// execution. The differential suite pins this.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
)

const (
	magic      = "QSNAP\x00v1"
	footMagic  = "QSNAPEND"
	version    = 1
	headerSize = 16
	footerSize = 40

	// flagLittleEndian marks the payload byte order. The writer always
	// emits little-endian; a big-endian reader decodes instead of mapping.
	flagLittleEndian = 1 << 0

	// maxArity bounds a relation's arity to keep rows*arity arithmetic far
	// from overflow; no real schema comes near it.
	maxArity = 1 << 20
	// maxName bounds relation and dictionary entry names.
	maxName = 1 << 20
)

// Section kinds.
const (
	secSlab   uint8 = 1 // columnar relation payload
	secTomb   uint8 = 2 // tombstone bitmap over a relation's rows
	secDict   uint8 = 3 // interned dictionary, value-id order
	secIndex  uint8 = 4 // prebuilt single-shard CSR index
	secShards uint8 = 5 // hash-shard partition (per-shard row-id CSR)
)

// Typed errors. Readers wrap them with positional context; callers match
// with errors.Is.
var (
	ErrBadMagic   = errors.New("snapshot: bad magic")
	ErrBadVersion = errors.New("snapshot: unsupported version")
	ErrTruncated  = errors.New("snapshot: truncated")
	ErrChecksum   = errors.New("snapshot: checksum mismatch")
	ErrCorrupt    = errors.New("snapshot: corrupt section")
)

// crcTable is the CRC-64/ECMA table shared by writer and reader.
var crcTable = crc64.MakeTable(crc64.ECMA)

// tocEntry is one section's directory record.
type tocEntry struct {
	kind   uint8
	flags  uint8 // bit0: sorted (secSlab)
	name   string
	arity  uint32
	k      uint32 // shard count (secShards)
	rows   uint64 // slab/tomb/shards: row count; dict: name count
	gen    uint64 // secSlab: relation generation
	cols   []uint16
	off    uint64
	length uint64
	crc    uint64
}

const entrySorted = 1 << 0

// tocEntrySize is the fixed prefix of an encoded entry; name bytes and
// 2-byte columns follow.
const tocEntrySize = 56

func (e *tocEntry) encodedLen() int {
	return tocEntrySize + len(e.name) + 2*len(e.cols)
}

func (e *tocEntry) encode(b []byte) []byte {
	b = append(b, e.kind, e.flags)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(e.cols)))
	b = binary.LittleEndian.AppendUint32(b, e.arity)
	b = binary.LittleEndian.AppendUint32(b, e.k)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(e.name)))
	b = binary.LittleEndian.AppendUint64(b, e.rows)
	b = binary.LittleEndian.AppendUint64(b, e.gen)
	b = binary.LittleEndian.AppendUint64(b, e.off)
	b = binary.LittleEndian.AppendUint64(b, e.length)
	b = binary.LittleEndian.AppendUint64(b, e.crc)
	b = append(b, e.name...)
	for _, c := range e.cols {
		b = binary.LittleEndian.AppendUint16(b, c)
	}
	return b
}

// decodeEntry parses one entry at the front of b, returning the entry and
// the remaining bytes.
func decodeEntry(b []byte) (tocEntry, []byte, error) {
	var e tocEntry
	if len(b) < tocEntrySize {
		return e, nil, fmt.Errorf("%w: TOC entry header", ErrTruncated)
	}
	e.kind = b[0]
	e.flags = b[1]
	nCols := int(binary.LittleEndian.Uint16(b[2:]))
	e.arity = binary.LittleEndian.Uint32(b[4:])
	e.k = binary.LittleEndian.Uint32(b[8:])
	nameLen := binary.LittleEndian.Uint32(b[12:])
	e.rows = binary.LittleEndian.Uint64(b[16:])
	e.gen = binary.LittleEndian.Uint64(b[24:])
	e.off = binary.LittleEndian.Uint64(b[32:])
	e.length = binary.LittleEndian.Uint64(b[40:])
	e.crc = binary.LittleEndian.Uint64(b[48:])
	b = b[tocEntrySize:]
	if nameLen > maxName {
		return e, nil, fmt.Errorf("%w: TOC name length %d", ErrCorrupt, nameLen)
	}
	if uint64(len(b)) < uint64(nameLen)+2*uint64(nCols) {
		return e, nil, fmt.Errorf("%w: TOC entry body", ErrTruncated)
	}
	e.name = string(b[:nameLen])
	b = b[nameLen:]
	e.cols = make([]uint16, nCols)
	for i := range e.cols {
		e.cols[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return e, b[2*nCols:], nil
}

// intCols widens a TOC column list for the database layer.
func intCols(cols []uint16) []int {
	out := make([]int, len(cols))
	for i, c := range cols {
		out[i] = int(c)
	}
	return out
}
