package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"

	"repro/internal/database"
)

// Snapshot is an open, fully validated snapshot: the restored database
// and dictionary, plus any shard partitions the file carries. A mapped
// snapshot's relations alias the underlying pages until they promote on
// first mutation; Close unmaps, so it must only be called once the
// database (and any tuples handed out from it) is no longer in use.
type Snapshot struct {
	db     *database.Database
	dict   *database.Dictionary
	mapped bool
	shards map[string]*shardPart
	close  func() error
}

// shardPart is one relation's persisted hash partition.
type shardPart struct {
	cols []int
	k    int
	offs []uint32 // k+1 CSR offsets
	ids  []int32  // row ids, shard-major, base order within a shard
}

// Database returns the restored database.
func (s *Snapshot) Database() *database.Database { return s.db }

// Dictionary returns the restored dictionary (never nil; empty when the
// file carried none).
func (s *Snapshot) Dictionary() *database.Dictionary { return s.dict }

// Mapped reports whether relations alias mmap-ed file pages (as opposed
// to heap copies).
func (s *Snapshot) Mapped() bool { return s.mapped }

// Close releases the mapping, if any. The database must no longer be in
// use unless every relation has promoted to heap storage.
func (s *Snapshot) Close() error {
	if s.close == nil {
		return nil
	}
	c := s.close
	s.close = nil
	return c()
}

// ShardMeta returns the persisted partition shape for a relation: the key
// columns and shard count, or ok=false when the file carries no partition
// for it.
func (s *Snapshot) ShardMeta(name string) (cols []int, k int, ok bool) {
	p := s.shards[name]
	if p == nil {
		return nil, 0, false
	}
	return append([]int(nil), p.cols...), p.k, true
}

// ShardRelation materializes shard i of a relation's persisted partition
// as a relation of tuple views into the base storage — a sharded daemon
// maps the file and touches only its own partition's pages. The shard's
// tuples keep base-relation order.
func (s *Snapshot) ShardRelation(name string, i int) (*database.Relation, error) {
	p := s.shards[name]
	if p == nil {
		return nil, fmt.Errorf("snapshot: relation %s has no persisted shards", name)
	}
	if i < 0 || i >= p.k {
		return nil, fmt.Errorf("snapshot: relation %s shard %d out of %d", name, i, p.k)
	}
	base := s.db.Relation(name)
	sr := database.NewRelation(fmt.Sprintf("%s/%d", name, i), base.Arity)
	ids := p.ids[p.offs[i]:p.offs[i+1]]
	sr.Tuples = make([]database.Tuple, len(ids))
	for j, id := range ids {
		sr.Tuples[j] = base.Tuples[id]
	}
	return sr, nil
}

// Sniff reports whether b begins with the snapshot magic — how the
// loaders decide between fact-text parsing and snapshot reading.
func Sniff(b []byte) bool {
	return len(b) >= len(magic) && string(b[:len(magic)]) == magic
}

// Read restores a snapshot from r into heap storage (mutation-ready, no
// pages shared). The whole stream is read and validated first.
func Read(r io.Reader) (*Snapshot, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return FromBytes(b)
}

// ReadFile is Read over a file.
func ReadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromBytes(b)
}

// FromBytes restores a snapshot from untrusted bytes into heap storage.
// Arbitrary input yields a typed error, never a panic (FuzzSnapshot pins
// this).
func FromBytes(b []byte) (*Snapshot, error) {
	return build(b, false, nil)
}

// Open maps path and restores the snapshot over the mapping: relation
// slabs alias the read-only pages (zero copy, shared between every
// process mapping the same file) and promote to heap on first mutation.
// On platforms without mmap — or on a big-endian host, where the
// little-endian payload cannot be used in place — Open falls back to a
// heap read and Mapped reports false.
func Open(path string) (*Snapshot, error) {
	b, closeFn, err := mapFile(path)
	if err != nil || !hostLittleEndian() {
		if closeFn != nil {
			closeFn()
		}
		return ReadFile(path)
	}
	s, err := build(b, true, closeFn)
	if err != nil {
		closeFn()
		return nil, err
	}
	return s, nil
}

// parsed is the validated shape of a snapshot file.
type parsed struct {
	entries       []tocEntry
	structuralGen uint64
}

// parse validates framing: magics, version, footer, TOC checksum and
// entry bounds. Section payload checksums are verified by build.
func parse(b []byte) (*parsed, error) {
	if len(b) < len(magic) {
		return nil, fmt.Errorf("%w: %d-byte file", ErrTruncated, len(b))
	}
	if !Sniff(b) {
		return nil, ErrBadMagic
	}
	if len(b) < headerSize+footerSize {
		return nil, fmt.Errorf("%w: %d-byte file", ErrTruncated, len(b))
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != version {
		return nil, fmt.Errorf("%w: version %d, reader supports %d", ErrBadVersion, v, version)
	}
	if binary.LittleEndian.Uint32(b[12:])&flagLittleEndian == 0 {
		return nil, fmt.Errorf("%w: big-endian payload flag", ErrBadVersion)
	}
	foot := b[len(b)-footerSize:]
	if string(foot[32:40]) != footMagic {
		return nil, fmt.Errorf("%w: footer magic", ErrTruncated)
	}
	p := &parsed{structuralGen: binary.LittleEndian.Uint64(foot[0:])}
	tocOff := binary.LittleEndian.Uint64(foot[8:])
	tocLen := binary.LittleEndian.Uint64(foot[16:])
	tocCRC := binary.LittleEndian.Uint64(foot[24:])
	fileEnd := uint64(len(b) - footerSize)
	if tocOff < headerSize || tocLen > fileEnd || tocOff > fileEnd-tocLen {
		return nil, fmt.Errorf("%w: TOC [%d,+%d) outside file", ErrTruncated, tocOff, tocLen)
	}
	toc := b[tocOff : tocOff+tocLen]
	if crc64.Checksum(toc, crcTable) != tocCRC {
		return nil, fmt.Errorf("%w: TOC", ErrChecksum)
	}
	if len(toc) < 4 {
		return nil, fmt.Errorf("%w: TOC count", ErrTruncated)
	}
	n := binary.LittleEndian.Uint32(toc)
	toc = toc[4:]
	if uint64(n)*tocEntrySize > uint64(len(toc)) {
		return nil, fmt.Errorf("%w: TOC claims %d entries in %d bytes", ErrCorrupt, n, len(toc))
	}
	p.entries = make([]tocEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		e, rest, err := decodeEntry(toc)
		if err != nil {
			return nil, err
		}
		toc = rest
		if e.off < headerSize || e.length > tocOff || e.off > tocOff-e.length {
			return nil, fmt.Errorf("%w: section %q [%d,+%d) outside data area", ErrTruncated, e.name, e.off, e.length)
		}
		if e.off%8 != 0 {
			return nil, fmt.Errorf("%w: section %q misaligned at %d", ErrCorrupt, e.name, e.off)
		}
		p.entries = append(p.entries, e)
	}
	return p, nil
}

// build validates every section and materializes the database. When
// mapped is set (little-endian host, mmap succeeded), slab payloads are
// used in place; otherwise they are decoded into heap slices.
func build(b []byte, mapped bool, closeFn func() error) (s *Snapshot, err error) {
	// The validation below is intended to be exhaustive; recover is the
	// fuzz-proof backstop that turns any escapee into a typed error
	// instead of a crashed daemon.
	defer func() {
		if r := recover(); r != nil {
			s, err = nil, fmt.Errorf("%w: reader panic: %v", ErrCorrupt, r)
		}
	}()
	p, err := parse(b)
	if err != nil {
		return nil, err
	}
	for i := range p.entries {
		e := &p.entries[i]
		if crc64.Checksum(payload(b, e), crcTable) != e.crc {
			return nil, fmt.Errorf("%w: section %q (kind %d)", ErrChecksum, e.name, e.kind)
		}
	}

	s = &Snapshot{
		db:     database.NewDatabase(),
		dict:   database.NewDictionary(),
		mapped: mapped,
		shards: map[string]*shardPart{},
		close:  closeFn,
	}
	tombs := map[string]*tocEntry{}
	for i := range p.entries {
		if e := &p.entries[i]; e.kind == secTomb {
			if tombs[e.name] != nil {
				return nil, fmt.Errorf("%w: duplicate tombstones for %q", ErrCorrupt, e.name)
			}
			tombs[e.name] = e
		}
	}
	sawDict := false
	for i := range p.entries {
		e := &p.entries[i]
		switch e.kind {
		case secSlab:
			if s.db.Relation(e.name) != nil {
				return nil, fmt.Errorf("%w: duplicate relation %q", ErrCorrupt, e.name)
			}
			r, err := buildRelation(b, e, tombs[e.name], mapped)
			if err != nil {
				return nil, err
			}
			s.db.AddRelation(r)
		case secTomb:
			// consumed alongside its slab
		case secDict:
			if sawDict {
				return nil, fmt.Errorf("%w: duplicate dictionary", ErrCorrupt)
			}
			sawDict = true
			if s.dict, err = buildDict(payload(b, e), e); err != nil {
				return nil, err
			}
		case secIndex:
			if err := restoreIndex(b, e, s.db); err != nil {
				return nil, err
			}
		case secShards:
			if err := s.restoreShards(b, e); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: unknown section kind %d", ErrCorrupt, e.kind)
		}
	}
	s.db.SetStructuralGen(p.structuralGen)
	return s, nil
}

func payload(b []byte, e *tocEntry) []byte {
	return b[e.off : e.off+e.length]
}

// buildRelation materializes one relation. The slab is used in place only
// when mapped and dense (no tombstones); a tombstoned slab is always
// compacted into fresh heap storage.
func buildRelation(b []byte, e, tomb *tocEntry, mapped bool) (*database.Relation, error) {
	if e.arity > maxArity {
		return nil, fmt.Errorf("%w: relation %q arity %d exceeds %d", ErrCorrupt, e.name, e.arity, maxArity)
	}
	if e.rows > math.MaxInt32 {
		return nil, fmt.Errorf("%w: relation %q claims %d rows, row ids are int32", ErrCorrupt, e.name, e.rows)
	}
	want := e.rows * uint64(e.arity) * 8
	if want != e.length {
		return nil, fmt.Errorf("%w: relation %q: %d rows of arity %d need %d bytes, section has %d",
			ErrCorrupt, e.name, e.rows, e.arity, want, e.length)
	}
	raw := payload(b, e)
	spec := database.SlabSpec{
		Name:   e.name,
		Arity:  int(e.arity),
		Rows:   int(e.rows),
		Sorted: e.flags&entrySorted != 0,
		Gen:    e.gen,
	}
	live := int(e.rows)
	var bitmap []byte
	if tomb != nil {
		bm := payload(b, tomb)
		if uint64(len(bm)) != (e.rows+7)/8 {
			return nil, fmt.Errorf("%w: tombstones for %q: %d bytes for %d rows", ErrCorrupt, e.name, len(bm), e.rows)
		}
		dead := 0
		for _, byt := range bm {
			dead += popcount(byt)
		}
		if uint64(dead) != tomb.rows {
			return nil, fmt.Errorf("%w: tombstones for %q: %d set bits, TOC says %d", ErrCorrupt, e.name, dead, tomb.rows)
		}
		live -= dead
		if live < 0 {
			return nil, fmt.Errorf("%w: tombstones for %q kill %d of %d rows", ErrCorrupt, e.name, dead, e.rows)
		}
		bitmap = bm
	}
	a := int(e.arity)
	switch {
	case bitmap != nil:
		// Compact the live rows into heap storage; a tombstoned slab is
		// never used in place (Relation.Row must stay position-consistent
		// with Tuples).
		spec.Rows = live
		spec.Data = make([]database.Value, 0, live*a)
		for i := 0; i < int(e.rows); i++ {
			if bitmap[i/8]&(1<<(i%8)) != 0 {
				continue
			}
			for c := 0; c < a; c++ {
				spec.Data = append(spec.Data, database.Value(binary.LittleEndian.Uint64(raw[(i*a+c)*8:])))
			}
		}
	case mapped:
		spec.Data = castValues(raw)
		spec.Mapped = true
	default:
		spec.Data = make([]database.Value, e.rows*uint64(e.arity))
		for i := range spec.Data {
			spec.Data[i] = database.Value(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	r, err := database.FromSlab(spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return r, nil
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// buildDict replays the persisted name list through Intern, reproducing
// identical value ids.
func buildDict(raw []byte, e *tocEntry) (*database.Dictionary, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("%w: dictionary count", ErrTruncated)
	}
	n := binary.LittleEndian.Uint32(raw)
	raw = raw[4:]
	if uint64(n) != e.rows {
		return nil, fmt.Errorf("%w: dictionary claims %d names, TOC says %d", ErrCorrupt, n, e.rows)
	}
	names := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(raw) < 4 {
			return nil, fmt.Errorf("%w: dictionary entry %d", ErrTruncated, i)
		}
		l := binary.LittleEndian.Uint32(raw)
		raw = raw[4:]
		if l > maxName || uint64(l) > uint64(len(raw)) {
			return nil, fmt.Errorf("%w: dictionary entry %d length %d", ErrTruncated, i, l)
		}
		names = append(names, string(raw[:l]))
		raw = raw[l:]
	}
	if len(raw) != 0 {
		return nil, fmt.Errorf("%w: %d trailing dictionary bytes", ErrCorrupt, len(raw))
	}
	d, err := database.DictionaryFromNames(names)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return d, nil
}

// restoreIndex decodes one CSR index section and installs it on its
// relation; database.RestoreIndex revalidates every bound.
func restoreIndex(b []byte, e *tocEntry, db *database.Database) error {
	r := db.Relation(e.name)
	if r == nil {
		return fmt.Errorf("%w: index for unknown relation %q", ErrCorrupt, e.name)
	}
	raw := payload(b, e)
	if len(raw) < 4 {
		return fmt.Errorf("%w: index rows count for %q", ErrTruncated, e.name)
	}
	nRows := binary.LittleEndian.Uint32(raw)
	raw = raw[4:]
	if uint64(nRows) != e.rows {
		return fmt.Errorf("%w: index for %q claims %d rows, TOC says %d", ErrCorrupt, e.name, nRows, e.rows)
	}
	if uint64(len(raw)) < uint64(nRows)*4+4 {
		return fmt.Errorf("%w: index rows for %q", ErrTruncated, e.name)
	}
	c := database.IndexCSR{Cols: intCols(e.cols), Rows: make([]int32, nRows)}
	for i := range c.Rows {
		c.Rows[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	raw = raw[4*nRows:]
	nBuckets := binary.LittleEndian.Uint32(raw)
	raw = raw[4:]
	if uint64(len(raw)) != uint64(nBuckets)*16 {
		return fmt.Errorf("%w: index buckets for %q: %d bytes for %d buckets", ErrCorrupt, e.name, len(raw), nBuckets)
	}
	c.FPs = make([]uint64, nBuckets)
	c.Offs = make([]int32, nBuckets)
	c.Lens = make([]int32, nBuckets)
	for i := uint32(0); i < nBuckets; i++ {
		c.FPs[i] = binary.LittleEndian.Uint64(raw[16*i:])
		c.Offs[i] = int32(binary.LittleEndian.Uint32(raw[16*i+8:]))
		c.Lens[i] = int32(binary.LittleEndian.Uint32(raw[16*i+12:]))
	}
	if err := r.RestoreIndex(c); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}

// restoreShards decodes one hash-partition section.
func (s *Snapshot) restoreShards(b []byte, e *tocEntry) error {
	r := s.db.Relation(e.name)
	if r == nil {
		return fmt.Errorf("%w: shards for unknown relation %q", ErrCorrupt, e.name)
	}
	if s.shards[e.name] != nil {
		return fmt.Errorf("%w: duplicate shards for %q", ErrCorrupt, e.name)
	}
	k := int(e.k)
	if k < 1 || k > 1<<16 || k != database.ShardCount(k) {
		return fmt.Errorf("%w: shard count %d for %q", ErrCorrupt, e.k, e.name)
	}
	for _, c := range e.cols {
		if int(c) >= r.Arity {
			return fmt.Errorf("%w: shard column %d out of arity %d for %q", ErrCorrupt, c, r.Arity, e.name)
		}
	}
	if e.rows != uint64(r.Len()) {
		return fmt.Errorf("%w: shards for %q cover %d rows, relation has %d", ErrCorrupt, e.name, e.rows, r.Len())
	}
	raw := payload(b, e)
	want := uint64(k+1)*4 + e.rows*4
	if uint64(len(raw)) != want {
		return fmt.Errorf("%w: shard section for %q: %d bytes, want %d", ErrCorrupt, e.name, len(raw), want)
	}
	p := &shardPart{cols: intCols(e.cols), k: k, offs: make([]uint32, k+1)}
	for i := range p.offs {
		p.offs[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	raw = raw[4*(k+1):]
	if p.offs[0] != 0 || p.offs[k] != uint32(e.rows) {
		return fmt.Errorf("%w: shard offsets for %q do not tile the rows", ErrCorrupt, e.name)
	}
	for i := 0; i < k; i++ {
		if p.offs[i] > p.offs[i+1] {
			return fmt.Errorf("%w: shard offsets for %q decrease at %d", ErrCorrupt, e.name, i)
		}
	}
	p.ids = make([]int32, e.rows)
	n := int32(r.Len())
	for i := range p.ids {
		id := int32(binary.LittleEndian.Uint32(raw[4*i:]))
		if id < 0 || id >= n {
			return fmt.Errorf("%w: shard row id %d out of %d rows for %q", ErrCorrupt, id, n, e.name)
		}
		p.ids[i] = id
	}
	s.shards[e.name] = p
	return nil
}
