// Package prefix implements Section 5 of the paper: counting and
// enumeration for first-order queries with free (monadic, relational)
// second-order variables, classified by quantifier prefix.
//
//   - Classify determines the prefix class Σ_k / Π_k of a prenex formula.
//   - CountSigma0 counts the answers of a quantifier-free formula φ(x̄,X̄)
//     exactly in polynomial time (Theorem 5.3: every function in #Σ⁰ is
//     polynomial-time computable).
//   - The Karp–Luby machinery (karpluby.go) gives an FPRAS for #Σ₁
//     (Definition 5.4 and the discussion after Theorem 5.3), with #DNF as
//     the classical special case (Example 5.1).
//   - EnumerateSigma0 enumerates Σ₀ answers with constant delta-delay by
//     Gray-code walking of the unconstrained set bits (Theorem 5.5), and
//     EnumerateSigma1 enumerates Σ₁ answers with polynomial delay by
//     flashlight search.
package prefix

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/database"
	"repro/internal/logic"
)

// Class is a prefix class Σ_k or Π_k.
type Class struct {
	Sigma bool // true: starts with ∃ (or k = 0)
	K     int  // number of quantifier blocks
}

// String renders the class.
func (c Class) String() string {
	if c.K == 0 {
		return "Σ0"
	}
	if c.Sigma {
		return fmt.Sprintf("Σ%d", c.K)
	}
	return fmt.Sprintf("Π%d", c.K)
}

// Classify determines the prefix class of a prenex formula (first-order
// quantifiers only; set variables must be free). It returns the class, the
// quantifier-prefix variables per block, and the quantifier-free matrix.
func Classify(f logic.Formula) (Class, [][]string, logic.Formula, error) {
	var blocks [][]string
	cur := f
	sigmaFirst := false
	lastEx := false
	for {
		switch h := cur.(type) {
		case logic.FExists:
			if len(blocks) == 0 {
				sigmaFirst = true
				blocks = append(blocks, nil)
				lastEx = true
			} else if !lastEx {
				blocks = append(blocks, nil)
				lastEx = true
			}
			blocks[len(blocks)-1] = append(blocks[len(blocks)-1], h.Var)
			cur = h.F
		case logic.FForall:
			if len(blocks) == 0 {
				sigmaFirst = false
				blocks = append(blocks, nil)
				lastEx = false
			} else if lastEx {
				blocks = append(blocks, nil)
				lastEx = false
			}
			blocks[len(blocks)-1] = append(blocks[len(blocks)-1], h.Var)
			cur = h.F
		case logic.FExistsSet, logic.FForallSet:
			return Class{}, nil, nil, fmt.Errorf("prefix: quantified set variables are not part of the Σ_k^rel fragments")
		default:
			if hasQuantifier(cur) {
				return Class{}, nil, nil, fmt.Errorf("prefix: formula is not prenex")
			}
			return Class{Sigma: sigmaFirst || len(blocks) == 0, K: len(blocks)}, blocks, cur, nil
		}
	}
}

func hasQuantifier(f logic.Formula) bool {
	switch h := f.(type) {
	case logic.FExists, logic.FForall, logic.FExistsSet, logic.FForallSet:
		return true
	case logic.FNot:
		return hasQuantifier(h.F)
	case logic.FAnd:
		for _, g := range h.Fs {
			if hasQuantifier(g) {
				return true
			}
		}
	case logic.FOr:
		for _, g := range h.Fs {
			if hasQuantifier(g) {
				return true
			}
		}
	}
	return false
}

// bitIndex numbers the (set variable, domain value) bits.
type bitIndex struct {
	sets []string
	dom  []database.Value
	pos  map[database.Value]int
}

func newBitIndex(db *database.Database, sets []string) *bitIndex {
	b := &bitIndex{sets: append([]string(nil), sets...), dom: db.Domain(), pos: map[database.Value]int{}}
	sort.Strings(b.sets)
	for i, v := range b.dom {
		b.pos[v] = i
	}
	return b
}

func (b *bitIndex) total() int { return len(b.sets) * len(b.dom) }

func (b *bitIndex) bit(setIdx int, v database.Value) int {
	return setIdx*len(b.dom) + b.pos[v]
}

func (b *bitIndex) setIdx(name string) int {
	for i, s := range b.sets {
		if s == name {
			return i
		}
	}
	return -1
}

// evalQF evaluates a quantifier-free formula under a first-order assignment
// and a bit oracle for set membership.
func evalQF(db *database.Database, f logic.Formula, asg logic.Assignment, member func(set string, v database.Value) bool) (bool, error) {
	switch h := f.(type) {
	case logic.FAtom:
		r := db.Relation(h.Pred)
		if r == nil {
			return false, nil
		}
		t := make(database.Tuple, len(h.Args))
		for i, a := range h.Args {
			t[i] = termValue(a, asg)
		}
		return r.Contains(t), nil
	case logic.FComp:
		return h.Op.Eval(termValue(h.L, asg), termValue(h.R, asg)), nil
	case logic.FMember:
		return member(h.Set, termValue(h.Elem, asg)), nil
	case logic.FNot:
		v, err := evalQF(db, h.F, asg, member)
		return !v, err
	case logic.FAnd:
		for _, g := range h.Fs {
			v, err := evalQF(db, g, asg, member)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	case logic.FOr:
		for _, g := range h.Fs {
			v, err := evalQF(db, g, asg, member)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	}
	return false, fmt.Errorf("prefix: quantifier inside matrix")
}

func termValue(t logic.Term, asg logic.Assignment) database.Value {
	if t.IsConst {
		return t.Const
	}
	return asg[t.Var]
}

// membershipPoints collects, for a fixed first-order assignment, the
// distinct (set variable, value) pairs the matrix actually tests.
func membershipPoints(f logic.Formula, asg logic.Assignment) [][2]interface{} {
	seen := map[string]bool{}
	var out [][2]interface{}
	var rec func(g logic.Formula)
	rec = func(g logic.Formula) {
		switch h := g.(type) {
		case logic.FMember:
			v := termValue(h.Elem, asg)
			k := fmt.Sprint(h.Set, "§", v)
			if !seen[k] {
				seen[k] = true
				out = append(out, [2]interface{}{h.Set, v})
			}
		case logic.FNot:
			rec(h.F)
		case logic.FAnd:
			for _, x := range h.Fs {
				rec(x)
			}
		case logic.FOr:
			for _, x := range h.Fs {
				rec(x)
			}
		}
	}
	rec(f)
	return out
}

// forEachFO iterates all assignments of vars over the active domain.
func forEachFO(db *database.Database, vars []string, visit func(asg logic.Assignment) error) error {
	dom := db.Domain()
	asg := logic.Assignment{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(vars) {
			return visit(asg)
		}
		for _, v := range dom {
			asg[vars[i]] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(asg, vars[i])
		return nil
	}
	return rec(0)
}

// CountSigma0 counts |φ(D)| = |{(ā,Ā) : D ⊨ φ(ā,Ā)}| for a quantifier-free
// formula, exactly, in polynomial time (Theorem 5.3): for each ā the matrix
// constrains only the membership bits it mentions (at most ‖φ‖ of them);
// every satisfying assignment of those bits contributes 2^(#unconstrained
// bits) full answers.
func CountSigma0(db *database.Database, f logic.Formula) (*big.Int, error) {
	cls, _, matrix, err := Classify(f)
	if err != nil {
		return nil, err
	}
	if cls.K != 0 {
		return nil, fmt.Errorf("prefix: CountSigma0 needs a Σ0 formula, got %s", cls)
	}
	sets := logic.FreeSetVars(f)
	fo := logic.FreeVars(f)
	bi := newBitIndex(db, sets)
	total := new(big.Int)
	err = forEachFO(db, fo, func(asg logic.Assignment) error {
		points := membershipPoints(matrix, asg)
		m := len(points)
		if m > 30 {
			return fmt.Errorf("prefix: too many membership points (%d)", m)
		}
		free := bi.total() - countValidPoints(bi, points)
		weight := new(big.Int).Lsh(big.NewInt(1), uint(free))
		for mask := 0; mask < 1<<m; mask++ {
			ok, err := evalQF(db, matrix, asg, pointOracle(points, mask))
			if err != nil {
				return err
			}
			if ok && pointsInDomain(bi, points, mask) {
				total.Add(total, weight)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}

// countValidPoints counts the membership points whose value lies in the
// active domain (only those correspond to real bits).
func countValidPoints(bi *bitIndex, points [][2]interface{}) int {
	n := 0
	for _, p := range points {
		if _, ok := bi.pos[p[1].(database.Value)]; ok {
			n++
		}
	}
	return n
}

// pointsInDomain reports whether every point set to true lies in the active
// domain (a membership of a value outside every set's possible extent can
// only be false).
func pointsInDomain(bi *bitIndex, points [][2]interface{}, mask int) bool {
	for i, p := range points {
		if mask&(1<<i) != 0 {
			if _, ok := bi.pos[p[1].(database.Value)]; !ok {
				return false
			}
		}
	}
	return true
}

// pointOracle interprets set membership according to the mask over points.
func pointOracle(points [][2]interface{}, mask int) func(string, database.Value) bool {
	return func(set string, v database.Value) bool {
		for i, p := range points {
			if p[0].(string) == set && p[1].(database.Value) == v {
				return mask&(1<<i) != 0
			}
		}
		return false
	}
}
