package prefix

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/logic/logictest"
)

func graphDB(rng *rand.Rand, n, edges int) *database.Database {
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	for i := 0; i < edges; i++ {
		e.InsertValues(database.Value(rng.Intn(n)+1), database.Value(rng.Intn(n)+1))
	}
	e.Dedup()
	db.AddRelation(e)
	u := database.NewRelation("V", 1)
	for i := 1; i <= n; i++ {
		u.InsertValues(database.Value(i))
	}
	db.AddRelation(u)
	return db
}

func TestClassify(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"E(x,y) and x in X", "Σ0"},
		{"exists x. E(x,y)", "Σ1"},
		{"forall x. E(x,x)", "Π1"},
		{"exists x. forall y. E(x,y)", "Σ2"},
		{"forall x. exists y. forall z. (E(x,y) and E(y,z))", "Π3"},
		{"exists x. exists y. E(x,y)", "Σ1"},
	}
	for _, c := range cases {
		cls, _, _, err := Classify(logictest.MustParseFormula(c.src))
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if cls.String() != c.want {
			t.Errorf("%q: got %s want %s", c.src, cls, c.want)
		}
	}
	// Non-prenex and set-quantified formulas are rejected.
	if _, _, _, err := Classify(logictest.MustParseFormula("E(x,y) and exists z. E(y,z)")); err == nil {
		t.Errorf("non-prenex must be rejected")
	}
	if _, _, _, err := Classify(logictest.MustParseFormula("exists set X. x in X")); err == nil {
		t.Errorf("set quantifier must be rejected")
	}
}

func TestCountSigma0AgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	formulas := []string{
		"x in X and V(x)",
		"E(x,y) and x in X and not y in X",
		"x in X or x in Y",
		"V(x) and not x in X",
		"E(x,x) and x in X",
	}
	for trial := 0; trial < 10; trial++ {
		db := graphDB(rng, 3+rng.Intn(2), 4)
		for _, src := range formulas {
			f := logictest.MustParseFormula(src)
			got, err := CountSigma0(db, f)
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			want := logic.CountMixed(db, f)
			if got.Cmp(big.NewInt(int64(want))) != 0 {
				t.Fatalf("trial %d %q: got %s want %d", trial, src, got, want)
			}
		}
	}
}

// Example 5.2's Ψ0: ordered triangles, a Σ0 query with free FO variables
// and order comparisons.
func TestExample52OrderedTriangles(t *testing.T) {
	db := database.NewDatabase()
	e := database.NewRelation("E", 2)
	// Triangle 1-2-3 in both directions plus an extra edge.
	for _, p := range [][2]database.Value{{1, 2}, {2, 3}, {3, 1}, {2, 1}, {3, 2}, {1, 3}, {1, 4}} {
		e.InsertValues(p[0], p[1])
	}
	db.AddRelation(e)
	psi0 := logictest.MustParseFormula("v1 < v2 and v2 < v3 and E(v1,v2) and E(v2,v3) and E(v3,v1)")
	got, err := CountSigma0(db, psi0)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one ordered triangle: (1,2,3).
	if got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("ordered triangles: got %s want 1", got)
	}
}

func TestUnionSizeExactAndKarpLuby(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		f := RandomDNF3(rng, 6+rng.Intn(4), 3+rng.Intn(6))
		cubes := f.Cubes()
		exact, err := UnionSizeExact(cubes, f.N)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Cmp(f.CountExact()) != 0 {
			t.Fatalf("trial %d: exact union %s vs brute %s", trial, exact, f.CountExact())
		}
	}
}

func TestKarpLubyAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bad := 0
	trials := 25
	for trial := 0; trial < trials; trial++ {
		f := RandomDNF3(rng, 10, 8)
		cubes := f.Cubes()
		if len(cubes) == 0 {
			continue
		}
		exact := f.CountExact()
		est, err := KarpLuby(cubes, f.N, 0.1, rng)
		if err != nil {
			t.Fatal(err)
		}
		// |est - exact| ≤ 0.15·exact allowing some slack beyond ε = 0.1.
		diff := new(big.Int).Sub(est, exact)
		diff.Abs(diff)
		bound := new(big.Int).Mul(exact, big.NewInt(15))
		bound.Div(bound, big.NewInt(100))
		if diff.Cmp(bound) > 0 {
			bad++
		}
	}
	if bad > trials/4 {
		t.Errorf("Karp–Luby outside 15%% on %d/%d trials", bad, trials)
	}
	if _, err := KarpLuby([]Cube{{Fixed: map[int]bool{0: true}}}, 4, 0, nil); err == nil {
		t.Errorf("epsilon 0 must be rejected")
	}
	if got, err := KarpLuby(nil, 4, 0.1, rng); err != nil || got.Sign() != 0 {
		t.Errorf("empty DNF must count 0")
	}
}

func TestExample51Bijection(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		// Random 3-DNF with exactly 3 literals per disjunct.
		f := &DNF3{N: 4 + rng.Intn(2)}
		for i := 0; i < 3+rng.Intn(3); i++ {
			var d []struct {
				Var int
				Neg bool
			}
			for j := 0; j < 3; j++ {
				d = append(d, struct {
					Var int
					Neg bool
				}{Var: 1 + rng.Intn(f.N), Neg: rng.Intn(2) == 0})
			}
			f.Disjuncts = append(f.Disjuncts, d)
		}
		db, phi, err := Example51(f)
		if err != nil {
			t.Fatal(err)
		}
		// |{T : A_φ ⊨ Φ0(T)}| = #satisfying assignments of φ.
		got := logic.CountMixed(db, phi)
		want := f.CountExact()
		if want.Cmp(big.NewInt(int64(got))) != 0 {
			t.Fatalf("trial %d: naive count %d vs DNF count %s", trial, got, want)
		}
		// And the Σ1 cube decomposition agrees.
		cnt, err := CountSigma1Exact(db, phi)
		if err != nil {
			t.Fatal(err)
		}
		if cnt.Cmp(want) != 0 {
			t.Fatalf("trial %d: cube count %s vs %s", trial, cnt, want)
		}
		// And the FPRAS lands within tolerance.
		est, err := CountSigma1FPRAS(db, phi, 0.15, rng)
		if err != nil {
			t.Fatal(err)
		}
		if want.Sign() > 0 {
			diff := new(big.Int).Sub(est, want)
			diff.Abs(diff)
			bound := new(big.Int).Mul(want, big.NewInt(30))
			bound.Div(bound, big.NewInt(100))
			if diff.Cmp(bound) > 0 {
				t.Errorf("trial %d: FPRAS %s vs exact %s", trial, est, want)
			}
		}
	}
}

func TestEnumerateSigma0(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		db := graphDB(rng, 3, 3)
		for _, src := range []string{
			"x in X and V(x)",
			"E(x,y) and x in X and not y in X",
			"V(x) and not x in X",
		} {
			f := logictest.MustParseFormula(src)
			e, err := EnumerateSigma0(db, f, nil)
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			answers := CollectSetAnswers(e)
			want, err := CountSigma0(db, f)
			if err != nil {
				t.Fatal(err)
			}
			if want.Cmp(big.NewInt(int64(len(answers)))) != 0 {
				t.Fatalf("trial %d %q: %d answers, count says %s", trial, src, len(answers), want)
			}
			// No duplicates; all valid; deltas bounded.
			seen := map[string]bool{}
			dom := db.Domain()
			for _, a := range answers {
				key := fmt.Sprint(a.FO, a.Sets)
				if seen[key] {
					t.Fatalf("%q: duplicate %v", src, a)
				}
				seen[key] = true
				in := logic.Interpretation{FirstOrder: logic.Assignment{}, Sets: logic.SetAssignment{}}
				for v, val := range a.FO {
					in.FirstOrder[v] = val
				}
				for s, bits := range a.Sets {
					m := map[database.Value]bool{}
					for i, b := range bits {
						if b {
							m[dom[i]] = true
						}
					}
					in.Sets[s] = m
				}
				if !logic.Eval(db, f, in) {
					t.Fatalf("%q: invalid answer %v", src, a)
				}
				if a.Delta > 10 {
					t.Fatalf("%q: delta %d too large", src, a.Delta)
				}
			}
		}
	}
}

func TestEnumerateSigma1(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		db := graphDB(rng, 3, 4)
		for _, src := range []string{
			"exists x. (x in X and V(x))",
			"exists x, y. (E(x,y) and x in X and y in Y)",
			"exists x. (V(x) and not x in X)",
		} {
			f := logictest.MustParseFormula(src)
			e, err := EnumerateSigma1(db, f, nil)
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			answers := CollectSetAnswers(e)
			want, err := CountSigma1Exact(db, f)
			if err != nil {
				t.Fatal(err)
			}
			if want.Cmp(big.NewInt(int64(len(answers)))) != 0 {
				t.Fatalf("trial %d %q: enumerated %d, exact %s", trial, src, len(answers), want)
			}
			seen := map[string]bool{}
			for _, a := range answers {
				key := fmt.Sprint(a.Sets)
				if seen[key] {
					t.Fatalf("%q: duplicate", src)
				}
				seen[key] = true
			}
		}
	}
}

func TestSigma1Rejections(t *testing.T) {
	db := graphDB(rand.New(rand.NewSource(1)), 3, 3)
	if _, _, err := Sigma1Cubes(db, logictest.MustParseFormula("forall x. x in X")); err == nil {
		t.Errorf("Π1 must be rejected by the Σ1 counter")
	}
	if _, _, err := Sigma1Cubes(db, logictest.MustParseFormula("E(x,y) and x in X")); err == nil {
		t.Errorf("free FO variables must be rejected by the Σ1 counter")
	}
	if _, err := CountSigma0(db, logictest.MustParseFormula("exists x. x in X")); err == nil {
		t.Errorf("Σ1 must be rejected by the Σ0 counter")
	}
}
