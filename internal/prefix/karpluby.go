package prefix

import (
	"fmt"
	"math/big"
	"math/rand"

	"repro/internal/database"
	"repro/internal/logic"
)

// Cube is a partial assignment of B Boolean variables: every total
// assignment extending Fixed belongs to the cube. A DNF disjunct is a cube;
// the solution sets of Σ₁ formulas decompose into polynomially many cubes.
type Cube struct {
	Fixed map[int]bool
}

// Size returns |cube| = 2^(B−|Fixed|).
func (c Cube) Size(B int) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(B-len(c.Fixed)))
}

// Contains reports whether the total assignment x extends the cube.
func (c Cube) Contains(x []bool) bool {
	for i, v := range c.Fixed {
		if x[i] != v {
			return false
		}
	}
	return true
}

// UnionSizeExact computes |C₁ ∪ ... ∪ C_m| exactly by inclusion–exclusion —
// the exponential reference used in tests (m ≤ 20).
func UnionSizeExact(cubes []Cube, B int) (*big.Int, error) {
	if len(cubes) > 20 {
		return nil, fmt.Errorf("prefix: exact union limited to 20 cubes")
	}
	total := new(big.Int)
	for mask := 1; mask < 1<<len(cubes); mask++ {
		merged := map[int]bool{}
		ok := true
		bits := 0
		for i, c := range cubes {
			if mask&(1<<i) == 0 {
				continue
			}
			bits++
			for p, v := range c.Fixed {
				if prev, seen := merged[p]; seen && prev != v {
					ok = false
					break
				}
				merged[p] = v
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		sz := new(big.Int).Lsh(big.NewInt(1), uint(B-len(merged)))
		if bits%2 == 1 {
			total.Add(total, sz)
		} else {
			total.Sub(total, sz)
		}
	}
	return total, nil
}

// KarpLuby estimates |C₁ ∪ ... ∪ C_m| with the Monte-Carlo self-adjusting
// coverage algorithm of Karp, Luby and Madras [57] — the FPRAS whose
// existence makes #Σ₁ approximable (Definition 5.4): sample a cube i with
// probability |C_i|/Σ|C_j|, then a uniform point of C_i, and count the
// fraction of samples whose cube is the first one containing the point.
// The number of samples grows as m/ε².
func KarpLuby(cubes []Cube, B int, eps float64, rng *rand.Rand) (*big.Int, error) {
	if len(cubes) == 0 {
		return new(big.Int), nil
	}
	if eps <= 0 {
		return nil, fmt.Errorf("prefix: epsilon must be positive")
	}
	m := len(cubes)
	sizes := make([]*big.Int, m)
	sum := new(big.Int)
	for i, c := range cubes {
		sizes[i] = c.Size(B)
		sum.Add(sum, sizes[i])
	}
	// Cumulative weights for cube sampling. To sample i ∝ |C_i| with big
	// sizes, draw a uniform big integer below sum.
	cum := make([]*big.Int, m)
	acc := new(big.Int)
	for i := range cubes {
		acc = new(big.Int).Add(acc, sizes[i])
		cum[i] = acc
	}
	samples := int(float64(4*m)/(eps*eps)) + 1
	hits := 0
	x := make([]bool, B)
	for s := 0; s < samples; s++ {
		// Sample a cube index.
		r := new(big.Int).Rand(rng, sum)
		idx := 0
		for cum[idx].Cmp(r) <= 0 {
			idx++
		}
		// Sample a uniform point of the cube.
		for b := 0; b < B; b++ {
			if v, ok := cubes[idx].Fixed[b]; ok {
				x[b] = v
			} else {
				x[b] = rng.Intn(2) == 1
			}
		}
		// Self-adjusting coverage: count the sample iff idx is the first
		// cube containing x.
		first := 0
		for ; first < m; first++ {
			if cubes[first].Contains(x) {
				break
			}
		}
		if first == idx {
			hits++
		}
	}
	// Estimate = (hits/samples) · Σ|C_i|.
	est := new(big.Int).Mul(sum, big.NewInt(int64(hits)))
	est.Div(est, big.NewInt(int64(samples)))
	return est, nil
}

// DNF3 is a propositional formula in 3-DNF over variables 1..N: each
// disjunct is up to three literals (var, negated).
type DNF3 struct {
	N         int
	Disjuncts [][]struct {
		Var int
		Neg bool
	}
}

// Cubes converts the DNF to its cube family (contradictory disjuncts are
// dropped).
func (f *DNF3) Cubes() []Cube {
	var out []Cube
	for _, d := range f.Disjuncts {
		fixed := map[int]bool{}
		ok := true
		for _, l := range d {
			want := !l.Neg
			if prev, seen := fixed[l.Var-1]; seen && prev != want {
				ok = false
				break
			}
			fixed[l.Var-1] = want
		}
		if ok {
			out = append(out, Cube{Fixed: fixed})
		}
	}
	return out
}

// CountExact counts the satisfying assignments of the DNF by brute force
// (N ≤ 24).
func (f *DNF3) CountExact() *big.Int {
	if f.N > 24 {
		panic("prefix: brute force limited to 24 variables")
	}
	total := new(big.Int)
	for mask := 0; mask < 1<<f.N; mask++ {
		for _, d := range f.Disjuncts {
			sat := true
			for _, l := range d {
				if (mask>>(l.Var-1)&1 == 1) == l.Neg {
					sat = false
					break
				}
			}
			if sat {
				total.Add(total, big.NewInt(1))
				break
			}
		}
	}
	return total
}

// RandomDNF3 generates a random 3-DNF formula.
func RandomDNF3(rng *rand.Rand, n, disjuncts int) *DNF3 {
	f := &DNF3{N: n}
	for i := 0; i < disjuncts; i++ {
		var d []struct {
			Var int
			Neg bool
		}
		w := 1 + rng.Intn(3)
		for j := 0; j < w; j++ {
			d = append(d, struct {
				Var int
				Neg bool
			}{Var: 1 + rng.Intn(n), Neg: rng.Intn(2) == 0})
		}
		f.Disjuncts = append(f.Disjuncts, d)
	}
	return f
}

// Example51 builds the structure A_φ and formula Φ₀(T) of Example 5.1 for
// a 3-DNF formula: domain = variables, Dᵢ(x₁,x₂,x₃) holds iff
// ¬x₁..¬xᵢ ∧ xᵢ₊₁..x₃ appears as a disjunct; the relations T with
// A_φ ⊨ Φ₀(T) are in bijection with the satisfying assignments.
func Example51(f *DNF3) (*database.Database, logic.Formula, error) {
	db := database.NewDatabase()
	rels := make([]*database.Relation, 4)
	for i := range rels {
		rels[i] = database.NewRelation(fmt.Sprintf("D%d", i), 3)
	}
	// Make every variable part of the active domain.
	v := database.NewRelation("V", 1)
	for i := 1; i <= f.N; i++ {
		v.InsertValues(database.Value(i))
	}
	db.AddRelation(v)
	for _, d := range f.Disjuncts {
		if len(d) != 3 {
			return nil, nil, fmt.Errorf("prefix: Example 5.1 needs exactly 3 literals per disjunct")
		}
		// Order the disjunct as ¬..¬ then positive: count i = number of
		// negative literals; the relation D_i holds the variables with
		// negatives first.
		var negs, poss []int
		for _, l := range d {
			if l.Neg {
				negs = append(negs, l.Var)
			} else {
				poss = append(poss, l.Var)
			}
		}
		i := len(negs)
		args := append(append([]int(nil), negs...), poss...)
		rels[i].InsertValues(database.Value(args[0]), database.Value(args[1]), database.Value(args[2]))
	}
	for _, r := range rels {
		r.Dedup()
		db.AddRelation(r)
	}
	phi, err := logic.ParseFormula(
		"exists x, y, z. (" +
			"(D0(x,y,z) and x in T and y in T and z in T) or " +
			"(D1(x,y,z) and not x in T and y in T and z in T) or " +
			"(D2(x,y,z) and not x in T and not y in T and z in T) or " +
			"(D3(x,y,z) and not x in T and not y in T and not z in T))")
	if err != nil {
		return nil, nil, fmt.Errorf("prefix: Example 5.1 formula: %w", err)
	}
	return db, phi, nil
}

// CountSigma1FPRAS estimates |{Ā : D ⊨ ∃x̄ matrix(x̄,Ā)}| for a Σ₁ formula
// with free set variables only, by decomposing the solution set into cubes
// (one per witness assignment and satisfying membership pattern) and
// running Karp–Luby.
func CountSigma1FPRAS(db *database.Database, f logic.Formula, eps float64, rng *rand.Rand) (*big.Int, error) {
	cubes, B, err := Sigma1Cubes(db, f)
	if err != nil {
		return nil, err
	}
	return KarpLuby(cubes, B, eps, rng)
}

// CountSigma1Exact is the exact union size over the same cubes (small
// inputs; used to validate the FPRAS).
func CountSigma1Exact(db *database.Database, f logic.Formula) (*big.Int, error) {
	cubes, B, err := Sigma1Cubes(db, f)
	if err != nil {
		return nil, err
	}
	return UnionSizeExact(cubes, B)
}

// Sigma1Cubes decomposes the Σ₁ solution set into cubes over the
// (set variable × domain value) bits.
func Sigma1Cubes(db *database.Database, f logic.Formula) ([]Cube, int, error) {
	cls, blocks, matrix, err := Classify(f)
	if err != nil {
		return nil, 0, err
	}
	if cls.K > 1 || (cls.K == 1 && !cls.Sigma) {
		return nil, 0, fmt.Errorf("prefix: %s formula is not Σ1", cls)
	}
	if len(logic.FreeVars(f)) > 0 {
		return nil, 0, fmt.Errorf("prefix: free first-order variables not supported by the Σ1 counter")
	}
	var exVars []string
	if cls.K == 1 {
		exVars = blocks[0]
	}
	sets := logic.FreeSetVars(f)
	bi := newBitIndex(db, sets)
	var cubes []Cube
	err = forEachFO(db, exVars, func(asg logic.Assignment) error {
		points := membershipPoints(matrix, asg)
		m := len(points)
		if m > 24 {
			return fmt.Errorf("prefix: too many membership points (%d)", m)
		}
		for mask := 0; mask < 1<<m; mask++ {
			ok, err := evalQF(db, matrix, asg, pointOracle(points, mask))
			if err != nil {
				return err
			}
			if !ok || !pointsInDomain(bi, points, mask) {
				continue
			}
			fixed := map[int]bool{}
			valid := true
			for i, p := range points {
				set := p[0].(string)
				val := p[1].(database.Value)
				if _, inDom := bi.pos[val]; !inDom {
					// A point outside the domain has no bit; it is false,
					// which pointsInDomain already enforced for 1-bits.
					continue
				}
				fixed[bi.bit(bi.setIdx(set), val)] = mask&(1<<i) != 0
			}
			if valid {
				cubes = append(cubes, Cube{Fixed: fixed})
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return cubes, bi.total(), nil
}
