package prefix

import (
	"fmt"
	"math/big"

	"repro/internal/database"
	"repro/internal/delay"
	"repro/internal/logic"
)

// SetAnswer is one answer (ā, Ā): values for the free first-order
// variables and bit vectors (over the active domain, in bitIndex order) for
// the free set variables.
type SetAnswer struct {
	FO   map[string]database.Value
	Sets map[string][]bool
	// Delta is the number of output positions that changed relative to the
	// previous answer — the "delta-delay" measure of Theorem 5.5: the
	// algorithm maintains the current answer on an output tape and only
	// rewrites the changed cells.
	Delta int
}

// SetEnum enumerates SetAnswers.
type SetEnum interface {
	Next() (*SetAnswer, bool)
}

// CollectSetAnswers drains a SetEnum.
func CollectSetAnswers(e SetEnum) []*SetAnswer {
	var out []*SetAnswer
	for {
		a, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// EnumerateSigma0 enumerates the answers of a quantifier-free formula
// φ(x̄,X̄) with constant delta-delay (Theorem 5.5): within a block (fixed ā
// and fixed satisfying assignment of the constrained membership bits) the
// unconstrained bits are walked in Gray-code order starting from their
// current values, so consecutive answers differ in one bit; block
// transitions rewrite at most ‖φ‖ + |x̄| cells.
func EnumerateSigma0(db *database.Database, f logic.Formula, c *delay.Counter) (SetEnum, error) {
	cls, _, matrix, err := Classify(f)
	if err != nil {
		return nil, err
	}
	if cls.K != 0 {
		return nil, fmt.Errorf("prefix: EnumerateSigma0 needs a Σ0 formula, got %s", cls)
	}
	sets := logic.FreeSetVars(f)
	fo := logic.FreeVars(f)
	bi := newBitIndex(db, sets)

	// Precompute the blocks: (ā, satisfying point mask, free positions).
	type block struct {
		asg    logic.Assignment
		points [][2]interface{}
		mask   int
		free   []int // bit positions not constrained
	}
	var blocks []block
	err = forEachFO(db, fo, func(asg logic.Assignment) error {
		points := membershipPoints(matrix, asg)
		m := len(points)
		if m > 24 {
			return fmt.Errorf("prefix: too many membership points (%d)", m)
		}
		constrained := map[int]bool{}
		for _, p := range points {
			val := p[1].(database.Value)
			if _, ok := bi.pos[val]; ok {
				constrained[bi.bit(bi.setIdx(p[0].(string)), val)] = true
			}
		}
		var free []int
		for b := 0; b < bi.total(); b++ {
			if !constrained[b] {
				free = append(free, b)
			}
		}
		cp := logic.Assignment{}
		for k, v := range asg {
			cp[k] = v
		}
		for mask := 0; mask < 1<<m; mask++ {
			ok, err := evalQF(db, matrix, cp, pointOracle(points, mask))
			if err != nil {
				return err
			}
			if ok && pointsInDomain(bi, points, mask) {
				blocks = append(blocks, block{asg: cp, points: points, mask: mask, free: free})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	bits := make([]bool, bi.total())
	state := struct {
		bi      int
		started bool
		step    uint64 // Gray position within the block
	}{}
	gray := func(x uint64) uint64 { return x ^ (x >> 1) }

	emit := func(delta int, foAsg logic.Assignment) *SetAnswer {
		a := &SetAnswer{FO: map[string]database.Value{}, Sets: map[string][]bool{}, Delta: delta}
		for _, v := range fo {
			a.FO[v] = foAsg[v]
		}
		n := len(bi.dom)
		for si, s := range bi.sets {
			vec := make([]bool, n)
			copy(vec, bits[si*n:(si+1)*n])
			a.Sets[s] = vec
		}
		return a
	}

	return setEnumFunc(func() (*SetAnswer, bool) {
		for state.bi < len(blocks) {
			b := blocks[state.bi]
			if !state.started {
				state.started = true
				state.step = 0
				// Enter the block: set constrained bits per the mask.
				delta := 0
				for i, p := range b.points {
					val := p[1].(database.Value)
					if _, ok := bi.pos[val]; !ok {
						continue
					}
					pos := bi.bit(bi.setIdx(p[0].(string)), val)
					want := b.mask&(1<<i) != 0
					if bits[pos] != want {
						bits[pos] = want
						delta++
					}
					c.Tick(1)
				}
				return emit(delta+len(fo), b.asg), true
			}
			state.step++
			if len(b.free) >= 63 {
				panic("prefix: too many free bits to enumerate")
			}
			if state.step >= 1<<uint(len(b.free)) {
				state.bi++
				state.started = false
				continue
			}
			// Flip the single bit where gray(step) differs from
			// gray(step−1).
			diff := gray(state.step) ^ gray(state.step-1)
			pos := 0
			for diff>>1 != 0 {
				diff >>= 1
				pos++
			}
			p := b.free[pos]
			bits[p] = !bits[p]
			c.Tick(1)
			return emit(1, b.asg), true
		}
		return nil, false
	}), nil
}

type setEnumFunc func() (*SetAnswer, bool)

func (f setEnumFunc) Next() (*SetAnswer, bool) { return f() }

// EnumerateSigma1 enumerates {Ā : D ⊨ ∃x̄ matrix} with polynomial delay by
// flashlight (binary partition) search over the membership bits: a partial
// bit assignment is extended only if some witness x̄ and some completion of
// the constrained bits remain compatible — a polynomial test for Σ₁.
func EnumerateSigma1(db *database.Database, f logic.Formula, c *delay.Counter) (SetEnum, error) {
	cubes, B, err := Sigma1Cubes(db, f)
	if err != nil {
		return nil, err
	}
	sets := logic.FreeSetVars(f)
	bi := newBitIndex(db, sets)
	// extendable reports whether some cube is compatible with the first p
	// fixed bits.
	extendable := func(bits []bool, p int) bool {
		for _, cu := range cubes {
			ok := true
			for pos, v := range cu.Fixed {
				if pos < p && bits[pos] != v {
					ok = false
					break
				}
			}
			c.Tick(1)
			if ok {
				return true
			}
		}
		return false
	}
	bits := make([]bool, B)
	// DFS stack: position p, next branch to try (0, 1, or 2 = exhausted).
	type frame struct {
		branch int
	}
	stack := make([]frame, 0, B+1)
	started := false
	dead := len(cubes) == 0

	emit := func() *SetAnswer {
		a := &SetAnswer{Sets: map[string][]bool{}, FO: map[string]database.Value{}}
		n := len(bi.dom)
		for si, s := range bi.sets {
			vec := make([]bool, n)
			copy(vec, bits[si*n:(si+1)*n])
			a.Sets[s] = vec
		}
		return a
	}

	descend := func() bool {
		// From the current stack depth, extend greedily to depth B.
		for len(stack) < B {
			p := len(stack)
			bits[p] = false
			if extendable(bits, p+1) {
				stack = append(stack, frame{branch: 0})
				continue
			}
			bits[p] = true
			if extendable(bits, p+1) {
				stack = append(stack, frame{branch: 1})
				continue
			}
			return false
		}
		return true
	}
	backtrackAdvance := func() bool {
		for len(stack) > 0 {
			p := len(stack) - 1
			fr := stack[p]
			stack = stack[:p]
			if fr.branch == 0 {
				bits[p] = true
				if extendable(bits, p+1) {
					stack = append(stack, frame{branch: 1})
					if descend() {
						return true
					}
					// descend failed: continue backtracking
					continue
				}
			}
		}
		return false
	}

	return setEnumFunc(func() (*SetAnswer, bool) {
		if dead {
			return nil, false
		}
		if !started {
			started = true
			if !descend() {
				dead = true
				return nil, false
			}
			return emit(), true
		}
		if !backtrackAdvance() {
			dead = true
			return nil, false
		}
		return emit(), true
	}), nil
}

// ExactSigma1Count is a brute-force reference: count set assignments by
// enumerating all of them (small domains only).
func ExactSigma1Count(db *database.Database, f logic.Formula) (*big.Int, error) {
	return CountSigma1Exact(db, f)
}
